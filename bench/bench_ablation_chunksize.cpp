// Ablation: chunk size of the optimized reader (the paper fixes 16 MB,
// Spectrum Scale's largest I/O block on Summit). Sweeps 256 KB - 64 MB on a
// real NT3-geometry file and reports parse time. [REAL measurement]
#include <filesystem>

#include "harness.h"
#include "io/synthetic.h"

int main(int argc, char** argv) {
  using namespace candle;
  Cli cli;
  cli.flag("cols", "columns of the test file", "20000")
      .flag("rows", "rows of the test file", "120")
      .flag("workdir", "scratch directory", "/tmp");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  const std::string path = cli.get("workdir") + "/candle_chunksize.csv";
  const std::size_t bytes = io::write_synthetic_csv(
      path,
      {static_cast<std::size_t>(cli.get_int("rows")),
       static_cast<std::size_t>(cli.get_int("cols")), false},
      1234);
  std::printf("Ablation: optimized-reader chunk size on a %s NT3-geometry "
              "file [REAL measurement]\n\n",
              format_bytes(static_cast<double>(bytes)).c_str());

  Table t({"chunk size", "parse time (s)", "blocks"});
  for (std::size_t chunk :
       {256u << 10, 1u << 20, 4u << 20, 16u << 20, 64u << 20}) {
    io::CsvReadStats stats;
    (void)io::read_csv_chunked(path, &stats, chunk);
    t.add_row({format_bytes(static_cast<double>(chunk)),
               strprintf("%.3f", stats.seconds),
               std::to_string(stats.chunks)});
  }
  t.print();
  std::filesystem::remove(path);
  std::printf("\nParse time is flat once chunks amortize syscall overhead — "
              "16 MB (the paper's choice) sits on the plateau; the win over "
              "the original loader comes from eliminating per-(chunk, "
              "column) type inference, not from a magic chunk size.\n");
  return 0;
}
