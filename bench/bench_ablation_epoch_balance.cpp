// Ablation: comp_epochs remainder policy. The paper's comp_epochs() gives
// the last rank the remainder, then notes "for load balancing, we ensure
// that the number of epochs is the same for each GPU". This bench
// quantifies the straggler cost of the unbalanced variant. [simulated]
#include "harness.h"

int main() {
  using namespace candle;
  using namespace candle::bench;
  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::nt3());
  std::printf("Ablation: comp_epochs remainder policy, NT3 on Summit, 384 "
              "total epochs [simulated]\n\n");
  Table t({"GPUs", "epochs/rank (balanced)", "last-rank epochs (paper fn)",
           "balanced total (s)", "unbalanced total (s)", "straggler cost %"});
  for (std::size_t ranks : {36u, 60u, 100u, 144u, 250u}) {
    const std::size_t balanced = comp_epochs_balanced(384, ranks);
    const std::size_t last = comp_epochs(384, ranks - 1, ranks);
    if (balanced == 0) continue;
    sim::RunPlan plan;
    plan.ranks = ranks;
    plan.loader = io::LoaderKind::kChunked;
    plan.epochs_per_rank = balanced;
    const double t_bal = simulator.simulate(plan).phases.total();
    // Synchronous allreduce means everyone waits for the last rank.
    plan.epochs_per_rank = last;
    const double t_unbal = simulator.simulate(plan).phases.total();
    t.add_row({std::to_string(ranks), std::to_string(balanced),
               std::to_string(last), strprintf("%.1f", t_bal),
               strprintf("%.1f", t_unbal),
               strprintf("%.1f", 100.0 * (t_unbal - t_bal) / t_bal)});
  }
  t.print();
  std::printf("\nWhen GPUs does not divide the epoch count, the paper's "
              "remainder-to-last-rank function makes every rank wait for "
              "the straggler — the balanced split avoids that.\n");
  return 0;
}
