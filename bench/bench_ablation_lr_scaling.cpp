// Ablation: linear learning-rate scaling (§2.3.2, "Scale the learning rate
// by the number of workers"). Trains NT3 at several worker counts with and
// without lr x nprocs and reports accuracy. [REAL training]
#include "harness.h"

int main(int argc, char** argv) {
  using namespace candle;
  Cli cli;
  cli.flag("scale", "dataset scale", "0.0015");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;
  const double scale = cli.get_double("scale");

  std::printf("Ablation: linear lr scaling on NT3 strong scaling (384 total "
              "epochs) [REAL training]\n\n");
  Table t({"GPUs", "epochs/GPU", "accuracy lr*N", "accuracy lr fixed"});
  for (std::size_t gpus : {12u, 48u, 96u, 192u}) {
    const AccuracyPoint scaled =
        reference_accuracy(BenchmarkId::kNT3, gpus, 384, 20, scale, false);
    // lr fixed: emulate by running at gpus=1 lr but the reduced epochs.
    const ScaledGeometry g = scaled_geometry(BenchmarkId::kNT3, scale);
    const BenchmarkData data = make_benchmark_data(BenchmarkId::kNT3, g, 7);
    nn::Model m = build_model(BenchmarkId::kNT3, g);
    compile_benchmark_model(BenchmarkId::kNT3, m, g,
                            profile_for(BenchmarkId::kNT3).learning_rate, 7);
    nn::FitOptions fit;
    fit.epochs = comp_epochs_balanced(384, gpus);
    fit.batch_size = 20;
    const float fixed = m.fit(data.train, fit).final_accuracy();
    t.add_row({std::to_string(gpus), std::to_string(scaled.epochs_per_gpu),
               strprintf("%.4f", scaled.accuracy),
               strprintf("%.4f", fixed)});
  }
  t.print();
  std::printf("\nWith few epochs per GPU, the scaled learning rate recovers "
              "most of the accuracy the reduced epoch budget would lose — "
              "the reason the paper adopts linear lr scaling.\n");
  return 0;
}
