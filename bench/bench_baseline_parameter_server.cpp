// Baseline comparison motivating the paper's Horovod choice (§1): the
// parameter-server strategy of native distributed TensorFlow centralizes
// gradient traffic on one rank, so per-step communication grows linearly
// with workers, while ring allreduce stays near-constant. Also verifies at
// small scale (real rank threads) that both strategies produce identical
// training results — only the traffic pattern differs.
#include "harness.h"

#include "comm/communicator.h"
#include "hvd/distributed_optimizer.h"
#include "hvd/parameter_server.h"

int main() {
  using namespace candle;
  using namespace candle::bench;

  // --- Analytic scaling: per-step comm time, NT3's 62 MB payload. --------
  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::nt3());
  const std::size_t payload =
      sim::BenchmarkProfile::nt3().param_count * sizeof(float);
  std::printf("Baseline: ring allreduce vs parameter server, NT3 gradient "
              "payload (%s) [model]\n\n",
              format_bytes(static_cast<double>(payload)).c_str());
  Table t({"GPUs", "ring allreduce (s/step)", "parameter server (s/step)",
           "PS / ring"});
  for (std::size_t ranks : summit_strong_ranks()) {
    if (ranks == 1) continue;
    const double ring = simulator.allreduce_step_seconds(ranks);
    const double ps = hvd::parameter_server_step_seconds(ranks, payload);
    t.add_row({std::to_string(ranks), strprintf("%.3f", ring),
               strprintf("%.3f", ps), strprintf("%.1fx", ps / ring)});
  }
  t.print();

  // --- Real equivalence at small scale. -----------------------------------
  std::printf("\nReal 4-rank check: both strategies end with identical "
              "weights after 10 steps...\n");
  std::vector<float> ring_w, ps_w;
  for (const bool use_ps : {false, true}) {
    auto& out = use_ps ? ps_w : ring_w;
    comm::World::run(4, [&](comm::Communicator& c) {
      hvd::Context ctx(c);
      std::unique_ptr<nn::Optimizer> opt;
      if (use_ps) {
        opt = std::make_unique<hvd::ParameterServerOptimizer>(
            nn::make_optimizer("sgd", 0.05), ctx);
      } else {
        opt = std::make_unique<hvd::DistributedOptimizer>(
            nn::make_optimizer("sgd", 0.05), ctx);
      }
      Tensor w({8}, 1.0f);
      Rng rng(40 + c.rank());
      for (int step = 0; step < 10; ++step) {
        Tensor g({8});
        for (float& v : g.values())
          v = static_cast<float>(rng.normal(w[0] - 0.2, 0.1));
        opt->apply({&w}, {&g});
      }
      if (c.rank() == 0)
        out.assign(w.data(), w.data() + w.numel());
    });
  }
  double max_diff = 0.0;
  for (std::size_t i = 0; i < ring_w.size(); ++i)
    max_diff = std::max(max_diff,
                        std::abs(static_cast<double>(ring_w[i]) - ps_w[i]));
  std::printf("max |w_ring - w_ps| = %.2e %s\n", max_diff,
              max_diff < 1e-5 ? "(identical)" : "(MISMATCH)");
  std::printf("\nThe PS bottleneck grows linearly with workers — the reason "
              "the paper adopts Horovod's allreduce.\n");
  return 0;
}
