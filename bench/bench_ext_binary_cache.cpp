// Extension: binary frame cache vs the paper's loaders. The paper stops at
// a faster CSV parse; caching the parsed frame removes parsing entirely on
// every run after the first — which matters because every Horovod rank of
// every job re-reads the same files. [REAL measurement]
#include <filesystem>

#include "harness.h"
#include "io/binary_cache.h"
#include "io/synthetic.h"

int main(int argc, char** argv) {
  using namespace candle;
  Cli cli;
  cli.flag("cols", "columns of the test file (NT3-like)", "20000")
      .flag("rows", "rows of the test file", "80")
      .flag("workdir", "scratch directory", "/tmp");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  const std::string path = cli.get("workdir") + "/candle_cache_demo.csv";
  std::filesystem::remove(io::cache_path_for(path));
  const std::size_t bytes = io::write_synthetic_csv(
      path,
      {static_cast<std::size_t>(cli.get_int("rows")),
       static_cast<std::size_t>(cli.get_int("cols")), false},
      77);
  std::printf("Extension: binary frame cache on a %s NT3-geometry CSV "
              "[REAL measurement]\n\n",
              format_bytes(static_cast<double>(bytes)).c_str());

  Table t({"loader", "seconds", "notes"});
  io::CsvReadStats stats;
  (void)io::read_csv_original(path, &stats);
  t.add_row({"pandas-default model", strprintf("%.3f", stats.seconds),
             "the paper's baseline"});
  (void)io::read_csv_chunked(path, &stats);
  t.add_row({"chunked 16MB", strprintf("%.3f", stats.seconds),
             "the paper's optimization"});
  (void)io::read_csv_cached(path, io::LoaderKind::kChunked, &stats);
  const double build = stats.seconds;
  (void)io::read_csv_cached(path, io::LoaderKind::kChunked, &stats);
  t.add_row({"binary cache (build)", strprintf("%.3f", build),
             "first run: parse + write cache"});
  t.add_row({"binary cache (hit)", strprintf("%.3f", stats.seconds),
             "every later run"});
  t.print();
  std::printf("\nThe cache hit avoids parsing entirely — the logical end "
              "point of the paper's data-loading optimization.\n");
  std::filesystem::remove(path);
  std::filesystem::remove(io::cache_path_for(path));
  return 0;
}
