// Extension (paper §7 future work): DVFS performance-power modeling of the
// CANDLE benchmarks. Sweeps GPU frequency for a compute-heavy NT3 run and
// reports time/energy/EDP/ED²P, locating the energy-optimal and
// performance-balanced operating points. [simulated]
#include "harness.h"
#include "sim/dvfs.h"

int main() {
  using namespace candle;
  using namespace candle::bench;
  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::nt3());
  sim::RunPlan plan;
  plan.ranks = 6;
  plan.epochs_per_rank = 64;  // compute-dominated (full node, 384 epochs)
  plan.loader = io::LoaderKind::kChunked;

  std::printf("Extension: DVFS sweep for NT3 on one Summit node (6 GPUs, "
              "64 epochs each, optimized loader) [simulated]\n\n");
  Table t({"f/f0", "time (s)", "energy/GPU (kJ)", "EDP (MJ*s)",
           "ED^2P (MJ*s^2)"});
  const auto sweep = sim::dvfs_sweep(simulator, plan);
  for (const auto& p : sweep) {
    t.add_row({strprintf("%.2f", p.freq_ratio),
               strprintf("%.1f", p.total_s),
               strprintf("%.2f", p.energy_j / 1e3),
               strprintf("%.2f", p.edp / 1e6),
               strprintf("%.1f", p.ed2p / 1e6)});
  }
  t.print();
  const auto e_opt = sim::dvfs_energy_optimal(sweep);
  const auto p_opt = sim::dvfs_ed2p_optimal(sweep);
  const auto nominal = sim::dvfs_evaluate(simulator, plan, 1.0);
  std::printf("\nenergy-optimal frequency: %.2f f0 (%.1f%% energy saving "
              "vs nominal, %.1f%% slower)\n",
              e_opt.freq_ratio,
              100.0 * (1.0 - e_opt.energy_j / nominal.energy_j),
              100.0 * (e_opt.total_s / nominal.total_s - 1.0));
  std::printf("ED^2P-optimal frequency:  %.2f f0\n", p_opt.freq_ratio);
  return 0;
}
