// Extension: parallel-efficiency and Karp-Flatt analysis of the NT3
// strong-scaling curves. The experimentally determined serial fraction
// makes the paper's finding quantitative: the replicated per-rank data
// loading IS the serial term of Amdahl's law, and the optimized loader
// shrinks it ~5x. [simulated]
#include "harness.h"
#include "sim/scaling_metrics.h"

int main() {
  using namespace candle;
  using namespace candle::bench;
  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::nt3());

  std::printf("Extension: efficiency and Karp-Flatt serial fraction, NT3 "
              "strong scaling on Summit [simulated]\n\n");
  Table t({"GPUs", "eff orig", "eff opt", "Karp-Flatt orig",
           "Karp-Flatt opt"});

  std::vector<sim::ScalingPoint> curve_orig, curve_opt;
  for (std::size_t ranks : summit_strong_ranks()) {
    const std::size_t epochs = comp_epochs_balanced(384, ranks);
    if (epochs == 0) continue;
    sim::RunPlan plan;
    plan.ranks = ranks;
    plan.epochs_per_rank = epochs;
    plan.loader = io::LoaderKind::kOriginal;
    curve_orig.push_back({ranks, simulator.simulate(plan).phases.total()});
    plan.loader = io::LoaderKind::kChunked;
    curve_opt.push_back({ranks, simulator.simulate(plan).phases.total()});
  }
  for (std::size_t i = 1; i < curve_orig.size(); ++i) {
    t.add_row(
        {std::to_string(curve_orig[i].ranks),
         strprintf("%.3f",
                   sim::parallel_efficiency(curve_orig[0], curve_orig[i])),
         strprintf("%.3f",
                   sim::parallel_efficiency(curve_opt[0], curve_opt[i])),
         strprintf("%.4f", sim::karp_flatt(curve_orig[0], curve_orig[i])),
         strprintf("%.4f", sim::karp_flatt(curve_opt[0], curve_opt[i]))});
  }
  t.print();

  const double f_orig = sim::fit_serial_fraction(curve_orig);
  const double f_opt = sim::fit_serial_fraction(curve_opt);
  std::printf(
      "\nAmdahl fit of the serial fraction: original %.4f, optimized %.4f "
      "(%.1fx smaller).\nThe serial term is dominated by the per-rank "
      "replicated data loading (%.0f s vs %.0f s at 1 GPU),\nwhich is "
      "exactly what the paper's chunked loader attacks.\n",
      f_orig, f_opt, f_orig / f_opt,
      simulator.data_load_seconds(io::LoaderKind::kOriginal, 1),
      simulator.data_load_seconds(io::LoaderKind::kChunked, 1));
  return 0;
}
