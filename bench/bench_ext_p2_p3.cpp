// Extension (paper §1): "This parallelization method can be applied to
// other CANDLE benchmarks such as the P2 and P3 benchmarks in a similar
// way." Applies the full pipeline — Horovod strong scaling with the
// original vs optimized loader — to P2B1 (molecular-dynamics autoencoder)
// and P3B1 (clinical-report classifier), plus a real-training accuracy
// check of the epochs-per-GPU ladder. Profiles are ASSUMED (documented in
// calibration.cpp); the point is that the methodology transfers.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace candle;
  using namespace candle::bench;
  Cli cli;
  cli.flag("scale", "dataset scale for the accuracy runs", "0.002")
      .bool_flag("skip-accuracy", "skip the real-training panel");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  for (const char* name : {"P2B1", "P3B1"}) {
    const sim::BenchmarkProfile& profile =
        sim::BenchmarkProfile::by_name(name);
    const auto rows =
        compare_loaders(sim::Machine::summit(), profile,
                        summit_strong_ranks(), profile.default_epochs,
                        /*weak=*/false);
    std::printf("Extension: Horovod %s on Summit, strong scaling of %zu "
                "epochs [simulated, ASSUMED profile]\n\n", name,
                profile.default_epochs);
    print_comparison_panels(std::string(name) + " on Summit", rows, "GPUs");
    std::printf("\n");
  }

  if (cli.get_bool("skip-accuracy")) return 0;

  std::printf("Accuracy ladder for P3B1 (classifier) under strong scaling "
              "[real training]\n\n");
  const double scale = cli.get_double("scale");
  Table acc({"GPUs", "epochs/GPU", "accuracy"});
  for (std::size_t gpus : {4u, 8u, 16u, 32u, 64u}) {
    const AccuracyPoint p = reference_accuracy(BenchmarkId::kP3B1, gpus, 64,
                                               0, scale, /*weak=*/false);
    acc.add_row({std::to_string(gpus), std::to_string(p.epochs_per_gpu),
                 strprintf("%.4f", p.accuracy)});
  }
  acc.print();
  std::printf("\nThe same epochs-per-GPU accuracy cliff appears — the P1 "
              "findings generalize, as the paper predicts.\n");
  return 0;
}
