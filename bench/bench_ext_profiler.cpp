// Extension (paper §7): NVProf-style per-layer profile of one training
// step for each benchmark, identifying the next bottleneck after data
// loading is fixed. [REAL measurement on the scaled models]
#include "harness.h"
#include "candle/profiler.h"

int main(int argc, char** argv) {
  using namespace candle;
  Cli cli;
  cli.flag("scale", "model scale", "0.004")
      .flag("reps", "repetitions per profile", "5");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  const double scale = cli.get_double("scale");
  const auto reps = static_cast<std::size_t>(cli.get_int("reps"));
  std::printf("Extension: per-layer step profile (nvprof-style), scaled "
              "models [REAL measurement]\n\n");
  for (BenchmarkId id : all_benchmarks()) {
    const StepProfile profile = profile_step(id, scale, 0, reps);
    std::printf("--- %s ---\n%s", benchmark_name(id),
                format_profile(profile).c_str());
    std::printf("bottleneck: %s\n\n",
                profile.layers[profile.hottest()].layer.c_str());
  }
  return 0;
}
