// Reproduces Figure 6: Horovod NT3 on Summit under strong scaling.
//  (a) performance: TensorFlow (train) time, data-loading time, and total
//      runtime for batch sizes 20 and 40, 1-384 GPUs  [simulated]
//  (b) training accuracy vs GPUs for batch sizes 20 and 40  [real training]
#include "harness.h"

int main(int argc, char** argv) {
  using namespace candle;
  using namespace candle::bench;
  Cli cli;
  cli.flag("scale", "dataset scale for the accuracy runs", "0.0015")
      .bool_flag("skip-accuracy", "skip the real-training panel");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::nt3());
  const std::size_t total_epochs = 384;

  std::printf("Figure 6(a): Horovod NT3 on Summit, strong scaling, "
              "%zu total epochs [simulated]\n\n", total_epochs);
  Table perf({"GPUs", "epochs/GPU", "TensorFlow bs=20 (s)",
              "Data loading (s)", "Total bs=20 (s)", "Total bs=40 (s)"});
  for (std::size_t ranks : summit_strong_ranks()) {
    const std::size_t epochs = comp_epochs_balanced(total_epochs, ranks);
    if (epochs == 0) continue;
    sim::RunPlan plan;
    plan.ranks = ranks;
    plan.epochs_per_rank = epochs;
    plan.loader = io::LoaderKind::kOriginal;
    plan.batch_per_rank = 20;
    const sim::SimResult r20 = simulator.simulate(plan);
    plan.batch_per_rank = 40;
    const sim::SimResult r40 = simulator.simulate(plan);
    perf.add_row({std::to_string(ranks), std::to_string(epochs),
                  strprintf("%.1f", r20.phases.train()),
                  strprintf("%.1f", r20.phases.data_load),
                  strprintf("%.1f", r20.phases.total()),
                  strprintf("%.1f", r40.phases.total())});
  }
  perf.print();
  std::printf("\nNote: from 48 GPUs on, data loading dominates the total "
              "runtime (the paper's bottleneck finding).\n\n");

  if (cli.get_bool("skip-accuracy")) return 0;

  std::printf("Figure 6(b): training accuracy vs GPUs [real training on "
              "scaled synthetic data]\n");
  std::printf("Strong scaling of the paper's 384 total epochs with linear "
              "lr scaling.\n\n");
  const double scale = cli.get_double("scale");
  Table acc({"GPUs", "epochs/GPU", "accuracy bs=20", "accuracy bs=40"});
  for (std::size_t gpus : {6u, 12u, 24u, 48u, 96u, 192u, 384u}) {
    const AccuracyPoint a20 =
        reference_accuracy(BenchmarkId::kNT3, gpus, 384, 20, scale, false);
    const AccuracyPoint a40 =
        reference_accuracy(BenchmarkId::kNT3, gpus, 384, 40, scale, false);
    acc.add_row({std::to_string(gpus), std::to_string(a20.epochs_per_gpu),
                 strprintf("%.4f", a20.accuracy),
                 strprintf("%.4f", a40.accuracy)});
  }
  acc.print();
  std::printf("\nAs in the paper: accuracy holds near 1.0 down to ~8 epochs "
              "per GPU and degrades below ~4.\n");
  return 0;
}
