// Reproduces Figure 7: Horovod NT3 on 384 GPUs on Summit.
//  (a) GPU power over time (nvidia-smi, 1 Hz)  [simulated]
//  (b) Horovod timeline with the ~43.7 s broadcast overhead  [simulated]
#include "harness.h"

int main(int argc, char** argv) {
  using namespace candle;
  Cli cli;
  cli.flag("out-dir", "directory for trace/power dumps", "/tmp");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::nt3());
  sim::RunPlan plan;
  plan.ranks = 384;
  plan.epochs_per_rank = 1;  // 384 epochs / 384 GPUs
  plan.loader = io::LoaderKind::kOriginal;
  plan.make_timeline = true;
  plan.make_power_trace = true;
  const sim::SimResult r = simulator.simulate(plan);

  std::printf("Figure 7(a): GPU power over time, NT3 on 384 GPUs "
              "[simulated, 1 Hz nvidia-smi sampling]\n\n");
  // Print a coarse strip chart: one row per 20 s bucket.
  const auto& samples = r.trace.samples;
  Table strip({"t (s)", "avg W", "phase sketch"});
  for (std::size_t start = 0; start < samples.size(); start += 20) {
    double sum = 0.0;
    const std::size_t end = std::min(samples.size(), start + 20);
    for (std::size_t i = start; i < end; ++i) sum += samples[i].watts;
    const double avg = sum / static_cast<double>(end - start);
    const int bars = static_cast<int>(avg / 10.0);
    strip.add_row({strprintf("%zu-%zu", start, end),
                   strprintf("%.0f", avg), std::string(bars, '#')});
  }
  strip.print();
  const std::string power_csv = cli.get("out-dir") + "/fig07_power.csv";
  {
    std::FILE* f = std::fopen(power_csv.c_str(), "wb");
    if (f != nullptr) {
      const std::string csv = r.trace.to_csv();
      std::fwrite(csv.data(), 1, csv.size(), f);
      std::fclose(f);
    }
  }

  std::printf("\nFigure 7(b): Horovod timeline [simulated]\n");
  const double negotiate =
      r.timeline->total_duration(trace::kNegotiateBroadcast, 0);
  const double bcast = r.timeline->total_duration(trace::kMpiBroadcast, 0);
  const double load = r.timeline->total_duration(trace::kDataLoading, 0);
  std::printf("  data loading:         %.1f s (paper: ~153 s)\n", load);
  std::printf("  negotiate_broadcast:  %.2f s (paper: ~43.72 s)\n",
              negotiate);
  std::printf("  mpi_broadcast:        %.3f s\n", bcast);
  std::printf("  allreduce total:      %.2f s\n",
              r.timeline->total_duration(trace::kNcclAllreduce, 0) +
                  r.timeline->total_duration(trace::kNegotiateAllreduce, 0));
  const std::string tl_path = cli.get("out-dir") + "/fig07_timeline.json";
  r.timeline->write_chrome_json(tl_path);
  std::printf("\npower series: %s\nchrome trace: %s\n", power_csv.c_str(),
              tl_path.c_str());
  return 0;
}
