// Reproduces Figure 8: Horovod P1B1 on Summit, strong scaling.
//  (a) performance with batch sizes 100 and 110 (<= 96 GPUs: P1B1 needs at
//      least 4 epochs)  [simulated]
//  (b) training loss vs GPUs for both batch sizes  [real training]
#include "harness.h"

int main(int argc, char** argv) {
  using namespace candle;
  using namespace candle::bench;
  Cli cli;
  cli.flag("scale", "dataset scale for the loss runs", "0.0015")
      .bool_flag("skip-accuracy", "skip the real-training panel");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::p1b1());
  std::printf("Figure 8(a): Horovod P1B1 on Summit, strong scaling of 384 "
              "epochs [simulated]\n\n");
  Table perf({"GPUs", "epochs/GPU", "TensorFlow (s)", "Data loading (s)",
              "Total bs=100 (s)", "Total bs=110 (s)"});
  for (std::size_t ranks : summit_strong_ranks()) {
    const std::size_t epochs = comp_epochs_balanced(384, ranks);
    if (epochs < 4) continue;  // "P1B1 requires at least 4 epochs"
    sim::RunPlan plan;
    plan.ranks = ranks;
    plan.epochs_per_rank = epochs;
    plan.loader = io::LoaderKind::kOriginal;
    plan.batch_per_rank = 100;
    const sim::SimResult r100 = simulator.simulate(plan);
    plan.batch_per_rank = 110;
    const sim::SimResult r110 = simulator.simulate(plan);
    perf.add_row({std::to_string(ranks), std::to_string(epochs),
                  strprintf("%.1f", r100.phases.train()),
                  strprintf("%.1f", r100.phases.data_load),
                  strprintf("%.1f", r100.phases.total()),
                  strprintf("%.1f", r110.phases.total())});
  }
  perf.print();
  std::printf("\nData loading dominates from 24 GPUs on, as in the paper.\n\n");

  if (cli.get_bool("skip-accuracy")) return 0;

  std::printf("Figure 8(b): training loss vs GPUs [real training]\n\n");
  const double scale = cli.get_double("scale");
  Table loss({"GPUs", "epochs/GPU", "loss bs=100", "loss bs=110"});
  for (std::size_t gpus : {1u, 2u, 4u, 8u, 12u}) {
    // 48 total epochs preserves the paper's epochs-per-GPU ladder.
    const AccuracyPoint a100 =
        reference_accuracy(BenchmarkId::kP1B1, gpus, 48, 100, scale, false);
    const AccuracyPoint a110 =
        reference_accuracy(BenchmarkId::kP1B1, gpus, 48, 110, scale, false);
    loss.add_row({std::to_string(gpus), std::to_string(a100.epochs_per_gpu),
                  strprintf("%.5f", a100.loss),
                  strprintf("%.5f", a110.loss)});
  }
  loss.print();
  std::printf("\nLoss increases only slightly with GPUs for both batch "
              "sizes, as in the paper.\n");
  return 0;
}
