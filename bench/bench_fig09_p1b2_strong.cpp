// Reproduces Figure 9: Horovod P1B2 on Summit, strong scaling.
//  (a) performance with batch sizes 60 (default) and 100  [simulated]
//  (b) training accuracy vs GPUs (accuracy collapses when epochs/GPU < 16)
//      [real training]
#include "harness.h"

int main(int argc, char** argv) {
  using namespace candle;
  using namespace candle::bench;
  Cli cli;
  cli.flag("scale", "dataset scale for the accuracy runs", "0.0015")
      .bool_flag("skip-accuracy", "skip the real-training panel");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::p1b2());
  std::printf("Figure 9(a): Horovod P1B2 on Summit, strong scaling of 768 "
              "epochs [simulated]\n\n");
  Table perf({"GPUs", "epochs/GPU", "TensorFlow (s)", "Data loading (s)",
              "Total bs=60 (s)", "Total bs=100 (s)"});
  for (std::size_t ranks : summit_strong_ranks()) {
    const std::size_t epochs = comp_epochs_balanced(768, ranks);
    if (epochs == 0) continue;
    sim::RunPlan plan;
    plan.ranks = ranks;
    plan.epochs_per_rank = epochs;
    plan.loader = io::LoaderKind::kOriginal;
    plan.batch_per_rank = 60;
    const sim::SimResult r60 = simulator.simulate(plan);
    plan.batch_per_rank = 100;
    const sim::SimResult r100 = simulator.simulate(plan);
    perf.add_row({std::to_string(ranks), std::to_string(epochs),
                  strprintf("%.1f", r60.phases.train()),
                  strprintf("%.1f", r60.phases.data_load),
                  strprintf("%.1f", r60.phases.total()),
                  strprintf("%.1f", r100.phases.total())});
  }
  perf.print();

  if (cli.get_bool("skip-accuracy")) return 0;

  std::printf("\nFigure 9(b): training accuracy vs GPUs [real training]\n");
  std::printf("Strong scaling of 96 total epochs: 16 epochs/GPU at 6 GPUs "
              "(the paper's accuracy threshold), 1 at 96.\n\n");
  const double scale = cli.get_double("scale");
  Table acc({"GPUs", "epochs/GPU", "accuracy bs=60", "accuracy bs=100"});
  for (std::size_t gpus : {1u, 2u, 6u, 12u, 24u, 48u, 96u}) {
    const AccuracyPoint a60 =
        reference_accuracy(BenchmarkId::kP1B2, gpus, 96, 60, scale, false);
    const AccuracyPoint a100 =
        reference_accuracy(BenchmarkId::kP1B2, gpus, 96, 100, scale, false);
    acc.add_row({std::to_string(gpus), std::to_string(a60.epochs_per_gpu),
                 strprintf("%.4f", a60.accuracy),
                 strprintf("%.4f", a100.accuracy)});
  }
  acc.print();
  std::printf("\nAccuracy decreases significantly once epochs/GPU falls "
              "below ~16, matching §4.2.3.\n");
  return 0;
}
