// Reproduces Figure 10: Horovod P1B3 on Summit with the three batch-size
// scaling strategies (linear / square root / cubic root).
//  (a) runtime per strategy; linear OOMs at 192/384 GPUs  [simulated]
//  (b) accuracy per strategy (cubic root wins)  [real training]
#include "harness.h"

int main(int argc, char** argv) {
  using namespace candle;
  using namespace candle::bench;
  Cli cli;
  cli.flag("scale", "dataset scale for the accuracy runs", "0.01")
      .bool_flag("skip-accuracy", "skip the real-training panel");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::p1b3());
  const std::vector<BatchScaling> strategies{
      BatchScaling::kLinear, BatchScaling::kSqrt, BatchScaling::kCbrt};

  std::printf("Figure 10(a): P1B3 runtime by batch scaling strategy "
              "[simulated]\n\n");
  Table perf({"GPUs", "linear bs", "linear (s)", "sqrt bs", "sqrt (s)",
              "cbrt bs", "cbrt (s)"});
  for (std::size_t ranks : summit_strong_ranks()) {
    std::vector<std::string> cells{std::to_string(ranks)};
    for (BatchScaling strategy : strategies) {
      const std::size_t batch = scaled_batch(100, ranks, strategy);
      sim::RunPlan plan;
      plan.ranks = ranks;
      plan.epochs_per_rank = 1;
      plan.batch_per_rank = batch;
      plan.level = sim::ParallelLevel::kBatchStep;
      cells.push_back(std::to_string(batch));
      try {
        cells.push_back(
            strprintf("%.1f", simulator.simulate(plan).phases.total()));
      } catch (const OutOfMemory&) {
        cells.push_back("FAILED (OOM)");
      }
    }
    perf.add_row(std::move(cells));
  }
  perf.print();
  std::printf("\nLinear scaling is fastest but fails at 19,200/38,400 batch "
              "(192/384 GPUs); cubic root is slowest — as in the paper.\n\n");

  if (cli.get_bool("skip-accuracy")) return 0;

  std::printf("Figure 10(b): accuracy (R^2) by strategy [real training, one "
              "epoch, lr scaled by GPU count as in §2.3.2]\n\n");
  const double scale = cli.get_double("scale");
  Table acc({"GPUs", "linear", "sqrt", "cbrt"});
  for (std::size_t gpus : {1u, 6u, 12u, 24u, 48u, 96u}) {
    std::vector<std::string> cells{std::to_string(gpus)};
    for (BatchScaling strategy : strategies) {
      const std::size_t batch = scaled_batch(100, gpus, strategy);
      // weak=true keeps the single epoch; passing `gpus` applies the
      // paper's linear lr scaling alongside the batch scaling.
      const AccuracyPoint point = reference_accuracy(
          BenchmarkId::kP1B3, gpus, 1, batch, scale, /*weak=*/true);
      cells.push_back(strprintf("%.4f", point.accuracy));
    }
    acc.add_row(std::move(cells));
  }
  acc.print();
  std::printf("\nCubic-root scaling keeps the most optimizer steps per epoch "
              "and yields the best accuracy, matching Fig 10(b).\n");
  return 0;
}
