// Reproduces Figure 11: performance of original vs optimized Horovod NT3
// on Summit under strong scaling (paper: up to 67.68% improvement).
// [simulated]
#include "harness.h"

int main() {
  using namespace candle;
  using namespace candle::bench;
  const auto rows = compare_loaders(sim::Machine::summit(),
                                    sim::BenchmarkProfile::nt3(),
                                    summit_strong_ranks(), 384, false);
  std::printf("Figure 11: Horovod NT3 vs optimized NT3 on Summit, strong "
              "scaling [simulated]\n\n");
  print_comparison_panels("NT3 on Summit", rows, "GPUs");
  std::printf("paper: up to 67.68%% performance improvement\n");
  return 0;
}
