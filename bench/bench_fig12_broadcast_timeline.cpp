// Reproduces Figure 12: timeline for the broadcast of the optimized
// Horovod NT3 on 384 GPUs — the broadcast overhead drops from ~43.72 s to
// ~4.65 s (an ~89% reduction) because faster loading removes the straggler
// skew at the negotiate phase. [simulated]
#include "harness.h"
#include "sim/event_sim.h"

int main(int argc, char** argv) {
  using namespace candle;
  Cli cli;
  cli.flag("out-dir", "directory for the chrome traces", "/tmp");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::nt3());
  std::printf("Figure 12: broadcast overhead, NT3 on 384 GPUs "
              "[simulated]\n\n");
  Table t({"loader", "data load (s)", "negotiate_broadcast (s)",
           "MC straggler estimate (s)", "mpi_broadcast (s)"});
  double orig_overhead = 0.0, opt_overhead = 0.0;
  for (const auto& [loader, label] :
       {std::pair{io::LoaderKind::kOriginal, "original"},
        std::pair{io::LoaderKind::kChunked, "optimized"}}) {
    sim::RunPlan plan;
    plan.ranks = 384;
    plan.epochs_per_rank = 1;
    plan.loader = loader;
    plan.make_timeline = true;
    const sim::SimResult r = simulator.simulate(plan);
    const double mc =
        sim::mc_negotiate_overhead(simulator, loader, 384, 20, 9);
    t.add_row({label, strprintf("%.1f", r.phases.data_load),
               strprintf("%.2f", r.phases.negotiate_broadcast),
               strprintf("%.2f", mc),
               strprintf("%.3f", r.phases.broadcast_xfer)});
    (loader == io::LoaderKind::kOriginal ? orig_overhead : opt_overhead) =
        r.phases.negotiate_broadcast;
    r.timeline->write_chrome_json(cli.get("out-dir") +
                                  "/fig12_timeline_" + label + ".json");
  }
  t.print();
  std::printf("\nbroadcast overhead reduction: %.2f%% (paper: 89.36%%, "
              "43.72 s -> 4.65 s)\n",
              100.0 * (orig_overhead - opt_overhead) / orig_overhead);
  return 0;
}
