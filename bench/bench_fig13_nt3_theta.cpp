// Reproduces Figure 13: performance and energy of original vs optimized
// Horovod NT3 on Theta, strong scaling (paper: up to 38.46% performance
// improvement, up to 32.21% energy saving). [simulated]
#include "harness.h"

int main() {
  using namespace candle;
  using namespace candle::bench;
  const auto rows = compare_loaders(sim::Machine::theta(),
                                    sim::BenchmarkProfile::nt3(),
                                    theta_ranks(), 384, false);
  std::printf("Figure 13: Horovod NT3 vs optimized NT3 on Theta, strong "
              "scaling [simulated]\n\n");
  print_comparison_panels("NT3 on Theta", rows, "nodes");
  std::printf("paper: up to 38.46%% performance improvement, up to 32.21%% "
              "energy saving\n");
  return 0;
}
