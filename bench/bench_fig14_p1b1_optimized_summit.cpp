// Reproduces Figure 14: original vs optimized Horovod P1B1 on Summit,
// strong scaling (paper: up to 78.25% performance improvement and up to
// 78% energy saving — the headline result). [simulated]
#include "harness.h"

int main() {
  using namespace candle;
  using namespace candle::bench;
  // P1B1 runs at most 96 GPUs (needs >= 4 epochs of 384).
  std::vector<std::size_t> ranks;
  for (std::size_t r : summit_strong_ranks())
    if (comp_epochs_balanced(384, r) >= 4) ranks.push_back(r);
  const auto rows = compare_loaders(sim::Machine::summit(),
                                    sim::BenchmarkProfile::p1b1(), ranks,
                                    384, false);
  std::printf("Figure 14: Horovod P1B1 vs optimized P1B1 on Summit, strong "
              "scaling [simulated]\n\n");
  print_comparison_panels("P1B1 on Summit", rows, "GPUs");
  std::printf("paper: up to 78.25%% performance improvement, up to 78%% "
              "energy saving\n");
  return 0;
}
