// Reproduces Figure 15: original vs optimized Horovod P1B1 on Theta
// (paper: up to 45.22% performance improvement, up to 41.78% energy
// saving). [simulated]
#include "harness.h"

int main() {
  using namespace candle;
  using namespace candle::bench;
  std::vector<std::size_t> ranks;
  for (std::size_t r : theta_ranks())
    if (comp_epochs_balanced(384, r) >= 4) ranks.push_back(r);
  const auto rows = compare_loaders(sim::Machine::theta(),
                                    sim::BenchmarkProfile::p1b1(), ranks,
                                    384, false);
  std::printf("Figure 15: Horovod P1B1 vs optimized P1B1 on Theta, strong "
              "scaling [simulated]\n\n");
  print_comparison_panels("P1B1 on Theta", rows, "nodes");
  std::printf("paper: up to 45.22%% performance improvement, up to 41.78%% "
              "energy saving\n");
  return 0;
}
