// Reproduces Figure 16: original vs optimized Horovod P1B2 on Summit
// (paper: up to 55.45% performance improvement, up to 55.44% energy
// saving). [simulated]
#include "harness.h"

int main() {
  using namespace candle;
  using namespace candle::bench;
  const auto rows = compare_loaders(sim::Machine::summit(),
                                    sim::BenchmarkProfile::p1b2(),
                                    summit_strong_ranks(), 768, false);
  std::printf("Figure 16: Horovod P1B2 vs optimized P1B2 on Summit, strong "
              "scaling [simulated]\n\n");
  print_comparison_panels("P1B2 on Summit", rows, "GPUs");
  std::printf("paper: up to 55.45%% performance improvement, up to 55.44%% "
              "energy saving\n");
  return 0;
}
