// Reproduces Figure 17: original vs optimized Horovod P1B2 on Theta
// (paper: up to 40.72% performance improvement, up to 40.95% energy
// saving). [simulated]
#include "harness.h"

int main() {
  using namespace candle;
  using namespace candle::bench;
  const auto rows = compare_loaders(sim::Machine::theta(),
                                    sim::BenchmarkProfile::p1b2(),
                                    theta_ranks(), 768, false);
  std::printf("Figure 17: Horovod P1B2 vs optimized P1B2 on Theta, strong "
              "scaling [simulated]\n\n");
  print_comparison_panels("P1B2 on Theta", rows, "nodes");
  std::printf("paper: up to 40.72%% performance improvement, up to 40.95%% "
              "energy saving\n");
  return 0;
}
