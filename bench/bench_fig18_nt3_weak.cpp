// Reproduces Figure 18: Horovod NT3 with weak scaling (8 epochs per GPU)
// on Summit up to 3,072 GPUs (paper: 34.23-52.44% performance improvement,
// 22.31-28.59% energy saving). [simulated]
#include "harness.h"

int main() {
  using namespace candle;
  using namespace candle::bench;
  const auto rows = compare_loaders(sim::Machine::summit(),
                                    sim::BenchmarkProfile::nt3(),
                                    summit_weak_ranks(), 8, /*weak=*/true);
  std::printf("Figure 18: Horovod NT3, weak scaling (8 epochs/GPU) on "
              "Summit [simulated]\n\n");
  print_comparison_panels("NT3 weak scaling", rows, "GPUs");
  std::printf("paper: improvement between 34.23%% and 52.44%%, energy "
              "saving between 22.31%% and 28.59%%; the improvement\n"
              "percentage decreases with GPUs because the (unchanged) "
              "Horovod overhead grows.\n");
  return 0;
}
