// Reproduces Figure 19: timeline for the weak-scaling Horovod NT3 on 768
// GPUs — broadcast overhead drops from ~37.65 s to ~5.3 s (85.92%), and the
// timeline shows 8 communication bursts for the 8 epochs. [simulated]
#include "harness.h"

int main(int argc, char** argv) {
  using namespace candle;
  Cli cli;
  cli.flag("out-dir", "directory for the chrome traces", "/tmp");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::nt3());
  std::printf("Figure 19: weak-scaling NT3 timeline on 768 GPUs, 8 "
              "epochs/GPU [simulated]\n\n");
  double orig = 0.0, opt = 0.0;
  for (const auto& [loader, label] :
       {std::pair{io::LoaderKind::kOriginal, "original"},
        std::pair{io::LoaderKind::kChunked, "optimized"}}) {
    sim::RunPlan plan;
    plan.ranks = 768;
    plan.epochs_per_rank = 8;
    plan.loader = loader;
    plan.make_timeline = true;
    const sim::SimResult r = simulator.simulate(plan);
    // Count the per-epoch allreduce bursts in rank 0's lane.
    std::size_t bursts = 0;
    for (const auto& e : r.timeline->events())
      if (e.rank == 0 && e.name == trace::kNcclAllreduce) ++bursts;
    std::printf("  %-9s: negotiate_broadcast %.2f s, %zu allreduce bursts "
                "(one per epoch)\n", label, r.phases.negotiate_broadcast,
                bursts);
    (loader == io::LoaderKind::kOriginal ? orig : opt) =
        r.phases.negotiate_broadcast;
    r.timeline->write_chrome_json(cli.get("out-dir") +
                                  "/fig19_timeline_" + label + ".json");
  }
  std::printf("\nbroadcast overhead reduction: %.2f%% (paper: 85.92%%, "
              "37.65 s -> 5.3 s on 768 GPUs)\n",
              100.0 * (orig - opt) / orig);
  return 0;
}
