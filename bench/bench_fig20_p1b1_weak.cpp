// Reproduces Figure 20: Horovod P1B1 with weak scaling on Summit (paper:
// 75.24-79.50% performance improvement, 69.70-77.11% energy saving).
// [simulated]
#include "harness.h"

int main() {
  using namespace candle;
  using namespace candle::bench;
  const auto rows = compare_loaders(sim::Machine::summit(),
                                    sim::BenchmarkProfile::p1b1(),
                                    summit_weak_ranks(), 8, /*weak=*/true);
  std::printf("Figure 20: Horovod P1B1, weak scaling (8 epochs/GPU) on "
              "Summit [simulated]\n\n");
  print_comparison_panels("P1B1 weak scaling", rows, "GPUs");
  std::printf("paper: improvement between 75.24%% and 79.50%%, energy "
              "saving between 69.70%% and 77.11%%\n");
  return 0;
}
