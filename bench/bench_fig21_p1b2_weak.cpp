// Reproduces Figure 21: Horovod P1B2 with weak scaling on Summit (paper:
// 48.63-56.62% performance improvement, 45.86-53.91% energy saving).
// [simulated]
#include "harness.h"

int main() {
  using namespace candle;
  using namespace candle::bench;
  const auto rows = compare_loaders(sim::Machine::summit(),
                                    sim::BenchmarkProfile::p1b2(),
                                    summit_weak_ranks(), 8, /*weak=*/true);
  std::printf("Figure 21: Horovod P1B2, weak scaling (8 epochs/GPU) on "
              "Summit [simulated]\n\n");
  print_comparison_panels("P1B2 weak scaling", rows, "GPUs");
  std::printf("paper: improvement between 48.63%% and 56.62%%, energy "
              "saving between 45.86%% and 53.91%%\n");
  return 0;
}
