// Micro-benchmarks of the communication substrate: ring vs naive allreduce,
// broadcast, and the tensor-fusion ablation (fused vs per-tensor).
#include <benchmark/benchmark.h>

#include "comm/communicator.h"
#include "hvd/context.h"
#include "hvd/fusion.h"

namespace {

using namespace candle;

void BM_AllreduceRing(benchmark::State& state) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  const auto elems = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    comm::World::run(ranks, [&](comm::Communicator& c) {
      std::vector<float> data(elems, static_cast<float>(c.rank()));
      for (int i = 0; i < 8; ++i) c.allreduce_sum(data);
    });
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8 *
                          static_cast<int64_t>(elems * sizeof(float)));
}

void BM_AllreduceNaive(benchmark::State& state) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  const auto elems = static_cast<std::size_t>(state.range(1));
  comm::WorldOptions opt;
  opt.allreduce_algo = comm::AllreduceAlgo::kNaive;
  for (auto _ : state) {
    comm::World::run(
        ranks,
        [&](comm::Communicator& c) {
          std::vector<float> data(elems, static_cast<float>(c.rank()));
          for (int i = 0; i < 8; ++i) c.allreduce_sum(data);
        },
        opt);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8 *
                          static_cast<int64_t>(elems * sizeof(float)));
}

void BM_Broadcast(benchmark::State& state) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  const auto elems = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    comm::World::run(ranks, [&](comm::Communicator& c) {
      std::vector<float> data(elems, 1.0f);
      for (int i = 0; i < 8; ++i) c.broadcast(data, 0);
    });
  }
}

// Fusion ablation: 64 small gradient tensors, fused vs one-collective-each.
void BM_FusedAllreduce(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  for (auto _ : state) {
    comm::World::run(4, [&](comm::Communicator& c) {
      hvd::Context ctx(c);
      std::vector<Tensor> tensors;
      for (int i = 0; i < 64; ++i) tensors.emplace_back(Shape{256}, 1.0f);
      std::vector<Tensor*> ptrs;
      for (auto& t : tensors) ptrs.push_back(&t);
      hvd::FusionOptions opt;
      opt.threshold_bytes = fused ? 64ull << 20 : 0;
      hvd::allreduce_average_fused(ctx, ptrs, opt);
    });
  }
  state.SetLabel(fused ? "fused" : "per-tensor");
}

BENCHMARK(BM_AllreduceRing)
    ->Args({2, 1 << 16})->Args({4, 1 << 16})->Args({8, 1 << 16})
    ->Unit(benchmark::kMillisecond)->MinTime(0.4);
BENCHMARK(BM_AllreduceNaive)
    ->Args({2, 1 << 16})->Args({4, 1 << 16})->Args({8, 1 << 16})
    ->Unit(benchmark::kMillisecond)->MinTime(0.4);
BENCHMARK(BM_Broadcast)
    ->Args({4, 1 << 16})->Args({8, 1 << 16})
    ->Unit(benchmark::kMillisecond)->MinTime(0.4);
BENCHMARK(BM_FusedAllreduce)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->MinTime(0.4);

}  // namespace

BENCHMARK_MAIN();
