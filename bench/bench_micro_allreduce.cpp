// Micro-benchmarks of the communication substrate: ring vs naive vs
// hierarchical allreduce, broadcast, the tensor-fusion ablation (fused vs
// per-tensor), the backward-overlap ablation (overlapped vs synchronous
// gradient exchange), and the collective algorithm x wire-dtype sweep under
// the emulated interconnect (BENCH_collectives.json).
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <thread>

#include "comm/communicator.h"
#include "hvd/bucket_scheduler.h"
#include "hvd/context.h"
#include "hvd/fusion.h"

namespace {

using namespace candle;

void BM_AllreduceRing(benchmark::State& state) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  const auto elems = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    comm::World::run(ranks, [&](comm::Communicator& c) {
      std::vector<float> data(elems, static_cast<float>(c.rank()));
      for (int i = 0; i < 8; ++i) c.allreduce_sum(data);
    });
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8 *
                          static_cast<int64_t>(elems * sizeof(float)));
}

void BM_AllreduceNaive(benchmark::State& state) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  const auto elems = static_cast<std::size_t>(state.range(1));
  comm::WorldOptions opt;
  opt.allreduce_algo = comm::AllreduceAlgo::kNaive;
  for (auto _ : state) {
    comm::World::run(
        ranks,
        [&](comm::Communicator& c) {
          std::vector<float> data(elems, static_cast<float>(c.rank()));
          for (int i = 0; i < 8; ++i) c.allreduce_sum(data);
        },
        opt);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8 *
                          static_cast<int64_t>(elems * sizeof(float)));
}

void BM_AllreduceHierarchical(benchmark::State& state) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  const auto elems = static_cast<std::size_t>(state.range(1));
  comm::WorldOptions opt;
  opt.allreduce_algo = comm::AllreduceAlgo::kHierarchical;
  // Two ranks per modeled node, so every configuration from 4 ranks on
  // exercises the inter-node leader ring, not just the intra-node phases.
  opt.ranks_per_node = 2;
  for (auto _ : state) {
    comm::World::run(
        ranks,
        [&](comm::Communicator& c) {
          std::vector<float> data(elems, static_cast<float>(c.rank()));
          for (int i = 0; i < 8; ++i) c.allreduce_sum(data);
        },
        opt);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 8 *
                          static_cast<int64_t>(elems * sizeof(float)));
}

void BM_Broadcast(benchmark::State& state) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  const auto elems = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    comm::World::run(ranks, [&](comm::Communicator& c) {
      std::vector<float> data(elems, 1.0f);
      for (int i = 0; i < 8; ++i) c.broadcast(data, 0);
    });
  }
}

// Fusion ablation: 64 small gradient tensors, fused vs one-collective-each.
void BM_FusedAllreduce(benchmark::State& state) {
  const bool fused = state.range(0) != 0;
  for (auto _ : state) {
    comm::World::run(4, [&](comm::Communicator& c) {
      hvd::Context ctx(c);
      std::vector<Tensor> tensors;
      for (int i = 0; i < 64; ++i) tensors.emplace_back(Shape{256}, 1.0f);
      std::vector<Tensor*> ptrs;
      for (auto& t : tensors) ptrs.push_back(&t);
      hvd::FusionOptions opt;
      opt.threshold_bytes = fused ? 64ull << 20 : 0;
      hvd::allreduce_average_fused(ctx, ptrs, opt);
    });
  }
  state.SetLabel(fused ? "fused" : "per-tensor");
}

BENCHMARK(BM_AllreduceRing)
    ->Args({2, 1 << 16})->Args({4, 1 << 16})->Args({8, 1 << 16})
    ->Unit(benchmark::kMillisecond)->MinTime(0.4);
BENCHMARK(BM_AllreduceNaive)
    ->Args({2, 1 << 16})->Args({4, 1 << 16})->Args({8, 1 << 16})
    ->Unit(benchmark::kMillisecond)->MinTime(0.4);
BENCHMARK(BM_AllreduceHierarchical)
    ->Args({2, 1 << 16})->Args({4, 1 << 16})->Args({8, 1 << 16})
    ->Unit(benchmark::kMillisecond)->MinTime(0.4);
BENCHMARK(BM_Broadcast)
    ->Args({4, 1 << 16})->Args({8, 1 << 16})
    ->Unit(benchmark::kMillisecond)->MinTime(0.4);
BENCHMARK(BM_FusedAllreduce)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)->MinTime(0.4);

// Overlap ablation: one synthetic training step — a backward pass of 16
// layers with 1 MB of gradients and a fixed compute cost each — with the
// gradient exchange either swept synchronously after backward or reduced
// bucket by bucket on the comm thread while the remaining layers still
// compute (BucketScheduler). The simulated network (latency + bandwidth
// sleeps around every bucket collective, identical on both paths) stands in
// for a real interconnect, so the hidden communication is measurable on a
// shared-memory host. Sweeps bucket size: small buckets drain early and
// overlap well; one 64 MB bucket only completes with the last layer and
// hides nothing.
void BM_OverlapStep(benchmark::State& state) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  const auto bucket_mb = static_cast<std::size_t>(state.range(1));
  const bool overlap = state.range(2) != 0;
  constexpr std::size_t kLayers = 16;
  constexpr std::size_t kElemsPerLayer = (1ull << 20) / sizeof(float);
  constexpr std::size_t kStepsPerIter = 4;  // amortize world spawn/join
  // Per-layer backward cost: a sleep, so the comm thread can genuinely run
  // during the window even on a single hardware core (as a GPU's DMA engine
  // would during backward kernels).
  constexpr auto kComputePerLayer = std::chrono::milliseconds(1);

  hvd::FusionOptions opt;
  opt.threshold_bytes = bucket_mb << 20;
  opt.overlap = overlap;
  opt.sim_net_latency_s = 300e-6;
  opt.sim_net_bytes_per_s = 2.0e9;
  for (auto _ : state) {
    comm::World::run(ranks, [&](comm::Communicator& c) {
      hvd::Context ctx(c);
      std::vector<Tensor> grads;
      for (std::size_t t = 0; t < kLayers; ++t)
        grads.emplace_back(Shape{kElemsPerLayer}, 1.0f);
      std::vector<Tensor*> ptrs;
      for (auto& g : grads) ptrs.push_back(&g);
      hvd::FusionBuffer buffer;
      if (overlap) {
        hvd::BucketScheduler scheduler(ctx, opt, buffer);
        scheduler.bind(ptrs);
        for (std::size_t step = 0; step < kStepsPerIter; ++step) {
          for (std::size_t t = kLayers; t-- > 0;) {
            std::this_thread::sleep_for(kComputePerLayer);  // layer backward
            scheduler.mark_ready(t, 1);
          }
          const hvd::FusionStats stats = scheduler.drain();
          benchmark::DoNotOptimize(&stats);
        }
      } else {
        for (std::size_t step = 0; step < kStepsPerIter; ++step) {
          for (std::size_t t = kLayers; t-- > 0;)
            std::this_thread::sleep_for(kComputePerLayer);  // layer backward
          hvd::allreduce_average_fused(ctx, ptrs, opt, &buffer);
        }
      }
    });
  }
  state.SetLabel(overlap ? "overlap" : "sync");
  state.counters["steps"] =
      benchmark::Counter(static_cast<double>(kStepsPerIter),
                         benchmark::Counter::kIsIterationInvariant);
}

BENCHMARK(BM_OverlapStep)
    ->ArgNames({"ranks", "bucket_mb", "overlap"})
    ->Args({2, 1, 0})->Args({2, 1, 1})
    ->Args({2, 8, 0})->Args({2, 8, 1})
    ->Args({2, 64, 0})->Args({2, 64, 1})
    ->Args({4, 1, 0})->Args({4, 1, 1})
    ->Args({4, 8, 0})->Args({4, 8, 1})
    ->Args({4, 64, 0})->Args({4, 64, 1})
    ->Args({8, 1, 0})->Args({8, 1, 1})
    ->Args({8, 8, 0})->Args({8, 8, 1})
    ->Args({8, 64, 0})->Args({8, 64, 1})
    ->UseRealTime()->Unit(benchmark::kMillisecond)->MinTime(0.4);

// Collective sweep: ranks x fusion bucket size x algorithm x wire dtype x
// emulated wire bandwidth, one fused 16 MB gradient exchange per step. The
// sim_net byte term is algorithm- and dtype-aware, so a compressed dtype
// genuinely shrinks the emulated transfer (fp16/bf16 halve it, int8
// quarters it plus the per-chunk scale metadata) and the hierarchical
// algorithm pays only its inter-node share (ranks_per_node = 2 here). The
// bandwidth axis spans the crossover: on the fast wire (8 GB/s,
// NVLink-class) the codec's conversion cost outweighs the few ms of
// transfer it saves and fp32 stays ahead; on the slow wire (100 MB/s, a
// congested fat-tree share) shrinking the bytes buys far more than the
// conversions cost, fp16/bf16 win over fp32, and int8's 4x cut beats both
// 16-bit dtypes despite its steeper quantizer. The extended RunSimulator
// model predicts the same ordering flips (EXPERIMENTS.md). Committed as
// BENCH_collectives.json.
void BM_CollectiveSweep(benchmark::State& state) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  const auto bucket_mb = static_cast<std::size_t>(state.range(1));
  const auto algo = static_cast<comm::AllreduceAlgo>(state.range(2));
  const auto dtype = static_cast<comm::WireDtype>(state.range(3));
  const auto net_mbps = static_cast<std::size_t>(state.range(4));
  constexpr std::size_t kLayers = 16;
  constexpr std::size_t kElemsPerLayer = (1ull << 20) / sizeof(float);

  comm::WorldOptions world;
  world.allreduce_algo = algo;
  world.ranks_per_node = 2;
  hvd::FusionOptions opt;
  opt.threshold_bytes = bucket_mb << 20;
  opt.wire_dtype = dtype;
  opt.sim_net_latency_s = 300e-6;
  opt.sim_net_bytes_per_s = static_cast<double>(net_mbps) * 1.0e6;
  for (auto _ : state) {
    comm::World::run(
        ranks,
        [&](comm::Communicator& c) {
          hvd::Context ctx(c);
          std::vector<Tensor> grads;
          for (std::size_t t = 0; t < kLayers; ++t)
            grads.emplace_back(Shape{kElemsPerLayer}, 1.0f);
          std::vector<Tensor*> ptrs;
          for (auto& g : grads) ptrs.push_back(&g);
          hvd::FusionBuffer buffer;
          hvd::allreduce_average_fused(ctx, ptrs, opt, &buffer);
        },
        world);
  }
  state.SetLabel(std::string(comm::allreduce_algo_name(algo)) + "/" +
                 comm::wire_dtype_name(dtype));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLayers * kElemsPerLayer *
                                               sizeof(float)));
}

BENCHMARK(BM_CollectiveSweep)
    ->ArgNames({"ranks", "bucket_mb", "algo", "dtype", "net_mbps"})
    ->ArgsProduct({{4, 8}, {4, 16}, {0, 1, 2}, {0, 1, 2, 3}, {100, 8000}})
    ->UseRealTime()->Unit(benchmark::kMillisecond)->MinTime(0.2);

// Hierarchical local-wire ablation: the intra-node member exchanges of the
// hierarchical algorithm compressed independently of the inter-node leader
// ring (WorldOptions::local_wire_dtype). The emulated wire only charges the
// inter-node share, so the local axis isolates the NVLink-tier codec cost:
// int8 local legs pay quantization on every member exchange for bytes the
// emulated network never bills, quantifying what a bandwidth-starved
// intra-node fabric would have to save to justify it.
void BM_HierarchicalLocalWire(benchmark::State& state) {
  const auto wire = static_cast<comm::WireDtype>(state.range(0));
  const auto local_wire = static_cast<comm::WireDtype>(state.range(1));
  constexpr std::size_t kRanks = 8;
  constexpr std::size_t kLayers = 16;
  constexpr std::size_t kElemsPerLayer = (1ull << 20) / sizeof(float);

  comm::WorldOptions world;
  world.allreduce_algo = comm::AllreduceAlgo::kHierarchical;
  world.ranks_per_node = 4;
  world.local_wire_dtype = local_wire;
  hvd::FusionOptions opt;
  opt.threshold_bytes = 16ull << 20;
  opt.wire_dtype = wire;
  opt.sim_net_latency_s = 300e-6;
  opt.sim_net_bytes_per_s = 100.0e6;
  for (auto _ : state) {
    comm::World::run(
        kRanks,
        [&](comm::Communicator& c) {
          hvd::Context ctx(c);
          std::vector<Tensor> grads;
          for (std::size_t t = 0; t < kLayers; ++t)
            grads.emplace_back(Shape{kElemsPerLayer}, 1.0f);
          std::vector<Tensor*> ptrs;
          for (auto& g : grads) ptrs.push_back(&g);
          hvd::FusionBuffer buffer;
          hvd::allreduce_average_fused(ctx, ptrs, opt, &buffer);
        },
        world);
  }
  state.SetLabel(std::string("wire=") + comm::wire_dtype_name(wire) +
                 "/local=" + comm::wire_dtype_name(local_wire));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLayers * kElemsPerLayer *
                                               sizeof(float)));
}

BENCHMARK(BM_HierarchicalLocalWire)
    ->ArgNames({"dtype", "local_dtype"})
    ->ArgsProduct({{0, 3}, {0, 3}})
    ->UseRealTime()->Unit(benchmark::kMillisecond)->MinTime(0.2);

}  // namespace

BENCHMARK_MAIN();
