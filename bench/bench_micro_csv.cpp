// Micro-benchmarks (google-benchmark) of the four CSV readers across file
// geometries — the kernel-level view of Tables 3/4. BM_ReadParallel sweeps
// the candle::parallel pool width (third arg: 1/2/4 threads, 0 = default)
// and feeds the committed BENCH_parallel.json:
//   CANDLE_NUM_THREADS=4 build/bench/bench_micro_csv
//     --benchmark_filter=Parallel --benchmark_out=BENCH_parallel_csv.json
//     --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include <filesystem>

#include "common/parallel.h"
#include "io/csv_reader.h"
#include "io/synthetic.h"

namespace {

using candle::io::FileGeometry;

std::string make_file(std::size_t rows, std::size_t cols) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("micro_csv_" + std::to_string(rows) + "x" + std::to_string(cols) +
        ".csv"))
          .string();
  if (!std::filesystem::exists(path))
    candle::io::write_synthetic_csv(path, FileGeometry{rows, cols, false},
                                    rows * 31 + cols);
  return path;
}

void BM_ReadOriginal(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cols = static_cast<std::size_t>(state.range(1));
  const std::string path = make_file(rows, cols);
  std::size_t bytes = 0;
  for (auto _ : state) {
    candle::io::CsvReadStats stats;
    benchmark::DoNotOptimize(candle::io::read_csv_original(path, &stats));
    bytes = stats.bytes;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) *
                          static_cast<int64_t>(state.iterations()));
}

void BM_ReadChunked(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cols = static_cast<std::size_t>(state.range(1));
  const std::string path = make_file(rows, cols);
  std::size_t bytes = 0;
  for (auto _ : state) {
    candle::io::CsvReadStats stats;
    benchmark::DoNotOptimize(candle::io::read_csv_chunked(path, &stats));
    bytes = stats.bytes;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) *
                          static_cast<int64_t>(state.iterations()));
}

void BM_ReadDask(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cols = static_cast<std::size_t>(state.range(1));
  const std::string path = make_file(rows, cols);
  std::size_t bytes = 0;
  for (auto _ : state) {
    candle::io::CsvReadStats stats;
    benchmark::DoNotOptimize(candle::io::read_csv_dask(path, &stats));
    bytes = stats.bytes;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) *
                          static_cast<int64_t>(state.iterations()));
}

void BM_ReadParallel(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  const auto cols = static_cast<std::size_t>(state.range(1));
  // Pool width for this run; 0 keeps the CANDLE_NUM_THREADS / hardware
  // default. Restored below so later benchmarks see the default again.
  const std::size_t default_width = candle::parallel::num_threads();
  if (state.range(2) != 0)
    candle::parallel::set_num_threads(
        static_cast<std::size_t>(state.range(2)));
  const std::string path = make_file(rows, cols);
  std::size_t bytes = 0;
  for (auto _ : state) {
    candle::io::CsvReadStats stats;
    benchmark::DoNotOptimize(candle::io::read_csv_parallel(path, &stats));
    bytes = stats.bytes;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) *
                          static_cast<int64_t>(state.iterations()));
  candle::parallel::set_num_threads(default_width);
}

// Wide (NT3-like) and narrow (P1B3-like) geometries of ~2 MB each.
#define CSV_GEOMETRIES()                 \
  Args({24, 10000})->Args({2400, 100})  \
      ->Unit(benchmark::kMillisecond)->MinTime(0.4)

BENCHMARK(BM_ReadOriginal)->CSV_GEOMETRIES();
BENCHMARK(BM_ReadChunked)->CSV_GEOMETRIES();
BENCHMARK(BM_ReadDask)->CSV_GEOMETRIES();
// Thread sweep on the wide NT3-like geometry plus the default width on the
// narrow one.
// Wall time, not main-thread CPU time: the parsing runs on pool workers.
BENCHMARK(BM_ReadParallel)
    ->Args({24, 10000, 1})->Args({24, 10000, 2})->Args({24, 10000, 4})
    ->Args({24, 10000, 0})->Args({2400, 100, 0})
    ->Unit(benchmark::kMillisecond)->MinTime(0.4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
