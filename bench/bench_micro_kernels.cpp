// Micro-benchmarks of the tensor kernels that carry the NN substrate's
// training cost, reported as wall time AND GFLOP/s so results are
// comparable across shapes and across PRs.
//
// Two families:
//   * paper-shaped problems — the P1B1 60,483-wide input Dense GEMM and
//     the NT3 first Conv1D layer — each measured for both the blocked
//     kernel (gemm / im2col conv) and the preserved naive reference, so
//     the speedup trajectory is recorded;
//   * a small "Smoke" set that CI runs per commit (non-gating) and
//     uploads as BENCH_kernels.json.
//
// Regenerate the committed BENCH_kernels.json with:
//   build/bench/bench_micro_kernels
//     --benchmark_out=BENCH_kernels.json --benchmark_out_format=json
//
// The *Threads benchmarks sweep the candle::parallel pool width (arg = 1,
// 2, 4 threads; 0 = the CANDLE_NUM_THREADS / hardware default) and feed
// the committed BENCH_parallel.json:
//   CANDLE_NUM_THREADS=4 build/bench/bench_micro_kernels
//     --benchmark_filter='Threads' --benchmark_out=BENCH_parallel.json
//     --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include "common/parallel.h"
#include "common/rng.h"
#include "harness.h"
#include "tensor/conv.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace {

using namespace candle;
using bench::conv1d_flop_count;
using bench::gemm_flop_count;

/// Pool width for the duration of one benchmark run: `arg` threads, or the
/// process-startup default when arg == 0. Restored on destruction so later
/// benchmarks (registration order) see the default width again.
class BenchThreads {
 public:
  explicit BenchThreads(std::int64_t arg) {
    parallel::set_num_threads(arg == 0 ? default_width()
                                       : static_cast<std::size_t>(arg));
  }
  ~BenchThreads() { parallel::set_num_threads(default_width()); }
  BenchThreads(const BenchThreads&) = delete;
  BenchThreads& operator=(const BenchThreads&) = delete;

 private:
  static std::size_t default_width() {
    // Captured before any sweep mutates the pool.
    static const std::size_t width = parallel::num_threads();
    return width;
  }
};

/// Registers the 1/2/4/default sweep on a *Threads benchmark. Wall time
/// (UseRealTime) is the honest metric when work runs on pool workers: the
/// main thread blocks while they compute, so its CPU time would overstate
/// the speedup on oversubscribed hosts.
#define THREAD_SWEEP() \
  ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(0)->UseRealTime()

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (float& v : t.values()) v = static_cast<float>(rng.normal(0, 1));
  return t;
}

// Attaches a GFLOP/s rate counter; google-benchmark divides the total by
// elapsed wall time, so the JSON and console both carry GFLOP/s.
void set_gflops(benchmark::State& state, double flops_per_iter) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops_per_iter / 1e9, benchmark::Counter::kIsIterationInvariantRate);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(flops_per_iter));
}

// ---------------------------------------------------------------------------
// Square GEMM sweep (blocked vs. the seed naive kernel).
// ---------------------------------------------------------------------------

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(false, false, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, gemm_flop_count(n, n, n));
}

void BM_GemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  for (auto _ : state)
    benchmark::DoNotOptimize(gemm_naive(false, false, a, b));
  set_gflops(state, gemm_flop_count(n, n, n));
}

void BM_GemmTn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(true, false, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, gemm_flop_count(n, n, n));
}

void BM_GemmNt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(false, true, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, gemm_flop_count(n, n, n));
}

// ---------------------------------------------------------------------------
// Paper-shaped problems.
// ---------------------------------------------------------------------------

// P1B1's first Dense layer: (batch, 60483) x (60483, 2000) + bias, ReLU —
// the widest GEMM in the Pilot1 suite (§2.1.2).
constexpr std::size_t kP1B1Batch = 32;
constexpr std::size_t kP1B1In = 60483;
constexpr std::size_t kP1B1Units = 2000;

void BM_DenseP1B1(benchmark::State& state) {
  const Tensor x = random_tensor({kP1B1Batch, kP1B1In}, 3);
  const Tensor w = random_tensor({kP1B1In, kP1B1Units}, 4);
  const Tensor bias = random_tensor({kP1B1Units}, 5);
  Tensor y({kP1B1Batch, kP1B1Units});
  Epilogue ep;
  ep.bias = bias.data();
  ep.op = EpilogueOp::kRelu;
  for (auto _ : state) {
    gemm(false, false, x, w, y, ep);
    benchmark::DoNotOptimize(y.data());
  }
  set_gflops(state, gemm_flop_count(kP1B1Batch, kP1B1Units, kP1B1In));
}

void BM_DenseP1B1Naive(benchmark::State& state) {
  const Tensor x = random_tensor({kP1B1Batch, kP1B1In}, 3);
  const Tensor w = random_tensor({kP1B1In, kP1B1Units}, 4);
  const Tensor bias = random_tensor({kP1B1Units}, 5);
  for (auto _ : state) {
    Tensor y = gemm_naive(false, false, x, w);
    add_bias_rows(y, bias);
    relu_inplace(y);
    benchmark::DoNotOptimize(y.data());
  }
  set_gflops(state, gemm_flop_count(kP1B1Batch, kP1B1Units, kP1B1In));
}

// Pool-width sweep on the P1B1 Dense GEMM — the headline shape for the
// intra-node speedup target (BENCH_parallel.json).
void BM_DenseP1B1Threads(benchmark::State& state) {
  const BenchThreads threads(state.range(0));
  const Tensor x = random_tensor({kP1B1Batch, kP1B1In}, 3);
  const Tensor w = random_tensor({kP1B1In, kP1B1Units}, 4);
  const Tensor bias = random_tensor({kP1B1Units}, 5);
  Tensor y({kP1B1Batch, kP1B1Units});
  Epilogue ep;
  ep.bias = bias.data();
  ep.op = EpilogueOp::kRelu;
  for (auto _ : state) {
    gemm(false, false, x, w, y, ep);
    benchmark::DoNotOptimize(y.data());
  }
  set_gflops(state, gemm_flop_count(kP1B1Batch, kP1B1Units, kP1B1In));
}

// NT3's first Conv1D layer: 128 filters, kernel 20, stride 1 over the
// 60,483-long expression vector with one input channel (§2.1.1).
constexpr std::size_t kNT3Batch = 4;
constexpr std::size_t kNT3Len = 60483;
constexpr std::size_t kNT3Cin = 1;
constexpr std::size_t kNT3Kernel = 20;
constexpr std::size_t kNT3Filters = 128;

void BM_Conv1dNT3(benchmark::State& state) {
  const Tensor x = random_tensor({kNT3Batch, kNT3Len, kNT3Cin}, 6);
  const Tensor w = random_tensor({kNT3Kernel, kNT3Cin, kNT3Filters}, 7);
  const Tensor b = random_tensor({kNT3Filters}, 8);
  Conv1dWorkspace ws;
  Tensor y;
  for (auto _ : state) {
    // In-out form, as the Conv1D layer calls it: workspace and activation
    // buffers are reused across steps.
    conv1d_forward(x, w, b, 1, y, &ws, EpilogueOp::kRelu);
    benchmark::DoNotOptimize(y.data());
  }
  const std::size_t lout = conv1d_out_length(kNT3Len, kNT3Kernel, 1);
  set_gflops(state, conv1d_flop_count(kNT3Batch, lout, kNT3Filters,
                                      kNT3Kernel, kNT3Cin));
}

void BM_Conv1dNT3Naive(benchmark::State& state) {
  const Tensor x = random_tensor({kNT3Batch, kNT3Len, kNT3Cin}, 6);
  const Tensor w = random_tensor({kNT3Kernel, kNT3Cin, kNT3Filters}, 7);
  const Tensor b = random_tensor({kNT3Filters}, 8);
  for (auto _ : state) {
    Tensor y = conv1d_forward_naive(x, w, b, 1);
    relu_inplace(y);
    benchmark::DoNotOptimize(y.data());
  }
  const std::size_t lout = conv1d_out_length(kNT3Len, kNT3Kernel, 1);
  set_gflops(state, conv1d_flop_count(kNT3Batch, lout, kNT3Filters,
                                      kNT3Kernel, kNT3Cin));
}

// Pool-width sweep on the NT3 Conv1D forward (im2col + GEMM both thread).
void BM_Conv1dNT3Threads(benchmark::State& state) {
  const BenchThreads threads(state.range(0));
  const Tensor x = random_tensor({kNT3Batch, kNT3Len, kNT3Cin}, 6);
  const Tensor w = random_tensor({kNT3Kernel, kNT3Cin, kNT3Filters}, 7);
  const Tensor b = random_tensor({kNT3Filters}, 8);
  Conv1dWorkspace ws;
  Tensor y;
  for (auto _ : state) {
    conv1d_forward(x, w, b, 1, y, &ws, EpilogueOp::kRelu);
    benchmark::DoNotOptimize(y.data());
  }
  const std::size_t lout = conv1d_out_length(kNT3Len, kNT3Kernel, 1);
  set_gflops(state, conv1d_flop_count(kNT3Batch, lout, kNT3Filters,
                                      kNT3Kernel, kNT3Cin));
}

void BM_Conv1dNT3Backward(benchmark::State& state) {
  const Tensor x = random_tensor({kNT3Batch, kNT3Len, kNT3Cin}, 6);
  const Tensor w = random_tensor({kNT3Kernel, kNT3Cin, kNT3Filters}, 7);
  const Tensor b = random_tensor({kNT3Filters}, 8);
  const Tensor y = conv1d_forward(x, w, b, 1);
  const Tensor dy(y.shape(), 1.0f);
  Tensor dx(x.shape()), dw(w.shape()), db(b.shape());
  Conv1dWorkspace ws;
  for (auto _ : state) {
    conv1d_backward(x, w, dy, 1, dx, dw, db, &ws);
    benchmark::DoNotOptimize(dw.data());
  }
  const std::size_t lout = conv1d_out_length(kNT3Len, kNT3Kernel, 1);
  // Backward runs two GEMMs of the forward shape (dW and d(cols)).
  set_gflops(state, 2.0 * conv1d_flop_count(kNT3Batch, lout, kNT3Filters,
                                            kNT3Kernel, kNT3Cin));
}

// ---------------------------------------------------------------------------
// Smoke set: small shapes CI can run per commit (see ci.yml perf-smoke).
// ---------------------------------------------------------------------------

void BM_SmokeGemm(benchmark::State& state) {
  const std::size_t n = 256;
  const Tensor a = random_tensor({n, n}, 9);
  const Tensor b = random_tensor({n, n}, 10);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(false, false, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, gemm_flop_count(n, n, n));
}

void BM_SmokeGemmNaive(benchmark::State& state) {
  const std::size_t n = 256;
  const Tensor a = random_tensor({n, n}, 9);
  const Tensor b = random_tensor({n, n}, 10);
  for (auto _ : state)
    benchmark::DoNotOptimize(gemm_naive(false, false, a, b));
  set_gflops(state, gemm_flop_count(n, n, n));
}

void BM_SmokeConv1d(benchmark::State& state) {
  const Tensor x = random_tensor({2, 4096, 8}, 11);
  const Tensor w = random_tensor({9, 8, 16}, 12);
  const Tensor b = random_tensor({16}, 13);
  Conv1dWorkspace ws;
  for (auto _ : state)
    benchmark::DoNotOptimize(conv1d_forward(x, w, b, 1, &ws));
  set_gflops(state,
             conv1d_flop_count(2, conv1d_out_length(4096, 9, 1), 16, 9, 8));
}

void BM_SmokeConv1dNaive(benchmark::State& state) {
  const Tensor x = random_tensor({2, 4096, 8}, 11);
  const Tensor w = random_tensor({9, 8, 16}, 12);
  const Tensor b = random_tensor({16}, 13);
  for (auto _ : state)
    benchmark::DoNotOptimize(conv1d_forward_naive(x, w, b, 1));
  set_gflops(state,
             conv1d_flop_count(2, conv1d_out_length(4096, 9, 1), 16, 9, 8));
}

// ---------------------------------------------------------------------------
// Non-GEMM kernels (unchanged paths, kept for trend tracking).
// ---------------------------------------------------------------------------

// Pool-width sweep on a square GEMM big enough to fill several MC blocks.
void BM_GemmThreads(benchmark::State& state) {
  const BenchThreads threads(state.range(0));
  const std::size_t n = 512;
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(false, false, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  set_gflops(state, gemm_flop_count(n, n, n));
}

void BM_MaxPool(benchmark::State& state) {
  const auto length = static_cast<std::size_t>(state.range(0));
  const Tensor x = random_tensor({8, length, 16}, 14);
  std::vector<std::size_t> argmax;
  for (auto _ : state)
    benchmark::DoNotOptimize(maxpool1d_forward(x, 4, 4, argmax));
}

void BM_SoftmaxRows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor x = random_tensor({64, n}, 15);
  for (auto _ : state) benchmark::DoNotOptimize(softmax_rows(x));
}

BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->MinTime(0.4);
BENCHMARK(BM_GemmNaive)->Arg(256)->Arg(512)->MinTime(0.4);
BENCHMARK(BM_GemmTn)->Arg(256)->MinTime(0.4);
BENCHMARK(BM_GemmNt)->Arg(256)->MinTime(0.4);
BENCHMARK(BM_DenseP1B1)->MinTime(1.0)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DenseP1B1Naive)->MinTime(1.0)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DenseP1B1Threads)
    ->THREAD_SWEEP()->MinTime(1.0)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv1dNT3)->MinTime(1.0)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv1dNT3Naive)->MinTime(1.0)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv1dNT3Threads)
    ->THREAD_SWEEP()->MinTime(1.0)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv1dNT3Backward)->MinTime(1.0)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GemmThreads)->THREAD_SWEEP()->MinTime(0.4);
BENCHMARK(BM_SmokeGemm)->MinTime(0.2);
BENCHMARK(BM_SmokeGemmNaive)->MinTime(0.2);
BENCHMARK(BM_SmokeConv1d)->MinTime(0.2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SmokeConv1dNaive)->MinTime(0.2)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MaxPool)->Arg(4096)->MinTime(0.4);
BENCHMARK(BM_SoftmaxRows)->Arg(1024)->MinTime(0.4);

}  // namespace

BENCHMARK_MAIN();
