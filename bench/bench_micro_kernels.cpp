// Micro-benchmarks of the tensor kernels (matmul / conv1d / maxpool) that
// carry the NN substrate's training cost.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "tensor/conv.h"
#include "tensor/ops.h"

namespace {

using namespace candle;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (float& v : t.values()) v = static_cast<float>(rng.normal(0, 1));
  return t;
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  for (auto _ : state) benchmark::DoNotOptimize(matmul(a, b));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(2 * n * n * n));
}

void BM_MatmulTn(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor a = random_tensor({n, n}, 1);
  const Tensor b = random_tensor({n, n}, 2);
  for (auto _ : state) benchmark::DoNotOptimize(matmul_tn(a, b));
}

void BM_Conv1dForward(benchmark::State& state) {
  const auto length = static_cast<std::size_t>(state.range(0));
  const Tensor x = random_tensor({8, length, 1}, 3);
  const Tensor w = random_tensor({9, 1, 16}, 4);
  const Tensor b = random_tensor({16}, 5);
  for (auto _ : state)
    benchmark::DoNotOptimize(conv1d_forward(x, w, b, 1));
}

void BM_Conv1dBackward(benchmark::State& state) {
  const auto length = static_cast<std::size_t>(state.range(0));
  const Tensor x = random_tensor({8, length, 1}, 3);
  const Tensor w = random_tensor({9, 1, 16}, 4);
  const Tensor b = random_tensor({16}, 5);
  const Tensor y = conv1d_forward(x, w, b, 1);
  const Tensor dy(y.shape(), 1.0f);
  Tensor dx(x.shape()), dw(w.shape()), db(b.shape());
  for (auto _ : state) {
    conv1d_backward(x, w, dy, 1, dx, dw, db);
    benchmark::DoNotOptimize(dw.data());
  }
}

void BM_MaxPool(benchmark::State& state) {
  const auto length = static_cast<std::size_t>(state.range(0));
  const Tensor x = random_tensor({8, length, 16}, 6);
  std::vector<std::size_t> argmax;
  for (auto _ : state)
    benchmark::DoNotOptimize(maxpool1d_forward(x, 4, 4, argmax));
}

void BM_SoftmaxRows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Tensor x = random_tensor({64, n}, 7);
  for (auto _ : state) benchmark::DoNotOptimize(softmax_rows(x));
}

BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256)->MinTime(0.4);
BENCHMARK(BM_MatmulTn)->Arg(128)->MinTime(0.4);
BENCHMARK(BM_Conv1dForward)->Arg(512)->Arg(2048)->MinTime(0.4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv1dBackward)->Arg(512)->Arg(2048)->MinTime(0.4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MaxPool)->Arg(4096)->MinTime(0.4);
BENCHMARK(BM_SoftmaxRows)->Arg(1024)->MinTime(0.4);

}  // namespace

BENCHMARK_MAIN();
