// Micro-benchmarks (google-benchmark) of the input pipeline: one fit epoch
// with batch staging inline on the compute thread (prefetch off) vs staged
// on the BatchPipeline producer thread (prefetch on), across batch sizes.
// A synthetic per-batch input latency models slow input I/O (the paper's
// Table 3 pathology at step granularity); the producer thread hides it
// behind compute, so the prefetched rows must come out at or below the
// synchronous ones. Feeds the committed BENCH_pipeline.json:
//   build/bench/bench_micro_pipeline --benchmark_filter=Pipeline
//     --benchmark_out=BENCH_pipeline.json --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include <cstdint>

#include "common/rng.h"
#include "io/synthetic.h"
#include "nn/dataset.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optimizer.h"

namespace {

using namespace candle;

constexpr std::size_t kRows = 1024;
constexpr std::size_t kFeatures = 64;
constexpr std::size_t kClasses = 4;
/// Synthetic per-batch input latency: large against this tiny model's step
/// compute, so exposed staging dominates the synchronous rows and the
/// prefetched rows show the hiding.
constexpr double kInputLatencyS = 2e-3;

nn::Dataset make_data() {
  io::ClassificationSpec spec;
  spec.samples = kRows;
  spec.features = kFeatures;
  spec.classes = kClasses;
  spec.seed = 17;
  return io::make_classification(spec);
}

nn::Model make_model() {
  nn::Model model;
  model.add<nn::Dense>(32, nn::Act::kRelu);
  model.add<nn::Dense>(kClasses, nn::Act::kSoftmax);
  model.compile({kFeatures}, nn::make_optimizer("sgd", 0.01),
                nn::make_loss("categorical_crossentropy"), /*seed=*/3);
  return model;
}

/// One fit epoch per iteration; range(0) is the batch size, range(1)
/// toggles prefetch. Wall time, not main-thread CPU time: the prefetched
/// staging (and its simulated latency) runs on the producer thread.
void BM_PipelineFitEpoch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const bool prefetch = state.range(1) != 0;
  const nn::Dataset data = make_data();
  nn::Model model = make_model();
  nn::FitOptions fit;
  fit.epochs = 1;
  fit.batch_size = batch;
  fit.prefetch = prefetch;
  fit.sim_input_latency_s = kInputLatencyS;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.fit(data, fit));
  }
  const auto steps = static_cast<int64_t>(kRows / batch);
  state.SetItemsProcessed(steps * static_cast<int64_t>(state.iterations()));
  state.counters["steps_per_epoch"] =
      benchmark::Counter(static_cast<double>(steps));
}

BENCHMARK(BM_PipelineFitEpoch)
    ->Args({16, 0})->Args({16, 1})
    ->Args({64, 0})->Args({64, 1})
    ->Args({256, 0})->Args({256, 1})
    ->Unit(benchmark::kMillisecond)->MinTime(0.4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
