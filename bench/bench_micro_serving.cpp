// Micro-benchmarks (google-benchmark) of the inference serving layer: a
// closed-loop client fleet drives one served model through the
// micro-batching scheduler across the {max_batch, batch-deadline,
// offered-load} grid. The grid exposes the serving tradeoff the
// batch_deadline_s knob controls: micro-batching (max_batch 16) must beat
// the batch-size-1 baseline on throughput at equal offered load, while a
// deadline stretched past the arrival gap buys batch occupancy with tail
// latency (the throughput-vs-p99 crossover). Feeds the committed
// BENCH_serving.json:
//   build/bench/bench_micro_serving --benchmark_filter=Serving
//     --benchmark_out=BENCH_serving.json --benchmark_out_format=json
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "harness.h"

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/model.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace {

using namespace candle;

// Wide enough that a batched forward amortizes real GEMM work, small
// enough that one loadgen run stays in milliseconds.
constexpr std::size_t kFeatures = 256;
constexpr std::size_t kHidden = 512;
constexpr std::size_t kClasses = 10;
constexpr std::size_t kRequests = 256;

nn::Model make_served_model() {
  nn::Model model;
  model.add<nn::Dense>(kHidden, nn::Act::kRelu);
  model.add<nn::Dense>(kClasses, nn::Act::kSoftmax);
  model.compile_for_inference({kFeatures}, /*seed=*/3);
  return model;
}

Tensor make_request_pool() {
  Tensor pool({64, kFeatures});
  Rng rng(17);
  for (std::size_t i = 0; i < pool.numel(); ++i)
    pool[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return pool;
}

/// One closed-loop loadgen sweep per iteration. range(0) is max_batch
/// (1 = the request-per-forward baseline), range(1) the batch deadline in
/// microseconds, range(2) the client count (the offered load of a closed
/// loop). Wall time, not CPU time: the work runs on dispatcher + client
/// threads.
void BM_ServingSweep(benchmark::State& state) {
  const auto max_batch = static_cast<std::size_t>(state.range(0));
  const double deadline_s = static_cast<double>(state.range(1)) * 1e-6;
  const auto clients = static_cast<std::size_t>(state.range(2));

  serve::InferenceServer server;
  server.add_model("mlp", make_served_model(),
                   {.max_batch = max_batch, .batch_deadline_s = deadline_s});
  const Tensor pool = make_request_pool();
  const std::vector<serve::TrafficSource> sources = {{"mlp", &pool, 1.0}};
  serve::LoadgenOptions options;
  options.mode = serve::LoopMode::kClosed;
  options.clients = clients;
  options.requests = kRequests;
  options.offered_rps = 4000.0;  // mix pacing only (closed loop)
  options.seed = 29;

  std::vector<double> latencies_ms;
  std::size_t completed = 0;
  double wall_s = 0.0;
  for (auto _ : state) {
    const serve::LoadgenReport report =
        serve::run_loadgen(server, sources, options);
    completed += report.completed;
    wall_s += report.wall_s;
    latencies_ms.insert(latencies_ms.end(), report.latencies_ms.begin(),
                        report.latencies_ms.end());
  }

  state.SetItemsProcessed(static_cast<int64_t>(completed));
  state.counters["throughput_rps"] = benchmark::Counter(
      wall_s > 0.0 ? static_cast<double>(completed) / wall_s : 0.0);
  state.counters["p50_ms"] = benchmark::Counter(bench::p50(latencies_ms));
  state.counters["p99_ms"] = benchmark::Counter(bench::p99(latencies_ms));
  state.counters["mean_batch_rows"] =
      benchmark::Counter(server.stats("mlp").mean_batch_rows());
}

// {max_batch, deadline_us, clients}: 2 batch policies x 3 deadlines x
// 2 offered loads (closed-loop client count). The max_batch-1 rows are
// flat across deadlines — every batch closes full at one row — which is
// itself the control: the deadline knob only bites once batching is on.
BENCHMARK(BM_ServingSweep)
    ->Args({1, 200, 4})->Args({1, 200, 16})
    ->Args({1, 1000, 4})->Args({1, 1000, 16})
    ->Args({1, 4000, 4})->Args({1, 4000, 16})
    ->Args({16, 200, 4})->Args({16, 200, 16})
    ->Args({16, 1000, 4})->Args({16, 1000, 16})
    ->Args({16, 4000, 4})->Args({16, 4000, 16})
    ->Unit(benchmark::kMillisecond)->MinTime(0.2)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
