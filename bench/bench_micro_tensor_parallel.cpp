// Tensor-parallelism micro-benchmark: one distributed training step under
// data vs channel parallelism at a fixed GLOBAL batch, so per-rank compute
// is matched (data splits the batch across ranks with full layers, channel
// replicates the batch with 1/P of each wide layer's columns) and the
// difference is pure communication. Data parallelism allreduces the weight
// gradients (~weight bytes per step); channel parallelism allgathers output
// activations and reduce-scatters input gradients (~activation bytes). The
// sweep crosses the regimes: on the wide MLP (weight-heavy, small batch)
// channel moves far fewer bytes and wins; on the narrow MLP (activation-
// heavy, large batch) the activation collectives dominate and data wins.
// RunSimulator's data_parallel_layer_comm_seconds /
// channel_parallel_layer_comm_seconds predict the same flip (test_sim pins
// it). Committed as BENCH_tensor_parallel.json.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "comm/communicator.h"
#include "common/rng.h"
#include "hvd/context.h"
#include "hvd/distributed_optimizer.h"
#include "hvd/fusion.h"
#include "nn/loss.h"
#include "nn/model.h"
#include "nn/optimizer.h"
#include "nn/parallelism.h"

namespace {

using namespace candle;

struct TpGeometry {
  std::size_t features = 0;
  std::size_t hidden = 0;
  std::size_t classes = 16;
  std::size_t global_batch = 0;
};

// Wide: 256 -> 2048 -> 2048 -> 16 at global batch 32. ~4.8 M weights
// (~19 MB of gradient allreduce per data-parallel step) vs ~256 KB of
// activations per sharded layer. Narrow: 64 -> 64 -> 64 -> 16 at global
// batch 512. ~9 K weights (~36 KB allreduce) vs ~128 KB of activations.
TpGeometry tp_geometry(bool wide) {
  return wide ? TpGeometry{256, 2048, 16, 32} : TpGeometry{64, 64, 16, 512};
}

void fill_batch(Tensor& x, Tensor& y, std::size_t classes, Rng& rng) {
  for (float& v : x.values()) v = static_cast<float>(rng.normal(0.0, 1.0));
  for (float& v : y.values()) v = 0.0f;
  const std::size_t rows = y.shape()[0];
  for (std::size_t i = 0; i < rows; ++i)
    y[i * classes + rng.uniform_index(classes)] = 1.0f;
}

void BM_TensorParallelStep(benchmark::State& state) {
  const auto ranks = static_cast<std::size_t>(state.range(0));
  const bool wide = state.range(1) != 0;
  const bool channel = state.range(2) != 0;
  const auto dtype = static_cast<comm::WireDtype>(state.range(3));
  const TpGeometry geo = tp_geometry(wide);
  // Fixed global batch: data parallelism shards the rows, channel
  // parallelism replicates them (and shards the columns instead).
  const std::size_t batch = channel ? geo.global_batch
                                    : geo.global_batch / ranks;
  constexpr std::size_t kStepsPerIter = 4;  // amortize world spawn/join

  for (auto _ : state) {
    comm::World::run(ranks, [&](comm::Communicator& c) {
      hvd::Context ctx(c);
      hvd::FusionOptions fusion;
      fusion.wire_dtype = dtype;
      nn::Model model;
      model.add<nn::Dense>(geo.hidden, nn::Act::kRelu);
      model.add<nn::Dense>(geo.hidden, nn::Act::kRelu);
      model.add<nn::Dense>(geo.classes, nn::Act::kSoftmax);
      nn::ParallelismOptions popt;
      popt.mode = channel ? nn::ParallelismMode::kChannel
                          : nn::ParallelismMode::kData;
      popt.comm = &c;
      popt.batch_hint = batch;
      popt.wire_dtype = dtype;
      model.compile({geo.features},
                    std::make_unique<hvd::DistributedOptimizer>(
                        nn::make_optimizer("sgd", 0.01), ctx, fusion),
                    nn::make_loss("categorical_crossentropy"), /*seed=*/5,
                    popt);
      // Channel mode replicates the batch, so every rank must see the same
      // rows; data mode gives each rank its own shard of the global batch.
      Rng rng(channel ? 11 : 11 + c.rank());
      Tensor x({batch, geo.features});
      Tensor y({batch, geo.classes});
      fill_batch(x, y, geo.classes, rng);
      for (std::size_t step = 0; step < kStepsPerIter; ++step) {
        const float loss = model.train_on_batch(x, y);
        benchmark::DoNotOptimize(loss);
      }
    });
  }
  state.SetLabel(std::string(channel ? "channel" : "data") + "/" +
                 std::string(wide ? "wide" : "narrow") + "/" +
                 comm::wire_dtype_name(dtype));
  state.counters["steps"] =
      benchmark::Counter(static_cast<double>(kStepsPerIter),
                         benchmark::Counter::kIsIterationInvariant);
}

BENCHMARK(BM_TensorParallelStep)
    ->ArgNames({"ranks", "wide", "channel", "dtype"})
    ->ArgsProduct({{2, 4}, {0, 1}, {0, 1}, {0, 2}})
    ->UseRealTime()->Unit(benchmark::kMillisecond)->MinTime(0.3);

}  // namespace

BENCHMARK_MAIN();
