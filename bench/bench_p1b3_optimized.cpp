// Reproduces §5.4: the optimized data loading applied to Horovod P1B3 with
// cubic-root batch scaling yields only up to ~6.5% improvement on Summit,
// because the narrow P1B3 CSV barely benefits from chunked reading.
// [simulated]
#include "harness.h"

int main() {
  using namespace candle;
  using namespace candle::bench;
  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::p1b3());
  std::printf("Section 5.4: original vs optimized P1B3 (cubic-root batch "
              "scaling) on Summit [simulated]\n\n");
  Table t({"GPUs", "batch", "original (s)", "optimized (s)",
           "improvement %"});
  double best = 0.0;
  for (std::size_t ranks : summit_strong_ranks()) {
    const std::size_t batch = scaled_batch(100, ranks, BatchScaling::kCbrt);
    sim::RunPlan plan;
    plan.ranks = ranks;
    plan.epochs_per_rank = 1;
    plan.batch_per_rank = batch;
    plan.level = sim::ParallelLevel::kBatchStep;
    plan.loader = io::LoaderKind::kOriginal;
    const double t0 = simulator.simulate(plan).phases.total();
    plan.loader = io::LoaderKind::kChunked;
    const double t1 = simulator.simulate(plan).phases.total();
    best = std::max(best, improvement_pct(t0, t1));
    t.add_row({std::to_string(ranks), std::to_string(batch),
               strprintf("%.1f", t0), strprintf("%.1f", t1),
               strprintf("%.2f", improvement_pct(t0, t1))});
  }
  t.print();
  std::printf("\nmax improvement: %.2f%% (paper: up to 6.50%% — small, as "
              "expected for the narrow P1B3 file)\n", best);
  return 0;
}
