// Reproduces Table 1: epochs, batch size, data samples, and training and
// testing file sizes for the P1 benchmarks.
#include "harness.h"

int main() {
  using namespace candle;
  std::printf("Table 1: configuration of the CANDLE P1 benchmarks\n\n");
  Table t({"Benchmark", "NT3", "P1B1", "P1B2", "P1B3"});
  const auto all = sim::BenchmarkProfile::all();
  auto row = [&](const std::string& label, auto getter) {
    std::vector<std::string> cells{label};
    for (const auto* p : all) cells.push_back(getter(*p));
    t.add_row(std::move(cells));
  };
  row("Training data size", [](const sim::BenchmarkProfile& p) {
    return format_bytes(static_cast<double>(p.train_bytes));
  });
  row("Testing data size", [](const sim::BenchmarkProfile& p) {
    return format_bytes(static_cast<double>(p.test_bytes));
  });
  row("Number of epochs", [](const sim::BenchmarkProfile& p) {
    return std::to_string(p.default_epochs);
  });
  row("Batch size", [](const sim::BenchmarkProfile& p) {
    return std::to_string(p.default_batch);
  });
  row("Learning rate", [](const sim::BenchmarkProfile& p) {
    return strprintf("%g", p.learning_rate);
  });
  row("Optimizer",
      [](const sim::BenchmarkProfile& p) { return p.optimizer; });
  row("Total training samples", [](const sim::BenchmarkProfile& p) {
    return std::to_string(p.train_samples);
  });
  row("Elements per sample", [](const sim::BenchmarkProfile& p) {
    return std::to_string(p.features_per_sample);
  });
  row("Batch steps per epoch", [](const sim::BenchmarkProfile& p) {
    return std::to_string(p.steps_per_epoch(p.default_batch));
  });
  t.print();
  return 0;
}
