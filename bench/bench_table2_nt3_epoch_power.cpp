// Reproduces Table 2: time per epoch (s) and average GPU power (W) for
// Horovod NT3 on Summit at batch sizes 20 and 40. [simulated]
#include "harness.h"

int main() {
  using namespace candle;
  using namespace candle::bench;
  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::nt3());

  std::printf("Table 2: time per epoch and average GPU power, Horovod NT3 "
              "on Summit [simulated]\n\n");
  Table t({"GPUs", "s/epoch bs=20", "s/epoch bs=40", "GPU W bs=20",
           "GPU W bs=40"});
  for (std::size_t ranks : summit_strong_ranks()) {
    const std::size_t epochs = comp_epochs_balanced(384, ranks);
    if (epochs == 0) continue;
    sim::RunPlan plan;
    plan.ranks = ranks;
    plan.epochs_per_rank = epochs;
    plan.batch_per_rank = 20;
    const sim::SimResult r20 = simulator.simulate(plan);
    plan.batch_per_rank = 40;
    const sim::SimResult r40 = simulator.simulate(plan);
    t.add_row({std::to_string(ranks),
               strprintf("%.2f", r20.time_per_epoch),
               strprintf("%.2f", r40.time_per_epoch),
               strprintf("%.1f", r20.avg_power_w),
               strprintf("%.1f", r40.avg_power_w)});
  }
  t.print();
  std::printf("\nShape check vs the paper: ~10 s/epoch on 1 GPU growing to "
              "~22 s on 384 GPUs (allreduce overhead); bs=40 has lower time "
              "per epoch and lower GPU power.\n");
  return 0;
}
