// Reproduces Table 3: data-loading time by method — pandas.read_csv
// defaults vs chunked low_memory=False (and the Dask middle ground).
//
// This is a REAL measurement: synthetic CSVs with each benchmark's on-disk
// geometry (column count preserved, file size scaled by --scale) are parsed
// by the actual reader implementations. The paper's key shape must hold:
// large speedups for the wide files (NT3/P1B1/P1B2), almost none for the
// narrow P1B3.
//
// Beyond the paper, the threaded reader (read_csv_parallel) is measured in
// the same table; --threads pins the candle::parallel pool width (0 keeps
// the CANDLE_NUM_THREADS / hardware default). Two further columns measure
// the binary-cache follow-on: a warm mmap cache load of the full frame, and
// rank 0's sharded load at world size 4 — whose touched bytes are ~1/4 of
// the payload (the per-rank I/O cut the cache enables at scale).
//
//   bench_table3_dataloading_summit [--scale 0.03] [--dask] [--threads N]
#include <filesystem>

#include "common/parallel.h"
#include "harness.h"
#include "io/binary_cache.h"
#include "io/synthetic.h"

namespace {

struct FileSpec {
  const char* benchmark;
  const char* split;
  std::size_t full_bytes;
  std::size_t cols;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace candle;
  Cli cli;
  cli.flag("scale", "file size scale vs the paper (1.0 = full size)", "0.03")
      .bool_flag("dask", "also measure the dask-style reader")
      .flag("threads", "pool width for the parallel reader (0 = default)",
            "0")
      .flag("workdir", "scratch directory", "/tmp");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;
  const double scale = cli.get_double("scale");
  const bool with_dask = cli.get_bool("dask");
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
  if (threads != 0) parallel::set_num_threads(threads);

  // Geometry from Table 1: bytes and column counts; row counts follow from
  // the ~9.2 bytes/cell CSV density (a documented substitution — the
  // paper's own row/column/byte numbers are not mutually consistent for
  // P1B3, so file size + column count are preserved).
  const std::vector<FileSpec> files{
      {"NT3", "Training", 597u << 20, 60483},
      {"NT3", "Testing", 150u << 20, 60483},
      {"P1B1", "Training", 771u << 20, 60484},
      {"P1B1", "Testing", 258u << 20, 60484},
      {"P1B2", "Training", 162u << 20, 28204},
      {"P1B2", "Testing", 55u << 20, 28204},
      {"P1B3", "Training", 318u << 20, 1000},
      {"P1B3", "Testing", 103u << 20, 1000},
  };

  std::printf("Table 3: data loading by method [REAL measurement, file "
              "sizes scaled by %.3f]\n\n", scale);
  std::vector<std::string> headers{"Benchmark", "File", "size",
                                   "original (s)", "chunked 16MB (s)",
                                   "speedup"};
  if (with_dask) headers.push_back("dask (s)");
  headers.push_back(strprintf("parallel x%zu (s)", parallel::num_threads()));
  headers.push_back("thread speedup");
  headers.push_back("cache (s)");
  headers.push_back("shard 1/4 (s)");
  headers.push_back("shard bytes/rank");
  Table t(headers);

  const std::string dir = cli.get("workdir") + "/candle_table3";
  std::filesystem::create_directories(dir);

  constexpr double kBytesPerCell = 9.2;  // "%.6g," density
  for (const auto& spec : files) {
    const double target_bytes = static_cast<double>(spec.full_bytes) * scale;
    const std::size_t rows = std::max<std::size_t>(
        4, static_cast<std::size_t>(
               target_bytes / (kBytesPerCell * static_cast<double>(spec.cols))));
    const std::string path = dir + "/" + spec.benchmark + "_" + spec.split +
                             ".csv";
    io::write_synthetic_csv(path, {rows, spec.cols, false},
                            static_cast<std::uint64_t>(rows));

    io::CsvReadStats orig, chunk, dask;
    (void)io::read_csv_original(path, &orig);
    (void)io::read_csv_chunked(path, &chunk);
    std::vector<std::string> cells{
        spec.benchmark, spec.split,
        format_bytes(static_cast<double>(orig.bytes)),
        strprintf("%.2f", orig.seconds), strprintf("%.2f", chunk.seconds),
        strprintf("%.2fx", orig.seconds / chunk.seconds)};
    if (with_dask) {
      (void)io::read_csv_dask(path, &dask);
      cells.push_back(strprintf("%.2f", dask.seconds));
    }
    io::CsvReadStats par;
    (void)io::read_csv_parallel(path, &par);
    cells.push_back(strprintf("%.2f", par.seconds));
    cells.push_back(strprintf("%.2fx", chunk.seconds / par.seconds));
    // Binary cache: the first cached read parses + publishes the cache
    // (cold, not tabulated — its parse is the chunked column); then a warm
    // full load and rank 0's 1-of-4 sharded load, both from the mmap image.
    io::CsvReadStats cold, warm, shard;
    (void)io::read_csv_cached(path, io::LoaderKind::kChunked, &cold);
    (void)io::read_csv_cached(path, io::LoaderKind::kChunked, &warm);
    (void)io::read_csv_cached_sharded(path, /*rank=*/0, /*world=*/4,
                                      io::LoaderKind::kChunked, &shard);
    cells.push_back(strprintf("%.3f", warm.seconds));
    cells.push_back(strprintf("%.3f", shard.seconds));
    cells.push_back(format_bytes(static_cast<double>(shard.bytes)));
    t.add_row(std::move(cells));
    std::filesystem::remove(path);
    std::filesystem::remove(io::cache_path_for(path));
  }
  t.print();
  std::filesystem::remove_all(dir);

  std::printf(
      "\nPaper (full-size files on Summit): NT3 81.72 -> 14.30 s (5.7x), "
      "P1B1 235.68 -> 30.99 s (7.6x),\nP1B2 40.98 -> 11.03 s (3.7x), "
      "P1B3 5.41 -> 5.34 s (1.0x). The wide-vs-narrow shape must match.\n");
  return 0;
}
