// Reproduces Table 4: data-loading time by method on Theta, plus the
// at-scale contention the paper describes in §5.1 ("the time spent in the
// data loading ... on Theta is more than four times that on Summit").
//
// Theta hardware is unavailable, so single-rank numbers come from the
// calibration (the paper's own Table 4 values) and the at-scale columns
// from the Lustre contention model. [simulated]
#include "harness.h"

int main() {
  using namespace candle;
  using namespace candle::bench;

  std::printf("Table 4: data loading on Theta [calibrated from the paper; "
              "at-scale columns simulated]\n\n");
  Table t({"Benchmark", "File", "original (s)", "chunked (s)",
           "original @384 nodes (s)", "chunked @384 nodes (s)"});
  for (const sim::BenchmarkProfile* p : sim::BenchmarkProfile::all()) {
    const auto& mc = p->theta;
    const sim::Machine& theta = sim::Machine::theta();
    const double c_orig = theta.io_contention(384, false);
    const double c_chunk = theta.io_contention(384, true);
    t.add_row({p->name, "Training",
               strprintf("%.2f", mc.load_original.train_s),
               strprintf("%.2f", mc.load_chunked.train_s),
               strprintf("%.1f", mc.load_original.train_s * c_orig),
               strprintf("%.1f", mc.load_chunked.train_s * c_chunk)});
    t.add_row({p->name, "Testing",
               strprintf("%.2f", mc.load_original.test_s),
               strprintf("%.2f", mc.load_chunked.test_s),
               strprintf("%.1f", mc.load_original.test_s * c_orig),
               strprintf("%.1f", mc.load_chunked.test_s * c_chunk)});
  }
  t.print();

  // The §5.1 cross-machine claim.
  sim::RunSimulator summit(sim::Machine::summit(),
                           sim::BenchmarkProfile::nt3());
  sim::RunSimulator theta(sim::Machine::theta(), sim::BenchmarkProfile::nt3());
  const double s384 = summit.data_load_seconds(io::LoaderKind::kOriginal, 384);
  const double t384 = theta.data_load_seconds(io::LoaderKind::kOriginal, 384);
  std::printf("\nNT3 at-scale loading: Theta(384 nodes) %.0f s vs "
              "Summit(384 GPUs) %.0f s -> %.1fx (paper: \"more than four "
              "times\").\n", t384, s384, t384 / s384);
  return 0;
}
