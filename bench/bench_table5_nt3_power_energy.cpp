// Reproduces Table 5: (a) average GPU power and (b) energy per GPU for
// Horovod NT3 vs optimized Horovod NT3 on Summit (paper: power up by as
// much as 68.77%, energy down by up to 55.93%). [simulated]
#include "harness.h"

int main() {
  using namespace candle;
  using namespace candle::bench;
  const auto rows = compare_loaders(sim::Machine::summit(),
                                    sim::BenchmarkProfile::nt3(),
                                    summit_strong_ranks(), 384, false);

  std::printf("Table 5(a): average GPU power (W) [simulated]\n\n");
  Table power({"GPUs", "original", "optimized", "increase %"});
  Table energy({"GPUs", "original (kJ)", "optimized (kJ)", "saving %"});
  double max_power_up = 0.0, max_energy_down = 0.0;
  for (const auto& row : rows) {
    const double p0 = row.original.avg_power_w;
    const double p1 = row.optimized.avg_power_w;
    const double e0 = row.original.energy_per_rank_j / 1e3;
    const double e1 = row.optimized.energy_per_rank_j / 1e3;
    max_power_up = std::max(max_power_up, 100.0 * (p1 - p0) / p0);
    max_energy_down = std::max(max_energy_down, improvement_pct(e0, e1));
    power.add_row({std::to_string(row.ranks), strprintf("%.1f", p0),
                   strprintf("%.1f", p1),
                   strprintf("%.2f", 100.0 * (p1 - p0) / p0)});
    energy.add_row({std::to_string(row.ranks), strprintf("%.2f", e0),
                    strprintf("%.2f", e1),
                    strprintf("%.2f", improvement_pct(e0, e1))});
  }
  power.print();
  std::printf("\nTable 5(b): energy per GPU [simulated]\n\n");
  energy.print();
  std::printf("\nmax avg-power increase: %.2f%% (paper: up to 68.77%%)   "
              "max energy saving: %.2f%% (paper: up to 55.93%%)\n",
              max_power_up, max_energy_down);
  return 0;
}
