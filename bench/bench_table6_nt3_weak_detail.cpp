// Reproduces Table 6: training accuracy, time per epoch, and average GPU
// power for the weak-scaling Horovod NT3 on Summit (original vs optimized).
// Accuracy via real training (weak scaling keeps 8 epochs/GPU so accuracy
// stays high); time/power simulated.
#include "harness.h"

int main(int argc, char** argv) {
  using namespace candle;
  using namespace candle::bench;
  Cli cli;
  cli.flag("scale", "dataset scale for the accuracy runs", "0.0015")
      .bool_flag("skip-accuracy", "skip the real-training column");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;
  const bool with_acc = !cli.get_bool("skip-accuracy");

  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::nt3());
  std::printf("Table 6: NT3 weak scaling (8 epochs/GPU) on Summit "
              "[time/power simulated; accuracy real]\n\n");
  std::vector<std::string> headers{"GPUs", "s/epoch orig", "s/epoch opt",
                                   "GPU W orig", "GPU W opt"};
  if (with_acc) headers.push_back("train accuracy");
  Table t(headers);

  // Accuracy under weak scaling depends on epochs/GPU (constant at 8) and
  // the scaled lr; computed once at the 48-GPU point Fig 6b validates
  // (beyond that, raw lr x N needs the warmup extension to stay stable).
  std::string acc_cell = "-";
  if (with_acc) {
    const AccuracyPoint p = reference_accuracy(
        BenchmarkId::kNT3, 48, 8, 20, cli.get_double("scale"),
        /*weak=*/true);
    acc_cell = strprintf("%.4f", p.accuracy);
  }

  for (std::size_t ranks : summit_weak_ranks()) {
    sim::RunPlan plan;
    plan.ranks = ranks;
    plan.epochs_per_rank = 8;
    plan.loader = io::LoaderKind::kOriginal;
    const sim::SimResult r0 = simulator.simulate(plan);
    plan.loader = io::LoaderKind::kChunked;
    const sim::SimResult r1 = simulator.simulate(plan);
    std::vector<std::string> cells{
        std::to_string(ranks), strprintf("%.2f", r0.time_per_epoch),
        strprintf("%.2f", r1.time_per_epoch),
        strprintf("%.1f", r0.avg_power_w),
        strprintf("%.1f", r1.avg_power_w)};
    if (with_acc) cells.push_back(acc_cell);
    t.add_row(std::move(cells));
  }
  t.print();
  std::printf("\nShape check: time/epoch on 3,072 GPUs is >3x the "
              "sequential 10.3 s (paper §7); optimized runs draw higher "
              "average power (less idle I/O time); accuracy stays ~1.0 "
              "at 8 epochs/GPU (Fig 6b).\n");
  return 0;
}
