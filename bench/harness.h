// Shared helpers for the per-table/per-figure benchmark binaries.
//
// Every bench prints the same rows/series as the corresponding table or
// figure in the paper, using the calibrated simulator for at-scale numbers
// and real training for accuracy columns. EXPERIMENTS.md records the
// paper-vs-measured comparison produced by these binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "candle/models.h"
#include "candle/scaling.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"
#include "io/csv_reader.h"
#include "sim/run_sim.h"

namespace candle::bench {

/// GPU counts used on the paper's strong-scaling x-axes (Summit).
inline std::vector<std::size_t> summit_strong_ranks() {
  return {1, 6, 12, 24, 48, 96, 192, 384};
}

/// Node counts used on Theta (one rank per node).
inline std::vector<std::size_t> theta_ranks() {
  return {1, 24, 48, 96, 192, 384};
}

/// GPU counts of the weak-scaling study (Fig 18/20/21).
inline std::vector<std::size_t> summit_weak_ranks() {
  return {6, 48, 384, 768, 1536, 3072};
}

/// Performance improvement percentage, as the paper reports it.
inline double improvement_pct(double original, double optimized) {
  require(original > 0.0, "improvement_pct: original must be > 0");
  return 100.0 * (original - optimized) / original;
}

// ---------------------------------------------------------------------------
// Kernel FLOP accounting (bench_micro_kernels): reporting GFLOP/s next to
// wall time is what makes kernel results comparable across shapes.
// ---------------------------------------------------------------------------

/// FLOPs of C(m,n) = A(m,k) * B(k,n): one multiply + one add per MAC.
inline double gemm_flop_count(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

/// FLOPs of a valid Conv1D forward: one GEMM of (b*Lout, K*Cin) x
/// (K*Cin, Cout).
inline double conv1d_flop_count(std::size_t b, std::size_t lout,
                                std::size_t cout, std::size_t kernel,
                                std::size_t cin) {
  return gemm_flop_count(b * lout, cout, kernel * cin);
}

/// FLOPs -> GFLOP/s for a measured wall time.
inline double gflops(double flops, double seconds) {
  require(seconds > 0.0, "gflops: seconds must be > 0");
  return flops / seconds / 1e9;
}

// ---------------------------------------------------------------------------
// Latency percentiles (serving bench / loadgen reports). Tail percentiles,
// not means, are what a latency SLO constrains — a serving bench that only
// prints the mean hides exactly the behaviour the batch-deadline knob
// trades away.
// ---------------------------------------------------------------------------

/// Linear-interpolated percentile of `values`, q in [0, 100]; delegates to
/// candle::Summary so every report quotes the same definition. Requires a
/// non-empty sample.
inline double percentile(const std::vector<double>& values, double q) {
  Summary summary;
  summary.add_all(values);
  return summary.percentile(q);
}

/// Median latency: the "typical request" column of a serving report.
inline double p50(const std::vector<double>& values) {
  return percentile(values, 50.0);
}

inline double p90(const std::vector<double>& values) {
  return percentile(values, 90.0);
}

/// Tail latency: the SLO column. With ~100 requests this is within one
/// sample of the max; quote it with the sample count in mind.
inline double p99(const std::vector<double>& values) {
  return percentile(values, 99.0);
}

/// One row of an original-vs-optimized comparison.
struct ComparisonRow {
  std::size_t ranks = 0;
  sim::SimResult original;
  sim::SimResult optimized;
};

/// Simulates the paper's original-vs-optimized loader comparison for a
/// benchmark/machine pair. `weak` fixes epochs per rank at `epochs`;
/// strong scaling divides `epochs` by the rank count (skipping rank counts
/// that leave zero epochs).
inline std::vector<ComparisonRow> compare_loaders(
    const sim::Machine& machine, const sim::BenchmarkProfile& profile,
    const std::vector<std::size_t>& rank_counts, std::size_t epochs,
    bool weak) {
  sim::RunSimulator simulator(machine, profile);
  std::vector<ComparisonRow> rows;
  for (std::size_t ranks : rank_counts) {
    const std::size_t per_rank =
        weak ? epochs : comp_epochs_balanced(epochs, ranks);
    if (per_rank == 0) continue;
    sim::RunPlan plan;
    plan.ranks = ranks;
    plan.epochs_per_rank = per_rank;
    plan.loader = io::LoaderKind::kOriginal;
    ComparisonRow row;
    row.ranks = ranks;
    row.original = simulator.simulate(plan);
    plan.loader = io::LoaderKind::kChunked;
    row.optimized = simulator.simulate(plan);
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Prints the Figure 11/13/14/15/16/17-style panel: runtime comparison (a)
/// and energy comparison (b) with improvement percentages.
inline void print_comparison_panels(const std::string& caption,
                                    const std::vector<ComparisonRow>& rows,
                                    const char* rank_label) {
  Table perf({rank_label, "original (s)", "optimized (s)", "improvement %"});
  Table energy({rank_label, "original (kJ)", "optimized (kJ)",
                "energy saving %"});
  double best_perf = 0.0, best_energy = 0.0;
  for (const auto& row : rows) {
    const double t0 = row.original.phases.total();
    const double t1 = row.optimized.phases.total();
    const double e0 = row.original.total_energy_j / 1e3;
    const double e1 = row.optimized.total_energy_j / 1e3;
    best_perf = std::max(best_perf, improvement_pct(t0, t1));
    best_energy = std::max(best_energy, improvement_pct(e0, e1));
    perf.add_row({std::to_string(row.ranks), strprintf("%.1f", t0),
                  strprintf("%.1f", t1),
                  strprintf("%.2f", improvement_pct(t0, t1))});
    energy.add_row({std::to_string(row.ranks), strprintf("%.1f", e0),
                    strprintf("%.1f", e1),
                    strprintf("%.2f", improvement_pct(e0, e1))});
  }
  perf.print("(a) " + caption + " — performance");
  std::printf("\n");
  energy.print("(b) " + caption + " — energy");
  std::printf("\nmax performance improvement: %.2f%%   max energy saving: %.2f%%\n",
              best_perf, best_energy);
}

}  // namespace candle::bench
