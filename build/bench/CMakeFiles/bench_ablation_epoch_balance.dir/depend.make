# Empty dependencies file for bench_ablation_epoch_balance.
# This may be replaced when dependencies are built.
