file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_parameter_server.dir/bench_baseline_parameter_server.cpp.o"
  "CMakeFiles/bench_baseline_parameter_server.dir/bench_baseline_parameter_server.cpp.o.d"
  "bench_baseline_parameter_server"
  "bench_baseline_parameter_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_parameter_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
