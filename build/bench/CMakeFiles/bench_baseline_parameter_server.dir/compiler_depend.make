# Empty compiler generated dependencies file for bench_baseline_parameter_server.
# This may be replaced when dependencies are built.
