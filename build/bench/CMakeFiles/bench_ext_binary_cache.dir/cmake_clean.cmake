file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_binary_cache.dir/bench_ext_binary_cache.cpp.o"
  "CMakeFiles/bench_ext_binary_cache.dir/bench_ext_binary_cache.cpp.o.d"
  "bench_ext_binary_cache"
  "bench_ext_binary_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_binary_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
