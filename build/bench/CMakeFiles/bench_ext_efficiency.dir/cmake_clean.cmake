file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_efficiency.dir/bench_ext_efficiency.cpp.o"
  "CMakeFiles/bench_ext_efficiency.dir/bench_ext_efficiency.cpp.o.d"
  "bench_ext_efficiency"
  "bench_ext_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
