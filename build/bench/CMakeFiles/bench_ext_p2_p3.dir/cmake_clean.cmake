file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_p2_p3.dir/bench_ext_p2_p3.cpp.o"
  "CMakeFiles/bench_ext_p2_p3.dir/bench_ext_p2_p3.cpp.o.d"
  "bench_ext_p2_p3"
  "bench_ext_p2_p3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_p2_p3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
