# Empty compiler generated dependencies file for bench_ext_p2_p3.
# This may be replaced when dependencies are built.
