file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_profiler.dir/bench_ext_profiler.cpp.o"
  "CMakeFiles/bench_ext_profiler.dir/bench_ext_profiler.cpp.o.d"
  "bench_ext_profiler"
  "bench_ext_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
