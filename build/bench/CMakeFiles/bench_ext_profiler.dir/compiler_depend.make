# Empty compiler generated dependencies file for bench_ext_profiler.
# This may be replaced when dependencies are built.
