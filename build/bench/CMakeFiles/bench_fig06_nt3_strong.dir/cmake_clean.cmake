file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_nt3_strong.dir/bench_fig06_nt3_strong.cpp.o"
  "CMakeFiles/bench_fig06_nt3_strong.dir/bench_fig06_nt3_strong.cpp.o.d"
  "bench_fig06_nt3_strong"
  "bench_fig06_nt3_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_nt3_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
