# Empty compiler generated dependencies file for bench_fig06_nt3_strong.
# This may be replaced when dependencies are built.
