file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_nt3_power_timeline.dir/bench_fig07_nt3_power_timeline.cpp.o"
  "CMakeFiles/bench_fig07_nt3_power_timeline.dir/bench_fig07_nt3_power_timeline.cpp.o.d"
  "bench_fig07_nt3_power_timeline"
  "bench_fig07_nt3_power_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_nt3_power_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
