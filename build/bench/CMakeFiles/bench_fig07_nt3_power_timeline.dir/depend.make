# Empty dependencies file for bench_fig07_nt3_power_timeline.
# This may be replaced when dependencies are built.
