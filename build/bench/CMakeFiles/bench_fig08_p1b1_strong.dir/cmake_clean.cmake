file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_p1b1_strong.dir/bench_fig08_p1b1_strong.cpp.o"
  "CMakeFiles/bench_fig08_p1b1_strong.dir/bench_fig08_p1b1_strong.cpp.o.d"
  "bench_fig08_p1b1_strong"
  "bench_fig08_p1b1_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_p1b1_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
