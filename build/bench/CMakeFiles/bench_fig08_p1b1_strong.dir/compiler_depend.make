# Empty compiler generated dependencies file for bench_fig08_p1b1_strong.
# This may be replaced when dependencies are built.
