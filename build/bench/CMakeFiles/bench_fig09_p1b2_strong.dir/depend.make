# Empty dependencies file for bench_fig09_p1b2_strong.
# This may be replaced when dependencies are built.
