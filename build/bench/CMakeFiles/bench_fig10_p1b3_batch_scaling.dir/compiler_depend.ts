# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig10_p1b3_batch_scaling.
