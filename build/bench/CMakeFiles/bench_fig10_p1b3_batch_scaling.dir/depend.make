# Empty dependencies file for bench_fig10_p1b3_batch_scaling.
# This may be replaced when dependencies are built.
