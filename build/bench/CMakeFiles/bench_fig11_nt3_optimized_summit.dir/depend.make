# Empty dependencies file for bench_fig11_nt3_optimized_summit.
# This may be replaced when dependencies are built.
