# Empty dependencies file for bench_fig12_broadcast_timeline.
# This may be replaced when dependencies are built.
