# Empty dependencies file for bench_fig13_nt3_theta.
# This may be replaced when dependencies are built.
