file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_p1b1_optimized_summit.dir/bench_fig14_p1b1_optimized_summit.cpp.o"
  "CMakeFiles/bench_fig14_p1b1_optimized_summit.dir/bench_fig14_p1b1_optimized_summit.cpp.o.d"
  "bench_fig14_p1b1_optimized_summit"
  "bench_fig14_p1b1_optimized_summit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_p1b1_optimized_summit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
