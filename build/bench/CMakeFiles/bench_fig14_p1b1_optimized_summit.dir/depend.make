# Empty dependencies file for bench_fig14_p1b1_optimized_summit.
# This may be replaced when dependencies are built.
