file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_p1b1_theta.dir/bench_fig15_p1b1_theta.cpp.o"
  "CMakeFiles/bench_fig15_p1b1_theta.dir/bench_fig15_p1b1_theta.cpp.o.d"
  "bench_fig15_p1b1_theta"
  "bench_fig15_p1b1_theta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_p1b1_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
