# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig15_p1b1_theta.
