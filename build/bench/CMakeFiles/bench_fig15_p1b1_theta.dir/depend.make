# Empty dependencies file for bench_fig15_p1b1_theta.
# This may be replaced when dependencies are built.
