# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_fig16_p1b2_optimized_summit.
