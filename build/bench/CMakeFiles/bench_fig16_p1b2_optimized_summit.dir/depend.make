# Empty dependencies file for bench_fig16_p1b2_optimized_summit.
# This may be replaced when dependencies are built.
