file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_p1b2_theta.dir/bench_fig17_p1b2_theta.cpp.o"
  "CMakeFiles/bench_fig17_p1b2_theta.dir/bench_fig17_p1b2_theta.cpp.o.d"
  "bench_fig17_p1b2_theta"
  "bench_fig17_p1b2_theta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_p1b2_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
