# Empty dependencies file for bench_fig17_p1b2_theta.
# This may be replaced when dependencies are built.
