# Empty dependencies file for bench_fig18_nt3_weak.
# This may be replaced when dependencies are built.
