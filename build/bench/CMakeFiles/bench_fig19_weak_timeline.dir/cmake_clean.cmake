file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_weak_timeline.dir/bench_fig19_weak_timeline.cpp.o"
  "CMakeFiles/bench_fig19_weak_timeline.dir/bench_fig19_weak_timeline.cpp.o.d"
  "bench_fig19_weak_timeline"
  "bench_fig19_weak_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_weak_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
