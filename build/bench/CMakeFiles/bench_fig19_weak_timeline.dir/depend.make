# Empty dependencies file for bench_fig19_weak_timeline.
# This may be replaced when dependencies are built.
