file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_p1b1_weak.dir/bench_fig20_p1b1_weak.cpp.o"
  "CMakeFiles/bench_fig20_p1b1_weak.dir/bench_fig20_p1b1_weak.cpp.o.d"
  "bench_fig20_p1b1_weak"
  "bench_fig20_p1b1_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_p1b1_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
