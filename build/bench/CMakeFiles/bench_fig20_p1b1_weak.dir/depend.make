# Empty dependencies file for bench_fig20_p1b1_weak.
# This may be replaced when dependencies are built.
