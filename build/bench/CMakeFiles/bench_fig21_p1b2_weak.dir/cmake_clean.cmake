file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_p1b2_weak.dir/bench_fig21_p1b2_weak.cpp.o"
  "CMakeFiles/bench_fig21_p1b2_weak.dir/bench_fig21_p1b2_weak.cpp.o.d"
  "bench_fig21_p1b2_weak"
  "bench_fig21_p1b2_weak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_p1b2_weak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
