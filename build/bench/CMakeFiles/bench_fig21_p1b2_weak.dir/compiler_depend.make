# Empty compiler generated dependencies file for bench_fig21_p1b2_weak.
# This may be replaced when dependencies are built.
