file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_allreduce.dir/bench_micro_allreduce.cpp.o"
  "CMakeFiles/bench_micro_allreduce.dir/bench_micro_allreduce.cpp.o.d"
  "bench_micro_allreduce"
  "bench_micro_allreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
