file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_csv.dir/bench_micro_csv.cpp.o"
  "CMakeFiles/bench_micro_csv.dir/bench_micro_csv.cpp.o.d"
  "bench_micro_csv"
  "bench_micro_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
