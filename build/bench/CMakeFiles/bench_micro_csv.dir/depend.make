# Empty dependencies file for bench_micro_csv.
# This may be replaced when dependencies are built.
