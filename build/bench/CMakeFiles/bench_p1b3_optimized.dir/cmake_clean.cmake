file(REMOVE_RECURSE
  "CMakeFiles/bench_p1b3_optimized.dir/bench_p1b3_optimized.cpp.o"
  "CMakeFiles/bench_p1b3_optimized.dir/bench_p1b3_optimized.cpp.o.d"
  "bench_p1b3_optimized"
  "bench_p1b3_optimized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p1b3_optimized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
