# Empty dependencies file for bench_p1b3_optimized.
# This may be replaced when dependencies are built.
