# Empty dependencies file for bench_table2_nt3_epoch_power.
# This may be replaced when dependencies are built.
