file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_dataloading_summit.dir/bench_table3_dataloading_summit.cpp.o"
  "CMakeFiles/bench_table3_dataloading_summit.dir/bench_table3_dataloading_summit.cpp.o.d"
  "bench_table3_dataloading_summit"
  "bench_table3_dataloading_summit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_dataloading_summit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
