# Empty compiler generated dependencies file for bench_table3_dataloading_summit.
# This may be replaced when dependencies are built.
