file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_dataloading_theta.dir/bench_table4_dataloading_theta.cpp.o"
  "CMakeFiles/bench_table4_dataloading_theta.dir/bench_table4_dataloading_theta.cpp.o.d"
  "bench_table4_dataloading_theta"
  "bench_table4_dataloading_theta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_dataloading_theta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
