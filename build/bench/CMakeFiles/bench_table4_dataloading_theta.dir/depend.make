# Empty dependencies file for bench_table4_dataloading_theta.
# This may be replaced when dependencies are built.
