file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_nt3_power_energy.dir/bench_table5_nt3_power_energy.cpp.o"
  "CMakeFiles/bench_table5_nt3_power_energy.dir/bench_table5_nt3_power_energy.cpp.o.d"
  "bench_table5_nt3_power_energy"
  "bench_table5_nt3_power_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_nt3_power_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
