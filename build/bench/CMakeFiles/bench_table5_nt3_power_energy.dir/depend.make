# Empty dependencies file for bench_table5_nt3_power_energy.
# This may be replaced when dependencies are built.
