file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_nt3_weak_detail.dir/bench_table6_nt3_weak_detail.cpp.o"
  "CMakeFiles/bench_table6_nt3_weak_detail.dir/bench_table6_nt3_weak_detail.cpp.o.d"
  "bench_table6_nt3_weak_detail"
  "bench_table6_nt3_weak_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_nt3_weak_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
