# Empty dependencies file for bench_table6_nt3_weak_detail.
# This may be replaced when dependencies are built.
