file(REMOVE_RECURSE
  "CMakeFiles/drug_response_pipeline.dir/drug_response_pipeline.cpp.o"
  "CMakeFiles/drug_response_pipeline.dir/drug_response_pipeline.cpp.o.d"
  "drug_response_pipeline"
  "drug_response_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drug_response_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
