# Empty compiler generated dependencies file for drug_response_pipeline.
# This may be replaced when dependencies are built.
