file(REMOVE_RECURSE
  "CMakeFiles/expression_autoencoder.dir/expression_autoencoder.cpp.o"
  "CMakeFiles/expression_autoencoder.dir/expression_autoencoder.cpp.o.d"
  "expression_autoencoder"
  "expression_autoencoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expression_autoencoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
