# Empty compiler generated dependencies file for expression_autoencoder.
# This may be replaced when dependencies are built.
