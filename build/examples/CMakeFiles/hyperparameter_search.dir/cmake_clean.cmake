file(REMOVE_RECURSE
  "CMakeFiles/hyperparameter_search.dir/hyperparameter_search.cpp.o"
  "CMakeFiles/hyperparameter_search.dir/hyperparameter_search.cpp.o.d"
  "hyperparameter_search"
  "hyperparameter_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperparameter_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
