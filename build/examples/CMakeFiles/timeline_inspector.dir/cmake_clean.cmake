file(REMOVE_RECURSE
  "CMakeFiles/timeline_inspector.dir/timeline_inspector.cpp.o"
  "CMakeFiles/timeline_inspector.dir/timeline_inspector.cpp.o.d"
  "timeline_inspector"
  "timeline_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
