# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tensor")
subdirs("nn")
subdirs("io")
subdirs("comm")
subdirs("trace")
subdirs("hvd")
subdirs("power")
subdirs("sim")
subdirs("candle")
subdirs("supervisor")
