file(REMOVE_RECURSE
  "CMakeFiles/candle_core.dir/models.cpp.o"
  "CMakeFiles/candle_core.dir/models.cpp.o.d"
  "CMakeFiles/candle_core.dir/profiler.cpp.o"
  "CMakeFiles/candle_core.dir/profiler.cpp.o.d"
  "CMakeFiles/candle_core.dir/runner.cpp.o"
  "CMakeFiles/candle_core.dir/runner.cpp.o.d"
  "CMakeFiles/candle_core.dir/scaling.cpp.o"
  "CMakeFiles/candle_core.dir/scaling.cpp.o.d"
  "libcandle_core.a"
  "libcandle_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
