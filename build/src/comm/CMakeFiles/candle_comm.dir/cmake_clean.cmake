file(REMOVE_RECURSE
  "CMakeFiles/candle_comm.dir/communicator.cpp.o"
  "CMakeFiles/candle_comm.dir/communicator.cpp.o.d"
  "libcandle_comm.a"
  "libcandle_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
