file(REMOVE_RECURSE
  "libcandle_comm.a"
)
