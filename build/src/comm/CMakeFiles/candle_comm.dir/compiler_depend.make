# Empty compiler generated dependencies file for candle_comm.
# This may be replaced when dependencies are built.
