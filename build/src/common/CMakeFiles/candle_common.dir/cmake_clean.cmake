file(REMOVE_RECURSE
  "CMakeFiles/candle_common.dir/cli.cpp.o"
  "CMakeFiles/candle_common.dir/cli.cpp.o.d"
  "CMakeFiles/candle_common.dir/log.cpp.o"
  "CMakeFiles/candle_common.dir/log.cpp.o.d"
  "CMakeFiles/candle_common.dir/rng.cpp.o"
  "CMakeFiles/candle_common.dir/rng.cpp.o.d"
  "CMakeFiles/candle_common.dir/stats.cpp.o"
  "CMakeFiles/candle_common.dir/stats.cpp.o.d"
  "CMakeFiles/candle_common.dir/string_util.cpp.o"
  "CMakeFiles/candle_common.dir/string_util.cpp.o.d"
  "CMakeFiles/candle_common.dir/table.cpp.o"
  "CMakeFiles/candle_common.dir/table.cpp.o.d"
  "libcandle_common.a"
  "libcandle_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
