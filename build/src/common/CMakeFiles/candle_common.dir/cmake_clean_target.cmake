file(REMOVE_RECURSE
  "libcandle_common.a"
)
