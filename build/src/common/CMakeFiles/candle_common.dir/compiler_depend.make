# Empty compiler generated dependencies file for candle_common.
# This may be replaced when dependencies are built.
