
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hvd/broadcast.cpp" "src/hvd/CMakeFiles/candle_hvd.dir/broadcast.cpp.o" "gcc" "src/hvd/CMakeFiles/candle_hvd.dir/broadcast.cpp.o.d"
  "/root/repo/src/hvd/context.cpp" "src/hvd/CMakeFiles/candle_hvd.dir/context.cpp.o" "gcc" "src/hvd/CMakeFiles/candle_hvd.dir/context.cpp.o.d"
  "/root/repo/src/hvd/distributed_optimizer.cpp" "src/hvd/CMakeFiles/candle_hvd.dir/distributed_optimizer.cpp.o" "gcc" "src/hvd/CMakeFiles/candle_hvd.dir/distributed_optimizer.cpp.o.d"
  "/root/repo/src/hvd/fusion.cpp" "src/hvd/CMakeFiles/candle_hvd.dir/fusion.cpp.o" "gcc" "src/hvd/CMakeFiles/candle_hvd.dir/fusion.cpp.o.d"
  "/root/repo/src/hvd/parameter_server.cpp" "src/hvd/CMakeFiles/candle_hvd.dir/parameter_server.cpp.o" "gcc" "src/hvd/CMakeFiles/candle_hvd.dir/parameter_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/comm/CMakeFiles/candle_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/candle_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/candle_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/candle_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/candle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
