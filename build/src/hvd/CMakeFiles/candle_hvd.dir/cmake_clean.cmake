file(REMOVE_RECURSE
  "CMakeFiles/candle_hvd.dir/broadcast.cpp.o"
  "CMakeFiles/candle_hvd.dir/broadcast.cpp.o.d"
  "CMakeFiles/candle_hvd.dir/context.cpp.o"
  "CMakeFiles/candle_hvd.dir/context.cpp.o.d"
  "CMakeFiles/candle_hvd.dir/distributed_optimizer.cpp.o"
  "CMakeFiles/candle_hvd.dir/distributed_optimizer.cpp.o.d"
  "CMakeFiles/candle_hvd.dir/fusion.cpp.o"
  "CMakeFiles/candle_hvd.dir/fusion.cpp.o.d"
  "CMakeFiles/candle_hvd.dir/parameter_server.cpp.o"
  "CMakeFiles/candle_hvd.dir/parameter_server.cpp.o.d"
  "libcandle_hvd.a"
  "libcandle_hvd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_hvd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
