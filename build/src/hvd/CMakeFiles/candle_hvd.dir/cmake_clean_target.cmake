file(REMOVE_RECURSE
  "libcandle_hvd.a"
)
