# Empty compiler generated dependencies file for candle_hvd.
# This may be replaced when dependencies are built.
