
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/binary_cache.cpp" "src/io/CMakeFiles/candle_io.dir/binary_cache.cpp.o" "gcc" "src/io/CMakeFiles/candle_io.dir/binary_cache.cpp.o.d"
  "/root/repo/src/io/csv_reader.cpp" "src/io/CMakeFiles/candle_io.dir/csv_reader.cpp.o" "gcc" "src/io/CMakeFiles/candle_io.dir/csv_reader.cpp.o.d"
  "/root/repo/src/io/csv_writer.cpp" "src/io/CMakeFiles/candle_io.dir/csv_writer.cpp.o" "gcc" "src/io/CMakeFiles/candle_io.dir/csv_writer.cpp.o.d"
  "/root/repo/src/io/synthetic.cpp" "src/io/CMakeFiles/candle_io.dir/synthetic.cpp.o" "gcc" "src/io/CMakeFiles/candle_io.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/candle_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/candle_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/candle_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
