file(REMOVE_RECURSE
  "CMakeFiles/candle_io.dir/binary_cache.cpp.o"
  "CMakeFiles/candle_io.dir/binary_cache.cpp.o.d"
  "CMakeFiles/candle_io.dir/csv_reader.cpp.o"
  "CMakeFiles/candle_io.dir/csv_reader.cpp.o.d"
  "CMakeFiles/candle_io.dir/csv_writer.cpp.o"
  "CMakeFiles/candle_io.dir/csv_writer.cpp.o.d"
  "CMakeFiles/candle_io.dir/synthetic.cpp.o"
  "CMakeFiles/candle_io.dir/synthetic.cpp.o.d"
  "libcandle_io.a"
  "libcandle_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
