file(REMOVE_RECURSE
  "libcandle_io.a"
)
