# Empty compiler generated dependencies file for candle_io.
# This may be replaced when dependencies are built.
