
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/callbacks.cpp" "src/nn/CMakeFiles/candle_nn.dir/callbacks.cpp.o" "gcc" "src/nn/CMakeFiles/candle_nn.dir/callbacks.cpp.o.d"
  "/root/repo/src/nn/dataset.cpp" "src/nn/CMakeFiles/candle_nn.dir/dataset.cpp.o" "gcc" "src/nn/CMakeFiles/candle_nn.dir/dataset.cpp.o.d"
  "/root/repo/src/nn/initializers.cpp" "src/nn/CMakeFiles/candle_nn.dir/initializers.cpp.o" "gcc" "src/nn/CMakeFiles/candle_nn.dir/initializers.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/candle_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/candle_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/candle_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/candle_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/metrics.cpp" "src/nn/CMakeFiles/candle_nn.dir/metrics.cpp.o" "gcc" "src/nn/CMakeFiles/candle_nn.dir/metrics.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/candle_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/candle_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/candle_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/candle_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/candle_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/candle_nn.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/candle_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/candle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
