file(REMOVE_RECURSE
  "CMakeFiles/candle_nn.dir/callbacks.cpp.o"
  "CMakeFiles/candle_nn.dir/callbacks.cpp.o.d"
  "CMakeFiles/candle_nn.dir/dataset.cpp.o"
  "CMakeFiles/candle_nn.dir/dataset.cpp.o.d"
  "CMakeFiles/candle_nn.dir/initializers.cpp.o"
  "CMakeFiles/candle_nn.dir/initializers.cpp.o.d"
  "CMakeFiles/candle_nn.dir/layers.cpp.o"
  "CMakeFiles/candle_nn.dir/layers.cpp.o.d"
  "CMakeFiles/candle_nn.dir/loss.cpp.o"
  "CMakeFiles/candle_nn.dir/loss.cpp.o.d"
  "CMakeFiles/candle_nn.dir/metrics.cpp.o"
  "CMakeFiles/candle_nn.dir/metrics.cpp.o.d"
  "CMakeFiles/candle_nn.dir/model.cpp.o"
  "CMakeFiles/candle_nn.dir/model.cpp.o.d"
  "CMakeFiles/candle_nn.dir/optimizer.cpp.o"
  "CMakeFiles/candle_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/candle_nn.dir/serialize.cpp.o"
  "CMakeFiles/candle_nn.dir/serialize.cpp.o.d"
  "libcandle_nn.a"
  "libcandle_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
