file(REMOVE_RECURSE
  "CMakeFiles/candle_power.dir/power.cpp.o"
  "CMakeFiles/candle_power.dir/power.cpp.o.d"
  "libcandle_power.a"
  "libcandle_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
