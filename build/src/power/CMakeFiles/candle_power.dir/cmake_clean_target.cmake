file(REMOVE_RECURSE
  "libcandle_power.a"
)
