# Empty dependencies file for candle_power.
# This may be replaced when dependencies are built.
