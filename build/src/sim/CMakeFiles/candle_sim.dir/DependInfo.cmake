
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/calibration.cpp" "src/sim/CMakeFiles/candle_sim.dir/calibration.cpp.o" "gcc" "src/sim/CMakeFiles/candle_sim.dir/calibration.cpp.o.d"
  "/root/repo/src/sim/dvfs.cpp" "src/sim/CMakeFiles/candle_sim.dir/dvfs.cpp.o" "gcc" "src/sim/CMakeFiles/candle_sim.dir/dvfs.cpp.o.d"
  "/root/repo/src/sim/event_sim.cpp" "src/sim/CMakeFiles/candle_sim.dir/event_sim.cpp.o" "gcc" "src/sim/CMakeFiles/candle_sim.dir/event_sim.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/candle_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/candle_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/run_sim.cpp" "src/sim/CMakeFiles/candle_sim.dir/run_sim.cpp.o" "gcc" "src/sim/CMakeFiles/candle_sim.dir/run_sim.cpp.o.d"
  "/root/repo/src/sim/scaling_metrics.cpp" "src/sim/CMakeFiles/candle_sim.dir/scaling_metrics.cpp.o" "gcc" "src/sim/CMakeFiles/candle_sim.dir/scaling_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/power/CMakeFiles/candle_power.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/candle_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/candle_io.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/candle_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/candle_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/candle_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
