file(REMOVE_RECURSE
  "CMakeFiles/candle_sim.dir/calibration.cpp.o"
  "CMakeFiles/candle_sim.dir/calibration.cpp.o.d"
  "CMakeFiles/candle_sim.dir/dvfs.cpp.o"
  "CMakeFiles/candle_sim.dir/dvfs.cpp.o.d"
  "CMakeFiles/candle_sim.dir/event_sim.cpp.o"
  "CMakeFiles/candle_sim.dir/event_sim.cpp.o.d"
  "CMakeFiles/candle_sim.dir/machine.cpp.o"
  "CMakeFiles/candle_sim.dir/machine.cpp.o.d"
  "CMakeFiles/candle_sim.dir/run_sim.cpp.o"
  "CMakeFiles/candle_sim.dir/run_sim.cpp.o.d"
  "CMakeFiles/candle_sim.dir/scaling_metrics.cpp.o"
  "CMakeFiles/candle_sim.dir/scaling_metrics.cpp.o.d"
  "libcandle_sim.a"
  "libcandle_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
