file(REMOVE_RECURSE
  "libcandle_sim.a"
)
