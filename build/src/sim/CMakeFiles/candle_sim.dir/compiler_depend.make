# Empty compiler generated dependencies file for candle_sim.
# This may be replaced when dependencies are built.
