file(REMOVE_RECURSE
  "CMakeFiles/candle_supervisor.dir/results_db.cpp.o"
  "CMakeFiles/candle_supervisor.dir/results_db.cpp.o.d"
  "CMakeFiles/candle_supervisor.dir/scheduler.cpp.o"
  "CMakeFiles/candle_supervisor.dir/scheduler.cpp.o.d"
  "CMakeFiles/candle_supervisor.dir/search_space.cpp.o"
  "CMakeFiles/candle_supervisor.dir/search_space.cpp.o.d"
  "CMakeFiles/candle_supervisor.dir/supervisor.cpp.o"
  "CMakeFiles/candle_supervisor.dir/supervisor.cpp.o.d"
  "libcandle_supervisor.a"
  "libcandle_supervisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_supervisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
