file(REMOVE_RECURSE
  "libcandle_supervisor.a"
)
