# Empty dependencies file for candle_supervisor.
# This may be replaced when dependencies are built.
