file(REMOVE_RECURSE
  "CMakeFiles/candle_tensor.dir/conv.cpp.o"
  "CMakeFiles/candle_tensor.dir/conv.cpp.o.d"
  "CMakeFiles/candle_tensor.dir/ops.cpp.o"
  "CMakeFiles/candle_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/candle_tensor.dir/tensor.cpp.o"
  "CMakeFiles/candle_tensor.dir/tensor.cpp.o.d"
  "libcandle_tensor.a"
  "libcandle_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
