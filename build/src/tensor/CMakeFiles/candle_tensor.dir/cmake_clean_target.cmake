file(REMOVE_RECURSE
  "libcandle_tensor.a"
)
