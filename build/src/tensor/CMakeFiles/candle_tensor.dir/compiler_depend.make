# Empty compiler generated dependencies file for candle_tensor.
# This may be replaced when dependencies are built.
