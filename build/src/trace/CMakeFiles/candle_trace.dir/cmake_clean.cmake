file(REMOVE_RECURSE
  "CMakeFiles/candle_trace.dir/timeline.cpp.o"
  "CMakeFiles/candle_trace.dir/timeline.cpp.o.d"
  "libcandle_trace.a"
  "libcandle_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
