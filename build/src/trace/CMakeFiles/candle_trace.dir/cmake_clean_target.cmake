file(REMOVE_RECURSE
  "libcandle_trace.a"
)
