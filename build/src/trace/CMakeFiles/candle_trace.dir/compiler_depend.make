# Empty compiler generated dependencies file for candle_trace.
# This may be replaced when dependencies are built.
