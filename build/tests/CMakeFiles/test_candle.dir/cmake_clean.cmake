file(REMOVE_RECURSE
  "CMakeFiles/test_candle.dir/test_candle.cpp.o"
  "CMakeFiles/test_candle.dir/test_candle.cpp.o.d"
  "test_candle"
  "test_candle.pdb"
  "test_candle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_candle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
