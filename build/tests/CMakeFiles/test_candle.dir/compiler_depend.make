# Empty compiler generated dependencies file for test_candle.
# This may be replaced when dependencies are built.
