
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_supervisor.cpp" "tests/CMakeFiles/test_supervisor.dir/test_supervisor.cpp.o" "gcc" "tests/CMakeFiles/test_supervisor.dir/test_supervisor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/supervisor/CMakeFiles/candle_supervisor.dir/DependInfo.cmake"
  "/root/repo/build/src/candle/CMakeFiles/candle_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/candle_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/hvd/CMakeFiles/candle_hvd.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/candle_io.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/candle_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/candle_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/candle_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/candle_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/candle_power.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/candle_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
