# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_comm[1]_include.cmake")
include("/root/repo/build/tests/test_hvd[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_candle[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_supervisor[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
