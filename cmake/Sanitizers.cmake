# Sanitizer configuration for the CANDLE reproduction.
#
# Usage: configure with -DCANDLE_SANITIZER=<mode> where <mode> is one of
#
#   ""        no sanitizer (default)
#   address   AddressSanitizer + UndefinedBehaviorSanitizer (memory errors,
#             leaks, UB in the NN kernels and IO substrate)
#   thread    ThreadSanitizer (races in the rank-per-thread collectives and
#             the Horovod-layer rendezvous state)
#   undefined UndefinedBehaviorSanitizer alone (cheap; usable with anything)
#
# The flags are applied globally (compile + link) so every library, test,
# bench, and example target is instrumented consistently — mixing
# instrumented and uninstrumented TUs produces false negatives (ASan) or
# false positives (TSan).
#
# The `asan-ubsan` / `tsan` presets in CMakePresets.json select these modes;
# see README "Sanitizer & lint builds".

set(CANDLE_SANITIZER "" CACHE STRING
    "Sanitizer mode: '', 'address', 'thread', or 'undefined'")
set_property(CACHE CANDLE_SANITIZER PROPERTY STRINGS
             "" "address" "thread" "undefined")

set(CANDLE_SANITIZER_FLAGS "")

if(CANDLE_SANITIZER STREQUAL "address")
  list(APPEND CANDLE_SANITIZER_FLAGS
       -fsanitize=address,undefined -fno-sanitize-recover=all)
elseif(CANDLE_SANITIZER STREQUAL "thread")
  list(APPEND CANDLE_SANITIZER_FLAGS
       -fsanitize=thread -fno-sanitize-recover=all)
elseif(CANDLE_SANITIZER STREQUAL "undefined")
  list(APPEND CANDLE_SANITIZER_FLAGS
       -fsanitize=undefined -fno-sanitize-recover=all)
elseif(NOT CANDLE_SANITIZER STREQUAL "")
  message(FATAL_ERROR
          "CANDLE_SANITIZER must be '', 'address', 'thread', or 'undefined' "
          "(got '${CANDLE_SANITIZER}')")
endif()

if(CANDLE_SANITIZER_FLAGS)
  # Keep frames honest so sanitizer reports carry usable stacks.
  list(APPEND CANDLE_SANITIZER_FLAGS
       -fno-omit-frame-pointer -g)
  message(STATUS
          "CANDLE_SANITIZER=${CANDLE_SANITIZER}: ${CANDLE_SANITIZER_FLAGS}")
  add_compile_options(${CANDLE_SANITIZER_FLAGS})
  add_link_options(${CANDLE_SANITIZER_FLAGS})
  # Sanitized builds also turn on the library's own logical bounds checks
  # (CANDLE_CHECK_BOUNDS in common/check.h): ASan cannot see an in-range but
  # logically wrong index into a tensor's backing vector.
  add_compile_definitions(CANDLE_ENABLE_BOUNDS_CHECKS=1)
  # ... and the runtime lock-hierarchy validator (common/lock_order.h): TSan
  # proves data-race freedom, the validator proves the CANDLE_LOCK_LEVEL
  # ordering declared in the source; together a TSan ctest run checks both.
  add_compile_definitions(CANDLE_ENABLE_LOCK_ORDER_CHECKS=1)
endif()
