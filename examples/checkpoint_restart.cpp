// Checkpoint/restart demonstration (the paper's §7 fault-tolerance plan).
//
// Phase 1 trains NT3 with per-epoch checkpointing and "crashes" (stops)
// after a few epochs. Phase 2 resumes from the checkpoint on a fresh set
// of ranks and finishes training, showing that the resumed run starts from
// the saved weights (first-epoch loss continues where the crash left off).
//
//   ./checkpoint_restart [--ranks 2] [--epochs-before-crash 3]
#include <cstdio>

#include "candle/runner.h"
#include "common/cli.h"

int main(int argc, char** argv) {
  using namespace candle;
  Cli cli;
  cli.flag("ranks", "Horovod ranks", "2")
      .flag("epochs-before-crash", "epochs completed before the failure", "3")
      .flag("epochs-after-restart", "epochs to run after resuming", "3")
      .flag("workdir", "scratch directory", "/tmp");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  RealRunConfig config;
  config.benchmark = BenchmarkId::kNT3;
  config.ranks = static_cast<std::size_t>(cli.get_int("ranks"));
  config.weak_scaling = true;  // epochs are per rank in this demo
  config.workdir = cli.get("workdir");
  config.checkpoint_every = 1;
  config.seed = 20260707;

  config.total_epochs =
      static_cast<std::size_t>(cli.get_int("epochs-before-crash"));
  std::printf("phase 1: training %zu epochs with per-epoch checkpoints...\n",
              config.total_epochs);
  const RealRunResult before = run_real(config);
  std::printf("  final loss %.4f, %zu checkpoints written to %s\n",
              before.final_loss, before.checkpoints_written,
              checkpoint_path(config).c_str());
  std::printf("  -- simulated failure: job killed --\n\n");

  config.total_epochs =
      static_cast<std::size_t>(cli.get_int("epochs-after-restart"));
  config.resume = true;
  std::printf("phase 2: restarting from the checkpoint...\n");
  const RealRunResult after = run_real(config);
  std::printf("  resumed_from_checkpoint: %s\n",
              after.resumed_from_checkpoint ? "yes" : "no");
  std::printf("  first epoch after restart: loss %.4f (pre-crash final "
              "was %.4f)\n",
              after.history.epochs.front().loss, before.final_loss);
  std::printf("  final loss after restart: %.4f\n", after.final_loss);
  if (after.history.epochs.front().loss <
      before.history.epochs.front().loss) {
    std::printf("\nThe restarted run begins well below the cold-start loss "
                "— training state survived the failure.\n");
  }
  return 0;
}
