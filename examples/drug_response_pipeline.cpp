// Drug response prediction (the P1B3 scenario from the paper's intro).
//
// Builds a P1B3-style regression pipeline: synthetic drug-screening data
// (expression + descriptors -> growth percentage), trained with each of the
// paper's batch-size scaling strategies (Fig 4b / Fig 10), reporting runtime
// and R-squared per strategy so the accuracy-vs-throughput tradeoff is visible.
//
//   ./drug_response_pipeline [--gpus N] [--scale S]
#include <cstdio>

#include "candle/models.h"
#include "candle/scaling.h"
#include "common/cli.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table.h"

int main(int argc, char** argv) {
  using namespace candle;
  Cli cli;
  cli.flag("gpus", "simulated GPU count for batch scaling", "48")
      .flag("scale", "dataset scale factor", "0.01");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  const auto gpus = static_cast<std::size_t>(cli.get_int("gpus"));
  const double scale = cli.get_double("scale");

  std::printf("P1B3 drug response pipeline, batch scaling for %zu GPUs\n\n",
              gpus);

  Table table({"strategy", "batch size", "train time (s)", "R^2"});
  for (auto strategy : {BatchScaling::kConstant, BatchScaling::kCbrt,
                        BatchScaling::kSqrt, BatchScaling::kLinear}) {
    const std::size_t batch = scaled_batch(100, gpus, strategy);
    Stopwatch watch;
    const AccuracyPoint point = reference_accuracy(
        BenchmarkId::kP1B3, /*gpus=*/1, /*total_epochs=*/1, batch, scale,
        /*weak=*/true);
    table.add_row({batch_scaling_name(strategy), std::to_string(batch),
                   strprintf("%.2f", watch.seconds()),
                   strprintf("%.4f", point.accuracy)});
  }
  table.print("One-epoch training, 900k-sample geometry scaled by " +
              strprintf("%.3f", scale) + ":");
  std::printf(
      "\nAs in the paper (Fig 10), aggressive batch scaling trains faster\n"
      "but costs accuracy; cubic-root scaling balances the two.\n");
  return 0;
}
