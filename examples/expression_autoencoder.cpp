// RNA-seq expression autoencoder (the P1B1 scenario).
//
// Compresses synthetic expression profiles into a low-dimensional latent
// vector and reports reconstruction error before/after training, plus the
// compression ratio — the quality-control use case the CANDLE project
// motivates for P1B1.
//
//   ./expression_autoencoder [--features F] [--epochs E]
#include <cstdio>

#include "candle/models.h"
#include "common/cli.h"
#include "nn/model.h"

int main(int argc, char** argv) {
  using namespace candle;
  Cli cli;
  cli.flag("features", "expression profile width", "128")
      .flag("epochs", "training epochs", "12");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  ScaledGeometry geometry = scaled_geometry(BenchmarkId::kP1B1, 0.002);
  geometry.features = static_cast<std::size_t>(cli.get_int("features"));

  const BenchmarkData data =
      make_benchmark_data(BenchmarkId::kP1B1, geometry, 11);
  nn::Model model = build_model(BenchmarkId::kP1B1, geometry);
  compile_benchmark_model(BenchmarkId::kP1B1, model, geometry, 0.001, 11);
  std::printf("%s", model.summary().c_str());

  const auto [loss_before, r2_before] =
      model.evaluate(data.test.x, data.test.y, /*classification=*/false);
  std::printf("reconstruction MSE before training: %.5f\n", loss_before);

  nn::FitOptions fit;
  fit.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  fit.batch_size = geometry.batch;
  fit.classification = false;
  const nn::History history = model.fit(data.train, fit);
  for (const auto& e : history.epochs)
    std::printf("  epoch %2zu: loss %.5f (%.0f ms)\n", e.epoch + 1, e.loss,
                e.seconds * 1e3);

  const auto [loss_after, r2_after] =
      model.evaluate(data.test.x, data.test.y, false);
  const std::size_t latent = std::max<std::size_t>(8, geometry.features / 16);
  std::printf(
      "reconstruction MSE after training: %.5f (R^2 %.3f -> %.3f)\n"
      "compression: %zu floats -> %zu latent dims (%.1fx)\n",
      loss_after, r2_before, r2_after, geometry.features, latent,
      static_cast<double>(geometry.features) / static_cast<double>(latent));
  return 0;
}
