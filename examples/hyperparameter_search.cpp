// CANDLE/Supervisor hyperparameter search (paper Fig 1b, [33]).
//
// Runs a real-training campaign over epochs/batch/lr/optimizer for a
// benchmark, prints the ranked leaderboard, then plans the same campaign's
// placement on a simulated Summit allocation and reports the makespan and
// utilization the scheduler achieves.
//
//   ./hyperparameter_search [--benchmark P1B2] [--trials 12] [--ranks 48]
#include <cstdio>

#include "common/cli.h"
#include "common/string_util.h"
#include "common/table.h"
#include "supervisor/supervisor.h"

int main(int argc, char** argv) {
  using namespace candle;
  using namespace candle::supervisor;
  Cli cli;
  cli.flag("benchmark", "NT3 | P1B1 | P1B2 | P1B3", "P1B2")
      .flag("trials", "stratified sample size (0 = full grid)", "8")
      .flag("ranks", "allocation size for the campaign plan", "48")
      .flag("scale", "dataset scale for real training", "0.0013")
      .flag("out", "results CSV path (empty = don't save)", "");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  CampaignConfig config;
  config.benchmark = benchmark_from_name(cli.get("benchmark"));
  config.scale = cli.get_double("scale");

  SearchSpace space;
  space.epochs = {2, 4, 8};
  space.batches = {20, 60, 100};
  space.learning_rates = {0.001, 0.005, 0.02};
  space.optimizers = {benchmark_optimizer(config.benchmark)};

  const auto trials_requested =
      static_cast<std::size_t>(cli.get_int("trials"));
  const std::vector<Trial> trials =
      trials_requested == 0 ? grid_search(space)
                            : stratified_search(space, trials_requested, 11);
  std::printf("Supervisor campaign: %zu trials of %s (grid size %zu)\n\n",
              trials.size(), benchmark_name(config.benchmark),
              space.grid_size());

  const ResultsDb db = run_campaign(config, trials);
  Table board({"rank", "config", "metric", "loss", "train (s)"});
  std::size_t place = 1;
  for (const auto& r : db.ranked()) {
    board.add_row({std::to_string(place++), r.trial.key(),
                   r.failed ? "FAILED" : strprintf("%.4f", r.metric),
                   strprintf("%.4f", r.loss),
                   strprintf("%.2f", r.train_seconds)});
  }
  board.print("Leaderboard (real training):");
  if (const auto best = db.best())
    std::printf("\nbest configuration: %s (metric %.4f)\n",
                best->trial.key().c_str(), best->metric);

  // Plan the same campaign at full scale on a Summit allocation.
  config.mode = EvalMode::kSimulated;
  config.ranks_per_trial = 6;  // one node per trial
  const auto ranks = static_cast<std::size_t>(cli.get_int("ranks"));
  const Schedule plan = plan_campaign(config, trials, ranks);
  std::printf(
      "\nCampaign plan on %zu Summit GPUs (6 per trial): %zu jobs, "
      "makespan %s, utilization %.0f%%\n",
      ranks, plan.jobs.size(), format_seconds(plan.makespan_s).c_str(),
      100.0 * plan.utilization());

  const std::string out = cli.get("out");
  if (!out.empty()) {
    db.save_csv(out);
    std::printf("results saved to %s\n", out.c_str());
  }
  return 0;
}
