// Quickstart: train the NT3 benchmark with 4 Horovod ranks, end to end.
//
// This walks the paper's full control flow (Fig 2/3) at laptop scale:
// synthetic RNA-seq-like CSVs are generated, each rank parses them with the
// optimized chunked loader, rank 0's weights are broadcast, and training
// runs with ring-allreduce gradient averaging and linear lr scaling.
//
//   ./quickstart [--ranks N] [--epochs E] [--loader original|chunked|dask]
//                [--overlap 0|1] [--level epoch|batch] [--cache 0|1]
//                [--prefetch 0|1] [--allreduce-algo ring|naive|hierarchical]
//                [--wire-dtype fp32|fp16|bf16|int8] [--error-feedback 0|1]
//                [--local-wire-dtype fp32|fp16|bf16|int8]
//                [--ranks-per-node N] [--layer-parallelism auto|data|channel]
#include <cstdio>

#include "candle/runner.h"
#include "common/cli.h"
#include "common/string_util.h"

int main(int argc, char** argv) {
  using namespace candle;
  Cli cli;
  cli.flag("ranks", "number of Horovod ranks (simulated GPUs)", "4")
      .flag("epochs", "total epochs split across ranks", "96")
      .flag("loader", "original | chunked | dask", "chunked")
      .flag("scale", "dataset scale factor", "0.002")
      .flag("overlap", "overlap allreduce with backward (bit-identical)",
            "0")
      .flag("level", "parallelism level: epoch | batch (shard per rank)",
            "epoch")
      .flag("cache", "load CSVs through the mmap binary cache (sharded "
            "reads under --level batch)", "0")
      .flag("prefetch", "stage batches on a producer thread (bit-identical)",
            "0")
      .flag("allreduce-algo", "ring | naive | hierarchical", "ring")
      .flag("wire-dtype",
            "gradient on-wire dtype: fp32 (bit-exact) | fp16 | bf16 | int8",
            "fp32")
      .flag("error-feedback",
            "carry per-bucket quantization-error residuals into the next "
            "step (pair with --wire-dtype int8)", "0")
      .flag("local-wire-dtype",
            "on-wire dtype of hierarchical intra-node legs (needs "
            "--allreduce-algo hierarchical)", "fp32")
      .flag("ranks-per-node", "ranks per modeled node (Summit: 6)", "6")
      .flag("layer-parallelism",
            "per-layer tensor parallelism: data (replicate every layer) | "
            "channel (shard Dense/Conv1D output channels across ranks) | "
            "auto (shard layers whose weight gradient outweighs the "
            "activation exchange); channel/auto need --level epoch",
            "data");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  RealRunConfig config;
  config.benchmark = BenchmarkId::kNT3;
  config.ranks = static_cast<std::size_t>(cli.get_int("ranks"));
  config.total_epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  config.scale = cli.get_double("scale");
  const std::string loader = cli.get("loader");
  config.loader = loader == "original" ? io::LoaderKind::kOriginal
                  : loader == "dask"   ? io::LoaderKind::kDask
                                       : io::LoaderKind::kChunked;
  config.fusion.overlap = cli.get_int("overlap") != 0;
  config.level = cli.get("level") == "batch" ? sim::ParallelLevel::kBatchStep
                                             : sim::ParallelLevel::kEpoch;
  config.cached_loads = cli.get_int("cache") != 0;
  config.prefetch = cli.get_int("prefetch") != 0;
  config.allreduce_algo =
      comm::parse_allreduce_algo(cli.get("allreduce-algo").c_str());
  config.fusion.wire_dtype =
      comm::parse_wire_dtype(cli.get("wire-dtype").c_str());
  config.fusion.error_feedback = cli.get_int("error-feedback") != 0;
  config.local_wire_dtype =
      comm::parse_wire_dtype(cli.get("local-wire-dtype").c_str());
  config.ranks_per_node =
      static_cast<std::size_t>(cli.get_int("ranks-per-node"));
  config.layer_parallelism =
      nn::parse_parallelism_mode(cli.get("layer-parallelism").c_str());

  std::printf(
      "NT3 quickstart: %zu ranks, %zu total epochs, loader=%s, "
      "allreduce=%s/%s%s, layer-parallelism=%s%s%s%s\n",
      config.ranks, config.total_epochs,
      io::loader_name(config.loader).c_str(),
      comm::allreduce_algo_name(config.allreduce_algo),
      comm::wire_dtype_name(config.fusion.wire_dtype),
      config.fusion.error_feedback ? "+ef" : "",
      nn::parallelism_mode_name(config.layer_parallelism),
      config.fusion.overlap ? ", overlapped allreduce" : "",
      config.cached_loads ? ", cached loads" : "",
      config.prefetch ? ", prefetched batches" : "");

  const RealRunResult result = run_real(config);

  std::printf("\nPhase breakdown (rank 0):\n");
  std::printf("  data loading   %s\n",
              format_seconds(result.data_load_s).c_str());
  std::printf("  preprocessing  %s\n",
              format_seconds(result.preprocess_s).c_str());
  std::printf("  bcast wait     %s\n",
              format_seconds(result.broadcast_negotiate_s).c_str());
  std::printf("  training       %s  (%zu epochs/rank)\n",
              format_seconds(result.train_s).c_str(), result.epochs_rank0);
  std::printf("  evaluation     %s\n",
              format_seconds(result.evaluate_s).c_str());
  std::printf("  total          %s\n",
              format_seconds(result.total_s).c_str());

  std::printf("\nTraining accuracy: %.4f   test accuracy: %.4f\n",
              result.final_accuracy, result.test_accuracy);
  std::printf("Allreduce calls per rank: %zu, bytes moved by rank 0: %s\n",
              result.comm_stats[0].allreduce_calls,
              format_bytes(static_cast<double>(
                               result.comm_stats[0].bytes_sent))
                  .c_str());
  const comm::CommStats& cs = result.comm_stats[0];
  std::printf("On-wire allreduce bytes by dtype (rank 0): ");
  for (const comm::WireDtype d :
       {comm::WireDtype::kFp32, comm::WireDtype::kFp16,
        comm::WireDtype::kBf16, comm::WireDtype::kInt8})
    std::printf("%s=%s  ", comm::wire_dtype_name(d),
                format_bytes(static_cast<double>(cs.wire_bytes(d))).c_str());
  std::printf("\n");
  if (cs.reduce_scatter_calls > 0 || cs.allgather_calls > 0)
    std::printf(
        "Tensor-parallel collectives (rank 0): reduce_scatter=%zu "
        "allgather=%zu\n",
        cs.reduce_scatter_calls, cs.allgather_calls);
  return 0;
}
