// Scaling explorer: predict time / power / energy of any configuration.
//
// Uses the calibrated Summit/Theta simulator to answer "what would this
// benchmark cost at N GPUs with loader X?" — the planning question the
// paper's §4-§6 answer empirically. Sweeps rank counts and prints the
// phase breakdown, time per epoch, average device power and energy.
//
//   ./scaling_explorer --benchmark NT3 --machine summit --loader chunked
//       (plus --weak / --epochs as needed)
#include <cstdio>
#include <vector>

#include "candle/models.h"
#include "candle/scaling.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/string_util.h"
#include "common/table.h"
#include "sim/run_sim.h"

int main(int argc, char** argv) {
  using namespace candle;
  Cli cli;
  cli.flag("benchmark", "NT3 | P1B1 | P1B2 | P1B3", "NT3")
      .flag("machine", "summit | theta", "summit")
      .flag("loader", "original | chunked | dask", "original")
      .flag("epochs", "total epochs (strong) or per-rank (weak)", "384")
      .bool_flag("weak", "weak scaling (epochs per rank constant)");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  const sim::Machine& machine = cli.get("machine") == "theta"
                                    ? sim::Machine::theta()
                                    : sim::Machine::summit();
  const sim::BenchmarkProfile& profile =
      sim::BenchmarkProfile::by_name(cli.get("benchmark"));
  const std::string loader_str = cli.get("loader");
  const io::LoaderKind loader =
      loader_str == "chunked"  ? io::LoaderKind::kChunked
      : loader_str == "dask"   ? io::LoaderKind::kDask
                               : io::LoaderKind::kOriginal;
  const auto total_epochs =
      static_cast<std::size_t>(cli.get_int("epochs"));
  const bool weak = cli.get_bool("weak");

  sim::RunSimulator simulator(machine, profile);
  std::printf("%s on %s, %s scaling, loader: %s\n\n", profile.name.c_str(),
              machine.name.c_str(), weak ? "weak" : "strong",
              io::loader_name(loader).c_str());

  Table table({"ranks", "load (s)", "bcast wait (s)", "train (s)",
               "total", "s/epoch", "avg W", "energy/rank (kJ)"});
  std::vector<std::size_t> rank_counts{1, 6, 24, 96, 384};
  if (weak && machine.kind == sim::MachineKind::kSummit)
    rank_counts = {6, 48, 384, 768, 1536, 3072};

  for (std::size_t ranks : rank_counts) {
    if (ranks > machine.max_ranks) break;
    sim::RunPlan plan;
    plan.ranks = ranks;
    plan.loader = loader;
    plan.epochs_per_rank =
        weak ? total_epochs : comp_epochs_balanced(total_epochs, ranks);
    if (plan.epochs_per_rank == 0) continue;
    try {
      const sim::SimResult r = simulator.simulate(plan);
      table.add_row(
          {std::to_string(ranks), strprintf("%.1f", r.phases.data_load),
           strprintf("%.1f", r.phases.negotiate_broadcast),
           strprintf("%.1f", r.phases.train()),
           format_seconds(r.phases.total()),
           strprintf("%.1f", r.time_per_epoch),
           strprintf("%.0f", r.avg_power_w),
           strprintf("%.1f", r.energy_per_rank_j / 1e3)});
    } catch (const OutOfMemory& oom) {
      table.add_row({std::to_string(ranks), "OOM", oom.what()});
    }
  }
  table.print();
  return 0;
}
