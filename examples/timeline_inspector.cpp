// Timeline inspector: generate Horovod-style chrome://tracing files.
//
// Produces the paper's Fig 7b / Fig 12 comparison as two JSON traces — the
// original loader's 384-GPU NT3 run (long NEGOTIATE_BROADCAST) and the
// optimized run (short one) — and prints where to load them
// (chrome://tracing or https://ui.perfetto.dev).
//
//   ./timeline_inspector [--out-dir DIR] [--ranks N]
#include <cstdio>

#include "common/cli.h"
#include "io/csv_reader.h"
#include "sim/run_sim.h"

int main(int argc, char** argv) {
  using namespace candle;
  Cli cli;
  cli.flag("out-dir", "directory for the trace JSON files", "/tmp")
      .flag("ranks", "simulated GPU count", "384");
  cli.parse(argc, argv);
  if (cli.help_requested()) return 0;

  const std::string dir = cli.get("out-dir");
  sim::RunSimulator simulator(sim::Machine::summit(),
                              sim::BenchmarkProfile::nt3());

  for (const auto& [loader, label] :
       {std::pair{io::LoaderKind::kOriginal, std::string("original")},
        std::pair{io::LoaderKind::kChunked, std::string("optimized")}}) {
    sim::RunPlan plan;
    plan.ranks = static_cast<std::size_t>(cli.get_int("ranks"));
    plan.epochs_per_rank = 1;
    plan.loader = loader;
    plan.make_timeline = true;
    const sim::SimResult r = simulator.simulate(plan);
    const std::string path = dir + "/nt3_timeline_" + label + ".json";
    r.timeline->write_chrome_json(path);
    std::printf(
        "%-9s loader: broadcast negotiate %.2f s, data load %.1f s -> %s\n",
        label.c_str(), r.phases.negotiate_broadcast, r.phases.data_load,
        path.c_str());
  }
  std::printf(
      "\nOpen the JSON files in chrome://tracing or ui.perfetto.dev to see\n"
      "the per-rank lanes (DATA_LOADING, NEGOTIATE_BROADCAST, MPI_BCAST,\n"
      "COMPUTE_GRADIENTS, NCCL_ALLREDUCE) as in the paper's Figs 7b/12.\n");
  return 0;
}
