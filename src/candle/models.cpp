#include "candle/models.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "candle/scaling.h"
#include "io/synthetic.h"

namespace candle {
namespace {

std::size_t scaled_dim(std::size_t full, double scale, std::size_t floor_dim) {
  const auto v = static_cast<std::size_t>(
      std::llround(static_cast<double>(full) * scale));
  return std::max(floor_dim, v);
}

}  // namespace

const char* benchmark_name(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kNT3: return "NT3";
    case BenchmarkId::kP1B1: return "P1B1";
    case BenchmarkId::kP1B2: return "P1B2";
    case BenchmarkId::kP1B3: return "P1B3";
    case BenchmarkId::kP2B1: return "P2B1";
    case BenchmarkId::kP3B1: return "P3B1";
  }
  return "?";
}

std::vector<BenchmarkId> all_benchmarks() {
  return {BenchmarkId::kNT3, BenchmarkId::kP1B1, BenchmarkId::kP1B2,
          BenchmarkId::kP1B3, BenchmarkId::kP2B1, BenchmarkId::kP3B1};
}

BenchmarkId benchmark_from_name(const std::string& name) {
  if (name == "NT3" || name == "nt3") return BenchmarkId::kNT3;
  if (name == "P1B1" || name == "p1b1") return BenchmarkId::kP1B1;
  if (name == "P1B2" || name == "p1b2") return BenchmarkId::kP1B2;
  if (name == "P1B3" || name == "p1b3") return BenchmarkId::kP1B3;
  if (name == "P2B1" || name == "p2b1") return BenchmarkId::kP2B1;
  if (name == "P3B1" || name == "p3b1") return BenchmarkId::kP3B1;
  throw InvalidArgument("unknown benchmark: " + name);
}

const sim::BenchmarkProfile& profile_for(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kNT3: return sim::BenchmarkProfile::nt3();
    case BenchmarkId::kP1B1: return sim::BenchmarkProfile::p1b1();
    case BenchmarkId::kP1B2: return sim::BenchmarkProfile::p1b2();
    case BenchmarkId::kP1B3: return sim::BenchmarkProfile::p1b3();
    case BenchmarkId::kP2B1: return sim::BenchmarkProfile::p2b1();
    case BenchmarkId::kP3B1: return sim::BenchmarkProfile::p3b1();
  }
  throw InvalidArgument("profile_for: bad id");
}

ScaledGeometry scaled_geometry(BenchmarkId id, double scale) {
  require(scale > 0.0 && scale <= 1.0, "scaled_geometry: scale in (0, 1]");
  const sim::BenchmarkProfile& p = profile_for(id);
  ScaledGeometry g;
  g.batch = p.default_batch;
  switch (id) {
    case BenchmarkId::kNT3:
      g.train_samples = p.train_samples;  // 1,120 — cheap to keep
      g.test_samples = p.test_samples;
      g.features = scaled_dim(p.features_per_sample, scale, 60);
      g.classes = 2;
      break;
    case BenchmarkId::kP1B1:
      g.train_samples = p.train_samples;  // 2,700
      g.test_samples = p.test_samples;
      g.features = scaled_dim(p.features_per_sample, scale, 32);
      g.classes = 0;  // autoencoder
      break;
    case BenchmarkId::kP1B2:
      g.train_samples = p.train_samples;  // 2,700
      g.test_samples = p.test_samples;
      g.features = scaled_dim(p.features_per_sample, scale, 40);
      g.classes = 20;  // cancer types
      break;
    case BenchmarkId::kP1B3:
      // The huge sample count is the point of P1B3; scale samples and keep
      // a moderate feature width.
      g.train_samples = scaled_dim(p.train_samples, scale, 1000);
      g.test_samples = scaled_dim(p.test_samples, scale, 300);
      g.features =
          std::max<std::size_t>(20, static_cast<std::size_t>(
                                        1000.0 * std::sqrt(scale)));
      g.classes = 0;  // regression
      break;
    case BenchmarkId::kP2B1:
      g.train_samples = scaled_dim(p.train_samples, scale * 50, 400);
      g.test_samples = scaled_dim(p.test_samples, scale * 50, 100);
      g.features = scaled_dim(p.features_per_sample, scale, 48);
      g.classes = 0;  // autoencoder
      break;
    case BenchmarkId::kP3B1:
      g.train_samples = scaled_dim(p.train_samples, scale * 100, 600);
      g.test_samples = scaled_dim(p.test_samples, scale * 100, 150);
      g.features = scaled_dim(p.features_per_sample, scale, 48);
      g.classes = 10;  // primary cancer sites
      break;
  }
  return g;
}

nn::Model build_model(BenchmarkId id, const ScaledGeometry& geometry) {
  using namespace nn;
  const std::size_t F = geometry.features;
  Model m;
  switch (id) {
    case BenchmarkId::kNT3: {
      // 1D conv stack: conv/pool x2 + dense head (§2.1.1).
      require(F >= 60, "NT3 model needs >= 60 features");
      m.add<ExpandDims>();
      m.add<Conv1D>(16, 9, 1, Act::kRelu);
      m.add<MaxPool1D>(4);
      m.add<Conv1D>(16, 5, 1, Act::kRelu);
      m.add<MaxPool1D>(4);
      m.add<Flatten>();
      m.add<Dense>(32, Act::kRelu);
      m.add<Dropout>(0.1);
      m.add<Dense>(16, Act::kRelu);
      m.add<Dropout>(0.1);
      m.add<Dense>(geometry.classes, Act::kSoftmax);
      break;
    }
    case BenchmarkId::kP1B1: {
      // Encoding -> bottleneck -> decoding autoencoder (§2.1.2).
      const std::size_t h1 = std::max<std::size_t>(16, F / 4);
      const std::size_t latent = std::max<std::size_t>(8, F / 16);
      m.add<Dense>(h1, Act::kRelu);
      m.add<Dense>(latent, Act::kRelu);
      m.add<Dense>(h1, Act::kRelu);
      m.add<Dense>(F, Act::kSigmoid);
      break;
    }
    case BenchmarkId::kP1B2: {
      // 5-layer MLP with regularization (§2.1.3): dropout + L2 decay.
      m.add<Dense>(128, Act::kRelu, 1e-5);
      m.add<Dropout>(0.1);
      m.add<Dense>(64, Act::kRelu, 1e-5);
      m.add<Dense>(32, Act::kRelu, 1e-5);
      m.add<Dense>(geometry.classes, Act::kSoftmax);
      break;
    }
    case BenchmarkId::kP1B3: {
      // "MLP network with convolution-like layers" (§2.1.4): a locally
      // connected front end over the feature vector, then dense layers.
      require(F >= 8, "P1B3 model needs >= 8 features");
      m.add<ExpandDims>();
      m.add<LocallyConnected1D>(4, 7, 7, Act::kRelu);
      m.add<Flatten>();
      m.add<Dense>(32, Act::kRelu);
      // Small-init head: growth predictions start near 0, the target mean.
      m.add<Dense>(1, Act::kNone, 0.0, 0.05);
      break;
    }
    case BenchmarkId::kP2B1: {
      // Deep autoencoder over MD-frame features (extension).
      const std::size_t h1 = std::max<std::size_t>(24, F / 4);
      const std::size_t h2 = std::max<std::size_t>(12, F / 12);
      const std::size_t latent = std::max<std::size_t>(6, F / 24);
      m.add<Dense>(h1, Act::kRelu);
      m.add<Dense>(h2, Act::kRelu);
      m.add<Dense>(latent, Act::kRelu);
      m.add<Dense>(h2, Act::kRelu);
      m.add<Dense>(h1, Act::kRelu);
      m.add<Dense>(F, Act::kSigmoid);
      break;
    }
    case BenchmarkId::kP3B1: {
      // Batch-normalized MLP over sparse report features (extension).
      m.add<BatchNorm>();
      m.add<Dense>(64, Act::kRelu);
      m.add<Dropout>(0.2);
      m.add<Dense>(32, Act::kRelu);
      m.add<Dense>(geometry.classes, Act::kSoftmax);
      break;
    }
  }
  return m;
}

std::string benchmark_optimizer(BenchmarkId id) {
  return profile_for(id).optimizer;
}

std::string benchmark_loss(BenchmarkId id) {
  switch (id) {
    case BenchmarkId::kNT3:
    case BenchmarkId::kP1B2:
    case BenchmarkId::kP3B1:
      return "categorical_crossentropy";
    case BenchmarkId::kP1B1:
    case BenchmarkId::kP1B3:
    case BenchmarkId::kP2B1:
      return "mse";
  }
  throw InvalidArgument("benchmark_loss: bad id");
}

bool benchmark_is_classification(BenchmarkId id) {
  return id == BenchmarkId::kNT3 || id == BenchmarkId::kP1B2 ||
         id == BenchmarkId::kP3B1;
}

void compile_benchmark_model(BenchmarkId id, nn::Model& model,
                             const ScaledGeometry& geometry, double lr,
                             std::uint64_t seed) {
  model.compile({geometry.features},
                nn::make_optimizer(benchmark_optimizer(id), lr),
                nn::make_loss(benchmark_loss(id)), seed);
}

BenchmarkData make_benchmark_data(BenchmarkId id,
                                  const ScaledGeometry& geometry,
                                  std::uint64_t seed) {
  BenchmarkData out;
  switch (id) {
    case BenchmarkId::kNT3: {
      io::ClassificationSpec spec;
      spec.samples = geometry.train_samples + geometry.test_samples;
      spec.features = geometry.features;
      spec.classes = geometry.classes;
      spec.informative = std::min<std::size_t>(geometry.features, 16);
      spec.class_sep = 1.25;  // tuned so accuracy reaches ~1.0 by ~8
      spec.noise = 1.3;       // epochs/GPU and degrades below that (Fig 6b)
      spec.seed = seed;
      nn::Dataset all = io::make_classification(spec);
      auto [train, test] = nn::validation_split(
          all, static_cast<double>(geometry.test_samples) /
                   static_cast<double>(spec.samples));
      out.train = std::move(train);
      out.test = std::move(test);
      break;
    }
    case BenchmarkId::kP1B2: {
      io::ClassificationSpec spec;
      spec.samples = geometry.train_samples + geometry.test_samples;
      spec.features = geometry.features;
      spec.classes = geometry.classes;
      spec.informative = std::min<std::size_t>(geometry.features, 32);
      spec.class_sep = 1.6;  // 20-way problem: needs ~16 epochs (Fig 9b)
      spec.noise = 2.2;
      spec.seed = seed;
      nn::Dataset all = io::make_classification(spec);
      auto [train, test] = nn::validation_split(
          all, static_cast<double>(geometry.test_samples) /
                   static_cast<double>(spec.samples));
      out.train = std::move(train);
      out.test = std::move(test);
      break;
    }
    case BenchmarkId::kP1B1: {
      const std::size_t rank = std::max<std::size_t>(4, geometry.features / 16);
      out.train = io::make_autoencoder_data(geometry.train_samples,
                                            geometry.features, rank, seed);
      out.test = io::make_autoencoder_data(geometry.test_samples,
                                           geometry.features, rank, seed + 1);
      break;
    }
    case BenchmarkId::kP2B1: {
      const std::size_t rank = std::max<std::size_t>(4, geometry.features / 24);
      out.train = io::make_autoencoder_data(geometry.train_samples,
                                            geometry.features, rank, seed);
      out.test = io::make_autoencoder_data(geometry.test_samples,
                                           geometry.features, rank, seed + 1);
      break;
    }
    case BenchmarkId::kP3B1: {
      io::ClassificationSpec spec;
      spec.samples = geometry.train_samples + geometry.test_samples;
      spec.features = geometry.features;
      spec.classes = geometry.classes;
      spec.informative = std::min<std::size_t>(geometry.features, 30);
      spec.class_sep = 1.8;
      spec.noise = 1.8;
      spec.seed = seed;
      nn::Dataset all = io::make_classification(spec);
      auto [train, test] = nn::validation_split(
          all, static_cast<double>(geometry.test_samples) /
                   static_cast<double>(spec.samples));
      out.train = std::move(train);
      out.test = std::move(test);
      break;
    }
    case BenchmarkId::kP1B3: {
      io::RegressionSpec spec;
      spec.samples = geometry.train_samples + geometry.test_samples;
      spec.features = geometry.features;
      spec.informative = std::min<std::size_t>(geometry.features, 16);
      spec.noise = 0.03;
      spec.seed = seed;
      nn::Dataset all = io::make_regression(spec);
      auto [train, test] = nn::validation_split(
          all, static_cast<double>(geometry.test_samples) /
                   static_cast<double>(spec.samples));
      out.train = std::move(train);
      out.test = std::move(test);
      break;
    }
  }
  return out;
}

AccuracyPoint reference_accuracy(BenchmarkId id, std::size_t gpus,
                                 std::size_t total_epochs, std::size_t batch,
                                 double scale, bool weak, std::uint64_t seed) {
  require(gpus > 0, "reference_accuracy: gpus must be > 0");
  const ScaledGeometry geometry = scaled_geometry(id, scale);
  const std::size_t epochs =
      weak ? total_epochs : comp_epochs_balanced(total_epochs, gpus);
  require(epochs >= 1, "reference_accuracy: fewer than 1 epoch per GPU — "
                       "the benchmark requires at least 1 (paper §4.2.2)");

  BenchmarkData data = make_benchmark_data(id, geometry, seed);
  nn::Model model = build_model(id, geometry);
  const double lr =
      scaled_learning_rate(profile_for(id).learning_rate, gpus);
  compile_benchmark_model(id, model, geometry, lr, seed);

  nn::FitOptions options;
  options.epochs = epochs;
  options.batch_size = batch == 0 ? geometry.batch : batch;
  options.classification = benchmark_is_classification(id);
  const nn::History history = model.fit(data.train, options);

  AccuracyPoint point;
  point.gpus = gpus;
  point.epochs_per_gpu = epochs;
  point.batch = options.batch_size;
  point.accuracy = history.final_accuracy();
  point.loss = history.final_loss();
  return point;
}

}  // namespace candle
