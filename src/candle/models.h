// CANDLE Pilot1 benchmark definitions: model builders and synthetic data.
//
// Real-mode runs train genuinely (our nn/ substrate) on scaled-down synthetic
// datasets whose geometry mirrors Table 1. The `scale` knob shrinks feature
// and sample counts proportionally so that laptop-scale runs finish in
// seconds while preserving the training dynamics the paper studies
// (accuracy vs epochs-per-GPU, batch-size effects).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "nn/dataset.h"
#include "nn/model.h"
#include "sim/calibration.h"

namespace candle {

/// The four Pilot1 benchmarks (paper §2.1) plus the P2/P3 extensions the
/// paper's §1 says the methodology applies to "in a similar way".
enum class BenchmarkId { kNT3, kP1B1, kP1B2, kP1B3, kP2B1, kP3B1 };

/// All ids, paper benchmarks first.
std::vector<BenchmarkId> all_benchmarks();

const char* benchmark_name(BenchmarkId id);
BenchmarkId benchmark_from_name(const std::string& name);

/// Maps a benchmark to its calibrated full-scale profile (Table 1 etc.).
const sim::BenchmarkProfile& profile_for(BenchmarkId id);

/// Scaled-down geometry for real-mode training.
struct ScaledGeometry {
  std::size_t train_samples = 0;
  std::size_t test_samples = 0;
  std::size_t features = 0;
  std::size_t classes = 0;  // 0 for regression/autoencoder
  std::size_t batch = 0;    // default batch, scaled when needed
};

/// Scales Table 1 geometry by `scale` in features (samples are kept at the
/// benchmark's true count for NT3/P1B1/P1B2 and scaled for P1B3).
ScaledGeometry scaled_geometry(BenchmarkId id, double scale);

/// Builds the benchmark's network (uncompiled) for a given feature width.
/// Architectures follow §2.1: NT3 = Conv1D stack, P1B1 = autoencoder,
/// P1B2 = 5-layer MLP classifier, P1B3 = MLP regressor.
nn::Model build_model(BenchmarkId id, const ScaledGeometry& geometry);

/// Compiles `model` with the benchmark's optimizer/loss at `lr`.
void compile_benchmark_model(BenchmarkId id, nn::Model& model,
                             const ScaledGeometry& geometry, double lr,
                             std::uint64_t seed);

/// Convenience: optimizer + loss names per benchmark (Table 1).
std::string benchmark_optimizer(BenchmarkId id);
std::string benchmark_loss(BenchmarkId id);
bool benchmark_is_classification(BenchmarkId id);

/// Synthetic train+test data with the scaled geometry. Deterministic in
/// `seed`. Classification sets are Gaussian mixtures tuned to need several
/// epochs to converge (reproducing the paper's accuracy cliffs).
struct BenchmarkData {
  nn::Dataset train;
  nn::Dataset test;
};
BenchmarkData make_benchmark_data(BenchmarkId id,
                                  const ScaledGeometry& geometry,
                                  std::uint64_t seed);

/// Result of a reference accuracy run.
struct AccuracyPoint {
  std::size_t gpus = 0;
  std::size_t epochs_per_gpu = 0;
  std::size_t batch = 0;
  float accuracy = 0.0f;  // training accuracy (or R² for regression)
  float loss = 0.0f;
};

/// Reproduces the paper's accuracy-vs-GPUs semantics by direct training:
/// because every Horovod rank loads the identical full dataset, averaged
/// gradients equal local gradients, so training one model for
/// comp_epochs(E, gpus) epochs at lr*gpus is exactly equivalent (verified
/// by test_equivalence). `weak` keeps epochs-per-GPU constant instead.
AccuracyPoint reference_accuracy(BenchmarkId id, std::size_t gpus,
                                 std::size_t total_epochs, std::size_t batch,
                                 double scale, bool weak,
                                 std::uint64_t seed = 7);

}  // namespace candle
