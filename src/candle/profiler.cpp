#include "candle/profiler.h"

#include <algorithm>

#include "common/error.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "nn/dataset.h"

namespace candle {

std::size_t StepProfile::hottest() const {
  require(!layers.empty(), "StepProfile::hottest: empty profile");
  std::size_t best = 0;
  for (std::size_t i = 1; i < layers.size(); ++i)
    if (layers[i].total_ms() > layers[best].total_ms()) best = i;
  return best;
}

StepProfile profile_step(BenchmarkId id, double scale, std::size_t batch,
                         std::size_t repetitions, std::uint64_t seed) {
  require(repetitions > 0, "profile_step: repetitions must be > 0");
  const ScaledGeometry geometry = scaled_geometry(id, scale);
  const std::size_t b = batch == 0 ? geometry.batch : batch;
  const BenchmarkData data = make_benchmark_data(id, geometry, seed);
  require(data.train.size() >= b, "profile_step: batch larger than dataset");

  nn::Model model = build_model(id, geometry);
  compile_benchmark_model(id, model, geometry,
                          profile_for(id).learning_rate, seed);
  const std::vector<nn::Layer*> layers = model.layers();

  StepProfile profile;
  profile.batch = b;
  profile.repetitions = repetitions;
  profile.layers.resize(layers.size());
  for (std::size_t i = 0; i < layers.size(); ++i) {
    profile.layers[i].layer = layers[i]->describe();
    profile.layers[i].params = layers[i]->param_count();
  }

  const Tensor bx = nn::take_rows(data.train.x, 0, b);
  const Tensor by = nn::take_rows(data.train.y, 0, b);
  const auto& loss = model.loss();

  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    // Forward, timing each layer.
    std::vector<Tensor> activations;
    activations.reserve(layers.size() + 1);
    activations.push_back(bx);
    for (std::size_t i = 0; i < layers.size(); ++i) {
      Stopwatch watch;
      activations.push_back(
          layers[i]->forward(activations.back(), /*training=*/true));
      profile.layers[i].forward_ms += watch.millis();
    }
    // Backward, timing each layer.
    Tensor grad = loss.gradient(activations.back(), by);
    for (std::size_t i = layers.size(); i-- > 0;) {
      Stopwatch watch;
      grad = layers[i]->backward(grad);
      profile.layers[i].backward_ms += watch.millis();
    }
  }
  for (auto& lp : profile.layers) {
    lp.forward_ms /= static_cast<double>(repetitions);
    lp.backward_ms /= static_cast<double>(repetitions);
    profile.step_ms += lp.total_ms();
  }
  return profile;
}

std::string format_profile(const StepProfile& profile) {
  std::string out = strprintf(
      "%-36s %10s %10s %8s %10s\n", "layer", "fwd (ms)", "bwd (ms)",
      "% step", "params");
  for (const auto& lp : profile.layers) {
    out += strprintf("%-36s %10.3f %10.3f %7.1f%% %10zu\n",
                     lp.layer.c_str(), lp.forward_ms, lp.backward_ms,
                     profile.step_ms > 0.0
                         ? 100.0 * lp.total_ms() / profile.step_ms
                         : 0.0,
                     lp.params);
  }
  out += strprintf("step total: %.3f ms (batch %zu, mean of %zu reps)\n",
                   profile.step_ms, profile.batch, profile.repetitions);
  return out;
}

}  // namespace candle
