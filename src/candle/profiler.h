// Per-layer kernel profiler (the paper's §7 future work: "we plan to use
// NVProf to profile the TensorFlow run and identify the other performance
// bottlenecks").
//
// Measures, with real executions on the scaled benchmark models, where one
// training step's time goes: forward and backward wall-clock per layer,
// like an nvprof kernel summary. Used by bench_ext_profiler and by anyone
// deciding which kernel to optimize next.
#pragma once

#include <string>
#include <vector>

#include "candle/models.h"

namespace candle {

/// One layer's measured share of a training step.
struct LayerProfile {
  std::string layer;        // Layer::describe()
  double forward_ms = 0.0;  // mean per step
  double backward_ms = 0.0;
  std::size_t params = 0;

  [[nodiscard]] double total_ms() const { return forward_ms + backward_ms; }
};

/// Whole-step profile.
struct StepProfile {
  std::vector<LayerProfile> layers;
  double step_ms = 0.0;       // sum over layers
  std::size_t batch = 0;
  std::size_t repetitions = 0;

  /// Index of the most expensive layer (the "bottleneck kernel").
  [[nodiscard]] std::size_t hottest() const;
};

/// Profiles `repetitions` training steps of the benchmark's model at the
/// given scale and batch size (0 = benchmark default), timing every layer's
/// forward and backward individually.
StepProfile profile_step(BenchmarkId id, double scale, std::size_t batch = 0,
                         std::size_t repetitions = 5,
                         std::uint64_t seed = 17);

/// Renders an nvprof-style summary table.
std::string format_profile(const StepProfile& profile);

}  // namespace candle
