#include "candle/runner.h"

#include "common/error.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_annotations.h"
#include "hvd/broadcast.h"
#include "hvd/distributed_optimizer.h"
#include "io/binary_cache.h"
#include "io/csv_writer.h"
#include "nn/callbacks.h"
#include "nn/serialize.h"
#include "tensor/ops.h"

namespace candle {
namespace {

/// Writes a dataset to CSV in the benchmark's on-disk layout.
void write_dataset_csv(const std::string& path, const nn::Dataset& data,
                       BenchmarkId id) {
  io::CsvWriter writer(path);
  const std::size_t n = data.size();
  const std::size_t f = data.x.dim(1);
  std::vector<float> row(f);
  const bool classifier = benchmark_is_classification(id);
  const std::vector<std::size_t> labels =
      classifier ? argmax_rows(data.y) : std::vector<std::size_t>{};
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < f; ++j) row[j] = data.x.at(i, j);
    if (classifier) {
      // Label in column 0 (NT3/P1B2 layout).
      writer.write_labeled_row(static_cast<long long>(labels[i]), row);
    } else if (id == BenchmarkId::kP1B3) {
      // Regression target in column 0.
      std::vector<float> full(f + 1);
      full[0] = data.y.at(i, 0);
      std::copy(row.begin(), row.end(), full.begin() + 1);
      writer.write_row(full);
    } else {
      // Autoencoder: features only.
      writer.write_row(row);
    }
  }
  writer.close();
}

/// Parses a loaded frame back into a dataset (inverse of the writer).
nn::Dataset frame_to_dataset(io::DataFrame&& df, BenchmarkId id,
                             std::size_t classes) {
  const std::size_t n = df.rows;
  if (benchmark_is_classification(id)) {
    const std::size_t f = df.cols - 1;
    Tensor x({n, f});
    std::vector<std::size_t> labels(n);
    for (std::size_t i = 0; i < n; ++i) {
      labels[i] = static_cast<std::size_t>(df.at(i, 0));
      require(labels[i] < classes, "frame_to_dataset: label out of range");
      for (std::size_t j = 0; j < f; ++j) x.at(i, j) = df.at(i, j + 1);
    }
    return nn::Dataset{std::move(x), nn::one_hot(labels, classes)};
  }
  if (id == BenchmarkId::kP1B3) {
    const std::size_t f = df.cols - 1;
    Tensor x({n, f});
    Tensor y({n, std::size_t{1}});
    for (std::size_t i = 0; i < n; ++i) {
      y.at(i, 0) = df.at(i, 0);
      for (std::size_t j = 0; j < f; ++j) x.at(i, j) = df.at(i, j + 1);
    }
    return nn::Dataset{std::move(x), std::move(y)};
  }
  // Autoencoder: y == x.
  Tensor x = std::move(df).to_tensor();
  Tensor y = x;
  return nn::Dataset{std::move(x), std::move(y)};
}

}  // namespace

std::string checkpoint_path(const RealRunConfig& config) {
  return config.workdir + "/" + benchmark_name(config.benchmark) +
         strprintf("_s%llu", static_cast<unsigned long long>(config.seed)) +
         ".ckpt";
}

std::pair<std::string, std::string> prepare_benchmark_csvs(
    const RealRunConfig& config) {
  const ScaledGeometry geometry =
      scaled_geometry(config.benchmark, config.scale);
  const BenchmarkData data =
      make_benchmark_data(config.benchmark, geometry, config.seed);
  const std::string stem =
      config.workdir + "/" + benchmark_name(config.benchmark) +
      strprintf("_s%llu", static_cast<unsigned long long>(config.seed));
  const std::string train_path = stem + "_train.csv";
  const std::string test_path = stem + "_test.csv";
  write_dataset_csv(train_path, data.train, config.benchmark);
  write_dataset_csv(test_path, data.test, config.benchmark);
  return {train_path, test_path};
}

RealRunResult run_real(const RealRunConfig& config) {
  require(config.ranks > 0, "run_real: ranks must be > 0");
  const bool channel_mode =
      config.layer_parallelism != nn::ParallelismMode::kData;
  // Channel parallelism shards weights, not data: every rank must step the
  // same batches in the same order (epoch-level replication), and a
  // rank-sharded model cannot round-trip through the single-file
  // checkpoint.
  require(!channel_mode || config.level == sim::ParallelLevel::kEpoch,
          "run_real: --layer-parallelism channel/auto requires epoch-level "
          "parallelism (all ranks must step identical batches)");
  require(!channel_mode || (config.checkpoint_every == 0 && !config.resume),
          "run_real: --layer-parallelism channel/auto is incompatible with "
          "checkpoint/resume (weights are rank-sharded)");
  const ScaledGeometry geometry =
      scaled_geometry(config.benchmark, config.scale);
  const std::size_t epochs_per_rank =
      config.weak_scaling
          ? config.total_epochs
          : comp_epochs_balanced(config.total_epochs, config.ranks);
  require(epochs_per_rank >= 1,
          "run_real: strong scaling leaves < 1 epoch per rank (the paper "
          "caps GPUs at total_epochs / min_epochs)");

  const std::size_t base_batch =
      config.batch == 0 ? geometry.batch : config.batch;
  const std::size_t batch =
      scaled_batch(base_batch, config.ranks, config.batch_scaling);
  const double base_lr = profile_for(config.benchmark).learning_rate;
  const double lr = config.scale_lr
                        ? scaled_learning_rate(base_lr, config.ranks)
                        : base_lr;

  const auto [train_path, test_path] = prepare_benchmark_csvs(config);

  auto timeline = config.record_timeline
                      ? std::make_shared<trace::Timeline>()
                      : std::shared_ptr<trace::Timeline>{};
  Stopwatch clock;
  RealRunResult result;
  AnnotatedMutex result_mutex{CANDLE_LOCK_LEVEL(lock_order::level::kRunnerResult),
                              "runner::result_mutex"};

  comm::WorldOptions world_options;
  world_options.ranks_per_node = config.ranks_per_node;
  world_options.allreduce_algo = config.allreduce_algo;
  world_options.local_wire_dtype = config.local_wire_dtype;
  // The world default wire dtype stays fp32: gradient compression flows
  // per bucket through config.fusion.wire_dtype (local_wire_dtype only
  // compresses hierarchical intra-node legs), while broadcasts and scalar
  // metric reductions always stay exact.

  result.comm_stats = comm::World::run(
      config.ranks,
      [&](comm::Communicator& communicator) {
        hvd::Context ctx(communicator, timeline.get(), &clock);

        // --- Phase 1: data loading (real CSV parse, per rank). -----------
        // With cached_loads the parse happens once and later ranks/runs
        // map the binary cache; under batch-step sharding the cache read
        // touches only this rank's rows (pre-sharded at the I/O layer).
        const bool preshard = config.cached_loads &&
                              config.level == sim::ParallelLevel::kBatchStep &&
                              config.ranks > 1;
        const double load_begin = ctx.now();
        io::CsvReadStats load_stats;
        io::DataFrame train_frame =
            preshard ? io::read_csv_cached_sharded(train_path, ctx.rank(),
                                                   config.ranks, config.loader,
                                                   &load_stats)
            : config.cached_loads
                ? io::read_csv_cached(train_path, config.loader, &load_stats)
                : io::read_csv(train_path, config.loader, &load_stats);
        io::CsvReadStats test_stats;
        io::DataFrame test_frame =
            config.cached_loads
                ? io::read_csv_cached(test_path, config.loader, &test_stats)
                : io::read_csv(test_path, config.loader, &test_stats);
        const double load_s = ctx.now() - load_begin;
        ctx.record(trace::kDataLoading, "io", load_begin, load_s);

        // --- Phase 2: preprocessing. --------------------------------------
        const double pre_begin = ctx.now();
        nn::Dataset train = frame_to_dataset(std::move(train_frame),
                                             config.benchmark,
                                             geometry.classes);
        nn::Dataset test = frame_to_dataset(std::move(test_frame),
                                            config.benchmark,
                                            geometry.classes);
        if (!preshard && config.level == sim::ParallelLevel::kBatchStep &&
            config.ranks > 1) {
          // Batch-step-level parallelism (Fig 3): rank r trains on rows
          // r, r+P, 2P+r, ... Equal shard sizes (floor(S/P)) keep every
          // rank's step count identical, which the synchronous allreduce
          // requires.
          const std::size_t shard = train.size() / config.ranks;
          require(shard >= 1, "run_real: dataset smaller than rank count");
          std::vector<std::size_t> mine(shard);
          for (std::size_t i = 0; i < shard; ++i)
            mine[i] = i * config.ranks + ctx.rank();
          train = nn::Dataset{nn::gather_rows(train.x, mine),
                              nn::gather_rows(train.y, mine)};
        }
        const double pre_s = ctx.now() - pre_begin;
        ctx.record(trace::kPreprocessing, "io", pre_begin, pre_s);

        // --- Model: rank-distinct init, rank-0 weights win via broadcast.
        nn::Model model = build_model(config.benchmark, geometry);
        auto inner =
            nn::make_optimizer(benchmark_optimizer(config.benchmark), lr);
        auto distributed = std::make_unique<hvd::DistributedOptimizer>(
            std::move(inner), ctx, config.fusion);
        hvd::DistributedOptimizer* dist = distributed.get();
        nn::ParallelismOptions parallelism;
        parallelism.mode = config.layer_parallelism;
        parallelism.comm = &communicator;
        parallelism.batch_hint = batch;
        parallelism.wire_dtype = config.fusion.wire_dtype;
        // Channel mode needs a uniform seed: sharded layers slice one
        // shared full init, and every rank must draw the same shuffle
        // stream. Data mode keeps the rank-distinct init (rank 0 wins via
        // the broadcast below), preserving the existing runs bit-exactly.
        const std::uint64_t model_seed =
            channel_mode ? config.seed : config.seed + ctx.rank();
        model.compile({geometry.features}, std::move(distributed),
                      nn::make_loss(benchmark_loss(config.benchmark)),
                      model_seed, parallelism);
        // Overlap knob: reduce gradient buckets on a per-rank comm thread
        // during backward instead of a synchronous sweep after it.
        // Bit-identical either way (see hvd/bucket_scheduler.h).
        if (config.fusion.overlap) dist->enable_overlap(model);

        // Restart support: rank 0 restores the checkpoint; the broadcast
        // below distributes the restored weights to every rank.
        bool resumed = false;
        if (config.resume && ctx.rank() == 0 &&
            nn::is_checkpoint(checkpoint_path(config))) {
          nn::load_weights(model, checkpoint_path(config));
          resumed = true;
        }

        hvd::BroadcastGlobalVariablesHook broadcast_hook(ctx, 0);
        nn::ModelCheckpoint checkpoint_hook(
            checkpoint_path(config),
            config.checkpoint_every > 0 ? config.checkpoint_every : 1);

        std::vector<nn::Callback*> callbacks{&broadcast_hook};
        if (config.checkpoint_every > 0 && ctx.rank() == 0)
          callbacks.push_back(&checkpoint_hook);

        // --- Phases 3-4: broadcast + training. ----------------------------
        const double train_begin = ctx.now();
        nn::FitOptions fit;
        fit.epochs = epochs_per_rank;
        fit.batch_size = batch;
        fit.classification = benchmark_is_classification(config.benchmark);
        fit.prefetch = config.prefetch;
        fit.timeline = timeline.get();
        fit.timeline_clock = &clock;
        fit.timeline_rank = ctx.rank();
        const nn::History history = model.fit(train, fit, callbacks);
        const double train_s = ctx.now() - train_begin;

        // --- Phase 5: prediction / evaluation on test data. ---------------
        // Every rank evaluates the full test set; the metric is averaged
        // across ranks (identical under epoch-level parallelism, and the
        // consistent aggregate under sharding).
        const double eval_begin = ctx.now();
        const auto [test_loss, test_metric] =
            model.evaluate(test.x, test.y, fit.classification);
        (void)test_loss;
        const double avg_test_metric =
            communicator.allreduce_scalar(test_metric) /
            static_cast<double>(config.ranks);
        const double eval_s = ctx.now() - eval_begin;
        ctx.record(trace::kEvaluation, "compute", eval_begin, eval_s);

        if (ctx.rank() == 0) {
          MutexLock lock(result_mutex);
          result.data_load_s = load_s;
          result.preprocess_s = pre_s;
          result.broadcast_negotiate_s = broadcast_hook.negotiate_seconds();
          result.train_s = train_s;
          result.evaluate_s = eval_s;
          result.total_s = ctx.now();
          result.epochs_rank0 = epochs_per_rank;
          result.final_accuracy = history.final_accuracy();
          result.final_loss = history.final_loss();
          result.test_accuracy = static_cast<float>(avg_test_metric);
          result.history = history;
          result.load_stats = load_stats;
          result.resumed_from_checkpoint = resumed;
          result.checkpoints_written = checkpoint_hook.saves();
        }
      },
      world_options);

  result.timeline = timeline;
  return result;
}

}  // namespace candle
