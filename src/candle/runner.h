// Real-mode parallel benchmark runner.
//
// Executes the paper's full control flow (Fig 2/3) with genuine work: rank
// threads each parse a real CSV with the selected loader, preprocess,
// broadcast initial weights from rank 0, train with the Horovod
// DistributedOptimizer (ring allreduce per batch step), and evaluate on the
// test set. This is the small-scale ground truth that the simulator
// extrapolates; tests assert the two agree on the phase structure.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "candle/models.h"
#include "candle/scaling.h"
#include "comm/communicator.h"
#include "sim/run_sim.h"
#include "hvd/fusion.h"
#include "io/csv_reader.h"
#include "nn/model.h"
#include "trace/timeline.h"

namespace candle {

/// Configuration of one real-mode run.
struct RealRunConfig {
  BenchmarkId benchmark = BenchmarkId::kNT3;
  std::size_t ranks = 2;
  std::size_t total_epochs = 8;     // split by comp_epochs under strong scaling
  bool weak_scaling = false;        // true: every rank runs total_epochs

  // Parallelism level (paper Fig 3 / §2.3.1): epoch-level replicates the
  // full dataset on every rank (the paper's P1 setup); batch-step-level
  // shards each epoch's samples across ranks (rank r takes rows r, r+P,
  // ...), so steps/epoch divide by the rank count.
  sim::ParallelLevel level = sim::ParallelLevel::kEpoch;
  std::size_t batch = 0;            // 0 -> benchmark default
  BatchScaling batch_scaling = BatchScaling::kConstant;
  io::LoaderKind loader = io::LoaderKind::kChunked;

  // Input pipeline (paper §4 data-loading improvements):
  // cached_loads reads the CSVs through the mmap-able binary frame cache
  // (first run parses and publishes the cache; later runs map it). Under
  // batch-step sharding each rank then loads only rows r, r+P, ... of the
  // cache — ~1/P of the payload bytes per rank — instead of parsing the
  // full file and gathering its shard in memory.
  bool cached_loads = false;
  // prefetch stages each rank's batches on a background producer thread
  // (double-buffered; bit-identical to the synchronous path — see
  // nn/batch_pipeline.h).
  bool prefetch = false;
  double scale = 0.002;             // dataset scale (see scaled_geometry)
  std::string workdir = "/tmp";     // where the synthetic CSVs are written
  bool scale_lr = true;             // linear lr scaling (§2.3.2)
  bool record_timeline = false;
  // fusion.overlap = true reduces gradient buckets on a per-rank comm
  // thread during backward (PyTorch-DDP/Horovod-style overlap) instead of
  // a synchronous sweep after it; results are bit-identical either way.
  // fusion.wire_dtype selects the on-wire gradient dtype (fp32 default;
  // fp16/bf16 halve and int8 quarters the collective payload with fp32
  // master accumulation — see comm/wire_codec.h for the error bounds).
  // fusion.error_feedback adds per-bucket residual compression (pair it
  // with int8; see hvd/fusion.h).
  hvd::FusionOptions fusion;

  // Collective topology/algorithm (quickstart --allreduce-algo /
  // --ranks-per-node): kHierarchical reduces intra-node first and rings
  // only the node leaders, matching Summit's NVLink-within/IB-between
  // layout; ranks_per_node controls how ranks map onto modeled nodes.
  comm::AllreduceAlgo allreduce_algo = comm::AllreduceAlgo::kRing;
  std::size_t ranks_per_node = 6;   // Summit node: 6 V100s (Fig 5b)

  // On-wire dtype of the hierarchical algorithm's intra-node legs
  // (quickstart --local-wire-dtype): compresses the NVLink-tier member
  // exchanges independently of the per-bucket inter-node dtype above.
  // Ignored unless allreduce_algo is kHierarchical.
  comm::WireDtype local_wire_dtype = comm::WireDtype::kFp32;
  std::uint64_t seed = 7;

  // Per-layer tensor parallelism (quickstart --layer-parallelism, see
  // nn/parallelism.h): kData replicates every layer; kChannel shards every
  // Dense/Conv1D output channel-wise across ranks; kAuto shards exactly
  // the layers whose weight-gradient allreduce outweighs the activation
  // exchange. Channel/auto require epoch-level parallelism (all ranks step
  // identical batches from an identical shuffle stream — the runner uses a
  // uniform seed) and are incompatible with checkpoint/resume (weights are
  // rank-sharded).
  nn::ParallelismMode layer_parallelism = nn::ParallelismMode::kData;

  // Checkpoint/restart (the paper's §7 fault-tolerance future work):
  // rank 0 saves weights every `checkpoint_every` epochs (0 disables);
  // with `resume`, rank 0 loads the checkpoint before training and the
  // initial broadcast distributes the restored weights to all ranks.
  std::size_t checkpoint_every = 0;
  bool resume = false;
};

/// Measured results (rank-0 view; ranks are symmetric).
struct RealRunResult {
  double data_load_s = 0.0;         // rank 0's CSV parse time
  double preprocess_s = 0.0;
  double broadcast_negotiate_s = 0.0;  // straggler wait at initial broadcast
  double train_s = 0.0;
  double evaluate_s = 0.0;
  double total_s = 0.0;
  std::size_t epochs_rank0 = 0;
  float final_accuracy = 0.0f;      // train metric (accuracy or R²)
  float test_accuracy = 0.0f;
  float final_loss = 0.0f;
  nn::History history;              // rank 0's epochs
  io::CsvReadStats load_stats;      // rank 0's loader stats
  std::vector<comm::CommStats> comm_stats;  // per rank
  std::shared_ptr<trace::Timeline> timeline;
  bool resumed_from_checkpoint = false;
  std::size_t checkpoints_written = 0;
};

/// Path of the run's checkpoint file under config.workdir.
std::string checkpoint_path(const RealRunConfig& config);

/// Writes the run's synthetic train/test CSVs (train.csv/test.csv under
/// `workdir`, labeled layout for classifiers) and returns their paths.
/// Deterministic in (benchmark, scale, seed).
std::pair<std::string, std::string> prepare_benchmark_csvs(
    const RealRunConfig& config);

/// Runs the parallel benchmark end to end. Throws on invalid configs
/// (e.g. epochs-per-rank of zero under strong scaling).
RealRunResult run_real(const RealRunConfig& config);

}  // namespace candle
