#include "candle/scaling.h"

#include <cmath>

#include "common/error.h"

namespace candle {

std::size_t comp_epochs(std::size_t total_epochs, std::size_t myrank,
                        std::size_t nprocs) {
  require(nprocs > 0, "comp_epochs: nprocs must be > 0");
  require(myrank < nprocs, "comp_epochs: myrank out of range");
  const std::size_t j = total_epochs / nprocs;
  const std::size_t k = total_epochs % nprocs;
  return myrank < nprocs - 1 ? j : j + k;
}

std::size_t comp_epochs_balanced(std::size_t total_epochs,
                                 std::size_t nprocs) {
  require(nprocs > 0, "comp_epochs_balanced: nprocs must be > 0");
  return total_epochs / nprocs;
}

const char* batch_scaling_name(BatchScaling s) {
  switch (s) {
    case BatchScaling::kConstant: return "constant";
    case BatchScaling::kLinear: return "linear";
    case BatchScaling::kSqrt: return "square root";
    case BatchScaling::kCbrt: return "cubic root";
  }
  return "?";
}

std::size_t scaled_batch(std::size_t base_batch, std::size_t gpus,
                         BatchScaling strategy) {
  require(base_batch > 0 && gpus > 0, "scaled_batch: args must be > 0");
  const double g = static_cast<double>(gpus);
  const double b = static_cast<double>(base_batch);
  switch (strategy) {
    case BatchScaling::kConstant: return base_batch;
    case BatchScaling::kLinear: return base_batch * gpus;
    case BatchScaling::kSqrt:
      return static_cast<std::size_t>(b * std::sqrt(g));
    case BatchScaling::kCbrt:
      return static_cast<std::size_t>(b * std::cbrt(g));
  }
  throw InvalidArgument("scaled_batch: bad strategy");
}

double scaled_learning_rate(double base_lr, std::size_t nprocs) {
  require(base_lr > 0.0, "scaled_learning_rate: lr must be > 0");
  require(nprocs > 0, "scaled_learning_rate: nprocs must be > 0");
  return base_lr * static_cast<double>(nprocs);
}

}  // namespace candle
