// Scaling strategies from the paper's methodology (§2.3.1, Fig 4).
#pragma once

#include <cstddef>

namespace candle {

/// The paper's comp_epochs(): splits `total_epochs` across `nprocs` ranks;
/// every rank gets floor(n/p) epochs and the last rank also takes the
/// remainder. (Transcribed from the Python in §2.3.2.)
std::size_t comp_epochs(std::size_t total_epochs, std::size_t myrank,
                        std::size_t nprocs);

/// Balanced variant: "For load balancing, we ensure that the number of
/// epochs is the same for each GPU" — floor(n/p) everywhere, dropping the
/// remainder. Used by the experiments (all ranks run E/P epochs).
std::size_t comp_epochs_balanced(std::size_t total_epochs,
                                 std::size_t nprocs);

/// Batch-size scaling strategies (Fig 4b). kConstant keeps the default
/// (NT3/P1B1/P1B2, small sample counts); the others scale with GPU count
/// (P1B3, 900,100 samples).
enum class BatchScaling { kConstant, kLinear, kSqrt, kCbrt };

const char* batch_scaling_name(BatchScaling s);

/// batch for `gpus` workers: linear = base*g; sqrt = int(base*g^1/2);
/// cbrt = int(base*g^1/3); constant = base.
std::size_t scaled_batch(std::size_t base_batch, std::size_t gpus,
                         BatchScaling strategy);

/// Linear learning-rate scaling: lr * nprocs (§2.3.2, "Scale the learning
/// rate by the number of workers").
double scaled_learning_rate(double base_lr, std::size_t nprocs);

}  // namespace candle
