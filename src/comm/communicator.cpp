#include "comm/communicator.h"

#include <cstring>
#include <exception>
#include <thread>

#include "common/error.h"

namespace candle::comm {

std::size_t Communicator::size() const { return world_->size(); }

std::size_t Communicator::local_rank() const {
  return rank_ % world_->options().ranks_per_node;
}

std::size_t Communicator::node() const {
  return rank_ / world_->options().ranks_per_node;
}

void Communicator::barrier() {
  ++stats_.barrier_calls;
  world_->do_barrier();
}

void Communicator::allreduce_sum(std::span<float> data) {
  ++stats_.allreduce_calls;
  world_->allreduce(*this, data, /*average=*/false);
}

void Communicator::allreduce_average(std::span<float> data) {
  ++stats_.allreduce_calls;
  world_->allreduce(*this, data, /*average=*/true);
}

void Communicator::broadcast(std::span<float> data, std::size_t root) {
  require(root < size(), "broadcast: root out of range");
  ++stats_.broadcast_calls;
  world_->do_broadcast(*this, data, root);
}

void Communicator::reduce_sum_to(std::span<float> data, std::size_t root) {
  require(root < size(), "reduce_sum_to: root out of range");
  ++stats_.reduce_calls;
  world_->do_reduce_to(*this, data, root);
}

void Communicator::allgather(std::span<const float> contribution,
                             std::vector<float>& gathered) {
  ++stats_.allgather_calls;
  world_->do_allgather(*this, contribution, gathered);
}

double Communicator::allreduce_scalar(double value) {
  float v = static_cast<float>(value);
  allreduce_sum(std::span<float>(&v, 1));
  return static_cast<double>(v);
}

World::World(std::size_t size, WorldOptions options)
    : size_(size),
      options_(options),
      barrier_(static_cast<std::ptrdiff_t>(size)),
      bufs_(size, nullptr),
      const_bufs_(size, nullptr),
      counts_(size, 0),
      seqs_(size, 0),
      ops_(size, nullptr) {
  require(size > 0, "World: size must be > 0");
  require(options.ranks_per_node > 0, "World: ranks_per_node must be > 0");
}

World::~World() = default;

void World::do_barrier() { barrier_.arrive_and_wait(); }

void World::register_buffer(std::size_t rank, float* data, std::size_t count,
                            std::uint64_t seq, const char* op) {
  MutexLock lock(reg_mutex_);
  bufs_[rank] = data;
  counts_[rank] = count;
  seqs_[rank] = seq;
  ops_[rank] = op;
}

void World::register_const_buffer(std::size_t rank, const float* data,
                                  std::size_t count, std::uint64_t seq,
                                  const char* op) {
  MutexLock lock(reg_mutex_);
  const_bufs_[rank] = data;
  counts_[rank] = count;
  seqs_[rank] = seq;
  ops_[rank] = op;
}

float* World::peer_buffer(std::size_t rank) const {
  MutexLock lock(reg_mutex_);
  return bufs_[rank];
}

const float* World::peer_const_buffer(std::size_t rank) const {
  MutexLock lock(reg_mutex_);
  return const_bufs_[rank];
}

std::size_t World::peer_count(std::size_t rank) const {
  MutexLock lock(reg_mutex_);
  return counts_[rank];
}

void World::check_rendezvous(std::size_t count, std::uint64_t seq,
                             const char* op) const {
  MutexLock lock(reg_mutex_);
  for (std::size_t r = 0; r < size_; ++r) {
    if (seqs_[r] != seq || ops_[r] == nullptr ||
        std::strcmp(ops_[r], op) != 0)
      throw CommError(std::string(op) +
                      ": ranks issued different collective sequences "
                      "(rank registered " +
                      (ops_[r] != nullptr ? ops_[r] : "<none>") + " #" +
                      std::to_string(seqs_[r]) + ", expected " + op + " #" +
                      std::to_string(seq) + ")");
    if (counts_[r] != count)
      throw CommError(std::string(op) +
                      ": ranks passed different element counts");
  }
}

void World::allreduce(Communicator& self, std::span<float> data,
                      bool average) {
  const std::uint64_t seq = ++self.seq_;
  register_buffer(self.rank_, data.data(), data.size(), seq, "allreduce");
  do_barrier();
  check_rendezvous(data.size(), seq, "allreduce");
  if (size_ > 1) {
    switch (options_.allreduce_algo) {
      case AllreduceAlgo::kRing: allreduce_ring(self, data); break;
      case AllreduceAlgo::kNaive: allreduce_naive(self, data); break;
      case AllreduceAlgo::kHierarchical:
        allreduce_hierarchical(self, data);
        break;
    }
  }
  if (average && size_ > 1) {
    const float inv = 1.0f / static_cast<float>(size_);
    for (float& v : data) v *= inv;
  }
  do_barrier();
}

void World::allreduce_ring(Communicator& self, std::span<float> data) {
  const std::size_t P = size_;
  const std::size_t r = self.rank_;
  const std::size_t n = data.size();

  // Segment boundaries: segment g covers [off(g), off(g+1)).
  auto off = [&](std::size_t g) { return g * n / P; };
  auto seg = [&](std::size_t g) {
    return std::pair<std::size_t, std::size_t>{off(g), off(g + 1)};
  };
  auto mod = [&](std::size_t a) { return a % P; };

  // Scatter-reduce: after step s, this rank's segment (r-1-s mod P) holds
  // the partial sum of s+2 contributions. Between barriers each rank writes
  // only its own buffer, and reads a neighbor segment the neighbor is not
  // writing in the same step.
  for (std::size_t s = 0; s + 1 < P; ++s) {
    const std::size_t recv_seg = mod(r + 2 * P - 1 - s);
    const auto [b, e] = seg(recv_seg);
    const float* src = peer_buffer(mod(r + P - 1));
    for (std::size_t i = b; i < e; ++i) data[i] += src[i];
    self.stats_.bytes_sent += (e - b) * sizeof(float);
    do_barrier();
  }

  // Allgather: step s copies segment (r - s mod P) from the predecessor,
  // which completed it in the previous step (or in scatter-reduce for s=0).
  for (std::size_t s = 0; s + 1 < P; ++s) {
    const std::size_t copy_seg = mod(r + 2 * P - s);
    const auto [b, e] = seg(copy_seg);
    const float* src = peer_buffer(mod(r + P - 1));
    if (e > b)
      std::memcpy(data.data() + b, src + b, (e - b) * sizeof(float));
    self.stats_.bytes_sent += (e - b) * sizeof(float);
    do_barrier();
  }
}

void World::allreduce_naive(Communicator& self, std::span<float> data) {
  // Rank 0 accumulates everyone, then everyone copies rank 0.
  if (self.rank_ == 0) {
    for (std::size_t peer = 1; peer < size_; ++peer) {
      const float* src = peer_buffer(peer);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += src[i];
      self.stats_.bytes_sent += data.size() * sizeof(float);
    }
  }
  do_barrier();
  if (self.rank_ != 0 && !data.empty()) {
    std::memcpy(data.data(), peer_buffer(0), data.size() * sizeof(float));
    self.stats_.bytes_sent += data.size() * sizeof(float);
  }
  do_barrier();
}

void World::allreduce_hierarchical(Communicator& self,
                                   std::span<float> data) {
  // Two-level reduction matching Summit's topology: NVLink within a node,
  // InfiniBand between node leaders (what NCCL does for multi-node jobs).
  const std::size_t rpn = options_.ranks_per_node;
  const std::size_t rank = self.rank_;
  const std::size_t node = rank / rpn;
  const std::size_t local = rank % rpn;
  const std::size_t leader = node * rpn;
  const std::size_t nnodes = (size_ + rpn - 1) / rpn;
  const std::size_t node_end = std::min(size_, leader + rpn);

  // Phase 1: intra-node reduce onto the node leader.
  if (local == 0) {
    for (std::size_t m = leader + 1; m < node_end; ++m) {
      const float* src = peer_buffer(m);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += src[i];
      self.stats_.bytes_sent += data.size() * sizeof(float);
    }
  }
  do_barrier();

  // Phase 2: ring over the node leaders. Every rank participates in the
  // step barriers; only leaders move data. Segment arithmetic is the same
  // ring as allreduce_ring with P = nnodes and my index = node.
  if (nnodes > 1) {
    const std::size_t P = nnodes;
    const std::size_t n = data.size();
    auto off = [&](std::size_t g) { return g * n / P; };
    const std::size_t pred_leader = ((node + P - 1) % P) * rpn;
    for (std::size_t s = 0; s + 1 < P; ++s) {
      if (local == 0) {
        const std::size_t recv_seg = (node + 2 * P - 1 - s) % P;
        const std::size_t b = off(recv_seg), e = off(recv_seg + 1);
        const float* src = peer_buffer(pred_leader);
        for (std::size_t i = b; i < e; ++i) data[i] += src[i];
        self.stats_.bytes_sent += (e - b) * sizeof(float);
      }
      do_barrier();
    }
    for (std::size_t s = 0; s + 1 < P; ++s) {
      if (local == 0) {
        const std::size_t copy_seg = (node + 2 * P - s) % P;
        const std::size_t b = off(copy_seg), e = off(copy_seg + 1);
        const float* src = peer_buffer(pred_leader);
        if (e > b)
          std::memcpy(data.data() + b, src + b, (e - b) * sizeof(float));
        self.stats_.bytes_sent += (e - b) * sizeof(float);
      }
      do_barrier();
    }
  }

  // Phase 3: intra-node broadcast from the leader.
  if (local != 0 && !data.empty()) {
    std::memcpy(data.data(), peer_buffer(leader), data.size() * sizeof(float));
    self.stats_.bytes_sent += data.size() * sizeof(float);
  }
  do_barrier();
}

void World::do_broadcast(Communicator& self, std::span<float> data,
                         std::size_t root) {
  const std::uint64_t seq = ++self.seq_;
  register_buffer(self.rank_, data.data(), data.size(), seq, "broadcast");
  do_barrier();
  check_rendezvous(data.size(), seq, "broadcast");
  const std::size_t P = size_;
  const std::size_t rel = (self.rank_ + P - root % P) % P;
  // Binomial tree: in round k, ranks [2^k, 2^(k+1)) (relative to root) pull
  // from the peer 2^k below them.
  for (std::size_t span = 1; span < P; span <<= 1) {
    if (rel >= span && rel < 2 * span && !data.empty()) {
      const std::size_t src_rank = (rel - span + root) % P;
      std::memcpy(data.data(), peer_buffer(src_rank),
                  data.size() * sizeof(float));
      self.stats_.bytes_sent += data.size() * sizeof(float);
    }
    do_barrier();
  }
  do_barrier();
}

void World::do_reduce_to(Communicator& self, std::span<float> data,
                         std::size_t root) {
  const std::uint64_t seq = ++self.seq_;
  register_buffer(self.rank_, data.data(), data.size(), seq, "reduce_sum_to");
  do_barrier();
  check_rendezvous(data.size(), seq, "reduce_sum_to");
  if (self.rank_ == root) {
    for (std::size_t peer = 0; peer < size_; ++peer) {
      if (peer == root) continue;
      const float* src = peer_buffer(peer);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += src[i];
      self.stats_.bytes_sent += data.size() * sizeof(float);
    }
  }
  do_barrier();
}

void World::do_allgather(Communicator& self,
                         std::span<const float> contribution,
                         std::vector<float>& gathered) {
  const std::uint64_t seq = ++self.seq_;
  register_const_buffer(self.rank_, contribution.data(), contribution.size(),
                        seq, "allgather");
  do_barrier();
  check_rendezvous(contribution.size(), seq, "allgather");
  gathered.resize(size_ * contribution.size());
  for (std::size_t peer = 0; peer < size_; ++peer) {
    if (peer_count(peer) == 0) continue;
    std::memcpy(gathered.data() + peer * contribution.size(),
                peer_const_buffer(peer), contribution.size() * sizeof(float));
    if (peer != self.rank_)
      self.stats_.bytes_sent += contribution.size() * sizeof(float);
  }
  do_barrier();
}

std::vector<CommStats> World::run(
    std::size_t size, const std::function<void(Communicator&)>& body,
    WorldOptions options) {
  World world(size, options);
  std::vector<std::exception_ptr> errors(size);
  std::vector<CommStats> stats(size);
  std::vector<std::thread> threads;
  threads.reserve(size);
  for (std::size_t r = 0; r < size; ++r) {
    threads.emplace_back([&world, &body, &errors, &stats, r] {
      Communicator comm(world, r);
      try {
        body(comm);
      } catch (...) {
        errors[r] = std::current_exception();
        // Leave the barrier group so surviving ranks cannot deadlock
        // waiting for this rank (MPI would abort the whole job here).
        world.barrier_.arrive_and_drop();
      }
      stats[r] = comm.stats();
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& err : errors)
    if (err) std::rethrow_exception(err);
  return stats;
}

}  // namespace candle::comm
