#include "comm/communicator.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <string>
#include <thread>

#include "common/error.h"

namespace candle::comm {

namespace {

// Dtype-generic operations on range [b, e) of a compressed wire image over
// `n` total elements. For the 16-bit dtypes the range is simply words
// [b, e); for int8 the payload and scale planes are addressed with
// pre-offset pointers, so the quantization chunk grid is always relative to
// the range start and disjoint ring segments own disjoint scale slots
// (wire_codec.h). Every collective therefore encodes int8 per segment —
// never as one whole-buffer range — so encoder and decoder agree on the
// grid at every hop.

void encode_range(WireDtype wire, const float* data, std::uint16_t* image,
                  std::size_t n, std::size_t b, std::size_t e) {
  if (e <= b) return;
  if (wire == WireDtype::kInt8)
    wire::encode_int8(data + b, wire::int8_payload(image, n) + b,
                      wire::int8_scales(image) + b, e - b);
  else
    wire::encode(wire, data + b, image + b, e - b);
}

void decode_range(WireDtype wire, const std::uint16_t* image, float* data,
                  std::size_t n, std::size_t b, std::size_t e) {
  if (e <= b) return;
  if (wire == WireDtype::kInt8)
    wire::decode_int8(wire::int8_payload(image, n) + b,
                      wire::int8_scales(image) + b, data + b, e - b);
  else
    wire::decode(wire, image + b, data + b, e - b);
}

void decode_add_range(WireDtype wire, const std::uint16_t* image, float* data,
                      std::size_t n, std::size_t b, std::size_t e) {
  if (e <= b) return;
  if (wire == WireDtype::kInt8)
    wire::decode_add_int8(wire::int8_payload(image, n) + b,
                          wire::int8_scales(image) + b, data + b, e - b);
  else
    wire::decode_add(wire, image + b, data + b, e - b);
}

// Propagates range [b, e) of a peer's wire image into ours (ring allgather
// hops): the payload words/bytes plus, for int8, the range's scale slots.
void copy_range(WireDtype wire, std::uint16_t* dst, const std::uint16_t* src,
                std::size_t n, std::size_t b, std::size_t e) {
  if (e <= b) return;
  if (wire == WireDtype::kInt8) {
    std::memcpy(wire::int8_payload(dst, n) + b, wire::int8_payload(src, n) + b,
                e - b);
    float* dst_scales = wire::int8_scales(dst);
    const float* src_scales = wire::int8_scales(src);
    for (std::size_t s = b; s < e; s += kInt8ChunkElems)
      dst_scales[s] = src_scales[s];
  } else {
    std::memcpy(dst + b, src + b, (e - b) * sizeof(std::uint16_t));
  }
}

}  // namespace

const char* allreduce_algo_name(AllreduceAlgo a) {
  switch (a) {
    case AllreduceAlgo::kRing: return "ring";
    case AllreduceAlgo::kNaive: return "naive";
    case AllreduceAlgo::kHierarchical: return "hierarchical";
  }
  return "?";
}

AllreduceAlgo parse_allreduce_algo(const char* name) {
  const std::string s = name == nullptr ? "" : name;
  if (s == "ring") return AllreduceAlgo::kRing;
  if (s == "naive") return AllreduceAlgo::kNaive;
  if (s == "hierarchical") return AllreduceAlgo::kHierarchical;
  throw InvalidArgument("parse_allreduce_algo: unknown algorithm '" + s +
                        "' (expected ring | naive | hierarchical)");
}

std::size_t Communicator::size() const { return world_->size(); }

std::size_t Communicator::local_rank() const {
  return rank_ % world_->options().ranks_per_node;
}

std::size_t Communicator::node() const {
  return rank_ / world_->options().ranks_per_node;
}

const WorldOptions& Communicator::world_options() const {
  return world_->options();
}

void Communicator::barrier() {
  ++stats_.barrier_calls;
  world_->do_barrier();
}

void Communicator::allreduce_sum(std::span<float> data) {
  allreduce_sum(data, world_->options().wire_dtype);
}

void Communicator::allreduce_sum(std::span<float> data, WireDtype wire) {
  ++stats_.allreduce_calls;
  world_->allreduce(*this, data, /*average=*/false, wire);
}

void Communicator::allreduce_average(std::span<float> data) {
  allreduce_average(data, world_->options().wire_dtype);
}

void Communicator::allreduce_average(std::span<float> data, WireDtype wire) {
  ++stats_.allreduce_calls;
  world_->allreduce(*this, data, /*average=*/true, wire);
}

void Communicator::broadcast(std::span<float> data, std::size_t root) {
  require(root < size(), "broadcast: root out of range");
  ++stats_.broadcast_calls;
  world_->do_broadcast(*this, data, root);
}

void Communicator::reduce_sum_to(std::span<float> data, std::size_t root) {
  require(root < size(), "reduce_sum_to: root out of range");
  ++stats_.reduce_calls;
  world_->do_reduce_to(*this, data, root);
}

void Communicator::allgather(std::span<const float> contribution,
                             std::vector<float>& gathered) {
  ++stats_.allgather_calls;
  world_->do_allgather(*this, contribution, gathered);
}

void Communicator::reduce_scatter(std::span<float> data) {
  reduce_scatter(data, world_->options().wire_dtype);
}

void Communicator::reduce_scatter(std::span<float> data, WireDtype wire,
                                  std::size_t granularity) {
  ++stats_.reduce_scatter_calls;
  world_->do_reduce_scatter(*this, data, wire, granularity);
}

void Communicator::allgather(std::span<float> data) {
  allgather(data, world_->options().wire_dtype);
}

void Communicator::allgather(std::span<float> data, WireDtype wire,
                             std::size_t granularity) {
  ++stats_.allgather_calls;
  world_->do_allgather_inplace(*this, data, wire, granularity);
}

double Communicator::allreduce_scalar(double value) {
  float v = static_cast<float>(value);
  // Always fp32 on the wire: scalar metrics (loss, accuracy) must not
  // quantize even when the world's default gradient dtype is compressed.
  allreduce_sum(std::span<float>(&v, 1), WireDtype::kFp32);
  return static_cast<double>(v);
}

World::World(std::size_t size, WorldOptions options)
    : size_(size),
      options_(options),
      barrier_(static_cast<std::ptrdiff_t>(size)),
      bufs_(size, nullptr),
      const_bufs_(size, nullptr),
      wire_bufs_(size, nullptr),
      counts_(size, 0),
      seqs_(size, 0),
      ops_(size, nullptr),
      dtypes_(size, WireDtype::kFp32),
      grans_(size, 1) {
  require(size > 0, "World: size must be > 0");
  require(options.ranks_per_node > 0, "World: ranks_per_node must be > 0");
}

World::~World() = default;

void World::do_barrier() { barrier_.arrive_and_wait(); }

void World::register_buffer(std::size_t rank, float* data, std::size_t count,
                            std::uint64_t seq, const char* op, WireDtype wire,
                            std::uint16_t* wire_buf,
                            std::size_t granularity) {
  MutexLock lock(reg_mutex_);
  bufs_[rank] = data;
  wire_bufs_[rank] = wire_buf;
  counts_[rank] = count;
  seqs_[rank] = seq;
  ops_[rank] = op;
  dtypes_[rank] = wire;
  grans_[rank] = granularity;
}

void World::register_const_buffer(std::size_t rank, const float* data,
                                  std::size_t count, std::uint64_t seq,
                                  const char* op) {
  MutexLock lock(reg_mutex_);
  const_bufs_[rank] = data;
  wire_bufs_[rank] = nullptr;
  counts_[rank] = count;
  seqs_[rank] = seq;
  ops_[rank] = op;
  dtypes_[rank] = WireDtype::kFp32;
  grans_[rank] = 1;
}

float* World::peer_buffer(std::size_t rank) const {
  MutexLock lock(reg_mutex_);
  return bufs_[rank];
}

const float* World::peer_const_buffer(std::size_t rank) const {
  MutexLock lock(reg_mutex_);
  return const_bufs_[rank];
}

std::size_t World::peer_count(std::size_t rank) const {
  MutexLock lock(reg_mutex_);
  return counts_[rank];
}

std::uint16_t* World::peer_wire_buffer(std::size_t rank) const {
  MutexLock lock(reg_mutex_);
  return wire_bufs_[rank];
}

void World::check_rendezvous(std::size_t count, std::uint64_t seq,
                             const char* op, WireDtype wire,
                             std::size_t granularity) const {
  MutexLock lock(reg_mutex_);
  for (std::size_t r = 0; r < size_; ++r) {
    if (seqs_[r] != seq || ops_[r] == nullptr ||
        std::strcmp(ops_[r], op) != 0)
      throw CommError(std::string(op) +
                      ": ranks issued different collective sequences "
                      "(rank registered " +
                      (ops_[r] != nullptr ? ops_[r] : "<none>") + " #" +
                      std::to_string(seqs_[r]) + ", expected " + op + " #" +
                      std::to_string(seq) + ")");
    if (counts_[r] != count)
      throw CommError(std::string(op) +
                      ": ranks passed different element counts");
    if (dtypes_[r] != wire)
      throw CommError(std::string(op) +
                      ": ranks requested different wire dtypes (rank " +
                      std::to_string(r) + " registered " +
                      wire_dtype_name(dtypes_[r]) + ", expected " +
                      wire_dtype_name(wire) + ")");
    if (grans_[r] != granularity)
      throw CommError(std::string(op) +
                      ": ranks passed different segment granularities "
                      "(rank " + std::to_string(r) + " registered " +
                      std::to_string(grans_[r]) + ", expected " +
                      std::to_string(granularity) + ")");
  }
}

void World::allreduce(Communicator& self, std::span<float> data, bool average,
                      WireDtype wire) {
  const std::uint64_t seq = ++self.seq_;
  const std::size_t n = data.size();
  // A single-rank reduction moves no bytes; keep it exact regardless of the
  // requested dtype (all ranks take this branch identically).
  const bool compressed = wire != WireDtype::kFp32 && size_ > 1;
  if (!compressed) wire = WireDtype::kFp32;
  const bool hier = options_.allreduce_algo == AllreduceAlgo::kHierarchical;
  // The hierarchical local-leg dtype is world-level configuration, so every
  // rank derives the same value — no rendezvous cross-check needed.
  const WireDtype local_wire =
      (hier && size_ > 1) ? options_.local_wire_dtype : WireDtype::kFp32;
  const bool local_compressed = local_wire != WireDtype::kFp32;
  if (compressed || local_compressed) {
    self.wire_scratch_.resize(
        std::max(wire::wire_image_scratch_elems(wire, n),
                 wire::wire_image_scratch_elems(local_wire, n)));
    std::uint16_t* mine = self.wire_scratch_.data();
    // Ring/naive peers read the wire image right after the rendezvous
    // barrier; the hierarchical leader ring publishes it after the
    // intra-node reduce, but members publish their contribution here when
    // the local leg compresses. The ring encodes per segment so re-encoded
    // hops keep the int8 chunk grid (identical bytes for 16-bit dtypes).
    if (compressed && options_.allreduce_algo == AllreduceAlgo::kRing) {
      for (std::size_t g = 0; g < size_; ++g)
        encode_range(wire, data.data(), mine, n, g * n / size_,
                     (g + 1) * n / size_);
    } else if (compressed && options_.allreduce_algo == AllreduceAlgo::kNaive) {
      encode_range(wire, data.data(), mine, n, 0, n);
    } else if (local_compressed &&
               self.rank_ % options_.ranks_per_node != 0) {
      encode_range(local_wire, data.data(), mine, n, 0, n);
    }
  }
  register_buffer(
      self.rank_, data.data(), n, seq, "allreduce", wire,
      (compressed || local_compressed) ? self.wire_scratch_.data() : nullptr);
  do_barrier();
  check_rendezvous(n, seq, "allreduce", wire);
  const std::size_t sent_before = self.stats_.bytes_sent;
  if (size_ > 1) {
    switch (options_.allreduce_algo) {
      case AllreduceAlgo::kRing:
        if (compressed)
          allreduce_ring_compressed(self, data, wire);
        else
          allreduce_ring(self, data);
        break;
      case AllreduceAlgo::kNaive:
        if (compressed)
          allreduce_naive_compressed(self, data, wire);
        else
          allreduce_naive(self, data);
        break;
      case AllreduceAlgo::kHierarchical:
        allreduce_hierarchical(self, data, wire, local_wire);
        break;
    }
  }
  self.stats_.allreduce_wire_bytes[allreduce_algo_index(
      options_.allreduce_algo)][wire_dtype_index(wire)] +=
      self.stats_.bytes_sent - sent_before;
  if (average && size_ > 1) {
    // Runs after the reduction as the same fp32 op on bit-identical inputs
    // on every rank, so averaging preserves rank-invariance for any dtype.
    const float inv = 1.0f / static_cast<float>(size_);
    for (float& v : data) v *= inv;
  }
  do_barrier();
}

void World::allreduce_ring(Communicator& self, std::span<float> data) {
  const std::size_t P = size_;
  const std::size_t r = self.rank_;
  const std::size_t n = data.size();

  // Segment boundaries: segment g covers [off(g), off(g+1)).
  auto off = [&](std::size_t g) { return g * n / P; };
  auto seg = [&](std::size_t g) {
    return std::pair<std::size_t, std::size_t>{off(g), off(g + 1)};
  };
  auto mod = [&](std::size_t a) { return a % P; };

  // Scatter-reduce: after step s, this rank's segment (r-1-s mod P) holds
  // the partial sum of s+2 contributions. Between barriers each rank writes
  // only its own buffer, and reads a neighbor segment the neighbor is not
  // writing in the same step.
  for (std::size_t s = 0; s + 1 < P; ++s) {
    const std::size_t recv_seg = mod(r + 2 * P - 1 - s);
    const auto [b, e] = seg(recv_seg);
    const float* src = peer_buffer(mod(r + P - 1));
    for (std::size_t i = b; i < e; ++i) data[i] += src[i];
    self.stats_.bytes_sent += (e - b) * sizeof(float);
    do_barrier();
  }

  // Allgather: step s copies segment (r - s mod P) from the predecessor,
  // which completed it in the previous step (or in scatter-reduce for s=0).
  for (std::size_t s = 0; s + 1 < P; ++s) {
    const std::size_t copy_seg = mod(r + 2 * P - s);
    const auto [b, e] = seg(copy_seg);
    const float* src = peer_buffer(mod(r + P - 1));
    if (e > b)
      std::memcpy(data.data() + b, src + b, (e - b) * sizeof(float));
    self.stats_.bytes_sent += (e - b) * sizeof(float);
    do_barrier();
  }
}

void World::allreduce_ring_compressed(Communicator& self,
                                      std::span<float> data, WireDtype wire) {
  // Same segment/barrier schedule as allreduce_ring, with wire images in
  // place of the fp32 buffers: each hop decodes the predecessor's wire
  // segment, accumulates into this rank's fp32 buffer (the "master"), and
  // re-encodes the partial for the successor — so the running sum is
  // quantized once per hop but never accumulated in reduced precision.
  const std::size_t P = size_;
  const std::size_t r = self.rank_;
  const std::size_t n = data.size();
  std::uint16_t* mine = self.wire_scratch_.data();

  auto off = [&](std::size_t g) { return g * n / P; };
  auto mod = [&](std::size_t a) { return a % P; };

  for (std::size_t s = 0; s + 1 < P; ++s) {
    const std::size_t recv_seg = mod(r + 2 * P - 1 - s);
    const std::size_t b = off(recv_seg), e = off(recv_seg + 1);
    const std::uint16_t* src = peer_wire_buffer(mod(r + P - 1));
    if (e > b) {
      decode_add_range(wire, src, data.data(), n, b, e);
      encode_range(wire, data.data(), mine, n, b, e);
    }
    self.stats_.bytes_sent += wire_range_bytes(wire, e - b);
    do_barrier();
  }

  // This rank's fp32 master now holds a higher-precision sum for its owned
  // segment than the wire image peers will copy; round-trip it through the
  // codec so every rank ends with bit-identical fp32 results.
  {
    const std::size_t own = mod(r + 1);
    decode_range(wire, mine, data.data(), n, off(own), off(own + 1));
  }

  // Allgather: copy the predecessor's completed wire segment (propagating
  // it around the ring) and decode it into the fp32 buffer.
  for (std::size_t s = 0; s + 1 < P; ++s) {
    const std::size_t copy_seg = mod(r + 2 * P - s);
    const std::size_t b = off(copy_seg), e = off(copy_seg + 1);
    const std::uint16_t* src = peer_wire_buffer(mod(r + P - 1));
    if (e > b) {
      copy_range(wire, mine, src, n, b, e);
      decode_range(wire, mine, data.data(), n, b, e);
    }
    self.stats_.bytes_sent += wire_range_bytes(wire, e - b);
    do_barrier();
  }
}

void World::allreduce_naive(Communicator& self, std::span<float> data) {
  // Rank 0 accumulates everyone, then everyone copies rank 0.
  if (self.rank_ == 0) {
    for (std::size_t peer = 1; peer < size_; ++peer) {
      const float* src = peer_buffer(peer);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += src[i];
      self.stats_.bytes_sent += data.size() * sizeof(float);
    }
  }
  do_barrier();
  if (self.rank_ != 0 && !data.empty()) {
    std::memcpy(data.data(), peer_buffer(0), data.size() * sizeof(float));
    self.stats_.bytes_sent += data.size() * sizeof(float);
  }
  do_barrier();
}

void World::allreduce_naive_compressed(Communicator& self,
                                       std::span<float> data,
                                       WireDtype wire) {
  // Rank 0 decodes and accumulates every peer's wire image in fp32, then
  // publishes the result compressed; peers decode rank 0's image. The
  // whole buffer is one wire range (chunk grid starts at element 0 on
  // every rank).
  const std::size_t n = data.size();
  std::uint16_t* mine = self.wire_scratch_.data();
  if (self.rank_ == 0) {
    for (std::size_t peer = 1; peer < size_; ++peer) {
      decode_add_range(wire, peer_wire_buffer(peer), data.data(), n, 0, n);
      self.stats_.bytes_sent += wire_range_bytes(wire, n);
    }
    // Adopt the published wire image locally so rank 0's fp32 result
    // matches what every peer decodes.
    encode_range(wire, data.data(), mine, n, 0, n);
    decode_range(wire, mine, data.data(), n, 0, n);
  }
  do_barrier();
  if (self.rank_ != 0 && n > 0) {
    decode_range(wire, peer_wire_buffer(0), data.data(), n, 0, n);
    self.stats_.bytes_sent += wire_range_bytes(wire, n);
  }
  do_barrier();
}

void World::allreduce_hierarchical(Communicator& self, std::span<float> data,
                                   WireDtype wire, WireDtype local_wire) {
  // Two-level reduction matching Summit's topology: NVLink within a node,
  // InfiniBand between node leaders (what NCCL does for multi-node jobs).
  // `wire` compresses the inter-node leader ring (IB-class links, usually
  // the bottleneck); `local_wire` compresses the intra-node legs for
  // machines where local_bw is the limit instead. Both kFp32 reproduces
  // the exact fp32 reduction bit-identically; on a single node a
  // compressed `wire` alone degenerates to it too.
  const std::size_t rpn = options_.ranks_per_node;
  const std::size_t rank = self.rank_;
  const std::size_t node = rank / rpn;
  const std::size_t local = rank % rpn;
  const std::size_t leader = node * rpn;
  const std::size_t nnodes = (size_ + rpn - 1) / rpn;
  const std::size_t node_end = std::min(size_, leader + rpn);
  const std::size_t n = data.size();
  const bool ring_compressed = wire != WireDtype::kFp32;
  const bool local_compressed = local_wire != WireDtype::kFp32;
  std::uint16_t* mine = self.wire_scratch_.data();

  // Phase 1: intra-node reduce onto the node leader. With a compressed
  // local leg the members published whole-buffer wire images at entry
  // (World::allreduce) and the leader fuses decode+add into its fp32
  // master; otherwise the leader reads the members' fp32 buffers.
  if (local == 0) {
    for (std::size_t m = leader + 1; m < node_end; ++m) {
      if (local_compressed) {
        decode_add_range(local_wire, peer_wire_buffer(m), data.data(), n, 0,
                         n);
        self.stats_.bytes_sent += wire_range_bytes(local_wire, n);
      } else {
        const float* src = peer_buffer(m);
        for (std::size_t i = 0; i < n; ++i) data[i] += src[i];
        self.stats_.bytes_sent += n * sizeof(float);
      }
    }
  }
  do_barrier();

  // Phase 2: ring over the node leaders. Every rank participates in the
  // step barriers; only leaders move data. Segment arithmetic is the same
  // ring as allreduce_ring with P = nnodes and my index = node. When the
  // ring compresses, leaders publish their node-reduced buffer on the wire
  // first (per segment, so int8 chunk grids match the per-hop re-encodes);
  // the extra barrier makes the images visible before the first hop.
  if (nnodes > 1) {
    const std::size_t P = nnodes;
    auto off = [&](std::size_t g) { return g * n / P; };
    const std::size_t pred_leader = ((node + P - 1) % P) * rpn;
    if (ring_compressed) {
      if (local == 0)
        for (std::size_t g = 0; g < P; ++g)
          encode_range(wire, data.data(), mine, n, off(g), off(g + 1));
      do_barrier();
    }
    for (std::size_t s = 0; s + 1 < P; ++s) {
      if (local == 0) {
        const std::size_t recv_seg = (node + 2 * P - 1 - s) % P;
        const std::size_t b = off(recv_seg), e = off(recv_seg + 1);
        if (ring_compressed) {
          const std::uint16_t* src = peer_wire_buffer(pred_leader);
          if (e > b) {
            decode_add_range(wire, src, data.data(), n, b, e);
            encode_range(wire, data.data(), mine, n, b, e);
          }
          self.stats_.bytes_sent += wire_range_bytes(wire, e - b);
        } else {
          const float* src = peer_buffer(pred_leader);
          for (std::size_t i = b; i < e; ++i) data[i] += src[i];
          self.stats_.bytes_sent += (e - b) * sizeof(float);
        }
      }
      do_barrier();
    }
    if (ring_compressed && local == 0) {
      // Owner round-trip, as in allreduce_ring_compressed: leaders must
      // end bit-identical so phase 3 broadcasts identical buffers.
      const std::size_t own = (node + 1) % P;
      decode_range(wire, mine, data.data(), n, off(own), off(own + 1));
    }
    for (std::size_t s = 0; s + 1 < P; ++s) {
      if (local == 0) {
        const std::size_t copy_seg = (node + 2 * P - s) % P;
        const std::size_t b = off(copy_seg), e = off(copy_seg + 1);
        if (ring_compressed) {
          const std::uint16_t* src = peer_wire_buffer(pred_leader);
          if (e > b) {
            copy_range(wire, mine, src, n, b, e);
            decode_range(wire, mine, data.data(), n, b, e);
          }
          self.stats_.bytes_sent += wire_range_bytes(wire, e - b);
        } else {
          const float* src = peer_buffer(pred_leader);
          if (e > b)
            std::memcpy(data.data() + b, src + b, (e - b) * sizeof(float));
          self.stats_.bytes_sent += (e - b) * sizeof(float);
        }
      }
      do_barrier();
    }
  }

  // Phase 3: intra-node broadcast of the leader's result. With a
  // compressed local leg the leader re-encodes its final buffer (reusing
  // the wire image the leader ring is done with), adopts its own decode,
  // and an extra barrier publishes the image for the members — every
  // leader round-trips even on member-less nodes, so all ranks of the
  // world still end bit-identical.
  if (local_compressed) {
    if (local == 0) {
      encode_range(local_wire, data.data(), mine, n, 0, n);
      decode_range(local_wire, mine, data.data(), n, 0, n);
    }
    do_barrier();
    if (local != 0 && n > 0) {
      decode_range(local_wire, peer_wire_buffer(leader), data.data(), n, 0,
                   n);
      self.stats_.bytes_sent += wire_range_bytes(local_wire, n);
    }
    do_barrier();
  } else {
    if (local != 0 && !data.empty()) {
      std::memcpy(data.data(), peer_buffer(leader), n * sizeof(float));
      self.stats_.bytes_sent += n * sizeof(float);
    }
    do_barrier();
  }
}

void World::do_broadcast(Communicator& self, std::span<float> data,
                         std::size_t root) {
  const std::uint64_t seq = ++self.seq_;
  register_buffer(self.rank_, data.data(), data.size(), seq, "broadcast");
  do_barrier();
  check_rendezvous(data.size(), seq, "broadcast");
  const std::size_t P = size_;
  const std::size_t rel = (self.rank_ + P - root % P) % P;
  // Binomial tree: in round k, ranks [2^k, 2^(k+1)) (relative to root) pull
  // from the peer 2^k below them.
  for (std::size_t span = 1; span < P; span <<= 1) {
    if (rel >= span && rel < 2 * span && !data.empty()) {
      const std::size_t src_rank = (rel - span + root) % P;
      std::memcpy(data.data(), peer_buffer(src_rank),
                  data.size() * sizeof(float));
      self.stats_.bytes_sent += data.size() * sizeof(float);
    }
    do_barrier();
  }
  do_barrier();
}

void World::do_reduce_to(Communicator& self, std::span<float> data,
                         std::size_t root) {
  const std::uint64_t seq = ++self.seq_;
  register_buffer(self.rank_, data.data(), data.size(), seq, "reduce_sum_to");
  do_barrier();
  check_rendezvous(data.size(), seq, "reduce_sum_to");
  if (self.rank_ == root) {
    for (std::size_t peer = 0; peer < size_; ++peer) {
      if (peer == root) continue;
      const float* src = peer_buffer(peer);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += src[i];
      self.stats_.bytes_sent += data.size() * sizeof(float);
    }
  }
  do_barrier();
}

void World::do_allgather(Communicator& self,
                         std::span<const float> contribution,
                         std::vector<float>& gathered) {
  const std::uint64_t seq = ++self.seq_;
  register_const_buffer(self.rank_, contribution.data(), contribution.size(),
                        seq, "allgather");
  do_barrier();
  check_rendezvous(contribution.size(), seq, "allgather");
  gathered.resize(size_ * contribution.size());
  const std::size_t sent_before = self.stats_.bytes_sent;
  for (std::size_t peer = 0; peer < size_; ++peer) {
    if (peer_count(peer) == 0) continue;
    std::memcpy(gathered.data() + peer * contribution.size(),
                peer_const_buffer(peer), contribution.size() * sizeof(float));
    if (peer != self.rank_)
      self.stats_.bytes_sent += contribution.size() * sizeof(float);
  }
  self.stats_.allgather_wire_bytes[wire_dtype_index(WireDtype::kFp32)] +=
      self.stats_.bytes_sent - sent_before;
  do_barrier();
}

void World::do_reduce_scatter(Communicator& self, std::span<float> data,
                              WireDtype wire, std::size_t granularity) {
  const std::uint64_t seq = ++self.seq_;
  const std::size_t n = data.size();
  require(granularity > 0, "reduce_scatter: granularity must be > 0");
  require(n % granularity == 0,
          "reduce_scatter: element count must be divisible by granularity");
  const bool compressed = wire != WireDtype::kFp32 && size_ > 1;
  if (!compressed) wire = WireDtype::kFp32;
  const std::size_t units_total = n / granularity;
  auto seg_off = [&](std::size_t g) {
    return granularity * (g * units_total / size_);
  };
  if (compressed) {
    self.wire_scratch_.resize(wire::wire_image_scratch_elems(wire, n));
    // Per-segment entry encode: the per-hop re-encodes below operate on
    // single segments, so the int8 chunk grid must be segment-relative
    // from the start (identical bytes for the 16-bit dtypes).
    for (std::size_t g = 0; g < size_; ++g)
      encode_range(wire, data.data(), self.wire_scratch_.data(), n,
                   seg_off(g), seg_off(g + 1));
  }
  register_buffer(self.rank_, data.data(), n, seq, "reduce_scatter", wire,
                  compressed ? self.wire_scratch_.data() : nullptr,
                  granularity);
  do_barrier();
  check_rendezvous(n, seq, "reduce_scatter", wire, granularity);
  const std::size_t sent_before = self.stats_.bytes_sent;
  if (size_ > 1) {
    const std::size_t P = size_;
    const std::size_t r = self.rank_;
    auto off = seg_off;
    auto mod = [&](std::size_t a) { return a % P; };
    std::uint16_t* mine = compressed ? self.wire_scratch_.data() : nullptr;
    // The allreduce ring's scatter-reduce phase, shifted one position so
    // rank r finishes owning segment r: at step s each rank accumulates
    // segment (r - 2 - s mod P) from its predecessor, which produced that
    // partial at step s-1; the final step (s = P-2) lands segment r with
    // the full P-way sum.
    for (std::size_t s = 0; s + 1 < P; ++s) {
      const std::size_t recv_seg = mod(r + 2 * P - 2 - s);
      const std::size_t b = off(recv_seg), e = off(recv_seg + 1);
      if (compressed) {
        const std::uint16_t* src = peer_wire_buffer(mod(r + P - 1));
        if (e > b) {
          decode_add_range(wire, src, data.data(), n, b, e);
          // The successor reads this partial at step s+1. The last step's
          // result is this rank's owned segment — nobody reads it, so it
          // keeps the full fp32 master precision.
          if (s + 2 < P) encode_range(wire, data.data(), mine, n, b, e);
        }
      } else {
        const float* src = peer_buffer(mod(r + P - 1));
        for (std::size_t i = b; i < e; ++i) data[i] += src[i];
      }
      self.stats_.bytes_sent += wire_range_bytes(wire, e - b);
      do_barrier();
    }
  }
  self.stats_.reduce_scatter_wire_bytes[wire_dtype_index(wire)] +=
      self.stats_.bytes_sent - sent_before;
  do_barrier();
}

void World::do_allgather_inplace(Communicator& self, std::span<float> data,
                                 WireDtype wire, std::size_t granularity) {
  const std::uint64_t seq = ++self.seq_;
  const std::size_t n = data.size();
  require(granularity > 0, "allgather: granularity must be > 0");
  require(n % granularity == 0,
          "allgather: element count must be divisible by granularity");
  const bool compressed = wire != WireDtype::kFp32 && size_ > 1;
  if (!compressed) wire = WireDtype::kFp32;
  const std::size_t P = size_;
  const std::size_t r = self.rank_;
  const std::size_t units = n / granularity;
  auto off = [&](std::size_t g) { return granularity * (g * units / P); };
  auto mod = [&](std::size_t a) { return a % P; };
  if (compressed) {
    self.wire_scratch_.resize(wire::wire_image_scratch_elems(wire, n));
    // Only the owned segment needs a wire image before the first hop; the
    // rest of this rank's image fills in as segments propagate the ring.
    encode_range(wire, data.data(), self.wire_scratch_.data(), n, off(r),
                 off(r + 1));
  }
  register_buffer(self.rank_, data.data(), n, seq, "allgather", wire,
                  compressed ? self.wire_scratch_.data() : nullptr,
                  granularity);
  do_barrier();
  check_rendezvous(n, seq, "allgather", wire, granularity);
  const std::size_t sent_before = self.stats_.bytes_sent;
  if (P > 1) {
    std::uint16_t* mine = compressed ? self.wire_scratch_.data() : nullptr;
    if (compressed) {
      // Owner round-trip: peers decode this segment from the wire image,
      // so the contributing rank adopts the same quantized values and all
      // ranks end bit-identical (cf. allreduce_ring_compressed).
      decode_range(wire, mine, data.data(), n, off(r), off(r + 1));
    }
    // Ring allgather with rank r owning segment r: at step s each rank
    // copies segment (r - 1 - s mod P) from its predecessor, which
    // completed it at step s-1 (its own contribution for s = 0).
    for (std::size_t s = 0; s + 1 < P; ++s) {
      const std::size_t copy_seg = mod(r + 2 * P - 1 - s);
      const std::size_t b = off(copy_seg), e = off(copy_seg + 1);
      if (compressed) {
        const std::uint16_t* src = peer_wire_buffer(mod(r + P - 1));
        if (e > b) {
          copy_range(wire, mine, src, n, b, e);
          decode_range(wire, mine, data.data(), n, b, e);
        }
      } else {
        const float* src = peer_buffer(mod(r + P - 1));
        if (e > b)
          std::memcpy(data.data() + b, src + b, (e - b) * sizeof(float));
      }
      self.stats_.bytes_sent += wire_range_bytes(wire, e - b);
      do_barrier();
    }
  }
  self.stats_.allgather_wire_bytes[wire_dtype_index(wire)] +=
      self.stats_.bytes_sent - sent_before;
  do_barrier();
}

std::vector<CommStats> World::run(
    std::size_t size, const std::function<void(Communicator&)>& body,
    WorldOptions options) {
  World world(size, options);
  std::vector<std::exception_ptr> errors(size);
  std::vector<CommStats> stats(size);
  std::vector<std::thread> threads;
  threads.reserve(size);
  for (std::size_t r = 0; r < size; ++r) {
    threads.emplace_back([&world, &body, &errors, &stats, r] {
      Communicator comm(world, r);
      try {
        body(comm);
      } catch (...) {
        errors[r] = std::current_exception();
        // Leave the barrier group so surviving ranks cannot deadlock
        // waiting for this rank (MPI would abort the whole job here).
        world.barrier_.arrive_and_drop();
      }
      stats[r] = comm.stats();
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& err : errors)
    if (err) std::rethrow_exception(err);
  return stats;
}

}  // namespace candle::comm
