// In-process multi-rank communication runtime.
//
// This substitutes for MPI + NCCL in the paper's Horovod stack: every MPI
// rank is a thread of one process, and the collectives move real bytes
// between per-rank buffers using the same algorithms the real libraries use
// (ring allreduce as in NCCL/baidu-allreduce, binomial-tree broadcast as in
// MPI_Bcast). Collectives are synchronized with a phase barrier; the
// algorithms are lock-free between barriers because every rank writes only
// its own buffer.
//
// Usage:
//   comm::World::run(4, [](comm::Communicator& c) {
//     std::vector<float> grad = ...;
//     c.allreduce_average(grad);
//   });
#pragma once

#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_annotations.h"

namespace candle::comm {

/// Reduction algorithm selection.
enum class AllreduceAlgo {
  kRing,          // NCCL-style ring: 2(P-1)/P * N data volume per rank
  kNaive,         // gather-to-root + broadcast (reference implementation)
  kHierarchical,  // two-level: intra-node reduce, inter-node ring over node
                  // leaders, intra-node broadcast (NCCL on Summit's
                  // NVLink-within/IB-between topology)
};

/// Per-rank traffic accounting, used by tests and the fusion ablation.
struct CommStats {
  std::size_t allreduce_calls = 0;
  std::size_t broadcast_calls = 0;
  std::size_t reduce_calls = 0;
  std::size_t allgather_calls = 0;
  std::size_t barrier_calls = 0;
  std::size_t bytes_sent = 0;  // bytes this rank moved to a peer buffer
};

class World;

/// Per-rank handle; valid only inside World::run's callback, on that thread.
class Communicator {
 public:
  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] std::size_t size() const;

  /// Rank within the node, given `ranks_per_node` from the WorldOptions
  /// (Summit: 6 GPUs per node -> local_rank in 0..5, as in the paper).
  [[nodiscard]] std::size_t local_rank() const;
  [[nodiscard]] std::size_t node() const;

  /// Blocks until all ranks arrive.
  void barrier();

  /// In-place sum-reduction across all ranks; every rank ends with the sum.
  void allreduce_sum(std::span<float> data);

  /// allreduce_sum followed by division by world size (gradient averaging).
  void allreduce_average(std::span<float> data);

  /// Copies root's buffer into every rank's buffer (binomial tree).
  void broadcast(std::span<float> data, std::size_t root);

  /// Sum-reduction onto `root` only (MPI_Reduce): root ends with the sum,
  /// other ranks' buffers are unchanged. Used by the parameter-server
  /// baseline's gradient push.
  void reduce_sum_to(std::span<float> data, std::size_t root);

  /// Gathers equal-size contributions from all ranks, in rank order.
  void allgather(std::span<const float> contribution,
                 std::vector<float>& gathered);

  /// Reduces a single double (sum) — convenience for scalar metrics.
  double allreduce_scalar(double value);

  [[nodiscard]] const CommStats& stats() const { return stats_; }

  /// Number of collectives this rank has issued. The rendezvous cross-checks
  /// it (together with the op name) across ranks at registration, so a rank
  /// that skips, reorders, or interleaves collectives — e.g. an overlap
  /// scheduler letting a bucket leak across a step boundary — fails fast
  /// with CommError instead of silently reducing mismatched buffers.
  [[nodiscard]] std::uint64_t collective_seq() const { return seq_; }

 private:
  friend class World;
  Communicator(World& world, std::size_t rank)
      : world_(&world), rank_(rank) {}

  World* world_;
  std::size_t rank_;
  CommStats stats_;
  /// Bumped at the start of every collective. Per-rank collectives are
  /// serialized (one issuing thread at a time — the rank thread, or its
  /// overlap comm thread while the rank thread is quiesced), so no atomics.
  std::uint64_t seq_ = 0;
};

/// World configuration.
struct WorldOptions {
  std::size_t ranks_per_node = 6;  // Summit node: 6 V100s
  AllreduceAlgo allreduce_algo = AllreduceAlgo::kRing;
};

/// Owns the shared rendezvous state for `size` rank threads.
///
/// Thread model: the collective *payload* is synchronized by the phase
/// barrier (every rank writes only its own buffer between barriers), while
/// the rendezvous *metadata* — which buffer each rank registered and with
/// how many elements — is guarded by `reg_mutex_` and only touched through
/// the annotated helpers below, so clang -Wthread-safety proves the lock
/// discipline at compile time.
class World {
 public:
  explicit World(std::size_t size, WorldOptions options = {});
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const WorldOptions& options() const { return options_; }

  /// Spawns `size` threads, each running `body` with its Communicator.
  /// Rethrows the first exception thrown by any rank (after joining all).
  /// Returns the per-rank CommStats.
  static std::vector<CommStats> run(
      std::size_t size, const std::function<void(Communicator&)>& body,
      WorldOptions options = {});

 private:
  friend class Communicator;

  void do_barrier();
  void allreduce(Communicator& self, std::span<float> data, bool average);
  void allreduce_ring(Communicator& self, std::span<float> data);
  void allreduce_naive(Communicator& self, std::span<float> data);
  void allreduce_hierarchical(Communicator& self, std::span<float> data);
  void do_broadcast(Communicator& self, std::span<float> data,
                    std::size_t root);
  void do_reduce_to(Communicator& self, std::span<float> data,
                    std::size_t root);
  void do_allgather(Communicator& self, std::span<const float> contribution,
                    std::vector<float>& gathered);

  /// Registers `rank`'s buffer for the collective that is about to start,
  /// tagged with the rank's collective sequence number and the op name.
  /// Must be followed by a barrier before any peer reads it.
  void register_buffer(std::size_t rank, float* data, std::size_t count,
                       std::uint64_t seq, const char* op)
      CANDLE_EXCLUDES(reg_mutex_);
  void register_const_buffer(std::size_t rank, const float* data,
                             std::size_t count, std::uint64_t seq,
                             const char* op) CANDLE_EXCLUDES(reg_mutex_);

  /// Pointer `rank` registered for the current collective. The returned
  /// payload may only be dereferenced in barrier phases where `rank` is not
  /// writing the same segment.
  [[nodiscard]] float* peer_buffer(std::size_t rank) const
      CANDLE_EXCLUDES(reg_mutex_);
  [[nodiscard]] const float* peer_const_buffer(std::size_t rank) const
      CANDLE_EXCLUDES(reg_mutex_);
  [[nodiscard]] std::size_t peer_count(std::size_t rank) const
      CANDLE_EXCLUDES(reg_mutex_);

  /// Throws CommError unless every rank registered `count` elements for
  /// the same op at the same collective sequence number. The sequence/op
  /// check is what makes per-bucket collectives from an overlap comm thread
  /// safe to reason about: any divergence in the global collective order
  /// across ranks (or a bucket interleaving across steps) is reported as an
  /// error at the rendezvous instead of corrupting a reduction.
  void check_rendezvous(std::size_t count, std::uint64_t seq,
                        const char* op) const CANDLE_EXCLUDES(reg_mutex_);

  std::size_t size_;
  WorldOptions options_;
  std::barrier<> barrier_;
  mutable AnnotatedMutex reg_mutex_{
      CANDLE_LOCK_LEVEL(lock_order::level::kCommRendezvous),
      "comm::World::reg_mutex_"};
  std::vector<float*> bufs_ CANDLE_GUARDED_BY(reg_mutex_);
  std::vector<const float*> const_bufs_ CANDLE_GUARDED_BY(reg_mutex_);
  std::vector<std::size_t> counts_ CANDLE_GUARDED_BY(reg_mutex_);
  std::vector<std::uint64_t> seqs_ CANDLE_GUARDED_BY(reg_mutex_);
  std::vector<const char*> ops_ CANDLE_GUARDED_BY(reg_mutex_);
};

}  // namespace candle::comm
