// In-process multi-rank communication runtime.
//
// This substitutes for MPI + NCCL in the paper's Horovod stack: every MPI
// rank is a thread of one process, and the collectives move real bytes
// between per-rank buffers using the same algorithms the real libraries use
// (ring allreduce as in NCCL/baidu-allreduce, binomial-tree broadcast as in
// MPI_Bcast). Collectives are synchronized with a phase barrier; the
// algorithms are lock-free between barriers because every rank writes only
// its own buffer.
//
// Usage:
//   comm::World::run(4, [](comm::Communicator& c) {
//     std::vector<float> grad = ...;
//     c.allreduce_average(grad);
//   });
#pragma once

#include <array>
#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "comm/wire_codec.h"
#include "common/thread_annotations.h"

namespace candle::comm {

/// Reduction algorithm selection.
enum class AllreduceAlgo {
  kRing,          // NCCL-style ring: 2(P-1)/P * N data volume per rank
  kNaive,         // gather-to-root + broadcast (reference implementation)
  kHierarchical,  // two-level: intra-node reduce, inter-node ring over node
                  // leaders, intra-node broadcast (NCCL on Summit's
                  // NVLink-within/IB-between topology)
};

/// Number of allreduce algorithms (fixed-size stats arrays in CommStats).
inline constexpr std::size_t kNumAllreduceAlgos = 3;

/// Stable index of an algorithm for stats arrays / CLI tables.
[[nodiscard]] constexpr std::size_t allreduce_algo_index(AllreduceAlgo a) {
  return static_cast<std::size_t>(a);
}

/// Human-readable algorithm name ("ring" | "naive" | "hierarchical").
[[nodiscard]] const char* allreduce_algo_name(AllreduceAlgo a);

/// Parses an --allreduce-algo value; throws InvalidArgument on unknown names.
[[nodiscard]] AllreduceAlgo parse_allreduce_algo(const char* name);

/// Per-rank traffic accounting, used by tests and the fusion ablation.
struct CommStats {
  std::size_t allreduce_calls = 0;
  std::size_t broadcast_calls = 0;
  std::size_t reduce_calls = 0;
  std::size_t allgather_calls = 0;
  std::size_t reduce_scatter_calls = 0;
  std::size_t barrier_calls = 0;
  std::size_t bytes_sent = 0;  // bytes this rank moved to a peer buffer

  /// On-wire bytes this rank moved per allreduce [algo][dtype] — the
  /// observable half of compressed collectives: an fp16/bf16 reduction of
  /// the same payload shows half the bytes of its fp32 row, int8 a quarter
  /// plus the per-chunk scale metadata (wire_range_bytes). Indexed with
  /// allreduce_algo_index() / wire_dtype_index(); also counted in
  /// bytes_sent. A hierarchical call with a compressed local_wire_dtype
  /// charges its intra-node legs at the local dtype's width, accumulated
  /// under the call's [kHierarchical][wire] row.
  std::array<std::array<std::size_t, kNumWireDtypes>, kNumAllreduceAlgos>
      allreduce_wire_bytes{};

  /// On-wire bytes per standalone reduce_scatter / allgather collective,
  /// by dtype (also counted in bytes_sent). The ring formulas are exact
  /// and asserted in test_comm.cpp: with P ranks and n elements divisible
  /// by P, each rank moves (P-1) * n/P elements per call. The concat-style
  /// allgather overload counts its fp32 copies here too.
  std::array<std::size_t, kNumWireDtypes> reduce_scatter_wire_bytes{};
  std::array<std::size_t, kNumWireDtypes> allgather_wire_bytes{};

  /// Sum of allreduce_wire_bytes over algorithms for one dtype.
  [[nodiscard]] std::size_t wire_bytes(WireDtype d) const {
    std::size_t total = 0;
    for (const auto& per_algo : allreduce_wire_bytes)
      total += per_algo[wire_dtype_index(d)];
    return total;
  }
};

class World;
struct WorldOptions;

/// Per-rank handle; valid only inside World::run's callback, on that thread.
class Communicator {
 public:
  [[nodiscard]] std::size_t rank() const { return rank_; }
  [[nodiscard]] std::size_t size() const;

  /// Rank within the node, given `ranks_per_node` from the WorldOptions
  /// (Summit: 6 GPUs per node -> local_rank in 0..5, as in the paper).
  [[nodiscard]] std::size_t local_rank() const;
  [[nodiscard]] std::size_t node() const;

  /// World configuration this rank runs under (algorithm, topology, default
  /// wire dtype) — lets callers model per-rank collective cost.
  [[nodiscard]] const WorldOptions& world_options() const;

  /// Blocks until all ranks arrive.
  void barrier();

  /// In-place sum-reduction across all ranks; every rank ends with the sum.
  /// Uses the world's default wire dtype (kFp32 unless configured).
  void allreduce_sum(std::span<float> data);

  /// allreduce_sum with an explicit on-wire dtype for this collective. With
  /// kFp16/kBf16 every inter-rank hop moves 16-bit words — and with kInt8
  /// block-scaled bytes plus per-chunk fp32 scales — while each rank
  /// accumulates its owned ring segment in the fp32 buffer itself (fp32
  /// master accumulation): one encode/decode pair per hop, identical op
  /// order on every rank, so the result is deterministic and rank-invariant
  /// for a fixed dtype. Compressed results carry the codec's documented
  /// error bound (see wire_codec.h) instead of bit-exactness; kFp32 is
  /// bit-identical to the overload above. All ranks must pass the same
  /// dtype — the rendezvous rejects a mismatch with CommError.
  void allreduce_sum(std::span<float> data, WireDtype wire);

  /// allreduce_sum followed by division by world size (gradient averaging).
  void allreduce_average(std::span<float> data);

  /// allreduce_average with an explicit on-wire dtype (see allreduce_sum).
  /// The averaging divide runs after the reduction, as the same fp32 op on
  /// bit-identical inputs on every rank.
  void allreduce_average(std::span<float> data, WireDtype wire);

  /// Copies root's buffer into every rank's buffer (binomial tree).
  void broadcast(std::span<float> data, std::size_t root);

  /// Sum-reduction onto `root` only (MPI_Reduce): root ends with the sum,
  /// other ranks' buffers are unchanged. Used by the parameter-server
  /// baseline's gradient push.
  void reduce_sum_to(std::span<float> data, std::size_t root);

  /// Gathers equal-size contributions from all ranks, in rank order.
  void allgather(std::span<const float> contribution,
                 std::vector<float>& gathered);

  /// In-place ring reduce-scatter (MPI_Reduce_scatter_block generalized to
  /// the ring's uneven segments): on return, rank r's segment r of the ring
  /// partition holds the element-wise sum over all ranks; the rest of the
  /// buffer holds partial sums and must be treated as scratch. Segment g
  /// covers [off(g), off(g+1)) with off(g) = granularity * (g * (n /
  /// granularity) / P) — granularity-aligned boundaries let callers gather
  /// per-rank blocks of `granularity`-strided rows (n must be divisible by
  /// granularity). Deterministic and rank-invariant: the ring schedule
  /// fixes the accumulation order per segment independent of thread timing.
  /// With a compressed wire dtype every hop moves 16-bit words and fuses
  /// decode+add into the fp32 master buffer (wire_codec.h).
  void reduce_scatter(std::span<float> data);
  void reduce_scatter(std::span<float> data, WireDtype wire,
                      std::size_t granularity = 1);

  /// In-place ring allgather, the inverse of reduce_scatter: rank r
  /// contributes its segment r (same boundary function, same granularity
  /// rules) and on return every rank holds every segment. With a
  /// compressed dtype each segment crosses the wire once in 16-bit words
  /// and the contributing rank round-trips its own segment through the
  /// codec, so all ranks end bit-identical.
  void allgather(std::span<float> data);
  void allgather(std::span<float> data, WireDtype wire,
                 std::size_t granularity = 1);

  /// Reduces a single double (sum) — convenience for scalar metrics.
  double allreduce_scalar(double value);

  [[nodiscard]] const CommStats& stats() const { return stats_; }

  /// Number of collectives this rank has issued. The rendezvous cross-checks
  /// it (together with the op name) across ranks at registration, so a rank
  /// that skips, reorders, or interleaves collectives — e.g. an overlap
  /// scheduler letting a bucket leak across a step boundary — fails fast
  /// with CommError instead of silently reducing mismatched buffers.
  [[nodiscard]] std::uint64_t collective_seq() const { return seq_; }

 private:
  friend class World;
  Communicator(World& world, std::size_t rank)
      : world_(&world), rank_(rank) {}

  World* world_;
  std::size_t rank_;
  CommStats stats_;
  /// Bumped at the start of every collective. Per-rank collectives are
  /// serialized (one issuing thread at a time — the rank thread, or its
  /// overlap comm thread while the rank thread is quiesced), so no atomics.
  std::uint64_t seq_ = 0;
  /// Persistent per-rank staging for compressed collectives: the wire
  /// image peers read — n 16-bit words for fp16/bf16, or the planar
  /// [scales | int8 payload] image for int8 (wire_codec.h), sized by
  /// wire::wire_image_scratch_elems. Incoming segments need no fp32
  /// landing zone — the fused decode_add kernels accumulate straight into
  /// the master buffer in one pass. Reused across calls so steady-state
  /// training does not allocate per bucket. Same serialization as seq_.
  std::vector<std::uint16_t> wire_scratch_;
};

/// World configuration.
struct WorldOptions {
  std::size_t ranks_per_node = 6;  // Summit node: 6 V100s
  AllreduceAlgo allreduce_algo = AllreduceAlgo::kRing;
  /// Default on-wire dtype for allreduce_sum/allreduce_average calls that
  /// do not pass one explicitly. kFp32 keeps the bit-exact contract;
  /// allreduce_scalar always stays fp32 so scalar metrics never quantize.
  WireDtype wire_dtype = WireDtype::kFp32;
  /// On-wire dtype for the intra-node legs (phases 1 and 3) of the
  /// kHierarchical allreduce, for when `local_bw` — not the inter-node
  /// wire — is the bottleneck. kFp32 (the default) keeps the intra-node
  /// legs exact; a compressed dtype makes members publish encoded images
  /// for the leader's phase-1 reduce and decode the leader's re-encoded
  /// result in phase 3 (leaders round-trip their own image so every rank
  /// of the world still ends bit-identical). World-level configuration —
  /// never per call — so ranks can never disagree about it. Ignored by
  /// the other algorithms.
  WireDtype local_wire_dtype = WireDtype::kFp32;
};

/// Owns the shared rendezvous state for `size` rank threads.
///
/// Thread model: the collective *payload* is synchronized by the phase
/// barrier (every rank writes only its own buffer between barriers), while
/// the rendezvous *metadata* — which buffer each rank registered and with
/// how many elements — is guarded by `reg_mutex_` and only touched through
/// the annotated helpers below, so clang -Wthread-safety proves the lock
/// discipline at compile time.
class World {
 public:
  explicit World(std::size_t size, WorldOptions options = {});
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const WorldOptions& options() const { return options_; }

  /// Spawns `size` threads, each running `body` with its Communicator.
  /// Rethrows the first exception thrown by any rank (after joining all).
  /// Returns the per-rank CommStats.
  static std::vector<CommStats> run(
      std::size_t size, const std::function<void(Communicator&)>& body,
      WorldOptions options = {});

 private:
  friend class Communicator;

  void do_barrier();
  void allreduce(Communicator& self, std::span<float> data, bool average,
                 WireDtype wire);
  void allreduce_ring(Communicator& self, std::span<float> data);
  void allreduce_naive(Communicator& self, std::span<float> data);

  // Compressed (fp16/bf16/int8 wire) variants. Same barrier/segment
  // schedule as their fp32 twins; peers read wire images instead of fp32
  // and each rank accumulates decoded segments into its own fp32 buffer.
  void allreduce_ring_compressed(Communicator& self, std::span<float> data,
                                 WireDtype wire);
  void allreduce_naive_compressed(Communicator& self, std::span<float> data,
                                  WireDtype wire);

  // Hierarchical handles all four combinations of plain/compressed
  // inter-node ring (`wire`) x plain/compressed intra-node legs
  // (`local_wire`); both kFp32 reproduces the exact two-level reduction
  // bit-identically.
  void allreduce_hierarchical(Communicator& self, std::span<float> data,
                              WireDtype wire, WireDtype local_wire);
  void do_broadcast(Communicator& self, std::span<float> data,
                    std::size_t root);
  void do_reduce_to(Communicator& self, std::span<float> data,
                    std::size_t root);
  void do_allgather(Communicator& self, std::span<const float> contribution,
                    std::vector<float>& gathered);

  // Standalone ring collectives (the allreduce ring's two phases promoted
  // to public primitives; see communicator.cpp for the shifted segment
  // schedule that makes rank r own segment r). Each handles both the fp32
  // and the compressed wire path.
  void do_reduce_scatter(Communicator& self, std::span<float> data,
                         WireDtype wire, std::size_t granularity);
  void do_allgather_inplace(Communicator& self, std::span<float> data,
                            WireDtype wire, std::size_t granularity);

  /// Registers `rank`'s buffer for the collective that is about to start,
  /// tagged with the rank's collective sequence number, the op name, and
  /// the requested wire dtype (with the rank's 16-bit wire image when the
  /// dtype is compressed). Must be followed by a barrier before any peer
  /// reads it.
  void register_buffer(std::size_t rank, float* data, std::size_t count,
                       std::uint64_t seq, const char* op,
                       WireDtype wire = WireDtype::kFp32,
                       std::uint16_t* wire_buf = nullptr,
                       std::size_t granularity = 1)
      CANDLE_EXCLUDES(reg_mutex_);
  void register_const_buffer(std::size_t rank, const float* data,
                             std::size_t count, std::uint64_t seq,
                             const char* op) CANDLE_EXCLUDES(reg_mutex_);

  /// Pointer `rank` registered for the current collective. The returned
  /// payload may only be dereferenced in barrier phases where `rank` is not
  /// writing the same segment.
  [[nodiscard]] float* peer_buffer(std::size_t rank) const
      CANDLE_EXCLUDES(reg_mutex_);
  [[nodiscard]] const float* peer_const_buffer(std::size_t rank) const
      CANDLE_EXCLUDES(reg_mutex_);
  [[nodiscard]] std::size_t peer_count(std::size_t rank) const
      CANDLE_EXCLUDES(reg_mutex_);
  [[nodiscard]] std::uint16_t* peer_wire_buffer(std::size_t rank) const
      CANDLE_EXCLUDES(reg_mutex_);

  /// Throws CommError unless every rank registered `count` elements for
  /// the same op at the same collective sequence number with the same wire
  /// dtype. The sequence/op check is what makes per-bucket collectives from
  /// an overlap comm thread safe to reason about: any divergence in the
  /// global collective order across ranks (or a bucket interleaving across
  /// steps) is reported as an error at the rendezvous instead of corrupting
  /// a reduction; the dtype check catches ranks disagreeing about whether a
  /// bucket crosses the wire compressed, and the granularity check catches
  /// ranks disagreeing about segment boundaries (reduce_scatter/allgather).
  void check_rendezvous(std::size_t count, std::uint64_t seq, const char* op,
                        WireDtype wire = WireDtype::kFp32,
                        std::size_t granularity = 1) const
      CANDLE_EXCLUDES(reg_mutex_);

  std::size_t size_;
  WorldOptions options_;
  std::barrier<> barrier_;
  mutable AnnotatedMutex reg_mutex_{
      CANDLE_LOCK_LEVEL(lock_order::level::kCommRendezvous),
      "comm::World::reg_mutex_"};
  std::vector<float*> bufs_ CANDLE_GUARDED_BY(reg_mutex_);
  std::vector<const float*> const_bufs_ CANDLE_GUARDED_BY(reg_mutex_);
  std::vector<std::uint16_t*> wire_bufs_ CANDLE_GUARDED_BY(reg_mutex_);
  std::vector<std::size_t> counts_ CANDLE_GUARDED_BY(reg_mutex_);
  std::vector<std::uint64_t> seqs_ CANDLE_GUARDED_BY(reg_mutex_);
  std::vector<const char*> ops_ CANDLE_GUARDED_BY(reg_mutex_);
  std::vector<WireDtype> dtypes_ CANDLE_GUARDED_BY(reg_mutex_);
  std::vector<std::size_t> grans_ CANDLE_GUARDED_BY(reg_mutex_);
};

}  // namespace candle::comm
