#include "comm/wire_codec.h"

#include <cstring>
#include <string>

#include "common/error.h"
#include "common/parallel.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace candle::comm {

const char* wire_dtype_name(WireDtype d) {
  switch (d) {
    case WireDtype::kFp32: return "fp32";
    case WireDtype::kFp16: return "fp16";
    case WireDtype::kBf16: return "bf16";
  }
  return "?";
}

WireDtype parse_wire_dtype(const char* name) {
  const std::string s = name == nullptr ? "" : name;
  if (s == "fp32") return WireDtype::kFp32;
  if (s == "fp16") return WireDtype::kFp16;
  if (s == "bf16") return WireDtype::kBf16;
  throw InvalidArgument("parse_wire_dtype: unknown wire dtype '" + s +
                        "' (expected fp32 | fp16 | bf16)");
}

namespace wire {
namespace {

std::uint32_t f32_bits(float value) {
  std::uint32_t x;
  std::memcpy(&x, &value, sizeof(x));
  return x;
}

float bits_f32(std::uint32_t x) {
  float value;
  std::memcpy(&value, &x, sizeof(value));
  return value;
}

}  // namespace

std::uint16_t f32_to_f16_scalar(float value) {
  const std::uint32_t x = f32_bits(value);
  const auto sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t abs = x & 0x7fffffffu;
  if (abs >= 0x7f800000u) {
    if (abs == 0x7f800000u) return sign | 0x7c00u;
    // NaN: quiet it and keep the top mantissa bits (vcvtps2ph behavior).
    return static_cast<std::uint16_t>(sign | 0x7e00u |
                                      ((abs & 0x7fffffu) >> 13));
  }
  const std::uint32_t e = abs >> 23;  // biased fp32 exponent
  const std::uint32_t m = abs & 0x7fffffu;
  if (e >= 113u) {  // half-normal range; RNE carry may still roll into inf
    if (e > 142u) return sign | 0x7c00u;  // >= 2^16 rounds to inf
    std::uint32_t h = ((e - 112u) << 10) | (m >> 13);
    const std::uint32_t rem = m & 0x1fffu;  // the 13 dropped bits
    h += (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ? 1u : 0u;
    return static_cast<std::uint16_t>(sign | h);
  }
  if (e < 102u) return sign;  // below 2^-25: rounds to (signed) zero
  // Subnormal half: shift the 24-bit significand into place with RNE.
  const std::uint32_t full = m | 0x800000u;
  const std::uint32_t shift = 126u - e;  // 14..24
  std::uint32_t h = full >> shift;
  const std::uint32_t rem = full & ((1u << shift) - 1u);
  const std::uint32_t halfway = 1u << (shift - 1u);
  h += (rem > halfway || (rem == halfway && (h & 1u))) ? 1u : 0u;
  return static_cast<std::uint16_t>(sign | h);  // carry yields min normal
}

float f16_to_f32_scalar(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t e = (bits >> 10) & 0x1fu;
  std::uint32_t m = bits & 0x3ffu;
  if (e == 0) {
    if (m == 0) return bits_f32(sign);
    // Subnormal: renormalize the mantissa into fp32's implicit-1 form.
    std::uint32_t shift = 0;
    while ((m & 0x400u) == 0) {
      m <<= 1;
      ++shift;
    }
    return bits_f32(sign | ((113u - shift) << 23) | ((m & 0x3ffu) << 13));
  }
  if (e == 31u) {
    // Inf passes through; NaN is quieted (vcvtph2ps behavior) so the
    // vectorized decoder stays bit-identical to this reference.
    const std::uint32_t quiet = m == 0 ? 0u : 0x400000u;
    return bits_f32(sign | 0x7f800000u | quiet | (m << 13));
  }
  return bits_f32(sign | ((e + 112u) << 23) | (m << 13));
}

std::uint16_t f32_to_bf16_scalar(float value) {
  std::uint32_t x = f32_bits(value);
  if ((x & 0x7fffffffu) > 0x7f800000u)  // NaN: quiet, keep sign + top bits
    return static_cast<std::uint16_t>((x >> 16) | 0x0040u);
  x += 0x7fffu + ((x >> 16) & 1u);  // RNE on the 16 dropped bits
  return static_cast<std::uint16_t>(x >> 16);
}

float bf16_to_f32_scalar(std::uint16_t bits) {
  return bits_f32(static_cast<std::uint32_t>(bits) << 16);
}

namespace {

using EncodeFn = void (*)(const float*, std::uint16_t*, std::size_t);
using DecodeFn = void (*)(const std::uint16_t*, float*, std::size_t);

void encode_f16_portable(const float* src, std::uint16_t* dst,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = f32_to_f16_scalar(src[i]);
}

void decode_f16_portable(const std::uint16_t* src, float* dst,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = f16_to_f32_scalar(src[i]);
}

void encode_bf16_portable(const float* src, std::uint16_t* dst,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = f32_to_bf16_scalar(src[i]);
}

void decode_bf16_portable(const std::uint16_t* src, float* dst,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = bf16_to_f32_scalar(src[i]);
}

void decode_add_f16_portable(const std::uint16_t* src, float* dst,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += f16_to_f32_scalar(src[i]);
}

void decode_add_bf16_portable(const std::uint16_t* src, float* dst,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += bf16_to_f32_scalar(src[i]);
}

#if defined(__x86_64__)

// F16C variants: vcvtps2ph/vcvtph2ps convert 8 lanes per instruction with
// hardware round-to-nearest-even — bit-identical to the scalar reference
// (tests/test_codec.cpp asserts the parity). Function-level target
// attributes keep the rest of the TU baseline x86-64, like the GEMM
// microkernel; only reached after __builtin_cpu_supports says it is safe.
__attribute__((target("f16c,avx2"))) void encode_f16_f16c(
    const float* src, std::uint16_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(src + i);
    const __m128i h = _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  for (; i < n; ++i) dst[i] = f32_to_f16_scalar(src[i]);
}

__attribute__((target("f16c,avx2"))) void decode_f16_f16c(
    const std::uint16_t* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  for (; i < n; ++i) dst[i] = f16_to_f32_scalar(src[i]);
}

// AVX2 bf16 encode: the RNE rounding-add and the NaN-quieting select run 8
// lanes at a time; finite values (including +-inf) take the add path, NaNs
// are replaced by sign|exponent with a forced quiet mantissa bit.
__attribute__((target("avx2"))) void encode_bf16_avx2(const float* src,
                                                      std::uint16_t* dst,
                                                      std::size_t n) {
  const __m256i abs_mask = _mm256_set1_epi32(0x7fffffff);
  const __m256i exp_inf = _mm256_set1_epi32(0x7f800000);
  const __m256i bias = _mm256_set1_epi32(0x7fff);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i quiet = _mm256_set1_epi32(0x0040);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i abs = _mm256_and_si256(x, abs_mask);
    // abs and exp_inf are both non-negative, so the signed compare is safe.
    const __m256i is_nan = _mm256_cmpgt_epi32(abs, exp_inf);
    const __m256i lsb = _mm256_and_si256(_mm256_srli_epi32(x, 16), one);
    const __m256i rounded =
        _mm256_add_epi32(x, _mm256_add_epi32(bias, lsb));
    const __m256i nan16 =
        _mm256_or_si256(_mm256_srli_epi32(x, 16), quiet);
    const __m256i fin16 = _mm256_srli_epi32(rounded, 16);
    const __m256i r = _mm256_blendv_epi8(fin16, nan16, is_nan);
    // Both halves hold 16-bit values; pack preserving order.
    const __m128i lo = _mm256_castsi256_si128(r);
    const __m128i hi = _mm256_extracti128_si256(r, 1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_packus_epi32(lo, hi));
  }
  for (; i < n; ++i) dst[i] = f32_to_bf16_scalar(src[i]);
}

__attribute__((target("avx2"))) void decode_bf16_avx2(
    const std::uint16_t* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m256i w = _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), w);
  }
  for (; i < n; ++i) dst[i] = bf16_to_f32_scalar(src[i]);
}

// Fused decode+accumulate: each lane adds only into its own dst element, so
// SIMD stays bit-identical to the scalar reference — there is no
// cross-lane reduction whose association order could differ.
__attribute__((target("f16c,avx2"))) void decode_add_f16_f16c(
    const std::uint16_t* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m256 sum =
        _mm256_add_ps(_mm256_loadu_ps(dst + i), _mm256_cvtph_ps(h));
    _mm256_storeu_ps(dst + i, sum);
  }
  for (; i < n; ++i) dst[i] += f16_to_f32_scalar(src[i]);
}

__attribute__((target("avx2"))) void decode_add_bf16_avx2(
    const std::uint16_t* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m256 v = _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16));
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), v));
  }
  for (; i < n; ++i) dst[i] += bf16_to_f32_scalar(src[i]);
}

#endif  // __x86_64__

EncodeFn select_f16_encoder() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("f16c") && __builtin_cpu_supports("avx2"))
    return encode_f16_f16c;
#endif
  return encode_f16_portable;
}

DecodeFn select_f16_decoder() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("f16c") && __builtin_cpu_supports("avx2"))
    return decode_f16_f16c;
#endif
  return decode_f16_portable;
}

EncodeFn select_bf16_encoder() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) return encode_bf16_avx2;
#endif
  return encode_bf16_portable;
}

DecodeFn select_bf16_decoder() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) return decode_bf16_avx2;
#endif
  return decode_bf16_portable;
}

DecodeFn select_f16_decode_add() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("f16c") && __builtin_cpu_supports("avx2"))
    return decode_add_f16_f16c;
#endif
  return decode_add_f16_portable;
}

DecodeFn select_bf16_decode_add() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) return decode_add_bf16_avx2;
#endif
  return decode_add_bf16_portable;
}

/// Per-hop ring segments below this many elements convert inline on the
/// calling thread; larger buffers fan out over the shared pool.
constexpr std::size_t kConvertGrain = 1u << 16;

}  // namespace

void encode(WireDtype dtype, const float* src, std::uint16_t* dst,
            std::size_t n) {
  require(dtype != WireDtype::kFp32, "wire::encode: fp32 is not encoded");
  static const EncodeFn f16 = select_f16_encoder();
  static const EncodeFn bf16 = select_bf16_encoder();
  (dtype == WireDtype::kFp16 ? f16 : bf16)(src, dst, n);
}

void decode(WireDtype dtype, const std::uint16_t* src, float* dst,
            std::size_t n) {
  require(dtype != WireDtype::kFp32, "wire::decode: fp32 is not decoded");
  static const DecodeFn f16 = select_f16_decoder();
  static const DecodeFn bf16 = select_bf16_decoder();
  (dtype == WireDtype::kFp16 ? f16 : bf16)(src, dst, n);
}

void decode_add(WireDtype dtype, const std::uint16_t* src, float* dst,
                std::size_t n) {
  require(dtype != WireDtype::kFp32, "wire::decode_add: fp32 is not decoded");
  static const DecodeFn f16 = select_f16_decode_add();
  static const DecodeFn bf16 = select_bf16_decode_add();
  (dtype == WireDtype::kFp16 ? f16 : bf16)(src, dst, n);
}

void encode_parallel(WireDtype dtype, const float* src, std::uint16_t* dst,
                     std::size_t n) {
  parallel::parallel_for(0, n, kConvertGrain,
                         [&](std::size_t b, std::size_t e) {
                           encode(dtype, src + b, dst + b, e - b);
                         });
}

void decode_parallel(WireDtype dtype, const std::uint16_t* src, float* dst,
                     std::size_t n) {
  parallel::parallel_for(0, n, kConvertGrain,
                         [&](std::size_t b, std::size_t e) {
                           decode(dtype, src + b, dst + b, e - b);
                         });
}

}  // namespace wire
}  // namespace candle::comm
