#include "comm/wire_codec.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>

#include "common/error.h"
#include "common/parallel.h"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace candle::comm {

const char* wire_dtype_name(WireDtype d) {
  switch (d) {
    case WireDtype::kFp32: return "fp32";
    case WireDtype::kFp16: return "fp16";
    case WireDtype::kBf16: return "bf16";
    case WireDtype::kInt8: return "int8";
  }
  return "?";
}

WireDtype parse_wire_dtype(const char* name) {
  const std::string s = name == nullptr ? "" : name;
  if (s == "fp32") return WireDtype::kFp32;
  if (s == "fp16") return WireDtype::kFp16;
  if (s == "bf16") return WireDtype::kBf16;
  if (s == "int8") return WireDtype::kInt8;
  throw InvalidArgument("parse_wire_dtype: unknown wire dtype '" + s +
                        "' (expected fp32 | fp16 | bf16 | int8)");
}

namespace wire {
namespace {

std::uint32_t f32_bits(float value) {
  std::uint32_t x;
  std::memcpy(&x, &value, sizeof(x));
  return x;
}

float bits_f32(std::uint32_t x) {
  float value;
  std::memcpy(&value, &x, sizeof(value));
  return value;
}

// Chunk absmax as a max over abs bits compared as unsigned integers: for
// IEEE floats the bit ordering equals the magnitude ordering, the max is
// order-independent (so scalar and SIMD agree bitwise), and a NaN (abs bits
// above the inf pattern) wins and poisons the chunk scale visibly.
std::uint32_t chunk_absmax_bits_scalar(const float* src, std::size_t n) {
  std::uint32_t m = 0;
  for (std::size_t i = 0; i < n; ++i)
    m = std::max(m, f32_bits(src[i]) & 0x7fffffffu);
  return m;
}

// One int8 quantization: RNE like vcvtps2dq (std::lrint honors the default
// round-to-nearest mode), then clamp to the symmetric [-127, 127] range.
std::int32_t quantize_one(float v, float inv) {
  const long q = std::lrint(v * inv);
  return static_cast<std::int32_t>(std::clamp(q, -127L, 127L));
}

}  // namespace

std::uint16_t f32_to_f16_scalar(float value) {
  const std::uint32_t x = f32_bits(value);
  const auto sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t abs = x & 0x7fffffffu;
  if (abs >= 0x7f800000u) {
    if (abs == 0x7f800000u) return sign | 0x7c00u;
    // NaN: quiet it and keep the top mantissa bits (vcvtps2ph behavior).
    return static_cast<std::uint16_t>(sign | 0x7e00u |
                                      ((abs & 0x7fffffu) >> 13));
  }
  const std::uint32_t e = abs >> 23;  // biased fp32 exponent
  const std::uint32_t m = abs & 0x7fffffu;
  if (e >= 113u) {  // half-normal range; RNE carry may still roll into inf
    if (e > 142u) return sign | 0x7c00u;  // >= 2^16 rounds to inf
    std::uint32_t h = ((e - 112u) << 10) | (m >> 13);
    const std::uint32_t rem = m & 0x1fffu;  // the 13 dropped bits
    h += (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ? 1u : 0u;
    return static_cast<std::uint16_t>(sign | h);
  }
  if (e < 102u) return sign;  // below 2^-25: rounds to (signed) zero
  // Subnormal half: shift the 24-bit significand into place with RNE.
  const std::uint32_t full = m | 0x800000u;
  const std::uint32_t shift = 126u - e;  // 14..24
  std::uint32_t h = full >> shift;
  const std::uint32_t rem = full & ((1u << shift) - 1u);
  const std::uint32_t halfway = 1u << (shift - 1u);
  h += (rem > halfway || (rem == halfway && (h & 1u))) ? 1u : 0u;
  return static_cast<std::uint16_t>(sign | h);  // carry yields min normal
}

float f16_to_f32_scalar(std::uint16_t bits) {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
  const std::uint32_t e = (bits >> 10) & 0x1fu;
  std::uint32_t m = bits & 0x3ffu;
  if (e == 0) {
    if (m == 0) return bits_f32(sign);
    // Subnormal: renormalize the mantissa into fp32's implicit-1 form.
    std::uint32_t shift = 0;
    while ((m & 0x400u) == 0) {
      m <<= 1;
      ++shift;
    }
    return bits_f32(sign | ((113u - shift) << 23) | ((m & 0x3ffu) << 13));
  }
  if (e == 31u) {
    // Inf passes through; NaN is quieted (vcvtph2ps behavior) so the
    // vectorized decoder stays bit-identical to this reference.
    const std::uint32_t quiet = m == 0 ? 0u : 0x400000u;
    return bits_f32(sign | 0x7f800000u | quiet | (m << 13));
  }
  return bits_f32(sign | ((e + 112u) << 23) | (m << 13));
}

std::uint16_t f32_to_bf16_scalar(float value) {
  std::uint32_t x = f32_bits(value);
  if ((x & 0x7fffffffu) > 0x7f800000u)  // NaN: quiet, keep sign + top bits
    return static_cast<std::uint16_t>((x >> 16) | 0x0040u);
  x += 0x7fffu + ((x >> 16) & 1u);  // RNE on the 16 dropped bits
  return static_cast<std::uint16_t>(x >> 16);
}

float bf16_to_f32_scalar(std::uint16_t bits) {
  return bits_f32(static_cast<std::uint32_t>(bits) << 16);
}

void encode_int8_reference(const float* src, std::uint8_t* payload,
                           float* scales, std::size_t n) {
  for (std::size_t c = 0; c < n; c += kInt8ChunkElems) {
    const std::size_t len = std::min(kInt8ChunkElems, n - c);
    const std::uint32_t m = chunk_absmax_bits_scalar(src + c, len);
    const float absmax = bits_f32(m);
    scales[c] = absmax;
    const float inv = m != 0 ? 127.0f / absmax : 0.0f;
    for (std::size_t i = 0; i < len; ++i)
      payload[c + i] = static_cast<std::uint8_t>(
          static_cast<std::int8_t>(quantize_one(src[c + i], inv)));
  }
}

void decode_int8_reference(const std::uint8_t* payload, const float* scales,
                           float* dst, std::size_t n) {
  for (std::size_t c = 0; c < n; c += kInt8ChunkElems) {
    const std::size_t len = std::min(kInt8ChunkElems, n - c);
    const float step = scales[c] / 127.0f;
    for (std::size_t i = 0; i < len; ++i)
      dst[c + i] =
          static_cast<float>(static_cast<std::int8_t>(payload[c + i])) * step;
  }
}

void decode_add_int8_reference(const std::uint8_t* payload,
                               const float* scales, float* dst,
                               std::size_t n) {
  for (std::size_t c = 0; c < n; c += kInt8ChunkElems) {
    const std::size_t len = std::min(kInt8ChunkElems, n - c);
    const float step = scales[c] / 127.0f;
    for (std::size_t i = 0; i < len; ++i)
      dst[c + i] +=
          static_cast<float>(static_cast<std::int8_t>(payload[c + i])) * step;
  }
}

namespace {

using EncodeFn = void (*)(const float*, std::uint16_t*, std::size_t);
using DecodeFn = void (*)(const std::uint16_t*, float*, std::size_t);

void encode_f16_portable(const float* src, std::uint16_t* dst,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = f32_to_f16_scalar(src[i]);
}

void decode_f16_portable(const std::uint16_t* src, float* dst,
                         std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = f16_to_f32_scalar(src[i]);
}

void encode_bf16_portable(const float* src, std::uint16_t* dst,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = f32_to_bf16_scalar(src[i]);
}

void decode_bf16_portable(const std::uint16_t* src, float* dst,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = bf16_to_f32_scalar(src[i]);
}

void decode_add_f16_portable(const std::uint16_t* src, float* dst,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += f16_to_f32_scalar(src[i]);
}

void decode_add_bf16_portable(const std::uint16_t* src, float* dst,
                              std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += bf16_to_f32_scalar(src[i]);
}

#if defined(__x86_64__)

// F16C variants: vcvtps2ph/vcvtph2ps convert 8 lanes per instruction with
// hardware round-to-nearest-even — bit-identical to the scalar reference
// (tests/test_codec.cpp asserts the parity). Function-level target
// attributes keep the rest of the TU baseline x86-64, like the GEMM
// microkernel; only reached after __builtin_cpu_supports says it is safe.
__attribute__((target("f16c,avx2"))) void encode_f16_f16c(
    const float* src, std::uint16_t* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(src + i);
    const __m128i h = _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  for (; i < n; ++i) dst[i] = f32_to_f16_scalar(src[i]);
}

__attribute__((target("f16c,avx2"))) void decode_f16_f16c(
    const std::uint16_t* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  for (; i < n; ++i) dst[i] = f16_to_f32_scalar(src[i]);
}

// AVX2 bf16 encode: the RNE rounding-add and the NaN-quieting select run 8
// lanes at a time; finite values (including +-inf) take the add path, NaNs
// are replaced by sign|exponent with a forced quiet mantissa bit.
__attribute__((target("avx2"))) void encode_bf16_avx2(const float* src,
                                                      std::uint16_t* dst,
                                                      std::size_t n) {
  const __m256i abs_mask = _mm256_set1_epi32(0x7fffffff);
  const __m256i exp_inf = _mm256_set1_epi32(0x7f800000);
  const __m256i bias = _mm256_set1_epi32(0x7fff);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i quiet = _mm256_set1_epi32(0x0040);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i abs = _mm256_and_si256(x, abs_mask);
    // abs and exp_inf are both non-negative, so the signed compare is safe.
    const __m256i is_nan = _mm256_cmpgt_epi32(abs, exp_inf);
    const __m256i lsb = _mm256_and_si256(_mm256_srli_epi32(x, 16), one);
    const __m256i rounded =
        _mm256_add_epi32(x, _mm256_add_epi32(bias, lsb));
    const __m256i nan16 =
        _mm256_or_si256(_mm256_srli_epi32(x, 16), quiet);
    const __m256i fin16 = _mm256_srli_epi32(rounded, 16);
    const __m256i r = _mm256_blendv_epi8(fin16, nan16, is_nan);
    // Both halves hold 16-bit values; pack preserving order.
    const __m128i lo = _mm256_castsi256_si128(r);
    const __m128i hi = _mm256_extracti128_si256(r, 1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_packus_epi32(lo, hi));
  }
  for (; i < n; ++i) dst[i] = f32_to_bf16_scalar(src[i]);
}

__attribute__((target("avx2"))) void decode_bf16_avx2(
    const std::uint16_t* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m256i w = _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), w);
  }
  for (; i < n; ++i) dst[i] = bf16_to_f32_scalar(src[i]);
}

// Fused decode+accumulate: each lane adds only into its own dst element, so
// SIMD stays bit-identical to the scalar reference — there is no
// cross-lane reduction whose association order could differ.
__attribute__((target("f16c,avx2"))) void decode_add_f16_f16c(
    const std::uint16_t* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m256 sum =
        _mm256_add_ps(_mm256_loadu_ps(dst + i), _mm256_cvtph_ps(h));
    _mm256_storeu_ps(dst + i, sum);
  }
  for (; i < n; ++i) dst[i] += f16_to_f32_scalar(src[i]);
}

__attribute__((target("avx2"))) void decode_add_bf16_avx2(
    const std::uint16_t* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m256 v = _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16));
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), v));
  }
  for (; i < n; ++i) dst[i] += bf16_to_f32_scalar(src[i]);
}

// AVX2 chunk absmax: vpmaxud over abs bits, then a lane-order-free
// horizontal max — every step is an exact unsigned integer max, so the
// result is the same bit pattern the scalar loop produces.
__attribute__((target("avx2"))) std::uint32_t chunk_absmax_bits_avx2(
    const float* src, std::size_t n) {
  const __m256i abs_mask = _mm256_set1_epi32(0x7fffffff);
  __m256i vm = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    vm = _mm256_max_epu32(vm, _mm256_and_si256(x, abs_mask));
  }
  __m128i m4 = _mm_max_epu32(_mm256_castsi256_si128(vm),
                             _mm256_extracti128_si256(vm, 1));
  m4 = _mm_max_epu32(m4, _mm_shuffle_epi32(m4, _MM_SHUFFLE(1, 0, 3, 2)));
  m4 = _mm_max_epu32(m4, _mm_shuffle_epi32(m4, _MM_SHUFFLE(2, 3, 0, 1)));
  auto m = static_cast<std::uint32_t>(_mm_cvtsi128_si32(m4));
  for (; i < n; ++i) m = std::max(m, f32_bits(src[i]) & 0x7fffffffu);
  return m;
}

// AVX2 int8 encode: vcvtps2dq rounds RNE exactly like the scalar lrint
// path, the clamp runs before the saturating packs (so the packs are
// value-preserving), and the scale is computed from the exact absmax bits.
__attribute__((target("avx2"))) void encode_int8_avx2(const float* src,
                                                      std::uint8_t* payload,
                                                      float* scales,
                                                      std::size_t n) {
  const __m256i hi_q = _mm256_set1_epi32(127);
  const __m256i lo_q = _mm256_set1_epi32(-127);
  for (std::size_t c = 0; c < n; c += kInt8ChunkElems) {
    const std::size_t len = std::min(kInt8ChunkElems, n - c);
    const std::uint32_t m = chunk_absmax_bits_avx2(src + c, len);
    const float absmax = bits_f32(m);
    scales[c] = absmax;
    const float inv = m != 0 ? 127.0f / absmax : 0.0f;
    const __m256 vinv = _mm256_set1_ps(inv);
    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) {
      const __m256 v = _mm256_loadu_ps(src + c + i);
      __m256i q = _mm256_cvtps_epi32(_mm256_mul_ps(v, vinv));
      q = _mm256_min_epi32(_mm256_max_epi32(q, lo_q), hi_q);
      const __m128i w = _mm_packs_epi32(_mm256_castsi256_si128(q),
                                        _mm256_extracti128_si256(q, 1));
      _mm_storel_epi64(reinterpret_cast<__m128i*>(payload + c + i),
                       _mm_packs_epi16(w, w));
    }
    for (; i < len; ++i)
      payload[c + i] = static_cast<std::uint8_t>(
          static_cast<std::int8_t>(quantize_one(src[c + i], inv)));
  }
}

__attribute__((target("avx2"))) void decode_int8_avx2(
    const std::uint8_t* payload, const float* scales, float* dst,
    std::size_t n) {
  for (std::size_t c = 0; c < n; c += kInt8ChunkElems) {
    const std::size_t len = std::min(kInt8ChunkElems, n - c);
    const float step = scales[c] / 127.0f;
    const __m256 vstep = _mm256_set1_ps(step);
    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) {
      const __m128i b =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(payload + c + i));
      const __m256 v = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
      _mm256_storeu_ps(dst + c + i, _mm256_mul_ps(v, vstep));
    }
    for (; i < len; ++i)
      dst[c + i] =
          static_cast<float>(static_cast<std::int8_t>(payload[c + i])) * step;
  }
}

// Explicit mul-then-add (never an FMA) so the accumulate matches the scalar
// reference bitwise, like the 16-bit decode_add kernels above.
__attribute__((target("avx2"))) void decode_add_int8_avx2(
    const std::uint8_t* payload, const float* scales, float* dst,
    std::size_t n) {
  for (std::size_t c = 0; c < n; c += kInt8ChunkElems) {
    const std::size_t len = std::min(kInt8ChunkElems, n - c);
    const float step = scales[c] / 127.0f;
    const __m256 vstep = _mm256_set1_ps(step);
    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) {
      const __m128i b =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(payload + c + i));
      const __m256 v = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
      _mm256_storeu_ps(dst + c + i, _mm256_add_ps(_mm256_loadu_ps(dst + c + i),
                                                  _mm256_mul_ps(v, vstep)));
    }
    for (; i < len; ++i)
      dst[c + i] +=
          static_cast<float>(static_cast<std::int8_t>(payload[c + i])) * step;
  }
}

#endif  // __x86_64__

EncodeFn select_f16_encoder() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("f16c") && __builtin_cpu_supports("avx2"))
    return encode_f16_f16c;
#endif
  return encode_f16_portable;
}

DecodeFn select_f16_decoder() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("f16c") && __builtin_cpu_supports("avx2"))
    return decode_f16_f16c;
#endif
  return decode_f16_portable;
}

EncodeFn select_bf16_encoder() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) return encode_bf16_avx2;
#endif
  return encode_bf16_portable;
}

DecodeFn select_bf16_decoder() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) return decode_bf16_avx2;
#endif
  return decode_bf16_portable;
}

DecodeFn select_f16_decode_add() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("f16c") && __builtin_cpu_supports("avx2"))
    return decode_add_f16_f16c;
#endif
  return decode_add_f16_portable;
}

DecodeFn select_bf16_decode_add() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) return decode_add_bf16_avx2;
#endif
  return decode_add_bf16_portable;
}

using EncodeInt8Fn = void (*)(const float*, std::uint8_t*, float*,
                              std::size_t);
using DecodeInt8Fn = void (*)(const std::uint8_t*, const float*, float*,
                              std::size_t);

EncodeInt8Fn select_int8_encoder() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) return encode_int8_avx2;
#endif
  return encode_int8_reference;
}

DecodeInt8Fn select_int8_decoder() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) return decode_int8_avx2;
#endif
  return decode_int8_reference;
}

DecodeInt8Fn select_int8_decode_add() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2")) return decode_add_int8_avx2;
#endif
  return decode_add_int8_reference;
}

/// Per-hop ring segments below this many elements convert inline on the
/// calling thread; larger buffers fan out over the shared pool.
constexpr std::size_t kConvertGrain = 1u << 16;

}  // namespace

void encode(WireDtype dtype, const float* src, std::uint16_t* dst,
            std::size_t n) {
  require(dtype == WireDtype::kFp16 || dtype == WireDtype::kBf16,
          "wire::encode: 16-bit dtypes only (int8 uses the planar API)");
  static const EncodeFn f16 = select_f16_encoder();
  static const EncodeFn bf16 = select_bf16_encoder();
  (dtype == WireDtype::kFp16 ? f16 : bf16)(src, dst, n);
}

void decode(WireDtype dtype, const std::uint16_t* src, float* dst,
            std::size_t n) {
  require(dtype == WireDtype::kFp16 || dtype == WireDtype::kBf16,
          "wire::decode: 16-bit dtypes only (int8 uses the planar API)");
  static const DecodeFn f16 = select_f16_decoder();
  static const DecodeFn bf16 = select_bf16_decoder();
  (dtype == WireDtype::kFp16 ? f16 : bf16)(src, dst, n);
}

void decode_add(WireDtype dtype, const std::uint16_t* src, float* dst,
                std::size_t n) {
  require(dtype == WireDtype::kFp16 || dtype == WireDtype::kBf16,
          "wire::decode_add: 16-bit dtypes only (int8 uses the planar API)");
  static const DecodeFn f16 = select_f16_decode_add();
  static const DecodeFn bf16 = select_bf16_decode_add();
  (dtype == WireDtype::kFp16 ? f16 : bf16)(src, dst, n);
}

void encode_parallel(WireDtype dtype, const float* src, std::uint16_t* dst,
                     std::size_t n) {
  parallel::parallel_for(0, n, kConvertGrain,
                         [&](std::size_t b, std::size_t e) {
                           encode(dtype, src + b, dst + b, e - b);
                         });
}

void decode_parallel(WireDtype dtype, const std::uint16_t* src, float* dst,
                     std::size_t n) {
  parallel::parallel_for(0, n, kConvertGrain,
                         [&](std::size_t b, std::size_t e) {
                           decode(dtype, src + b, dst + b, e - b);
                         });
}

void encode_int8(const float* src, std::uint8_t* payload, float* scales,
                 std::size_t n) {
  static const EncodeInt8Fn fn = select_int8_encoder();
  fn(src, payload, scales, n);
}

void decode_int8(const std::uint8_t* payload, const float* scales, float* dst,
                 std::size_t n) {
  static const DecodeInt8Fn fn = select_int8_decoder();
  fn(payload, scales, dst, n);
}

void decode_add_int8(const std::uint8_t* payload, const float* scales,
                     float* dst, std::size_t n) {
  static const DecodeInt8Fn fn = select_int8_decode_add();
  fn(payload, scales, dst, n);
}

void quantization_residual(WireDtype dtype, const float* data, float* residual,
                           std::size_t n) {
  require(dtype != WireDtype::kFp32,
          "wire::quantization_residual: fp32 has no quantization error");
  // Blocks are a multiple of kInt8ChunkElems, so blockwise int8 encoding
  // reproduces the chunk grid of one whole-range encode starting at data[0].
  constexpr std::size_t kBlock = 4 * kInt8ChunkElems;
  float rt[kBlock];
  if (dtype == WireDtype::kInt8) {
    std::uint8_t payload[kBlock];
    float scales[kBlock];  // sparse: only slots j * kInt8ChunkElems are used
    for (std::size_t b = 0; b < n; b += kBlock) {
      const std::size_t len = std::min(kBlock, n - b);
      encode_int8(data + b, payload, scales, len);
      decode_int8(payload, scales, rt, len);
      for (std::size_t i = 0; i < len; ++i)
        residual[b + i] = data[b + i] - rt[i];
    }
    return;
  }
  std::uint16_t words[kBlock];
  for (std::size_t b = 0; b < n; b += kBlock) {
    const std::size_t len = std::min(kBlock, n - b);
    encode(dtype, data + b, words, len);
    decode(dtype, words, rt, len);
    for (std::size_t i = 0; i < len; ++i) residual[b + i] = data[b + i] - rt[i];
  }
}

void encode_int8_parallel(const float* src, std::uint8_t* payload,
                          float* scales, std::size_t n) {
  const std::size_t chunks =
      (n + kInt8ChunkElems - 1) / kInt8ChunkElems;
  parallel::parallel_for(0, chunks, kConvertGrain / kInt8ChunkElems,
                         [&](std::size_t c0, std::size_t c1) {
                           const std::size_t b = c0 * kInt8ChunkElems;
                           const std::size_t e =
                               std::min(n, c1 * kInt8ChunkElems);
                           encode_int8(src + b, payload + b, scales + b,
                                       e - b);
                         });
}

void decode_int8_parallel(const std::uint8_t* payload, const float* scales,
                          float* dst, std::size_t n) {
  const std::size_t chunks =
      (n + kInt8ChunkElems - 1) / kInt8ChunkElems;
  parallel::parallel_for(0, chunks, kConvertGrain / kInt8ChunkElems,
                         [&](std::size_t c0, std::size_t c1) {
                           const std::size_t b = c0 * kInt8ChunkElems;
                           const std::size_t e =
                               std::min(n, c1 * kInt8ChunkElems);
                           decode_int8(payload + b, scales + b, dst + b,
                                       e - b);
                         });
}

}  // namespace wire
}  // namespace candle::comm
