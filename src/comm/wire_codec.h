// Wire codec for compressed collectives: fp32 <-> fp16 / bf16.
//
// The paper shows gradient allreduce dominating step cost as the CANDLE
// benchmarks strong-scale; halving the on-wire bytes is the widest remaining
// lever once kernels are tuned. This module provides the conversion kernels
// the compressed collective paths (communicator.cpp, hvd/fusion.cpp) are
// built on:
//
//  - round-to-nearest-even in both directions (matching IEEE 754 and the
//    F16C/vcvtps2ph hardware behavior), so the scalar fallback and the
//    vectorized path produce bit-identical wire bytes;
//  - runtime dispatch like the GEMM microkernel: an F16C/AVX2 variant is
//    selected once per process when __builtin_cpu_supports says it is safe,
//    else the portable scalar kernel runs;
//  - candle::parallel-threaded wrappers for whole-buffer conversion. The
//    conversion is elementwise (no cross-element reduction), so the chunk
//    partitioning cannot change any result — threaded output is
//    bit-identical to serial at any pool width.
//
// Error bounds (tested in tests/test_codec.cpp): one fp32 -> fp16 -> fp32
// round trip of a finite value in fp16 normal range has relative error
// <= 2^-11; fp32 -> bf16 -> fp32 has relative error <= 2^-8. The compressed
// allreduce quantizes once per ring hop, so a P-rank reduction accumulates
// at most (P+1) such errors per element (see communicator.h).
#pragma once

#include <cstddef>
#include <cstdint>

namespace candle::comm {

/// On-wire element encoding for collective payloads. Master accumulation is
/// always fp32; the dtype only selects how bytes cross the (emulated)
/// interconnect. kFp32 is the bit-exact default contract.
enum class WireDtype {
  kFp32,  // no compression: 4 bytes/element, bit-exact
  kFp16,  // IEEE binary16 wire: 2 bytes/element, ~2^-11 relative error/hop
  kBf16,  // bfloat16 wire: 2 bytes/element, ~2^-8 relative error/hop
};

/// Number of wire dtypes (fixed-size stats arrays in CommStats).
inline constexpr std::size_t kNumWireDtypes = 3;

/// Stable index of a dtype for stats arrays / CLI tables.
[[nodiscard]] constexpr std::size_t wire_dtype_index(WireDtype d) {
  return static_cast<std::size_t>(d);
}

/// Bytes one element occupies on the wire.
[[nodiscard]] constexpr std::size_t wire_width_bytes(WireDtype d) {
  return d == WireDtype::kFp32 ? 4 : 2;
}

/// Human-readable dtype name ("fp32" | "fp16" | "bf16").
[[nodiscard]] const char* wire_dtype_name(WireDtype d);

/// Parses a --wire-dtype value; throws InvalidArgument on unknown names.
[[nodiscard]] WireDtype parse_wire_dtype(const char* name);

namespace wire {

// --- scalar reference conversions (exact RNE; used by tests and as the ----
// --- portable fallback of the dispatched kernels) -------------------------

[[nodiscard]] std::uint16_t f32_to_f16_scalar(float value);
[[nodiscard]] float f16_to_f32_scalar(std::uint16_t bits);
[[nodiscard]] std::uint16_t f32_to_bf16_scalar(float value);
[[nodiscard]] float bf16_to_f32_scalar(std::uint16_t bits);

// --- single-threaded buffer kernels (runtime-dispatched, vectorized) ------

/// Encodes `n` fp32 values into 16-bit wire words of the given dtype.
/// `dtype` must not be kFp32 (there is nothing to encode).
void encode(WireDtype dtype, const float* src, std::uint16_t* dst,
            std::size_t n);

/// Decodes `n` 16-bit wire words back to fp32.
void decode(WireDtype dtype, const std::uint16_t* src, float* dst,
            std::size_t n);

/// Fused decode-accumulate: dst[i] += decode(src[i]). One memory pass where
/// decode-into-scratch-then-add would take three; this is the compressed
/// ring's reduce-scatter hot loop. The adds are elementwise (lane i only
/// ever touches dst[i]), so the vectorized path is bit-identical to scalar.
void decode_add(WireDtype dtype, const std::uint16_t* src, float* dst,
                std::size_t n);

// --- candle::parallel-threaded wrappers -----------------------------------
// Chunked over the shared pool with a grain large enough that per-hop ring
// segments below it run inline on the calling (rank/comm) thread; pool
// workers only ever touch the src/dst buffers, never the communicator.

void encode_parallel(WireDtype dtype, const float* src, std::uint16_t* dst,
                     std::size_t n);
void decode_parallel(WireDtype dtype, const std::uint16_t* src, float* dst,
                     std::size_t n);

}  // namespace wire

}  // namespace candle::comm
