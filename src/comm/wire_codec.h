// Wire codec for compressed collectives: fp32 <-> fp16 / bf16 / int8.
//
// The paper shows gradient allreduce dominating step cost as the CANDLE
// benchmarks strong-scale; halving the on-wire bytes is the widest remaining
// lever once kernels are tuned. This module provides the conversion kernels
// the compressed collective paths (communicator.cpp, hvd/fusion.cpp) are
// built on:
//
//  - round-to-nearest-even in both directions (matching IEEE 754 and the
//    F16C/vcvtps2ph hardware behavior), so the scalar fallback and the
//    vectorized path produce bit-identical wire bytes;
//  - runtime dispatch like the GEMM microkernel: an F16C/AVX2 variant is
//    selected once per process when __builtin_cpu_supports says it is safe,
//    else the portable scalar kernel runs;
//  - candle::parallel-threaded wrappers for whole-buffer conversion. The
//    16-bit conversion is elementwise and the int8 wrappers partition on
//    quantization-chunk boundaries, so the thread partitioning cannot change
//    any result — threaded output is bit-identical to serial at any width.
//
// Error bounds (tested in tests/test_codec.cpp): one fp32 -> fp16 -> fp32
// round trip of a finite value in fp16 normal range has relative error
// <= 2^-11; fp32 -> bf16 -> fp32 has relative error <= 2^-8. int8 is
// block-scaled: each kInt8ChunkElems chunk is quantized symmetrically
// against its own absmax, so one round trip has absolute error
// <= chunk_absmax / 254 per element. The compressed allreduce quantizes once
// per ring hop, so a P-rank reduction accumulates at most (P+1) such errors
// per element (see communicator.h); sub-8-bit rounding is lossy enough that
// training uses error-feedback residuals on top (see hvd/fusion.h).
#pragma once

#include <cstddef>
#include <cstdint>

namespace candle::comm {

/// On-wire element encoding for collective payloads. Master accumulation is
/// always fp32; the dtype only selects how bytes cross the (emulated)
/// interconnect. kFp32 is the bit-exact default contract.
enum class WireDtype {
  kFp32,  // no compression: 4 bytes/element, bit-exact
  kFp16,  // IEEE binary16 wire: 2 bytes/element, ~2^-11 relative error/hop
  kBf16,  // bfloat16 wire: 2 bytes/element, ~2^-8 relative error/hop
  kInt8,  // block-scaled int8: 1 byte/element + 4 B scale per chunk
};

/// Number of wire dtypes (fixed-size stats arrays in CommStats).
inline constexpr std::size_t kNumWireDtypes = 4;

/// Elements per int8 quantization chunk: one fp32 absmax scale is stored per
/// chunk, so the metadata overhead is 4/256 = 1.6% of the payload bytes.
/// A power of two so kConvertGrain-aligned parallel splits stay on chunk
/// boundaries.
inline constexpr std::size_t kInt8ChunkElems = 256;

/// Stable index of a dtype for stats arrays / CLI tables.
[[nodiscard]] constexpr std::size_t wire_dtype_index(WireDtype d) {
  return static_cast<std::size_t>(d);
}

/// Bytes one element's payload occupies on the wire (excludes the int8
/// per-chunk scale metadata; see wire_range_bytes for the full cost).
[[nodiscard]] constexpr std::size_t wire_width_bytes(WireDtype d) {
  switch (d) {
    case WireDtype::kFp32: return 4;
    case WireDtype::kFp16: return 2;
    case WireDtype::kBf16: return 2;
    case WireDtype::kInt8: return 1;
  }
  return 4;
}

/// Scale-metadata bytes a contiguous range of `elems` elements carries on
/// the wire: one fp32 absmax per int8 chunk, nothing for other dtypes.
[[nodiscard]] constexpr std::size_t wire_scale_bytes(WireDtype d,
                                                     std::size_t elems) {
  if (d != WireDtype::kInt8 || elems == 0) return 0;
  return sizeof(float) * ((elems + kInt8ChunkElems - 1) / kInt8ChunkElems);
}

/// Total on-wire bytes of a contiguous `elems`-element range: payload plus
/// scale metadata. This is what every CommStats byte counter charges.
[[nodiscard]] constexpr std::size_t wire_range_bytes(WireDtype d,
                                                     std::size_t elems) {
  return elems * wire_width_bytes(d) + wire_scale_bytes(d, elems);
}

/// Human-readable dtype name ("fp32" | "fp16" | "bf16" | "int8").
[[nodiscard]] const char* wire_dtype_name(WireDtype d);

/// Parses a --wire-dtype value; throws InvalidArgument on unknown names.
[[nodiscard]] WireDtype parse_wire_dtype(const char* name);

namespace wire {

// --- int8 wire-image layout -----------------------------------------------
// A compressed wire image lives in a rank's uint16 scratch buffer. For the
// 16-bit dtypes the image is simply n wire words. int8 images are planar:
//
//   [ float scales[n] | uint8 payload[n] ]
//
// The scale plane is sparse: the scale of a range's chunk j lives at
// absolute slot `range_begin + j * kInt8ChunkElems`. Chunking is relative to
// each range's own start, so the disjoint ring segments of a collective own
// disjoint scale slots and can be re-encoded per hop without touching a
// neighbour segment's metadata. The full-size plane trades scratch memory
// (4 B/element, never on the wire) for that independence.

/// uint16 scratch elements needed to hold one wire image of `n` elements.
[[nodiscard]] constexpr std::size_t wire_image_scratch_elems(WireDtype d,
                                                             std::size_t n) {
  switch (d) {
    case WireDtype::kFp32: return 0;
    case WireDtype::kFp16: return n;
    case WireDtype::kBf16: return n;
    case WireDtype::kInt8: return (5 * n + 1) / 2;  // 4n scale + n payload B
  }
  return 0;
}

/// Scale plane of an int8 wire image (prefix of the scratch buffer; the
/// allocation is cache-line aligned, so float access is aligned).
[[nodiscard]] inline float* int8_scales(std::uint16_t* image) {
  return reinterpret_cast<float*>(image);
}
[[nodiscard]] inline const float* int8_scales(const std::uint16_t* image) {
  return reinterpret_cast<const float*>(image);
}

/// Payload plane of an int8 wire image over `n` total elements.
[[nodiscard]] inline std::uint8_t* int8_payload(std::uint16_t* image,
                                                std::size_t n) {
  return reinterpret_cast<std::uint8_t*>(image) + sizeof(float) * n;
}
[[nodiscard]] inline const std::uint8_t* int8_payload(
    const std::uint16_t* image, std::size_t n) {
  return reinterpret_cast<const std::uint8_t*>(image) + sizeof(float) * n;
}

// --- scalar reference conversions (exact RNE; used by tests and as the ----
// --- portable fallback of the dispatched kernels) -------------------------

[[nodiscard]] std::uint16_t f32_to_f16_scalar(float value);
[[nodiscard]] float f16_to_f32_scalar(std::uint16_t bits);
[[nodiscard]] std::uint16_t f32_to_bf16_scalar(float value);
[[nodiscard]] float bf16_to_f32_scalar(std::uint16_t bits);

// --- single-threaded buffer kernels (runtime-dispatched, vectorized) ------

/// Encodes `n` fp32 values into 16-bit wire words of the given dtype.
/// `dtype` must be kFp16 or kBf16 (int8 uses the planar API below).
void encode(WireDtype dtype, const float* src, std::uint16_t* dst,
            std::size_t n);

/// Decodes `n` 16-bit wire words back to fp32.
void decode(WireDtype dtype, const std::uint16_t* src, float* dst,
            std::size_t n);

/// Fused decode-accumulate: dst[i] += decode(src[i]). One memory pass where
/// decode-into-scratch-then-add would take three; this is the compressed
/// ring's reduce-scatter hot loop. The adds are elementwise (lane i only
/// ever touches dst[i]), so the vectorized path is bit-identical to scalar.
void decode_add(WireDtype dtype, const std::uint16_t* src, float* dst,
                std::size_t n);

// --- int8 planar kernels --------------------------------------------------
// All take pre-offset pointers: to operate on range [b, e) of a buffer pass
// (src + b, payload + b, scales + b, e - b), so encoder and decoder always
// agree on the chunk grid. Per chunk: scale = absmax (max over |v| compared
// as unsigned abs bits — associative, NaN-propagating, identical in scalar
// and SIMD), q = clamp(rne(v * 127/absmax), -127, 127), dequant step =
// scale / 127 with v' = q * step (mul then add in decode_add; never an FMA,
// so scalar and AVX2 results match bitwise). An all-zero chunk encodes with
// scale 0 and decodes to exact zeros.

/// Scalar reference encoder (portable; parity-tested against dispatch).
void encode_int8_reference(const float* src, std::uint8_t* payload,
                           float* scales, std::size_t n);
void decode_int8_reference(const std::uint8_t* payload, const float* scales,
                           float* dst, std::size_t n);
void decode_add_int8_reference(const std::uint8_t* payload,
                               const float* scales, float* dst,
                               std::size_t n);

/// Runtime-dispatched (AVX2 when available, else the scalar reference).
void encode_int8(const float* src, std::uint8_t* payload, float* scales,
                 std::size_t n);
void decode_int8(const std::uint8_t* payload, const float* scales, float* dst,
                 std::size_t n);
void decode_add_int8(const std::uint8_t* payload, const float* scales,
                     float* dst, std::size_t n);

/// Error-feedback helper: residual[i] = data[i] - roundtrip(data[i]) where
/// roundtrip encodes then decodes `data` at `dtype` (int8 chunking relative
/// to data[0]). Single pass, fixed-size stack scratch, deterministic at any
/// pool width (it never threads). `dtype` must not be kFp32.
void quantization_residual(WireDtype dtype, const float* data,
                           float* residual, std::size_t n);

// --- candle::parallel-threaded wrappers -----------------------------------
// Chunked over the shared pool with a grain large enough that per-hop ring
// segments below it run inline on the calling (rank/comm) thread; pool
// workers only ever touch the src/dst buffers, never the communicator. The
// int8 wrappers partition on kInt8ChunkElems boundaries so the scale grid —
// and therefore every output bit — is independent of the pool width.

void encode_parallel(WireDtype dtype, const float* src, std::uint16_t* dst,
                     std::size_t n);
void decode_parallel(WireDtype dtype, const std::uint16_t* src, float* dst,
                     std::size_t n);
void encode_int8_parallel(const float* src, std::uint8_t* payload,
                          float* scales, std::size_t n);
void decode_int8_parallel(const std::uint8_t* payload, const float* scales,
                          float* dst, std::size_t n);

}  // namespace wire

}  // namespace candle::comm
