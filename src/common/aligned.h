// 64-byte aligned allocation for numeric buffers.
//
// Tensor storage and the GEMM packing buffers allocate through this
// allocator so (a) the AVX2 microkernel's 32-byte vector loads never
// straddle a cache line at a buffer's start, and (b) buffers handed to
// different pool workers begin on their own cache line, eliminating false
// sharing on the first/last elements of adjacent allocations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace candle {

/// One x86 cache line; also a multiple of the 32-byte AVX2 vector width.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal C++17 allocator returning kCacheLineBytes-aligned storage.
template <typename T>
struct AlignedAllocator {
  using value_type = T;
  static_assert(alignof(T) <= kCacheLineBytes,
                "type alignment exceeds the cache-line allocator");

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kCacheLineBytes}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
};

/// Cache-line aligned float buffer (Tensor storage, GEMM pack panels).
using AlignedVector = std::vector<float, AlignedAllocator<float>>;

/// True when `p` sits on a kCacheLineBytes boundary (alignment tests).
inline bool is_cacheline_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kCacheLineBytes == 0;
}

}  // namespace candle
