// Debug-build logical assertion macros.
//
// ASan catches out-of-bounds reads of the *allocation*, but an in-range yet
// logically wrong index (row/col swapped, off-by-one inside a big backing
// vector) is invisible to it. CANDLE_CHECK_BOUNDS closes that gap: it is
// compiled in when CANDLE_ENABLE_BOUNDS_CHECKS is defined (Debug builds,
// -DCANDLE_BOUNDS_CHECKS=ON, and every sanitizer preset) and compiles to
// nothing otherwise, keeping the NN kernels' hot loops clean in release.
//
// Failures abort via std::abort after printing the site, rather than
// throwing: an index bug is a programming error, and aborting gives the
// sanitizers a precise stack instead of an unwound one.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace candle::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "CANDLE_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

[[noreturn]] inline void bounds_check_failed(unsigned long long index,
                                             unsigned long long size,
                                             const char* file, int line) {
  std::fprintf(stderr,
               "CANDLE_CHECK_BOUNDS failed: index %llu >= size %llu "
               "at %s:%d\n",
               index, size, file, line);
  std::abort();
}

}  // namespace candle::detail

#if defined(CANDLE_ENABLE_BOUNDS_CHECKS)

#define CANDLE_CHECK(expr)                                         \
  ((expr) ? static_cast<void>(0)                                   \
          : ::candle::detail::check_failed(#expr, __FILE__, __LINE__))

#define CANDLE_CHECK_BOUNDS(index, size)                                     \
  ((static_cast<unsigned long long>(index) <                                 \
    static_cast<unsigned long long>(size))                                   \
       ? static_cast<void>(0)                                                \
       : ::candle::detail::bounds_check_failed(                              \
             static_cast<unsigned long long>(index),                         \
             static_cast<unsigned long long>(size), __FILE__, __LINE__))

#else

#define CANDLE_CHECK(expr) static_cast<void>(0)
#define CANDLE_CHECK_BOUNDS(index, size) static_cast<void>(0)

#endif
