#include "common/cli.h"

#include <cstdio>
#include <cstdlib>

#include "common/error.h"
#include "common/string_util.h"

namespace candle {

Cli& Cli::flag(const std::string& name, const std::string& help,
               const std::string& default_value) {
  specs_[name] = Spec{help, default_value, false};
  return *this;
}

Cli& Cli::bool_flag(const std::string& name, const std::string& help) {
  specs_[name] = Spec{help, "false", true};
  return *this;
}

void Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", usage(argv[0]).c_str());
      help_requested_ = true;
      return;
    }
    require(starts_with(arg, "--"), "unexpected positional argument: " + arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = specs_.find(arg);
    require(it != specs_.end(), "unknown flag: --" + arg);
    if (it->second.is_bool) {
      values_[arg] = has_value ? value : "true";
    } else {
      if (!has_value) {
        require(i + 1 < argc, "flag --" + arg + " needs a value");
        value = argv[++i];
      }
      values_[arg] = value;
    }
  }
}

std::string Cli::usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const auto& [name, spec] : specs_) {
    out += strprintf("  --%-20s %s", name.c_str(), spec.help.c_str());
    if (!spec.default_value.empty() && !spec.is_bool)
      out += strprintf(" (default: %s)", spec.default_value.c_str());
    out += "\n";
  }
  return out;
}

std::string Cli::get(const std::string& name) const {
  const auto spec = specs_.find(name);
  require(spec != specs_.end(), "flag not registered: --" + name);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : spec->second.default_value;
}

long long Cli::get_int(const std::string& name) const {
  const std::string v = get(name);
  require(!v.empty(), "flag --" + name + " has no value");
  return std::strtoll(v.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name) const {
  const std::string v = get(name);
  require(!v.empty(), "flag --" + name + " has no value");
  return std::strtod(v.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace candle
