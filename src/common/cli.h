// Tiny command-line flag parser for the bench/example binaries.
//
// Supports `--flag value`, `--flag=value`, and boolean `--flag`. Unknown
// flags raise InvalidArgument so typos in experiment scripts fail loudly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace candle {

/// Parsed command line; construct from main()'s argc/argv after registering
/// the accepted flags.
class Cli {
 public:
  Cli& flag(const std::string& name, const std::string& help,
            const std::string& default_value = "");
  Cli& bool_flag(const std::string& name, const std::string& help);

  /// Parses argv; throws InvalidArgument on unknown flags. Recognizes
  /// --help and, when seen, prints usage and sets `help_requested()`.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] std::string usage(const std::string& program) const;

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] long long get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

 private:
  struct Spec {
    std::string help;
    std::string default_value;
    bool is_bool = false;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  bool help_requested_ = false;
};

}  // namespace candle
