// Exception hierarchy for the CANDLE reproduction library.
//
// Per the C++ Core Guidelines (E.2/E.14), errors that callers cannot locally
// recover from are reported by throwing a type derived from std::exception.
#pragma once

#include <stdexcept>
#include <string>

namespace candle {

/// Base class for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid argument / shape mismatch / bad configuration.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Filesystem / parsing failures in the io substrate.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Failures in the communication substrate (mismatched collective calls,
/// rank out of range, ...).
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

/// Device out-of-memory. The simulator throws this when a configuration
/// exceeds device memory (e.g. NT3 with batch size >= 50 on a 16 GB V100,
/// or P1B3 linear batch scaling at 192/384 GPUs, as reported in the paper).
class OutOfMemory : public Error {
 public:
  explicit OutOfMemory(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgument with `msg` when `cond` is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvalidArgument(msg);
}

}  // namespace candle
