#include "common/lock_order.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace candle::lock_order {
namespace {

struct Held {
  int level;
  const char* name;
};

// Per-thread stack of tracked locks, pushed in acquisition order. A fixed
// POD array rather than a vector: trivially constructible and destructible,
// so the tracker stays valid during static initialization and — critically —
// during thread/process teardown, where e.g. the parallel Pool's static
// destructor still locks its mutexes after thread_local destructors ran.
constexpr std::size_t kMaxHeld = 32;
thread_local Held t_held[kMaxHeld];
thread_local std::size_t t_depth = 0;

std::atomic<std::size_t> g_violations{0};

// Handler state; guarded by a plain std::mutex (never an AnnotatedMutex —
// the validator must not recurse into itself).
// candle-analyze: allow(lock-level)
std::mutex g_handler_mutex;
ViolationHandler g_handler;  // empty => default print-and-abort

void default_handler(const std::string& diagnostic) {
  std::fprintf(stderr, "candle lock_order: %s\n", diagnostic.c_str());
  std::abort();
}

void report(const std::string& diagnostic) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  ViolationHandler handler;
  {
    std::lock_guard<std::mutex> lock(g_handler_mutex);
    handler = g_handler;
  }
  if (handler) {
    handler(diagnostic);
  } else {
    default_handler(diagnostic);
  }
}

}  // namespace

namespace detail {

std::atomic<int> g_state{-1};

int init_state() {
#if defined(CANDLE_ENABLE_LOCK_ORDER_CHECKS)
  int on = 1;
#else
  int on = 0;
#endif
  if (const char* env = std::getenv("CANDLE_LOCK_ORDER")) {
    if (env[0] == '0' && env[1] == '\0') on = 0;
    if (env[0] == '1' && env[1] == '\0') on = 1;
  }
  // Last writer wins on a first-use race; every writer computes the same
  // value, so the state is still deterministic.
  g_state.store(on, std::memory_order_relaxed);
  return on;
}

void acquire_slow(int lvl, const char* name) {
  if (t_depth > 0 && t_held[t_depth - 1].level <= lvl) {
    const Held& holding = t_held[t_depth - 1];
    report("acquiring '" + std::string(name) + "' (level " +
           std::to_string(lvl) + ") while holding '" + holding.name +
           "' (level " + std::to_string(holding.level) +
           "): lock levels must be strictly descending — see the lock table "
           "in EXPERIMENTS.md \"Static analysis\"");
  }
  // Track the lock even after a reported violation so unlock stays balanced.
  push_slow(lvl, name);
}

void push_slow(int lvl, const char* name) {
  if (t_depth < kMaxHeld) t_held[t_depth++] = Held{lvl, name};
  // A thread holding kMaxHeld tracked locks is itself a hierarchy bug; the
  // descending-level rule bounds depth by the level count, so saturating
  // (dropping the entry) cannot happen on a conforming execution.
}

void release_slow(int lvl) {
  // Remove the most recent entry at this level. Scoped MutexLock releases
  // are LIFO; a condvar wait unlocks the innermost lock. Unmatched levels
  // (validation enabled between acquire and release) are ignored.
  for (std::size_t i = t_depth; i > 0; --i) {
    if (t_held[i - 1].level == lvl) {
      for (std::size_t j = i - 1; j + 1 < t_depth; ++j)
        t_held[j] = t_held[j + 1];
      --t_depth;
      return;
    }
  }
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

void set_violation_handler(ViolationHandler handler) {
  std::lock_guard<std::mutex> lock(g_handler_mutex);
  g_handler = std::move(handler);
}

std::size_t violation_count() {
  return g_violations.load(std::memory_order_relaxed);
}

std::size_t held_count() { return t_depth; }

}  // namespace candle::lock_order
