// Runtime lock-hierarchy validator.
//
// The repo-wide concurrency contract orders every AnnotatedMutex on a single
// numeric hierarchy: a thread may only acquire a mutex whose level is
// *strictly lower* than the level of every lock it already holds (locks are
// acquired in descending-level order), which makes lock-order deadlocks
// impossible by construction. `tools/analyze/run.py` proves the property
// statically from the CANDLE_LOCK_LEVEL declarations; this module is the
// dynamic half: a per-thread held-lock stack keyed by the same levels, so
// TSan/debug runs also validate the declared hierarchy on real executions.
//
// The tracker is always compiled but dynamically gated: release builds pay
// one relaxed atomic load per lock()/unlock() (default off), sanitizer and
// debug builds default it on (CANDLE_ENABLE_LOCK_ORDER_CHECKS, set by
// cmake/Sanitizers.cmake next to the bounds checks). `CANDLE_LOCK_ORDER=0|1`
// in the environment overrides the compiled default; tests flip it with
// set_enabled().
//
// On a violation the diagnostic names both mutexes and both levels; the
// default handler prints it and aborts (a lock-order bug is a latent
// deadlock — failing the run is the point). Tests install a capturing
// handler instead via set_violation_handler().
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>

namespace candle::lock_order {

/// The lock hierarchy: one level per AnnotatedMutex site, acquired in
/// strictly descending order. Gaps leave room for future subsystems; the
/// full table (holder, what the lock protects, what may nest inside it)
/// lives in EXPERIMENTS.md "Static analysis".
namespace level {
inline constexpr int kServeLoadgen = 86;     // serve loadgen failure capture
inline constexpr int kServeAdmission = 80;   // serve::MicroBatcher::mutex_
inline constexpr int kBatchPipeline = 70;    // nn::BatchPipeline::mutex_
inline constexpr int kBucketScheduler = 60;  // hvd::BucketScheduler::mutex_
inline constexpr int kRunnerResult = 50;     // candle runner result_mutex
inline constexpr int kParallelRegion = 40;   // parallel Pool::region_mutex_
inline constexpr int kParallelDispatch = 30; // parallel Pool::mutex_
inline constexpr int kCommRendezvous = 20;   // comm::World::reg_mutex_
inline constexpr int kPhaseLedger = 14;      // hvd::PhaseLedger::mutex_
inline constexpr int kTimeline = 12;         // trace::Timeline::mutex_
inline constexpr int kLog = 10;              // common/log sink mutex
}  // namespace level

namespace detail {
/// Hot-path gate; initialized from the build default and the
/// CANDLE_LOCK_ORDER environment variable at first use.
extern std::atomic<int> g_state;  // -1 uninitialized, 0 off, 1 on
int init_state();
void acquire_slow(int lvl, const char* name);
void push_slow(int lvl, const char* name);
void release_slow(int lvl);
}  // namespace detail

/// True when acquisitions are being validated.
inline bool enabled() {
  const int s = detail::g_state.load(std::memory_order_relaxed);
  return (s < 0 ? detail::init_state() : s) != 0;
}

/// Turns validation on/off at runtime (tests; overrides build default).
void set_enabled(bool on);

/// Handler invoked with the diagnostic on every violation. Passing nullptr
/// restores the default (print to stderr and abort). The handler runs on
/// the violating thread with the lock stack *not yet* updated.
using ViolationHandler = std::function<void(const std::string& diagnostic)>;
void set_violation_handler(ViolationHandler handler);

/// Total violations observed since process start (monotonic; counted even
/// when a custom handler swallows them).
std::size_t violation_count();

/// Locks the calling thread currently holds (tracked ones only).
std::size_t held_count();

/// Bookkeeping hooks, called by AnnotatedMutex. note_acquire validates the
/// would-be acquisition against the thread's held stack *before* blocking,
/// so an inversion that would deadlock is still reported.
inline void note_acquire(int lvl, const char* name) {
  if (enabled()) detail::acquire_slow(lvl, name);
}
inline void note_release(int lvl) {
  if (enabled()) detail::release_slow(lvl);
}

/// A successful try_lock joins the held stack without order validation
/// (a non-blocking acquisition cannot deadlock).
inline void note_try_acquired(int lvl, const char* name) {
  if (enabled()) detail::push_slow(lvl, name);
}

}  // namespace candle::lock_order
