#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/thread_annotations.h"

namespace candle {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Serializes sink writes so concurrent rank threads do not interleave lines.
// Innermost lock of the hierarchy: any subsystem may log while holding its
// own lock, so nothing may be acquired under g_mutex.
AnnotatedMutex g_mutex{CANDLE_LOCK_LEVEL(lock_order::level::kLog),
                       "log::g_mutex"};
std::FILE* g_sink CANDLE_GUARDED_BY(g_mutex) = nullptr;  // nullptr => stderr

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_sink(std::FILE* sink) {
  MutexLock lock(g_mutex);
  g_sink = sink;
}

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  using namespace std::chrono;
  const auto now = duration_cast<milliseconds>(
                       steady_clock::now().time_since_epoch())
                       .count();
  MutexLock lock(g_mutex);
  std::FILE* out = g_sink != nullptr ? g_sink : stderr;
  std::fprintf(out, "[%10lld.%03lld] [%s] %s\n",
               static_cast<long long>(now / 1000),
               static_cast<long long>(now % 1000), tag(level), msg.c_str());
}

}  // namespace candle
