// Minimal leveled logger.
//
// Thread-safe: concurrent log lines from rank threads are serialized so the
// output of real-mode multi-rank runs stays readable.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace candle {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirects log output (default stderr). Passing nullptr restores stderr.
/// Thread-safe; the sink must stay open until replaced.
void set_log_sink(std::FILE* sink);

/// Emits one line (timestamp, level tag, message) to the sink.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace candle
