#include "common/parallel.h"

#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>

#include "common/error.h"
#include "common/thread_annotations.h"

namespace candle::parallel {
namespace {

// Set while the current thread is inside a parallel region — on a pool
// worker for the whole dispatch, on the calling thread while it executes
// its own chunk. Any parallel_for seen with this flag runs inline, which
// makes nested regions (gemm inside a parallelized layer loop) safe.
thread_local bool tl_in_parallel = false;

/// Process-wide worker pool. Thread 0 is always the calling thread; the
/// pool owns threads 1..width-1. Regions are serialized by region_mutex_:
/// concurrent top-level callers (rank-per-thread tests) queue rather than
/// interleave, so chunk indices always map to one region at a time.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t width() {
    MutexLock region(region_mutex_);
    return width_locked();
  }

  void resize(std::size_t n) {
    require(n >= 1, "parallel::set_num_threads: thread count must be >= 1");
    MutexLock region(region_mutex_);
    if (started_ && n == width_locked()) return;
    stop_workers();
    spawn_workers(n);
  }

  /// Runs fn(chunk) once for every chunk in [0, chunks); chunk i is
  /// statically owned by thread (i % width). The caller participates as
  /// thread 0 and the call returns after every chunk completed, rethrowing
  /// the exception of the lowest-indexed failing chunk.
  void run(std::size_t chunks, const std::function<void(std::size_t)>& fn) {
    MutexLock region(region_mutex_);
    if (!started_) spawn_workers(default_width());
    errors_.assign(chunks, nullptr);
    {
      MutexLock lock(mutex_);
      chunk_fn_ = &fn;
      chunks_ = chunks;
      pending_ = workers_.size();
      ++generation_;
    }
    wake_.notify_all();
    run_chunks(0, chunks, fn);
    {
      MutexLock lock(mutex_);
      done_.wait(mutex_, [this]() CANDLE_REQUIRES(mutex_) {
        return pending_ == 0;
      });
      chunk_fn_ = nullptr;
    }
    for (std::exception_ptr& err : errors_)
      if (err) std::rethrow_exception(err);
  }

 private:
  Pool() = default;

  ~Pool() {
    MutexLock region(region_mutex_);
    stop_workers();
  }

  std::size_t width_locked() CANDLE_REQUIRES(region_mutex_) {
    if (!started_) spawn_workers(default_width());
    return workers_.size() + 1;
  }

  static std::size_t default_width() {
    const std::size_t hw = std::thread::hardware_concurrency();
    return detail::parse_thread_count(std::getenv("CANDLE_NUM_THREADS"),
                                      hw > 0 ? hw : 1);
  }

  void spawn_workers(std::size_t n) CANDLE_REQUIRES(region_mutex_) {
    started_ = true;
    // Written only while no worker exists (before the spawns below, after
    // the joins in stop_workers), so workers can read it lock-free.
    stride_ = n;
    // Workers must start at the *current* generation: it keeps counting
    // across resizes, and a fresh worker that compared against 0 would
    // treat the previous region's bump as a dispatch and run a null fn.
    std::uint64_t gen0 = 0;
    {
      MutexLock lock(mutex_);
      gen0 = generation_;
    }
    workers_.reserve(n - 1);
    for (std::size_t id = 1; id < n; ++id)
      workers_.emplace_back([this, id, gen0] { worker_main(id, gen0); });
  }

  void stop_workers() CANDLE_REQUIRES(region_mutex_) {
    {
      MutexLock lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
    MutexLock lock(mutex_);
    stopping_ = false;
  }

  /// Executes the chunks this thread owns: id, id + width, id + 2*width...
  /// The static stride assignment keeps ownership deterministic, though
  /// determinism of results only needs the chunk *boundaries* fixed.
  void run_chunks(std::size_t id, std::size_t chunks,
                  const std::function<void(std::size_t)>& fn) {
    const std::size_t stride = stride_;
    tl_in_parallel = true;
    for (std::size_t c = id; c < chunks; c += stride) {
      try {
        fn(c);
      } catch (...) {
        errors_[c] = std::current_exception();
      }
    }
    tl_in_parallel = false;
  }

  void worker_main(std::size_t id, std::uint64_t seen) {
    while (true) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t chunks = 0;
      {
        MutexLock lock(mutex_);
        wake_.wait(mutex_, [&]() CANDLE_REQUIRES(mutex_) {
          return stopping_ || generation_ != seen;
        });
        if (stopping_) return;
        seen = generation_;
        fn = chunk_fn_;
        chunks = chunks_;
      }
      run_chunks(id, chunks, *fn);
      {
        MutexLock lock(mutex_);
        --pending_;
        if (pending_ == 0) done_.notify_all();
      }
    }
  }

  /// Serializes whole regions (and resize) against each other. Held across
  /// the caller's own chunk execution, so chunk bodies may acquire any lock
  /// below kParallelRegion (dispatch, rendezvous, timeline, log) but never a
  /// scheduler-level lock — the lock-hierarchy analyzer enforces this.
  AnnotatedMutex region_mutex_{
      CANDLE_LOCK_LEVEL(lock_order::level::kParallelRegion),
      "parallel::Pool::region_mutex_"};
  bool started_ CANDLE_GUARDED_BY(region_mutex_) = false;
  std::vector<std::thread> workers_ CANDLE_GUARDED_BY(region_mutex_);
  /// Per-chunk exceptions; distinct chunks write distinct slots, and the
  /// vector is only reshaped between regions. Not lock-protected by design.
  std::vector<std::exception_ptr> errors_;
  /// Total thread count (workers + caller); see spawn_workers for why this
  /// is safe to read without a lock.
  std::size_t stride_ = 1;

  /// Dispatch state for the region in flight. Acquired while holding
  /// region_mutex_ (the repo's one intentionally nested pair).
  AnnotatedMutex mutex_{CANDLE_LOCK_LEVEL(lock_order::level::kParallelDispatch),
                        "parallel::Pool::mutex_"};
  AnnotatedCondVar wake_;
  AnnotatedCondVar done_;
  const std::function<void(std::size_t)>* chunk_fn_
      CANDLE_GUARDED_BY(mutex_) = nullptr;
  std::size_t chunks_ CANDLE_GUARDED_BY(mutex_) = 0;
  std::size_t pending_ CANDLE_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ CANDLE_GUARDED_BY(mutex_) = 0;
  bool stopping_ CANDLE_GUARDED_BY(mutex_) = false;
};

}  // namespace

namespace detail {

std::vector<std::pair<std::size_t, std::size_t>> partition(
    std::size_t n, std::size_t grain, std::size_t threads) {
  require(grain >= 1, "parallel_for: grain must be >= 1");
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  if (n == 0) return chunks;
  // Floor division: with count <= n / grain every chunk holds at least
  // `grain` indices (the single-chunk n < grain case is the only exception),
  // so dispatch overhead is always amortized over at least one grain.
  const std::size_t max_by_grain = n / grain;
  const std::size_t count =
      std::max<std::size_t>(1, std::min(threads, max_by_grain));
  chunks.reserve(count);
  // Sizes differ by at most one: the first (n % count) chunks get the
  // extra index, so the table is a pure function of (n, grain, threads).
  const std::size_t base = n / count;
  const std::size_t extra = n % count;
  std::size_t at = 0;
  for (std::size_t c = 0; c < count; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    chunks.emplace_back(at, at + len);
    at += len;
  }
  return chunks;
}

std::size_t parse_thread_count(const char* text, std::size_t fallback) {
  if (text == nullptr || *text == '\0') return fallback;
  char* end = nullptr;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || v == 0) return fallback;
  return static_cast<std::size_t>(v);
}

}  // namespace detail

std::size_t num_threads() { return Pool::instance().width(); }

void set_num_threads(std::size_t n) { Pool::instance().resize(n); }

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const ChunkFn& fn) {
  require(grain >= 1, "parallel_for: grain must be >= 1");
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Inline paths: nested region, single-thread pool, or a range too small
  // to split. Running fn over the whole range reproduces serial behavior.
  if (tl_in_parallel || n <= grain) {
    fn(begin, end);
    return;
  }
  const std::size_t width = num_threads();
  if (width == 1) {
    fn(begin, end);
    return;
  }
  const auto chunks = detail::partition(n, grain, width);
  if (chunks.size() == 1) {
    fn(begin, end);
    return;
  }
  Pool::instance().run(chunks.size(), [&](std::size_t c) {
    fn(begin + chunks[c].first, begin + chunks[c].second);
  });
}

}  // namespace candle::parallel
