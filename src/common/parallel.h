// Shared intra-node parallel runtime: one lazily-initialized thread pool
// feeding every hot loop in the repo (GEMM tiles, im2col, elementwise ops,
// optimizer updates, fusion-buffer pack/unpack, parallel CSV parsing).
//
// Design goals, in order:
//
//  1. Determinism. parallel_for partitions [begin, end) into contiguous
//     chunks computed only from (range, grain, thread count) — never from
//     scheduling order — and parallel_reduce combines per-chunk partials in
//     ascending chunk index. For a fixed CANDLE_NUM_THREADS the result of
//     every parallel region is bit-identical run to run, which is what lets
//     the golden tests and the TSan preset gate this code.
//
//  2. Safety. Exceptions thrown by chunk bodies are captured and the
//     lowest-indexed one is rethrown on the calling thread after the region
//     completes. Nested parallel regions (a chunk body calling parallel_for
//     again, directly or through gemm) run inline on the current thread, so
//     the pool can never deadlock on itself.
//
//  3. One pool. The pool is process-wide and serializes concurrent regions
//     from different threads (the rank-per-thread comm tests call gemm from
//     many ranks at once); workers are spawned once and resized only by
//     set_num_threads. `CANDLE_NUM_THREADS=1` (or set_num_threads(1))
//     disables threading entirely — every region runs inline, reproducing
//     the pre-pool serial behavior exactly.
//
// Thread count resolution on first use: CANDLE_NUM_THREADS if set and
// valid, else std::thread::hardware_concurrency(). Benches expose the same
// knob as a --threads CLI flag via set_num_threads.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace candle::parallel {

/// Chunk body: processes the half-open index range [chunk_begin, chunk_end).
using ChunkFn = std::function<void(std::size_t, std::size_t)>;

/// Configured parallel width (callers + workers), >= 1. First call
/// initializes the pool from CANDLE_NUM_THREADS / hardware_concurrency.
std::size_t num_threads();

/// Resizes the pool to `n` total threads (n == 1 disables threading).
/// Blocks until in-flight regions finish; safe to call between regions at
/// any point in the process lifetime. Throws InvalidArgument for n == 0.
void set_num_threads(std::size_t n);

/// Runs fn over [begin, end) split into contiguous chunks of at least
/// `grain` indices (grain >= 1), at most one chunk per thread. The chunk
/// boundaries depend only on (end - begin, grain, num_threads()). Blocks
/// until every chunk finished; rethrows the lowest-chunk-index exception.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const ChunkFn& fn);

namespace detail {
/// Deterministic chunk table for [0, n): at most `threads` chunks of at
/// least `grain` indices, sizes differing by at most one, in index order.
/// Exposed for the partitioning unit tests.
std::vector<std::pair<std::size_t, std::size_t>> partition(
    std::size_t n, std::size_t grain, std::size_t threads);

/// Parses a CANDLE_NUM_THREADS-style value: returns the parsed count, or
/// `fallback` when `text` is null, empty, non-numeric, or zero.
std::size_t parse_thread_count(const char* text, std::size_t fallback);
}  // namespace detail

/// Deterministic map-reduce: partitions [begin, end) like parallel_for,
/// evaluates `map(chunk_begin, chunk_end)` per chunk, and folds the chunk
/// partials into `init` with `combine` in ascending chunk order — the
/// float result is reproducible for a fixed thread count.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                  T init, const MapFn& map, const CombineFn& combine) {
  if (begin >= end) return init;
  const auto chunks = detail::partition(end - begin, grain, num_threads());
  std::vector<T> partials(chunks.size(), init);
  parallel_for(0, chunks.size(), 1,
               [&](std::size_t c0, std::size_t c1) {
                 for (std::size_t c = c0; c < c1; ++c)
                   partials[c] = map(begin + chunks[c].first,
                                     begin + chunks[c].second);
               });
  T acc = init;
  for (const T& p : partials) acc = combine(acc, p);
  return acc;
}

}  // namespace candle::parallel
