#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace candle {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  require(n > 0, "Rng::uniform_index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

void Rng::shuffle(std::vector<std::size_t>& v) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(v[i - 1], v[j]);
  }
}

Rng Rng::fork(std::uint64_t k) const {
  // Mix the parent state with the stream id; both go through splitmix in the
  // child constructor, so nearby k values yield decorrelated streams.
  return Rng(s_[0] ^ (0xA3EC647659359ACDULL * (k + 1)) ^ rotl(s_[2], 31));
}

}  // namespace candle
