// Deterministic, fast pseudo-random number generation.
//
// All stochastic behaviour in the library (weight init, dropout, synthetic
// data, simulated jitter) flows through Rng so experiments are reproducible
// from a single seed. The core generator is xoshiro256++ (public-domain
// algorithm by Blackman & Vigna), seeded through splitmix64.
#pragma once

#include <cstdint>
#include <vector>

namespace candle {

/// xoshiro256++ generator with convenience distributions.
///
/// Not thread-safe; give each rank/thread its own Rng (see `fork`).
class Rng {
 public:
  /// Seeds the four 64-bit state words via splitmix64 from `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw: true with probability p.
  bool bernoulli(double p);

  /// In-place Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<std::size_t>& v);

  /// Derives an independent child generator; stream `k` is decorrelated from
  /// the parent and from other k values. Used to give each rank its own RNG.
  Rng fork(std::uint64_t k) const;

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace candle
