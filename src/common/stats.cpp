#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace candle {

void Summary::add(double v) { values_.push_back(v); }

void Summary::add_all(const std::vector<double>& values) {
  values_.insert(values_.end(), values.begin(), values.end());
}

double Summary::mean() const {
  if (values_.empty()) return 0.0;
  double total = 0.0;
  for (double v : values_) total += v;
  return total / static_cast<double>(values_.size());
}

double Summary::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

double Summary::min() const {
  require(!values_.empty(), "Summary::min: empty sample");
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::max() const {
  require(!values_.empty(), "Summary::max: empty sample");
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::percentile(double q) const {
  require(!values_.empty(), "Summary::percentile: empty sample");
  require(q >= 0.0 && q <= 100.0, "Summary::percentile: q in [0, 100]");
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace candle
