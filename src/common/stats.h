// Descriptive statistics over a sample of doubles.
#pragma once

#include <cstddef>
#include <vector>

namespace candle {

/// Accumulating summary: count/mean/stddev/min/max plus percentiles over
/// the retained sample.
class Summary {
 public:
  void add(double v);
  void add_all(const std::vector<double>& values);

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] double mean() const;
  /// Population standard deviation (0 for fewer than 2 samples).
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated percentile, q in [0, 100].
  [[nodiscard]] double percentile(double q) const;

 private:
  std::vector<double> values_;
};

}  // namespace candle
