// Wall-clock stopwatch over std::chrono::steady_clock.
#pragma once

#include <chrono>

namespace candle {

/// Measures elapsed wall-clock time; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace candle
