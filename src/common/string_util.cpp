#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace candle {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string format_seconds(double s) {
  if (s < 0) return "-" + format_seconds(-s);
  if (s < 1.0) return strprintf("%.0f ms", s * 1e3);
  if (s < 180.0) return strprintf("%.2f s", s);
  const int minutes = static_cast<int>(s / 60.0);
  return strprintf("%dm %02ds", minutes, static_cast<int>(s - 60.0 * minutes));
}

std::string format_bytes(double bytes) {
  if (bytes < 0) return "-" + format_bytes(-bytes);
  if (bytes < 1024.0) return strprintf("%.0f B", bytes);
  if (bytes < 1024.0 * 1024.0) return strprintf("%.1f KB", bytes / 1024.0);
  if (bytes < 1024.0 * 1024.0 * 1024.0)
    return strprintf("%.1f MB", bytes / (1024.0 * 1024.0));
  return strprintf("%.2f GB", bytes / (1024.0 * 1024.0 * 1024.0));
}

std::string strprintf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace candle
