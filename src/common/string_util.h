// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace candle {

/// Splits `s` on `delim`; empty fields are preserved ("a,,b" -> 3 fields).
std::vector<std::string> split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True when `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Formats seconds for human output: "12.34 s", "843 ms", "3m 21s".
std::string format_seconds(double s);

/// Formats a byte count: "597.0 MB", "1.5 GB", "128 B".
std::string format_bytes(double bytes);

/// printf-style formatting into std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace candle
