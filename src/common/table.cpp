#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/string_util.h"

namespace candle {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::string& label,
                            const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(strprintf("%.2f", v));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << "| " << cell << std::string(width[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < headers_.size(); ++c)
      os << "+" << std::string(width[c] + 2, '-');
    os << "+\n";
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(const std::string& caption) const {
  if (!caption.empty()) std::printf("%s\n", caption.c_str());
  std::printf("%s", to_string().c_str());
}

}  // namespace candle
