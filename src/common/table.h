// ASCII table renderer used by the benchmark harness to print rows in the
// same layout as the paper's tables and figure series.
#pragma once

#include <string>
#include <vector>

namespace candle {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each double with `%.2f`.
  void add_row_numeric(const std::string& label, const std::vector<double>& values);

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

  /// Renders the table with a header rule and column alignment.
  [[nodiscard]] std::string to_string() const;

  /// Renders in machine-friendly CSV (used to dump series for plotting).
  [[nodiscard]] std::string to_csv() const;

  /// Prints `to_string()` to stdout with an optional caption line.
  void print(const std::string& caption = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace candle
