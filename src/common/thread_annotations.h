// Clang thread-safety annotations and annotated synchronization primitives.
//
// Clang's -Wthread-safety analysis proves lock discipline at compile time:
// every read/write of a CANDLE_GUARDED_BY(mu) member must happen while `mu`
// is held, or the build fails. GCC defines the macros away, so the
// annotations cost nothing outside the clang lint job.
//
// The rank-per-thread collectives synchronize payload data with barriers
// (which the analysis cannot model); the *rendezvous metadata* — buffer
// registrations, timeline events, log sinks — is mutex-protected and fully
// annotated. Convention: shared members carry CANDLE_GUARDED_BY, public
// entry points that take the lock internally carry CANDLE_EXCLUDES, and
// private helpers that expect the caller to hold it carry CANDLE_REQUIRES.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/lock_order.h"

#if defined(__clang__)
#define CANDLE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CANDLE_THREAD_ANNOTATION(x)
#endif

#define CANDLE_CAPABILITY(x) CANDLE_THREAD_ANNOTATION(capability(x))
#define CANDLE_SCOPED_CAPABILITY CANDLE_THREAD_ANNOTATION(scoped_lockable)
#define CANDLE_GUARDED_BY(x) CANDLE_THREAD_ANNOTATION(guarded_by(x))
#define CANDLE_PT_GUARDED_BY(x) CANDLE_THREAD_ANNOTATION(pt_guarded_by(x))
#define CANDLE_REQUIRES(...) \
  CANDLE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define CANDLE_ACQUIRE(...) \
  CANDLE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CANDLE_TRY_ACQUIRE(...) \
  CANDLE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define CANDLE_RELEASE(...) \
  CANDLE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define CANDLE_EXCLUDES(...) \
  CANDLE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define CANDLE_RETURN_CAPABILITY(x) CANDLE_THREAD_ANNOTATION(lock_returned(x))
#define CANDLE_NO_THREAD_SAFETY_ANALYSIS \
  CANDLE_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace candle {

/// Declares the hierarchy level of an AnnotatedMutex. Every AnnotatedMutex
/// in src/ must be constructed with a level (use the constants in
/// candle::lock_order::level) and a diagnostic name; tools/analyze/run.py
/// rejects undeclared mutexes and statically checks that locks are only
/// acquired in strictly descending-level order, and common/lock_order.h
/// validates the same property dynamically in debug/sanitizer builds.
#define CANDLE_LOCK_LEVEL(n) (n)

/// std::mutex wrapper declared as a capability so -Wthread-safety can track
/// acquisition. Satisfies BasicLockable (AnnotatedCondVar waits on it).
/// Carries its CANDLE_LOCK_LEVEL and a diagnostic name for the lock-order
/// validator; a condvar wait's unlock/relock goes through the same hooks,
/// so the held-lock stack stays accurate across waits.
class CANDLE_CAPABILITY("mutex") AnnotatedMutex {
 public:
  constexpr AnnotatedMutex(int level, const char* name)
      : level_(level), name_(name) {}
  AnnotatedMutex(const AnnotatedMutex&) = delete;
  AnnotatedMutex& operator=(const AnnotatedMutex&) = delete;

  void lock() CANDLE_ACQUIRE() {
    lock_order::note_acquire(level_, name_);
    mutex_.lock();
  }
  void unlock() CANDLE_RELEASE() {
    mutex_.unlock();
    lock_order::note_release(level_);
  }
  bool try_lock() CANDLE_TRY_ACQUIRE(true) {
    // try_lock cannot deadlock, so out-of-order try-acquisition is legal;
    // on success the lock still joins the held stack so later blocking
    // acquisitions are checked against it.
    if (!mutex_.try_lock()) return false;
    lock_order::note_try_acquired(level_, name_);
    return true;
  }

  [[nodiscard]] constexpr int level() const { return level_; }
  [[nodiscard]] constexpr const char* name() const { return name_; }

 private:
  // The wrapped lock itself — the one raw std::mutex allowed in src/.
  // candle-analyze: allow(lock-level)
  std::mutex mutex_;
  int level_;
  const char* name_;
};

/// RAII lock over AnnotatedMutex (std::lock_guard is not annotated, so
/// using it on an AnnotatedMutex would defeat the analysis).
class CANDLE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(AnnotatedMutex& mutex) CANDLE_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() CANDLE_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  AnnotatedMutex& mutex_;
};

/// Condition variable usable with AnnotatedMutex. wait() declares
/// CANDLE_REQUIRES(mutex): the analysis enforces that callers hold the lock,
/// matching condition_variable_any's contract.
class AnnotatedCondVar {
 public:
  AnnotatedCondVar() = default;
  AnnotatedCondVar(const AnnotatedCondVar&) = delete;
  AnnotatedCondVar& operator=(const AnnotatedCondVar&) = delete;

  void wait(AnnotatedMutex& mutex) CANDLE_REQUIRES(mutex) { cv_.wait(mutex); }

  template <typename Predicate>
  void wait(AnnotatedMutex& mutex, Predicate pred) CANDLE_REQUIRES(mutex) {
    while (!pred()) cv_.wait(mutex);
  }

  /// Deadline wait (absolute time point), predicate form only: returns the
  /// predicate's value at wakeup (false = the deadline passed with the
  /// predicate still false). The serving micro-batcher's SLO timer is built
  /// on this.
  template <typename Clock, typename Duration, typename Predicate>
  bool wait_until(AnnotatedMutex& mutex,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Predicate pred) CANDLE_REQUIRES(mutex) {
    return cv_.wait_until(mutex, deadline, pred);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace candle
