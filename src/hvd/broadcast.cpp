#include "hvd/broadcast.h"

namespace candle::hvd {

double broadcast_parameters(Context& ctx, const std::vector<Tensor*>& tensors,
                            std::size_t root) {
  const double negotiate_start = ctx.now();
  // Negotiation: every rank announces readiness; resolves when the slowest
  // rank (typically the slowest data loader) arrives.
  ctx.comm().barrier();
  const double bcast_start = ctx.now();
  ctx.record(trace::kNegotiateBroadcast, "broadcast", negotiate_start,
             bcast_start - negotiate_start);
  ctx.record_phase(trace::kNegotiateBroadcast, bcast_start - negotiate_start);

  for (Tensor* t : tensors) ctx.comm().broadcast(t->values(), root);

  ctx.record(trace::kMpiBroadcast, "broadcast", bcast_start,
             ctx.now() - bcast_start);
  return bcast_start - negotiate_start;
}

}  // namespace candle::hvd
