// BroadcastGlobalVariablesHook.
//
// "Add hvd.BroadcastGlobalVariablesHook(0) to the callbacks to broadcast
// initial variable states from rank 0 to all other processes. This step
// ensures consistent initialization of all workers when training is started
// with random weights." (paper §2.3.2)
//
// The negotiate phase of this broadcast is where the paper's data-loading
// skew shows up (Figs 7b/12/19): ranks arrive at the broadcast only after
// finishing their own CSV load, so the negotiation stalls on the slowest
// loader. In real mode the skew is whatever the threads actually did; the
// simulator models it explicitly.
#pragma once

#include <cstdint>
#include <vector>

#include "hvd/context.h"
#include "nn/model.h"

namespace candle::hvd {

/// Broadcasts every tensor in `tensors` from `root` to all ranks, recording
/// NEGOTIATE_BROADCAST (barrier wait) and MPI_BCAST (data movement) events
/// to the context's timeline and the negotiate duration to its PhaseLedger
/// (both shared across ranks and internally synchronized).
/// Returns the seconds this rank spent in the negotiate phase.
///
/// Thread contract: called concurrently from every rank thread; `tensors`
/// must be the rank's own (thread-local) parameter list — the collective
/// synchronizes the payload with barriers, not locks.
double broadcast_parameters(Context& ctx, const std::vector<Tensor*>& tensors,
                            std::size_t root = 0);

/// Keras-style callback performing the broadcast at on_train_begin.
class BroadcastGlobalVariablesHook final : public nn::Callback {
 public:
  explicit BroadcastGlobalVariablesHook(Context& ctx, std::size_t root = 0)
      : ctx_(&ctx), root_(root) {}

  void on_train_begin(nn::Model& model) override {
    // Channel-sharded parameters are rank-local by construction (each rank
    // owns a different weight slice) — broadcasting them from root would
    // clobber every other rank's shard, so only replicated parameters are
    // synchronized.
    const std::vector<Tensor*> params = model.parameters();
    const std::vector<std::uint8_t>& mask = model.rank_local_mask();
    std::vector<Tensor*> replicated;
    replicated.reserve(params.size());
    for (std::size_t i = 0; i < params.size(); ++i)
      if (i >= mask.size() || mask[i] == 0) replicated.push_back(params[i]);
    negotiate_seconds_ = broadcast_parameters(*ctx_, replicated, root_);
  }

  /// Seconds spent waiting in the negotiate phase (the broadcast overhead
  /// the paper's optimization reduces from 43.72 s to 4.65 s on 384 GPUs).
  [[nodiscard]] double negotiate_seconds() const { return negotiate_seconds_; }

 private:
  Context* ctx_;
  std::size_t root_;
  double negotiate_seconds_ = 0.0;
};

}  // namespace candle::hvd
