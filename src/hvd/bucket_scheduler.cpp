#include "hvd/bucket_scheduler.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/error.h"

namespace candle::hvd {

BucketScheduler::BucketScheduler(Context& ctx, const FusionOptions& options,
                                 FusionBuffer& buffer,
                                 ResidualState* residuals)
    : ctx_(&ctx),
      options_(options),
      buffer_(&buffer),
      residuals_(residuals),
      thread_([this] { comm_main(); }) {}

BucketScheduler::~BucketScheduler() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  ready_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void BucketScheduler::bind(const std::vector<Tensor*>& grads) {
  {
    MutexLock lock(mutex_);
    require(!armed_, "BucketScheduler::bind: a step is in flight");
  }
  std::vector<std::size_t> numels;
  numels.reserve(grads.size());
  for (const Tensor* t : grads) {
    require(t != nullptr, "BucketScheduler::bind: null gradient tensor");
    numels.push_back(t->numel());
  }
  grads_ = grads;
  buckets_ = assign_buckets(numels, options_.threshold_bytes);
  // Same-plan rebinds keep the accumulated residuals (bind() is a no-op
  // then), so recompiling with unchanged shapes does not perturb training.
  if (residuals_ != nullptr) residuals_->bind(buckets_);
  bucket_of_.assign(grads_.size(), 0);
  for (std::size_t b = 0; b < buckets_.size(); ++b)
    for (std::size_t t : buckets_[b].tensors) bucket_of_[t] = b;
}

void BucketScheduler::mark_ready(std::size_t first, std::size_t count) {
  if (count == 0) return;
  require(first + count <= grads_.size(),
          "BucketScheduler::mark_ready: gradient span out of range");
  MutexLock lock(mutex_);
  if (!armed_) {
    require(!buckets_.empty(),
            "BucketScheduler::mark_ready: no gradients bound");
    armed_ = true;
    armed_at_ = ctx_->now();
    processed_ = 0;
    step_stats_ = {};
    error_ = nullptr;
    remaining_.resize(buckets_.size());
    for (std::size_t b = 0; b < buckets_.size(); ++b)
      remaining_[b] = buckets_[b].tensors.size();
    // Drop bucket work a previous (errored/abandoned) step left queued;
    // run_inline tasks are synchronous and can never linger here.
    queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                [](const WorkItem& w) {
                                  return w.task == nullptr;
                                }),
                 queue_.end());
  }
  bool notify = false;
  for (std::size_t t = first; t < first + count; ++t) {
    const std::size_t b = bucket_of_[t];
    require(remaining_[b] > 0,
            "BucketScheduler::mark_ready: gradient marked ready twice");
    if (--remaining_[b] == 0) {
      // Completion order is the comm thread's issue order: backward runs
      // the layers in reverse, so buckets enqueue in descending index
      // order, interleaved deterministically with run_inline tasks.
      queue_.push_back(WorkItem{b, nullptr});
      notify = true;
    }
  }
  if (notify) ready_cv_.notify_all();
}

bool BucketScheduler::armed() const {
  MutexLock lock(mutex_);
  return armed_;
}

FusionStats BucketScheduler::drain() {
  MutexLock lock(mutex_);
  if (!armed_) return {};
  for (std::size_t b = 0; b < buckets_.size(); ++b)
    if (remaining_[b] != 0)
      throw InvalidArgument(
          "BucketScheduler::drain: bucket " + std::to_string(b) +
          " still waits for " + std::to_string(remaining_[b]) +
          " gradient(s) — drain called before backward finished");
  done_cv_.wait(mutex_, [this]() CANDLE_REQUIRES(mutex_) {
    return processed_ == buckets_.size() || error_ != nullptr;
  });
  armed_ = false;
  if (error_ != nullptr) {
    std::exception_ptr err = std::exchange(error_, nullptr);
    std::rethrow_exception(err);
  }
  return std::exchange(step_stats_, {});
}

void BucketScheduler::run_inline(const std::function<void()>& fn) {
  InlineTask task;
  task.fn = &fn;
  {
    MutexLock lock(mutex_);
    require(!shutdown_, "BucketScheduler::run_inline: shutting down");
    queue_.push_back(WorkItem{0, &task});
  }
  ready_cv_.notify_all();
  MutexLock lock(mutex_);
  done_cv_.wait(mutex_, [&task]() CANDLE_REQUIRES(mutex_) {
    return task.done;
  });
  if (task.error != nullptr) std::rethrow_exception(task.error);
}

void BucketScheduler::comm_main() {
  while (true) {
    const double idle_from = ctx_->now();
    WorkItem item;
    double negotiate_from = idle_from;
    {
      MutexLock lock(mutex_);
      ready_cv_.wait(mutex_, [this]() CANDLE_REQUIRES(mutex_) {
        return shutdown_ || !queue_.empty();
      });
      if (shutdown_) return;
      item = queue_.front();
      queue_.pop_front();
      if (item.task == nullptr) {
        // Once a step errored, its remaining buckets are dropped — drain
        // reports the first error; reducing more would only cascade.
        if (error_ != nullptr) continue;
        if (armed_at_ > negotiate_from) negotiate_from = armed_at_;
      }
    }

    if (item.task != nullptr) {
      std::exception_ptr err;
      try {
        (*item.task->fn)();
      } catch (...) {
        err = std::current_exception();
      }
      MutexLock lock(mutex_);
      item.task->error = err;
      item.task->done = true;
      done_cv_.notify_all();
      continue;
    }

    // NEGOTIATE = waiting for the bucket's gradients: from the step's
    // first mark_ready for the first bucket, else from the previous
    // item's completion (idle between steps is not negotiation).
    const double negotiated = ctx_->now();
    ctx_->record(trace::kNegotiateAllreduce, "allreduce", negotiate_from,
                 negotiated - negotiate_from);
    ctx_->record_phase(trace::kNegotiateAllreduce,
                       negotiated - negotiate_from);

    FusionStats stats;
    std::exception_ptr err;
    try {
      allreduce_bucket(*ctx_, grads_, buckets_[item.bucket], *buffer_,
                       options_, stats,
                       residuals_ != nullptr ? residuals_->buffer(item.bucket)
                                             : std::span<float>{});
    } catch (...) {
      err = std::current_exception();
    }

    MutexLock lock(mutex_);
    if (err != nullptr) {
      error_ = err;
      done_cv_.notify_all();
      continue;
    }
    step_stats_.collectives += stats.collectives;
    step_stats_.tensors += stats.tensors;
    step_stats_.fused_bytes += stats.fused_bytes;
    ++step_stats_.buckets_overlapped;
    ++processed_;
    if (processed_ == buckets_.size()) done_cv_.notify_all();
  }
}

}  // namespace candle::hvd
