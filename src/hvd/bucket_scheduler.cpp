#include "hvd/bucket_scheduler.h"

#include <string>
#include <utility>

#include "common/error.h"

namespace candle::hvd {

BucketScheduler::BucketScheduler(Context& ctx, const FusionOptions& options,
                                 FusionBuffer& buffer)
    : ctx_(&ctx),
      options_(options),
      buffer_(&buffer),
      thread_([this] { comm_main(); }) {}

BucketScheduler::~BucketScheduler() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  ready_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void BucketScheduler::bind(const std::vector<Tensor*>& grads) {
  {
    MutexLock lock(mutex_);
    require(!armed_, "BucketScheduler::bind: a step is in flight");
  }
  std::vector<std::size_t> numels;
  numels.reserve(grads.size());
  for (const Tensor* t : grads) {
    require(t != nullptr, "BucketScheduler::bind: null gradient tensor");
    numels.push_back(t->numel());
  }
  grads_ = grads;
  buckets_ = assign_buckets(numels, options_.threshold_bytes);
  bucket_of_.assign(grads_.size(), 0);
  for (std::size_t b = 0; b < buckets_.size(); ++b)
    for (std::size_t t : buckets_[b].tensors) bucket_of_[t] = b;
}

void BucketScheduler::mark_ready(std::size_t first, std::size_t count) {
  if (count == 0) return;
  require(first + count <= grads_.size(),
          "BucketScheduler::mark_ready: gradient span out of range");
  MutexLock lock(mutex_);
  if (!armed_) {
    require(!buckets_.empty(),
            "BucketScheduler::mark_ready: no gradients bound");
    armed_ = true;
    armed_at_ = ctx_->now();
    processed_ = 0;
    step_stats_ = {};
    error_ = nullptr;
    remaining_.resize(buckets_.size());
    for (std::size_t b = 0; b < buckets_.size(); ++b)
      remaining_[b] = buckets_[b].tensors.size();
    complete_.assign(buckets_.size(), 0);
  }
  bool notify = false;
  for (std::size_t t = first; t < first + count; ++t) {
    const std::size_t b = bucket_of_[t];
    require(remaining_[b] > 0,
            "BucketScheduler::mark_ready: gradient marked ready twice");
    if (--remaining_[b] == 0) {
      complete_[b] = 1;
      notify = true;
    }
  }
  if (notify) ready_cv_.notify_all();
}

bool BucketScheduler::armed() const {
  MutexLock lock(mutex_);
  return armed_;
}

FusionStats BucketScheduler::drain() {
  MutexLock lock(mutex_);
  if (!armed_) return {};
  for (std::size_t b = 0; b < buckets_.size(); ++b)
    if (remaining_[b] != 0)
      throw InvalidArgument(
          "BucketScheduler::drain: bucket " + std::to_string(b) +
          " still waits for " + std::to_string(remaining_[b]) +
          " gradient(s) — drain called before backward finished");
  done_cv_.wait(mutex_, [this]() CANDLE_REQUIRES(mutex_) {
    return processed_ == buckets_.size() || error_ != nullptr;
  });
  armed_ = false;
  if (error_ != nullptr) {
    std::exception_ptr err = std::exchange(error_, nullptr);
    std::rethrow_exception(err);
  }
  return std::exchange(step_stats_, {});
}

void BucketScheduler::comm_main() {
  while (true) {
    // Wait for the next bucket in descending index order (the order
    // readiness arrives in: backward runs the layers in reverse).
    const double idle_from = ctx_->now();
    std::size_t next = 0;
    double negotiate_from = idle_from;
    {
      MutexLock lock(mutex_);
      ready_cv_.wait(mutex_, [this]() CANDLE_REQUIRES(mutex_) {
        if (shutdown_) return true;
        if (!armed_ || error_ != nullptr) return false;
        if (processed_ >= buckets_.size()) return false;
        return complete_[buckets_.size() - 1 - processed_] != 0;
      });
      if (shutdown_) return;
      next = buckets_.size() - 1 - processed_;
      // NEGOTIATE = waiting for the bucket's gradients: from the step's
      // first mark_ready for the first bucket, else from the previous
      // bucket's completion (idle between steps is not negotiation).
      if (armed_at_ > negotiate_from) negotiate_from = armed_at_;
    }
    const double negotiated = ctx_->now();
    ctx_->record(trace::kNegotiateAllreduce, "allreduce", negotiate_from,
                 negotiated - negotiate_from);
    ctx_->record_phase(trace::kNegotiateAllreduce,
                       negotiated - negotiate_from);

    FusionStats stats;
    std::exception_ptr err;
    try {
      allreduce_bucket(*ctx_, grads_, buckets_[next], *buffer_, options_,
                       stats);
    } catch (...) {
      err = std::current_exception();
    }

    MutexLock lock(mutex_);
    if (err != nullptr) {
      error_ = err;
      done_cv_.notify_all();
      continue;
    }
    step_stats_.collectives += stats.collectives;
    step_stats_.tensors += stats.tensors;
    step_stats_.fused_bytes += stats.fused_bytes;
    ++step_stats_.buckets_overlapped;
    ++processed_;
    if (processed_ == buckets_.size()) done_cv_.notify_all();
  }
}

}  // namespace candle::hvd
