// Backward-overlapped gradient communication.
//
// Horovod overlaps allreduce with backprop: tensors are reduced "at a given
// moment" during the backward pass instead of in one sweep after it (paper
// §2.2), which is what hides communication time behind compute. This module
// reproduces that: a BucketScheduler assigns the model's gradients to fixed
// fusion buckets (assign_buckets — a pure function of the param list, so all
// ranks agree on the plan) and runs a per-rank background comm thread that
// allreduce-averages each bucket as soon as its last gradient is produced by
// Model::backward's gradient-ready hook, while backprop continues on earlier
// layers.
//
// Determinism contract: the overlapped path is bit-identical to the
// synchronous sweep. Both funnel every bucket through allreduce_bucket
// (identical buffer layout and collective payloads), and buckets are
// independent reductions, so *when* a bucket is reduced cannot change any
// result — only whether its cost is hidden behind compute.
//
// Collective-ordering contract: backward finalizes layers in reverse order,
// so forward-order buckets complete readiness in strictly descending index
// order; the comm thread works a FIFO queue fed by the main thread (bucket
// completions and run_inline tasks, both pushed at deterministic program
// points of backward), so every rank issues the identical collective
// sequence. The main thread must not issue collectives on this rank's
// Communicator directly between the first mark_ready() of a step and
// drain() returning — route them through run_inline (channel-sharded
// layers do; see nn::CollectiveExecutor) or drain first. Violations trip
// the communicator's sequence/op rendezvous check (CommError) rather than
// corrupting data.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "hvd/fusion.h"

namespace candle::hvd {

/// Per-rank overlap scheduler: owns the comm thread for one rank.
///
/// Thread model (TSan/-Wthread-safety clean): all step state is guarded by
/// `mutex_`; the bucket plan and gradient pointers are written by bind()
/// only while no step is armed (comm thread parked) and read by the comm
/// thread only between arming and drain, ordered by the mutex hand-off.
class BucketScheduler {
 public:
  /// Spawns the comm thread. `ctx` and `buffer` must outlive the scheduler;
  /// `buffer` is the rank's persistent fusion scratch (shared with the
  /// synchronous path so overlap on/off reuses one allocation). A non-null
  /// `residuals` (also shared with the synchronous path, same lifetime
  /// rules) enables error feedback: bind() rebinds it to the bucket plan
  /// and the comm thread threads each bucket's residual buffer through
  /// allreduce_bucket.
  BucketScheduler(Context& ctx, const FusionOptions& options,
                  FusionBuffer& buffer, ResidualState* residuals = nullptr);

  /// Signals shutdown and joins the comm thread. In-flight buckets of an
  /// abandoned step (backward threw) are dropped, not reduced.
  ~BucketScheduler();

  BucketScheduler(const BucketScheduler&) = delete;
  BucketScheduler& operator=(const BucketScheduler&) = delete;

  /// Computes the bucket plan for `grads` (the model's gradient tensors in
  /// flat parameter order) and retains the pointers. Must be called while no
  /// step is in flight; call again after a recompile. Every rank must bind
  /// an identically-shaped list — the plan is a pure function of the shapes.
  void bind(const std::vector<Tensor*>& grads) CANDLE_EXCLUDES(mutex_);

  /// Gradient-ready notification from Model::backward: gradients
  /// [first, first + count) in flat order are final for this step. The first
  /// call of a step arms it; when a bucket's last tensor arrives the comm
  /// thread is woken to reduce it. Cheap (counter updates under the mutex).
  void mark_ready(std::size_t first, std::size_t count)
      CANDLE_EXCLUDES(mutex_);

  /// True between the first mark_ready() of a step and drain().
  [[nodiscard]] bool armed() const CANDLE_EXCLUDES(mutex_);

  /// Waits until every bucket of the armed step has been reduced and
  /// returns the step's FusionStats (buckets_overlapped == bucket count).
  /// Returns zero stats when no step is armed. Throws InvalidArgument if
  /// called before every gradient was marked ready (the step can never
  /// complete — a deadlock turned into an error), and rethrows any
  /// exception the comm thread hit (e.g. CommError).
  FusionStats drain() CANDLE_EXCLUDES(mutex_);

  /// Runs `fn` on the comm thread, after everything already queued, and
  /// blocks until it finished; rethrows what it threw. This is how
  /// channel-sharded layers issue their activation collectives while a
  /// step is in flight: the comm thread stays the rank's only collective
  /// issuer and the FIFO order — fed only by this (main) thread — is
  /// identical on every rank. Also safe with no step armed.
  void run_inline(const std::function<void()>& fn) CANDLE_EXCLUDES(mutex_);

  /// Buckets in the bound plan.
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

 private:
  /// One comm-thread work unit: a completed fusion bucket (task == nullptr)
  /// or a run_inline task.
  struct InlineTask {
    const std::function<void()>* fn = nullptr;
    bool done = false;
    std::exception_ptr error;
  };
  struct WorkItem {
    std::size_t bucket = 0;
    InlineTask* task = nullptr;
  };

  void comm_main();

  Context* ctx_;
  FusionOptions options_;
  FusionBuffer* buffer_;
  ResidualState* residuals_;  // null: error feedback disabled

  /// Bound plan. Not lock-protected by design (cf. parallel.cpp's Pool
  /// errors_): written by bind() only while the comm thread is parked
  /// (nothing armed), read by the comm thread only while a step is armed;
  /// the arm/wake mutex hand-off orders the accesses.
  std::vector<Tensor*> grads_;
  std::vector<Bucket> buckets_;
  std::vector<std::size_t> bucket_of_;  // tensor index -> bucket index

  mutable AnnotatedMutex mutex_{
      CANDLE_LOCK_LEVEL(lock_order::level::kBucketScheduler),
      "hvd::BucketScheduler::mutex_"};
  AnnotatedCondVar ready_cv_;  // main -> comm: bucket completed / shutdown
  AnnotatedCondVar done_cv_;   // comm -> main: step finished / error
  bool shutdown_ CANDLE_GUARDED_BY(mutex_) = false;
  bool armed_ CANDLE_GUARDED_BY(mutex_) = false;
  double armed_at_ CANDLE_GUARDED_BY(mutex_) = 0.0;
  std::vector<std::size_t> remaining_ CANDLE_GUARDED_BY(mutex_);
  std::deque<WorkItem> queue_ CANDLE_GUARDED_BY(mutex_);
  std::size_t processed_ CANDLE_GUARDED_BY(mutex_) = 0;
  FusionStats step_stats_ CANDLE_GUARDED_BY(mutex_);
  std::exception_ptr error_ CANDLE_GUARDED_BY(mutex_);

  std::thread thread_;  // last member: comm_main sees a fully-built object
};

}  // namespace candle::hvd
