#include "hvd/context.h"

namespace candle::hvd {

Context::Context(comm::Communicator& comm, trace::Timeline* timeline,
                 const Stopwatch* clock)
    : comm_(&comm), timeline_(timeline), clock_(clock) {}

double Context::now() const {
  return clock_ != nullptr ? clock_->seconds() : own_clock_.seconds();
}

void Context::record(const char* name, const char* category, double start_s,
                     double duration_s) {
  if (timeline_ == nullptr) return;
  timeline_->record(name, category, rank(), start_s, duration_s);
}

}  // namespace candle::hvd
