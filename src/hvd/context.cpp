#include "hvd/context.h"

#include <algorithm>

namespace candle::hvd {

void PhaseLedger::record(const std::string& phase, std::size_t rank,
                         double seconds) {
  MutexLock lock(mutex_);
  entries_.push_back(Entry{phase, rank, seconds});
}

PhaseLedger::Summary PhaseLedger::summarize(const std::string& phase) const {
  MutexLock lock(mutex_);
  Summary s;
  for (const Entry& e : entries_) {
    if (e.phase != phase) continue;
    if (s.count == 0) {
      s.min_s = s.max_s = e.seconds;
    } else {
      s.min_s = std::min(s.min_s, e.seconds);
      s.max_s = std::max(s.max_s, e.seconds);
    }
    s.total_s += e.seconds;
    ++s.count;
  }
  return s;
}

std::size_t PhaseLedger::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

std::vector<PhaseLedger::Entry> PhaseLedger::entries() const {
  MutexLock lock(mutex_);
  return entries_;
}

Context::Context(comm::Communicator& comm, trace::Timeline* timeline,
                 const Stopwatch* clock, PhaseLedger* ledger)
    : comm_(&comm), timeline_(timeline), clock_(clock), ledger_(ledger) {}

double Context::now() const {
  return clock_ != nullptr ? clock_->seconds() : own_clock_.seconds();
}

void Context::record(const char* name, const char* category, double start_s,
                     double duration_s) {
  if (timeline_ == nullptr) return;
  timeline_->record(name, category, rank(), start_s, duration_s);
}

void Context::record_phase(const char* phase, double seconds) {
  if (ledger_ == nullptr) return;
  ledger_->record(phase, rank(), seconds);
}

}  // namespace candle::hvd
