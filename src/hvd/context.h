// Horovod-equivalent per-rank context.
//
// Mirrors the `hvd.init() / hvd.size() / hvd.rank() / hvd.local_rank()`
// surface the paper's methodology section adds to every benchmark, plus a
// hook into the activity timeline (Horovod's HOROVOD_TIMELINE).
#pragma once

#include "comm/communicator.h"
#include "common/stopwatch.h"
#include "trace/timeline.h"

namespace candle::hvd {

/// Per-rank Horovod context, valid on the rank's own thread.
class Context {
 public:
  /// `timeline` and `clock` may be null (no tracing). `clock` supplies the
  /// common time origin for events; when null, an internal clock starting at
  /// construction is used.
  explicit Context(comm::Communicator& comm,
                   trace::Timeline* timeline = nullptr,
                   const Stopwatch* clock = nullptr);

  [[nodiscard]] std::size_t rank() const { return comm_->rank(); }
  [[nodiscard]] std::size_t size() const { return comm_->size(); }
  [[nodiscard]] std::size_t local_rank() const { return comm_->local_rank(); }
  [[nodiscard]] comm::Communicator& comm() { return *comm_; }

  /// Seconds since the common time origin.
  [[nodiscard]] double now() const;

  /// Records a timeline event for this rank (no-op without a timeline).
  void record(const char* name, const char* category, double start_s,
              double duration_s);

  [[nodiscard]] bool has_timeline() const { return timeline_ != nullptr; }

 private:
  comm::Communicator* comm_;
  trace::Timeline* timeline_;
  const Stopwatch* clock_;
  Stopwatch own_clock_;
};

}  // namespace candle::hvd
