// Horovod-equivalent per-rank context.
//
// Mirrors the `hvd.init() / hvd.size() / hvd.rank() / hvd.local_rank()`
// surface the paper's methodology section adds to every benchmark, plus a
// hook into the activity timeline (Horovod's HOROVOD_TIMELINE).
#pragma once

#include <string>
#include <vector>

#include "comm/communicator.h"
#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "trace/timeline.h"

namespace candle::hvd {

/// Straggler ledger shared across all rank threads of a World.
///
/// Each rank records how long it spent in a rendezvous phase (negotiate
/// broadcast/allreduce, parameter-server push); after the world joins, the
/// driver reads the per-phase min/max to quantify the data-loading skew the
/// paper's Figs 7b/12/19 visualize. All access is serialized by `mutex_`
/// (discipline verified by clang -Wthread-safety).
class PhaseLedger {
 public:
  struct Entry {
    std::string phase;
    std::size_t rank = 0;
    double seconds = 0.0;
  };

  /// Min/max/total over one phase's entries; skew is the straggler gap.
  struct Summary {
    std::size_t count = 0;
    double min_s = 0.0;
    double max_s = 0.0;
    double total_s = 0.0;
    [[nodiscard]] double skew_s() const { return max_s - min_s; }
  };

  /// Records one phase duration for `rank` (thread-safe).
  void record(const std::string& phase, std::size_t rank, double seconds)
      CANDLE_EXCLUDES(mutex_);

  /// Summary over every entry recorded for `phase`.
  [[nodiscard]] Summary summarize(const std::string& phase) const
      CANDLE_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const CANDLE_EXCLUDES(mutex_);
  [[nodiscard]] std::vector<Entry> entries() const CANDLE_EXCLUDES(mutex_);

 private:
  mutable AnnotatedMutex mutex_{
      CANDLE_LOCK_LEVEL(lock_order::level::kPhaseLedger),
      "hvd::PhaseLedger::mutex_"};
  std::vector<Entry> entries_ CANDLE_GUARDED_BY(mutex_);
};

/// Per-rank Horovod context, valid on the rank's own thread.
class Context {
 public:
  /// `timeline`, `clock`, and `ledger` may be null (no tracing / no skew
  /// accounting). `clock` supplies the common time origin for events; when
  /// null, an internal clock starting at construction is used. `timeline`
  /// and `ledger` are shared across ranks and internally synchronized.
  explicit Context(comm::Communicator& comm,
                   trace::Timeline* timeline = nullptr,
                   const Stopwatch* clock = nullptr,
                   PhaseLedger* ledger = nullptr);

  [[nodiscard]] std::size_t rank() const { return comm_->rank(); }
  [[nodiscard]] std::size_t size() const { return comm_->size(); }
  [[nodiscard]] std::size_t local_rank() const { return comm_->local_rank(); }
  [[nodiscard]] comm::Communicator& comm() { return *comm_; }

  /// Seconds since the common time origin.
  [[nodiscard]] double now() const;

  /// Records a timeline event for this rank (no-op without a timeline).
  void record(const char* name, const char* category, double start_s,
              double duration_s);

  /// Records a phase duration for this rank (no-op without a ledger).
  void record_phase(const char* phase, double seconds);

  [[nodiscard]] bool has_timeline() const { return timeline_ != nullptr; }
  [[nodiscard]] bool has_ledger() const { return ledger_ != nullptr; }

 private:
  comm::Communicator* comm_;
  trace::Timeline* timeline_;
  const Stopwatch* clock_;
  PhaseLedger* ledger_;
  Stopwatch own_clock_;
};

}  // namespace candle::hvd
