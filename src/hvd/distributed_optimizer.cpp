#include "hvd/distributed_optimizer.h"

#include "common/error.h"
#include "hvd/bucket_scheduler.h"
#include "nn/model.h"

namespace candle::hvd {

DistributedOptimizer::DistributedOptimizer(
    std::unique_ptr<nn::Optimizer> inner, Context& ctx, FusionOptions fusion)
    : inner_(std::move(inner)), ctx_(&ctx), fusion_(fusion) {
  require(inner_ != nullptr, "DistributedOptimizer: null inner optimizer");
}

DistributedOptimizer::~DistributedOptimizer() = default;

std::string DistributedOptimizer::name() const {
  return "distributed(" + inner_->name() + ")";
}

double DistributedOptimizer::learning_rate() const {
  return inner_->learning_rate();
}

void DistributedOptimizer::set_learning_rate(double lr) {
  inner_->set_learning_rate(lr);
}

void DistributedOptimizer::enable_overlap(nn::Model& model) {
  require(model.compiled(),
          "DistributedOptimizer::enable_overlap: compile the model first");
  if (scheduler_ == nullptr)
    scheduler_ = std::make_unique<BucketScheduler>(*ctx_, fusion_, buffer_);
  scheduler_->bind(model.gradients());
  BucketScheduler* scheduler = scheduler_.get();
  model.set_grad_ready_hook(
      [scheduler](std::size_t first, std::size_t count) {
        scheduler->mark_ready(first, count);
      });
}

void DistributedOptimizer::apply(const std::vector<Tensor*>& params,
                                 const std::vector<Tensor*>& grads) {
  if (scheduler_ != nullptr && scheduler_->armed()) {
    // Overlapped path: the comm thread reduced the buckets during backward
    // (per-bucket NEGOTIATE/NCCL events recorded there); wait for the tail.
    const FusionStats step = scheduler_->drain();
    stats_.collectives += step.collectives;
    stats_.tensors += step.tensors;
    stats_.fused_bytes += step.fused_bytes;
    stats_.buckets_overlapped += step.buckets_overlapped;
    inner_->apply(params, grads);
    return;
  }

  // Negotiation: Horovod's coordinator waits until every rank has announced
  // the tensor is ready; with synchronous batch steps this is a barrier.
  const double negotiate_start = ctx_->now();
  ctx_->comm().barrier();
  const double reduce_start = ctx_->now();
  ctx_->record(trace::kNegotiateAllreduce, "allreduce", negotiate_start,
               reduce_start - negotiate_start);
  ctx_->record_phase(trace::kNegotiateAllreduce,
                     reduce_start - negotiate_start);

  // Per-bucket NCCL_ALLREDUCE events are recorded inside allreduce_bucket.
  const FusionStats step =
      allreduce_average_fused(*ctx_, grads, fusion_, &buffer_);
  stats_.collectives += step.collectives;
  stats_.tensors += step.tensors;
  stats_.fused_bytes += step.fused_bytes;

  inner_->apply(params, grads);
}

}  // namespace candle::hvd
