#include "hvd/distributed_optimizer.h"

#include "common/error.h"
#include "hvd/bucket_scheduler.h"
#include "nn/model.h"

namespace candle::hvd {

DistributedOptimizer::DistributedOptimizer(
    std::unique_ptr<nn::Optimizer> inner, Context& ctx, FusionOptions fusion)
    : inner_(std::move(inner)), ctx_(&ctx), fusion_(fusion) {
  require(inner_ != nullptr, "DistributedOptimizer: null inner optimizer");
}

DistributedOptimizer::~DistributedOptimizer() = default;

std::string DistributedOptimizer::name() const {
  return "distributed(" + inner_->name() + ")";
}

double DistributedOptimizer::learning_rate() const {
  return inner_->learning_rate();
}

void DistributedOptimizer::set_learning_rate(double lr) {
  inner_->set_learning_rate(lr);
}

namespace {
constexpr std::size_t kNotReduced = static_cast<std::size_t>(-1);
}  // namespace

void DistributedOptimizer::set_rank_local_gradients(
    const std::vector<std::uint8_t>& mask) {
  local_mask_ = mask;
  inner_->set_rank_local_gradients(mask);
}

void DistributedOptimizer::enable_overlap(nn::Model& model) {
  require(model.compiled(),
          "DistributedOptimizer::enable_overlap: compile the model first");
  if (scheduler_ == nullptr)
    scheduler_ = std::make_unique<BucketScheduler>(
        *ctx_, fusion_, buffer_,
        fusion_.error_feedback ? &residuals_ : nullptr);
  // Channel-sharded (rank-local) gradients never enter the bucket plan:
  // every rank computes the same reduced list, so the bucket layout stays
  // rank-invariant.
  const std::vector<Tensor*> grads = model.gradients();
  reduced_of_.assign(grads.size(), kNotReduced);
  std::vector<Tensor*> reduced;
  reduced.reserve(grads.size());
  for (std::size_t i = 0; i < grads.size(); ++i) {
    if (is_rank_local(i)) continue;
    reduced_of_[i] = reduced.size();
    reduced.push_back(grads[i]);
  }
  scheduler_->bind(reduced);
  BucketScheduler* scheduler = scheduler_.get();
  const std::vector<std::size_t>* reduced_of = &reduced_of_;
  model.set_grad_ready_hook(
      [scheduler, reduced_of](std::size_t first, std::size_t count) {
        // Survivors of a contiguous gradient span stay contiguous in the
        // reduced order, so the ready range maps to one reduced range.
        std::size_t rfirst = 0, rcount = 0;
        for (std::size_t i = first; i < first + count; ++i) {
          if ((*reduced_of)[i] == kNotReduced) continue;
          if (rcount == 0) rfirst = (*reduced_of)[i];
          ++rcount;
        }
        if (rcount > 0) scheduler->mark_ready(rfirst, rcount);
      });
  // Sharded layers issue activation collectives mid-step; route them through
  // the comm thread's FIFO so it stays this rank's only collective issuer
  // (see the ordering contract in hvd/bucket_scheduler.h).
  model.set_collective_executor([scheduler](const std::function<void()>& fn) {
    scheduler->run_inline(fn);
  });
}

void DistributedOptimizer::apply(const std::vector<Tensor*>& params,
                                 const std::vector<Tensor*>& grads) {
  if (scheduler_ != nullptr && scheduler_->armed()) {
    // Overlapped path: the comm thread reduced the buckets during backward
    // (per-bucket NEGOTIATE/NCCL events recorded there); wait for the tail.
    const FusionStats step = scheduler_->drain();
    stats_.collectives += step.collectives;
    stats_.tensors += step.tensors;
    stats_.fused_bytes += step.fused_bytes;
    stats_.buckets_overlapped += step.buckets_overlapped;
    inner_->apply(params, grads);
    return;
  }

  // Negotiation: Horovod's coordinator waits until every rank has announced
  // the tensor is ready; with synchronous batch steps this is a barrier.
  const double negotiate_start = ctx_->now();
  ctx_->comm().barrier();
  const double reduce_start = ctx_->now();
  ctx_->record(trace::kNegotiateAllreduce, "allreduce", negotiate_start,
               reduce_start - negotiate_start);
  ctx_->record_phase(trace::kNegotiateAllreduce,
                     reduce_start - negotiate_start);

  // Per-bucket NCCL_ALLREDUCE events are recorded inside allreduce_bucket.
  // Rank-local (channel-sharded) gradients are skipped: each rank already
  // holds the full-batch gradient for its own shard.
  // The residual state is shared with the overlapped scheduler: the bucket
  // plan is identical on both paths, so the accumulated error carries over
  // bit-exactly when overlap is toggled.
  ResidualState* residuals = fusion_.error_feedback ? &residuals_ : nullptr;
  FusionStats step;
  if (local_mask_.empty()) {
    step = allreduce_average_fused(*ctx_, grads, fusion_, &buffer_,
                                   residuals);
  } else {
    std::vector<Tensor*> reduced;
    reduced.reserve(grads.size());
    for (std::size_t i = 0; i < grads.size(); ++i)
      if (!is_rank_local(i)) reduced.push_back(grads[i]);
    step = allreduce_average_fused(*ctx_, reduced, fusion_, &buffer_,
                                   residuals);
  }
  stats_.collectives += step.collectives;
  stats_.tensors += step.tensors;
  stats_.fused_bytes += step.fused_bytes;

  inner_->apply(params, grads);
}

}  // namespace candle::hvd
