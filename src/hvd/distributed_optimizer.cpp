#include "hvd/distributed_optimizer.h"

#include "common/error.h"

namespace candle::hvd {

DistributedOptimizer::DistributedOptimizer(
    std::unique_ptr<nn::Optimizer> inner, Context& ctx, FusionOptions fusion)
    : inner_(std::move(inner)), ctx_(&ctx), fusion_(fusion) {
  require(inner_ != nullptr, "DistributedOptimizer: null inner optimizer");
}

std::string DistributedOptimizer::name() const {
  return "distributed(" + inner_->name() + ")";
}

double DistributedOptimizer::learning_rate() const {
  return inner_->learning_rate();
}

void DistributedOptimizer::set_learning_rate(double lr) {
  inner_->set_learning_rate(lr);
}

void DistributedOptimizer::apply(const std::vector<Tensor*>& params,
                                 const std::vector<Tensor*>& grads) {
  // Negotiation: Horovod's coordinator waits until every rank has announced
  // the tensor is ready; with synchronous batch steps this is a barrier.
  const double negotiate_start = ctx_->now();
  ctx_->comm().barrier();
  const double reduce_start = ctx_->now();
  ctx_->record(trace::kNegotiateAllreduce, "allreduce", negotiate_start,
               reduce_start - negotiate_start);
  ctx_->record_phase(trace::kNegotiateAllreduce,
                     reduce_start - negotiate_start);

  const FusionStats step = allreduce_average_fused(*ctx_, grads, fusion_);
  stats_.collectives += step.collectives;
  stats_.tensors += step.tensors;
  stats_.fused_bytes += step.fused_bytes;
  ctx_->record(trace::kNcclAllreduce, "allreduce", reduce_start,
               ctx_->now() - reduce_start);

  inner_->apply(params, grads);
}

}  // namespace candle::hvd
