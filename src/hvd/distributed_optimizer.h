// Horovod DistributedOptimizer.
//
// "Horovod adapts the MPI communication model by adding an allreduce between
// the gradient computation and model update, replacing the native optimizer
// with a new one called the Distributed Optimizer" (paper §1). This wrapper
// does exactly that: it averages the gradient tensors across ranks (with
// tensor fusion) and then delegates the update to the wrapped optimizer.
#pragma once

#include <memory>

#include "hvd/fusion.h"
#include "nn/optimizer.h"

namespace candle::nn {
class Model;
}  // namespace candle::nn

namespace candle::hvd {

class BucketScheduler;

/// Wraps any nn::Optimizer with gradient allreduce-averaging.
///
/// Two reduction paths, bit-identical by construction (both funnel through
/// assign_buckets + allreduce_bucket on the same persistent FusionBuffer):
///  - synchronous (default): apply() barriers, then reduces every bucket in
///    one sweep before the inner update;
///  - overlapped (enable_overlap): a BucketScheduler reduces each bucket on
///    a background comm thread while backward is still running, and apply()
///    merely drains the in-flight buckets before the inner update.
class DistributedOptimizer final : public nn::Optimizer {
 public:
  /// `ctx` must outlive the optimizer (it is owned by the rank's run body).
  DistributedOptimizer(std::unique_ptr<nn::Optimizer> inner, Context& ctx,
                       FusionOptions fusion = {});
  ~DistributedOptimizer() override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double learning_rate() const override;
  void set_learning_rate(double lr) override;

  /// Averages `grads` across ranks, then applies the wrapped optimizer.
  /// Synchronous path: negotiate barrier + fused sweep (one
  /// NEGOTIATE_ALLREDUCE event per step, one NCCL_ALLREDUCE per bucket).
  /// Overlapped path: drains the buckets already reduced during backward
  /// (per-bucket NEGOTIATE/NCCL events recorded by the comm thread).
  void apply(const std::vector<Tensor*>& params,
             const std::vector<Tensor*>& grads) override;

  /// Switches to the overlapped path: binds `model`'s gradients to a
  /// BucketScheduler and installs the model's gradient-ready hook. Call
  /// after Model::compile. The model must outlive this optimizer's use, and
  /// apply() must be called (draining the step) before any other collective
  /// is issued on this rank — Model::train_on_batch does exactly that.
  /// Rank-local (channel-sharded) gradients are excluded from the bucket
  /// plan; the hook maps ready spans into the reduced order.
  void enable_overlap(nn::Model& model);

  /// Records which gradients are rank-local under channel parallelism (set
  /// by Model::compile via the parallelism plan): those tensors are owned
  /// by exactly one rank's shard and are excluded from allreduce averaging
  /// on both the synchronous and overlapped paths. An empty mask (the
  /// default) reduces everything.
  void set_rank_local_gradients(const std::vector<std::uint8_t>& mask) override;

  [[nodiscard]] bool overlap_enabled() const { return scheduler_ != nullptr; }

  /// Cumulative fusion statistics over all apply() calls.
  [[nodiscard]] const FusionStats& fusion_stats() const { return stats_; }

  /// The rank's persistent fusion scratch (shared by both paths).
  [[nodiscard]] const FusionBuffer& fusion_buffer() const { return buffer_; }

  /// The rank's persistent error-feedback residuals (empty until the first
  /// step with FusionOptions::error_feedback set). Shared by both paths so
  /// toggling overlap mid-training keeps one residual sequence.
  [[nodiscard]] const ResidualState& residual_state() const {
    return residuals_;
  }

 private:
  [[nodiscard]] bool is_rank_local(std::size_t grad_index) const {
    return grad_index < local_mask_.size() && local_mask_[grad_index] != 0;
  }

  std::unique_ptr<nn::Optimizer> inner_;
  Context* ctx_;
  FusionOptions fusion_;
  FusionStats stats_;
  FusionBuffer buffer_;
  ResidualState residuals_;  // used only when fusion_.error_feedback
  std::unique_ptr<BucketScheduler> scheduler_;
  std::vector<std::uint8_t> local_mask_;
  /// Flat gradients() index -> index in the reduced (non-local) order;
  /// kNotReduced for rank-local gradients. Rebuilt by enable_overlap.
  std::vector<std::size_t> reduced_of_;
};

}  // namespace candle::hvd
