// Horovod DistributedOptimizer.
//
// "Horovod adapts the MPI communication model by adding an allreduce between
// the gradient computation and model update, replacing the native optimizer
// with a new one called the Distributed Optimizer" (paper §1). This wrapper
// does exactly that: it averages the gradient tensors across ranks (with
// tensor fusion) and then delegates the update to the wrapped optimizer.
#pragma once

#include <memory>

#include "hvd/fusion.h"
#include "nn/optimizer.h"

namespace candle::hvd {

/// Wraps any nn::Optimizer with gradient allreduce-averaging.
class DistributedOptimizer final : public nn::Optimizer {
 public:
  /// `ctx` must outlive the optimizer (it is owned by the rank's run body).
  DistributedOptimizer(std::unique_ptr<nn::Optimizer> inner, Context& ctx,
                       FusionOptions fusion = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double learning_rate() const override;
  void set_learning_rate(double lr) override;

  /// Negotiates, allreduce-averages `grads` in place, then applies the
  /// wrapped optimizer. Records NEGOTIATE_ALLREDUCE / NCCL_ALLREDUCE events
  /// when the context has a timeline.
  void apply(const std::vector<Tensor*>& params,
             const std::vector<Tensor*>& grads) override;

  /// Cumulative fusion statistics over all apply() calls.
  [[nodiscard]] const FusionStats& fusion_stats() const { return stats_; }

 private:
  std::unique_ptr<nn::Optimizer> inner_;
  Context* ctx_;
  FusionOptions fusion_;
  FusionStats stats_;
};

}  // namespace candle::hvd
