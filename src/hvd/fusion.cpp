#include "hvd/fusion.h"

#include <cstring>
#include <utility>

#include "common/check.h"
#include "common/error.h"
#include "common/parallel.h"

namespace candle::hvd {

FusionStats allreduce_average_fused(Context& ctx,
                                    const std::vector<Tensor*>& tensors,
                                    const FusionOptions& options) {
  FusionStats stats;
  stats.tensors = tensors.size();

  if (options.threshold_bytes == 0) {
    // Fusion disabled: one collective per tensor.
    for (Tensor* t : tensors) {
      ctx.comm().allreduce_average(t->values());
      ++stats.collectives;
      stats.fused_bytes += t->numel() * sizeof(float);
    }
    return stats;
  }

  const std::size_t capacity = options.threshold_bytes / sizeof(float);
  std::vector<float> buffer;
  buffer.reserve(capacity);

  // Tensors of the pending group with their fusion-buffer offsets; the
  // pack and unpack memcpys cover disjoint spans per tensor, so both
  // phases parallelize over the group (the collective itself stays on the
  // calling rank thread — pool workers never touch the communicator).
  std::vector<std::pair<Tensor*, std::size_t>> group;
  std::size_t group_elems = 0;

  auto flush = [&]() {
    if (group.empty()) return;
    buffer.resize(group_elems);
    parallel::parallel_for(0, group.size(), 1,
                           [&](std::size_t g0, std::size_t g1) {
                             for (std::size_t g = g0; g < g1; ++g) {
                               const auto& [t, offset] = group[g];
                               std::memcpy(buffer.data() + offset, t->data(),
                                           t->numel() * sizeof(float));
                             }
                           });
    ctx.comm().allreduce_average(buffer);
    ++stats.collectives;
    stats.fused_bytes += buffer.size() * sizeof(float);
    parallel::parallel_for(
        0, group.size(), 1, [&](std::size_t g0, std::size_t g1) {
          for (std::size_t g = g0; g < g1; ++g) {
            const auto& [t, offset] = group[g];
            // In-range for the backing allocation even when the grouping
            // is wrong, so ASan stays silent — the logical check catches
            // it.
            CANDLE_CHECK(offset + t->numel() <= buffer.size());
            std::memcpy(t->data(), buffer.data() + offset,
                        t->numel() * sizeof(float));
          }
        });
    group.clear();
    group_elems = 0;
    buffer.clear();
  };

  for (Tensor* t : tensors) {
    require(t != nullptr, "allreduce_average_fused: null tensor");
    if (t->numel() > capacity) {
      // Oversized tensor: flush the pending group, reduce it in place.
      flush();
      ctx.comm().allreduce_average(t->values());
      ++stats.collectives;
      stats.fused_bytes += t->numel() * sizeof(float);
      continue;
    }
    if (group_elems + t->numel() > capacity) flush();
    group.emplace_back(t, group_elems);
    group_elems += t->numel();
  }
  flush();
  return stats;
}

}  // namespace candle::hvd
