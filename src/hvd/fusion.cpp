#include "hvd/fusion.h"

#include <cstring>

#include "common/check.h"
#include "common/error.h"

namespace candle::hvd {

FusionStats allreduce_average_fused(Context& ctx,
                                    const std::vector<Tensor*>& tensors,
                                    const FusionOptions& options) {
  FusionStats stats;
  stats.tensors = tensors.size();

  if (options.threshold_bytes == 0) {
    // Fusion disabled: one collective per tensor.
    for (Tensor* t : tensors) {
      ctx.comm().allreduce_average(t->values());
      ++stats.collectives;
      stats.fused_bytes += t->numel() * sizeof(float);
    }
    return stats;
  }

  const std::size_t capacity = options.threshold_bytes / sizeof(float);
  std::vector<float> buffer;
  buffer.reserve(capacity);

  std::size_t group_begin = 0;
  auto flush = [&](std::size_t group_end) {
    if (buffer.empty()) return;
    ctx.comm().allreduce_average(buffer);
    ++stats.collectives;
    stats.fused_bytes += buffer.size() * sizeof(float);
    std::size_t offset = 0;
    for (std::size_t i = group_begin; i < group_end; ++i) {
      // In-range for the backing allocation even when the grouping is
      // wrong, so ASan stays silent — the logical check catches it.
      CANDLE_CHECK(offset + tensors[i]->numel() <= buffer.size());
      std::memcpy(tensors[i]->data(), buffer.data() + offset,
                  tensors[i]->numel() * sizeof(float));
      offset += tensors[i]->numel();
    }
    buffer.clear();
    group_begin = group_end;
  };

  for (std::size_t i = 0; i < tensors.size(); ++i) {
    Tensor* t = tensors[i];
    require(t != nullptr, "allreduce_average_fused: null tensor");
    if (t->numel() > capacity) {
      // Oversized tensor: flush the pending group, reduce it in place.
      flush(i);
      ctx.comm().allreduce_average(t->values());
      ++stats.collectives;
      stats.fused_bytes += t->numel() * sizeof(float);
      group_begin = i + 1;
      continue;
    }
    if (buffer.size() + t->numel() > capacity) flush(i);
    buffer.insert(buffer.end(), t->data(), t->data() + t->numel());
  }
  flush(tensors.size());
  return stats;
}

}  // namespace candle::hvd
