#include "hvd/fusion.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/check.h"
#include "common/error.h"
#include "common/parallel.h"

namespace candle::hvd {
namespace {

/// Per-rank on-wire bytes one allreduce of `elems` elements moves under the
/// communicator's configured algorithm and the given wire dtype — the byte
/// term of the emulated interconnect. Mirrors what CommStats observes:
/// ring 2(P-1)/P of the payload, naive 2(P-1) payloads through the root
/// bottleneck, hierarchical only the inter-node leader-ring share (the
/// intra-node hops model NVLink-class links the sim_net wire does not
/// cover; a single node therefore sleeps latency only).
std::size_t allreduce_net_bytes(const comm::Communicator& c,
                                std::size_t elems, comm::WireDtype wire) {
  const std::size_t P = c.size();
  if (P <= 1) return 0;
  switch (c.world_options().allreduce_algo) {
    case comm::AllreduceAlgo::kRing:
      return 2 * (P - 1) * comm::wire_range_bytes(wire, elems) / P;
    case comm::AllreduceAlgo::kNaive:
      return 2 * (P - 1) * comm::wire_range_bytes(wire, elems);
    case comm::AllreduceAlgo::kHierarchical: {
      const std::size_t rpn = c.world_options().ranks_per_node;
      const std::size_t nnodes = (P + rpn - 1) / rpn;
      if (nnodes <= 1) return 0;
      return 2 * (nnodes - 1) * comm::wire_range_bytes(wire, elems) / nnodes;
    }
  }
  return comm::wire_range_bytes(wire, elems);
}

/// Benchmark-only interconnect emulation (FusionOptions::sim_net_*).
void simulate_network(const FusionOptions& options, std::size_t bytes) {
  double seconds = options.sim_net_latency_s;
  if (options.sim_net_bytes_per_s > 0.0)
    seconds += static_cast<double>(bytes) / options.sim_net_bytes_per_s;
  if (seconds > 0.0)
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// Error-feedback fold around one bucket collective: adds the previous
/// step's residual into the payload (p = g + e_prev), then stashes this
/// step's quantization error (e = p - roundtrip(p)) before the payload hits
/// the wire. Residual chunking is relative to the bucket start — an
/// approximation of the collective's per-segment chunk grids, which is all
/// EF needs (the residual only has to track what rounding lost, not match
/// wire bytes exactly). Averaged reductions need no rescaling: the residual
/// is this rank's own pre-reduction error and re-enters through the same
/// averaged sum. No-op for an empty span (feedback disabled), an
/// uncompressed bucket, or a single-rank world, where the communicator
/// skips compression and the quantizer C is the identity.
void apply_error_feedback(Context& ctx, comm::WireDtype wire,
                          std::span<float> payload,
                          std::span<float> residual) {
  if (residual.empty() || wire == comm::WireDtype::kFp32 ||
      ctx.comm().size() <= 1)
    return;
  CANDLE_CHECK(residual.size() == payload.size());
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] += residual[i];
  comm::wire::quantization_residual(wire, payload.data(), residual.data(),
                                    payload.size());
}

}  // namespace

void ResidualState::bind(const std::vector<Bucket>& plan) {
  std::vector<std::size_t> elems(plan.size());
  for (std::size_t b = 0; b < plan.size(); ++b) elems[b] = plan[b].elems;
  if (elems == elems_) return;  // same plan: keep accumulating
  elems_ = std::move(elems);
  buffers_.assign(elems_.size(), AlignedVector{});
  for (std::size_t b = 0; b < elems_.size(); ++b)
    buffers_[b].assign(elems_[b], 0.0f);
}

std::span<float> ResidualState::buffer(std::size_t b) {
  require(b < buffers_.size(), "ResidualState::buffer: unbound bucket index");
  return {buffers_[b].data(), buffers_[b].size()};
}

std::span<const float> ResidualState::buffer(std::size_t b) const {
  require(b < buffers_.size(), "ResidualState::buffer: unbound bucket index");
  return {buffers_[b].data(), buffers_[b].size()};
}

comm::WireDtype wire_dtype_for(const FusionOptions& options,
                               std::size_t elems) {
  if (elems < options.compress_min_elems) return comm::WireDtype::kFp32;
  return options.wire_dtype;
}

std::vector<Bucket> assign_buckets(const std::vector<std::size_t>& numels,
                                   std::size_t threshold_bytes) {
  std::vector<Bucket> buckets;
  if (threshold_bytes == 0) {
    // Fusion disabled: one in-place collective per tensor.
    buckets.reserve(numels.size());
    for (std::size_t i = 0; i < numels.size(); ++i)
      buckets.push_back(Bucket{{i}, numels[i], /*in_place=*/true});
    return buckets;
  }
  const std::size_t capacity = threshold_bytes / sizeof(float);
  Bucket pending;
  auto flush = [&] {
    if (pending.tensors.empty()) return;
    buckets.push_back(std::move(pending));
    pending = Bucket{};
  };
  for (std::size_t i = 0; i < numels.size(); ++i) {
    if (numels[i] > capacity) {
      // Oversized tensor: flush the pending group, reduce it in place.
      flush();
      buckets.push_back(Bucket{{i}, numels[i], /*in_place=*/true});
      continue;
    }
    if (pending.elems + numels[i] > capacity) flush();
    pending.tensors.push_back(i);
    pending.elems += numels[i];
  }
  flush();
  return buckets;
}

void allreduce_bucket(Context& ctx, const std::vector<Tensor*>& tensors,
                      const Bucket& bucket, FusionBuffer& buffer,
                      const FusionOptions& options, FusionStats& stats,
                      std::span<float> residual) {
  const double start = ctx.now();
  const comm::WireDtype wire = wire_dtype_for(options, bucket.elems);
  simulate_network(options,
                   allreduce_net_bytes(ctx.comm(), bucket.elems, wire));

  if (bucket.in_place) {
    CANDLE_CHECK(bucket.tensors.size() == 1);
    Tensor* t = tensors[bucket.tensors.front()];
    apply_error_feedback(ctx, wire, t->values(), residual);
    ctx.comm().allreduce_average(t->values(), wire);
    ++stats.collectives;
    ++stats.tensors;
    stats.fused_bytes += t->numel() * sizeof(float);
    ctx.record(trace::kNcclAllreduce, "allreduce", start, ctx.now() - start);
    return;
  }

  // Fusion-buffer offsets of the bucket's tensors; the pack and unpack
  // memcpys cover disjoint spans per tensor, so both phases parallelize
  // over the bucket (the collective itself stays on the calling thread —
  // pool workers never touch the communicator).
  std::vector<std::size_t> offsets(bucket.tensors.size());
  std::size_t at = 0;
  for (std::size_t g = 0; g < bucket.tensors.size(); ++g) {
    offsets[g] = at;
    at += tensors[bucket.tensors[g]]->numel();
  }
  CANDLE_CHECK(at == bucket.elems);

  const std::span<float> payload = buffer.acquire(bucket.elems);
  parallel::parallel_for(0, bucket.tensors.size(), 1,
                         [&](std::size_t g0, std::size_t g1) {
                           for (std::size_t g = g0; g < g1; ++g) {
                             const Tensor* t = tensors[bucket.tensors[g]];
                             std::memcpy(payload.data() + offsets[g],
                                         t->data(),
                                         t->numel() * sizeof(float));
                           }
                         });
  apply_error_feedback(ctx, wire, payload, residual);
  ctx.comm().allreduce_average(payload, wire);
  ++stats.collectives;
  stats.tensors += bucket.tensors.size();
  stats.fused_bytes += payload.size() * sizeof(float);
  parallel::parallel_for(
      0, bucket.tensors.size(), 1, [&](std::size_t g0, std::size_t g1) {
        for (std::size_t g = g0; g < g1; ++g) {
          Tensor* t = tensors[bucket.tensors[g]];
          // In-range for the backing allocation even when the grouping is
          // wrong, so ASan stays silent — the logical check catches it.
          CANDLE_CHECK(offsets[g] + t->numel() <= payload.size());
          std::memcpy(t->data(), payload.data() + offsets[g],
                      t->numel() * sizeof(float));
        }
      });
  ctx.record(trace::kNcclAllreduce, "allreduce", start, ctx.now() - start);
}

FusionStats allreduce_average_fused(Context& ctx,
                                    const std::vector<Tensor*>& tensors,
                                    const FusionOptions& options,
                                    FusionBuffer* buffer,
                                    ResidualState* residuals) {
  std::vector<std::size_t> numels;
  numels.reserve(tensors.size());
  for (const Tensor* t : tensors) {
    require(t != nullptr, "allreduce_average_fused: null tensor");
    numels.push_back(t->numel());
  }
  FusionBuffer local;
  FusionBuffer& scratch = buffer != nullptr ? *buffer : local;

  const std::vector<Bucket> plan =
      assign_buckets(numels, options.threshold_bytes);
  if (residuals != nullptr) residuals->bind(plan);

  FusionStats stats;
  for (std::size_t b = 0; b < plan.size(); ++b)
    allreduce_bucket(ctx, tensors, plan[b], scratch, options, stats,
                     residuals != nullptr ? residuals->buffer(b)
                                          : std::span<float>{});
  return stats;
}

}  // namespace candle::hvd
