// Tensor fusion: batching small allreduces.
//
// Horovod "is able to batch small allreduce operations by combining all the
// tensors that are ready to be reduced at a given moment into one reduction
// operation" (paper §2.2). This module implements that: gradient tensors are
// packed into a fusion buffer (64 MB by default, Horovod's
// HOROVOD_FUSION_THRESHOLD) and reduced with one collective per buffer-full
// instead of one per tensor.
#pragma once

#include <cstddef>
#include <vector>

#include "hvd/context.h"
#include "tensor/tensor.h"

namespace candle::hvd {

/// Fusion configuration.
struct FusionOptions {
  /// Maximum fused buffer size in bytes; 0 disables fusion (one allreduce
  /// per tensor, the ablation baseline).
  std::size_t threshold_bytes = 64ull * 1024 * 1024;
};

/// Statistics from one fused reduction sweep.
struct FusionStats {
  std::size_t collectives = 0;   // allreduce operations issued
  std::size_t tensors = 0;       // tensors reduced
  std::size_t fused_bytes = 0;   // total payload
};

/// Allreduce-averages every tensor in `tensors` across ranks, packing
/// consecutive tensors into fusion-buffer-sized groups. All ranks must call
/// with identically-shaped tensor lists.
///
/// Thread contract: called concurrently from every rank thread with the
/// rank's own tensors and fusion buffer; cross-rank synchronization happens
/// inside the communicator's collectives. The unpack path is guarded by
/// CANDLE_CHECK (logical bounds, sanitizer/debug builds).
FusionStats allreduce_average_fused(Context& ctx,
                                    const std::vector<Tensor*>& tensors,
                                    const FusionOptions& options = {});

}  // namespace candle::hvd
