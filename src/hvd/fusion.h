// Tensor fusion: batching small allreduces.
//
// Horovod "is able to batch small allreduce operations by combining all the
// tensors that are ready to be reduced at a given moment into one reduction
// operation" (paper §2.2). This module implements that: gradient tensors are
// packed into a fusion buffer (64 MB by default, Horovod's
// HOROVOD_FUSION_THRESHOLD) and reduced with one collective per buffer-full
// instead of one per tensor.
//
// Bucket assignment is factored out as a pure function (assign_buckets) and
// single-bucket reduction as a shared primitive (allreduce_bucket): both the
// synchronous sweep below and the backward-overlapped BucketScheduler
// (hvd/bucket_scheduler.h) are built on them, so the buffer layout, the
// collective payloads, and the per-bucket reduction order are identical on
// the two paths — which is what makes overlapped training bit-identical to
// synchronous training.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "comm/wire_codec.h"
#include "common/aligned.h"
#include "hvd/context.h"
#include "tensor/tensor.h"

namespace candle::hvd {

/// Fusion configuration.
struct FusionOptions {
  /// Maximum fused buffer size in bytes; 0 disables fusion (one allreduce
  /// per tensor, the ablation baseline).
  std::size_t threshold_bytes = 64ull * 1024 * 1024;

  /// Overlap gradient communication with backward compute: the
  /// DistributedOptimizer schedules per-bucket allreduces on a background
  /// comm thread as each bucket's last gradient is produced, instead of one
  /// synchronous sweep after backward (runner/sim `--overlap` knob).
  bool overlap = false;

  /// Benchmark-only simulated network: sleeps latency + per-rank on-wire
  /// bytes / bandwidth around every bucket collective, emulating a real
  /// interconnect on a shared-memory host. The byte term is algorithm- and
  /// dtype-aware (ring moves 2(P-1)/P of the payload, hierarchical only
  /// its inter-node share, compressed dtypes half the width), so the
  /// emulated wire rewards exactly what a real one would. Applied
  /// identically on the synchronous and overlapped paths (sleeps never
  /// change FP results), so the overlap benches compare like against like.
  /// Zero disables.
  double sim_net_latency_s = 0.0;
  double sim_net_bytes_per_s = 0.0;

  /// On-wire dtype for bucket gradient collectives. kFp32 keeps the
  /// bit-exact default contract; kFp16/kBf16 halve collective bytes at the
  /// codec's documented error bound (comm/wire_codec.h), with fp32 master
  /// accumulation inside the communicator.
  comm::WireDtype wire_dtype = comm::WireDtype::kFp32;

  /// Buckets smaller than this many elements stay fp32 even under a
  /// compressed wire_dtype: latency-bound payloads gain nothing from
  /// halved bytes but would still pay two codec passes per hop. The
  /// per-bucket choice is a pure function of the shared bucket plan
  /// (wire_dtype_for), so every rank picks the same dtype.
  std::size_t compress_min_elems = 1024;

  /// Error-feedback (residual) compression: every fusion bucket keeps a
  /// persistent per-rank residual buffer (ResidualState) that accumulates
  /// the wire quantization error each step and folds it back into the next
  /// step's payload before encoding — the 1-bit-SGD/EF-SGD trick that
  /// makes sub-8-bit wire dtypes converge. With payload p = g + e_prev
  /// transmitted as C(p), the new residual is e = p - C(p); rounding error
  /// is carried forward instead of lost, so it cancels over steps rather
  /// than accumulating as bias. A per-step no-op for kFp32 buckets and
  /// single-rank worlds (compression is disabled there, so C is the
  /// identity and the residual stays zero). Deterministic and
  /// rank-invariant: the residual is a pure function of the rank's own
  /// payload sequence, which synchronized data-parallel steps keep
  /// identical across ranks.
  bool error_feedback = false;
};

/// Wire dtype for one bucket of `elems` elements: options.wire_dtype when
/// the bucket clears compress_min_elems, else kFp32. Pure in (options,
/// elems) — no rank or timing input — so all ranks agree per bucket; the
/// communicator rendezvous cross-checks the dtype anyway and fails fast on
/// divergence.
[[nodiscard]] comm::WireDtype wire_dtype_for(const FusionOptions& options,
                                             std::size_t elems);

/// Statistics from one fused reduction sweep (or one overlapped step).
struct FusionStats {
  std::size_t collectives = 0;         // allreduce operations issued
  std::size_t tensors = 0;             // tensors reduced
  std::size_t fused_bytes = 0;         // total payload
  std::size_t buckets_overlapped = 0;  // buckets reduced on the comm thread
};

/// One fusion bucket: the tensors (indices into the caller's tensor list,
/// ascending) reduced by a single collective.
struct Bucket {
  std::vector<std::size_t> tensors;
  std::size_t elems = 0;    // total element count
  bool in_place = false;    // single tensor reduced without packing
                            // (oversized, or fusion disabled)
};

/// Deterministic bucket assignment: greedily packs consecutive tensors into
/// threshold-capped buckets, giving oversized tensors (and, with threshold
/// 0, every tensor) an in-place bucket of their own. A pure function of
/// (numels, threshold_bytes) — no rank, world size, or timing input — so
/// every rank of a world computes the identical plan, which the
/// barrier-sequenced collectives require.
std::vector<Bucket> assign_buckets(const std::vector<std::size_t>& numels,
                                   std::size_t threshold_bytes);

/// Per-rank fusion scratch buffer, persistent across steps: grows
/// monotonically to the largest bucket ever packed and is reused for every
/// subsequent collective instead of reallocating per call. Storage is
/// kCacheLineBytes-aligned (AlignedVector) like all numeric buffers.
class FusionBuffer {
 public:
  /// Span of `elems` floats over the persistent storage (grown if needed).
  std::span<float> acquire(std::size_t elems) {
    if (storage_.size() < elems) storage_.resize(elems);
    return {storage_.data(), elems};
  }

  [[nodiscard]] std::size_t capacity_elems() const { return storage_.size(); }
  [[nodiscard]] const float* data() const { return storage_.data(); }

 private:
  AlignedVector storage_;
};

/// Per-bucket persistent error-feedback residual buffers
/// (FusionOptions::error_feedback), keyed by position in the bucket plan.
/// One instance lives in the DistributedOptimizer and is shared by the
/// synchronous sweep and the overlapped BucketScheduler, so the residual
/// sequence — and therefore training — is bit-exact between the two paths.
/// Written only by whichever thread currently issues the bucket's
/// collective (the rank thread, or the comm thread while the rank thread
/// is quiesced), under the same serialization as the FusionBuffer.
class ResidualState {
 public:
  /// Rebinds to a bucket plan: when the per-bucket element counts differ
  /// from the currently bound plan, every buffer is reallocated and zeroed
  /// (stale residuals from another plan must never leak in); when the plan
  /// is unchanged this is a no-op, so steady-state steps keep accumulating.
  void bind(const std::vector<Bucket>& plan);

  /// Residual buffer of bucket `b` of the bound plan.
  [[nodiscard]] std::span<float> buffer(std::size_t b);
  [[nodiscard]] std::span<const float> buffer(std::size_t b) const;

  [[nodiscard]] std::size_t buckets() const { return buffers_.size(); }

 private:
  std::vector<std::size_t> elems_;
  std::vector<AlignedVector> buffers_;
};

/// Reduces one bucket: packs its tensors into `buffer` (in-place buckets
/// skip the pack), allreduce-averages the payload, unpacks, and accumulates
/// `stats`. Records one NCCL_ALLREDUCE timeline event per bucket when the
/// context has a timeline. The caller provides the bucket plan; both the
/// synchronous sweep and the overlapped comm thread funnel through here.
/// A non-empty `residual` (the bucket's ResidualState buffer, same element
/// count) enables error feedback: the previous step's quantization error is
/// added to the payload before the collective and the new error is stashed
/// for the next step. Empty disables (and is required for fp32 buckets to
/// stay bit-exact).
void allreduce_bucket(Context& ctx, const std::vector<Tensor*>& tensors,
                      const Bucket& bucket, FusionBuffer& buffer,
                      const FusionOptions& options, FusionStats& stats,
                      std::span<float> residual = {});

/// Allreduce-averages every tensor in `tensors` across ranks, packing
/// consecutive tensors into fusion-buffer-sized groups. All ranks must call
/// with identically-shaped tensor lists. `buffer` is the persistent per-rank
/// fusion scratch; when null a call-local buffer is used (tests, one-shot
/// ablations). A non-null `residuals` is bound to the computed bucket plan
/// and threads each bucket's residual buffer through allreduce_bucket
/// (error feedback; pass the optimizer's persistent instance so state
/// survives across steps).
///
/// Thread contract: called concurrently from every rank thread with the
/// rank's own tensors and fusion buffer; cross-rank synchronization happens
/// inside the communicator's collectives. The unpack path is guarded by
/// CANDLE_CHECK (logical bounds, sanitizer/debug builds).
FusionStats allreduce_average_fused(Context& ctx,
                                    const std::vector<Tensor*>& tensors,
                                    const FusionOptions& options = {},
                                    FusionBuffer* buffer = nullptr,
                                    ResidualState* residuals = nullptr);

}  // namespace candle::hvd
