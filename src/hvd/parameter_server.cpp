#include "hvd/parameter_server.h"

#include "common/error.h"

namespace candle::hvd {

ParameterServerOptimizer::ParameterServerOptimizer(
    std::unique_ptr<nn::Optimizer> inner, Context& ctx,
    std::size_t server_rank)
    : inner_(std::move(inner)), ctx_(&ctx), server_rank_(server_rank) {
  require(inner_ != nullptr, "ParameterServerOptimizer: null inner optimizer");
  require(server_rank < ctx.size(),
          "ParameterServerOptimizer: server rank out of range");
}

std::string ParameterServerOptimizer::name() const {
  return "parameter_server(" + inner_->name() + ")";
}

double ParameterServerOptimizer::learning_rate() const {
  return inner_->learning_rate();
}

void ParameterServerOptimizer::set_learning_rate(double lr) {
  inner_->set_learning_rate(lr);
}

void ParameterServerOptimizer::apply(const std::vector<Tensor*>& params,
                                     const std::vector<Tensor*>& grads) {
  const std::size_t P = ctx_->size();

  // Push: every worker's gradients converge on the server rank.
  const double push_start = ctx_->now();
  std::size_t payload = 0;
  for (Tensor* g : grads) {
    ctx_->comm().reduce_sum_to(g->values(), server_rank_);
    payload += g->numel() * sizeof(float);
  }
  bytes_through_server_ += payload;

  // Server applies the averaged gradients with the wrapped optimizer.
  if (ctx_->rank() == server_rank_ && P > 1) {
    const float inv = 1.0f / static_cast<float>(P);
    for (Tensor* g : grads) *g *= inv;
  }
  if (ctx_->rank() == server_rank_) inner_->apply(params, grads);
  ctx_->record("PS_PUSH_APPLY", "parameter_server", push_start,
               ctx_->now() - push_start);
  ctx_->record_phase("PS_PUSH_APPLY", ctx_->now() - push_start);

  // Pull: workers fetch the updated weights from the server.
  const double pull_start = ctx_->now();
  for (Tensor* p : params) {
    ctx_->comm().broadcast(p->values(), server_rank_);
    // payload accounted once (push) plus once (pull):
  }
  bytes_through_server_ += payload;
  ctx_->record("PS_PULL", "parameter_server", pull_start,
               ctx_->now() - pull_start);
}

double parameter_server_step_seconds(std::size_t ranks,
                                     std::size_t payload_bytes,
                                     const PsCostModel& model) {
  require(ranks > 0, "parameter_server_step_seconds: ranks must be > 0");
  if (ranks <= 1) return 0.0;
  // (P-1) workers push N bytes in and pull N bytes out through one NIC.
  const double workers = static_cast<double>(ranks - 1);
  return 2.0 * workers *
         (model.latency_s +
          static_cast<double>(payload_bytes) / model.server_bw);
}

}  // namespace candle::hvd
