// Parameter-server baseline (distributed TensorFlow's gRPC strategy).
//
// The paper's introduction motivates Horovod by contrast with TensorFlow's
// native parameter-server distribution, which "is difficult to use and
// optimize" and centralizes gradient traffic. This module implements that
// baseline so the comparison can be reproduced: workers push gradients to a
// server rank, the server applies the optimizer step, and workers pull the
// updated weights — 2*N*P bytes through one rank per step, versus the
// ring's 2*N*(P-1)/P per rank.
//
// Synchronous variant (all workers per step), built on the same in-process
// communicator substrate as the Horovod layer.
#pragma once

#include <memory>

#include "hvd/context.h"
#include "nn/optimizer.h"

namespace candle::hvd {

/// Optimizer wrapper implementing the synchronous parameter-server update.
/// Rank `server_rank` acts as the parameter server: it averages the pushed
/// gradients and applies the wrapped optimizer; all other ranks' optimizer
/// state stays untouched (their apply is the weight pull).
///
/// After every apply(), all ranks hold identical parameters, the same
/// invariant DistributedOptimizer maintains — only the traffic pattern
/// (and therefore scaling behaviour) differs.
///
/// Thread contract: each rank thread owns its instance (optimizer state is
/// rank-local); apply() participates in collectives, so every rank must
/// call it the same number of times. Push/apply durations are recorded to
/// the context's shared PhaseLedger when one is attached.
class ParameterServerOptimizer final : public nn::Optimizer {
 public:
  ParameterServerOptimizer(std::unique_ptr<nn::Optimizer> inner, Context& ctx,
                           std::size_t server_rank = 0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double learning_rate() const override;
  void set_learning_rate(double lr) override;

  void apply(const std::vector<Tensor*>& params,
             const std::vector<Tensor*>& grads) override;

  /// Bytes this rank pushed/pulled through the server so far.
  [[nodiscard]] std::size_t bytes_through_server() const {
    return bytes_through_server_;
  }

 private:
  std::unique_ptr<nn::Optimizer> inner_;
  Context* ctx_;
  std::size_t server_rank_;
  std::size_t bytes_through_server_ = 0;
};

/// Analytic cost of one synchronous PS step versus one ring allreduce, for
/// the scaling comparison bench: the server's ingress/egress serializes at
/// `server_bw`, so step time grows linearly with worker count.
struct PsCostModel {
  double server_bw = 12.5e9;  // bytes/s into/out of the server rank
  double latency_s = 2.0e-6;
};

double parameter_server_step_seconds(std::size_t ranks,
                                     std::size_t payload_bytes,
                                     const PsCostModel& model = {});

}  // namespace candle::hvd
