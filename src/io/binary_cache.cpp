#include "io/binary_cache.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/error.h"
#include "common/stopwatch.h"
#include "io/mapped_frame.h"

namespace candle::io {
namespace {

/// FNV-1a 64-bit over a byte range.
std::uint64_t fnv1a(const unsigned char* p, std::size_t n,
                    std::uint64_t hash) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= p[i];
    hash *= kPrime;
  }
  return hash;
}

/// Window hashed at each end of the source file.
constexpr std::size_t kHashWindowBytes = 4 * 1024;

/// Reads just the header; returns false on missing/short/invalid file.
bool read_header(const std::string& path, FrameCacheHeader& h) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  const bool ok =
      std::fread(&h, sizeof(h), 1, f) == 1 &&
      std::memcmp(h.magic, kFrameCacheMagic, sizeof(kFrameCacheMagic)) == 0 &&
      h.payload_offset == kFrameCachePayloadOffset;
  std::fclose(f);
  return ok;
}

void write_frame(const DataFrame& df, const std::string& path,
                 const SourceFingerprint& source) {
  require(df.rows > 0 && df.cols > 0, "save_frame: empty frame");
  // Write to a uniquely-named sibling and rename into place: concurrent
  // rank threads racing to build the same cache each publish a complete
  // file, and readers only ever see a fully-written image.
  const std::string tmp =
      path + ".tmp." +
      std::to_string(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) throw IoError("save_frame: cannot open " + tmp);
  FrameCacheHeader h{};
  std::memcpy(h.magic, kFrameCacheMagic, sizeof(kFrameCacheMagic));
  h.payload_offset = kFrameCachePayloadOffset;
  h.rows = df.rows;
  h.cols = df.cols;
  h.source_bytes = source.bytes;
  h.source_mtime_ns = source.mtime_ns;
  h.source_hash = source.hash;
  const char pad[kFrameCachePayloadOffset] = {};
  bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1;
  ok = ok && std::fwrite(pad, kFrameCachePayloadOffset - sizeof(h), 1, f) == 1;
  ok = ok && std::fwrite(df.data.data(), sizeof(float), df.data.size(), f) ==
                 df.data.size();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw IoError("save_frame: short write to " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw IoError("save_frame: cannot publish " + path);
  }
}

void fill_hit_stats(CsvReadStats* stats, const Stopwatch& watch,
                    std::size_t payload_bytes, std::size_t rows,
                    std::size_t cols) {
  if (stats == nullptr) return;
  stats->seconds = watch.seconds();
  stats->bytes = kFrameCachePayloadOffset + payload_bytes;
  stats->rows = rows;
  stats->cols = cols;
  stats->chunks = 0;
  stats->piece_allocs = 0;
}

/// Row indices of rank `rank`'s shard: rank, rank + world, ... with equal
/// floor(rows / world) entries per rank.
std::vector<std::size_t> shard_rows(std::size_t rows, std::size_t rank,
                                    std::size_t world) {
  require(world > 0, "read_csv_cached_sharded: world must be > 0");
  require(rank < world, "read_csv_cached_sharded: rank out of range");
  require(rows >= world, "read_csv_cached_sharded: fewer rows than ranks");
  const std::size_t shard = rows / world;
  std::vector<std::size_t> mine(shard);
  for (std::size_t i = 0; i < shard; ++i) mine[i] = i * world + rank;
  return mine;
}

}  // namespace

SourceFingerprint fingerprint_source(const std::string& path) {
  SourceFingerprint fp;
  std::error_code ec;
  fp.bytes = std::filesystem::file_size(path, ec);
  if (ec) throw IoError("fingerprint_source: cannot stat " + path);
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) throw IoError("fingerprint_source: cannot stat " + path);
  fp.mtime_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    mtime.time_since_epoch())
                    .count();

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw IoError("fingerprint_source: cannot open " + path);
  unsigned char window[kHashWindowBytes];
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis
  const std::size_t head = std::fread(window, 1, sizeof(window), f);
  hash = fnv1a(window, head, hash);
  if (fp.bytes > kHashWindowBytes) {
    const auto tail_begin = static_cast<long>(
        fp.bytes - std::min<std::uint64_t>(fp.bytes, kHashWindowBytes));
    if (std::fseek(f, tail_begin, SEEK_SET) == 0) {
      const std::size_t tail = std::fread(window, 1, sizeof(window), f);
      hash = fnv1a(window, tail, hash);
    }
  }
  std::fclose(f);
  fp.hash = hash;
  return fp;
}

void save_frame(const DataFrame& df, const std::string& path) {
  write_frame(df, path, SourceFingerprint{});
}

DataFrame load_frame(const std::string& path, CsvReadStats* stats) {
  Stopwatch watch;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw IoError("load_frame: cannot open " + path);
  FrameCacheHeader h{};
  if (std::fread(&h, sizeof(h), 1, f) != 1) {
    std::fclose(f);
    throw IoError("load_frame: truncated header in " + path);
  }
  if (std::memcmp(h.magic, kFrameCacheMagic, sizeof(kFrameCacheMagic)) != 0 ||
      h.payload_offset != kFrameCachePayloadOffset) {
    std::fclose(f);
    throw IoError("load_frame: not a v2 frame cache: " + path);
  }
  DataFrame df;
  df.rows = h.rows;
  df.cols = h.cols;
  df.data.resize(df.rows * df.cols);
  bool ok = std::fseek(f, static_cast<long>(h.payload_offset), SEEK_SET) == 0;
  ok = ok && std::fread(df.data.data(), sizeof(float), df.data.size(), f) ==
                 df.data.size();
  std::fclose(f);
  if (!ok) throw IoError("load_frame: truncated payload in " + path);
  fill_hit_stats(stats, watch, df.data.size() * sizeof(float), df.rows,
                 df.cols);
  return df;
}

bool is_cached_frame(const std::string& path) {
  FrameCacheHeader h{};
  return read_header(path, h);
}

std::string cache_path_for(const std::string& csv_path) {
  return csv_path + ".bin";
}

DataFrame read_csv_cached(const std::string& csv_path, LoaderKind loader,
                          CsvReadStats* stats) {
  const std::string cache = cache_path_for(csv_path);
  const SourceFingerprint fp = fingerprint_source(csv_path);

  // Hit criterion: size + content hash. The mtime is recorded in the header
  // for diagnostics but deliberately not required to match — benchmark
  // harnesses rewrite byte-identical CSVs every run, which must stay warm.
  FrameCacheHeader h{};
  if (read_header(cache, h) && h.source_bytes == fp.bytes &&
      h.source_hash == fp.hash)
    return load_frame(cache, stats);  // hit: stats->chunks == 0

  DataFrame df = read_csv(csv_path, loader, stats);
  write_frame(df, cache, fp);
  return df;
}

DataFrame read_csv_cached_sharded(const std::string& csv_path,
                                  std::size_t rank, std::size_t world,
                                  LoaderKind loader, CsvReadStats* stats) {
  const std::string cache = cache_path_for(csv_path);
  const SourceFingerprint fp = fingerprint_source(csv_path);

  FrameCacheHeader h{};
  if (read_header(cache, h) && h.source_bytes == fp.bytes &&
      h.source_hash == fp.hash) {
    // Warm path: copy only this rank's rows out of the mapped image.
    return load_frame_rows(cache, shard_rows(h.rows, rank, world), stats);
  }

  // Cold path: one full parse (every racing rank parses; the rename
  // publish keeps the cache consistent), then gather the shard.
  Stopwatch watch;
  DataFrame df = read_csv(csv_path, loader, stats);
  write_frame(df, cache, fp);
  const std::vector<std::size_t> mine = shard_rows(df.rows, rank, world);
  DataFrame shard;
  shard.rows = mine.size();
  shard.cols = df.cols;
  shard.data.resize(shard.rows * shard.cols);
  for (std::size_t i = 0; i < mine.size(); ++i)
    std::memcpy(shard.data.data() + i * shard.cols,
                df.data.data() + mine[i] * df.cols,
                shard.cols * sizeof(float));
  if (stats != nullptr) {
    stats->seconds = watch.seconds();  // parse + cache build + gather
    stats->rows = shard.rows;
  }
  return shard;
}

}  // namespace candle::io
