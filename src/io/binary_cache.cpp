#include "io/binary_cache.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/error.h"
#include "common/stopwatch.h"

namespace candle::io {
namespace {

constexpr char kMagic[4] = {'C', 'F', 'R', '1'};

struct Header {
  char magic[4];
  std::uint64_t rows;
  std::uint64_t cols;
  std::uint64_t source_bytes;  // byte size of the CSV this was built from
};

/// Reads just the header; returns false on missing/invalid file.
bool read_header(const std::string& path, Header& h) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  const bool ok = std::fread(&h, sizeof(h), 1, f) == 1 &&
                  std::memcmp(h.magic, kMagic, sizeof(kMagic)) == 0;
  std::fclose(f);
  return ok;
}

void write_frame(const DataFrame& df, const std::string& path,
                 std::uint64_t source_bytes) {
  require(df.rows > 0 && df.cols > 0, "save_frame: empty frame");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw IoError("save_frame: cannot open " + path);
  Header h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.rows = df.rows;
  h.cols = df.cols;
  h.source_bytes = source_bytes;
  bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1;
  ok = ok && std::fwrite(df.data.data(), sizeof(float), df.data.size(), f) ==
                 df.data.size();
  std::fclose(f);
  if (!ok) throw IoError("save_frame: short write to " + path);
}

}  // namespace

void save_frame(const DataFrame& df, const std::string& path) {
  write_frame(df, path, 0);
}

DataFrame load_frame(const std::string& path, CsvReadStats* stats) {
  Stopwatch watch;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw IoError("load_frame: cannot open " + path);
  Header h{};
  if (std::fread(&h, sizeof(h), 1, f) != 1) {
    std::fclose(f);
    throw IoError("load_frame: truncated header in " + path);
  }
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    std::fclose(f);
    throw IoError("load_frame: not a frame cache: " + path);
  }
  DataFrame df;
  df.rows = h.rows;
  df.cols = h.cols;
  df.data.resize(df.rows * df.cols);
  const std::size_t n =
      std::fread(df.data.data(), sizeof(float), df.data.size(), f);
  std::fclose(f);
  if (n != df.data.size())
    throw IoError("load_frame: truncated payload in " + path);
  if (stats != nullptr) {
    stats->seconds = watch.seconds();
    stats->bytes = sizeof(Header) + df.data.size() * sizeof(float);
    stats->rows = df.rows;
    stats->cols = df.cols;
    stats->chunks = 0;
    stats->piece_allocs = 0;
  }
  return df;
}

bool is_cached_frame(const std::string& path) {
  Header h{};
  return read_header(path, h);
}

std::string cache_path_for(const std::string& csv_path) {
  return csv_path + ".bin";
}

DataFrame read_csv_cached(const std::string& csv_path, LoaderKind loader,
                          CsvReadStats* stats) {
  const std::string cache = cache_path_for(csv_path);
  std::error_code ec;
  const std::uint64_t csv_size =
      std::filesystem::file_size(csv_path, ec);
  if (ec) throw IoError("read_csv_cached: cannot stat " + csv_path);

  Header h{};
  if (read_header(cache, h) && h.source_bytes == csv_size)
    return load_frame(cache, stats);  // hit: stats->chunks == 0

  DataFrame df = read_csv(csv_path, loader, stats);
  write_frame(df, cache, csv_size);
  return df;
}

}  // namespace candle::io
