// Binary frame cache — the step beyond the paper's optimization.
//
// The paper speeds up repeated CSV parsing; the obvious follow-on (used by
// later CANDLE releases via .npy feather caches) is to parse once and keep
// a binary image whose load cost is a single sequential read. This module
// implements that: a cached frame is a fixed header, zero padding up to a
// 64-byte payload offset, then the raw row-major float payload.
//
// Format v2 ("CFR2"):
//   * the payload starts at kFrameCachePayloadOffset (cache-line aligned,
//     so a memory-mapped payload pointer is 64-byte aligned — see
//     io/mapped_frame.h for the zero-copy reader);
//   * the header carries a content fingerprint of the source CSV (byte
//     size + mtime + FNV-1a of the first and last 4 KiB), so a rewritten
//     CSV of identical length is still detected as a cache miss;
//   * cache files are published with write-to-temp + atomic rename, so
//     concurrent rank threads racing to build the same cache never observe
//     a torn file.
// v1 ("CFR1") files fail header validation and are rebuilt.
#pragma once

#include <cstdint>
#include <string>

#include "io/csv_reader.h"
#include "io/dataframe.h"

namespace candle::io {

/// Magic of the current cache format. Bumped whenever the header layout or
/// validation semantics change; old-magic files are treated as misses.
inline constexpr char kFrameCacheMagic[4] = {'C', 'F', 'R', '2'};

/// Byte offset of the float payload within a cache file. One cache line,
/// so mmap'ed payloads are 64-byte aligned like every Tensor allocation.
inline constexpr std::size_t kFrameCachePayloadOffset = 64;

/// On-disk header of a v2 cache file (bytes [0, sizeof) of the file; the
/// gap up to kFrameCachePayloadOffset is zero padding).
struct FrameCacheHeader {
  char magic[4];                  // kFrameCacheMagic
  std::uint32_t payload_offset;   // == kFrameCachePayloadOffset
  std::uint64_t rows;
  std::uint64_t cols;
  std::uint64_t source_bytes;     // fingerprint of the CSV this was built
  std::int64_t source_mtime_ns;   // from (all zero for save_frame images
  std::uint64_t source_hash;      // that have no source CSV)
};
static_assert(sizeof(FrameCacheHeader) <= kFrameCachePayloadOffset,
              "header must fit before the payload");

/// Content fingerprint of a source CSV used for cache validation.
struct SourceFingerprint {
  std::uint64_t bytes = 0;     // file size
  std::int64_t mtime_ns = 0;   // last-write time, ns since the epoch
  std::uint64_t hash = 0;      // FNV-1a over the first and last 4 KiB
  bool operator==(const SourceFingerprint&) const = default;
};

/// Fingerprints `path`; throws IoError when the file cannot be read.
SourceFingerprint fingerprint_source(const std::string& path);

/// Writes `df` as a binary cache file at `path` (no source fingerprint).
void save_frame(const DataFrame& df, const std::string& path);

/// Loads a cache written by save_frame; throws IoError on corruption or an
/// old-format (non-CFR2) magic.
DataFrame load_frame(const std::string& path, CsvReadStats* stats = nullptr);

/// True when `path` exists and has a valid v2 cache header.
bool is_cached_frame(const std::string& path);

/// Loads `csv_path` through the cache: on a cache hit (cache file exists
/// and its stored fingerprint matches the CSV's current size and content
/// hash; the recorded mtime is diagnostic only, so rewriting an identical
/// CSV stays warm), reads the binary image; on a miss, parses the CSV with
/// `loader`, writes the cache, and returns the frame. `stats->chunks` is 0
/// on a hit (no parsing happened).
DataFrame read_csv_cached(const std::string& csv_path,
                          LoaderKind loader = LoaderKind::kChunked,
                          CsvReadStats* stats = nullptr);

/// Shard-aware cached read for batch-step data parallelism: rank `rank` of
/// `world` returns only rows rank, rank + world, ... of the frame — exactly
/// floor(rows / world) of them, the equal shard sizes the synchronous
/// allreduce requires. On a warm cache the rows are copied straight out of
/// the memory-mapped image, so per-rank load bytes scale ~1/world instead
/// of every rank reading the full file (the mmap analogue of the paper's
/// Table 3 fix). On a miss the CSV is parsed once (full), the cache is
/// written, and the shard is gathered from the parsed frame.
DataFrame read_csv_cached_sharded(const std::string& csv_path,
                                  std::size_t rank, std::size_t world,
                                  LoaderKind loader = LoaderKind::kChunked,
                                  CsvReadStats* stats = nullptr);

/// Cache file path derived from a CSV path ("x.csv" -> "x.csv.bin").
std::string cache_path_for(const std::string& csv_path);

}  // namespace candle::io
