// Binary frame cache — the step beyond the paper's optimization.
//
// The paper speeds up repeated CSV parsing; the obvious follow-on (used by
// later CANDLE releases via .npy feather caches) is to parse once and keep
// a binary image whose load cost is a single sequential read. This module
// implements that: a cached frame is a small header plus the raw float
// payload, validated by size and checksum of the source file metadata.
#pragma once

#include <string>

#include "io/csv_reader.h"
#include "io/dataframe.h"

namespace candle::io {

/// Writes `df` as a binary cache file at `path`.
void save_frame(const DataFrame& df, const std::string& path);

/// Loads a cache written by save_frame; throws IoError on corruption.
DataFrame load_frame(const std::string& path, CsvReadStats* stats = nullptr);

/// True when `path` exists and has the cache magic.
bool is_cached_frame(const std::string& path);

/// Loads `csv_path` through the cache: on a cache hit (cache file exists
/// and matches the CSV's byte size), reads the binary image; on a miss,
/// parses the CSV with `loader`, writes the cache, and returns the frame.
/// `stats->chunks` is 0 on a hit (no parsing happened).
DataFrame read_csv_cached(const std::string& csv_path,
                          LoaderKind loader = LoaderKind::kChunked,
                          CsvReadStats* stats = nullptr);

/// Cache file path derived from a CSV path ("x.csv" -> "x.csv.bin").
std::string cache_path_for(const std::string& csv_path);

}  // namespace candle::io
