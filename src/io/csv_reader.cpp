#include "io/csv_reader.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "common/stopwatch.h"

namespace candle::io {
namespace {

/// Parse-level validation failures are IoErrors (bad file content), not
/// InvalidArgument (bad caller arguments).
inline void io_require(bool cond, const std::string& msg) {
  if (!cond) throw IoError(msg);
}

/// RAII FILE handle.
struct File {
  std::FILE* f = nullptr;
  explicit File(const std::string& path) {
    f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) throw IoError("read_csv: cannot open " + path);
  }
  ~File() {
    if (f) std::fclose(f);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
};

/// Fast float parse used by the optimized/dask paths.
inline float parse_fast(const char* begin, const char* end) {
  if (begin == end) return 0.0f;  // empty field == NaN -> 0
  float v = 0.0f;
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end)
    throw IoError("read_csv: malformed numeric field '" +
                  std::string(begin, end) + "'");
  return v;
}

/// Float64 cell conversion for the original reader. The per-cell cost is
/// deliberately the same as the fast path: pandas' C tokenizer converts
/// cells at comparable speed under both low_memory settings — the
/// low_memory=True penalty the paper measured comes from per-(chunk,
/// column) piece management and consolidation, which flush_chunk models.
inline double parse_double(const char* begin, const char* end) {
  if (begin == end) return 0.0;  // empty field == NaN -> 0
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end)
    throw IoError("read_csv: malformed numeric field '" +
                  std::string(begin, end) + "'");
  return v;
}

/// Attempted integer conversion used by the original reader's dtype
/// inference (pandas tries int64 per column chunk before falling back).
inline bool try_parse_int(const char* begin, const char* end,
                          long long& out) {
  if (begin == end) return false;
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

std::string loader_name(LoaderKind kind) {
  switch (kind) {
    case LoaderKind::kOriginal: return "pandas.read_csv (original)";
    case LoaderKind::kChunked: return "chunked, low_memory=False";
    case LoaderKind::kDask: return "dask.dataframe";
    case LoaderKind::kParallel: return "parallel chunked (threaded)";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// read_csv_original: pandas low_memory=True model.
// ---------------------------------------------------------------------------

DataFrame read_csv_original(const std::string& path, CsvReadStats* stats,
                            std::size_t low_memory_chunk_bytes) {
  require(low_memory_chunk_bytes >= 4096,
          "read_csv_original: chunk must be >= 4 KiB");
  Stopwatch watch;
  File file(path);

  // Per-column piece lists: each text chunk contributes one piece per column.
  std::vector<std::vector<std::vector<double>>> column_pieces;
  std::size_t cols = 0;
  std::size_t total_rows = 0;
  std::size_t chunks = 0;
  std::size_t piece_allocs = 0;
  std::size_t file_bytes = 0;

  std::vector<char> buf(low_memory_chunk_bytes);
  std::string carry;  // partial trailing line from the previous read
  std::vector<std::pair<const char*, const char*>> cells;

  // Rows of the current text chunk, as (begin, end) cell ranges per column.
  std::vector<std::vector<std::pair<const char*, const char*>>> chunk_rows;

  auto flush_chunk = [&]() {
    if (chunk_rows.empty()) return;
    ++chunks;
    if (column_pieces.empty()) column_pieces.resize(cols);
    // Per (chunk, column): allocate a piece and run dtype inference.
    for (std::size_t c = 0; c < cols; ++c) {
      std::vector<double> piece;
      piece.reserve(chunk_rows.size());
      ++piece_allocs;
      // Dtype inference: attempt int64 until a cell refuses, then restart
      // the column as float64 (pandas' fallback re-parse).
      bool as_int = true;
      for (const auto& row : chunk_rows) {
        long long iv = 0;
        if (!try_parse_int(row[c].first, row[c].second, iv)) {
          as_int = false;
          break;
        }
        piece.push_back(static_cast<double>(iv));
      }
      if (!as_int) {
        piece.clear();
        for (const auto& row : chunk_rows)
          piece.push_back(parse_double(row[c].first, row[c].second));
      }
      column_pieces[c].push_back(std::move(piece));
    }
    total_rows += chunk_rows.size();
    chunk_rows.clear();
  };

  auto process_line = [&](const char* begin, const char* end) {
    if (begin == end) return;  // skip blank lines
    cells.clear();
    const char* field = begin;
    for (const char* p = begin; p <= end; ++p) {
      if (p == end || *p == ',') {
        cells.emplace_back(field, p);
        field = p + 1;
      }
    }
    if (cols == 0) {
      cols = cells.size();
    } else {
      io_require(cells.size() == cols,
              "read_csv: ragged row (got " + std::to_string(cells.size()) +
                  " fields, expected " + std::to_string(cols) + ")");
    }
    chunk_rows.push_back(cells);
  };

  std::string text;  // the chunk's stable backing store
  while (true) {
    const std::size_t n = std::fread(buf.data(), 1, buf.size(), file.f);
    file_bytes += n;
    if (n == 0) break;
    text.assign(carry);
    text.append(buf.data(), n);
    carry.clear();
    // Keep the trailing partial line for the next chunk.
    std::size_t last_nl = text.rfind('\n');
    if (last_nl == std::string::npos) {
      carry = text;
      continue;
    }
    carry.assign(text, last_nl + 1, std::string::npos);
    const char* p = text.data();
    const char* chunk_end = text.data() + last_nl;  // exclusive of final \n
    while (p <= chunk_end) {
      const char* nl = static_cast<const char*>(
          std::memchr(p, '\n', static_cast<std::size_t>(chunk_end - p + 1)));
      if (nl == nullptr) nl = chunk_end;
      const char* line_end = (nl > p && nl[-1] == '\r') ? nl - 1 : nl;
      process_line(p, line_end);
      p = nl + 1;
    }
    flush_chunk();
  }
  if (!carry.empty()) {
    text.assign(carry);
    const char* b = text.data();
    const char* e = b + text.size();
    if (e > b && e[-1] == '\r') --e;
    process_line(b, e);
    flush_chunk();
  }

  io_require(cols > 0 && total_rows > 0, "read_csv: empty file " + path);

  // Concatenate per-column pieces (the low_memory consolidation copy) ...
  std::vector<std::vector<double>> columns(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    columns[c].reserve(total_rows);
    for (const auto& piece : column_pieces[c])
      columns[c].insert(columns[c].end(), piece.begin(), piece.end());
    column_pieces[c].clear();
  }
  column_pieces.clear();

  // ... then materialize the row-major frame (DataFrame.values copy).
  DataFrame df;
  df.rows = total_rows;
  df.cols = cols;
  df.data.resize(total_rows * cols);
  for (std::size_t c = 0; c < cols; ++c)
    for (std::size_t r = 0; r < total_rows; ++r)
      df.data[r * cols + c] = static_cast<float>(columns[c][r]);

  if (stats != nullptr) {
    stats->seconds = watch.seconds();
    stats->bytes = file_bytes;
    stats->rows = df.rows;
    stats->cols = df.cols;
    stats->chunks = chunks;
    stats->piece_allocs = piece_allocs;
  }
  return df;
}

// ---------------------------------------------------------------------------
// read_csv_chunked: the paper's optimized loader.
// ---------------------------------------------------------------------------

DataFrame read_csv_chunked(const std::string& path, CsvReadStats* stats,
                           std::size_t chunk_bytes) {
  require(chunk_bytes >= 4096, "read_csv_chunked: chunk must be >= 4 KiB");
  Stopwatch watch;
  File file(path);

  DataFrame df;
  std::size_t file_bytes = 0;
  std::size_t blocks = 0;

  std::vector<char> buf(chunk_bytes);
  std::string carry;
  std::string text;

  auto process_line = [&](const char* begin, const char* end) {
    if (begin == end) return;
    std::size_t c = 0;
    const char* field = begin;
    for (const char* p = begin; p <= end; ++p) {
      if (p == end || *p == ',') {
        df.data.push_back(parse_fast(field, p));
        field = p + 1;
        ++c;
      }
    }
    if (df.cols == 0) {
      df.cols = c;
    } else {
      io_require(c == df.cols,
              "read_csv: ragged row (got " + std::to_string(c) +
                  " fields, expected " + std::to_string(df.cols) + ")");
    }
    ++df.rows;
  };

  while (true) {
    const std::size_t n = std::fread(buf.data(), 1, buf.size(), file.f);
    file_bytes += n;
    if (n == 0) break;
    ++blocks;
    text.assign(carry);
    text.append(buf.data(), n);
    carry.clear();
    const std::size_t last_nl = text.rfind('\n');
    if (last_nl == std::string::npos) {
      carry = text;
      continue;
    }
    carry.assign(text, last_nl + 1, std::string::npos);
    const char* p = text.data();
    const char* chunk_end = text.data() + last_nl;
    while (p <= chunk_end) {
      const char* nl = static_cast<const char*>(
          std::memchr(p, '\n', static_cast<std::size_t>(chunk_end - p + 1)));
      if (nl == nullptr) nl = chunk_end;
      const char* line_end = (nl > p && nl[-1] == '\r') ? nl - 1 : nl;
      process_line(p, line_end);
      p = nl + 1;
    }
  }
  if (!carry.empty()) {
    text.assign(carry);
    const char* b = text.data();
    const char* e = b + text.size();
    if (e > b && e[-1] == '\r') --e;
    process_line(b, e);
  }

  io_require(df.cols > 0 && df.rows > 0, "read_csv: empty file " + path);
  if (stats != nullptr) {
    stats->seconds = watch.seconds();
    stats->bytes = file_bytes;
    stats->rows = df.rows;
    stats->cols = df.cols;
    stats->chunks = blocks;
    stats->piece_allocs = 0;
  }
  return df;
}

// ---------------------------------------------------------------------------
// read_csv_dask: segmented reader.
// ---------------------------------------------------------------------------

DataFrame read_csv_dask(const std::string& path, CsvReadStats* stats,
                        std::size_t segments) {
  require(segments > 0, "read_csv_dask: segments must be > 0");
  Stopwatch watch;

  // Read the whole file (dask mmaps / reads byte ranges per partition).
  std::string text;
  {
    File file(path);
    std::fseek(file.f, 0, SEEK_END);
    const long size = std::ftell(file.f);
    io_require(size > 0, "read_csv: empty file " + path);
    std::fseek(file.f, 0, SEEK_SET);
    text.resize(static_cast<std::size_t>(size));
    if (std::fread(text.data(), 1, text.size(), file.f) != text.size())
      throw IoError("read_csv: short read on " + path);
  }

  // Segment boundaries aligned to line starts.
  std::vector<std::size_t> bounds{0};
  for (std::size_t s = 1; s < segments; ++s) {
    std::size_t pos = s * text.size() / segments;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos || nl + 1 >= text.size()) break;
    if (nl + 1 > bounds.back()) bounds.push_back(nl + 1);
  }
  bounds.push_back(text.size());

  // Parse each partition into its own frame (fast parser), then concat.
  std::vector<DataFrame> parts;
  for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
    DataFrame part;
    const char* p = text.data() + bounds[s];
    const char* seg_end = text.data() + bounds[s + 1];
    while (p < seg_end) {
      const char* nl = static_cast<const char*>(
          std::memchr(p, '\n', static_cast<std::size_t>(seg_end - p)));
      const char* line_end = nl != nullptr ? nl : seg_end;
      const char* trimmed = (line_end > p && line_end[-1] == '\r')
                                ? line_end - 1
                                : line_end;
      if (trimmed > p) {
        std::size_t c = 0;
        const char* field = p;
        for (const char* q = p; q <= trimmed; ++q) {
          if (q == trimmed || *q == ',') {
            part.data.push_back(parse_fast(field, q));
            field = q + 1;
            ++c;
          }
        }
        if (part.cols == 0) {
          part.cols = c;
        } else {
          io_require(c == part.cols, "read_csv: ragged row in dask segment");
        }
        ++part.rows;
      }
      if (nl == nullptr) break;
      p = nl + 1;
    }
    if (part.rows > 0) parts.push_back(std::move(part));
  }

  io_require(!parts.empty(), "read_csv: no data parsed from " + path);
  DataFrame df;
  df.cols = parts.front().cols;
  for (const auto& part : parts) {
    io_require(part.cols == df.cols, "read_csv: segment column mismatch");
    df.rows += part.rows;
  }
  df.data.reserve(df.rows * df.cols);
  for (auto& part : parts)
    df.data.insert(df.data.end(), part.data.begin(), part.data.end());

  if (stats != nullptr) {
    stats->seconds = watch.seconds();
    stats->bytes = text.size();
    stats->rows = df.rows;
    stats->cols = df.cols;
    stats->chunks = parts.size();
    stats->piece_allocs = 0;
  }
  return df;
}

// ---------------------------------------------------------------------------
// read_csv_parallel: the threaded two-phase extension of the chunked
// reader. Phase 1 newline-indexes 16 MB blocks across the pool; phase 2
// parses disjoint row ranges straight into the row-major frame. Every cell
// goes through the same parse_fast as read_csv_chunked, so the resulting
// frame is exactly equal for any thread count.
// ---------------------------------------------------------------------------

DataFrame read_csv_parallel(const std::string& path, CsvReadStats* stats,
                            std::size_t block_bytes) {
  require(block_bytes >= 4096, "read_csv_parallel: block must be >= 4 KiB");
  Stopwatch watch;

  // One sequential read of the file; the parallelism is in the parsing,
  // which is where the chunked reader spends its time.
  std::string text;
  {
    File file(path);
    std::fseek(file.f, 0, SEEK_END);
    const long size = std::ftell(file.f);
    io_require(size > 0, "read_csv: empty file " + path);
    std::fseek(file.f, 0, SEEK_SET);
    text.resize(static_cast<std::size_t>(size));
    if (std::fread(text.data(), 1, text.size(), file.f) != text.size())
      throw IoError("read_csv: short read on " + path);
  }

  // Phase 1: per-block newline index. Blocks are disjoint byte ranges, so
  // each worker scans its own blocks with memchr; concatenating the block
  // lists in block order reproduces the sequential newline sequence.
  const std::size_t blocks = (text.size() + block_bytes - 1) / block_bytes;
  std::vector<std::vector<std::size_t>> block_newlines(blocks);
  parallel::parallel_for(0, blocks, 1, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t blk = b0; blk < b1; ++blk) {
      const std::size_t lo = blk * block_bytes;
      const std::size_t hi = std::min(text.size(), lo + block_bytes);
      std::vector<std::size_t>& out = block_newlines[blk];
      const char* base = text.data();
      std::size_t at = lo;
      while (at < hi) {
        const char* nl = static_cast<const char*>(
            std::memchr(base + at, '\n', hi - at));
        if (nl == nullptr) break;
        at = static_cast<std::size_t>(nl - base);
        out.push_back(at);
        ++at;
      }
    }
  });

  // Line table in file order: trim a trailing '\r' per line and drop blank
  // lines, exactly as the chunked reader's process_line does.
  std::vector<std::pair<std::size_t, std::size_t>> rows;
  std::size_t line_start = 0;
  auto add_line = [&](std::size_t begin, std::size_t end) {
    if (end > begin && text[end - 1] == '\r') --end;
    if (end > begin) rows.emplace_back(begin, end);
  };
  for (const auto& nls : block_newlines) {
    for (std::size_t nl : nls) {
      add_line(line_start, nl);
      line_start = nl + 1;
    }
  }
  if (line_start < text.size()) add_line(line_start, text.size());
  io_require(!rows.empty(), "read_csv: empty file " + path);

  // Column count from the first row (one serial line scan).
  std::size_t cols = 1;
  for (std::size_t i = rows.front().first; i < rows.front().second; ++i)
    if (text[i] == ',') ++cols;

  DataFrame df;
  df.rows = rows.size();
  df.cols = cols;
  df.data.resize(df.rows * df.cols);

  // Phase 2: parse disjoint row ranges directly into the final buffer.
  // Ragged rows throw; the pool rethrows the lowest-chunk error on the
  // calling thread.
  float* out = df.data.data();
  parallel::parallel_for(0, rows.size(), 64, [&](std::size_t r0,
                                                 std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      const char* begin = text.data() + rows[r].first;
      const char* end = text.data() + rows[r].second;
      float* cell = out + r * cols;
      std::size_t c = 0;
      const char* field = begin;
      for (const char* p = begin; p <= end; ++p) {
        if (p == end || *p == ',') {
          io_require(c < cols,
                     "read_csv: ragged row (got more fields than the " +
                         std::to_string(cols) + " expected)");
          cell[c++] = parse_fast(field, p);
          field = p + 1;
        }
      }
      io_require(c == cols,
                 "read_csv: ragged row (got " + std::to_string(c) +
                     " fields, expected " + std::to_string(cols) + ")");
    }
  });

  if (stats != nullptr) {
    stats->seconds = watch.seconds();
    stats->bytes = text.size();
    stats->rows = df.rows;
    stats->cols = df.cols;
    stats->chunks = blocks;
    stats->piece_allocs = 0;
  }
  return df;
}

// ---------------------------------------------------------------------------
// read_csv_selected: header skipping + column selection.
// ---------------------------------------------------------------------------

DataFrame read_csv_selected(const std::string& path, const CsvSelect& select,
                            CsvReadStats* stats, std::size_t chunk_bytes) {
  require(chunk_bytes >= 4096, "read_csv_selected: chunk must be >= 4 KiB");
  Stopwatch watch;
  File file(path);

  // Sorted, validated selection mask.
  std::vector<std::size_t> cols_wanted = select.usecols;
  std::sort(cols_wanted.begin(), cols_wanted.end());
  io_require(std::adjacent_find(cols_wanted.begin(), cols_wanted.end()) ==
                 cols_wanted.end(),
             "read_csv_selected: duplicate column in usecols");

  DataFrame df;
  std::size_t file_bytes = 0;
  std::size_t file_cols = 0;   // columns in the file (before selection)
  std::size_t line_no = 0;
  std::vector<char> buf(chunk_bytes);
  std::string carry;
  std::string text;

  auto process_line = [&](const char* begin, const char* end) {
    if (begin == end) return;
    if (line_no++ < select.skip_rows) return;
    std::size_t c = 0;
    std::size_t picked = 0;
    const char* field = begin;
    for (const char* p = begin; p <= end; ++p) {
      if (p == end || *p == ',') {
        const bool keep =
            cols_wanted.empty() ||
            (picked < cols_wanted.size() && cols_wanted[picked] == c);
        if (keep) {
          df.data.push_back(parse_fast(field, p));
          ++picked;
        }
        field = p + 1;
        ++c;
      }
    }
    if (file_cols == 0) {
      file_cols = c;
      io_require(cols_wanted.empty() || cols_wanted.back() < c,
                 "read_csv_selected: usecols index out of range (file has " +
                     std::to_string(c) + " columns)");
      df.cols = cols_wanted.empty() ? c : cols_wanted.size();
    } else {
      io_require(c == file_cols, "read_csv: ragged row (got " +
                                     std::to_string(c) + " fields, expected " +
                                     std::to_string(file_cols) + ")");
    }
    ++df.rows;
  };

  while (true) {
    const std::size_t n = std::fread(buf.data(), 1, buf.size(), file.f);
    file_bytes += n;
    if (n == 0) break;
    text.assign(carry);
    text.append(buf.data(), n);
    carry.clear();
    const std::size_t last_nl = text.rfind('\n');
    if (last_nl == std::string::npos) {
      carry = text;
      continue;
    }
    carry.assign(text, last_nl + 1, std::string::npos);
    const char* p = text.data();
    const char* chunk_end = text.data() + last_nl;
    while (p <= chunk_end) {
      const char* nl = static_cast<const char*>(
          std::memchr(p, '\n', static_cast<std::size_t>(chunk_end - p + 1)));
      if (nl == nullptr) nl = chunk_end;
      const char* line_end = (nl > p && nl[-1] == '\r') ? nl - 1 : nl;
      process_line(p, line_end);
      p = nl + 1;
    }
  }
  if (!carry.empty()) {
    text.assign(carry);
    const char* b = text.data();
    const char* e = b + text.size();
    if (e > b && e[-1] == '\r') --e;
    process_line(b, e);
  }

  io_require(df.cols > 0 && df.rows > 0,
             "read_csv_selected: no data rows in " + path);
  if (stats != nullptr) {
    stats->seconds = watch.seconds();
    stats->bytes = file_bytes;
    stats->rows = df.rows;
    stats->cols = df.cols;
    stats->chunks = 1;
    stats->piece_allocs = 0;
  }
  return df;
}

DataFrame read_csv(const std::string& path, LoaderKind kind,
                   CsvReadStats* stats) {
  switch (kind) {
    case LoaderKind::kOriginal: return read_csv_original(path, stats);
    case LoaderKind::kChunked: return read_csv_chunked(path, stats);
    case LoaderKind::kDask: return read_csv_dask(path, stats);
    case LoaderKind::kParallel: return read_csv_parallel(path, stats);
  }
  throw InvalidArgument("read_csv: bad loader kind");
}

}  // namespace candle::io
