// CSV readers reproducing the data-loading strategies compared in the paper
// (Section 5, Tables 3 and 4).
//
// Four strategies are implemented:
//
//  * read_csv_original — models `pandas.read_csv()` with its default
//    low_memory=True: the file is tokenized in small text chunks; for every
//    (chunk, column) pair a separate piece buffer is allocated and a dtype
//    inference pass runs (try integer, fall back to float); at end-of-file
//    all per-column pieces are concatenated (extra copy), then the columnar
//    frame is transposed into the row-major result (second copy). For wide
//    files (tens of thousands of columns) the per-(chunk, column) overhead
//    dominates, exactly the pathology the paper measured on NT3/P1B1/P1B2.
//
//  * read_csv_chunked — the paper's fix: sequential 16 MB block reads
//    (Spectrum Scale's largest I/O block on Summit) parsed in a single pass
//    with std::from_chars straight into the final row-major buffer, no type
//    re-inference and no concatenation.
//
//  * read_csv_dask — a Dask-DataFrame-like strategy: the file is split into
//    row segments parsed independently with the fast parser into per-segment
//    frames that are concatenated at the end. The paper found it faster
//    than the original but slower than the 16 MB chunked reader.
//
//  * read_csv_parallel — the threaded extension of the chunked reader
//    (this repo's step beyond the paper): phase 1 indexes newlines per
//    16 MB block across the candle::parallel pool, phase 2 parses disjoint
//    row ranges with std::from_chars directly into the final row-major
//    buffer. Cell parsing is identical to read_csv_chunked, so the frames
//    are exactly equal for any thread count.
//
// All readers parse real bytes from a real file and return identical frames;
// equivalence is enforced by tests.
#pragma once

#include <cstddef>
#include <string>

#include "io/dataframe.h"

namespace candle::io {

/// Measurements from one read.
struct CsvReadStats {
  double seconds = 0.0;        // wall-clock parse time
  std::size_t bytes = 0;       // file size
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t chunks = 0;      // text chunks (original) or blocks (chunked)
  std::size_t piece_allocs = 0;  // per-(chunk,column) buffers (original only)
};

/// Pandas-default model (low_memory=True). `low_memory_chunk_bytes` is the
/// tokenizer chunk size (pandas uses 256 KiB of text).
DataFrame read_csv_original(const std::string& path, CsvReadStats* stats = nullptr,
                            std::size_t low_memory_chunk_bytes = 256 * 1024);

/// The paper's optimized loader: chunked read with low_memory=False.
/// `chunk_bytes` defaults to 16 MiB per the paper.
DataFrame read_csv_chunked(const std::string& path, CsvReadStats* stats = nullptr,
                           std::size_t chunk_bytes = 16 * 1024 * 1024);

/// Dask-like segmented reader. `segments` row partitions (default 8).
DataFrame read_csv_dask(const std::string& path, CsvReadStats* stats = nullptr,
                        std::size_t segments = 8);

/// Multi-threaded two-phase reader over the candle::parallel pool (thread
/// count from CANDLE_NUM_THREADS / parallel::set_num_threads). Exactly
/// frame-equal to read_csv_chunked; `block_bytes` sizes the phase-1
/// newline-index blocks (16 MiB, matching the chunked reader's I/O block).
DataFrame read_csv_parallel(const std::string& path,
                            CsvReadStats* stats = nullptr,
                            std::size_t block_bytes = 16 * 1024 * 1024);

/// Options for read_csv_selected (the CANDLE loaders pass header=None or a
/// header row plus a usecols subset to pandas.read_csv).
struct CsvSelect {
  std::size_t skip_rows = 0;            // e.g. 1 to drop a header line
  std::vector<std::size_t> usecols;     // empty = keep all columns
};

/// Fast chunked reader with row skipping and column selection. Selected
/// columns are emitted in ascending column order regardless of the order
/// given in `usecols`; duplicate/out-of-range columns throw.
DataFrame read_csv_selected(const std::string& path, const CsvSelect& select,
                            CsvReadStats* stats = nullptr,
                            std::size_t chunk_bytes = 16 * 1024 * 1024);

/// Loader selection used by the benchmark runner and the binary cache.
enum class LoaderKind { kOriginal, kChunked, kDask, kParallel };

std::string loader_name(LoaderKind kind);

/// Dispatches to one of the readers above.
DataFrame read_csv(const std::string& path, LoaderKind kind,
                   CsvReadStats* stats = nullptr);

}  // namespace candle::io
