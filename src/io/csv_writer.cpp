#include "io/csv_writer.h"

#include <cstring>

#include "common/error.h"

namespace candle::io {
namespace {
constexpr std::size_t kFlushThreshold = 1 << 20;  // 1 MiB write buffer
}

CsvWriter::CsvWriter(const std::string& path) {
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) throw IoError("CsvWriter: cannot open " + path);
  buffer_.reserve(kFlushThreshold + (1 << 16));
}

CsvWriter::~CsvWriter() {
  if (f_ != nullptr) close();
}

void CsvWriter::put(const char* s, std::size_t n) {
  buffer_.append(s, n);
  if (buffer_.size() >= kFlushThreshold) {
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), f_) != buffer_.size())
      throw IoError("CsvWriter: short write");
    bytes_ += buffer_.size();
    buffer_.clear();
  }
}

void CsvWriter::write_row(std::span<const float> values) {
  char tmp[48];
  for (std::size_t i = 0; i < values.size(); ++i) {
    const int n = std::snprintf(tmp, sizeof(tmp), i ? ",%.6g" : "%.6g",
                                static_cast<double>(values[i]));
    put(tmp, static_cast<std::size_t>(n));
  }
  put("\n", 1);
}

void CsvWriter::write_labeled_row(long long label,
                                  std::span<const float> values) {
  char tmp[48];
  int n = std::snprintf(tmp, sizeof(tmp), "%lld", label);
  put(tmp, static_cast<std::size_t>(n));
  for (float v : values) {
    n = std::snprintf(tmp, sizeof(tmp), ",%.6g", static_cast<double>(v));
    put(tmp, static_cast<std::size_t>(n));
  }
  put("\n", 1);
}

std::size_t CsvWriter::close() {
  if (f_ == nullptr) return bytes_;
  if (!buffer_.empty()) {
    if (std::fwrite(buffer_.data(), 1, buffer_.size(), f_) != buffer_.size())
      throw IoError("CsvWriter: short write on close");
    bytes_ += buffer_.size();
    buffer_.clear();
  }
  std::fclose(f_);
  f_ = nullptr;
  return bytes_;
}

}  // namespace candle::io
