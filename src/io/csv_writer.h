// Streaming CSV writer used by the synthetic data generator.
#pragma once

#include <cstdio>
#include <memory>
#include <span>
#include <string>

namespace candle::io {

/// Buffered CSV writer. Values are written with %.6g (matching the density
/// of the CANDLE csv exports, ~9 bytes per cell including the comma).
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row of floats.
  void write_row(std::span<const float> values);

  /// Writes a row that starts with an integer label followed by floats
  /// (the NT3/P1B2 on-disk layout: class in column 0).
  void write_labeled_row(long long label, std::span<const float> values);

  /// Flushes and closes; returns total bytes written. Safe to call once;
  /// the destructor closes too if not already done.
  std::size_t close();

  [[nodiscard]] std::size_t bytes_written() const { return bytes_; }

 private:
  void put(const char* s, std::size_t n);

  std::FILE* f_ = nullptr;
  std::string buffer_;
  std::size_t bytes_ = 0;
};

}  // namespace candle::io
