// Minimal columnar result of a CSV parse (pandas.DataFrame stand-in).
#pragma once

#include <cstddef>
#include <vector>

#include "tensor/tensor.h"

namespace candle::io {

/// Row-major numeric frame produced by the CSV readers.
struct DataFrame {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<float> data;  // rows * cols, row-major

  [[nodiscard]] float at(std::size_t r, std::size_t c) const {
    return data[r * cols + c];
  }

  /// Moves the frame into a (rows, cols) tensor.
  [[nodiscard]] Tensor to_tensor() && {
    return Tensor({rows, cols}, std::move(data));
  }
};

}  // namespace candle::io
