#include "io/mapped_frame.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/error.h"
#include "common/stopwatch.h"

namespace candle::io {

MappedFrame::MappedFrame(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError("MappedFrame: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw IoError("MappedFrame: cannot stat " + path);
  }
  const auto file_bytes = static_cast<std::size_t>(st.st_size);
  if (file_bytes < kFrameCachePayloadOffset) {
    ::close(fd);
    throw IoError("MappedFrame: truncated header in " + path);
  }
  void* map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the inode alive
  if (map == MAP_FAILED) throw IoError("MappedFrame: mmap failed for " + path);
  map_ = map;
  map_bytes_ = file_bytes;

  FrameCacheHeader h{};
  std::memcpy(&h, map_, sizeof(h));
  if (std::memcmp(h.magic, kFrameCacheMagic, sizeof(kFrameCacheMagic)) != 0 ||
      h.payload_offset != kFrameCachePayloadOffset) {
    unmap();
    throw IoError("MappedFrame: not a v2 frame cache: " + path);
  }
  const std::size_t payload_bytes = h.rows * h.cols * sizeof(float);
  if (file_bytes != kFrameCachePayloadOffset + payload_bytes) {
    unmap();
    throw IoError("MappedFrame: payload size mismatch in " + path);
  }
  rows_ = h.rows;
  cols_ = h.cols;
  payload_ = reinterpret_cast<const float*>(
      static_cast<const char*>(map_) + kFrameCachePayloadOffset);
}

MappedFrame::~MappedFrame() { unmap(); }

MappedFrame::MappedFrame(MappedFrame&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      payload_(std::exchange(other.payload_, nullptr)),
      rows_(std::exchange(other.rows_, 0)),
      cols_(std::exchange(other.cols_, 0)) {}

MappedFrame& MappedFrame::operator=(MappedFrame&& other) noexcept {
  if (this != &other) {
    unmap();
    map_ = std::exchange(other.map_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    payload_ = std::exchange(other.payload_, nullptr);
    rows_ = std::exchange(other.rows_, 0);
    cols_ = std::exchange(other.cols_, 0);
  }
  return *this;
}

void MappedFrame::unmap() noexcept {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
  map_ = nullptr;
  map_bytes_ = 0;
  payload_ = nullptr;
}

std::span<const float> MappedFrame::row(std::size_t r) const {
  require(r < rows_, "MappedFrame::row: index out of range");
  return {payload_ + r * cols_, cols_};
}

DataFrame MappedFrame::to_frame() const {
  DataFrame df;
  df.rows = rows_;
  df.cols = cols_;
  df.data.assign(payload_, payload_ + rows_ * cols_);
  return df;
}

DataFrame load_frame_rows(const std::string& path,
                          const std::vector<std::size_t>& rows,
                          CsvReadStats* stats) {
  Stopwatch watch;
  const MappedFrame frame(path);
  DataFrame df;
  df.rows = rows.size();
  df.cols = frame.cols();
  df.data.resize(df.rows * df.cols);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::span<const float> src = frame.row(rows[i]);
    std::memcpy(df.data.data() + i * df.cols, src.data(),
                df.cols * sizeof(float));
  }
  if (stats != nullptr) {
    stats->seconds = watch.seconds();
    // Bytes actually touched: the header page plus the copied rows.
    stats->bytes =
        kFrameCachePayloadOffset + rows.size() * df.cols * sizeof(float);
    stats->rows = df.rows;
    stats->cols = df.cols;
    stats->chunks = 0;
    stats->piece_allocs = 0;
  }
  return df;
}

}  // namespace candle::io
