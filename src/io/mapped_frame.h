// Zero-copy memory-mapped view of a binary frame cache.
//
// load_frame() reads the whole payload into heap memory — fine when the
// frame is consumed entirely, wasteful when a rank only needs its shard of
// the rows. MappedFrame mmaps the cache file instead and exposes row views
// directly into the page cache: validation touches only the header, and a
// subsequent sharded copy touches only the pages that hold the requested
// rows, so per-rank load bytes scale with the shard size, not the file
// size. The v2 format's 64-byte payload offset keeps every mapped row
// buffer as aligned as a Tensor allocation.
//
// The mapping is read-only and private; the file can be atomically replaced
// (write-to-temp + rename, as the cache writer does) while a MappedFrame is
// live — the mapping pins the old inode.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "io/binary_cache.h"
#include "io/dataframe.h"

namespace candle::io {

/// Read-only mmap of a v2 cache file with zero-copy row access.
class MappedFrame {
 public:
  /// Maps and validates `path`; throws IoError on open/map failure, a bad
  /// or old-format header, or a payload/file-size mismatch (truncation).
  explicit MappedFrame(const std::string& path);
  ~MappedFrame();

  MappedFrame(MappedFrame&& other) noexcept;
  MappedFrame& operator=(MappedFrame&& other) noexcept;
  MappedFrame(const MappedFrame&) = delete;
  MappedFrame& operator=(const MappedFrame&) = delete;

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  /// Zero-copy view of row `r`; throws InvalidArgument when out of range.
  [[nodiscard]] std::span<const float> row(std::size_t r) const;

  /// The full payload (rows * cols floats, row-major, 64-byte aligned).
  [[nodiscard]] const float* payload() const { return payload_; }
  [[nodiscard]] std::size_t payload_bytes() const {
    return rows_ * cols_ * sizeof(float);
  }

  /// Heap materialization of the whole frame (tests compare this against
  /// load_frame for frame equality).
  [[nodiscard]] DataFrame to_frame() const;

 private:
  void unmap() noexcept;

  void* map_ = nullptr;          // whole-file mapping
  std::size_t map_bytes_ = 0;
  const float* payload_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Copies only the listed rows (any order, repeats allowed) out of a mapped
/// cache into a fresh frame. `stats->bytes`, when requested, counts the
/// header plus the touched rows only — the point of the sharded path.
DataFrame load_frame_rows(const std::string& path,
                          const std::vector<std::size_t>& rows,
                          CsvReadStats* stats = nullptr);

}  // namespace candle::io
