#include "io/synthetic.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "io/csv_writer.h"

namespace candle::io {

std::size_t write_synthetic_csv(const std::string& path,
                                const FileGeometry& geometry,
                                std::uint64_t seed) {
  require(geometry.rows > 0 && geometry.cols > 0,
          "write_synthetic_csv: empty geometry");
  Rng rng(seed);
  CsvWriter writer(path);
  std::vector<float> row(geometry.cols);
  for (std::size_t r = 0; r < geometry.rows; ++r) {
    for (float& v : row) v = static_cast<float>(rng.uniform(0.0, 100.0));
    if (geometry.labeled) {
      writer.write_labeled_row(static_cast<long long>(rng.uniform_index(2)),
                               row);
    } else {
      writer.write_row(row);
    }
  }
  return writer.close();
}

nn::Dataset make_classification(const ClassificationSpec& spec) {
  require(spec.samples > 0 && spec.features > 0 && spec.classes >= 2,
          "make_classification: bad spec");
  require(spec.informative <= spec.features,
          "make_classification: informative > features");
  Rng rng(spec.seed);

  // Class centroids in the informative subspace.
  std::vector<std::vector<double>> centers(spec.classes,
                                           std::vector<double>(spec.informative));
  for (auto& center : centers)
    for (double& v : center) v = rng.normal(0.0, spec.class_sep);

  Tensor x({spec.samples, spec.features});
  std::vector<std::size_t> labels(spec.samples);
  float* px = x.data();
  for (std::size_t i = 0; i < spec.samples; ++i) {
    const std::size_t cls = i % spec.classes;  // balanced classes
    labels[i] = cls;
    for (std::size_t j = 0; j < spec.features; ++j) {
      const double mean = j < spec.informative ? centers[cls][j] : 0.0;
      px[i * spec.features + j] =
          static_cast<float>(rng.normal(mean, spec.noise));
    }
  }
  return nn::Dataset{std::move(x), nn::one_hot(labels, spec.classes)};
}

nn::Dataset make_regression(const RegressionSpec& spec) {
  require(spec.samples > 0 && spec.features > 0, "make_regression: bad spec");
  require(spec.informative <= spec.features,
          "make_regression: informative > features");
  Rng rng(spec.seed);

  std::vector<double> w1(spec.informative), w2(spec.informative);
  for (double& v : w1) v = rng.normal(0.0, 1.0);
  for (double& v : w2) v = rng.normal(0.0, 1.0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(spec.informative));

  Tensor x({spec.samples, spec.features});
  Tensor y({spec.samples, std::size_t{1}});
  float* px = x.data();
  float* py = y.data();
  float lo = 1e30f, hi = -1e30f;
  for (std::size_t i = 0; i < spec.samples; ++i) {
    double d1 = 0.0, d2 = 0.0;
    for (std::size_t j = 0; j < spec.features; ++j) {
      const double v = rng.normal(0.0, 1.0);
      px[i * spec.features + j] = static_cast<float>(v);
      if (j < spec.informative) {
        d1 += w1[j] * v;
        d2 += w2[j] * v;
      }
    }
    const double target = std::tanh(d1 * scale) + 0.5 * std::sin(d2 * scale) +
                          rng.normal(0.0, spec.noise);
    py[i] = static_cast<float>(target);
    lo = std::min(lo, py[i]);
    hi = std::max(hi, py[i]);
  }
  // Growth percentage is zero-centered like the NCI-60 screens (negative
  // values = net cell kill): scaled into [-0.5, 0.5].
  const float range = hi > lo ? hi - lo : 1.0f;
  for (std::size_t i = 0; i < spec.samples; ++i)
    py[i] = (py[i] - lo) / range - 0.5f;
  return nn::Dataset{std::move(x), std::move(y)};
}

nn::Dataset make_autoencoder_data(std::size_t samples, std::size_t features,
                                  std::size_t latent_rank,
                                  std::uint64_t seed) {
  require(samples > 0 && features > 0 && latent_rank > 0,
          "make_autoencoder_data: bad spec");
  require(latent_rank <= features, "make_autoencoder_data: rank > features");
  Rng rng(seed);

  // x = sigmoid(Z * W + noise): low-rank structure an autoencoder can learn.
  std::vector<double> w(latent_rank * features);
  for (double& v : w) v = rng.normal(0.0, 1.0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(latent_rank));

  Tensor x({samples, features});
  float* px = x.data();
  std::vector<double> z(latent_rank);
  for (std::size_t i = 0; i < samples; ++i) {
    for (double& v : z) v = rng.normal(0.0, 1.0);
    for (std::size_t j = 0; j < features; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < latent_rank; ++k)
        acc += z[k] * w[k * features + j];
      acc = acc * scale + rng.normal(0.0, 0.05);
      px[i * features + j] =
          static_cast<float>(1.0 / (1.0 + std::exp(-acc)));
    }
  }
  Tensor y = x;
  return nn::Dataset{std::move(x), std::move(y)};
}

}  // namespace candle::io
