// Synthetic data generation.
//
// The NCI genomic/drug-screening files behind the CANDLE benchmarks are not
// redistributable, so the reproduction generates synthetic substitutes that
// preserve what the paper's experiments actually depend on:
//   * for the I/O experiments (Tables 3/4): the on-disk CSV *geometry* —
//     file size, column count, numeric field density;
//   * for the accuracy experiments (Figs 6b/8b/9b/10b): learnable structure
//     whose training curves need several epochs to converge.
#pragma once

#include <cstddef>
#include <string>

#include "common/rng.h"
#include "nn/dataset.h"

namespace candle::io {

/// On-disk CSV geometry for the loader experiments.
struct FileGeometry {
  std::size_t rows = 0;
  std::size_t cols = 0;      // numeric feature columns (label extra if set)
  bool labeled = false;      // integer class in column 0 (NT3/P1B2 layout)
};

/// Writes a synthetic CSV with the given geometry; returns bytes written.
/// Values are uniform floats formatted with %.6g (~9 bytes/cell), matching
/// the density of the CANDLE FPKM-UQ exports.
std::size_t write_synthetic_csv(const std::string& path,
                                const FileGeometry& geometry,
                                std::uint64_t seed);

/// Options for synthetic classification data.
struct ClassificationSpec {
  std::size_t samples = 1000;
  std::size_t features = 64;
  std::size_t classes = 2;
  std::size_t informative = 16;  // features carrying class signal
  double class_sep = 1.0;        // mean separation in informative dims
  double noise = 1.0;            // stddev of additive noise
  std::uint64_t seed = 1;
};

/// Gaussian-mixture classification set with one-hot targets. Lower
/// `class_sep` / higher `noise` makes convergence need more epochs, which is
/// how the paper's epochs-per-GPU accuracy cliffs are reproduced.
nn::Dataset make_classification(const ClassificationSpec& spec);

/// Options for synthetic regression data (P1B3-style drug response).
struct RegressionSpec {
  std::size_t samples = 1000;
  std::size_t features = 32;
  std::size_t informative = 16;
  double noise = 0.05;
  std::uint64_t seed = 1;
};

/// Nonlinear regression set: y = tanh(w1.x) + 0.5 sin(w2.x) + noise,
/// min-max scaled into [-0.5, 0.5] — zero-centered like the NCI-60 growth
/// percentage (negative = net cell kill).
nn::Dataset make_regression(const RegressionSpec& spec);

/// Autoencoder dataset: correlated low-rank features, target == input
/// (P1B1 learns to compress expression profiles).
nn::Dataset make_autoencoder_data(std::size_t samples, std::size_t features,
                                  std::size_t latent_rank,
                                  std::uint64_t seed);

}  // namespace candle::io
