#include "nn/batch_pipeline.h"

#include <algorithm>
#include <chrono>
#include <span>
#include <thread>
#include <utility>

#include "common/error.h"
#include "trace/timeline.h"

namespace candle::nn {
namespace {

/// Destination shape for `count` rows of `t` (dim(0) replaced).
Shape batch_shape(const Tensor& t, std::size_t count) {
  Shape s = t.shape();
  s[0] = count;
  return s;
}

}  // namespace

BatchPipeline::BatchPipeline(const Dataset& data, PipelineOptions options)
    : data_(&data), options_(options) {
  require(options_.batch_size > 0,
          "BatchPipeline: batch_size must be > 0");
  require(data_->size() > 0, "BatchPipeline: empty dataset");
  if (options_.clock == nullptr) options_.clock = &own_clock_;
  thread_ = std::thread([this] { produce_main(); });
}

BatchPipeline::~BatchPipeline() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  ready_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::size_t BatchPipeline::batches_per_epoch(std::size_t n,
                                             std::size_t batch_size,
                                             bool drop_remainder) {
  require(batch_size > 0, "batches_per_epoch: batch_size must be > 0");
  const std::size_t full = n / batch_size;
  const std::size_t tail = n % batch_size;
  return full + ((tail > 0 && !drop_remainder) ? 1 : 0);
}

void BatchPipeline::start_epoch(std::vector<std::size_t> order) {
  {
    MutexLock lock(mutex_);
    require(!epoch_active_,
            "BatchPipeline::start_epoch: previous epoch not fully consumed");
    // The producer is parked (it only runs inside an active epoch), so the
    // unguarded epoch inputs are safe to replace here.
    order_ = std::move(order);
    require(order_.empty() || order_.size() == data_->size(),
            "BatchPipeline::start_epoch: order must permute the dataset");
    epoch_rows_ = data_->size();
    total_batches_ = batches_per_epoch(epoch_rows_, options_.batch_size,
                                       options_.drop_remainder);
    staged_ = 0;
    consumed_ = 0;
    epoch_active_ = true;
  }
  work_cv_.notify_all();
}

const StagedBatch* BatchPipeline::acquire() {
  std::size_t index = 0;
  double wait_from = 0.0;
  {
    MutexLock lock(mutex_);
    require(epoch_active_, "BatchPipeline::acquire: no active epoch");
    if (consumed_ > 0) {
      // Recycle the slot returned by the previous acquire().
      state_[(consumed_ - 1) % 2] = SlotState::kFree;
      work_cv_.notify_all();
    }
    if (consumed_ == total_batches_) {
      epoch_active_ = false;
      return nullptr;
    }
    index = consumed_;
    if (options_.timeline != nullptr) wait_from = options_.clock->seconds();
    ready_cv_.wait(mutex_, [this, index]() CANDLE_REQUIRES(mutex_) {
      return shutdown_ || state_[index % 2] == SlotState::kReady;
    });
    if (shutdown_) return nullptr;
    ++consumed_;
  }
  if (options_.timeline != nullptr) {
    const double now = options_.clock->seconds();
    options_.timeline->record(trace::kPipelineStall, "io", options_.rank,
                              wait_from, now - wait_from);
  }
  return &slots_[index % 2];
}

void BatchPipeline::produce_main() {
  while (true) {
    std::size_t index = 0;
    {
      MutexLock lock(mutex_);
      work_cv_.wait(mutex_, [this]() CANDLE_REQUIRES(mutex_) {
        return shutdown_ ||
               (epoch_active_ && staged_ < total_batches_ &&
                state_[staged_ % 2] == SlotState::kFree);
      });
      if (shutdown_) return;
      index = staged_++;
    }
    const double from = options_.clock->seconds();
    stage_batch(index);
    if (options_.sim_input_latency_s > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options_.sim_input_latency_s));
    if (options_.timeline != nullptr)
      options_.timeline->record(trace::kPipelineProduce, "io", options_.rank,
                                from, options_.clock->seconds() - from);
    {
      MutexLock lock(mutex_);
      state_[index % 2] = SlotState::kReady;
    }
    ready_cv_.notify_all();
  }
}

void BatchPipeline::stage_batch(std::size_t index) {
  const std::size_t start = index * options_.batch_size;
  const std::size_t count =
      std::min(options_.batch_size, epoch_rows_ - start);
  StagedBatch& slot = slots_[index % 2];
  // Resize only when the batch extent changes (first batch and the partial
  // tail) — steady-state staging reuses the slot storage, zero allocations.
  const Shape xs = batch_shape(data_->x, count);
  const Shape ys = batch_shape(data_->y, count);
  if (slot.x.shape() != xs) slot.x = Tensor(xs);
  if (slot.y.shape() != ys) slot.y = Tensor(ys);
  if (order_.empty()) {
    take_rows(data_->x, start, count, slot.x);
    take_rows(data_->y, start, count, slot.y);
  } else {
    const std::span<const std::size_t> idx(order_.data() + start, count);
    gather_rows(data_->x, idx, slot.x);
    gather_rows(data_->y, idx, slot.y);
  }
}

}  // namespace candle::nn
