// Async double-buffered batch staging.
//
// The CANDLE benchmarks feed Keras from NumPy arrays, so every training step
// pays the batch gather (shuffle indexing + row copies) on the compute
// thread before the math starts. The paper's data-loading analysis (§4,
// Table 3) shows input handling is a first-order cost at scale; the standard
// fix — tf.data-style prefetching — stages batch t+1 on a background thread
// while batch t trains. This module reproduces that: a BatchPipeline owns
// one producer thread and two reusable batch slots; while the consumer
// trains on one slot the producer gathers into the other, so steady-state
// staging performs zero allocations and its cost hides behind compute.
//
// Determinism contract: the prefetched path is bit-identical to the
// synchronous loop. The *consumer* draws the epoch's shuffle order (so
// Model::fit_rng_ advances exactly as before, early stop included) and
// hands it to start_epoch(); the producer only memcpy-gathers rows in that
// order with the same batch boundaries. Copies carry no floating-point
// arithmetic, so thread count and timing cannot change any trained weight.
//
// Thread model (TSan/-Wthread-safety clean): slot states and epoch counters
// are guarded by `mutex_`; the slot tensors and the epoch's row order are
// written only while the peer thread cannot touch them (a slot is staged
// while kFree, consumed while kReady; the order is written between epochs
// with the producer parked), ordered by the mutex hand-off — the same
// discipline as hvd::BucketScheduler's bound plan.
#pragma once

#include <cstddef>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_annotations.h"
#include "nn/dataset.h"

namespace candle::trace {
class Timeline;
}  // namespace candle::trace

namespace candle::nn {

/// Options for a BatchPipeline (a subset of FitOptions plus trace wiring).
struct PipelineOptions {
  std::size_t batch_size = 32;
  bool drop_remainder = false;
  /// Synthetic per-batch input latency (benchmark knob, like
  /// hvd::FusionOptions::sim_net_latency_s): the producer sleeps this long
  /// while staging each batch, emulating slow input I/O that prefetching
  /// should hide. The synchronous fit path pays the same sleep inline.
  double sim_input_latency_s = 0.0;
  /// When set, the producer records PIPELINE_PRODUCE per staged batch and
  /// acquire() records PIPELINE_STALL per consumer wait, timestamped on
  /// `clock` (the pipeline's own epoch clock when null).
  trace::Timeline* timeline = nullptr;
  const Stopwatch* clock = nullptr;
  std::size_t rank = 0;  // timeline lane
};

/// One staged batch; storage is owned by the pipeline and reused.
struct StagedBatch {
  Tensor x;
  Tensor y;
};

/// Producer side of the input pipeline for one Model::fit call.
class BatchPipeline {
 public:
  /// Spawns the producer thread. `data` must outlive the pipeline and must
  /// not be mutated while any epoch is active.
  BatchPipeline(const Dataset& data, PipelineOptions options);

  /// Signals shutdown and joins the producer. Safe mid-epoch: an abandoned
  /// epoch's unstaged batches are dropped, not gathered.
  ~BatchPipeline();

  BatchPipeline(const BatchPipeline&) = delete;
  BatchPipeline& operator=(const BatchPipeline&) = delete;

  /// Batches a fit epoch visits for `n` rows (partial tail included unless
  /// dropped) — the number of acquire() calls start_epoch() arms.
  [[nodiscard]] static std::size_t batches_per_epoch(std::size_t n,
                                                     std::size_t batch_size,
                                                     bool drop_remainder);

  /// Begins staging one epoch. `order` is the row visit order (the
  /// consumer's own fit_rng_ draw); pass an empty vector for sequential
  /// order (shuffle off). Requires the previous epoch fully consumed.
  void start_epoch(std::vector<std::size_t> order) CANDLE_EXCLUDES(mutex_);

  /// Blocks until the next batch is staged and returns it, or nullptr when
  /// the epoch is exhausted. The pointer stays valid until the next
  /// acquire()/start_epoch() call, which recycles the slot.
  [[nodiscard]] const StagedBatch* acquire() CANDLE_EXCLUDES(mutex_);

 private:
  /// Slot lifecycle: kFree (producer may stage) -> kReady (consumer may
  /// train) -> kFree again on the consumer's next acquire().
  enum class SlotState { kFree, kReady };

  void produce_main();
  void stage_batch(std::size_t index);

  const Dataset* data_;
  PipelineOptions options_;
  Stopwatch own_clock_;  // timeline timebase when options_.clock is null

  /// Epoch inputs. Not lock-protected by design (cf. BucketScheduler's
  /// bound plan): written by start_epoch() only while the producer is
  /// parked, read by the producer only while the epoch is active; the
  /// start/wake mutex hand-off orders the accesses.
  std::vector<std::size_t> order_;
  std::size_t epoch_rows_ = 0;

  /// Double buffer. Slot i is written by the producer only while
  /// state_[i] == kFree and read by the consumer only while kReady.
  StagedBatch slots_[2];

  mutable AnnotatedMutex mutex_{
      CANDLE_LOCK_LEVEL(lock_order::level::kBatchPipeline),
      "nn::BatchPipeline::mutex_"};
  AnnotatedCondVar work_cv_;   // consumer -> producer: slot freed / epoch
  AnnotatedCondVar ready_cv_;  // producer -> consumer: slot published
  bool shutdown_ CANDLE_GUARDED_BY(mutex_) = false;
  bool epoch_active_ CANDLE_GUARDED_BY(mutex_) = false;
  std::size_t total_batches_ CANDLE_GUARDED_BY(mutex_) = 0;
  std::size_t staged_ CANDLE_GUARDED_BY(mutex_) = 0;    // claimed by producer
  std::size_t consumed_ CANDLE_GUARDED_BY(mutex_) = 0;  // returned to consumer
  SlotState state_[2] CANDLE_GUARDED_BY(mutex_) = {SlotState::kFree,
                                                   SlotState::kFree};

  std::thread thread_;  // last member: produce_main sees a fully-built object
};

}  // namespace candle::nn
