#include "nn/callbacks.h"

#include <cmath>

#include "common/error.h"
#include "nn/serialize.h"

namespace candle::nn {

EarlyStopping::EarlyStopping(std::size_t patience, double min_delta,
                             bool monitor_validation)
    : patience_(patience),
      min_delta_(min_delta),
      monitor_validation_(monitor_validation) {
  require(min_delta >= 0.0, "EarlyStopping: min_delta must be >= 0");
}

void EarlyStopping::on_train_begin(Model& /*model*/) {
  best_ = std::numeric_limits<float>::max();
  wait_ = 0;
  stopped_ = false;
  stopped_epoch_ = 0;
}

void EarlyStopping::on_epoch_end(Model& /*model*/, const EpochStats& stats) {
  if (stopped_) return;
  const float monitored = monitor_validation_ ? stats.val_loss : stats.loss;
  if (monitored < best_ - static_cast<float>(min_delta_)) {
    best_ = monitored;
    wait_ = 0;
    return;
  }
  if (++wait_ > patience_) {
    stopped_ = true;
    stopped_epoch_ = stats.epoch;
  }
}

ModelCheckpoint::ModelCheckpoint(std::string path, std::size_t period,
                                 bool save_best_only)
    : path_(std::move(path)),
      period_(period),
      save_best_only_(save_best_only) {
  require(period_ > 0, "ModelCheckpoint: period must be > 0");
}

void ModelCheckpoint::on_epoch_end(Model& model, const EpochStats& stats) {
  if ((stats.epoch + 1) % period_ != 0) return;
  if (save_best_only_) {
    if (stats.loss >= best_loss_) return;
    best_loss_ = stats.loss;
  }
  save_weights(model, path_);
  ++saves_;
}

LearningRateWarmup::LearningRateWarmup(double base_lr, double target_lr,
                                       std::size_t warmup_epochs)
    : base_lr_(base_lr),
      target_lr_(target_lr),
      warmup_epochs_(warmup_epochs) {
  require(base_lr > 0.0 && target_lr > 0.0,
          "LearningRateWarmup: rates must be > 0");
  require(warmup_epochs > 0, "LearningRateWarmup: warmup_epochs must be > 0");
}

void LearningRateWarmup::on_epoch_begin(Model& model, std::size_t epoch) {
  const double progress =
      std::min(1.0, static_cast<double>(epoch + 1) /
                        static_cast<double>(warmup_epochs_));
  model.optimizer().set_learning_rate(base_lr_ +
                                      (target_lr_ - base_lr_) * progress);
}

StepLrDecay::StepLrDecay(double base_lr, double factor,
                         std::size_t every_epochs)
    : base_lr_(base_lr), factor_(factor), every_epochs_(every_epochs) {
  require(base_lr > 0.0, "StepLrDecay: base_lr must be > 0");
  require(factor > 0.0 && factor <= 1.0, "StepLrDecay: factor in (0, 1]");
  require(every_epochs > 0, "StepLrDecay: every_epochs must be > 0");
}

void StepLrDecay::on_epoch_begin(Model& model, std::size_t epoch) {
  const auto drops = static_cast<double>(epoch / every_epochs_);
  model.optimizer().set_learning_rate(base_lr_ *
                                      std::pow(factor_, drops));
}

CosineLrDecay::CosineLrDecay(double base_lr, double floor_lr,
                             std::size_t total_epochs)
    : base_lr_(base_lr), floor_lr_(floor_lr), total_epochs_(total_epochs) {
  require(base_lr > floor_lr && floor_lr >= 0.0,
          "CosineLrDecay: need base_lr > floor_lr >= 0");
  require(total_epochs > 0, "CosineLrDecay: total_epochs must be > 0");
}

void CosineLrDecay::on_epoch_begin(Model& model, std::size_t epoch) {
  const double progress =
      std::min(1.0, static_cast<double>(epoch) /
                        static_cast<double>(total_epochs_));
  const double cosine = 0.5 * (1.0 + std::cos(progress * 3.14159265358979));
  model.optimizer().set_learning_rate(floor_lr_ +
                                      (base_lr_ - floor_lr_) * cosine);
}

void HistoryRecorder::on_epoch_end(Model& /*model*/,
                                   const EpochStats& stats) {
  stats_.push_back(stats);
}

}  // namespace candle::nn
