// Standard training callbacks (Keras-equivalent subset) plus the
// checkpoint/restart hook the paper lists as future work.
#pragma once

#include <limits>
#include <string>

#include "nn/model.h"

namespace candle::nn {

/// Stops training when the monitored loss has not improved by at least
/// `min_delta` for `patience` consecutive epochs. Mirrors Keras
/// EarlyStopping on `loss` (or `val_loss` when monitor_validation).
class EarlyStopping final : public Callback {
 public:
  explicit EarlyStopping(std::size_t patience, double min_delta = 0.0,
                         bool monitor_validation = false);

  void on_train_begin(Model& model) override;
  void on_epoch_end(Model& model, const EpochStats& stats) override;

  /// True once the stop condition triggered. Model::fit checks this.
  [[nodiscard]] bool should_stop() const { return stopped_; }
  [[nodiscard]] bool stop_requested() const override { return stopped_; }
  [[nodiscard]] std::size_t stopped_epoch() const { return stopped_epoch_; }

 private:
  std::size_t patience_;
  double min_delta_;
  bool monitor_validation_;
  float best_ = std::numeric_limits<float>::max();
  std::size_t wait_ = 0;
  bool stopped_ = false;
  std::size_t stopped_epoch_ = 0;
};

/// Saves the model's weights every `period` epochs (and always at the last
/// observed epoch end), enabling restart after a failure.
class ModelCheckpoint final : public Callback {
 public:
  explicit ModelCheckpoint(std::string path, std::size_t period = 1,
                           bool save_best_only = false);

  void on_epoch_end(Model& model, const EpochStats& stats) override;

  [[nodiscard]] std::size_t saves() const { return saves_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::size_t period_;
  bool save_best_only_;
  float best_loss_ = std::numeric_limits<float>::max();
  std::size_t saves_ = 0;
};

/// Gradual learning-rate warmup: ramps the optimizer's lr linearly from
/// base_lr to target_lr over `warmup_epochs` epochs. This is the technique
/// Horovod/Goyal et al. pair with linear lr scaling so the scaled rate does
/// not destabilize early training — it materially improves the few-epoch
/// accuracy cliff the paper observes at high GPU counts.
class LearningRateWarmup final : public Callback {
 public:
  LearningRateWarmup(double base_lr, double target_lr,
                     std::size_t warmup_epochs);

  void on_epoch_begin(Model& model, std::size_t epoch) override;

 private:
  double base_lr_, target_lr_;
  std::size_t warmup_epochs_;
};

/// Step decay: multiplies the learning rate by `factor` every
/// `every_epochs` epochs (Keras LearningRateScheduler step policy).
class StepLrDecay final : public Callback {
 public:
  StepLrDecay(double base_lr, double factor, std::size_t every_epochs);
  void on_epoch_begin(Model& model, std::size_t epoch) override;

 private:
  double base_lr_, factor_;
  std::size_t every_epochs_;
};

/// Cosine decay from base_lr to floor_lr over `total_epochs`.
class CosineLrDecay final : public Callback {
 public:
  CosineLrDecay(double base_lr, double floor_lr, std::size_t total_epochs);
  void on_epoch_begin(Model& model, std::size_t epoch) override;

 private:
  double base_lr_, floor_lr_;
  std::size_t total_epochs_;
};

/// Records epoch stats into a caller-owned vector (useful in tests).
class HistoryRecorder final : public Callback {
 public:
  void on_epoch_end(Model& model, const EpochStats& stats) override;
  [[nodiscard]] const std::vector<EpochStats>& stats() const {
    return stats_;
  }

 private:
  std::vector<EpochStats> stats_;
};

}  // namespace candle::nn
