#include "nn/dataset.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.h"
#include "common/parallel.h"

namespace candle::nn {
namespace {

std::size_t row_width(const Tensor& t) {
  require(t.rank() >= 2, "row ops: tensor must be rank >= 2");
  return t.numel() / t.dim(0);
}

Shape row_shape(const Tensor& t, std::size_t rows) {
  Shape s = t.shape();
  s[0] = rows;
  return s;
}

/// parallel_for grain so each chunk copies at least ~16 KiB of row data
/// (tiny rows are not worth a pool dispatch per handful of memcpys).
std::size_t copy_grain(std::size_t width) {
  return std::max<std::size_t>(1, 4096 / std::max<std::size_t>(1, width));
}

}  // namespace

Tensor take_rows(const Tensor& t, std::size_t start, std::size_t count) {
  Tensor out(row_shape(t, count));
  take_rows(t, start, count, out);
  return out;
}

void take_rows(const Tensor& t, std::size_t start, std::size_t count,
               Tensor& out) {
  const std::size_t w = row_width(t);
  require(start + count <= t.dim(0), "take_rows: range out of bounds");
  require(out.shape() == row_shape(t, count),
          "take_rows: destination shape mismatch");
  const float* src = t.data() + start * w;
  float* dst = out.data();
  parallel::parallel_for(0, count, copy_grain(w),
                         [&](std::size_t r0, std::size_t r1) {
                           std::memcpy(dst + r0 * w, src + r0 * w,
                                       (r1 - r0) * w * sizeof(float));
                         });
}

Tensor gather_rows(const Tensor& t, const std::vector<std::size_t>& index) {
  Tensor out(row_shape(t, index.size()));
  gather_rows(t, std::span<const std::size_t>(index), out);
  return out;
}

void gather_rows(const Tensor& t, std::span<const std::size_t> index,
                 Tensor& out) {
  const std::size_t w = row_width(t);
  require(out.shape() == row_shape(t, index.size()),
          "gather_rows: destination shape mismatch");
  const std::size_t n = t.dim(0);
  const float* src = t.data();
  float* dst = out.data();
  parallel::parallel_for(
      0, index.size(), copy_grain(w), [&](std::size_t i0, std::size_t i1) {
        for (std::size_t i = i0; i < i1; ++i) {
          require(index[i] < n, "gather_rows: index out of bounds");
          std::memcpy(dst + i * w, src + index[i] * w, w * sizeof(float));
        }
      });
}

Tensor one_hot(const std::vector<std::size_t>& labels,
               std::size_t num_classes) {
  require(num_classes > 0, "one_hot: num_classes must be > 0");
  Tensor out({labels.size(), num_classes});
  for (std::size_t i = 0; i < labels.size(); ++i) {
    require(labels[i] < num_classes, "one_hot: label out of range");
    out[i * num_classes + labels[i]] = 1.0f;
  }
  return out;
}

std::pair<Dataset, Dataset> validation_split(const Dataset& d,
                                             double fraction) {
  require(fraction >= 0.0 && fraction < 1.0,
          "validation_split: fraction must be in [0,1)");
  const std::size_t n = d.size();
  const std::size_t n_val = static_cast<std::size_t>(
      std::floor(static_cast<double>(n) * fraction));
  const std::size_t n_train = n - n_val;
  Dataset train{take_rows(d.x, 0, n_train), take_rows(d.y, 0, n_train)};
  Dataset val{take_rows(d.x, n_train, n_val), take_rows(d.y, n_train, n_val)};
  return {std::move(train), std::move(val)};
}

std::vector<std::size_t> shuffled_index(std::size_t n, Rng& rng) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  rng.shuffle(idx);
  return idx;
}

void standardize_columns(Tensor& x) {
  require(x.rank() == 2, "standardize_columns: rank-2 tensor expected");
  const std::size_t n = x.dim(0), m = x.dim(1);
  require(n > 0, "standardize_columns: empty tensor");
  float* p = x.data();
  for (std::size_t j = 0; j < m; ++j) {
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) mean += p[i * m + j];
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = p[i * m + j] - mean;
      var += d * d;
    }
    var /= static_cast<double>(n);
    const double inv = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;
    for (std::size_t i = 0; i < n; ++i)
      p[i * m + j] = static_cast<float>((p[i * m + j] - mean) * inv);
  }
}

void minmax_scale_columns(Tensor& x) {
  require(x.rank() == 2, "minmax_scale_columns: rank-2 tensor expected");
  const std::size_t n = x.dim(0), m = x.dim(1);
  require(n > 0, "minmax_scale_columns: empty tensor");
  float* p = x.data();
  for (std::size_t j = 0; j < m; ++j) {
    float lo = p[j], hi = p[j];
    for (std::size_t i = 1; i < n; ++i) {
      lo = std::min(lo, p[i * m + j]);
      hi = std::max(hi, p[i * m + j]);
    }
    const float range = hi - lo;
    if (range == 0.0f) {
      for (std::size_t i = 0; i < n; ++i) p[i * m + j] = 0.0f;
    } else {
      for (std::size_t i = 0; i < n; ++i)
        p[i * m + j] = (p[i * m + j] - lo) / range;
    }
  }
}

}  // namespace candle::nn
