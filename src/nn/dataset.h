// In-memory dataset utilities: batch slicing, one-hot encoding, splits.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace candle::nn {

/// Feature matrix + target matrix with matching leading dimension.
struct Dataset {
  Tensor x;  // (n, features...) — rank 2 or 3
  Tensor y;  // (n, targets)

  [[nodiscard]] std::size_t size() const {
    return x.rank() == 0 ? 0 : x.dim(0);
  }
};

/// Copies rows [start, start+count) of a rank-2 or rank-3 tensor.
Tensor take_rows(const Tensor& t, std::size_t start, std::size_t count);

/// Copies the rows listed in `index` (gathers, any order, repeats allowed).
Tensor gather_rows(const Tensor& t, const std::vector<std::size_t>& index);

/// Non-allocating forms: copy into the caller-provided destination, whose
/// shape must be t's shape with dim(0) replaced by the row count. The copy
/// is split across the candle::parallel pool (bit-identical at any width);
/// Model::fit and the BatchPipeline reuse two such destinations across
/// steps so steady-state batch staging performs zero allocations.
void take_rows(const Tensor& t, std::size_t start, std::size_t count,
               Tensor& out);
void gather_rows(const Tensor& t, std::span<const std::size_t> index,
                 Tensor& out);

/// One-hot encodes integer labels into (n, num_classes).
Tensor one_hot(const std::vector<std::size_t>& labels,
               std::size_t num_classes);

/// Splits off the last `fraction` of the rows as a validation set
/// (Keras-style validation_split takes the tail without shuffling).
std::pair<Dataset, Dataset> validation_split(const Dataset& d,
                                             double fraction);

/// Random permutation of [0, n).
std::vector<std::size_t> shuffled_index(std::size_t n, Rng& rng);

/// Standardizes columns of a rank-2 feature tensor in place to zero mean,
/// unit variance (per-column; constant columns are left centered).
void standardize_columns(Tensor& x);

/// Min-max scales columns into [0, 1] in place, the preprocessing the
/// CANDLE Pilot1 loaders apply with sklearn MinMaxScaler.
void minmax_scale_columns(Tensor& x);

}  // namespace candle::nn
