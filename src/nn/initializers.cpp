#include "nn/initializers.h"

#include <cmath>

#include "common/error.h"

namespace candle::nn {

void glorot_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                    Rng& rng) {
  require(fan_in + fan_out > 0, "glorot_uniform: zero fan");
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (float& v : w.values())
    v = static_cast<float>(rng.uniform(-limit, limit));
}

void he_uniform(Tensor& w, std::size_t fan_in, Rng& rng) {
  require(fan_in > 0, "he_uniform: zero fan_in");
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in));
  for (float& v : w.values())
    v = static_cast<float>(rng.uniform(-limit, limit));
}

void zeros_init(Tensor& w) { w.zero(); }

}  // namespace candle::nn
