// Weight initializers (Keras-compatible semantics).
#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace candle::nn {

/// Glorot/Xavier uniform: U(-l, l) with l = sqrt(6 / (fan_in + fan_out)).
/// Keras' default kernel initializer for Dense and Conv layers.
void glorot_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out,
                    Rng& rng);

/// He (Kaiming) uniform: U(-l, l) with l = sqrt(6 / fan_in). Preferred for
/// deep ReLU stacks.
void he_uniform(Tensor& w, std::size_t fan_in, Rng& rng);

/// All zeros (Keras' default bias initializer).
void zeros_init(Tensor& w);

}  // namespace candle::nn
