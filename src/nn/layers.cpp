#include "nn/layers.h"

#include <cmath>

#include "common/error.h"
#include "common/string_util.h"
#include "nn/initializers.h"
#include "tensor/conv.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"

namespace candle::nn {

Act act_from_string(const std::string& name) {
  if (name == "relu") return Act::kRelu;
  if (name == "sigmoid") return Act::kSigmoid;
  if (name == "tanh") return Act::kTanh;
  if (name == "softmax") return Act::kSoftmax;
  if (name == "none" || name == "linear" || name.empty()) return Act::kNone;
  throw InvalidArgument("unknown activation: " + name);
}

std::string act_name(Act a) {
  switch (a) {
    case Act::kNone: return "linear";
    case Act::kRelu: return "relu";
    case Act::kSigmoid: return "sigmoid";
    case Act::kTanh: return "tanh";
    case Act::kSoftmax: return "softmax";
  }
  return "?";
}

Tensor apply_activation(Act act, const Tensor& x) {
  if (act == Act::kNone) return x;
  Tensor out = x;
  apply_activation_inplace(act, out);
  return out;
}

void apply_activation_inplace(Act act, Tensor& x) {
  switch (act) {
    case Act::kNone: return;
    case Act::kRelu: relu_inplace(x); return;
    case Act::kSigmoid: sigmoid_inplace(x); return;
    case Act::kTanh: tanh_inplace(x); return;
    // Softmax over the trailing axis; leading axes flatten into rows.
    case Act::kSoftmax: softmax_rows_inplace(x); return;
  }
  throw InvalidArgument("apply_activation: bad enum");
}

Tensor activation_backward(Act act, const Tensor& dy, const Tensor& y) {
  switch (act) {
    case Act::kNone: return dy;
    case Act::kRelu: return relu_backward(dy, y);
    case Act::kSigmoid: return sigmoid_backward(dy, y);
    case Act::kTanh: return tanh_backward(dy, y);
    case Act::kSoftmax: {
      // dx_i = y_i * (dy_i - sum_j dy_j y_j), row-wise.
      check_same_shape(dy, y, "softmax_backward");
      const std::size_t n = y.shape().back();
      const std::size_t m = y.numel() / n;
      Tensor dx(y.shape());
      const float* py = y.data();
      const float* pdy = dy.data();
      float* pdx = dx.data();
      for (std::size_t i = 0; i < m; ++i) {
        double dot = 0.0;
        for (std::size_t j = 0; j < n; ++j)
          dot += static_cast<double>(pdy[i * n + j]) * py[i * n + j];
        for (std::size_t j = 0; j < n; ++j)
          pdx[i * n + j] = py[i * n + j] *
                           (pdy[i * n + j] - static_cast<float>(dot));
      }
      return dx;
    }
  }
  throw InvalidArgument("activation_backward: bad enum");
}

std::size_t Layer::param_count() {
  std::size_t n = 0;
  for (const Tensor* p : params()) n += p->numel();
  return n;
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

Dense::Dense(std::size_t units, Act act, double l2, double init_scale)
    : units_(units), act_(act), l2_(l2), init_scale_(init_scale) {
  require(units > 0, "Dense: units must be > 0");
  require(l2 >= 0.0, "Dense: l2 must be >= 0");
  require(init_scale > 0.0, "Dense: init_scale must be > 0");
}

std::string Dense::describe() const {
  if (l2_ > 0.0)
    return strprintf("Dense(%zu, %s, l2=%g)", units_, act_name(act_).c_str(),
                     l2_);
  return strprintf("Dense(%zu, %s)", units_, act_name(act_).c_str());
}

bool Dense::channel_shard_costs(const Shape& input_shape, std::size_t batch,
                                std::size_t* weight_bytes,
                                std::size_t* activation_bytes,
                                std::size_t* channels) const {
  if (input_shape.size() != 1) return false;
  const std::size_t in = input_shape[0];
  // Data parallelism allreduces dW/db every step; channel parallelism
  // allgathers the (batch, units) output forward and reduce-scatters +
  // allgathers the (batch, in) input gradient backward.
  *weight_bytes = (in * units_ + units_) * sizeof(float);
  *activation_bytes = batch * (units_ + 2 * in) * sizeof(float);
  *channels = units_;
  return true;
}

void Dense::apply_channel_shard(const ChannelShard& shard) {
  require(w_.numel() == 0, "Dense::apply_channel_shard: must precede build()");
  require(shard.world >= 1 && shard.rank < shard.world,
          "Dense::apply_channel_shard: bad rank/world");
  require(shard.world == 1 || shard.comm != nullptr,
          "Dense::apply_channel_shard: null communicator");
  require(units_ >= shard.world, "Dense::apply_channel_shard: units < world");
  sharded_ = true;
  shard_ = shard;
}

Shape Dense::build(const Shape& input_shape, Rng& rng) {
  require(input_shape.size() == 1,
          "Dense: per-sample input must be rank-1, got " +
              shape_to_string(input_shape));
  const std::size_t in = input_shape[0];
  shard_begin_ = 0;
  shard_cols_ = units_;
  if (sharded_) {
    shard_begin_ = shard_offset(shard_.rank, units_, shard_.world);
    shard_cols_ =
        shard_offset(shard_.rank + 1, units_, shard_.world) - shard_begin_;
  }
  // Draw the FULL Glorot init from the shared stream before slicing: every
  // rank consumes the same number of variates, so replicated layers (and
  // the fit-time shuffle stream) stay identical to the unsharded model.
  Tensor wfull({in, units_});
  glorot_uniform(wfull, in, units_, rng);
  if (init_scale_ != 1.0) wfull *= static_cast<float>(init_scale_);
  if (shard_cols_ != units_) {
    w_ = Tensor({in, shard_cols_});
    slice_columns(wfull, shard_begin_, shard_cols_, w_);
  } else {
    w_ = std::move(wfull);
  }
  b_ = Tensor({shard_cols_});
  dw_ = Tensor({in, shard_cols_});
  db_ = Tensor({shard_cols_});
  return {units_};
}

Tensor Dense::forward(const Tensor& x, bool /*training*/) {
  x_ = x;
  // Bias (and ReLU, when it is the layer's activation) ride the GEMM
  // epilogue, so no pre-activation tensor is materialized separately.
  Epilogue ep;
  ep.bias = b_.data();
  if (!sharded_ || shard_.world <= 1) {
    if (act_ == Act::kRelu) ep.op = EpilogueOp::kRelu;
    Tensor z({x.dim(0), units_});
    gemm(false, false, x, w_, z, ep);
    if (act_ != Act::kRelu) apply_activation_inplace(act_, z);
    y_ = std::move(z);
    return y_;
  }
  // Channel-parallel forward: local GEMM over this rank's column slice
  // (bias rides the epilogue; the activation must wait for the gather —
  // softmax normalizes across all columns, and post-gather ReLU is
  // bit-identical to the fused form).
  const std::size_t batch = x.dim(0);
  if (local_block_.shape() != Shape{batch, shard_cols_})
    local_block_ = Tensor({batch, shard_cols_});
  gemm(false, false, x, w_, local_block_, ep);
  if (y_.shape() != Shape{batch, units_}) y_ = Tensor({batch, units_});
  allgather_columns(shard_, local_block_, units_, gather_scratch_, y_);
  apply_activation_inplace(act_, y_);
  return y_;
}

Tensor Dense::backward(const Tensor& dy) {
  const Tensor dz = activation_backward(act_, dy, y_);
  if (!sharded_ || shard_.world <= 1) {
    gemm(true, false, x_, dz, dw_);  // dW = X^T dZ
    if (l2_ > 0.0) axpy(static_cast<float>(2.0 * l2_), w_, dw_);
    db_ = sum_rows(dz);
    return gemm(false, true, dz, w_);  // dX = dZ W^T
  }
  // Channel-parallel backward: slice this rank's columns of dZ, form the
  // rank-local dW/db (full batch, so no cross-rank averaging), then sum the
  // per-rank partial dX = dZ_r W_r^T across ranks.
  const std::size_t batch = dz.dim(0);
  if (local_block_.shape() != Shape{batch, shard_cols_})
    local_block_ = Tensor({batch, shard_cols_});
  slice_columns(dz, shard_begin_, shard_cols_, local_block_);
  gemm(true, false, x_, local_block_, dw_);
  if (l2_ > 0.0) axpy(static_cast<float>(2.0 * l2_), w_, dw_);
  db_ = sum_rows(local_block_);
  Tensor dx = gemm(false, true, local_block_, w_);
  sum_partials(shard_, dx);
  return dx;
}

// ---------------------------------------------------------------------------
// Conv1D
// ---------------------------------------------------------------------------

Conv1D::Conv1D(std::size_t filters, std::size_t kernel, std::size_t stride,
               Act act)
    : filters_(filters), kernel_(kernel), stride_(stride), act_(act) {
  require(filters > 0 && kernel > 0 && stride > 0,
          "Conv1D: filters/kernel/stride must be > 0");
}

std::string Conv1D::describe() const {
  return strprintf("Conv1D(f=%zu, k=%zu, s=%zu, %s)", filters_, kernel_,
                   stride_, act_name(act_).c_str());
}

bool Conv1D::channel_shard_costs(const Shape& input_shape, std::size_t batch,
                                 std::size_t* weight_bytes,
                                 std::size_t* activation_bytes,
                                 std::size_t* channels) const {
  if (input_shape.size() != 2) return false;
  const std::size_t L = input_shape[0], cin = input_shape[1];
  if (L < kernel_) return false;
  const std::size_t lout = conv1d_out_length(L, kernel_, stride_);
  // Filter sharding gathers the (batch, Lout, filters) output forward and
  // reduce-scatters + allgathers the (batch, L, Cin) input gradient
  // backward; data parallelism allreduces the (K, Cin, filters) gradient.
  *weight_bytes = (kernel_ * cin * filters_ + filters_) * sizeof(float);
  *activation_bytes = batch * (lout * filters_ + 2 * L * cin) * sizeof(float);
  *channels = filters_;
  return true;
}

void Conv1D::apply_channel_shard(const ChannelShard& shard) {
  require(w_.numel() == 0,
          "Conv1D::apply_channel_shard: must precede build()");
  require(shard.world >= 1 && shard.rank < shard.world,
          "Conv1D::apply_channel_shard: bad rank/world");
  require(shard.world == 1 || shard.comm != nullptr,
          "Conv1D::apply_channel_shard: null communicator");
  require(filters_ >= shard.world,
          "Conv1D::apply_channel_shard: filters < world");
  sharded_ = true;
  shard_ = shard;
}

Shape Conv1D::build(const Shape& input_shape, Rng& rng) {
  require(input_shape.size() == 2,
          "Conv1D: per-sample input must be (L, C), got " +
              shape_to_string(input_shape));
  const std::size_t L = input_shape[0], cin = input_shape[1];
  const std::size_t lout = conv1d_out_length(L, kernel_, stride_);
  shard_begin_ = 0;
  shard_cols_ = filters_;
  if (sharded_) {
    shard_begin_ = shard_offset(shard_.rank, filters_, shard_.world);
    shard_cols_ =
        shard_offset(shard_.rank + 1, filters_, shard_.world) - shard_begin_;
  }
  // Full init first so every rank consumes the same RNG variates (see
  // Dense::build); the filter axis is the trailing dim, so the slice is a
  // column slice of the flattened (K * Cin, filters) view.
  Tensor wfull({kernel_, cin, filters_});
  glorot_uniform(wfull, kernel_ * cin, kernel_ * filters_, rng);
  if (shard_cols_ != filters_) {
    w_ = Tensor({kernel_, cin, shard_cols_});
    slice_columns(wfull, shard_begin_, shard_cols_, w_);
  } else {
    w_ = std::move(wfull);
  }
  b_ = Tensor({shard_cols_});
  dw_ = Tensor({kernel_, cin, shard_cols_});
  db_ = Tensor({shard_cols_});
  return {lout, filters_};
}

Tensor Conv1D::forward(const Tensor& x, bool /*training*/) {
  x_ = x;
  if (!sharded_ || shard_.world <= 1) {
    const bool fused_relu = act_ == Act::kRelu;
    // Writing into y_ reuses the activation buffer across steps: the GEMM
    // overwrites every element, so no per-step zero-fill is paid.
    conv1d_forward(x, w_, b_, stride_, y_, &ws_,
                   fused_relu ? EpilogueOp::kRelu : EpilogueOp::kIdentity);
    if (!fused_relu) apply_activation_inplace(act_, y_);
    return y_;
  }
  // Filter-parallel forward: local convolution over this rank's filter
  // block, then gather the (B, Lout, filters) output (granularity B * Lout
  // rows); the activation runs post-gather on the full tensor.
  conv1d_forward(x, w_, b_, stride_, local_block_, &ws_,
                 EpilogueOp::kIdentity);
  const std::size_t batch = local_block_.dim(0);
  const std::size_t lout = local_block_.dim(1);
  if (y_.shape() != Shape{batch, lout, filters_})
    y_ = Tensor({batch, lout, filters_});
  allgather_columns(shard_, local_block_, filters_, gather_scratch_, y_);
  apply_activation_inplace(act_, y_);
  return y_;
}

Tensor Conv1D::backward(const Tensor& dy) {
  const Tensor dz = activation_backward(act_, dy, y_);
  if (!sharded_ || shard_.world <= 1) {
    Tensor dx(x_.shape());
    conv1d_backward(x_, w_, dz, stride_, dx, dw_, db_, &ws_);
    return dx;
  }
  // Filter-parallel backward: slice this rank's filter block of dZ, run the
  // local conv backward (rank-local dW/db over the full batch), then sum
  // the per-rank partial dX across ranks.
  if (local_block_.shape() != Shape{dz.dim(0), dz.dim(1), shard_cols_})
    local_block_ = Tensor({dz.dim(0), dz.dim(1), shard_cols_});
  slice_columns(dz, shard_begin_, shard_cols_, local_block_);
  Tensor dx(x_.shape());
  conv1d_backward(x_, w_, local_block_, stride_, dx, dw_, db_, &ws_);
  sum_partials(shard_, dx);
  return dx;
}

// ---------------------------------------------------------------------------
// LocallyConnected1D
// ---------------------------------------------------------------------------

LocallyConnected1D::LocallyConnected1D(std::size_t filters,
                                       std::size_t kernel,
                                       std::size_t stride, Act act)
    : filters_(filters), kernel_(kernel), stride_(stride), act_(act) {
  require(filters > 0 && kernel > 0 && stride > 0,
          "LocallyConnected1D: filters/kernel/stride must be > 0");
}

std::string LocallyConnected1D::describe() const {
  return strprintf("LocallyConnected1D(f=%zu, k=%zu, s=%zu, %s)", filters_,
                   kernel_, stride_, act_name(act_).c_str());
}

Shape LocallyConnected1D::build(const Shape& input_shape, Rng& rng) {
  require(input_shape.size() == 2,
          "LocallyConnected1D: per-sample input must be (L, C), got " +
              shape_to_string(input_shape));
  const std::size_t L = input_shape[0];
  cin_ = input_shape[1];
  lout_ = conv1d_out_length(L, kernel_, stride_);
  w_ = Tensor({lout_, kernel_, cin_, filters_});
  b_ = Tensor({lout_, filters_});
  dw_ = Tensor(w_.shape());
  db_ = Tensor(b_.shape());
  glorot_uniform(w_, kernel_ * cin_, filters_, rng);
  return {lout_, filters_};
}

Tensor LocallyConnected1D::forward(const Tensor& x, bool /*training*/) {
  require(x.rank() == 3 && x.dim(2) == cin_,
          "LocallyConnected1D: input shape mismatch");
  x_ = x;
  const std::size_t batch = x.dim(0), L = x.dim(1);
  Tensor z({batch, lout_, filters_});
  const float* px = x.data();
  const float* pw = w_.data();
  const float* pb = b_.data();
  float* pz = z.data();
  for (std::size_t bi = 0; bi < batch; ++bi) {
    const float* xb = px + bi * L * cin_;
    for (std::size_t t = 0; t < lout_; ++t) {
      float* zrow = pz + (bi * lout_ + t) * filters_;
      const float* brow = pb + t * filters_;
      for (std::size_t oc = 0; oc < filters_; ++oc) zrow[oc] = brow[oc];
      const float* wt = pw + t * kernel_ * cin_ * filters_;
      const float* xwin = xb + t * stride_ * cin_;
      for (std::size_t k = 0; k < kernel_; ++k) {
        for (std::size_t ic = 0; ic < cin_; ++ic) {
          const float xv = xwin[k * cin_ + ic];
          const float* wvec = wt + (k * cin_ + ic) * filters_;
          for (std::size_t oc = 0; oc < filters_; ++oc)
            zrow[oc] += xv * wvec[oc];
        }
      }
    }
  }
  apply_activation_inplace(act_, z);
  y_ = std::move(z);
  return y_;
}

Tensor LocallyConnected1D::backward(const Tensor& dy) {
  const Tensor dz = activation_backward(act_, dy, y_);
  const std::size_t batch = x_.dim(0), L = x_.dim(1);
  Tensor dx(x_.shape());
  dw_.zero();
  db_.zero();
  const float* px = x_.data();
  const float* pw = w_.data();
  const float* pdz = dz.data();
  float* pdx = dx.data();
  float* pdw = dw_.data();
  float* pdb = db_.data();
  for (std::size_t bi = 0; bi < batch; ++bi) {
    const float* xb = px + bi * L * cin_;
    float* dxb = pdx + bi * L * cin_;
    for (std::size_t t = 0; t < lout_; ++t) {
      const float* dzrow = pdz + (bi * lout_ + t) * filters_;
      float* dbrow = pdb + t * filters_;
      for (std::size_t oc = 0; oc < filters_; ++oc) dbrow[oc] += dzrow[oc];
      const float* wt = pw + t * kernel_ * cin_ * filters_;
      float* dwt = pdw + t * kernel_ * cin_ * filters_;
      const std::size_t base = t * stride_ * cin_;
      for (std::size_t k = 0; k < kernel_; ++k) {
        for (std::size_t ic = 0; ic < cin_; ++ic) {
          const float xv = xb[base + k * cin_ + ic];
          const float* wvec = wt + (k * cin_ + ic) * filters_;
          float* dwvec = dwt + (k * cin_ + ic) * filters_;
          double acc = 0.0;
          for (std::size_t oc = 0; oc < filters_; ++oc) {
            dwvec[oc] += xv * dzrow[oc];
            acc += static_cast<double>(wvec[oc]) * dzrow[oc];
          }
          dxb[base + k * cin_ + ic] += static_cast<float>(acc);
        }
      }
    }
  }
  return dx;
}

// ---------------------------------------------------------------------------
// MaxPool1D
// ---------------------------------------------------------------------------

MaxPool1D::MaxPool1D(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride == 0 ? window : stride) {
  require(window > 0, "MaxPool1D: window must be > 0");
}

std::string MaxPool1D::describe() const {
  return strprintf("MaxPool1D(w=%zu, s=%zu)", window_, stride_);
}

Shape MaxPool1D::build(const Shape& input_shape, Rng& /*rng*/) {
  require(input_shape.size() == 2,
          "MaxPool1D: per-sample input must be (L, C)");
  return {conv1d_out_length(input_shape[0], window_, stride_),
          input_shape[1]};
}

Tensor MaxPool1D::forward(const Tensor& x, bool /*training*/) {
  x_shape_ = x.shape();
  return maxpool1d_forward(x, window_, stride_, argmax_);
}

Tensor MaxPool1D::backward(const Tensor& dy) {
  return maxpool1d_backward(dy, x_shape_, argmax_);
}

// ---------------------------------------------------------------------------
// AvgPool1D
// ---------------------------------------------------------------------------

AvgPool1D::AvgPool1D(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride == 0 ? window : stride) {
  require(window > 0, "AvgPool1D: window must be > 0");
}

std::string AvgPool1D::describe() const {
  return strprintf("AvgPool1D(w=%zu, s=%zu)", window_, stride_);
}

Shape AvgPool1D::build(const Shape& input_shape, Rng& /*rng*/) {
  require(input_shape.size() == 2,
          "AvgPool1D: per-sample input must be (L, C)");
  return {conv1d_out_length(input_shape[0], window_, stride_),
          input_shape[1]};
}

Tensor AvgPool1D::forward(const Tensor& x, bool /*training*/) {
  require(x.rank() == 3, "AvgPool1D: batch input must be (b, L, C)");
  x_shape_ = x.shape();
  const std::size_t b = x.dim(0), L = x.dim(1), C = x.dim(2);
  const std::size_t lout = conv1d_out_length(L, window_, stride_);
  Tensor y({b, lout, C});
  const float* px = x.data();
  float* py = y.data();
  const float inv = 1.0f / static_cast<float>(window_);
  for (std::size_t bi = 0; bi < b; ++bi)
    for (std::size_t t = 0; t < lout; ++t)
      for (std::size_t c = 0; c < C; ++c) {
        float acc = 0.0f;
        for (std::size_t k = 0; k < window_; ++k)
          acc += px[(bi * L + t * stride_ + k) * C + c];
        py[(bi * lout + t) * C + c] = acc * inv;
      }
  return y;
}

Tensor AvgPool1D::backward(const Tensor& dy) {
  const std::size_t b = x_shape_[0], L = x_shape_[1], C = x_shape_[2];
  const std::size_t lout = conv1d_out_length(L, window_, stride_);
  require(dy.rank() == 3 && dy.dim(1) == lout,
          "AvgPool1D: backward shape mismatch");
  Tensor dx(x_shape_);
  const float* pdy = dy.data();
  float* pdx = dx.data();
  const float inv = 1.0f / static_cast<float>(window_);
  for (std::size_t bi = 0; bi < b; ++bi)
    for (std::size_t t = 0; t < lout; ++t)
      for (std::size_t c = 0; c < C; ++c) {
        const float g = pdy[(bi * lout + t) * C + c] * inv;
        for (std::size_t k = 0; k < window_; ++k)
          pdx[(bi * L + t * stride_ + k) * C + c] += g;
      }
  return dx;
}

// ---------------------------------------------------------------------------
// Flatten / ExpandDims
// ---------------------------------------------------------------------------

Shape Flatten::build(const Shape& input_shape, Rng& /*rng*/) {
  return {shape_numel(input_shape)};
}

Tensor Flatten::forward(const Tensor& x, bool /*training*/) {
  x_shape_ = x.shape();
  require(x.rank() >= 2, "Flatten: batch input must be rank >= 2");
  return x.reshaped({x.dim(0), x.numel() / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& dy) { return dy.reshaped(x_shape_); }

Shape ExpandDims::build(const Shape& input_shape, Rng& /*rng*/) {
  require(input_shape.size() == 1, "ExpandDims: per-sample input must be flat");
  return {input_shape[0], 1};
}

Tensor ExpandDims::forward(const Tensor& x, bool /*training*/) {
  x_shape_ = x.shape();
  require(x.rank() == 2, "ExpandDims: batch input must be (b, F)");
  return x.reshaped({x.dim(0), x.dim(1), 1});
}

Tensor ExpandDims::backward(const Tensor& dy) { return dy.reshaped(x_shape_); }

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

Dropout::Dropout(double rate) : rate_(rate), rng_(0xD09) {
  require(rate >= 0.0 && rate < 1.0, "Dropout: rate must be in [0, 1)");
}

std::string Dropout::describe() const {
  return strprintf("Dropout(%.2f)", rate_);
}

Shape Dropout::build(const Shape& input_shape, Rng& rng) {
  rng_ = rng.fork(0xD09);
  return input_shape;
}

Tensor Dropout::forward(const Tensor& x, bool training) {
  if (!training || rate_ == 0.0) {
    mask_.clear();
    return x;
  }
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  mask_.resize(x.numel());
  Tensor y = x;
  float* py = y.data();
  for (std::size_t i = 0; i < y.numel(); ++i) {
    mask_[i] = rng_.bernoulli(rate_) ? 0.0f : keep_scale;
    py[i] *= mask_[i];
  }
  return y;
}

Tensor Dropout::backward(const Tensor& dy) {
  if (mask_.empty()) return dy;
  require(mask_.size() == dy.numel(), "Dropout: backward batch mismatch");
  Tensor dx = dy;
  float* p = dx.data();
  for (std::size_t i = 0; i < dx.numel(); ++i) p[i] *= mask_[i];
  return dx;
}

// ---------------------------------------------------------------------------
// BatchNorm
// ---------------------------------------------------------------------------

BatchNorm::BatchNorm(double momentum, double epsilon)
    : momentum_(momentum), epsilon_(epsilon) {
  require(momentum >= 0.0 && momentum < 1.0,
          "BatchNorm: momentum must be in [0, 1)");
  require(epsilon > 0.0, "BatchNorm: epsilon must be > 0");
}

std::string BatchNorm::describe() const {
  return strprintf("BatchNorm(m=%.2f)", momentum_);
}

Shape BatchNorm::build(const Shape& input_shape, Rng& /*rng*/) {
  require(input_shape.size() == 1,
          "BatchNorm: per-sample input must be rank-1, got " +
              shape_to_string(input_shape));
  const std::size_t f = input_shape[0];
  gamma_ = Tensor({f}, 1.0f);
  beta_ = Tensor({f});
  dgamma_ = Tensor({f});
  dbeta_ = Tensor({f});
  running_mean_ = Tensor({f});
  running_var_ = Tensor({f}, 1.0f);
  return input_shape;
}

Tensor BatchNorm::forward(const Tensor& x, bool training) {
  require(x.rank() == 2, "BatchNorm: batch input must be (b, F)");
  const std::size_t b = x.dim(0), f = x.dim(1);
  require(f == gamma_.dim(0), "BatchNorm: feature width changed");
  const float* px = x.data();

  Tensor y({b, f});
  x_hat_ = Tensor({b, f});
  batch_inv_std_.assign(f, 0.0f);
  float* py = y.data();
  float* ph = x_hat_.data();
  const float* pg = gamma_.data();
  const float* pb = beta_.data();

  for (std::size_t j = 0; j < f; ++j) {
    double mean, var;
    if (training) {
      double m = 0.0;
      for (std::size_t i = 0; i < b; ++i) m += px[i * f + j];
      mean = m / static_cast<double>(b);
      double v = 0.0;
      for (std::size_t i = 0; i < b; ++i) {
        const double d = px[i * f + j] - mean;
        v += d * d;
      }
      var = v / static_cast<double>(b);
      running_mean_[j] = static_cast<float>(
          momentum_ * running_mean_[j] + (1.0 - momentum_) * mean);
      running_var_[j] = static_cast<float>(
          momentum_ * running_var_[j] + (1.0 - momentum_) * var);
    } else {
      mean = running_mean_[j];
      var = running_var_[j];
    }
    const float inv_std =
        static_cast<float>(1.0 / std::sqrt(var + epsilon_));
    batch_inv_std_[j] = inv_std;
    for (std::size_t i = 0; i < b; ++i) {
      const float xh =
          (px[i * f + j] - static_cast<float>(mean)) * inv_std;
      ph[i * f + j] = xh;
      py[i * f + j] = pg[j] * xh + pb[j];
    }
  }
  return y;
}

Tensor BatchNorm::backward(const Tensor& dy) {
  // Standard batch-norm backward (training-mode statistics):
  // dx = (gamma * inv_std / b) * (b*dy - sum(dy) - x_hat * sum(dy * x_hat))
  check_same_shape(dy, x_hat_, "BatchNorm::backward");
  const std::size_t b = dy.dim(0), f = dy.dim(1);
  Tensor dx({b, f});
  const float* pdy = dy.data();
  const float* ph = x_hat_.data();
  const float* pg = gamma_.data();
  float* pdx = dx.data();
  dgamma_.zero();
  dbeta_.zero();
  for (std::size_t j = 0; j < f; ++j) {
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::size_t i = 0; i < b; ++i) {
      sum_dy += pdy[i * f + j];
      sum_dy_xhat += static_cast<double>(pdy[i * f + j]) * ph[i * f + j];
    }
    dgamma_[j] = static_cast<float>(sum_dy_xhat);
    dbeta_[j] = static_cast<float>(sum_dy);
    const double scale = static_cast<double>(pg[j]) * batch_inv_std_[j] /
                         static_cast<double>(b);
    for (std::size_t i = 0; i < b; ++i) {
      pdx[i * f + j] = static_cast<float>(
          scale * (static_cast<double>(b) * pdy[i * f + j] - sum_dy -
                   ph[i * f + j] * sum_dy_xhat));
    }
  }
  return dx;
}

// ---------------------------------------------------------------------------
// Activation
// ---------------------------------------------------------------------------

Activation::Activation(Act act) : act_(act) {}

std::string Activation::describe() const {
  return "Activation(" + act_name(act_) + ")";
}

Shape Activation::build(const Shape& input_shape, Rng& /*rng*/) {
  return input_shape;
}

Tensor Activation::forward(const Tensor& x, bool /*training*/) {
  y_ = apply_activation(act_, x);
  return y_;
}

Tensor Activation::backward(const Tensor& dy) {
  return activation_backward(act_, dy, y_);
}

}  // namespace candle::nn
