// Layer zoo for the sequential model (Keras-equivalent subset used by the
// CANDLE Pilot1 benchmarks: Dense, Conv1D, MaxPooling1D, Flatten, Dropout,
// activations).
//
// Contract: `build` is called once with the per-sample input shape before
// training; `forward` caches whatever `backward` needs; `backward` consumes
// dL/dy and returns dL/dx while accumulating parameter gradients into the
// tensors exposed by `grads()` (overwritten each call, not accumulated across
// calls — the optimizer consumes them per batch).
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "nn/parallelism.h"
#include "tensor/conv.h"
#include "tensor/tensor.h"

namespace candle::nn {

/// Activation kinds supported by Activation and the fused layer arguments.
enum class Act { kNone, kRelu, kSigmoid, kTanh, kSoftmax };

/// Parses "relu" / "sigmoid" / "tanh" / "softmax" / "none" (Keras-style).
Act act_from_string(const std::string& name);
std::string act_name(Act a);

/// Abstract layer.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Human-readable layer type plus salient dims, e.g. "Dense(128, relu)".
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Creates parameters for the given per-sample input shape and returns
  /// the per-sample output shape.
  virtual Shape build(const Shape& input_shape, Rng& rng) = 0;

  /// Forward pass over a whole batch. `training` toggles dropout.
  virtual Tensor forward(const Tensor& x, bool training) = 0;

  /// Backward pass; must be called after forward on the same batch.
  /// Contract: every grads() tensor is fully finalized before backward()
  /// returns — Model::backward fires the gradient-ready hook for this
  /// layer right after, and the overlap scheduler may immediately start
  /// reducing those tensors on the comm thread.
  virtual Tensor backward(const Tensor& dy) = 0;

  /// Trainable parameters / matching gradient tensors (same order). The
  /// tensor list and shapes are fixed after build(); Model::compile caches
  /// per-layer spans over the flattened order for gradient-ready signaling.
  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }

  /// Total trainable scalar count.
  [[nodiscard]] std::size_t param_count();

  /// Channel-parallelism support. Layers that can shard their output
  /// channels report the planner costs for a given input shape and batch
  /// hint: `weight_bytes` is the layer's per-step weight-gradient allreduce
  /// volume under data parallelism, `activation_bytes` the activation
  /// exchange channel parallelism pays instead (forward output allgather +
  /// backward input-gradient reduce-scatter and allgather), and `channels`
  /// the shardable output-channel count (the planner keeps layers narrower
  /// than the world replicated). Returns false (the default) when the
  /// layer cannot shard.
  [[nodiscard]] virtual bool channel_shard_costs(
      const Shape& input_shape, std::size_t batch, std::size_t* weight_bytes,
      std::size_t* activation_bytes, std::size_t* channels) const {
    (void)input_shape;
    (void)batch;
    (void)weight_bytes;
    (void)activation_bytes;
    (void)channels;
    return false;
  }

  /// Partitions this layer's output channels across `shard.world` ranks.
  /// Must be called before build(); only layers whose channel_shard_costs
  /// returns true support it. After this call params()/grads() expose the
  /// rank-local 1/P slice, which must not be averaged or broadcast across
  /// ranks (Model tracks the mask; see Model::rank_local_mask).
  virtual void apply_channel_shard(const ChannelShard& shard) {
    (void)shard;
    throw InvalidArgument("apply_channel_shard: " + describe() +
                          " does not support channel sharding");
  }

  /// True once apply_channel_shard was called.
  [[nodiscard]] virtual bool channel_sharded() const { return false; }

  /// Routes this layer's sharded collectives through `exec` (see
  /// CollectiveExecutor). The overlap scheduler installs one so the comm
  /// thread stays the rank's only collective issuer; pass {} to restore
  /// inline issue. No-op for layers that never issue collectives.
  virtual void set_collective_executor(CollectiveExecutor exec) {
    (void)exec;
  }
};

/// Fully connected layer with optional fused activation and optional L2
/// weight decay (P1B2 is "an MLP network with regularization", §2.1.3).
/// The decay term 2*l2*W is added to the weight gradient each backward.
class Dense : public Layer {
 public:
  /// `init_scale` multiplies the Glorot init; regression heads commonly use
  /// a small value so initial predictions start near zero.
  Dense(std::size_t units, Act act = Act::kNone, double l2 = 0.0,
        double init_scale = 1.0);

  [[nodiscard]] std::string describe() const override;
  Shape build(const Shape& input_shape, Rng& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &db_}; }

  [[nodiscard]] const Tensor& weights() const { return w_; }
  [[nodiscard]] const Tensor& bias() const { return b_; }
  [[nodiscard]] double l2() const { return l2_; }

  [[nodiscard]] bool channel_shard_costs(
      const Shape& input_shape, std::size_t batch, std::size_t* weight_bytes,
      std::size_t* activation_bytes, std::size_t* channels) const override;
  void apply_channel_shard(const ChannelShard& shard) override;
  [[nodiscard]] bool channel_sharded() const override { return sharded_; }
  void set_collective_executor(CollectiveExecutor exec) override {
    shard_.executor = std::move(exec);
  }

 private:
  std::size_t units_;
  Act act_;
  double l2_;
  double init_scale_;
  Tensor w_, b_, dw_, db_;
  Tensor x_, y_;  // cached input and post-activation output
  // Channel sharding: this rank owns output columns
  // [shard_begin_, shard_begin_ + shard_cols_) of the full (in, units_)
  // weight; w_/b_/dw_/db_ hold only that slice.
  bool sharded_ = false;
  ChannelShard shard_;
  std::size_t shard_begin_ = 0, shard_cols_ = 0;
  std::vector<float> gather_scratch_;  // staging for the forward allgather
  Tensor local_block_;  // (B, local): pre-gather output, then the dz slice
};

/// 1-D convolution (channels-last), valid padding, fused activation.
class Conv1D : public Layer {
 public:
  Conv1D(std::size_t filters, std::size_t kernel, std::size_t stride = 1,
         Act act = Act::kNone);

  [[nodiscard]] std::string describe() const override;
  Shape build(const Shape& input_shape, Rng& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &db_}; }

  [[nodiscard]] bool channel_shard_costs(
      const Shape& input_shape, std::size_t batch, std::size_t* weight_bytes,
      std::size_t* activation_bytes, std::size_t* channels) const override;
  void apply_channel_shard(const ChannelShard& shard) override;
  [[nodiscard]] bool channel_sharded() const override { return sharded_; }
  void set_collective_executor(CollectiveExecutor exec) override {
    shard_.executor = std::move(exec);
  }

 private:
  std::size_t filters_, kernel_, stride_;
  Act act_;
  Tensor w_, b_, dw_, db_;
  Tensor x_, y_;
  Conv1dWorkspace ws_;  // im2col buffers reused across steps
  // Filter sharding: this rank owns output filters
  // [shard_begin_, shard_begin_ + shard_cols_); w_ is (K, Cin, local).
  bool sharded_ = false;
  ChannelShard shard_;
  std::size_t shard_begin_ = 0, shard_cols_ = 0;
  std::vector<float> gather_scratch_;
  Tensor local_block_;  // (B, Lout, local): conv output, then the dz slice
};

/// Locally connected 1-D layer: convolution-like but with untied weights —
/// every output position has its own kernel (Keras LocallyConnected1D).
/// P1B3 is "an MLP network with convolution-like layers" (§2.1.4); this is
/// that layer. Weights: (Lout, K, Cin, Cout); bias: (Lout, Cout).
class LocallyConnected1D : public Layer {
 public:
  LocallyConnected1D(std::size_t filters, std::size_t kernel,
                     std::size_t stride = 1, Act act = Act::kNone);

  [[nodiscard]] std::string describe() const override;
  Shape build(const Shape& input_shape, Rng& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &db_}; }

 private:
  std::size_t filters_, kernel_, stride_;
  Act act_;
  std::size_t lout_ = 0, cin_ = 0;
  Tensor w_, b_, dw_, db_;
  Tensor x_, y_;
};

/// Max pooling over the time axis.
class MaxPool1D : public Layer {
 public:
  explicit MaxPool1D(std::size_t window, std::size_t stride = 0);

  [[nodiscard]] std::string describe() const override;
  Shape build(const Shape& input_shape, Rng& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;

 private:
  std::size_t window_, stride_;
  Shape x_shape_;
  std::vector<std::size_t> argmax_;
};

/// Average pooling over the time axis (Keras AveragePooling1D).
class AvgPool1D : public Layer {
 public:
  explicit AvgPool1D(std::size_t window, std::size_t stride = 0);

  [[nodiscard]] std::string describe() const override;
  Shape build(const Shape& input_shape, Rng& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;

 private:
  std::size_t window_, stride_;
  Shape x_shape_;
};

/// Flattens (b, L, C) -> (b, L*C).
class Flatten : public Layer {
 public:
  [[nodiscard]] std::string describe() const override { return "Flatten"; }
  Shape build(const Shape& input_shape, Rng& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;

 private:
  Shape x_shape_;
};

/// Reshapes (b, F) -> (b, F, 1): presents flat features to Conv1D, the way
/// NT3 feeds 60,483 expression values to its first convolution.
class ExpandDims : public Layer {
 public:
  [[nodiscard]] std::string describe() const override { return "ExpandDims"; }
  Shape build(const Shape& input_shape, Rng& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;

 private:
  Shape x_shape_;
};

/// Inverted dropout: scales kept activations by 1/(1-rate) during training;
/// identity at inference.
class Dropout : public Layer {
 public:
  explicit Dropout(double rate);

  [[nodiscard]] std::string describe() const override;
  Shape build(const Shape& input_shape, Rng& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;

 private:
  double rate_;
  Rng rng_;
  std::vector<float> mask_;
};

/// Batch normalization over flat features (Ioffe & Szegedy), Keras
/// BatchNormalization semantics: per-feature standardization by batch
/// statistics during training (with running-average tracking) and by the
/// running statistics at inference, followed by a learned affine (gamma,
/// beta).
class BatchNorm : public Layer {
 public:
  explicit BatchNorm(double momentum = 0.99, double epsilon = 1e-3);

  [[nodiscard]] std::string describe() const override;
  Shape build(const Shape& input_shape, Rng& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> grads() override { return {&dgamma_, &dbeta_}; }

  [[nodiscard]] const Tensor& running_mean() const { return running_mean_; }
  [[nodiscard]] const Tensor& running_var() const { return running_var_; }

 private:
  double momentum_, epsilon_;
  Tensor gamma_, beta_, dgamma_, dbeta_;
  Tensor running_mean_, running_var_;
  // Saved forward state for backward.
  Tensor x_hat_;          // normalized inputs
  std::vector<float> batch_inv_std_;
};

/// Standalone activation layer (for when fusing is not convenient).
class Activation : public Layer {
 public:
  explicit Activation(Act act);

  [[nodiscard]] std::string describe() const override;
  Shape build(const Shape& input_shape, Rng& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& dy) override;

 private:
  Act act_;
  Tensor y_;
};

/// Applies an activation forward; helper shared by fused layers.
Tensor apply_activation(Act act, const Tensor& x);
/// In-place activation over a freshly produced pre-activation tensor —
/// avoids the full-tensor copy of the copying form.
void apply_activation_inplace(Act act, Tensor& x);
/// Backward through an activation given the saved output.
Tensor activation_backward(Act act, const Tensor& dy, const Tensor& y);

}  // namespace candle::nn
