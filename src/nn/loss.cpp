#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace candle::nn {
namespace {

constexpr float kEps = 1e-7f;  // Keras' epsilon for probability clipping.

}  // namespace

float CategoricalCrossentropy::value(const Tensor& pred,
                                     const Tensor& target) const {
  check_same_shape(pred, target, "cce");
  require(pred.rank() == 2, "cce: inputs must be (batch, classes)");
  const std::size_t b = pred.dim(0), n = pred.dim(1);
  const float* pp = pred.data();
  const float* pt = target.data();
  double total = 0.0;
  for (std::size_t i = 0; i < b * n; ++i) {
    if (pt[i] == 0.0f) continue;
    const float p = std::clamp(pp[i], kEps, 1.0f - kEps);
    total -= static_cast<double>(pt[i]) * std::log(p);
  }
  return static_cast<float>(total / static_cast<double>(b));
}

Tensor CategoricalCrossentropy::gradient(const Tensor& pred,
                                         const Tensor& target) const {
  check_same_shape(pred, target, "cce");
  const std::size_t b = pred.dim(0);
  Tensor g(pred.shape());
  const float* pp = pred.data();
  const float* pt = target.data();
  float* pg = g.data();
  const float inv_b = 1.0f / static_cast<float>(b);
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    if (pt[i] == 0.0f) continue;
    const float p = std::clamp(pp[i], kEps, 1.0f - kEps);
    pg[i] = -pt[i] / p * inv_b;
  }
  return g;
}

float MeanSquaredError::value(const Tensor& pred, const Tensor& target) const {
  check_same_shape(pred, target, "mse");
  const float* pp = pred.data();
  const float* pt = target.data();
  double total = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const double d = static_cast<double>(pp[i]) - pt[i];
    total += d * d;
  }
  return static_cast<float>(total / static_cast<double>(pred.numel()));
}

Tensor MeanSquaredError::gradient(const Tensor& pred,
                                  const Tensor& target) const {
  check_same_shape(pred, target, "mse");
  Tensor g(pred.shape());
  const float* pp = pred.data();
  const float* pt = target.data();
  float* pg = g.data();
  const float scale = 2.0f / static_cast<float>(pred.numel());
  for (std::size_t i = 0; i < pred.numel(); ++i)
    pg[i] = scale * (pp[i] - pt[i]);
  return g;
}

float MeanAbsoluteError::value(const Tensor& pred,
                               const Tensor& target) const {
  check_same_shape(pred, target, "mae");
  const float* pp = pred.data();
  const float* pt = target.data();
  double total = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i)
    total += std::abs(static_cast<double>(pp[i]) - pt[i]);
  return static_cast<float>(total / static_cast<double>(pred.numel()));
}

Tensor MeanAbsoluteError::gradient(const Tensor& pred,
                                   const Tensor& target) const {
  check_same_shape(pred, target, "mae");
  Tensor g(pred.shape());
  const float* pp = pred.data();
  const float* pt = target.data();
  float* pg = g.data();
  const float scale = 1.0f / static_cast<float>(pred.numel());
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const float d = pp[i] - pt[i];
    pg[i] = d > 0.0f ? scale : (d < 0.0f ? -scale : 0.0f);
  }
  return g;
}

std::unique_ptr<Loss> make_loss(const std::string& name) {
  if (name == "categorical_crossentropy")
    return std::make_unique<CategoricalCrossentropy>();
  if (name == "mse" || name == "mean_squared_error")
    return std::make_unique<MeanSquaredError>();
  if (name == "mae" || name == "mean_absolute_error")
    return std::make_unique<MeanAbsoluteError>();
  throw InvalidArgument("unknown loss: " + name);
}

}  // namespace candle::nn
