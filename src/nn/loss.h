// Loss functions: value plus gradient w.r.t. predictions.
#pragma once

#include <memory>
#include <string>

#include "tensor/tensor.h"

namespace candle::nn {

/// Abstract loss. `value` returns the mean loss over the batch; `gradient`
/// returns dL/dpred for the same batch (already divided by batch size so
/// gradients are per-sample averages, matching Keras).
class Loss {
 public:
  virtual ~Loss() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual float value(const Tensor& pred,
                                    const Tensor& target) const = 0;
  [[nodiscard]] virtual Tensor gradient(const Tensor& pred,
                                        const Tensor& target) const = 0;
};

/// Categorical cross-entropy over probability rows (predictions are the
/// output of a softmax layer, as in the NT3/P1B2 classifiers).
class CategoricalCrossentropy final : public Loss {
 public:
  [[nodiscard]] std::string name() const override {
    return "categorical_crossentropy";
  }
  [[nodiscard]] float value(const Tensor& pred,
                            const Tensor& target) const override;
  [[nodiscard]] Tensor gradient(const Tensor& pred,
                                const Tensor& target) const override;
};

/// Mean squared error (P1B1 autoencoder reconstruction, P1B3 regression).
class MeanSquaredError final : public Loss {
 public:
  [[nodiscard]] std::string name() const override { return "mse"; }
  [[nodiscard]] float value(const Tensor& pred,
                            const Tensor& target) const override;
  [[nodiscard]] Tensor gradient(const Tensor& pred,
                                const Tensor& target) const override;
};

/// Mean absolute error (alternative regression loss, used in ablations).
class MeanAbsoluteError final : public Loss {
 public:
  [[nodiscard]] std::string name() const override { return "mae"; }
  [[nodiscard]] float value(const Tensor& pred,
                            const Tensor& target) const override;
  [[nodiscard]] Tensor gradient(const Tensor& pred,
                                const Tensor& target) const override;
};

/// Factory from Keras-style names: "categorical_crossentropy", "mse", "mae".
std::unique_ptr<Loss> make_loss(const std::string& name);

}  // namespace candle::nn
