#include "nn/metrics.h"

#include <cmath>

#include "common/error.h"
#include "tensor/ops.h"

namespace candle::nn {

float accuracy(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target, "accuracy");
  const auto p = argmax_rows(pred);
  const auto t = argmax_rows(target);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < p.size(); ++i)
    if (p[i] == t[i]) ++hits;
  return p.empty() ? 0.0f
                   : static_cast<float>(hits) / static_cast<float>(p.size());
}

float r2_score(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target, "r2_score");
  require(pred.numel() > 0, "r2_score: empty tensors");
  const float* pp = pred.data();
  const float* pt = target.data();
  double mean = 0.0;
  for (std::size_t i = 0; i < target.numel(); ++i) mean += pt[i];
  mean /= static_cast<double>(target.numel());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < target.numel(); ++i) {
    const double r = static_cast<double>(pt[i]) - pp[i];
    const double d = static_cast<double>(pt[i]) - mean;
    ss_res += r * r;
    ss_tot += d * d;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0f : 0.0f;
  return static_cast<float>(1.0 - ss_res / ss_tot);
}

float mean_absolute_error(const Tensor& pred, const Tensor& target) {
  check_same_shape(pred, target, "mean_absolute_error");
  require(pred.numel() > 0, "mean_absolute_error: empty tensors");
  const float* pp = pred.data();
  const float* pt = target.data();
  double total = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i)
    total += std::abs(static_cast<double>(pp[i]) - pt[i]);
  return static_cast<float>(total / static_cast<double>(pred.numel()));
}

}  // namespace candle::nn
