// Evaluation metrics.
#pragma once

#include "tensor/tensor.h"

namespace candle::nn {

/// Classification accuracy: fraction of rows where argmax(pred) equals
/// argmax(target) (one-hot targets).
float accuracy(const Tensor& pred, const Tensor& target);

/// Coefficient of determination R² for regression outputs.
float r2_score(const Tensor& pred, const Tensor& target);

/// Mean absolute error.
float mean_absolute_error(const Tensor& pred, const Tensor& target);

}  // namespace candle::nn
