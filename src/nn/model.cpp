#include "nn/model.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <span>
#include <thread>

#include "common/error.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "nn/batch_pipeline.h"
#include "nn/metrics.h"

namespace candle::nn {

double History::total_seconds() const {
  double total = 0.0;
  for (const auto& e : epochs) total += e.seconds;
  return total;
}

void Model::add(std::unique_ptr<Layer> layer) {
  require(!compiled_, "Model::add: cannot add layers after compile()");
  require(layer != nullptr, "Model::add: null layer");
  layers_.push_back(std::move(layer));
}

void Model::compile(const Shape& input_shape,
                    std::unique_ptr<Optimizer> optimizer,
                    std::unique_ptr<Loss> loss, std::uint64_t seed) {
  compile(input_shape, std::move(optimizer), std::move(loss), seed,
          ParallelismOptions{});
}

void Model::compile(const Shape& input_shape,
                    std::unique_ptr<Optimizer> optimizer,
                    std::unique_ptr<Loss> loss, std::uint64_t seed,
                    const ParallelismOptions& parallelism) {
  require(!compiled_, "Model::compile: already compiled");
  require(!layers_.empty(), "Model::compile: model has no layers");
  require(optimizer != nullptr && loss != nullptr,
          "Model::compile: optimizer and loss are required");
  optimizer_ = std::move(optimizer);
  loss_ = std::move(loss);
  input_shape_ = input_shape;
  // Resolve the per-layer plan before building: the decision depends only
  // on layer hyperparameters and shapes, so every rank computes the same
  // plan without communicating.
  ChannelShard shard;
  shard.comm = parallelism.comm;
  shard.rank = parallelism.comm == nullptr ? 0 : parallelism.comm->rank();
  shard.world = parallelism.comm == nullptr ? 1 : parallelism.comm->size();
  shard.wire_dtype = parallelism.wire_dtype;
  plan_.per_layer.clear();
  plan_.per_layer.reserve(layers_.size());
  Rng rng(seed);
  fit_rng_ = rng.fork(0xF17);
  Shape shape = input_shape;
  for (auto& layer : layers_) {
    // Decide this layer's parallelism from its input shape, shard before
    // build (the sharded build slices the full init), then build.
    std::size_t weight_bytes = 0, activation_bytes = 0, channels = 0;
    const bool can_shard = layer->channel_shard_costs(
        shape, parallelism.batch_hint, &weight_bytes, &activation_bytes,
        &channels);
    // Layers narrower than the world stay replicated even under forced
    // channel mode (a 2-class softmax head cannot split across 4 ranks).
    const LayerParallelism lp = choose_parallelism(
        parallelism.mode, can_shard && channels >= shard.world, weight_bytes,
        activation_bytes);
    if (lp == LayerParallelism::kChannel) layer->apply_channel_shard(shard);
    plan_.per_layer.push_back(lp);
    shape = layer->build(shape, rng);
  }
  grad_spans_.clear();
  grad_spans_.reserve(layers_.size());
  rank_local_mask_.clear();
  std::size_t grad_at = 0;
  bool any_local = false;
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const std::size_t count = layers_[li]->grads().size();
    grad_spans_.emplace_back(grad_at, count);
    grad_at += count;
    const bool local = plan_.per_layer[li] == LayerParallelism::kChannel;
    any_local = any_local || (local && count > 0);
    rank_local_mask_.insert(rank_local_mask_.end(), count,
                            local ? std::uint8_t{1} : std::uint8_t{0});
  }
  if (!any_local) rank_local_mask_.clear();
  optimizer_->set_rank_local_gradients(rank_local_mask_);
  compiled_ = true;
}

void Model::compile_for_inference(const Shape& input_shape,
                                  std::uint64_t seed) {
  require(!compiled_, "Model::compile_for_inference: already compiled");
  require(!layers_.empty(), "Model::compile_for_inference: model has no layers");
  input_shape_ = input_shape;
  Rng rng(seed);
  fit_rng_ = rng.fork(0xF17);
  Shape shape = input_shape;
  for (auto& layer : layers_) shape = layer->build(shape, rng);
  // Serving never runs backward: release the gradient buffers build()
  // allocated (they mirror every parameter, doubling NT3-scale weight
  // memory) and skip the grad-span/hook bookkeeping entirely.
  for (auto& layer : layers_)
    for (Tensor* g : layer->grads()) *g = Tensor();
  plan_.per_layer.assign(layers_.size(), LayerParallelism::kData);
  compiled_ = true;
}

void Model::set_grad_ready_hook(GradReadyHook hook) {
  require(compiled_ || !hook,
          "Model::set_grad_ready_hook: compile() first");
  require(!inference_only() || !hook,
          "Model::set_grad_ready_hook: model was compiled for inference");
  grad_ready_hook_ = std::move(hook);
}

void Model::set_collective_executor(const CollectiveExecutor& exec) {
  for (auto& layer : layers_) layer->set_collective_executor(exec);
}

Tensor Model::forward(const Tensor& x, bool training) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h, training);
  return h;
}

void Model::backward(const Tensor& dloss) {
  Tensor g = dloss;
  for (std::size_t li = layers_.size(); li-- > 0;) {
    g = layers_[li]->backward(g);
    // Fire gradient-ready as soon as this layer's grads are final: with
    // layers visited in reverse, an overlap scheduler can reduce the
    // tail-of-model buckets while earlier layers are still backpropagating.
    if (grad_ready_hook_ && grad_spans_[li].second > 0)
      grad_ready_hook_(grad_spans_[li].first, grad_spans_[li].second);
  }
}

Tensor Model::predict(const Tensor& x) {
  require(compiled_, "Model::predict: compile() first");
  return forward(x, /*training=*/false);
}

std::pair<float, float> Model::evaluate(const Tensor& x, const Tensor& y,
                                        bool classification) {
  require(compiled_, "Model::evaluate: compile() first");
  require(!inference_only(),
          "Model::evaluate: model was compiled for inference (no loss)");
  const Tensor pred = forward(x, /*training=*/false);
  const float l = loss_->value(pred, y);
  const float metric =
      classification ? accuracy(pred, y) : r2_score(pred, y);
  return {l, metric};
}

float Model::train_on_batch(const Tensor& x, const Tensor& y) {
  require(compiled_, "Model::train_on_batch: compile() first");
  require(!inference_only(),
          "Model::train_on_batch: model was compiled for inference");
  const Tensor pred = forward(x, /*training=*/true);
  const float l = loss_->value(pred, y);
  backward(loss_->gradient(pred, y));
  optimizer_->apply(parameters(), gradients());
  return l;
}

History Model::fit(const Dataset& data, const FitOptions& options,
                   const std::vector<Callback*>& callbacks) {
  require(compiled_, "Model::fit: compile() first");
  require(!inference_only(), "Model::fit: model was compiled for inference");
  require(options.batch_size > 0, "Model::fit: batch_size must be > 0");
  require(data.size() > 0, "Model::fit: empty dataset");

  Dataset train = data;
  Dataset val;
  if (options.validation_fraction > 0.0) {
    auto [tr, va] = validation_split(data, options.validation_fraction);
    train = std::move(tr);
    val = std::move(va);
  }
  const std::size_t n = train.size();
  require(n >= options.batch_size || !options.drop_remainder,
          "Model::fit: dataset smaller than one batch with drop_remainder");

  History history;
  for (Callback* cb : callbacks) cb->on_train_begin(*this);

  // Prefetching stages batches on a producer thread; the synchronous path
  // gathers inline into the same kind of reusable destinations. Both paths
  // visit identical rows in identical batches, and the gathers are pure
  // copies, so the trained weights are bit-identical either way.
  std::unique_ptr<BatchPipeline> pipeline;
  if (options.prefetch) {
    PipelineOptions popts;
    popts.batch_size = options.batch_size;
    popts.drop_remainder = options.drop_remainder;
    popts.sim_input_latency_s = options.sim_input_latency_s;
    popts.timeline = options.timeline;
    popts.clock = options.timeline_clock;
    popts.rank = options.timeline_rank;
    pipeline = std::make_unique<BatchPipeline>(train, popts);
  }
  Tensor bx, by;  // synchronous-path batch staging, reused across steps

  for (std::size_t epoch = 0; epoch < options.epochs; ++epoch) {
    Stopwatch watch;
    for (Callback* cb : callbacks) cb->on_epoch_begin(*this, epoch);

    // The shuffle order is always drawn here, on this thread, so fit_rng_
    // advances identically with prefetching on or off.
    std::vector<std::size_t> order;
    if (options.shuffle) order = shuffled_index(n, fit_rng_);

    double loss_sum = 0.0;
    std::size_t steps = 0;
    if (pipeline != nullptr) {
      pipeline->start_epoch(std::move(order));
      while (const StagedBatch* batch = pipeline->acquire()) {
        loss_sum += train_on_batch(batch->x, batch->y);
        ++steps;
        for (Callback* cb : callbacks) cb->on_batch_end(*this, steps - 1);
      }
    } else {
      for (std::size_t start = 0; start < n; start += options.batch_size) {
        const std::size_t count = std::min(options.batch_size, n - start);
        if (count < options.batch_size && options.drop_remainder) break;
        Shape xs = train.x.shape();
        xs[0] = count;
        Shape ys = train.y.shape();
        ys[0] = count;
        if (bx.shape() != xs) bx = Tensor(xs);
        if (by.shape() != ys) by = Tensor(ys);
        if (options.shuffle) {
          const std::span<const std::size_t> idx(order.data() + start, count);
          gather_rows(train.x, idx, bx);
          gather_rows(train.y, idx, by);
        } else {
          take_rows(train.x, start, count, bx);
          take_rows(train.y, start, count, by);
        }
        if (options.sim_input_latency_s > 0.0)
          std::this_thread::sleep_for(
              std::chrono::duration<double>(options.sim_input_latency_s));
        loss_sum += train_on_batch(bx, by);
        ++steps;
        for (Callback* cb : callbacks) cb->on_batch_end(*this, steps - 1);
      }
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = steps ? static_cast<float>(loss_sum / steps) : 0.0f;
    stats.batch_steps = steps;
    const auto [train_loss, train_metric] =
        evaluate(train.x, train.y, options.classification);
    (void)train_loss;
    stats.accuracy = train_metric;
    if (val.size() > 0) {
      const auto [vl, vm] = evaluate(val.x, val.y, options.classification);
      stats.val_loss = vl;
      stats.val_accuracy = vm;
    }
    stats.seconds = watch.seconds();
    history.epochs.push_back(stats);
    for (Callback* cb : callbacks) cb->on_epoch_end(*this, stats);
    bool stop = false;
    for (Callback* cb : callbacks) stop = stop || cb->stop_requested();
    if (stop) break;
  }
  return history;
}

std::vector<Tensor*> Model::parameters() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_)
    for (Tensor* p : layer->params()) out.push_back(p);
  return out;
}

std::vector<Layer*> Model::layers() {
  std::vector<Layer*> out;
  out.reserve(layers_.size());
  for (auto& layer : layers_) out.push_back(layer.get());
  return out;
}

std::vector<Tensor*> Model::gradients() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_)
    for (Tensor* g : layer->grads()) out.push_back(g);
  return out;
}

std::size_t Model::param_count() {
  std::size_t total = 0;
  for (auto& layer : layers_) total += layer->param_count();
  return total;
}

Optimizer& Model::optimizer() {
  require(optimizer_ != nullptr, "Model::optimizer: compile() first");
  return *optimizer_;
}

const Loss& Model::loss() const {
  require(loss_ != nullptr, "Model::loss: compile() first");
  return *loss_;
}

std::string Model::summary() {
  std::string out = "Model:\n";
  for (auto& layer : layers_)
    out += strprintf("  %-32s params=%zu\n", layer->describe().c_str(),
                     layer->param_count());
  out += strprintf("  total trainable parameters: %zu\n", param_count());
  return out;
}

}  // namespace candle::nn
