// Sequential model with a Keras-style compile/fit/evaluate/predict API.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "nn/dataset.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace candle::trace {
class Timeline;
}  // namespace candle::trace

namespace candle::nn {

class Model;

/// Per-epoch training record.
struct EpochStats {
  std::size_t epoch = 0;       // 0-based epoch index
  float loss = 0.0f;           // mean training loss over the epoch
  float accuracy = 0.0f;       // training accuracy (classification) or R²
  float val_loss = 0.0f;       // validation loss (0 when no validation set)
  float val_accuracy = 0.0f;
  double seconds = 0.0;        // wall-clock time of the epoch
  std::size_t batch_steps = 0; // number of optimizer steps taken
};

/// Complete training history returned by fit().
struct History {
  std::vector<EpochStats> epochs;

  [[nodiscard]] float final_loss() const {
    return epochs.empty() ? 0.0f : epochs.back().loss;
  }
  [[nodiscard]] float final_accuracy() const {
    return epochs.empty() ? 0.0f : epochs.back().accuracy;
  }
  [[nodiscard]] double total_seconds() const;
};

/// Training hook, mirroring Keras callbacks. The Horovod
/// BroadcastGlobalVariablesHook is implemented as one of these.
class Callback {
 public:
  virtual ~Callback() = default;
  virtual void on_train_begin(Model& /*model*/) {}
  virtual void on_epoch_begin(Model& /*model*/, std::size_t /*epoch*/) {}
  virtual void on_epoch_end(Model& /*model*/, const EpochStats& /*stats*/) {}
  virtual void on_batch_end(Model& /*model*/, std::size_t /*step*/) {}

  /// Checked after every epoch; returning true ends fit() early
  /// (EarlyStopping uses this).
  [[nodiscard]] virtual bool stop_requested() const { return false; }
};

/// Options for Model::fit.
struct FitOptions {
  std::size_t epochs = 1;
  std::size_t batch_size = 32;
  bool shuffle = true;              // reshuffle sample order each epoch
  double validation_fraction = 0.0; // tail split evaluated per epoch
  bool classification = true;       // accuracy vs R² for the metric column
  bool drop_remainder = false;      // drop the final partial batch

  /// Stage batches on a background producer thread (double-buffered; see
  /// nn/batch_pipeline.h). Bit-identical to the synchronous path: same
  /// fit_rng_ draws, same batch boundaries, copies only.
  bool prefetch = false;
  /// Synthetic per-batch input latency (benchmark knob, cf.
  /// hvd::FusionOptions::sim_net_latency_s): paid inline by the synchronous
  /// path and on the producer thread — hidden — when prefetching.
  double sim_input_latency_s = 0.0;
  /// When set, the prefetch pipeline records PIPELINE_PRODUCE /
  /// PIPELINE_STALL events here, timestamped on `timeline_clock` (the
  /// pipeline's own clock when null) in lane `timeline_rank`.
  trace::Timeline* timeline = nullptr;
  const Stopwatch* timeline_clock = nullptr;
  std::size_t timeline_rank = 0;
};

/// Sequential neural network.
///
/// Usage:
///   Model m;
///   m.add<Dense>(128, Act::kRelu);
///   m.add<Dense>(2, Act::kSoftmax);
///   m.compile({700}, make_optimizer("sgd", 0.001),
///             make_loss("categorical_crossentropy"), /*seed=*/42);
///   History h = m.fit(train, {.epochs = 8, .batch_size = 20});
class Model {
 public:
  Model() = default;
  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  /// Appends a layer (ownership transferred).
  void add(std::unique_ptr<Layer> layer);

  /// Emplace-style layer construction.
  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  /// Builds all layers for the per-sample input shape, binds the optimizer
  /// and loss, and initializes weights from `seed`. Must be called once
  /// before fit/predict.
  void compile(const Shape& input_shape, std::unique_ptr<Optimizer> optimizer,
               std::unique_ptr<Loss> loss, std::uint64_t seed = 42);

  /// compile() with a parallelism request: resolves a per-layer plan
  /// (see nn/parallelism.h), shards the chosen layers' output channels
  /// before building, and passes the rank-local gradient mask to the
  /// optimizer. All ranks must call with identical layers, shapes, seed,
  /// and options (channel parallelism replicates the batch, so the data
  /// and shuffle stream must be identical too).
  void compile(const Shape& input_shape, std::unique_ptr<Optimizer> optimizer,
               std::unique_ptr<Loss> loss, std::uint64_t seed,
               const ParallelismOptions& parallelism);

  /// Inference-only compile: builds the layers (weights initialized from
  /// `seed`, normally overwritten by nn::load_weights) and then releases
  /// every gradient tensor — no optimizer, no loss, no gradient-ready
  /// hooks, so a served model pays neither training-side memory (gradient
  /// buffers mirror every parameter) nor hook overhead. predict() and
  /// evaluate-free serving work; fit/train_on_batch/evaluate throw.
  /// The same seed produces bit-identical weights to compile() because the
  /// RNG stream over the layer builds is unchanged.
  void compile_for_inference(const Shape& input_shape,
                             std::uint64_t seed = 42);

  [[nodiscard]] bool compiled() const { return compiled_; }

  /// True when compile_for_inference built this model (no optimizer/loss).
  [[nodiscard]] bool inference_only() const {
    return compiled_ && optimizer_ == nullptr;
  }

  /// Forward pass without dropout.
  [[nodiscard]] Tensor predict(const Tensor& x);

  /// Returns {loss, metric} on the given data (metric: accuracy or R²).
  [[nodiscard]] std::pair<float, float> evaluate(const Tensor& x,
                                                 const Tensor& y,
                                                 bool classification = true);

  /// One optimizer step on a batch; returns the batch loss.
  float train_on_batch(const Tensor& x, const Tensor& y);

  /// Full training loop.
  History fit(const Dataset& data, const FitOptions& options,
              const std::vector<Callback*>& callbacks = {});

  /// Flattened trainable parameters / gradients across layers.
  [[nodiscard]] std::vector<Tensor*> parameters();
  [[nodiscard]] std::vector<Tensor*> gradients();

  /// Gradient-ready notification, fired by backward() once per layer in
  /// reverse layer order as that layer's gradients are finalized:
  /// hook(first, count) covers gradients() indices [first, first + count).
  /// Layers without parameters fire nothing. This is the signal the
  /// hvd::BucketScheduler uses to overlap allreduce with backprop; the hook
  /// must be cheap and must not throw. Pass {} to remove.
  using GradReadyHook =
      std::function<void(std::size_t first, std::size_t count)>;
  void set_grad_ready_hook(GradReadyHook hook);

  /// Non-owning views of the layers, in forward order (used by the
  /// per-layer profiler).
  [[nodiscard]] std::vector<Layer*> layers();

  [[nodiscard]] std::size_t param_count();
  [[nodiscard]] Optimizer& optimizer();
  [[nodiscard]] const Loss& loss() const;
  [[nodiscard]] const Shape& input_shape() const { return input_shape_; }

  /// Keras-style model summary (one line per layer + parameter total).
  [[nodiscard]] std::string summary();

  /// Per-layer parallelism resolved at compile() time (all-kData when
  /// compile() ran without ParallelismOptions).
  [[nodiscard]] const ParallelismPlan& parallelism_plan() const {
    return plan_;
  }

  /// Rank-local flags over the flat parameters()/gradients() order (the
  /// two lists pair up one-to-one): true entries belong to a
  /// channel-sharded layer and must be neither allreduce-averaged nor
  /// broadcast across ranks. Empty when no layer is sharded.
  [[nodiscard]] const std::vector<std::uint8_t>& rank_local_mask() const {
    return rank_local_mask_;
  }

  /// Installs a collective executor on every layer (see
  /// nn::CollectiveExecutor): sharded layers then issue their activation
  /// collectives through it instead of inline. The overlap scheduler calls
  /// this so one comm thread owns the rank's whole collective order.
  void set_collective_executor(const CollectiveExecutor& exec);

 private:
  Tensor forward(const Tensor& x, bool training);
  void backward(const Tensor& dloss);

  std::vector<std::unique_ptr<Layer>> layers_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<Loss> loss_;
  Shape input_shape_;
  bool compiled_ = false;
  Rng fit_rng_{0xF17};
  GradReadyHook grad_ready_hook_;
  /// Per-layer (first, count) spans into the flat gradients() order,
  /// computed at compile() time.
  std::vector<std::pair<std::size_t, std::size_t>> grad_spans_;
  ParallelismPlan plan_;
  std::vector<std::uint8_t> rank_local_mask_;
};

}  // namespace candle::nn
