#include "nn/optimizer.h"

#include <cmath>

#include "common/error.h"
#include "common/parallel.h"

namespace candle::nn {
namespace {

// Weight updates are elementwise over each parameter tensor; the big
// CANDLE layers (P1B1's 60483x2000 Dense) dominate, so splitting within a
// tensor is what matters. Order within an element is unchanged, so the
// threaded update is bit-identical to serial.
constexpr std::size_t kUpdateGrain = 8192;

void check_lists(const std::vector<Tensor*>& params,
                 const std::vector<Tensor*>& grads) {
  require(params.size() == grads.size(),
          "optimizer: params/grads list size mismatch");
  for (std::size_t i = 0; i < params.size(); ++i)
    check_same_shape(*params[i], *grads[i], "optimizer");
}

void ensure_state(std::vector<Tensor>& state,
                  const std::vector<Tensor*>& params) {
  if (state.size() == params.size()) return;
  require(state.empty(), "optimizer: parameter list changed mid-training");
  state.reserve(params.size());
  for (const Tensor* p : params) state.emplace_back(p->shape());
}

}  // namespace

Sgd::Sgd(double lr, double momentum, bool nesterov)
    : lr_(lr), momentum_(momentum), nesterov_(nesterov) {
  require(lr > 0.0, "Sgd: lr must be > 0");
  require(momentum >= 0.0 && momentum < 1.0, "Sgd: momentum must be in [0,1)");
  require(!nesterov || momentum > 0.0, "Sgd: nesterov requires momentum");
}

void Sgd::apply(const std::vector<Tensor*>& params,
                const std::vector<Tensor*>& grads) {
  check_lists(params, grads);
  if (momentum_ == 0.0) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      float* w = params[i]->data();
      const float* g = grads[i]->data();
      const float lr = static_cast<float>(lr_);
      parallel::parallel_for(0, params[i]->numel(), kUpdateGrain,
                             [&](std::size_t j0, std::size_t j1) {
                               for (std::size_t j = j0; j < j1; ++j)
                                 w[j] -= lr * g[j];
                             });
    }
    return;
  }
  ensure_state(velocity_, params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* w = params[i]->data();
    const float* g = grads[i]->data();
    float* v = velocity_[i].data();
    const float lr = static_cast<float>(lr_);
    const float mu = static_cast<float>(momentum_);
    const bool nesterov = nesterov_;
    parallel::parallel_for(
        0, params[i]->numel(), kUpdateGrain,
        [&](std::size_t j0, std::size_t j1) {
          for (std::size_t j = j0; j < j1; ++j) {
            v[j] = mu * v[j] - lr * g[j];
            // Nesterov: look ahead along the updated velocity (Keras
            // semantics).
            w[j] += nesterov ? mu * v[j] - lr * g[j] : v[j];
          }
        });
  }
}

ClippedOptimizer::ClippedOptimizer(std::unique_ptr<Optimizer> inner,
                                   double max_norm)
    : inner_(std::move(inner)), max_norm_(max_norm) {
  require(inner_ != nullptr, "ClippedOptimizer: null inner optimizer");
  require(max_norm > 0.0, "ClippedOptimizer: max_norm must be > 0");
}

std::string ClippedOptimizer::name() const {
  return "clipped(" + inner_->name() + ")";
}

double ClippedOptimizer::learning_rate() const {
  return inner_->learning_rate();
}

void ClippedOptimizer::set_learning_rate(double lr) {
  inner_->set_learning_rate(lr);
}

void ClippedOptimizer::apply(const std::vector<Tensor*>& params,
                             const std::vector<Tensor*>& grads) {
  double sq = 0.0;
  for (const Tensor* g : grads) sq += static_cast<double>(g->sq_norm());
  const double norm = std::sqrt(sq);
  if (norm > max_norm_) {
    const float scale = static_cast<float>(max_norm_ / norm);
    for (Tensor* g : grads) *g *= scale;
    ++clip_events_;
  }
  inner_->apply(params, grads);
}

RmsProp::RmsProp(double lr, double rho, double eps)
    : lr_(lr), rho_(rho), eps_(eps) {
  require(lr > 0.0, "RmsProp: lr must be > 0");
  require(rho > 0.0 && rho < 1.0, "RmsProp: rho must be in (0,1)");
}

void RmsProp::apply(const std::vector<Tensor*>& params,
                    const std::vector<Tensor*>& grads) {
  check_lists(params, grads);
  ensure_state(mean_sq_, params);
  const float lr = static_cast<float>(lr_);
  const float rho = static_cast<float>(rho_);
  const float eps = static_cast<float>(eps_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* w = params[i]->data();
    const float* g = grads[i]->data();
    float* s = mean_sq_[i].data();
    parallel::parallel_for(
        0, params[i]->numel(), kUpdateGrain,
        [&](std::size_t j0, std::size_t j1) {
          for (std::size_t j = j0; j < j1; ++j) {
            s[j] = rho * s[j] + (1.0f - rho) * g[j] * g[j];
            w[j] -= lr * g[j] / (std::sqrt(s[j]) + eps);
          }
        });
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  require(lr > 0.0, "Adam: lr must be > 0");
  require(beta1 > 0.0 && beta1 < 1.0, "Adam: beta1 must be in (0,1)");
  require(beta2 > 0.0 && beta2 < 1.0, "Adam: beta2 must be in (0,1)");
}

void Adam::apply(const std::vector<Tensor*>& params,
                 const std::vector<Tensor*>& grads) {
  check_lists(params, grads);
  ensure_state(m_, params);
  ensure_state(v_, params);
  ++step_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(step_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(step_));
  const float alpha = static_cast<float>(lr_ * std::sqrt(bc2) / bc1);
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  const float eps = static_cast<float>(eps_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* w = params[i]->data();
    const float* g = grads[i]->data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    parallel::parallel_for(
        0, params[i]->numel(), kUpdateGrain,
        [&](std::size_t j0, std::size_t j1) {
          for (std::size_t j = j0; j < j1; ++j) {
            m[j] = b1 * m[j] + (1.0f - b1) * g[j];
            v[j] = b2 * v[j] + (1.0f - b2) * g[j] * g[j];
            w[j] -= alpha * m[j] / (std::sqrt(v[j]) + eps);
          }
        });
  }
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& name, double lr) {
  if (name == "sgd") return std::make_unique<Sgd>(lr);
  if (name == "adam") return std::make_unique<Adam>(lr);
  if (name == "rmsprop") return std::make_unique<RmsProp>(lr);
  throw InvalidArgument("unknown optimizer: " + name);
}

}  // namespace candle::nn
