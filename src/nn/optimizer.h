// Optimizers with Keras-default hyperparameters.
//
// The optimizer owns per-parameter state (momenta etc.) keyed by position in
// the parameter list, which is stable for the lifetime of a model. The
// Horovod DistributedOptimizer (hvd/distributed_optimizer.h) wraps any of
// these, allreduce-averaging the gradients before delegating here — exactly
// the paper's `hvd.DistributedOptimizer(optimizer)` pattern.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace candle::nn {

/// Abstract optimizer: applies one step given parameter and gradient lists
/// (same order/shapes every call).
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Current learning rate (after any scaling).
  [[nodiscard]] virtual double learning_rate() const = 0;
  /// Sets the learning rate; used for the paper's lr × nprocs linear scaling.
  virtual void set_learning_rate(double lr) = 0;

  /// Applies one update step in-place.
  virtual void apply(const std::vector<Tensor*>& params,
                     const std::vector<Tensor*>& grads) = 0;

  /// Marks which gradients (by flat index, aligned with apply()'s lists)
  /// are rank-local under channel parallelism: each rank owns a disjoint
  /// weight shard, so those gradients must be excluded from cross-rank
  /// averaging and parameter broadcast. Called by Model::compile once the
  /// parallelism plan is resolved. The base optimizers update whatever
  /// gradients they are handed and ignore the mask; the Horovod
  /// DistributedOptimizer overrides this to reduce only the complement.
  virtual void set_rank_local_gradients(
      const std::vector<std::uint8_t>& mask) {
    (void)mask;
  }
};

/// Stochastic gradient descent with optional (optionally Nesterov)
/// momentum (NT3/P1B3 optimizer).
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr = 0.01, double momentum = 0.0,
               bool nesterov = false);
  [[nodiscard]] std::string name() const override { return "sgd"; }
  [[nodiscard]] double learning_rate() const override { return lr_; }
  void set_learning_rate(double lr) override { lr_ = lr; }
  void apply(const std::vector<Tensor*>& params,
             const std::vector<Tensor*>& grads) override;

 private:
  double lr_, momentum_;
  bool nesterov_;
  std::vector<Tensor> velocity_;
};

/// Global-norm gradient clipping decorator (Keras clipnorm): when the
/// concatenated gradient's L2 norm exceeds `max_norm`, every gradient is
/// scaled by max_norm / norm before the wrapped optimizer applies. Guards
/// the scaled-lr regime the paper's methodology creates at high GPU counts.
class ClippedOptimizer final : public Optimizer {
 public:
  ClippedOptimizer(std::unique_ptr<Optimizer> inner, double max_norm);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double learning_rate() const override;
  void set_learning_rate(double lr) override;
  void apply(const std::vector<Tensor*>& params,
             const std::vector<Tensor*>& grads) override;

  /// Number of apply() calls where clipping actually triggered.
  [[nodiscard]] std::size_t clip_events() const { return clip_events_; }

 private:
  std::unique_ptr<Optimizer> inner_;
  double max_norm_;
  std::size_t clip_events_ = 0;
};

/// RMSprop (P1B2 optimizer). Keras defaults: rho 0.9, eps 1e-7.
class RmsProp final : public Optimizer {
 public:
  explicit RmsProp(double lr = 0.001, double rho = 0.9, double eps = 1e-7);
  [[nodiscard]] std::string name() const override { return "rmsprop"; }
  [[nodiscard]] double learning_rate() const override { return lr_; }
  void set_learning_rate(double lr) override { lr_ = lr; }
  void apply(const std::vector<Tensor*>& params,
             const std::vector<Tensor*>& grads) override;

 private:
  double lr_, rho_, eps_;
  std::vector<Tensor> mean_sq_;
};

/// Adam (P1B1 optimizer). Keras defaults: beta1 0.9, beta2 0.999, eps 1e-7.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr = 0.001, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-7);
  [[nodiscard]] std::string name() const override { return "adam"; }
  [[nodiscard]] double learning_rate() const override { return lr_; }
  void set_learning_rate(double lr) override { lr_ = lr; }
  void apply(const std::vector<Tensor*>& params,
             const std::vector<Tensor*>& grads) override;

 private:
  double lr_, beta1_, beta2_, eps_;
  long long step_ = 0;
  std::vector<Tensor> m_, v_;
};

/// Factory from Keras-style names ("sgd", "adam", "rmsprop") and an initial
/// learning rate (ignored names throw).
std::unique_ptr<Optimizer> make_optimizer(const std::string& name, double lr);

}  // namespace candle::nn
