#include "nn/parallelism.h"

#include <cstring>
#include <string>

#include "common/error.h"

namespace candle::nn {

const char* parallelism_mode_name(ParallelismMode m) {
  switch (m) {
    case ParallelismMode::kData: return "data";
    case ParallelismMode::kChannel: return "channel";
    case ParallelismMode::kAuto: return "auto";
  }
  return "?";
}

const char* layer_parallelism_name(LayerParallelism p) {
  switch (p) {
    case LayerParallelism::kData: return "data";
    case LayerParallelism::kChannel: return "channel";
  }
  return "?";
}

ParallelismMode parse_parallelism_mode(const char* name) {
  const std::string s = name == nullptr ? "" : name;
  if (s == "data") return ParallelismMode::kData;
  if (s == "channel") return ParallelismMode::kChannel;
  if (s == "auto") return ParallelismMode::kAuto;
  throw InvalidArgument("parse_parallelism_mode: unknown mode '" + s +
                        "' (expected auto|data|channel)");
}

std::size_t shard_offset(std::size_t block, std::size_t channels,
                         std::size_t world) {
  require(world > 0, "shard_offset: world must be > 0");
  require(block <= world, "shard_offset: block out of range");
  return block * channels / world;
}

LayerParallelism choose_parallelism(ParallelismMode mode, bool can_shard,
                                    std::size_t weight_bytes,
                                    std::size_t activation_bytes) {
  if (!can_shard) return LayerParallelism::kData;
  switch (mode) {
    case ParallelismMode::kData: return LayerParallelism::kData;
    case ParallelismMode::kChannel: return LayerParallelism::kChannel;
    case ParallelismMode::kAuto:
      // Data parallelism allreduces the weight gradient every step; channel
      // parallelism exchanges activations instead. Shard exactly when the
      // weights dominate — wide Dense / fat Conv1D filter banks — and keep
      // activation-heavy layers replicated.
      return weight_bytes > activation_bytes ? LayerParallelism::kChannel
                                             : LayerParallelism::kData;
  }
  return LayerParallelism::kData;
}

namespace {

std::size_t trailing_rows(const Tensor& t) {
  require(t.rank() >= 1 && t.numel() > 0,
          "parallelism: tensor must be non-empty");
  return t.numel() / t.dim(t.rank() - 1);
}

void run_collective(const ChannelShard& shard,
                    const std::function<void()>& fn) {
  if (shard.executor) {
    shard.executor(fn);
  } else {
    fn();
  }
}

}  // namespace

void slice_columns(const Tensor& full, std::size_t col0, std::size_t cols,
                   Tensor& out) {
  const std::size_t total = full.dim(full.rank() - 1);
  require(col0 + cols <= total, "slice_columns: slice out of range");
  const std::size_t rows = trailing_rows(full);
  require(out.numel() == rows * cols, "slice_columns: bad output size");
  const float* src = full.data();
  float* dst = out.data();
  for (std::size_t r = 0; r < rows; ++r)
    std::memcpy(dst + r * cols, src + r * total + col0, cols * sizeof(float));
}

void allgather_columns(const ChannelShard& shard, const Tensor& local,
                       std::size_t total_cols, std::vector<float>& scratch,
                       Tensor& out) {
  const std::size_t rows = trailing_rows(local);
  const std::size_t my_cols = local.dim(local.rank() - 1);
  require(out.numel() == rows * total_cols,
          "allgather_columns: bad output size");
  if (shard.world <= 1) {
    require(my_cols == total_cols, "allgather_columns: bad local width");
    std::memcpy(out.data(), local.data(), local.numel() * sizeof(float));
    return;
  }
  require(shard.comm != nullptr, "allgather_columns: null communicator");
  const std::size_t my0 = shard_offset(shard.rank, total_cols, shard.world);
  require(my_cols ==
              shard_offset(shard.rank + 1, total_cols, shard.world) - my0,
          "allgather_columns: local width does not match shard block");
  // Stage rank blocks contiguously: block g occupies
  // [rows * shard_offset(g), rows * shard_offset(g + 1)), which is exactly
  // the granularity-`rows` ring segment owned by rank g.
  scratch.resize(rows * total_cols);
  std::memcpy(scratch.data() + rows * my0, local.data(),
              local.numel() * sizeof(float));
  run_collective(shard, [&] {
    shard.comm->allgather(std::span<float>(scratch.data(), scratch.size()),
                          shard.wire_dtype, rows);
  });
  // Interleave the gathered blocks back into row-major (rows, total_cols).
  for (std::size_t g = 0; g < shard.world; ++g) {
    const std::size_t c0 = shard_offset(g, total_cols, shard.world);
    const std::size_t cg = shard_offset(g + 1, total_cols, shard.world) - c0;
    const float* src = scratch.data() + rows * c0;
    float* dst = out.data() + c0;
    for (std::size_t r = 0; r < rows; ++r)
      std::memcpy(dst + r * total_cols, src + r * cg, cg * sizeof(float));
  }
}

void sum_partials(const ChannelShard& shard, Tensor& partial) {
  if (shard.world <= 1) return;
  require(shard.comm != nullptr, "sum_partials: null communicator");
  const std::span<float> flat = partial.values();
  // One executor block for the pair: the reduce-scatter and its inverse
  // stay adjacent in the rank's collective order.
  run_collective(shard, [&] {
    shard.comm->reduce_scatter(flat, shard.wire_dtype);
    shard.comm->allgather(flat, shard.wire_dtype);
  });
}

}  // namespace candle::nn
