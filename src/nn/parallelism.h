// Per-layer tensor (channel/filter) parallelism.
//
// LBANN's "Channel and Filter Parallelism for Large-Scale CNN Training"
// (SC'19) recipe, applied to the CANDLE layers: a layer that dominates the
// model's parameter count (NT3/P1B1's wide Dense, Conv1D filter banks) is
// partitioned across ranks by *output* channel/feature instead of being
// replicated. Each rank then owns a 1/P column slice of the weights and
// optimizer state, the per-step weight-gradient allreduce disappears for
// that layer, and the collectives move activations instead: forward
// allgathers the per-rank output column blocks, backward reduce-scatters +
// allgathers the summed input gradient (comm/communicator.h primitives).
//
// The planner (Model::compile) resolves a ParallelismMode request into a
// per-layer ParallelismPlan; kAuto shards exactly the layers whose per-step
// weight-gradient bytes exceed the activation bytes channel parallelism
// would move instead.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "comm/communicator.h"
#include "tensor/tensor.h"

namespace candle::nn {

/// Requested parallelism policy for Model::compile (runner/quickstart
/// --layer-parallelism): kData replicates every layer (the classic Horovod
/// setup), kChannel shards every shardable layer, kAuto decides per layer
/// from the byte heuristic below.
enum class ParallelismMode { kData, kChannel, kAuto };

/// Resolved parallelism of one layer.
enum class LayerParallelism { kData, kChannel };

[[nodiscard]] const char* parallelism_mode_name(ParallelismMode m);
[[nodiscard]] const char* layer_parallelism_name(LayerParallelism p);

/// Parses an --layer-parallelism value ("auto" | "data" | "channel");
/// throws InvalidArgument on unknown names.
[[nodiscard]] ParallelismMode parse_parallelism_mode(const char* name);

/// Routes a block of collective calls to the thread that owns the rank's
/// collective order. The overlap scheduler installs one (see
/// hvd::BucketScheduler::run_inline) so sharded-layer collectives and
/// overlapped gradient buckets are issued by a single comm thread in a
/// rank-invariant FIFO order; when empty, the block runs inline on the
/// calling thread.
using CollectiveExecutor = std::function<void(const std::function<void()>&)>;

/// Sharding context handed to a layer before build(). `comm` may be null
/// only when world == 1 (no collectives are issued). All ranks must agree
/// on world/wire_dtype; each rank passes its own rank.
struct ChannelShard {
  comm::Communicator* comm = nullptr;
  std::size_t rank = 0;
  std::size_t world = 1;
  /// On-wire dtype for the activation collectives (fp32 keeps the layer's
  /// multi-rank forward bit-exact; fp16/bf16 compress at the codec bound).
  comm::WireDtype wire_dtype = comm::WireDtype::kFp32;
  /// Set after compile by Layer::set_collective_executor (overlap mode).
  CollectiveExecutor executor;
};

/// Planner inputs for Model::compile. rank/world are derived from `comm`
/// (0/1 when null); batch_hint feeds the kAuto activation-byte estimate.
struct ParallelismOptions {
  ParallelismMode mode = ParallelismMode::kData;
  comm::Communicator* comm = nullptr;
  std::size_t batch_hint = 32;
  comm::WireDtype wire_dtype = comm::WireDtype::kFp32;
};

/// Resolved per-layer plan, fixed at compile() time.
struct ParallelismPlan {
  std::vector<LayerParallelism> per_layer;

  [[nodiscard]] bool any_channel() const {
    for (const LayerParallelism p : per_layer)
      if (p == LayerParallelism::kChannel) return true;
    return false;
  }
  [[nodiscard]] std::size_t channel_layers() const {
    std::size_t n = 0;
    for (const LayerParallelism p : per_layer)
      n += p == LayerParallelism::kChannel ? 1 : 0;
    return n;
  }
};

/// Output-channel block boundary for `world`-way sharding: block g covers
/// channels [shard_offset(g), shard_offset(g+1)). This is the communicator
/// ring's segment function, so a granularity-`rows` allgather of the
/// per-rank column blocks lands each block exactly on its boundary.
[[nodiscard]] std::size_t shard_offset(std::size_t block,
                                       std::size_t channels,
                                       std::size_t world);

/// The planner's per-layer decision. `can_shard` is whether the layer
/// supports channel sharding at all; weight_bytes is the per-step gradient
/// allreduce volume data parallelism pays for the layer, activation_bytes
/// the per-step activation exchange channel parallelism pays instead
/// (forward output allgather + backward input-gradient reduce-scatter and
/// allgather). kAuto shards when the weights dominate.
[[nodiscard]] LayerParallelism choose_parallelism(
    ParallelismMode mode, bool can_shard, std::size_t weight_bytes,
    std::size_t activation_bytes);

/// Gathers per-rank output column blocks into the full activation matrix.
/// `local` is this rank's (rows, cols_r) block (any tensor whose trailing
/// dimension is the sharded channel axis; leading axes flatten into rows);
/// `out` must be pre-shaped with the same rows and `total_cols` trailing
/// columns. `scratch` is persistent per-layer staging (rank blocks laid out
/// contiguously for the granularity-`rows` allgather, then interleaved into
/// `out`). With world == 1 this is a plain copy.
void allgather_columns(const ChannelShard& shard, const Tensor& local,
                       std::size_t total_cols, std::vector<float>& scratch,
                       Tensor& out);

/// Copies the [col0, col0+cols) column slice of `full` (trailing-axis
/// columns, leading axes flattened into rows) into `out`, which must be
/// pre-shaped (rows..., cols).
void slice_columns(const Tensor& full, std::size_t col0, std::size_t cols,
                   Tensor& out);

/// Sums a partially-reduced tensor across ranks in place via
/// reduce_scatter + allgather — the backward input-gradient exchange.
/// Deterministic and rank-invariant (ring schedule); no-op at world 1.
void sum_partials(const ChannelShard& shard, Tensor& partial);

}  // namespace candle::nn
