#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/error.h"

namespace candle::nn {
namespace {

constexpr char kMagic[4] = {'C', 'N', 'D', 'L'};
constexpr std::uint32_t kVersion = 1;

/// Fletcher-64 over a byte stream (simple, order-sensitive integrity check).
class Fletcher64 {
 public:
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      a_ = (a_ + p[i]) % 4294967295ULL;
      b_ = (b_ + a_) % 4294967295ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const { return (b_ << 32) | a_; }

 private:
  std::uint64_t a_ = 0, b_ = 0;
};

struct Writer {
  std::FILE* f;
  Fletcher64 sum;
  void write(const void* data, std::size_t n) {
    if (std::fwrite(data, 1, n, f) != n)
      throw IoError("save_weights: short write");
    sum.update(data, n);
  }
  template <typename T>
  void write_pod(const T& v) {
    write(&v, sizeof(T));
  }
};

struct Reader {
  std::FILE* f;
  Fletcher64 sum;
  void read(void* data, std::size_t n) {
    if (std::fread(data, 1, n, f) != n)
      throw IoError("load_weights: truncated checkpoint");
    sum.update(data, n);
  }
  template <typename T>
  T read_pod() {
    T v{};
    read(&v, sizeof(T));
    return v;
  }
};

}  // namespace

void save_weights(Model& model, const std::string& path) {
  require(model.compiled(), "save_weights: model must be compiled");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw IoError("save_weights: cannot open " + path);
  Writer w{f, {}};
  try {
    w.write(kMagic, sizeof(kMagic));
    w.write_pod(kVersion);
    const std::vector<Tensor*> params = model.parameters();
    w.write_pod(static_cast<std::uint64_t>(params.size()));
    for (const Tensor* t : params) {
      w.write_pod(static_cast<std::uint64_t>(t->rank()));
      for (std::size_t d : t->shape())
        w.write_pod(static_cast<std::uint64_t>(d));
      w.write(t->data(), t->numel() * sizeof(float));
    }
    const std::uint64_t checksum = w.sum.value();
    if (std::fwrite(&checksum, 1, sizeof(checksum), f) != sizeof(checksum))
      throw IoError("save_weights: short write");
  } catch (...) {
    std::fclose(f);
    throw;
  }
  std::fclose(f);
}

void load_weights(Model& model, const std::string& path) {
  require(model.compiled(), "load_weights: model must be compiled");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw IoError("load_weights: cannot open " + path);
  Reader r{f, {}};
  try {
    char magic[4];
    r.read(magic, sizeof(magic));
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
      throw IoError("load_weights: not a CANDLE checkpoint: " + path);
    const auto version = r.read_pod<std::uint32_t>();
    if (version != kVersion)
      throw IoError("load_weights: unsupported checkpoint version " +
                    std::to_string(version));
    const std::vector<Tensor*> params = model.parameters();
    const auto count = r.read_pod<std::uint64_t>();
    if (count != params.size())
      throw IoError("load_weights: checkpoint has " + std::to_string(count) +
                    " tensors, model has " + std::to_string(params.size()));
    // Stage into temporaries so a corrupt file cannot half-update the model.
    std::vector<std::vector<float>> staged(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      const auto rank = r.read_pod<std::uint64_t>();
      Shape shape(rank);
      for (auto& d : shape)
        d = static_cast<std::size_t>(r.read_pod<std::uint64_t>());
      if (shape != params[i]->shape())
        throw IoError("load_weights: tensor " + std::to_string(i) +
                      " shape mismatch: checkpoint " +
                      shape_to_string(shape) + " vs model " +
                      shape_to_string(params[i]->shape()));
      staged[i].resize(params[i]->numel());
      r.read(staged[i].data(), staged[i].size() * sizeof(float));
    }
    const std::uint64_t expected = r.sum.value();
    std::uint64_t checksum = 0;
    if (std::fread(&checksum, 1, sizeof(checksum), f) != sizeof(checksum))
      throw IoError("load_weights: truncated checkpoint (missing checksum)");
    if (checksum != expected)
      throw IoError("load_weights: checksum mismatch — corrupt checkpoint");
    for (std::size_t i = 0; i < params.size(); ++i)
      std::memcpy(params[i]->data(), staged[i].data(),
                  staged[i].size() * sizeof(float));
  } catch (...) {
    std::fclose(f);
    throw;
  }
  std::fclose(f);
}

bool is_checkpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[4] = {};
  const std::size_t n = std::fread(magic, 1, sizeof(magic), f);
  std::fclose(f);
  return n == sizeof(magic) && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
}

}  // namespace candle::nn
