// Model weight serialization — the checkpoint/restart capability the paper
// lists as future work ("We will add checkpoint/restart features to the
// Horovod benchmarks for fault tolerance", §7).
//
// Format (little-endian binary):
//   magic "CNDL" | version u32 | tensor_count u64 |
//   per tensor: rank u64, dims u64[rank], data f32[numel] |
//   fletcher64 checksum over everything before it
#pragma once

#include <string>

#include "nn/model.h"

namespace candle::nn {

/// Writes all trainable parameters of `model` to `path`.
/// Throws IoError on filesystem failure.
void save_weights(Model& model, const std::string& path);

/// Loads parameters saved by save_weights into `model`. The model must be
/// compiled with identical architecture (shape sequence is verified; a
/// mismatch or corrupt file throws IoError).
void load_weights(Model& model, const std::string& path);

/// True when `path` exists and carries the checkpoint magic.
bool is_checkpoint(const std::string& path);

}  // namespace candle::nn
