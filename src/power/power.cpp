#include "power/power.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/string_util.h"

namespace candle::power {

double PowerTrace::average_watts() const {
  if (samples.empty()) return 0.0;
  double total = 0.0;
  for (const auto& s : samples) total += s.watts;
  return total / static_cast<double>(samples.size());
}

double PowerTrace::peak_watts() const {
  double peak = 0.0;
  for (const auto& s : samples) peak = std::max(peak, s.watts);
  return peak;
}

double PowerTrace::energy_joules() const {
  double energy = 0.0;
  for (const auto& s : samples) energy += s.watts * interval_s;
  return energy;
}

std::string PowerTrace::to_csv() const {
  std::string out = "t_s,watts\n";
  for (const auto& s : samples)
    out += strprintf("%.3f,%.2f\n", s.t_s, s.watts);
  return out;
}

void PiecewisePower::append(double duration_s, double watts) {
  require(duration_s >= 0.0, "PiecewisePower: negative duration");
  require(watts >= 0.0, "PiecewisePower: negative power");
  if (duration_s == 0.0) return;
  starts_.push_back(end_);
  watts_.push_back(watts);
  end_ += duration_s;
}

double PiecewisePower::watts_at(double t_s) const {
  if (t_s < 0.0 || t_s >= end_ || starts_.empty()) return 0.0;
  // Binary search for the segment containing t_s.
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), t_s);
  const std::size_t idx = static_cast<std::size_t>(it - starts_.begin()) - 1;
  return watts_[idx];
}

double PiecewisePower::energy_joules() const {
  double energy = 0.0;
  for (std::size_t i = 0; i < starts_.size(); ++i) {
    const double seg_end = i + 1 < starts_.size() ? starts_[i + 1] : end_;
    energy += watts_[i] * (seg_end - starts_[i]);
  }
  return energy;
}

PowerMeter::PowerMeter(double sample_hz) : hz_(sample_hz) {
  require(sample_hz > 0.0, "PowerMeter: rate must be > 0");
}

PowerTrace PowerMeter::sample(const PiecewisePower& curve) const {
  PowerTrace trace;
  trace.interval_s = 1.0 / hz_;
  const double end = curve.duration();
  for (double t = 0.0; t < end; t += trace.interval_s)
    trace.samples.push_back(PowerSample{t, curve.watts_at(t)});
  return trace;
}

PowerMeter nvidia_smi_meter() { return PowerMeter(1.0); }
PowerMeter polimer_meter() { return PowerMeter(2.0); }

}  // namespace candle::power
