// Power measurement substrate.
//
// The paper measures GPU power with nvidia-smi at 1 sample/s on Summit and
// node power with PoLiMEr/CapMC at ~2 samples/s on Theta, then integrates to
// energy. This module reproduces that pipeline:
//
//   PiecewisePower — ground-truth power curve of a device over a run
//                    (the simulator constructs one from the phase schedule)
//   PowerMeter     — samples a PiecewisePower at a fixed rate, like the real
//                    tools, producing a PowerTrace
//   PowerTrace     — the sampled series; average/peak/energy computed the way
//                    the paper does (left Riemann sum over samples)
//
// Keeping "true" power and "sampled" power separate lets tests check the
// sampling error that a 1 Hz meter introduces on short phases.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace candle::power {

/// One meter reading.
struct PowerSample {
  double t_s = 0.0;
  double watts = 0.0;
};

/// A sampled power series at a fixed interval.
struct PowerTrace {
  std::vector<PowerSample> samples;
  double interval_s = 1.0;

  [[nodiscard]] double average_watts() const;
  [[nodiscard]] double peak_watts() const;
  /// Energy in joules: left Riemann sum (sample value held for one interval),
  /// which is what integrating nvidia-smi output does.
  [[nodiscard]] double energy_joules() const;
  /// CSV dump: "t_s,watts" rows (for plotting Fig 7a-style curves).
  [[nodiscard]] std::string to_csv() const;
};

/// Ground-truth piecewise-constant power curve.
class PiecewisePower {
 public:
  /// Appends a segment of `duration_s` at `watts` starting where the
  /// previous segment ended.
  void append(double duration_s, double watts);

  /// Instantaneous power at time t (0 outside the defined range).
  [[nodiscard]] double watts_at(double t_s) const;

  /// Total duration covered.
  [[nodiscard]] double duration() const { return end_; }

  /// Exact energy integral in joules.
  [[nodiscard]] double energy_joules() const;

  [[nodiscard]] std::size_t segments() const { return starts_.size(); }

 private:
  std::vector<double> starts_;
  std::vector<double> watts_;
  double end_ = 0.0;
};

/// Fixed-rate sampler ("the power sampling rate used is 1 sample per second"
/// for nvidia-smi; ~2 samples/s for PoLiMEr).
class PowerMeter {
 public:
  explicit PowerMeter(double sample_hz);

  /// Samples the curve from t=0 to its end (inclusive of a final sample).
  [[nodiscard]] PowerTrace sample(const PiecewisePower& curve) const;

  [[nodiscard]] double sample_hz() const { return hz_; }

 private:
  double hz_;
};

/// nvidia-smi on Summit: 1 sample/s (paper §3).
PowerMeter nvidia_smi_meter();

/// PoLiMEr/CapMC on Theta: ~2 samples/s (paper §3).
PowerMeter polimer_meter();

}  // namespace candle::power
