#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <future>
#include <span>
#include <thread>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/thread_annotations.h"

namespace candle::serve {
namespace {

using steady_clock = std::chrono::steady_clock;

double to_ms(steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

double to_seconds(steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

steady_clock::duration from_seconds(double s) {
  return std::chrono::duration_cast<steady_clock::duration>(
      std::chrono::duration<double>(s));
}

/// Exponential inter-arrival gap with the given rate (events/second).
/// uniform() is in [0, 1), so 1-u is in (0, 1] and the log is finite.
double exponential_gap(Rng& rng, double rate) {
  return -std::log1p(-rng.uniform()) / rate;
}

/// Next arrival gap at simulated time `now` under the configured process.
double next_gap(Rng& rng, const LoadgenOptions& o, double now) {
  switch (o.arrival) {
    case ArrivalKind::kUniform:
      return 1.0 / o.offered_rps;
    case ArrivalKind::kPoisson:
      return exponential_gap(rng, o.offered_rps);
    case ArrivalKind::kBurst: {
      // Piecewise-constant rate: hi during the leading burst_fraction of
      // each period, lo elsewhere, with lo solved so the long-run mean
      // stays offered_rps (floored at 1% for extreme burst settings).
      const double f = o.burst_fraction;
      const double hi = o.offered_rps * o.burst_factor;
      const double lo =
          std::max(o.offered_rps * (1.0 - f * o.burst_factor) / (1.0 - f),
                   0.01 * o.offered_rps);
      const double phase =
          now - std::floor(now / o.burst_period_s) * o.burst_period_s;
      return exponential_gap(rng, phase < f * o.burst_period_s ? hi : lo);
    }
  }
  return 1.0 / o.offered_rps;
}

}  // namespace

std::vector<ScheduledRequest> make_schedule(
    const LoadgenOptions& options,
    const std::vector<TrafficSource>& sources) {
  require(!sources.empty(), "make_schedule: no traffic sources");
  require(options.requests > 0, "make_schedule: requests must be > 0");
  require(options.offered_rps > 0.0,
          "make_schedule: offered_rps must be > 0");
  if (options.arrival == ArrivalKind::kBurst) {
    require(options.burst_factor >= 1.0,
            "make_schedule: burst_factor must be >= 1");
    require(options.burst_fraction > 0.0 && options.burst_fraction < 1.0,
            "make_schedule: burst_fraction must be in (0, 1)");
    require(options.burst_period_s > 0.0,
            "make_schedule: burst_period_s must be > 0");
  }
  double total_weight = 0.0;
  for (const TrafficSource& source : sources) {
    require(source.rows != nullptr && source.rows->rank() >= 2 &&
                source.rows->dim(0) > 0,
            "make_schedule: source '" + source.model +
                "' needs a non-empty (n, features...) row pool");
    require(source.weight > 0.0, "make_schedule: source '" + source.model +
                                     "' weight must be > 0");
    total_weight += source.weight;
  }
  // Decorrelated streams so changing the arrival process never perturbs
  // the model/row mix (and vice versa).
  Rng rng(options.seed);
  Rng arrivals = rng.fork(1);
  Rng mix = rng.fork(2);
  std::vector<ScheduledRequest> schedule;
  schedule.reserve(options.requests);
  double t = 0.0;
  for (std::size_t i = 0; i < options.requests; ++i) {
    ScheduledRequest req;
    req.at_s = t;
    const double u = mix.uniform() * total_weight;
    double acc = 0.0;
    req.source = sources.size() - 1;
    for (std::size_t s = 0; s < sources.size(); ++s) {
      acc += sources[s].weight;
      if (u < acc) {
        req.source = s;
        break;
      }
    }
    req.row = mix.uniform_index(sources[req.source].rows->dim(0));
    schedule.push_back(req);
    t += next_gap(arrivals, options, t);
  }
  return schedule;
}

LoadgenReport run_loadgen(InferenceServer& server,
                          const std::vector<TrafficSource>& sources,
                          const LoadgenOptions& options) {
  require(options.clients > 0, "run_loadgen: clients must be > 0");
  const std::vector<ScheduledRequest> schedule =
      make_schedule(options, sources);
  std::vector<std::size_t> width(sources.size());
  for (std::size_t s = 0; s < sources.size(); ++s) {
    require(server.has_model(sources[s].model),
            "run_loadgen: server has no model '" + sources[s].model + "'");
    width[s] = sources[s].rows->numel() / sources[s].rows->dim(0);
    require(width[s] == server.row_numel(sources[s].model),
            "run_loadgen: source row width does not match model '" +
                sources[s].model + "'");
  }

  // Per-entry latency slots: entry e is written by client e % clients
  // only and read after the join, so no locking is needed (-1 = never
  // completed, only possible when a client failed).
  std::vector<double> latency_ms(schedule.size(), -1.0);
  AnnotatedMutex failure_mutex{
      CANDLE_LOCK_LEVEL(lock_order::level::kServeLoadgen),
      "serve::run_loadgen failure capture"};
  std::exception_ptr failure;  // first client failure, under failure_mutex

  const steady_clock::time_point t0 = steady_clock::now();
  const auto worker = [&](std::size_t client) {
    try {
      if (options.mode == LoopMode::kClosed) {
        // Closed loop: the schedule supplies the model/row mix; pacing is
        // response-driven. Latency runs submit -> batch completion.
        for (std::size_t e = client; e < schedule.size();
             e += options.clients) {
          const ScheduledRequest& req = schedule[e];
          const TrafficSource& source = sources[req.source];
          const std::span<const float> row(
              source.rows->data() + req.row * width[req.source],
              width[req.source]);
          const steady_clock::time_point sent = steady_clock::now();
          const Response response = server.submit(source.model, row).get();
          latency_ms[e] = to_ms(response.completed_at - sent);
        }
      } else {
        // Open loop: dispatch on the schedule, harvest afterwards.
        // Latency runs *scheduled* arrival -> batch completion, so
        // server-induced queueing is charged (no coordinated omission).
        struct InFlight {
          std::size_t entry;
          steady_clock::time_point arrival;
          std::future<Response> future;
        };
        std::vector<InFlight> inflight;
        for (std::size_t e = client; e < schedule.size();
             e += options.clients) {
          const ScheduledRequest& req = schedule[e];
          const TrafficSource& source = sources[req.source];
          const std::span<const float> row(
              source.rows->data() + req.row * width[req.source],
              width[req.source]);
          const steady_clock::time_point arrival =
              t0 + from_seconds(req.at_s);
          std::this_thread::sleep_until(arrival);
          inflight.push_back({e, arrival, server.submit(source.model, row)});
        }
        for (InFlight& f : inflight) {
          const Response response = f.future.get();
          latency_ms[f.entry] = to_ms(response.completed_at - f.arrival);
        }
      }
    } catch (...) {
      MutexLock lock(failure_mutex);
      if (failure == nullptr) failure = std::current_exception();
    }
  };

  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  for (std::size_t c = 0; c < options.clients; ++c)
    clients.emplace_back(worker, c);
  for (std::thread& client : clients) client.join();
  const double wall = to_seconds(steady_clock::now() - t0);
  {
    MutexLock lock(failure_mutex);
    if (failure != nullptr) std::rethrow_exception(failure);
  }

  LoadgenReport report;
  report.wall_s = wall;
  report.latencies_ms.reserve(schedule.size());
  Summary latency;
  for (std::size_t e = 0; e < schedule.size(); ++e) {
    if (latency_ms[e] < 0.0) continue;
    ++report.completed;
    report.latencies_ms.push_back(latency_ms[e]);
    latency.add(latency_ms[e]);
    ++report.per_model[sources[schedule[e].source].model];
  }
  report.throughput_rps =
      wall > 0.0 ? static_cast<double>(report.completed) / wall : 0.0;
  if (latency.count() > 0) {
    report.mean_ms = latency.mean();
    report.p50_ms = latency.percentile(50.0);
    report.p90_ms = latency.percentile(90.0);
    report.p99_ms = latency.percentile(99.0);
    report.max_ms = latency.max();
  }
  return report;
}

}  // namespace candle::serve
