// Deterministic traffic load generator for the inference server.
//
// Serving benchmarks die by coordinated omission: a closed-loop client
// (wait for each response before sending the next) slows its own arrival
// rate exactly when the server stalls, hiding the tail. The loadgen
// supports both disciplines explicitly. Closed-loop mode measures
// best-case per-request latency under a fixed concurrency; open-loop
// mode dispatches on a precomputed arrival schedule regardless of
// response progress and charges each request's latency from its
// *scheduled* arrival to batch completion, so queueing delay the server
// caused is counted, not silently forgiven.
//
// The schedule — arrival offsets, model mix, request rows — is a pure
// function of (options, sources) through a seeded candle::Rng, so every
// run of a configuration replays the identical request stream: arrivals
// uniform, Poisson (exponential gaps), or bursty (Poisson whose rate
// multiplies by burst_factor during the leading burst_fraction of every
// burst_period_s window, rescaled so the long-run average stays
// offered_rps). Client e serves schedule entries e, e+clients, ... so
// the per-thread split is deterministic too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/server.h"

namespace candle::serve {

/// Closed: each client waits for its response before the next request.
/// Open: requests dispatch on the arrival schedule, responses harvested
/// after the fact (latency includes server-induced queueing).
enum class LoopMode { kClosed, kOpen };

/// Arrival-gap process for the schedule (open-loop pacing; closed-loop
/// runs use the schedule only for the model/row mix).
enum class ArrivalKind { kUniform, kPoisson, kBurst };

/// One model's share of the traffic mix.
struct TrafficSource {
  std::string model;            // name registered with the server
  const Tensor* rows = nullptr; // (n, features...) request pool
  double weight = 1.0;          // relative share of requests
};

struct LoadgenOptions {
  LoopMode mode = LoopMode::kClosed;
  std::size_t clients = 4;
  std::size_t requests = 256;  // total across all clients
  double offered_rps = 1000.0; // aggregate arrival rate
  ArrivalKind arrival = ArrivalKind::kPoisson;
  double burst_factor = 4.0;   // in-burst rate multiplier (kBurst)
  double burst_fraction = 0.25;// leading fraction of each period bursting
  double burst_period_s = 0.05;
  std::uint64_t seed = 42;     // schedule RNG seed
};

/// One precomputed request: when, which model, which pool row.
struct ScheduledRequest {
  double at_s = 0.0;        // arrival offset from run start
  std::size_t source = 0;   // index into the sources vector
  std::size_t row = 0;      // row within that source's pool
};

/// Builds the deterministic request schedule (pure; unit-tested alone).
[[nodiscard]] std::vector<ScheduledRequest> make_schedule(
    const LoadgenOptions& options, const std::vector<TrafficSource>& sources);

/// Client-side results of one loadgen run. Latency is per request, in
/// milliseconds, measured to the dispatcher's batch-completion timestamp
/// (Response::completed_at), from submit time (closed) or scheduled
/// arrival (open).
struct LoadgenReport {
  std::size_t completed = 0;
  double wall_s = 0.0;
  double throughput_rps = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::vector<double> latencies_ms;            // schedule order
  std::map<std::string, std::size_t> per_model; // completed per model
};

/// Replays the schedule against `server` with `options.clients` threads
/// and aggregates latency/throughput. Propagates the first client-side
/// failure after all threads join.
[[nodiscard]] LoadgenReport run_loadgen(
    InferenceServer& server, const std::vector<TrafficSource>& sources,
    const LoadgenOptions& options);

}  // namespace candle::serve
