#include "serve/micro_batcher.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/error.h"
#include "nn/dataset.h"

namespace candle::serve {

using steady_clock = std::chrono::steady_clock;

namespace {

/// The SLO knob as a steady_clock duration (rounded toward zero; a 0.0
/// deadline stays 0 and closes batches greedily).
steady_clock::duration deadline_duration(double seconds) {
  return std::chrono::duration_cast<steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

}  // namespace

MicroBatcher::MicroBatcher(nn::Model& model, const BatcherOptions& options)
    : model_(&model), options_(options) {
  require(options_.max_batch > 0,
          "serve::MicroBatcher: max_batch must be > 0");
  require(options_.batch_deadline_s >= 0.0,
          "serve::MicroBatcher: batch_deadline_s must be >= 0");
  require(model.compiled(), "serve::MicroBatcher: model must be compiled");
  const Shape& per_sample = model.input_shape();
  row_numel_ = shape_numel(per_sample);
  Shape staging;
  staging.reserve(per_sample.size() + 1);
  staging.push_back(options_.max_batch);
  staging.insert(staging.end(), per_sample.begin(), per_sample.end());
  for (SlotStorage& slot : storage_) {
    slot.x = Tensor(staging);
    slot.pending.resize(options_.max_batch);
  }
  // Warmup forward on one zero row: learns the per-sample output shape and
  // primes the layer workspaces before the first client arrives.
  Shape probe_shape = staging;
  probe_shape[0] = 1;
  const Tensor probe_out = model_->predict(Tensor(std::move(probe_shape)));
  require(probe_out.rank() >= 1,
          "serve::MicroBatcher: model output must be batched");
  out_row_shape_.assign(probe_out.shape().begin() + 1,
                        probe_out.shape().end());
  out_row_numel_ = shape_numel(out_row_shape_);
  thread_ = std::thread([this] { dispatch_main(); });
}

MicroBatcher::~MicroBatcher() { shutdown(); }

std::future<Response> MicroBatcher::submit(std::span<const float> row) {
  require(row.size() == row_numel_,
          "serve::MicroBatcher::submit: row width does not match the "
          "model's per-sample input numel");
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  std::size_t slot = kNone;
  std::size_t index = 0;
  {
    MutexLock lock(mutex_);
    // Backpressure: block while one slot executes and the other is full.
    admission_cv_.wait(mutex_, [this]() CANDLE_REQUIRES(mutex_) {
      if (shutdown_) return true;
      for (const SlotBook& b : book_)
        if (b.state == SlotState::kOpen || b.state == SlotState::kFree)
          return true;
      return false;
    });
    if (shutdown_)
      throw Error("serve::MicroBatcher::submit: batcher is shut down");
    // Keep filling the open batch; open a free slot only when none is.
    for (std::size_t i = 0; i < 2 && slot == kNone; ++i)
      if (book_[i].state == SlotState::kOpen) slot = i;
    for (std::size_t i = 0; i < 2 && slot == kNone; ++i)
      if (book_[i].state == SlotState::kFree) slot = i;
    SlotBook& book = book_[slot];
    if (book.state == SlotState::kFree) {
      book.state = SlotState::kOpen;
      book.opened_at = steady_clock::now();  // arms the deadline timer
    }
    index = book.reserved++;
    if (book.reserved == options_.max_batch) {
      book.state = SlotState::kClosed;
      book.reason = CloseReason::kFull;
    }
    ++stats_.requests;
  }
  // The reserved row is exclusively this client's until staged++ below
  // publishes it: copy the bytes outside the lock.
  storage_[slot].pending[index] = std::move(promise);
  std::copy(row.begin(), row.end(),
            storage_[slot].x.data() + index * row_numel_);
  bool wake = false;
  {
    MutexLock lock(mutex_);
    SlotBook& book = book_[slot];
    ++book.staged;
    // Wake the dispatcher when the batch's last row lands or when the
    // first row arms a fresh deadline (index 0 also covers greedy mode).
    wake = book.staged == book.reserved || index == 0;
  }
  if (wake) dispatch_cv_.notify_one();
  return future;
}

void MicroBatcher::shutdown() {
  {
    MutexLock lock(mutex_);
    shutdown_ = true;
  }
  dispatch_cv_.notify_all();
  admission_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

BatcherStats MicroBatcher::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

void MicroBatcher::close_expired_locked() {
  const steady_clock::time_point now = steady_clock::now();
  const steady_clock::duration deadline =
      deadline_duration(options_.batch_deadline_s);
  for (SlotBook& book : book_) {
    if (book.state != SlotState::kOpen) continue;
    if (shutdown_) {
      book.state = SlotState::kClosed;
      book.reason = CloseReason::kDrain;
    } else if (now - book.opened_at >= deadline) {
      book.state = SlotState::kClosed;
      book.reason = CloseReason::kDeadline;
    }
  }
}

std::size_t MicroBatcher::ready_slot_locked() const {
  // kClosed implies reserved > 0 (only opened slots close); waiting for
  // staged == reserved is the hand-off that orders every client's row
  // write before the batched read below.
  for (std::size_t i = 0; i < 2; ++i)
    if (book_[i].state == SlotState::kClosed &&
        book_[i].staged == book_[i].reserved)
      return i;
  return kNone;
}

void MicroBatcher::dispatch_main() {
  for (;;) {
    std::size_t slot = kNone;
    std::size_t rows = 0;
    CloseReason reason = CloseReason::kNone;
    {
      MutexLock lock(mutex_);
      for (;;) {
        close_expired_locked();
        slot = ready_slot_locked();
        if (slot != kNone) break;
        bool idle = true;
        for (const SlotBook& book : book_)
          idle = idle && book.state == SlotState::kFree;
        if (shutdown_ && idle) return;
        // Sleep until the open slot's deadline (at most one slot is open)
        // or a client wake; waking re-runs the expiry scan, so a deadline
        // that fires with rows still being staged degrades to a plain
        // wait for the last stager instead of spinning.
        bool have_deadline = false;
        steady_clock::time_point until{};
        for (const SlotBook& book : book_)
          if (book.state == SlotState::kOpen) {
            have_deadline = true;
            until = book.opened_at +
                    deadline_duration(options_.batch_deadline_s);
          }
        const auto woken = [this]() CANDLE_REQUIRES(mutex_) {
          close_expired_locked();
          if (ready_slot_locked() != kNone) return true;
          if (!shutdown_) return false;
          for (const SlotBook& book : book_)
            if (book.state != SlotState::kFree) return false;
          return true;  // shutdown and fully drained: time to exit
        };
        if (have_deadline) {
          dispatch_cv_.wait_until(mutex_, until, woken);
        } else {
          // No timer armed yet: additionally wake when a first row opens
          // a slot, so the outer loop can arm that slot's deadline (the
          // timed wait above must not use this clause — it would spin
          // until the deadline).
          dispatch_cv_.wait(mutex_, [this, &woken]() CANDLE_REQUIRES(mutex_) {
            if (woken()) return true;
            for (const SlotBook& book : book_)
              if (book.state == SlotState::kOpen) return true;
            return false;
          });
        }
      }
      SlotBook& book = book_[slot];
      rows = book.reserved;
      reason = book.reason;
      book.state = SlotState::kExecuting;
    }
    execute_slot(slot, rows, reason);
  }
}

void MicroBatcher::execute_slot(std::size_t index, std::size_t rows,
                                CloseReason reason) {
  SlotStorage& slot = storage_[index];
  const Tensor* input = &slot.x;
  if (rows < options_.max_batch) {
    Shape partial = slot.x.shape();
    partial[0] = rows;
    if (slot.exec.shape() != partial) slot.exec = Tensor(std::move(partial));
    nn::take_rows(slot.x, 0, rows, slot.exec);
    input = &slot.exec;
  }
  Tensor y;
  std::exception_ptr failure;
  try {
    y = model_->predict(*input);
  } catch (...) {
    failure = std::current_exception();
  }
  const steady_clock::time_point completed = steady_clock::now();
  {
    // Commit the stats before fulfilling any promise: a client that
    // returns from get() must already see its row counted.
    MutexLock lock(mutex_);
    ++stats_.batches;
    stats_.rows += rows;
    stats_.max_batch_rows = std::max(stats_.max_batch_rows, rows);
    switch (reason) {
      case CloseReason::kFull: ++stats_.full_batches; break;
      case CloseReason::kDeadline: ++stats_.deadline_batches; break;
      case CloseReason::kDrain: ++stats_.drained_batches; break;
      case CloseReason::kNone: break;
    }
  }
  for (std::size_t r = 0; r < rows; ++r) {
    if (failure != nullptr) {
      slot.pending[r].set_exception(failure);
      continue;
    }
    Response response;
    response.y = Tensor(out_row_shape_);
    std::copy(y.data() + r * out_row_numel_,
              y.data() + (r + 1) * out_row_numel_, response.y.data());
    response.batch_rows = rows;
    response.deadline_closed = reason != CloseReason::kFull;
    response.completed_at = completed;
    slot.pending[r].set_value(std::move(response));
  }
  {
    // Recycle only after the scatter: until here the slot's promises are
    // still being fulfilled, so no new client may reserve into them.
    MutexLock lock(mutex_);
    SlotBook& book = book_[index];
    book.state = SlotState::kFree;
    book.reason = CloseReason::kNone;
    book.reserved = 0;
    book.staged = 0;
  }
  admission_cv_.notify_all();
}

}  // namespace candle::serve
