// Async micro-batching scheduler for inference serving.
//
// Training-side throughput in this repo is won by keeping the fused GEMM
// kernels saturated; serving-side the same rule applies, but the rows
// arrive one at a time from concurrent clients. A MicroBatcher turns that
// stream back into kernel-sized work: an admission queue stages rows from
// many client threads directly into a shared batch slot, and a dispatcher
// thread closes the batch when either `max_batch` rows are staged or the
// batch's `batch_deadline_s` expires — the latency-SLO knob — then runs one
// fused-epilogue forward over the whole batch on the shared
// candle::parallel pool and scatters per-row results back to the waiting
// futures.
//
// Slot protocol (nn::BatchPipeline's kFree -> kReady discipline, with the
// producer/consumer roles swapped: many clients produce, one dispatcher
// consumes): two reusable batch slots double-buffer admission against
// execution. While one slot's batch runs forward, the other accepts
// arrivals, so admission never waits on compute until both slots are
// occupied — which bounds the in-flight queue at 2 * max_batch rows
// (admission backpressure, not unbounded queueing). A client reserves a row
// index under the mutex, copies its row into the slot tensor *outside* the
// lock (the reserved row is exclusively its own until it reports back), and
// then publishes the copy by bumping the slot's staged count; the
// dispatcher only executes a batch once every reserved row is staged, so
// the mutex hand-off orders every row write before the batched read.
//
// Determinism contract: every layer used here computes each output row from
// that row alone (the GEMM accumulates each output element over k in a
// fixed blocked order independent of the batch's other rows; activations,
// pooling, and inference-mode BatchNorm are row-local), so a served row is
// bit-identical to Model::predict on the same row regardless of which batch
// the scheduler assembled it into. test_serve pins this.
#pragma once

#include <chrono>
#include <cstddef>
#include <future>
#include <span>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "nn/model.h"

namespace candle::serve {

/// Scheduler knobs for one model's admission queue.
struct BatcherOptions {
  /// Close a batch as soon as this many rows are staged (1 = no batching:
  /// the request-per-forward baseline the serving bench compares against).
  std::size_t max_batch = 32;
  /// Close an underfull batch this long after its first row arrived — the
  /// latency SLO knob. 0 runs greedy adaptive batching: a batch closes as
  /// soon as its staged rows are ready, so batching still emerges under
  /// load from rows that accumulated while the previous batch executed.
  double batch_deadline_s = 0.002;
};

/// Per-request result, fulfilled through the future submit() returns.
struct Response {
  Tensor y;                        // this request's output row
  std::size_t batch_rows = 0;      // rows in the batch that served it
  bool deadline_closed = false;    // batch closed by deadline, not by size
  /// Dispatcher timestamp taken right after the batch forward finished;
  /// the load generator computes latency from this instead of the
  /// future-harvest time (open-loop harvesting happens much later).
  std::chrono::steady_clock::time_point completed_at{};
};

/// Scheduler counters (snapshot; taken under the admission mutex).
struct BatcherStats {
  std::size_t requests = 0;          // rows admitted
  std::size_t batches = 0;           // forward executions
  std::size_t rows = 0;              // rows served
  std::size_t full_batches = 0;      // closed at max_batch
  std::size_t deadline_batches = 0;  // closed by deadline expiry
  std::size_t drained_batches = 0;   // closed early by shutdown drain
  std::size_t max_batch_rows = 0;    // largest batch executed

  [[nodiscard]] double mean_batch_rows() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(rows) /
                              static_cast<double>(batches);
  }
};

/// Admission queue + dynamic batch assembler + dispatcher for one model.
class MicroBatcher {
 public:
  /// Spawns the dispatcher thread. `model` must be compiled (the
  /// inference-only compile is the intended path), must outlive the
  /// batcher, and must not be touched by other threads while serving —
  /// the dispatcher is its only caller.
  MicroBatcher(nn::Model& model, const BatcherOptions& options);

  /// Drains and joins (see shutdown()).
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Stages one input row (length = the model's per-sample input numel) and
  /// returns the future for its result. Blocks only when both slots are
  /// occupied (backpressure); throws Error after shutdown().
  [[nodiscard]] std::future<Response> submit(std::span<const float> row)
      CANDLE_EXCLUDES(mutex_);

  /// Drain-on-shutdown: stops admission, executes every already-admitted
  /// row (deadline ignored — a drained batch closes as soon as its rows are
  /// staged), fulfills all outstanding futures, and joins the dispatcher.
  /// Idempotent; the destructor calls it.
  void shutdown() CANDLE_EXCLUDES(mutex_);

  [[nodiscard]] BatcherStats stats() const CANDLE_EXCLUDES(mutex_);

  /// Per-sample input element count (admission validates row width).
  [[nodiscard]] std::size_t row_numel() const { return row_numel_; }

 private:
  /// Slot lifecycle: kFree (empty, may open) -> kOpen (accepting
  /// reservations; at most one slot is open at a time) -> kClosed (batch
  /// full, deadline-expired, or draining; awaiting its last staged row /
  /// dispatcher pickup) -> kExecuting (forward in flight) -> kFree.
  enum class SlotState { kFree, kOpen, kClosed, kExecuting };

  /// Why a batch stopped accepting rows (stats + Response classification).
  enum class CloseReason { kNone, kFull, kDeadline, kDrain };

  /// Unguarded row storage, on BatchPipeline's discipline: the admission
  /// protocol gives each reserved row index to exactly one client until
  /// that client stages it, and gives the whole slot to the dispatcher
  /// only once staged == reserved — so the tensor bytes and promises are
  /// ordered by the mutex hand-offs without being guarded by the mutex.
  struct SlotStorage {
    Tensor x;     // (max_batch, features...) staging storage, reused forever
    Tensor exec;  // partial-batch forward scratch (rows < max_batch), reused
    std::vector<std::promise<Response>> pending;  // one per reserved row
  };

  /// Mutex-guarded slot bookkeeping, parallel to storage_[].
  struct SlotBook {
    SlotState state = SlotState::kFree;
    CloseReason reason = CloseReason::kNone;
    std::size_t reserved = 0;  // rows claimed by clients
    std::size_t staged = 0;    // rows fully copied in
    std::chrono::steady_clock::time_point opened_at{};  // first reservation
  };

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  void dispatch_main();
  /// Closes every open slot whose deadline has passed (or unconditionally
  /// under shutdown drain), recording the close reason.
  void close_expired_locked() CANDLE_REQUIRES(mutex_);
  /// Slot index ready to execute (closed with every reserved row staged),
  /// or kNone.
  [[nodiscard]] std::size_t ready_slot_locked() const
      CANDLE_REQUIRES(mutex_);
  /// Runs one claimed batch: forward outside the lock, scatter, recycle.
  void execute_slot(std::size_t index, std::size_t rows, CloseReason reason)
      CANDLE_EXCLUDES(mutex_);

  nn::Model* model_;
  BatcherOptions options_;
  std::size_t row_numel_ = 0;
  std::size_t out_row_numel_ = 0;
  Shape out_row_shape_;  // per-sample output shape (leading dim dropped)

  mutable AnnotatedMutex mutex_{
      CANDLE_LOCK_LEVEL(lock_order::level::kServeAdmission),
      "serve::MicroBatcher::mutex_"};
  AnnotatedCondVar admission_cv_;  // dispatcher -> clients: slot recycled
  AnnotatedCondVar dispatch_cv_;   // clients -> dispatcher: work/row staged
  SlotStorage storage_[2];
  SlotBook book_[2] CANDLE_GUARDED_BY(mutex_);
  bool shutdown_ CANDLE_GUARDED_BY(mutex_) = false;
  BatcherStats stats_ CANDLE_GUARDED_BY(mutex_);

  std::thread thread_;  // last member: dispatch_main sees a built object
};

}  // namespace candle::serve
