#include "serve/server.h"

#include <utility>

#include "common/error.h"
#include "nn/serialize.h"

namespace candle::serve {

void InferenceServer::add_model(const std::string& name, nn::Model model,
                                const BatcherOptions& options) {
  require(!name.empty(), "InferenceServer::add_model: empty model name");
  require(entries_.find(name) == entries_.end(),
          "InferenceServer::add_model: duplicate model name '" + name + "'");
  require(model.compiled(),
          "InferenceServer::add_model: model must be compiled");
  auto entry = std::make_unique<Entry>();
  entry->model = std::move(model);
  entry->batcher = std::make_unique<MicroBatcher>(entry->model, options);
  entries_.emplace(name, std::move(entry));
}

void InferenceServer::add_model_from_checkpoint(const std::string& name,
                                                nn::Model architecture,
                                                const Shape& input_shape,
                                                const std::string& path,
                                                const BatcherOptions& options) {
  require(nn::is_checkpoint(path),
          "InferenceServer::add_model_from_checkpoint: '" + path +
              "' is not a candle checkpoint");
  architecture.compile_for_inference(input_shape);
  nn::load_weights(architecture, path);
  add_model(name, std::move(architecture), options);
}

std::future<Response> InferenceServer::submit(const std::string& model,
                                              std::span<const float> row) {
  return entry(model).batcher->submit(row);
}

void InferenceServer::shutdown() {
  for (auto& [name, entry] : entries_) entry->batcher->shutdown();
}

std::vector<std::string> InferenceServer::model_names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

BatcherStats InferenceServer::stats(const std::string& model) const {
  return entry(model).batcher->stats();
}

std::size_t InferenceServer::row_numel(const std::string& model) const {
  return entry(model).batcher->row_numel();
}

InferenceServer::Entry& InferenceServer::entry(const std::string& name) {
  const auto it = entries_.find(name);
  require(it != entries_.end(),
          "InferenceServer: unknown model '" + name + "'");
  return *it->second;
}

const InferenceServer::Entry& InferenceServer::entry(
    const std::string& name) const {
  const auto it = entries_.find(name);
  require(it != entries_.end(),
          "InferenceServer: unknown model '" + name + "'");
  return *it->second;
}

}  // namespace candle::serve
