// Multi-model inference server: named models, one MicroBatcher each.
//
// An InferenceServer owns the served models and their admission queues.
// Setup is single-threaded (add models, then serve); once clients are
// submitting, the model table is read-only — submit() resolves a name to
// its batcher without locking, because the table never changes while
// requests are in flight. Each model's dispatcher thread runs its batches
// on the shared candle::parallel pool, which serializes concurrent
// regions from different dispatchers, so a multi-model mix time-slices
// the cores instead of oversubscribing them.
//
// The checkpoint path (add_model_from_checkpoint) is the production
// deployment story: compile the architecture inference-only — no
// optimizer state, no gradient buffers — then restore trained weights
// with nn::load_weights. test_serve pins that a served checkpoint
// answers bit-identically to the in-memory model it was saved from.
#pragma once

#include <cstddef>
#include <future>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/model.h"
#include "serve/micro_batcher.h"

namespace candle::serve {

/// Owns models and their micro-batching admission queues.
class InferenceServer {
 public:
  InferenceServer() = default;
  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Takes ownership of a compiled model and starts its batcher. Names
  /// must be unique; the model must be compiled (inference-only or full).
  void add_model(const std::string& name, nn::Model model,
                 const BatcherOptions& options = {});

  /// Production path: compiles `architecture` inference-only for
  /// `input_shape`, restores weights from the checkpoint at `path`
  /// (nn::load_weights verifies the shape sequence), and starts serving.
  void add_model_from_checkpoint(const std::string& name,
                                 nn::Model architecture,
                                 const Shape& input_shape,
                                 const std::string& path,
                                 const BatcherOptions& options = {});

  /// Stages one request row on `model`'s admission queue.
  [[nodiscard]] std::future<Response> submit(const std::string& model,
                                             std::span<const float> row);

  /// Drains every model's queue and joins the dispatchers. Idempotent;
  /// the destructor calls it.
  void shutdown();

  [[nodiscard]] bool has_model(const std::string& name) const {
    return entries_.find(name) != entries_.end();
  }
  [[nodiscard]] std::size_t model_count() const { return entries_.size(); }
  /// Served model names in deterministic (lexicographic) order.
  [[nodiscard]] std::vector<std::string> model_names() const;

  [[nodiscard]] BatcherStats stats(const std::string& model) const;
  [[nodiscard]] std::size_t row_numel(const std::string& model) const;

 private:
  /// Model + batcher pair; unique_ptr keeps addresses stable because the
  /// batcher's dispatcher holds a pointer to the model.
  struct Entry {
    nn::Model model;
    std::unique_ptr<MicroBatcher> batcher;
  };

  [[nodiscard]] Entry& entry(const std::string& name);
  [[nodiscard]] const Entry& entry(const std::string& name) const;

  // std::map (not unordered_map): model_names() and shutdown() iterate,
  // and served-side iteration order must be deterministic.
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace candle::serve
