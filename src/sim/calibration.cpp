#include "sim/calibration.h"

#include "common/error.h"

namespace candle::sim {

std::size_t BenchmarkProfile::steps_per_epoch(std::size_t batch) const {
  require(batch > 0, "steps_per_epoch: batch must be > 0");
  return (train_samples + batch - 1) / batch;
}

LoaderSeconds BenchmarkProfile::load_dask(MachineKind kind) const {
  const MachineCompute& mc = on(kind);
  LoaderSeconds d;
  d.train_s = mc.load_chunked.train_s +
              0.45 * (mc.load_original.train_s - mc.load_chunked.train_s);
  d.test_s = mc.load_chunked.test_s +
             0.45 * (mc.load_original.test_s - mc.load_chunked.test_s);
  return d;
}

// ---------------------------------------------------------------------------
// NT3 — 1D CNN, RNA-seq tumor/normal classification.
// ---------------------------------------------------------------------------
const BenchmarkProfile& BenchmarkProfile::nt3() {
  static const BenchmarkProfile p = [] {
    BenchmarkProfile b;
    b.name = "NT3";
    b.train_samples = 1120;         // Table 1
    b.test_samples = 280;           // 150 MB test / 597 MB train * 1120
    b.default_batch = 20;           // Table 1
    b.default_epochs = 384;         // Table 1
    b.learning_rate = 0.001;        // Table 1
    b.optimizer = "sgd";            // Table 1
    b.features_per_sample = 60483;  // Table 1
    b.train_bytes = 597ull << 20;   // Table 1
    b.test_bytes = 150ull << 20;    // Table 1
    // Conv1D(128,k20) + MaxPool(10) + Conv1D(128,k10) + MaxPool(10) +
    // Dense(200) + Dense(20) + Dense(2): ~15.6M weights.
    b.param_count = 15609858;
    // Calibrated so batch >= 50 exceeds 16 GB HBM2 ("using a batch size of
    // 50 or larger causes running out of memory", §4.2.1).
    b.act_bytes_per_sample = 330.0e6;

    // Summit: time/epoch ~10.3 s at bs 20 (Table 6 sequential), lower at
    // bs 40 ("smaller time per epoch", Table 2). 56 steps/epoch:
    // 56*(0.061 + 20*0.00615) = 10.3 s; bs 40: 28*(0.061+0.246) = 8.6 s.
    b.summit.step_fixed_s = 0.061;
    b.summit.per_sample_s = 0.00615;
    b.summit.p_compute_w = 150.0;      // calibrated to Table 5a power deltas
    b.summit.p_compute_batch_drop = 15.0;  // Table 2: bs 40 draws less power
    b.summit.eval_s = 2.0;
    b.summit.preprocess_s = 5.0;
    b.summit.startup_s = 15.0;         // TF/Keras import + model build
    b.summit.load_original = {81.72, 22.25};  // Table 3
    b.summit.load_chunked = {14.30, 5.25};    // Table 3

    // Theta: time/epoch 695 s on 24 nodes -> base ~660 s single-node;
    // 56 steps/epoch: 56*(2.0 + 20*0.49) = 661 s (paper §5.1).
    b.theta.step_fixed_s = 2.0;
    b.theta.per_sample_s = 0.49;
    b.theta.p_compute_w = 230.0;
    b.theta.p_compute_batch_drop = 10.0;
    b.theta.eval_s = 60.0;
    b.theta.preprocess_s = 8.0;
    b.theta.startup_s = 40.0;          // ASSUMED: slow KNL Python startup
    b.theta.load_original = {52.91, 13.93};  // Table 4
    b.theta.load_chunked = {13.84, 3.62};    // Table 4
    return b;
  }();
  return p;
}

// ---------------------------------------------------------------------------
// P1B1 — sparse autoencoder on RNA-seq expression profiles.
// ---------------------------------------------------------------------------
const BenchmarkProfile& BenchmarkProfile::p1b1() {
  static const BenchmarkProfile p = [] {
    BenchmarkProfile b;
    b.name = "P1B1";
    b.train_samples = 2700;         // Table 1
    b.test_samples = 900;           // 258 MB / 771 MB * 2700
    b.default_batch = 100;          // Table 1
    b.default_epochs = 384;         // Table 1
    b.learning_rate = 0.001;        // Table 1 lists none; Keras adam default
    b.optimizer = "adam";           // Table 1
    b.features_per_sample = 60484;  // Table 1
    b.train_bytes = 771ull << 20;   // Table 1
    b.test_bytes = 258ull << 20;    // Table 1
    // 60484 -> 2000 -> 600 -> 2000 -> 60484 autoencoder: ~244M weights.
    b.param_count = 244340684;
    b.act_bytes_per_sample = 3.0e6;

    // ASSUMED ~12 s/epoch on Summit (not reported); chosen so data loading
    // dominates from 24 GPUs on (Fig 8a: "data loading dominates the total
    // runtime using 24 GPUs or more"): 16 epochs * 12 s < 316 s load.
    b.summit.step_fixed_s = 0.10;
    b.summit.per_sample_s = 0.0034;
    b.summit.p_compute_w = 140.0;
    b.summit.p_compute_batch_drop = 8.0;
    b.summit.eval_s = 3.0;
    b.summit.preprocess_s = 8.0;
    b.summit.startup_s = 15.0;
    b.summit.load_original = {235.68, 80.77};  // Table 3
    b.summit.load_chunked = {30.99, 14.47};    // Table 3

    // ASSUMED ~280 s/epoch on Theta (KNL ~23x slower, as for NT3).
    b.theta.step_fixed_s = 2.5;
    b.theta.per_sample_s = 0.079;
    b.theta.p_compute_w = 225.0;
    b.theta.p_compute_batch_drop = 5.0;
    b.theta.eval_s = 70.0;
    b.theta.preprocess_s = 12.0;
    b.theta.startup_s = 40.0;
    b.theta.load_original = {139.71, 48.38};  // Table 4
    b.theta.load_chunked = {27.43, 11.67};    // Table 4
    return b;
  }();
  return p;
}

// ---------------------------------------------------------------------------
// P1B2 — MLP classifier on somatic SNP data.
// ---------------------------------------------------------------------------
const BenchmarkProfile& BenchmarkProfile::p1b2() {
  static const BenchmarkProfile p = [] {
    BenchmarkProfile b;
    b.name = "P1B2";
    b.train_samples = 2700;         // Table 1
    b.test_samples = 917;           // 55 MB / 162 MB * 2700
    b.default_batch = 60;           // Table 1
    b.default_epochs = 768;         // Table 1
    b.learning_rate = 0.001;        // Table 1
    b.optimizer = "rmsprop";        // Table 1
    b.features_per_sample = 28204;  // Table 1
    b.train_bytes = 162ull << 20;   // Table 1
    b.test_bytes = 55ull << 20;     // Table 1
    // 28204 -> 1024 -> 512 -> 256 -> 128 -> 20 MLP: ~29.6M weights.
    b.param_count = 29593236;
    b.act_bytes_per_sample = 1.0e6;

    // ASSUMED ~3.0 s/epoch on Summit; with 768 total epochs this makes
    // loading dominate as GPUs increase (Fig 9a). 45 steps/epoch.
    b.summit.step_fixed_s = 0.030;
    b.summit.per_sample_s = 0.00061;
    b.summit.p_compute_w = 135.0;
    b.summit.p_compute_batch_drop = 8.0;
    b.summit.eval_s = 1.5;
    b.summit.preprocess_s = 3.0;
    b.summit.startup_s = 15.0;
    b.summit.load_original = {40.98, 15.95};  // Table 3
    b.summit.load_chunked = {11.03, 5.33};    // Table 3

    // ASSUMED ~120 s/epoch on Theta.
    b.theta.step_fixed_s = 1.5;
    b.theta.per_sample_s = 0.0194;
    b.theta.p_compute_w = 220.0;
    b.theta.p_compute_batch_drop = 5.0;
    b.theta.eval_s = 30.0;
    b.theta.preprocess_s = 5.0;
    b.theta.startup_s = 40.0;
    b.theta.load_original = {25.07, 9.56};  // Table 4
    b.theta.load_chunked = {9.53, 4.40};    // Table 4
    return b;
  }();
  return p;
}

// ---------------------------------------------------------------------------
// P1B3 — drug response regression, 900,100 samples.
// ---------------------------------------------------------------------------
const BenchmarkProfile& BenchmarkProfile::p1b3() {
  static const BenchmarkProfile p = [] {
    BenchmarkProfile b;
    b.name = "P1B3";
    b.train_samples = 900100;       // Table 1
    b.test_samples = 291000;        // 103 MB / 318 MB * 900100
    b.default_batch = 100;          // Table 1
    b.default_epochs = 1;           // Table 1
    b.learning_rate = 0.001;        // Table 1
    b.optimizer = "sgd";            // Table 1
    b.features_per_sample = 1000;   // Table 1 ("1,000 columns per row")
    b.train_bytes = 318ull << 20;   // Table 1
    b.test_bytes = 103ull << 20;    // Table 1
    // Dense stack on concatenated expression+descriptor features: ~4.2M.
    b.param_count = 4200000;
    // Calibrated so per-rank batch 19,200 exceeds V100 memory while 9,600
    // fits ("setting the batch size too large (19,200 or 38,400) using 192
    // or 384 GPUs causes failed execution", §4.2.4).
    b.act_bytes_per_sample = 0.84e6;

    // ASSUMED ~360 s for the single epoch on one Summit GPU: 9,001 steps
    // of 0.02 + 100*0.0002 s.
    b.summit.step_fixed_s = 0.020;
    b.summit.per_sample_s = 0.0002;
    b.summit.p_compute_w = 145.0;
    b.summit.p_compute_batch_drop = 4.0;
    b.summit.eval_s = 20.0;
    b.summit.preprocess_s = 10.0;
    b.summit.startup_s = 15.0;
    b.summit.load_original = {5.41, 3.20};  // Table 3
    b.summit.load_chunked = {5.34, 2.52};   // Table 3

    b.theta.step_fixed_s = 0.30;
    b.theta.per_sample_s = 0.0015;
    b.theta.p_compute_w = 215.0;
    b.theta.p_compute_batch_drop = 3.0;
    b.theta.eval_s = 120.0;
    b.theta.preprocess_s = 15.0;
    b.theta.startup_s = 40.0;
    b.theta.load_original = {4.74, 2.79};  // Table 4
    b.theta.load_chunked = {4.53, 2.49};   // Table 4
    return b;
  }();
  return p;
}

// ---------------------------------------------------------------------------
// P2B1 — molecular-dynamics frame autoencoder (EXTENSION, all ASSUMED).
// ---------------------------------------------------------------------------
const BenchmarkProfile& BenchmarkProfile::p2b1() {
  static const BenchmarkProfile p = [] {
    BenchmarkProfile b;
    b.name = "P2B1";
    b.train_samples = 11000;        // ASSUMED: MD trajectory frames
    b.test_samples = 2750;
    b.default_batch = 64;
    b.default_epochs = 100;
    b.learning_rate = 0.001;
    b.optimizer = "adam";
    b.features_per_sample = 6000;   // per-frame contact features
    // 11,000 x 6,000 cells at ~9.2 B/cell -> ~580 MB (geometry-consistent).
    b.train_bytes = 580ull << 20;
    b.test_bytes = 145ull << 20;
    // 6000 -> 1500 -> 250 -> 1500 -> 6000 autoencoder: ~19M weights.
    b.param_count = 18771500;
    b.act_bytes_per_sample = 2.0e6;

    // Loading rates derived from the measured P1 wide-CSV rates
    // (original ~0.137 s/MB, chunked ~0.024 s/MB on Summit; Table 3).
    b.summit.step_fixed_s = 0.020;
    b.summit.per_sample_s = 0.00025;
    b.summit.p_compute_w = 140.0;
    b.summit.p_compute_batch_drop = 8.0;
    b.summit.eval_s = 2.5;
    b.summit.preprocess_s = 6.0;
    b.summit.startup_s = 15.0;
    b.summit.load_original = {79.5, 19.9};
    b.summit.load_chunked = {13.9, 3.5};

    b.theta.step_fixed_s = 0.45;
    b.theta.per_sample_s = 0.0055;
    b.theta.p_compute_w = 225.0;
    b.theta.p_compute_batch_drop = 5.0;
    b.theta.eval_s = 50.0;
    b.theta.preprocess_s = 10.0;
    b.theta.startup_s = 40.0;
    b.theta.load_original = {51.4, 12.8};   // ~0.0886 s/MB (Table 4 rates)
    b.theta.load_chunked = {13.5, 3.4};
    return b;
  }();
  return p;
}

// ---------------------------------------------------------------------------
// P3B1 — clinical-report classifier (EXTENSION, all ASSUMED).
// ---------------------------------------------------------------------------
const BenchmarkProfile& BenchmarkProfile::p3b1() {
  static const BenchmarkProfile p = [] {
    BenchmarkProfile b;
    b.name = "P3B1";
    b.train_samples = 5000;         // ASSUMED: tokenized pathology reports
    b.test_samples = 1250;
    b.default_batch = 50;
    b.default_epochs = 200;
    b.learning_rate = 0.001;
    b.optimizer = "adam";
    b.features_per_sample = 12000;  // vocabulary features
    b.train_bytes = 552ull << 20;   // 5,000 x 12,000 x 9.2 B
    b.test_bytes = 138ull << 20;
    // 12000 -> 256 -> 128 -> 10 MLP with batch norm: ~3.1M weights.
    b.param_count = 3113738;
    b.act_bytes_per_sample = 1.0e6;

    b.summit.step_fixed_s = 0.010;
    b.summit.per_sample_s = 0.0004;
    b.summit.p_compute_w = 130.0;
    b.summit.p_compute_batch_drop = 6.0;
    b.summit.eval_s = 1.5;
    b.summit.preprocess_s = 4.0;
    b.summit.startup_s = 15.0;
    b.summit.load_original = {75.6, 18.9};
    b.summit.load_chunked = {13.2, 3.3};

    b.theta.step_fixed_s = 0.25;
    b.theta.per_sample_s = 0.009;
    b.theta.p_compute_w = 220.0;
    b.theta.p_compute_batch_drop = 4.0;
    b.theta.eval_s = 30.0;
    b.theta.preprocess_s = 6.0;
    b.theta.startup_s = 40.0;
    b.theta.load_original = {48.9, 12.2};
    b.theta.load_chunked = {12.8, 3.2};
    return b;
  }();
  return p;
}

const BenchmarkProfile& BenchmarkProfile::by_name(const std::string& name) {
  if (name == "NT3" || name == "nt3") return nt3();
  if (name == "P1B1" || name == "p1b1") return p1b1();
  if (name == "P1B2" || name == "p1b2") return p1b2();
  if (name == "P1B3" || name == "p1b3") return p1b3();
  if (name == "P2B1" || name == "p2b1") return p2b1();
  if (name == "P3B1" || name == "p3b1") return p3b1();
  throw InvalidArgument("unknown benchmark: " + name);
}

std::vector<const BenchmarkProfile*> BenchmarkProfile::all() {
  return {&nt3(), &p1b1(), &p1b2(), &p1b3()};
}

std::vector<const BenchmarkProfile*> BenchmarkProfile::extended() {
  return {&nt3(), &p1b1(), &p1b2(), &p1b3(), &p2b1(), &p3b1()};
}

}  // namespace candle::sim
