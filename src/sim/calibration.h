// Calibrated workload profiles for the four CANDLE Pilot1 benchmarks.
//
// Every constant here is either copied from the paper or calibrated so the
// simulator reproduces a number the paper reports; the provenance of each
// value is commented at its definition in calibration.cpp. Values the paper
// does not report (e.g. P1B1's exact time per epoch) are marked ASSUMED and
// chosen so the paper's qualitative statements hold (e.g. "data loading
// dominates the total runtime using 24 GPUs or more").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/machine.h"

namespace candle::sim {

/// Single-rank, contention-free load times for one loader (paper Tables 3/4).
struct LoaderSeconds {
  double train_s = 0.0;
  double test_s = 0.0;
  [[nodiscard]] double total() const { return train_s + test_s; }
};

/// Per-machine compute/power calibration for one benchmark.
struct MachineCompute {
  // One batch step costs step_fixed_s + batch * per_sample_s (kernel launch
  // and framework overhead vs throughput term). Calibrated from the paper's
  // time-per-epoch values at two batch sizes where available.
  double step_fixed_s = 0.0;
  double per_sample_s = 0.0;

  double p_compute_w = 0.0;        // meter power while training (default batch)
  double p_compute_batch_drop = 0.0;  // watts subtracted per batch doubling
                                      // (paper Table 2: bs 40 draws less)
  double eval_s = 0.0;             // prediction/evaluation phase
  double preprocess_s = 0.0;       // scaling/encoding after the CSV load
  double startup_s = 0.0;          // interpreter + framework + model build

  LoaderSeconds load_original;     // pandas.read_csv defaults (Tables 3/4)
  LoaderSeconds load_chunked;      // 16 MB chunks, low_memory=False
};

/// Full calibrated description of one benchmark (paper Table 1 + §4/§5).
struct BenchmarkProfile {
  std::string name;

  // Table 1 rows.
  std::size_t train_samples = 0;
  std::size_t test_samples = 0;
  std::size_t default_batch = 0;
  std::size_t default_epochs = 0;
  double learning_rate = 0.001;
  std::string optimizer;
  std::size_t features_per_sample = 0;
  std::size_t train_bytes = 0;
  std::size_t test_bytes = 0;

  // Model size: the Horovod allreduce payload is 4 * param_count bytes.
  std::size_t param_count = 0;

  // Device-memory model: bytes of activations/workspace per sample in the
  // batch. Calibrated so the OOM points the paper reports are reproduced
  // (NT3 batch >= 50; P1B3 linear batch scaling on 192/384 GPUs).
  double act_bytes_per_sample = 0.0;

  MachineCompute summit;
  MachineCompute theta;

  [[nodiscard]] const MachineCompute& on(MachineKind kind) const {
    return kind == MachineKind::kSummit ? summit : theta;
  }

  /// ceil(samples / batch) — Keras counts the final partial batch.
  [[nodiscard]] std::size_t steps_per_epoch(std::size_t batch) const;

  /// Dask load estimate: the paper reports it lands between the original
  /// and chunked strategies; interpolated at 45 % of the gap above chunked.
  [[nodiscard]] LoaderSeconds load_dask(MachineKind kind) const;

  static const BenchmarkProfile& nt3();
  static const BenchmarkProfile& p1b1();
  static const BenchmarkProfile& p1b2();
  static const BenchmarkProfile& p1b3();

  /// P2/P3 extension profiles (paper §1: "This parallelization method can
  /// be applied to other CANDLE benchmarks such as the P2 and P3
  /// benchmarks in a similar way"). These benchmarks are NOT measured in
  /// the paper; all constants are ASSUMED, with loading times derived from
  /// the measured per-MB rates of the P1 wide CSVs.
  static const BenchmarkProfile& p2b1();  // MD-frame autoencoder
  static const BenchmarkProfile& p3b1();  // clinical-report classifier

  static const BenchmarkProfile& by_name(const std::string& name);

  /// The paper's four P1 benchmarks (Tables 1/3/4 scope).
  static std::vector<const BenchmarkProfile*> all();
  /// P1 + the P2/P3 extensions.
  static std::vector<const BenchmarkProfile*> extended();
};

}  // namespace candle::sim
