#include "sim/dvfs.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace candle::sim {

DvfsPoint dvfs_evaluate(const RunSimulator& simulator, const RunPlan& plan,
                        double freq_ratio, const DvfsModel& model) {
  require(freq_ratio > 0.0, "dvfs_evaluate: frequency ratio must be > 0");
  require(model.static_fraction >= 0.0 && model.static_fraction < 1.0,
          "dvfs_evaluate: static_fraction must be in [0, 1)");
  const SimResult base = simulator.simulate(plan);
  const std::size_t batch = plan.batch_per_rank == 0
                                ? simulator.profile().default_batch
                                : plan.batch_per_rank;

  const double p_compute = simulator.compute_power_watts(batch);
  const double p_static = p_compute * model.static_fraction;
  const double p_dynamic = p_compute - p_static;

  // Non-compute phases are unaffected by core frequency.
  const PhaseTimes& ph = base.phases;
  const double other_s = ph.total() - ph.train_compute;
  // Sampled energy minus the compute share; clamp against 1 Hz sampling
  // granularity on very short phases.
  const double other_j = std::max(
      0.0, base.energy_per_rank_j - p_compute * ph.train_compute);

  const double compute_s = ph.train_compute / freq_ratio;
  const double compute_w =
      p_static + p_dynamic * freq_ratio * freq_ratio * freq_ratio;

  DvfsPoint point;
  point.freq_ratio = freq_ratio;
  point.total_s = other_s + compute_s;
  point.energy_j = other_j + compute_w * compute_s;
  point.edp = point.energy_j * point.total_s;
  point.ed2p = point.energy_j * point.total_s * point.total_s;
  return point;
}

std::vector<DvfsPoint> dvfs_sweep(const RunSimulator& simulator,
                                  const RunPlan& plan,
                                  const DvfsModel& model) {
  require(model.steps >= 2, "dvfs_sweep: need at least 2 steps");
  require(model.max_ratio > model.min_ratio, "dvfs_sweep: bad ratio range");
  std::vector<DvfsPoint> sweep;
  sweep.reserve(model.steps);
  for (std::size_t i = 0; i < model.steps; ++i) {
    const double ratio =
        model.min_ratio + (model.max_ratio - model.min_ratio) *
                              static_cast<double>(i) /
                              static_cast<double>(model.steps - 1);
    sweep.push_back(dvfs_evaluate(simulator, plan, ratio, model));
  }
  return sweep;
}

DvfsPoint dvfs_energy_optimal(const std::vector<DvfsPoint>& sweep) {
  require(!sweep.empty(), "dvfs_energy_optimal: empty sweep");
  return *std::min_element(sweep.begin(), sweep.end(),
                           [](const DvfsPoint& a, const DvfsPoint& b) {
                             return a.energy_j < b.energy_j;
                           });
}

DvfsPoint dvfs_ed2p_optimal(const std::vector<DvfsPoint>& sweep) {
  require(!sweep.empty(), "dvfs_ed2p_optimal: empty sweep");
  return *std::min_element(sweep.begin(), sweep.end(),
                           [](const DvfsPoint& a, const DvfsPoint& b) {
                             return a.ed2p < b.ed2p;
                           });
}

}  // namespace candle::sim
