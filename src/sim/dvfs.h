// DVFS performance-power modeling (the paper's §7 future work: "we plan to
// use our performance and power modeling work [34] to model and further
// optimize the CANDLE benchmarks").
//
// Classic frequency-scaling model: compute time scales as 1/f, dynamic
// power as f^3 (v ∝ f), static power and non-compute phases (I/O,
// communication, negotiation) are frequency-independent. Given a simulated
// run, the model sweeps the frequency range and reports time, energy,
// energy-delay product (EDP) and ED²P so the energy-optimal and
// performance-balanced operating points can be located.
#pragma once

#include <vector>

#include "sim/run_sim.h"

namespace candle::sim {

/// One operating point of the sweep.
struct DvfsPoint {
  double freq_ratio = 1.0;   // f / f_nominal
  double total_s = 0.0;      // run time at this frequency
  double energy_j = 0.0;     // per-rank energy
  double edp = 0.0;          // energy * time
  double ed2p = 0.0;         // energy * time^2
};

/// Frequency-scaling model parameters.
struct DvfsModel {
  double static_fraction = 0.35;  // share of compute-phase power that does
                                  // not scale with frequency (leakage,
                                  // memory, fans)
  double min_ratio = 0.5;         // sweep range, relative to nominal
  double max_ratio = 1.1;
  std::size_t steps = 13;         // sweep resolution
};

/// Evaluates one operating point for a simulated run: compute phases
/// stretch by 1/ratio; compute power splits into static + dynamic*(ratio^3);
/// all other phases keep their time and power.
DvfsPoint dvfs_evaluate(const RunSimulator& simulator, const RunPlan& plan,
                        double freq_ratio, const DvfsModel& model = {});

/// Full sweep over [min_ratio, max_ratio].
std::vector<DvfsPoint> dvfs_sweep(const RunSimulator& simulator,
                                  const RunPlan& plan,
                                  const DvfsModel& model = {});

/// The sweep point minimizing energy (ties: earliest).
DvfsPoint dvfs_energy_optimal(const std::vector<DvfsPoint>& sweep);

/// The sweep point minimizing ED²P (the usual performance-aware choice).
DvfsPoint dvfs_ed2p_optimal(const std::vector<DvfsPoint>& sweep);

}  // namespace candle::sim
