#include "sim/event_sim.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace candle::sim {

StartupSample simulate_startup(const RunSimulator& simulator,
                               io::LoaderKind loader, std::size_t ranks,
                               std::uint64_t seed) {
  require(ranks > 0, "simulate_startup: ranks must be > 0");
  const Machine& machine = simulator.machine();
  const double frac = loader == io::LoaderKind::kOriginal
                          ? machine.load_skew_frac_original
                          : machine.load_skew_frac_chunked;
  // data_load_seconds already includes contention; treat it as the
  // jitter-free floor each rank builds on.
  const double base = simulator.data_load_seconds(loader, ranks);

  StartupSample sample;
  sample.load_seconds.resize(ranks);
  sample.negotiate_wait.resize(ranks);
  Rng rng(seed);
  for (std::size_t r = 0; r < ranks; ++r) {
    Rng stream = rng.fork(r);  // decorrelated per-rank stream
    sample.load_seconds[r] = base * (1.0 + stream.uniform(0.0, 2.0 * frac));
  }
  sample.max_arrival = *std::max_element(sample.load_seconds.begin(),
                                         sample.load_seconds.end());
  double load_sum = 0.0, wait_sum = 0.0;
  for (std::size_t r = 0; r < ranks; ++r) {
    sample.negotiate_wait[r] = sample.max_arrival - sample.load_seconds[r];
    load_sum += sample.load_seconds[r];
    wait_sum += sample.negotiate_wait[r];
  }
  sample.mean_load = load_sum / static_cast<double>(ranks);
  sample.mean_wait = wait_sum / static_cast<double>(ranks);
  sample.analytic_wait = simulator.load_skew_seconds(loader, ranks);
  return sample;
}

double mc_negotiate_overhead(const RunSimulator& simulator,
                             io::LoaderKind loader, std::size_t ranks,
                             std::size_t trials, std::uint64_t seed) {
  require(trials > 0, "mc_negotiate_overhead: trials must be > 0");
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t)
    total += simulate_startup(simulator, loader, ranks, seed + t).mean_wait;
  return total / static_cast<double>(trials);
}

}  // namespace candle::sim
