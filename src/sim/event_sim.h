// Monte-Carlo straggler simulation of the startup phase.
//
// The analytic model (RunSimulator::load_skew_seconds) reduces the
// broadcast-negotiation overhead to a closed form. This module simulates it
// instead: every rank draws its own data-loading time (base x contention x
// uniform jitter), ranks "arrive" at the negotiation, and the wait is
// emergent — per-rank, not averaged. Tests cross-validate the two models;
// the bench reports the per-rank distribution the paper's Fig 7b timeline
// shows qualitatively.
#pragma once

#include <cstdint>
#include <vector>

#include "io/csv_reader.h"
#include "sim/run_sim.h"

namespace candle::sim {

/// Result of one startup Monte-Carlo run.
struct StartupSample {
  std::vector<double> load_seconds;    // per-rank draw
  std::vector<double> negotiate_wait;  // per-rank wait at the broadcast
  double max_arrival = 0.0;            // when the slowest rank arrived
  double mean_load = 0.0;
  double mean_wait = 0.0;              // MC estimate of the bcast overhead
  double analytic_wait = 0.0;          // closed-form value for comparison
};

/// Simulates the startup of `ranks` ranks loading with `loader`.
/// Deterministic in `seed`. Jitter: each rank's load time is
/// base * contention * (1 + U(0, 2*skew_frac)), making the expected
/// (max - mean) gap equal the analytic skew_frac * load for large rank
/// counts.
StartupSample simulate_startup(const RunSimulator& simulator,
                               io::LoaderKind loader, std::size_t ranks,
                               std::uint64_t seed);

/// Runs `trials` startups and returns the mean of their mean_wait — a
/// smoother MC estimate for small rank counts.
double mc_negotiate_overhead(const RunSimulator& simulator,
                             io::LoaderKind loader, std::size_t ranks,
                             std::size_t trials, std::uint64_t seed);

}  // namespace candle::sim
