#include "sim/machine.h"

#include <cmath>

#include "common/error.h"

namespace candle::sim {

std::size_t Machine::nodes_for(std::size_t ranks) const {
  require(ranks > 0, "Machine::nodes_for: ranks must be > 0");
  return (ranks + ranks_per_node - 1) / ranks_per_node;
}

double Machine::io_contention(std::size_t ranks, bool chunked_loader) const {
  const double nodes = static_cast<double>(nodes_for(ranks));
  if (nodes <= 1.0) return 1.0;
  const double a =
      chunked_loader ? io_contention_a_chunked : io_contention_a_original;
  return 1.0 + a * std::pow((nodes - 1.0) / (io_ref_nodes - 1.0),
                            io_contention_b);
}

double Machine::sync_overhead(std::size_t ranks) const {
  if (ranks <= 1) return 0.0;
  return sync_coeff_s * std::pow(static_cast<double>(ranks), sync_exp);
}

const Machine& Machine::summit() {
  static const Machine m = [] {
    Machine s;
    s.kind = MachineKind::kSummit;
    s.name = "Summit";
    s.has_gpus = true;
    s.ranks_per_node = 6;             // 6 V100 per AC922 node (paper §3)
    s.max_ranks = 3072;               // largest run in the paper (Fig 18)
    s.fs_peak_bw = 2.5e12;            // Spectrum Scale, 2.5 TB/s peak write
    s.fs_block_bytes = 16.0 * 1024 * 1024;  // largest I/O block: 16 MB
    s.net_latency_s = 2.0e-6;         // EDR IB fat-tree
    s.net_bw = 25.0e9;                // dual EDR NICs, 25 GB/s per node
    s.local_bw = 50.0e9;              // NVLink brick: 2 x 25 GB/s
    s.convert_elems_per_s = 4.0e9;    // V100 half-precision pack/unpack
    s.quantize_elems_per_s = 3.0e9;   // absmax + scale + saturating pack
    // Calibrated: NT3 time/epoch 10.3 s (1 GPU) -> ~22 s (384 GPUs)
    // -> >3x sequential at 3,072 GPUs (paper Table 2, Table 6, §7), while
    // keeping data loading dominant from 48 GPUs on (§4.2.1).
    s.sync_coeff_s = 0.011;
    s.sync_exp = 0.50;
    s.io_ref_nodes = 64.0;            // 384 GPUs = 64 nodes
    s.io_contention_a_original = 0.47;  // NT3 load 104 s -> ~153 s (Fig 7a)
    s.io_contention_a_chunked = 0.19;   // optimized load ~19.6 s -> ~23 s
    s.io_contention_b = 0.5;
    s.load_skew_frac_original = 0.28;   // bcast 43.72 s on 384 GPUs (Fig 7b)
    s.load_skew_frac_chunked = 0.20;    // bcast 4.65 s optimized (Fig 12)
    s.meter_hz = 1.0;                   // nvidia-smi, 1 sample/s
    s.p_idle = 42.0;                    // V100 idle
    s.p_io = 45.0;                      // loading: GPU idles, host parses
    s.p_comm = 58.0;                    // NCCL transfers
    s.p_eval = 120.0;
    s.device_tdp = 300.0;               // V100 TDP (paper §3)
    s.rank_mem_bytes = 16.0e9;          // 16 GB HBM2 per V100
    return s;
  }();
  return m;
}

const Machine& Machine::theta() {
  static const Machine m = [] {
    Machine t;
    t.kind = MachineKind::kTheta;
    t.name = "Theta";
    t.has_gpus = false;
    t.ranks_per_node = 1;             // one rank per KNL node, 64 threads
    t.max_ranks = 384;                // largest run in the paper (Fig 13)
    t.fs_peak_bw = 210.0e9;           // Lustre, 210 GB/s (paper §3)
    t.fs_block_bytes = 1.0 * 1024 * 1024;
    t.net_latency_s = 3.0e-6;         // Aries dragonfly
    t.net_bw = 8.0e9;
    t.local_bw = 8.0e9;               // single rank per node: no NVLink tier
    t.convert_elems_per_s = 1.0e9;    // KNL vector convert, one rank/node
    t.quantize_elems_per_s = 0.8e9;   // absmax + scale + saturating pack
    // Calibrated to hit BOTH anchors: NT3 time/epoch 695 s on 24 nodes and
    // 965 s on 384 nodes (paper §5.1): 0.05 * 24^0.787 = 0.61 s/step and
    // 0.05 * 384^0.787 = 5.43 s/step over the 661 s single-node epoch.
    t.sync_coeff_s = 0.05;
    t.sync_exp = 0.787;
    t.io_ref_nodes = 384.0;
    // Lustre has far less headroom than Spectrum Scale and the original
    // loader's many small reads hammer it; calibrated so NT3/P1B1/P1B2
    // total improvements land near the paper's 38.46 / 45.22 / 40.72 %
    // and at-scale loading is >4x Summit's (§5.1).
    t.io_contention_a_original = 10.0;
    t.io_contention_a_chunked = 4.0;
    t.io_contention_b = 0.65;
    t.load_skew_frac_original = 0.28;
    t.load_skew_frac_chunked = 0.20;
    t.meter_hz = 2.0;                 // PoLiMEr / CapMC, ~2 samples/s
    t.p_idle = 95.0;                  // KNL node floor
    t.p_io = 175.0;                   // pandas parsing keeps the KNL busy:
                                      // node power stays near compute level
    t.p_comm = 130.0;
    t.p_eval = 180.0;
    t.device_tdp = 215.0;             // KNL 7230 TDP (paper §3)
    t.rank_mem_bytes = 208.0e9;       // 192 GB DDR4 + 16 GB MCDRAM
    return t;
  }();
  return m;
}

}  // namespace candle::sim
