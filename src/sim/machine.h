// Machine models for Summit (ORNL) and Theta (ALCF).
//
// The paper's at-scale experiments ran on hardware this reproduction does
// not have, so the two systems are modeled analytically from their public
// specifications (paper §3) plus coefficients calibrated against the
// paper's own single-rank measurements (see calibration.h). The simulator
// (run_sim.h) consumes these models.
#pragma once

#include <cstddef>
#include <string>

namespace candle::sim {

/// Which machine a calibration row refers to.
enum class MachineKind { kSummit, kTheta };

/// Static description of one system.
struct Machine {
  MachineKind kind = MachineKind::kSummit;
  std::string name;

  // --- topology -----------------------------------------------------------
  bool has_gpus = true;
  std::size_t ranks_per_node = 6;   // Summit: 6 V100 / node; Theta: 1 rank/node
  std::size_t max_ranks = 0;        // largest configuration in the paper

  // --- parallel filesystem (paper §3) --------------------------------------
  double fs_peak_bw = 0.0;          // bytes/s (Spectrum Scale 2.5 TB/s; Lustre 210 GB/s)
  double fs_block_bytes = 0.0;      // largest I/O block (16 MB on Summit)

  // --- interconnect ---------------------------------------------------------
  double net_latency_s = 0.0;       // inter-node message latency
  double net_bw = 0.0;              // inter-node per-rank bandwidth, bytes/s
  double local_bw = 0.0;            // intra-node (NVLink) bandwidth, bytes/s

  // --- wire codec throughput -------------------------------------------------
  // fp32 <-> fp16/bf16 conversion rate for compressed collectives, in
  // elements/s per rank. Compression halves the byte term of an allreduce
  // but adds (converted elements / this rate) of compute per hop; the
  // crossover the simulator predicts is exactly bandwidth saved vs
  // conversion paid. 0 models free conversion.
  double convert_elems_per_s = 0.0;

  // fp32 <-> block-scaled int8 quantization rate, elements/s per rank.
  // Slower than the 16-bit converts: each chunk takes an absmax reduction
  // pass plus scale/clamp/pack on top of the type cast. Int8 quarters the
  // byte term but pays this steeper codec rate — the simulator's
  // int8-vs-fp16 crossover is exactly that trade (tests/test_sim.cpp pins
  // it against the measured BENCH_collectives.json ordering). 0 models
  // free quantization.
  double quantize_elems_per_s = 0.0;

  // --- per-step synchronization overhead model ------------------------------
  // Observed Horovod overhead per batch step grows sub-linearly with rank
  // count (stragglers + NCCL/MPI small-message costs). Modeled as
  //   t_sync(P) = sync_coeff_s * P^sync_exp        (P > 1; 0 for P == 1)
  // Calibrated so NT3's time/epoch matches the paper: ~10 s on 1 GPU,
  // ~22 s on 384 GPUs, >3x sequential on 3,072 GPUs (Table 2 / Table 6).
  double sync_coeff_s = 0.0;
  double sync_exp = 0.0;

  // --- I/O contention model --------------------------------------------------
  // Every rank reads the full dataset from the shared filesystem, so load
  // time inflates with the number of client nodes:
  //   contention(nodes) = 1 + a * ((nodes-1)/(ref_nodes-1))^b
  // with separate `a` for the original (many small reads; low_memory=True)
  // and chunked (16 MB sequential blocks) loaders. Calibrated against the
  // paper's Fig 7a (NT3 data loading ~153 s on 64 Summit nodes vs 104 s on
  // one) and the §5.1 claim that Theta's at-scale loading is >4x Summit's.
  double io_ref_nodes = 64.0;
  double io_contention_a_original = 0.0;
  double io_contention_a_chunked = 0.0;
  double io_contention_b = 0.5;

  // --- arrival skew ----------------------------------------------------------
  // Ranks reach the initial broadcast negotiation only after loading their
  // data; the slowest straggler defines the broadcast overhead (Figs 7b,
  // 12, 19). Modeled as max skew = frac * per-rank load time.
  double load_skew_frac_original = 0.28;   // 43.72 s / ~153 s on 384 GPUs
  double load_skew_frac_chunked = 0.20;    // 4.65 s / ~23 s on 384 GPUs

  // --- power states (per metered device: GPU on Summit, node on Theta) ------
  double meter_hz = 1.0;            // nvidia-smi 1 Hz; PoLiMEr ~2 Hz
  double p_idle = 0.0;              // waiting (negotiation, barriers)
  double p_io = 0.0;                // data loading / preprocessing
  double p_comm = 0.0;              // collective communication
  double p_eval = 0.0;              // inference on the test set
  double device_tdp = 0.0;          // V100 300 W / KNL 215 W (sanity cap)

  // --- memory -----------------------------------------------------------------
  double rank_mem_bytes = 0.0;      // 16 GB HBM2 per V100; 208 GB per KNL node

  /// Number of nodes hosting `ranks` ranks.
  [[nodiscard]] std::size_t nodes_for(std::size_t ranks) const;

  /// I/O contention multiplier for a given rank count and loader choice.
  [[nodiscard]] double io_contention(std::size_t ranks,
                                     bool chunked_loader) const;

  /// Per-batch-step synchronization overhead in seconds.
  [[nodiscard]] double sync_overhead(std::size_t ranks) const;

  /// Canonical models.
  static const Machine& summit();
  static const Machine& theta();
};

}  // namespace candle::sim
