#include "sim/run_sim.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/string_util.h"

namespace candle::sim {
namespace {

std::size_t ceil_log2(std::size_t n) {
  std::size_t bits = 0;
  std::size_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

RunSimulator::RunSimulator(const Machine& machine,
                           const BenchmarkProfile& profile)
    : machine_(&machine), profile_(&profile) {}

double RunSimulator::data_load_seconds(io::LoaderKind loader,
                                       std::size_t ranks) const {
  const MachineCompute& mc = profile_->on(machine_->kind);
  double base = 0.0;
  switch (loader) {
    case io::LoaderKind::kOriginal: base = mc.load_original.total(); break;
    case io::LoaderKind::kChunked: base = mc.load_chunked.total(); break;
    case io::LoaderKind::kDask:
      base = profile_->load_dask(machine_->kind).total();
      break;
    case io::LoaderKind::kParallel:
      // The machine model was calibrated on the paper's three loaders;
      // the threaded reader shares the chunked reader's I/O pattern, so
      // the sim treats it as chunked (intra-node threading is below the
      // model's per-rank resolution).
      base = mc.load_chunked.total();
      break;
  }
  const bool chunked_like = loader != io::LoaderKind::kOriginal;
  return base * machine_->io_contention(ranks, chunked_like);
}

double RunSimulator::load_skew_seconds(io::LoaderKind loader,
                                       std::size_t ranks) const {
  if (ranks <= 1) return 0.0;
  const double frac = loader == io::LoaderKind::kOriginal
                          ? machine_->load_skew_frac_original
                          : machine_->load_skew_frac_chunked;
  // Straggler skew approaches frac * load as the population grows.
  const double population = 1.0 - 1.0 / static_cast<double>(ranks);
  return frac * data_load_seconds(loader, ranks) * population;
}

double RunSimulator::broadcast_tree_seconds(std::size_t ranks) const {
  if (ranks <= 1) return 0.0;
  const double payload =
      static_cast<double>(profile_->param_count) * sizeof(float);
  const double bw =
      ranks <= machine_->ranks_per_node ? machine_->local_bw : machine_->net_bw;
  const double rounds = static_cast<double>(ceil_log2(ranks));
  return rounds * (machine_->net_latency_s + payload / bw);
}

double RunSimulator::allreduce_step_seconds(std::size_t ranks) const {
  return allreduce_step_seconds(ranks, comm::AllreduceAlgo::kRing,
                                comm::WireDtype::kFp32);
}

double RunSimulator::ring_hops_seconds(double p, double payload_bytes,
                                       double bw) const {
  return (p - 1.0) * (machine_->net_latency_s + payload_bytes / p / bw);
}

double RunSimulator::ring_reduce_converted(double p, double elems) {
  // One decode_add + one encode per hop, each touching elems/p.
  return 2.0 * (p - 1.0) * elems / p;
}

double RunSimulator::ring_gather_converted(double p, double elems) {
  // One decode per hop of elems/p.
  return (p - 1.0) * elems / p;
}

double RunSimulator::convert_seconds(double converted_elems,
                                     comm::WireDtype dtype) const {
  if (dtype == comm::WireDtype::kFp32) return 0.0;
  const double rate = dtype == comm::WireDtype::kInt8
                          ? machine_->quantize_elems_per_s
                          : machine_->convert_elems_per_s;
  if (rate <= 0.0) return 0.0;
  return converted_elems / rate;
}

double RunSimulator::allreduce_step_seconds(std::size_t ranks,
                                            comm::AllreduceAlgo algo,
                                            comm::WireDtype dtype) const {
  return allreduce_step_seconds(ranks, algo, dtype, comm::WireDtype::kFp32);
}

double RunSimulator::allreduce_step_seconds(std::size_t ranks,
                                            comm::AllreduceAlgo algo,
                                            comm::WireDtype dtype,
                                            comm::WireDtype local_dtype)
    const {
  if (ranks <= 1) return 0.0;
  const std::size_t elems = profile_->param_count;
  const double n = static_cast<double>(elems);
  // The byte term scales with the dtype's on-wire bytes (fp16/bf16: half;
  // int8: a quarter plus per-chunk scale metadata); the fp32 master
  // accumulation itself stays on-rank and is free here.
  const double payload =
      static_cast<double>(comm::wire_range_bytes(dtype, elems));
  const double p = static_cast<double>(ranks);
  const double bw =
      ranks <= machine_->ranks_per_node ? machine_->local_bw : machine_->net_bw;
  double t = 0.0;
  // Critical-path fp32<->wire converted elements: the entry encode of the
  // full payload plus the per-hop terms shared with the standalone
  // collectives (ring_reduce_converted / ring_gather_converted).
  double converted = 0.0;
  switch (algo) {
    case comm::AllreduceAlgo::kRing:
      // Ring allreduce = reduce-scatter phase + allgather phase over the
      // same ring: two ring_hops terms, one reduce and one gather codec
      // term.
      t = 2.0 * ring_hops_seconds(p, payload, bw);
      converted =
          n + ring_reduce_converted(p, n) + ring_gather_converted(p, n);
      break;
    case comm::AllreduceAlgo::kNaive:
      // Root bottleneck: P-1 inbound payloads, then P-1 outbound copies.
      t = 2.0 * (p - 1.0) * (machine_->net_latency_s + payload / bw);
      converted = n * (p + 1.0);
      break;
    case comm::AllreduceAlgo::kHierarchical: {
      const double local =
          static_cast<double>(std::min(ranks, machine_->ranks_per_node));
      const double nodes = static_cast<double>(machine_->nodes_for(ranks));
      // Intra-node reduce + final broadcast over NVLink: two passes of the
      // payload at the local wire dtype (fp32 by default; a compressed
      // local_dtype shrinks the NVLink bytes and pays roughly local + 2
      // payloads of codec work — member entry encodes and the leader's
      // decode_add sweep in phase 1, the leader re-encode plus the member
      // decodes in phase 3).
      if (local > 1.0) {
        const double local_payload =
            static_cast<double>(comm::wire_range_bytes(local_dtype, elems));
        t += 2.0 * local_payload / machine_->local_bw;
        t += convert_seconds((local + 2.0) * n, local_dtype);
      }
      // Inter-node ring over the node leaders is the only `dtype` leg.
      if (nodes > 1.0) {
        t += 2.0 * ring_hops_seconds(nodes, payload, machine_->net_bw);
        converted = n + ring_reduce_converted(nodes, n) +
                    ring_gather_converted(nodes, n);
      }
      break;
    }
  }
  return t + convert_seconds(converted, dtype) +
         machine_->sync_overhead(ranks);
}

double RunSimulator::reduce_scatter_seconds(std::size_t ranks,
                                            std::size_t elems,
                                            comm::WireDtype dtype) const {
  if (ranks <= 1) return 0.0;
  const double n = static_cast<double>(elems);
  const double p = static_cast<double>(ranks);
  const double payload =
      static_cast<double>(comm::wire_range_bytes(dtype, elems));
  const double bw =
      ranks <= machine_->ranks_per_node ? machine_->local_bw : machine_->net_bw;
  // Entry encode of the full payload, then decode_add+encode per hop.
  const double converted = n + ring_reduce_converted(p, n);
  return ring_hops_seconds(p, payload, bw) + convert_seconds(converted, dtype) +
         machine_->sync_overhead(ranks);
}

double RunSimulator::allgather_seconds(std::size_t ranks, std::size_t elems,
                                       comm::WireDtype dtype) const {
  if (ranks <= 1) return 0.0;
  const double n = static_cast<double>(elems);
  const double p = static_cast<double>(ranks);
  const double payload =
      static_cast<double>(comm::wire_range_bytes(dtype, elems));
  const double bw =
      ranks <= machine_->ranks_per_node ? machine_->local_bw : machine_->net_bw;
  // Owned-segment encode + round-trip decode (2 n/p), then a decode per hop.
  const double converted = 2.0 * n / p + ring_gather_converted(p, n);
  return ring_hops_seconds(p, payload, bw) + convert_seconds(converted, dtype) +
         machine_->sync_overhead(ranks);
}

double RunSimulator::data_parallel_layer_comm_seconds(
    std::size_t ranks, std::size_t weight_elems, comm::WireDtype dtype) const {
  if (ranks <= 1) return 0.0;
  // One ring reduce-scatter + allgather over the weight gradient — the ring
  // allreduce decomposition, built from the same shared terms.
  const double n = static_cast<double>(weight_elems);
  const double p = static_cast<double>(ranks);
  const double payload =
      static_cast<double>(comm::wire_range_bytes(dtype, weight_elems));
  const double bw =
      ranks <= machine_->ranks_per_node ? machine_->local_bw : machine_->net_bw;
  const double converted =
      n + ring_reduce_converted(p, n) + ring_gather_converted(p, n);
  return 2.0 * ring_hops_seconds(p, payload, bw) +
         convert_seconds(converted, dtype) + machine_->sync_overhead(ranks);
}

double RunSimulator::channel_parallel_layer_comm_seconds(
    std::size_t ranks, std::size_t out_act_elems, std::size_t in_act_elems,
    comm::WireDtype dtype) const {
  if (ranks <= 1) return 0.0;
  // Forward: allgather of the output activations. Backward: reduce-scatter
  // + allgather summing the partial input gradient.
  return allgather_seconds(ranks, out_act_elems, dtype) +
         reduce_scatter_seconds(ranks, in_act_elems, dtype) +
         allgather_seconds(ranks, in_act_elems, dtype);
}

double RunSimulator::allreduce_hierarchical_seconds(
    std::size_t ranks) const {
  return allreduce_step_seconds(ranks, comm::AllreduceAlgo::kHierarchical,
                                comm::WireDtype::kFp32);
}

double RunSimulator::step_compute_seconds(std::size_t batch) const {
  const MachineCompute& mc = profile_->on(machine_->kind);
  return mc.step_fixed_s + static_cast<double>(batch) * mc.per_sample_s;
}

double RunSimulator::memory_bytes(std::size_t batch) const {
  // Weights + gradients + optimizer state (3x) at fp32, plus activations.
  return static_cast<double>(profile_->param_count) * 12.0 +
         static_cast<double>(batch) * profile_->act_bytes_per_sample;
}

double RunSimulator::compute_power_watts(std::size_t batch) const {
  const MachineCompute& mc = profile_->on(machine_->kind);
  const double doublings =
      std::log2(static_cast<double>(batch) /
                static_cast<double>(profile_->default_batch));
  const double w = mc.p_compute_w - mc.p_compute_batch_drop * doublings;
  return std::clamp(w, machine_->p_idle, machine_->device_tdp);
}

SimResult RunSimulator::simulate(const RunPlan& plan) const {
  require(plan.ranks > 0, "simulate: ranks must be > 0");
  require(plan.epochs_per_rank > 0, "simulate: epochs_per_rank must be > 0");
  const std::size_t batch =
      plan.batch_per_rank == 0 ? profile_->default_batch : plan.batch_per_rank;

  if (memory_bytes(batch) > machine_->rank_mem_bytes) {
    throw OutOfMemory(strprintf(
        "%s on %s: batch size %zu needs %.1f GB but the device has %.1f GB",
        profile_->name.c_str(), machine_->name.c_str(), batch,
        memory_bytes(batch) / 1e9, machine_->rank_mem_bytes / 1e9));
  }

  const MachineCompute& mc = profile_->on(machine_->kind);
  std::size_t steps = profile_->steps_per_epoch(batch);
  if (plan.level == ParallelLevel::kBatchStep) {
    // Each epoch's steps are sharded across ranks (global batch =
    // batch_per_rank * ranks).
    steps = (steps + plan.ranks - 1) / plan.ranks;
  }

  const double step_c = step_compute_seconds(batch);
  const double step_ar =
      allreduce_step_seconds(plan.ranks, plan.allreduce_algo, plan.wire_dtype,
                             plan.local_wire_dtype);
  // Overlap credit: with backward-overlapped communication, up to the
  // backward window of each step's compute hides allreduce time; only the
  // remainder is exposed on the critical path.
  const double hidden =
      plan.overlap_comm ? std::min(step_ar, kOverlapWindowFrac * step_c)
                        : 0.0;
  const double step_ar_exposed = step_ar - hidden;
  // Input-pipeline credit (mirrors the real runner's fit prefetch): the
  // producer stages batch t+1 during batch t's compute, so up to a full
  // step of staging hides behind compute; the remainder stalls the step.
  require(plan.input_stage_frac >= 0.0,
          "simulate: input_stage_frac must be >= 0");
  const double step_in = plan.input_stage_frac * step_c;
  const double hidden_in =
      plan.pipeline_input ? std::min(step_in, step_c) : 0.0;
  const double step_in_exposed = step_in - hidden_in;
  const double epochs = static_cast<double>(plan.epochs_per_rank);
  const double steps_d = static_cast<double>(steps);

  SimResult result;
  result.steps_per_epoch = steps;
  PhaseTimes& ph = result.phases;
  ph.startup = mc.startup_s;
  ph.data_load = data_load_seconds(plan.loader, plan.ranks);
  ph.preprocess = mc.preprocess_s;
  ph.negotiate_broadcast = load_skew_seconds(plan.loader, plan.ranks);
  ph.broadcast_xfer = broadcast_tree_seconds(plan.ranks);
  ph.train_compute = epochs * steps_d * step_c;
  ph.train_input = epochs * steps_d * step_in_exposed;
  ph.train_input_hidden = epochs * steps_d * hidden_in;
  ph.train_comm = epochs * steps_d * step_ar_exposed;
  ph.train_comm_hidden = epochs * steps_d * hidden;
  ph.evaluate = mc.eval_s;
  result.time_per_epoch =
      steps_d * (step_c + step_in_exposed + step_ar_exposed);

  // --- power curve ----------------------------------------------------------
  const double p_compute = compute_power_watts(batch);
  power::PiecewisePower curve;
  curve.append(ph.startup, machine_->p_idle);
  curve.append(ph.data_load, machine_->p_io);
  curve.append(ph.preprocess, machine_->p_io);
  curve.append(ph.negotiate_broadcast, machine_->p_idle);
  curve.append(ph.broadcast_xfer, machine_->p_comm);
  for (std::size_t e = 0; e < plan.epochs_per_rank; ++e) {
    // Exposed input staging stalls the device at I/O power before compute;
    // pipelined staging is concurrent with compute and adds no segment.
    if (steps_d * step_in_exposed > 0.0)
      curve.append(steps_d * step_in_exposed, machine_->p_io);
    curve.append(steps_d * step_c, p_compute);
    curve.append(steps_d * step_ar_exposed, machine_->p_comm);
  }
  curve.append(ph.evaluate, machine_->p_eval);

  const power::PowerMeter meter(machine_->meter_hz);
  const power::PowerTrace trace = meter.sample(curve);
  result.avg_power_w = trace.average_watts();
  result.energy_per_rank_j = trace.energy_joules();
  result.total_energy_j =
      result.energy_per_rank_j * static_cast<double>(plan.ranks);
  if (plan.make_power_trace) result.trace = trace;

  // --- timeline ---------------------------------------------------------------
  if (plan.make_timeline) {
    auto tl = std::make_shared<trace::Timeline>();
    const std::size_t lanes = std::min<std::size_t>(plan.ranks, 6);
    const double max_arrival = ph.data_load + ph.negotiate_broadcast;
    for (std::size_t r = 0; r < lanes; ++r) {
      // Spread lane arrival times across the skew window; rank 0 is the
      // earliest (it waits the full negotiate window).
      const double frac =
          lanes > 1 ? static_cast<double>(r) / static_cast<double>(lanes - 1)
                    : 0.0;
      const double load_r = ph.data_load + frac * ph.negotiate_broadcast;
      double t = ph.startup;
      tl->record(trace::kDataLoading, "io", r, t, load_r);
      t += load_r;
      tl->record(trace::kPreprocessing, "io", r, t, ph.preprocess);
      t += ph.preprocess;
      const double wait = max_arrival - load_r;
      tl->record(trace::kNegotiateBroadcast, "broadcast", r, t, wait);
      t += wait;
      tl->record(trace::kMpiBroadcast, "broadcast", r, t, ph.broadcast_xfer);
      t += ph.broadcast_xfer;
      for (std::size_t e = 0; e < plan.epochs_per_rank; ++e) {
        if (steps_d * step_in_exposed > 0.0) {
          // Exposed staging stalls the consumer ahead of the epoch's
          // compute block.
          tl->record(trace::kPipelineStall, "io", r, t,
                     steps_d * step_in_exposed);
          t += steps_d * step_in_exposed;
        }
        tl->record(trace::kComputeGradients, "compute", r, t,
                   steps_d * step_c);
        if (plan.pipeline_input && steps_d * hidden_in > 0.0) {
          // Pipelined staging runs on the producer thread concurrently
          // with the compute block (hidden from the critical path).
          tl->record(trace::kPipelineProduce, "io", r, t,
                     steps_d * hidden_in);
        }
        if (plan.overlap_comm && steps_d * hidden > 0.0) {
          // Hidden comm runs concurrently with the backward tail of the
          // compute block (the comm thread's lane in a real timeline).
          tl->record(trace::kNcclAllreduce, "allreduce", r,
                     t + steps_d * (step_c - hidden), steps_d * hidden);
        }
        t += steps_d * step_c;
        const double negotiate = 0.3 * steps_d * step_ar_exposed;
        tl->record(trace::kNegotiateAllreduce, "allreduce", r, t, negotiate);
        tl->record(trace::kNcclAllreduce, "allreduce", r, t + negotiate,
                   steps_d * step_ar_exposed - negotiate);
        t += steps_d * step_ar_exposed;
      }
      tl->record(trace::kEvaluation, "compute", r, t, ph.evaluate);
    }
    // Power counter track (Fig 7a overlaid on the Fig 7b lanes).
    for (const auto& s : trace.samples)
      tl->record_counter(machine_->has_gpus ? "gpu_power_w" : "node_power_w",
                         s.t_s, s.watts);
    result.timeline = std::move(tl);
  }
  return result;
}

}  // namespace candle::sim
