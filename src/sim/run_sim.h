// Phase-level simulator for at-scale Horovod CANDLE runs.
//
// Given a machine model, a calibrated benchmark profile, and a run plan
// (rank count, epochs/rank, batch/rank, loader, parallelism level), the
// simulator computes the phase schedule the paper instruments:
//
//   startup | data load | preprocess | negotiate_broadcast | broadcast |
//   { per epoch: compute + negotiate_allreduce + allreduce } | evaluate
//
// and derives total runtime, time/epoch, the metered power trace (nvidia-smi
// at 1 Hz / PoLiMEr at 2 Hz), per-rank and total energy, and optionally a
// Horovod-style timeline. It throws OutOfMemory for configurations the
// paper reports as failing (NT3 batch >= 50; P1B3 linear batch scaling at
// 192/384 GPUs).
#pragma once

#include <memory>

#include "comm/communicator.h"
#include "io/csv_reader.h"
#include "power/power.h"
#include "sim/calibration.h"
#include "sim/machine.h"
#include "trace/timeline.h"

namespace candle::sim {

/// Where data parallelism is applied (paper §2.3.1): epoch-level runs the
/// full dataset per rank each epoch; batch-step-level shards each epoch
/// across ranks.
enum class ParallelLevel { kEpoch, kBatchStep };

/// Fraction of a step's compute time during which gradient communication
/// can run concurrently when overlap is enabled (the backward-pass window:
/// buckets become ready layer by layer, so roughly the backward half of the
/// step can hide allreduce time behind compute). Mirrors the real runner's
/// BucketScheduler, which reduces buckets on a comm thread while backward
/// runs.
inline constexpr double kOverlapWindowFrac = 0.5;

/// One simulated configuration.
struct RunPlan {
  std::size_t ranks = 1;
  std::size_t epochs_per_rank = 1;
  std::size_t batch_per_rank = 0;  // 0 -> benchmark default
  io::LoaderKind loader = io::LoaderKind::kOriginal;
  ParallelLevel level = ParallelLevel::kEpoch;
  bool overlap_comm = false;       // credit comm hidden behind backward
                                   // (the runner's fusion.overlap knob)
  /// Per-step batch-staging (input) cost as a fraction of step compute.
  /// The calibrated anchors subsume staging in compute, so 0 keeps every
  /// existing plan bit-identical; ablations set it to model slow input.
  double input_stage_frac = 0.0;
  bool pipeline_input = false;     // credit staging hidden behind compute
                                   // (the runner's fit prefetch knob)
  /// Collective algorithm and on-wire dtype for the per-step gradient
  /// allreduce (the runner's --allreduce-algo / --wire-dtype knobs). The
  /// defaults reproduce the pre-existing flat fp32 ring model bit-exactly;
  /// compressed dtypes halve the byte term and add a conversion term
  /// (Machine::convert_elems_per_s).
  comm::AllreduceAlgo allreduce_algo = comm::AllreduceAlgo::kRing;
  comm::WireDtype wire_dtype = comm::WireDtype::kFp32;
  /// On-wire dtype of the hierarchical algorithm's intra-node legs (the
  /// runner's --local-wire-dtype / WorldOptions::local_wire_dtype knob):
  /// the NVLink-tier byte term is charged at this dtype's width and, when
  /// compressed, the local codec passes are charged too. Ignored by the
  /// flat algorithms, exactly like the real communicator.
  comm::WireDtype local_wire_dtype = comm::WireDtype::kFp32;
  bool make_timeline = false;      // emit Horovod-style events (<= 6 lanes)
  bool make_power_trace = false;   // keep the rank-0 sampled power series
};

/// Phase durations in seconds (per rank; ranks are symmetric).
struct PhaseTimes {
  double startup = 0.0;
  double data_load = 0.0;
  double preprocess = 0.0;
  double negotiate_broadcast = 0.0;  // straggler wait (the paper's overhead)
  double broadcast_xfer = 0.0;       // binomial-tree data movement
  double train_compute = 0.0;
  double train_input = 0.0;          // *exposed* batch-staging time; with
                                     // a pipelined input stage the hidden
                                     // part moves to the field below
  double train_input_hidden = 0.0;   // staging overlapped behind compute
                                     // (not in total())
  double train_comm = 0.0;           // *exposed* allreduce time (incl.
                                     // per-step sync); with overlap the
                                     // hidden part moves to the field below
  double train_comm_hidden = 0.0;    // allreduce time overlapped behind
                                     // backward compute (not in total())
  double evaluate = 0.0;

  [[nodiscard]] double total() const {
    return startup + data_load + preprocess + negotiate_broadcast +
           broadcast_xfer + train_compute + train_input + train_comm +
           evaluate;
  }
  [[nodiscard]] double train() const {
    return train_compute + train_input + train_comm;
  }
};

/// Simulation output.
struct SimResult {
  PhaseTimes phases;
  std::size_t steps_per_epoch = 0;
  double time_per_epoch = 0.0;     // compute + comm per epoch
  double avg_power_w = 0.0;        // metered average over the run
  double energy_per_rank_j = 0.0;  // metered energy, one device
  double total_energy_j = 0.0;     // all ranks
  power::PowerTrace trace;         // rank-0 power series (if requested)
  std::shared_ptr<trace::Timeline> timeline;  // if requested
};

/// The simulator. Stateless once constructed; safe to share const.
class RunSimulator {
 public:
  RunSimulator(const Machine& machine, const BenchmarkProfile& profile);

  /// Simulates one configuration. Throws OutOfMemory when the plan exceeds
  /// device memory, InvalidArgument on malformed plans.
  [[nodiscard]] SimResult simulate(const RunPlan& plan) const;

  // --- individual cost models (exposed for unit tests and ablations) ------

  /// Per-rank data-loading seconds including filesystem contention.
  [[nodiscard]] double data_load_seconds(io::LoaderKind loader,
                                         std::size_t ranks) const;

  /// Straggler skew at the initial broadcast: the negotiate overhead.
  [[nodiscard]] double load_skew_seconds(io::LoaderKind loader,
                                         std::size_t ranks) const;

  /// Binomial-tree broadcast of the model weights.
  [[nodiscard]] double broadcast_tree_seconds(std::size_t ranks) const;

  /// One ring-allreduce of the gradient payload, incl. sync overhead.
  [[nodiscard]] double allreduce_step_seconds(std::size_t ranks) const;

  /// Algorithm- and dtype-aware allreduce cost: the byte term uses the
  /// dtype's on-wire bytes (fp16/bf16 halve it, int8 quarters it plus the
  /// per-chunk scale metadata), and compressed dtypes add a conversion
  /// term — critical-path converted elements over the dtype's codec rate
  /// (Machine::convert_elems_per_s for the 16-bit dtypes,
  /// Machine::quantize_elems_per_s for int8). (kRing, kFp32) is
  /// bit-identical to the one-argument overload; hierarchical compresses
  /// only its inter-node leg, so its compressed gain shrinks as more of
  /// the payload moves intra-node. This is the model behind the
  /// ring-vs-hierarchical x dtype crossover recipes in EXPERIMENTS.md.
  [[nodiscard]] double allreduce_step_seconds(std::size_t ranks,
                                              comm::AllreduceAlgo algo,
                                              comm::WireDtype dtype) const;

  /// As above with an explicit intra-node wire dtype for kHierarchical:
  /// the NVLink legs (phase-1 reduce + phase-3 broadcast) move
  /// wire_range_bytes(local_dtype) bytes and, when local_dtype is
  /// compressed, charge roughly (local_ranks + 2) payloads of codec work
  /// (member entry encodes + leader decode_adds, then the leader re-encode
  /// and the member decodes). The three-argument overload forwards kFp32
  /// (uncompressed NVLink legs). Flat algorithms ignore `local_dtype`.
  [[nodiscard]] double allreduce_step_seconds(std::size_t ranks,
                                              comm::AllreduceAlgo algo,
                                              comm::WireDtype dtype,
                                              comm::WireDtype local_dtype)
      const;

  /// Two-level (NCCL-hierarchical) allreduce cost: intra-node ring over
  /// NVLink, inter-node ring over the NIC between node leaders, intra-node
  /// broadcast. Exposed for the topology ablation; the flat model above is
  /// what the calibrated anchors use.
  [[nodiscard]] double allreduce_hierarchical_seconds(
      std::size_t ranks) const;

  /// One standalone ring reduce-scatter over `elems` fp32 elements at the
  /// given wire dtype: P-1 hops of elems/P wire words plus, for compressed
  /// dtypes, the entry encode and the per-hop decode_add+encode conversions
  /// (ring_reduce_converted). Shares its hop and codec terms with the
  /// allreduce model above, so the two cannot drift.
  [[nodiscard]] double reduce_scatter_seconds(std::size_t ranks,
                                              std::size_t elems,
                                              comm::WireDtype dtype) const;

  /// One standalone in-place ring allgather over `elems` fp32 elements:
  /// P-1 hops of elems/P wire words plus, for compressed dtypes, the
  /// owned-segment encode + round-trip decode and the per-hop decodes
  /// (ring_gather_converted).
  [[nodiscard]] double allgather_seconds(std::size_t ranks, std::size_t elems,
                                         comm::WireDtype dtype) const;

  /// Per-step communication cost of one layer under data parallelism: a
  /// ring allreduce of its `weight_elems` gradient. Pairs with
  /// channel_parallel_layer_comm_seconds for the data->channel crossover
  /// recipe (EXPERIMENTS.md, BENCH_tensor_parallel.json).
  [[nodiscard]] double data_parallel_layer_comm_seconds(
      std::size_t ranks, std::size_t weight_elems,
      comm::WireDtype dtype) const;

  /// Per-step communication cost of the same layer channel-sharded: the
  /// weight-gradient allreduce disappears, replaced by a forward allgather
  /// of the `out_act_elems` output activations and a backward
  /// reduce-scatter + allgather summing the `in_act_elems` input gradient.
  [[nodiscard]] double channel_parallel_layer_comm_seconds(
      std::size_t ranks, std::size_t out_act_elems, std::size_t in_act_elems,
      comm::WireDtype dtype) const;

  /// One batch step's compute time for a per-rank batch size.
  [[nodiscard]] double step_compute_seconds(std::size_t batch) const;

  /// Device memory demanded by a per-rank batch size.
  [[nodiscard]] double memory_bytes(std::size_t batch) const;

  /// Metered power while training with the given per-rank batch.
  [[nodiscard]] double compute_power_watts(std::size_t batch) const;

  [[nodiscard]] const Machine& machine() const { return *machine_; }
  [[nodiscard]] const BenchmarkProfile& profile() const { return *profile_; }

 private:
  /// Wire-transfer term of one ring phase: (p-1) hops, each moving
  /// payload/p bytes at `bw` after `net_latency_s`. The ring allreduce is
  /// exactly two of these (reduce-scatter + allgather over the same ring).
  [[nodiscard]] double ring_hops_seconds(double p, double payload_bytes,
                                         double bw) const;

  /// fp32<->wire elements converted on the critical path of a compressed
  /// ring reduce-scatter phase (one decode_add + encode per hop) and of an
  /// allgather phase (one decode per hop). Shared by the allreduce model
  /// and the standalone collectives — see communicator.cpp's compressed
  /// paths.
  [[nodiscard]] static double ring_reduce_converted(double p, double elems);
  [[nodiscard]] static double ring_gather_converted(double p, double elems);

  /// Conversion-throughput term: zero for fp32, converted_elems over the
  /// dtype's codec rate (convert_elems_per_s for fp16/bf16,
  /// quantize_elems_per_s for int8) otherwise.
  [[nodiscard]] double convert_seconds(double converted_elems,
                                       comm::WireDtype dtype) const;

  const Machine* machine_;
  const BenchmarkProfile* profile_;
};

}  // namespace candle::sim
