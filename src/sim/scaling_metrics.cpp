#include "sim/scaling_metrics.h"

#include <cmath>

#include "common/error.h"

namespace candle::sim {

double speedup(const ScalingPoint& baseline, const ScalingPoint& point) {
  require(baseline.ranks == 1, "speedup: baseline must be the 1-rank run");
  require(baseline.seconds > 0.0 && point.seconds > 0.0,
          "speedup: times must be > 0");
  return baseline.seconds / point.seconds;
}

double parallel_efficiency(const ScalingPoint& baseline,
                           const ScalingPoint& point) {
  require(point.ranks > 0, "parallel_efficiency: ranks must be > 0");
  return speedup(baseline, point) / static_cast<double>(point.ranks);
}

double karp_flatt(const ScalingPoint& baseline, const ScalingPoint& point) {
  require(point.ranks > 1, "karp_flatt: needs more than one rank");
  const double s = speedup(baseline, point);
  const double p = static_cast<double>(point.ranks);
  return (1.0 / s - 1.0 / p) / (1.0 - 1.0 / p);
}

double amdahl_time(double t1, double serial_fraction, std::size_t ranks) {
  require(t1 > 0.0, "amdahl_time: t1 must be > 0");
  require(serial_fraction >= 0.0 && serial_fraction <= 1.0,
          "amdahl_time: fraction in [0, 1]");
  require(ranks > 0, "amdahl_time: ranks must be > 0");
  return t1 * (serial_fraction +
               (1.0 - serial_fraction) / static_cast<double>(ranks));
}

double fit_serial_fraction(const std::vector<ScalingPoint>& curve) {
  require(curve.size() >= 2, "fit_serial_fraction: need >= 2 points");
  require(curve.front().ranks == 1,
          "fit_serial_fraction: first point must be the 1-rank baseline");
  const double t1 = curve.front().seconds;

  auto error = [&](double f) {
    double total = 0.0;
    for (std::size_t i = 1; i < curve.size(); ++i) {
      const double predicted = amdahl_time(t1, f, curve[i].ranks);
      const double d = predicted - curve[i].seconds;
      total += d * d;
    }
    return total;
  };

  // Golden-section search on the unimodal squared error.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = 0.0, hi = 1.0;
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double e1 = error(x1), e2 = error(x2);
  for (int iter = 0; iter < 80; ++iter) {
    if (e1 < e2) {
      hi = x2;
      x2 = x1;
      e2 = e1;
      x1 = hi - phi * (hi - lo);
      e1 = error(x1);
    } else {
      lo = x1;
      x1 = x2;
      e1 = e2;
      x2 = lo + phi * (hi - lo);
      e2 = error(x2);
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace candle::sim
