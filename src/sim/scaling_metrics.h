// Parallel scaling metrics: speedup, efficiency, Karp-Flatt serial
// fraction.
//
// The paper reports raw times; these are the standard derived metrics an
// HPC analysis computes from them. The Karp-Flatt metric is particularly
// telling here: the experimentally determined serial fraction
//     e(P) = (1/S - 1/P) / (1 - 1/P)
// exposes the per-rank replicated data loading as serial work — and shows
// the paper's loader fix shrinking exactly that fraction.
#pragma once

#include <cstddef>
#include <vector>

namespace candle::sim {

/// One measured point of a strong-scaling curve.
struct ScalingPoint {
  std::size_t ranks = 1;
  double seconds = 0.0;
};

/// Speedup S(P) = T(1) / T(P). Requires both times > 0.
double speedup(const ScalingPoint& baseline, const ScalingPoint& point);

/// Parallel efficiency S(P) / P in [0, ...].
double parallel_efficiency(const ScalingPoint& baseline,
                           const ScalingPoint& point);

/// Karp-Flatt experimentally determined serial fraction. Requires
/// point.ranks > 1.
double karp_flatt(const ScalingPoint& baseline, const ScalingPoint& point);

/// Amdahl's-law prediction: T(P) for a serial fraction f and T(1).
double amdahl_time(double t1, double serial_fraction, std::size_t ranks);

/// Fits the serial fraction minimizing squared error of Amdahl's law over
/// a measured curve (golden-section search on f in [0, 1]). The first
/// point must be ranks == 1 (the baseline).
double fit_serial_fraction(const std::vector<ScalingPoint>& curve);

}  // namespace candle::sim
