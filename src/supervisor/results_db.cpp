#include "supervisor/results_db.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"
#include "common/string_util.h"

namespace candle::supervisor {

void ResultsDb::record(TrialResult result) {
  results_.push_back(std::move(result));
}

std::optional<TrialResult> ResultsDb::best() const {
  std::optional<TrialResult> best;
  for (const auto& r : results_) {
    if (r.failed) continue;
    if (!best || r.metric > best->metric) best = r;
  }
  return best;
}

std::optional<TrialResult> ResultsDb::best_per_energy() const {
  std::optional<TrialResult> best;
  double best_ratio = 0.0;
  for (const auto& r : results_) {
    if (r.failed || r.energy_joules <= 0.0) continue;
    const double ratio = static_cast<double>(r.metric) /
                         (r.energy_joules / 1e3);
    if (!best || ratio > best_ratio) {
      best = r;
      best_ratio = ratio;
    }
  }
  return best;
}

std::vector<TrialResult> ResultsDb::ranked() const {
  std::vector<TrialResult> out = results_;
  std::stable_sort(out.begin(), out.end(),
                   [](const TrialResult& a, const TrialResult& b) {
                     if (a.failed != b.failed) return !a.failed;
                     return a.metric > b.metric;
                   });
  return out;
}

std::string ResultsDb::to_csv() const {
  std::string out =
      "trial_id,epochs,batch,learning_rate,optimizer,metric,loss,"
      "train_seconds,energy_joules,failed,failure_reason\n";
  for (const auto& r : results_) {
    out += strprintf("%zu,%zu,%zu,%g,%s,%.6f,%.6f,%.3f,%.1f,%d,%s\n",
                     r.trial.id, r.trial.epochs, r.trial.batch,
                     r.trial.learning_rate, r.trial.optimizer.c_str(),
                     r.metric, r.loss, r.train_seconds, r.energy_joules,
                     r.failed ? 1 : 0, r.failure_reason.c_str());
  }
  return out;
}

void ResultsDb::save_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw IoError("ResultsDb: cannot open " + path);
  const std::string csv = to_csv();
  const std::size_t n = std::fwrite(csv.data(), 1, csv.size(), f);
  std::fclose(f);
  if (n != csv.size()) throw IoError("ResultsDb: short write to " + path);
}

}  // namespace candle::supervisor
