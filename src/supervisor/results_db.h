// Results database for hyperparameter campaigns (the "database" component
// of the CANDLE system overview, Fig 1b).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "supervisor/search_space.h"

namespace candle::supervisor {

/// Outcome of one evaluated trial.
struct TrialResult {
  Trial trial;
  float metric = 0.0f;      // accuracy or R² (higher is better)
  float loss = 0.0f;
  double train_seconds = 0.0;
  double energy_joules = 0.0;  // 0 when not simulated
  bool failed = false;         // e.g. OOM
  std::string failure_reason;
};

/// In-memory store with CSV persistence.
class ResultsDb {
 public:
  void record(TrialResult result);

  [[nodiscard]] std::size_t size() const { return results_.size(); }
  [[nodiscard]] const std::vector<TrialResult>& all() const {
    return results_;
  }

  /// Best non-failed result by metric; nullopt when all failed/empty.
  [[nodiscard]] std::optional<TrialResult> best() const;

  /// Best by metric-per-kilojoule (the energy-aware objective the paper's
  /// power study motivates). Results with zero energy are skipped.
  [[nodiscard]] std::optional<TrialResult> best_per_energy() const;

  /// Results sorted by metric descending (failed trials last).
  [[nodiscard]] std::vector<TrialResult> ranked() const;

  /// CSV dump: header + one row per result.
  [[nodiscard]] std::string to_csv() const;

  /// Writes to_csv() to a file; throws IoError on failure.
  void save_csv(const std::string& path) const;

 private:
  std::vector<TrialResult> results_;
};

}  // namespace candle::supervisor
