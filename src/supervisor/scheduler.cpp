#include "supervisor/scheduler.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace candle::supervisor {

double Schedule::utilization() const {
  if (makespan_s <= 0.0 || total_ranks == 0) return 0.0;
  return busy_rank_seconds / (makespan_s * static_cast<double>(total_ranks));
}

ClusterScheduler::ClusterScheduler(std::size_t total_ranks)
    : total_ranks_(total_ranks) {
  require(total_ranks > 0, "ClusterScheduler: total_ranks must be > 0");
}

Schedule ClusterScheduler::schedule(
    const std::vector<JobRequest>& jobs) const {
  Schedule out;
  out.total_ranks = total_ranks_;
  std::vector<double> available(total_ranks_, 0.0);
  std::vector<std::size_t> index(total_ranks_);

  for (const JobRequest& job : jobs) {
    require(job.ranks > 0, "schedule: job needs at least one rank");
    require(job.ranks <= total_ranks_,
            "schedule: job '" + job.trial.key() + "' requests " +
                std::to_string(job.ranks) + " ranks but the allocation has " +
                std::to_string(total_ranks_));
    require(job.seconds >= 0.0, "schedule: negative duration");

    // Pick the job.ranks ranks that free earliest (stable by rank id).
    std::iota(index.begin(), index.end(), 0);
    std::stable_sort(index.begin(), index.end(),
                     [&](std::size_t a, std::size_t b) {
                       return available[a] < available[b];
                     });
    ScheduledJob placed;
    placed.request = job;
    placed.rank_ids.assign(index.begin(),
                           index.begin() + static_cast<long>(job.ranks));
    double start = 0.0;
    for (std::size_t r : placed.rank_ids) start = std::max(start, available[r]);
    placed.start_s = start;
    placed.end_s = start + job.seconds;
    for (std::size_t r : placed.rank_ids) available[r] = placed.end_s;
    out.makespan_s = std::max(out.makespan_s, placed.end_s);
    out.busy_rank_seconds +=
        static_cast<double>(job.ranks) * job.seconds;
    out.jobs.push_back(std::move(placed));
  }
  return out;
}

Schedule ClusterScheduler::schedule_lpt(std::vector<JobRequest> jobs) const {
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const JobRequest& a, const JobRequest& b) {
                     return a.seconds * static_cast<double>(a.ranks) >
                            b.seconds * static_cast<double>(b.ranks);
                   });
  return schedule(jobs);
}

}  // namespace candle::supervisor
