// Cluster job scheduler for hyperparameter campaigns.
//
// The CANDLE supervisor launches many training jobs onto an allocation of
// nodes/GPUs. This is a deterministic list scheduler: each job requests a
// number of ranks and an estimated duration; jobs are placed on the ranks
// that free up earliest. Used to plan campaign makespans on the simulated
// Summit/Theta allocations.
#pragma once

#include <cstddef>
#include <vector>

#include "supervisor/search_space.h"

namespace candle::supervisor {

/// A job to place: `trial` is evaluated on `ranks` ranks for an estimated
/// `seconds` of wall-clock.
struct JobRequest {
  Trial trial;
  std::size_t ranks = 1;
  double seconds = 0.0;
};

/// Placement decision for one job.
struct ScheduledJob {
  JobRequest request;
  double start_s = 0.0;
  double end_s = 0.0;
  std::vector<std::size_t> rank_ids;  // which cluster ranks it occupies
};

/// Outcome of scheduling a whole campaign.
struct Schedule {
  std::vector<ScheduledJob> jobs;
  double makespan_s = 0.0;      // completion time of the last job
  double busy_rank_seconds = 0.0;  // sum of job ranks * duration
  std::size_t total_ranks = 0;

  /// Allocation utilization in [0, 1]: busy rank-seconds over
  /// total_ranks * makespan.
  [[nodiscard]] double utilization() const;
};

/// Deterministic earliest-available list scheduler over `total_ranks`
/// identical ranks. Jobs are placed in the order given (FIFO) on the ranks
/// with the smallest available time; a job starts when all its ranks are
/// free. Throws InvalidArgument when a job requests more ranks than exist.
class ClusterScheduler {
 public:
  explicit ClusterScheduler(std::size_t total_ranks);

  [[nodiscard]] Schedule schedule(const std::vector<JobRequest>& jobs) const;

  /// Convenience: schedules jobs in decreasing-duration order (LPT), which
  /// bounds makespan within 4/3 of optimal for identical machines.
  [[nodiscard]] Schedule schedule_lpt(std::vector<JobRequest> jobs) const;

 private:
  std::size_t total_ranks_;
};

}  // namespace candle::supervisor
