#include "supervisor/search_space.h"

#include "common/error.h"
#include "common/string_util.h"

namespace candle::supervisor {

std::string Trial::key() const {
  return strprintf("e%zu_b%zu_lr%g_%s", epochs, batch, learning_rate,
                   optimizer.c_str());
}

std::size_t SearchSpace::grid_size() const {
  return epochs.size() * batches.size() * learning_rates.size() *
         optimizers.size();
}

void SearchSpace::validate() const {
  require(!epochs.empty(), "SearchSpace: epochs axis is empty");
  require(!batches.empty(), "SearchSpace: batches axis is empty");
  require(!learning_rates.empty(), "SearchSpace: learning_rates axis is empty");
  require(!optimizers.empty(), "SearchSpace: optimizers axis is empty");
}

std::vector<Trial> grid_search(const SearchSpace& space) {
  space.validate();
  std::vector<Trial> trials;
  trials.reserve(space.grid_size());
  std::size_t id = 0;
  for (std::size_t e : space.epochs)
    for (std::size_t b : space.batches)
      for (double lr : space.learning_rates)
        for (const std::string& opt : space.optimizers)
          trials.push_back(Trial{id++, e, b, lr, opt});
  return trials;
}

std::vector<Trial> random_search(const SearchSpace& space, std::size_t count,
                                 std::uint64_t seed) {
  space.validate();
  Rng rng(seed);
  std::vector<Trial> trials;
  trials.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Trial t;
    t.id = i;
    t.epochs = space.epochs[rng.uniform_index(space.epochs.size())];
    t.batch = space.batches[rng.uniform_index(space.batches.size())];
    t.learning_rate =
        space.learning_rates[rng.uniform_index(space.learning_rates.size())];
    t.optimizer =
        space.optimizers[rng.uniform_index(space.optimizers.size())];
    trials.push_back(std::move(t));
  }
  return trials;
}

namespace {

/// Stratified index sequence: a reshuffled cycle over [0, n).
class StratifiedAxis {
 public:
  StratifiedAxis(std::size_t n, Rng& rng) : n_(n), rng_(&rng) { refill(); }

  std::size_t next() {
    if (pos_ == order_.size()) refill();
    return order_[pos_++];
  }

 private:
  void refill() {
    order_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) order_[i] = i;
    rng_->shuffle(order_);
    pos_ = 0;
  }
  std::size_t n_;
  Rng* rng_;
  std::vector<std::size_t> order_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<Trial> stratified_search(const SearchSpace& space,
                                     std::size_t count, std::uint64_t seed) {
  space.validate();
  Rng rng(seed);
  StratifiedAxis ax_e(space.epochs.size(), rng);
  StratifiedAxis ax_b(space.batches.size(), rng);
  StratifiedAxis ax_lr(space.learning_rates.size(), rng);
  StratifiedAxis ax_opt(space.optimizers.size(), rng);
  std::vector<Trial> trials;
  trials.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Trial t;
    t.id = i;
    t.epochs = space.epochs[ax_e.next()];
    t.batch = space.batches[ax_b.next()];
    t.learning_rate = space.learning_rates[ax_lr.next()];
    t.optimizer = space.optimizers[ax_opt.next()];
    trials.push_back(std::move(t));
  }
  return trials;
}

}  // namespace candle::supervisor
