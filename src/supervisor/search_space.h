// Hyperparameter search space for the CANDLE/Supervisor workflow.
//
// The CANDLE system (paper Fig 1b, [33]) drives the benchmarks through a
// supervisor that performs hyperparameter optimization over epochs, batch
// sizes, and learning rates — exactly the parameters this paper studies.
// This module defines the search space and the grid/random samplers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"

namespace candle::supervisor {

/// One hyperparameter configuration to evaluate.
struct Trial {
  std::size_t id = 0;
  std::size_t epochs = 1;
  std::size_t batch = 32;
  double learning_rate = 0.001;
  std::string optimizer = "sgd";

  /// Stable human-readable key, e.g. "e8_b20_lr0.001_sgd".
  [[nodiscard]] std::string key() const;
};

/// Axis-aligned discrete search space.
struct SearchSpace {
  std::vector<std::size_t> epochs;
  std::vector<std::size_t> batches;
  std::vector<double> learning_rates;
  std::vector<std::string> optimizers;

  /// Total number of grid points.
  [[nodiscard]] std::size_t grid_size() const;

  /// Throws InvalidArgument when any axis is empty.
  void validate() const;
};

/// Full Cartesian grid, in deterministic axis-major order.
std::vector<Trial> grid_search(const SearchSpace& space);

/// `count` uniform random draws (with replacement) from the space.
std::vector<Trial> random_search(const SearchSpace& space, std::size_t count,
                                 std::uint64_t seed);

/// Latin-hypercube-style draw: `count` samples that stratify each axis as
/// evenly as possible (no axis value repeats until all are used).
std::vector<Trial> stratified_search(const SearchSpace& space,
                                     std::size_t count, std::uint64_t seed);

}  // namespace candle::supervisor
