#include "supervisor/supervisor.h"

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "common/stopwatch.h"

namespace candle::supervisor {

ResultsDb run_campaign(const CampaignConfig& config,
                       const std::vector<Trial>& trials) {
  ResultsDb db;
  const ScaledGeometry geometry =
      scaled_geometry(config.benchmark, config.scale);
  const BenchmarkData data =
      config.mode == EvalMode::kRealTraining
          ? make_benchmark_data(config.benchmark, geometry, config.seed)
          : BenchmarkData{};

  for (const Trial& trial : trials) {
    TrialResult result;
    result.trial = trial;
    try {
      if (config.mode == EvalMode::kRealTraining) {
        nn::Model model = build_model(config.benchmark, geometry);
        model.compile({geometry.features},
                      nn::make_optimizer(trial.optimizer, trial.learning_rate),
                      nn::make_loss(benchmark_loss(config.benchmark)),
                      config.seed + trial.id);
        nn::FitOptions fit;
        fit.epochs = trial.epochs;
        fit.batch_size = trial.batch;
        fit.classification = benchmark_is_classification(config.benchmark);
        Stopwatch watch;
        const nn::History history = model.fit(data.train, fit);
        result.train_seconds = watch.seconds();
        result.metric = history.final_accuracy();
        result.loss = history.final_loss();
      } else {
        sim::RunSimulator simulator(*config.machine,
                                    profile_for(config.benchmark));
        sim::RunPlan plan;
        plan.ranks = config.ranks_per_trial;
        plan.epochs_per_rank = trial.epochs;
        plan.batch_per_rank = trial.batch;
        const sim::SimResult r = simulator.simulate(plan);
        result.train_seconds = r.phases.total();
        result.energy_joules = r.total_energy_j;
      }
    } catch (const Error& err) {
      result.failed = true;
      result.failure_reason = err.what();
      log_warn() << "trial " << trial.key() << " failed: " << err.what();
    }
    db.record(std::move(result));
  }
  return db;
}

HalvingResult successive_halving(const CampaignConfig& config,
                                 std::vector<Trial> candidates,
                                 std::size_t initial_epochs,
                                 std::size_t max_epochs,
                                 std::size_t reduction) {
  require(config.mode == EvalMode::kRealTraining,
          "successive_halving: real-training mode only");
  require(!candidates.empty(), "successive_halving: no candidates");
  require(initial_epochs > 0 && max_epochs >= initial_epochs,
          "successive_halving: bad epoch budgets");
  require(reduction >= 2, "successive_halving: reduction must be >= 2");

  HalvingResult result;
  std::size_t epochs = initial_epochs;
  TrialResult latest_best;

  while (true) {
    ++result.rungs;
    // Evaluate every surviving candidate at the current fidelity.
    std::vector<Trial> rung = candidates;
    for (Trial& t : rung) t.epochs = epochs;
    const ResultsDb rung_db = run_campaign(config, rung);
    std::vector<TrialResult> ranked = rung_db.ranked();
    for (const TrialResult& r : rung_db.all()) result.db.record(r);
    require(!ranked.empty() && !ranked.front().failed,
            "successive_halving: every candidate failed");
    latest_best = ranked.front();

    const std::size_t keep =
        std::max<std::size_t>(1, candidates.size() / reduction);
    if (keep == candidates.size() && candidates.size() > 1) break;
    std::vector<Trial> survivors;
    survivors.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i)
      if (!ranked[i].failed) survivors.push_back(ranked[i].trial);
    require(!survivors.empty(), "successive_halving: no survivors");
    candidates = std::move(survivors);

    if (candidates.size() == 1 || epochs * reduction > max_epochs) break;
    epochs *= reduction;
  }
  result.winner = latest_best;
  return result;
}

Schedule plan_campaign(const CampaignConfig& config,
                       const std::vector<Trial>& trials,
                       std::size_t allocation_ranks) {
  sim::RunSimulator simulator(*config.machine, profile_for(config.benchmark));
  std::vector<JobRequest> jobs;
  jobs.reserve(trials.size());
  for (const Trial& trial : trials) {
    JobRequest job;
    job.trial = trial;
    job.ranks = config.ranks_per_trial;
    sim::RunPlan plan;
    plan.ranks = config.ranks_per_trial;
    plan.epochs_per_rank = trial.epochs;
    plan.batch_per_rank = trial.batch;
    try {
      job.seconds = simulator.simulate(plan).phases.total();
    } catch (const OutOfMemory&) {
      continue;  // unschedulable configurations are dropped from the plan
    }
    jobs.push_back(std::move(job));
  }
  return ClusterScheduler(allocation_ranks).schedule_lpt(std::move(jobs));
}

}  // namespace candle::supervisor
