// CANDLE/Supervisor: the hyperparameter-optimization workflow driver
// (paper Fig 1b, reference [33]).
//
// Evaluates a set of trials against a benchmark, either by REAL scaled-down
// training (metric = measured accuracy/R²) or through the calibrated
// simulator (time/energy at full scale), records everything in a ResultsDb,
// and plans the campaign's placement on a cluster allocation with the list
// scheduler.
#pragma once

#include "candle/models.h"
#include "sim/run_sim.h"
#include "supervisor/results_db.h"
#include "supervisor/scheduler.h"

namespace candle::supervisor {

/// How a trial is evaluated.
enum class EvalMode {
  kRealTraining,  // train the scaled benchmark, measure accuracy
  kSimulated,     // cost-model time/energy only (metric stays 0)
};

/// Campaign configuration.
struct CampaignConfig {
  BenchmarkId benchmark = BenchmarkId::kNT3;
  EvalMode mode = EvalMode::kRealTraining;
  double scale = 0.0015;          // dataset scale for real training
  std::size_t ranks_per_trial = 1;  // allocation granularity
  const sim::Machine* machine = &sim::Machine::summit();
  std::uint64_t seed = 7;
};

/// Runs all trials and returns the filled database. OOM (or other
/// configuration failures) are recorded as failed trials, not thrown —
/// a hyperparameter sweep must survive bad configurations.
ResultsDb run_campaign(const CampaignConfig& config,
                       const std::vector<Trial>& trials);

/// Plans the campaign's execution on `allocation_ranks` ranks using the
/// simulator's per-trial runtime estimates, and returns the schedule.
Schedule plan_campaign(const CampaignConfig& config,
                       const std::vector<Trial>& trials,
                       std::size_t allocation_ranks);

/// Successive halving (Hyperband's inner loop): evaluates all candidates
/// at `initial_epochs`, keeps the best 1/`reduction` by metric, multiplies
/// the epoch budget by `reduction`, and repeats until one survivor remains
/// (or epochs would exceed `max_epochs`). Far cheaper than grid search at
/// equal final fidelity. Real-training mode only. Returns the full
/// database (every evaluation at every rung) plus the winner via
/// `ResultsDb::best()` semantics on the final rung.
struct HalvingResult {
  ResultsDb db;             // all rung evaluations
  TrialResult winner;       // highest-fidelity evaluation of the survivor
  std::size_t rungs = 0;    // number of halving rounds executed
};
HalvingResult successive_halving(const CampaignConfig& config,
                                 std::vector<Trial> candidates,
                                 std::size_t initial_epochs,
                                 std::size_t max_epochs,
                                 std::size_t reduction = 2);

}  // namespace candle::supervisor
