#include "tensor/conv.h"

#include <algorithm>

#include "common/error.h"
#include "common/parallel.h"

namespace candle {
namespace {

struct ConvDims {
  std::size_t b, L, cin, K, cout, lout;
};

ConvDims check_conv_operands(const Tensor& x, const Tensor& w,
                             std::size_t stride, const char* op) {
  require(x.rank() == 3, std::string(op) + ": x must be (b, L, Cin)");
  require(w.rank() == 3, std::string(op) + ": w must be (K, Cin, Cout)");
  ConvDims d;
  d.b = x.dim(0);
  d.L = x.dim(1);
  d.cin = x.dim(2);
  d.K = w.dim(0);
  d.cout = w.dim(2);
  require(w.dim(1) == d.cin, std::string(op) + ": channel mismatch");
  d.lout = conv1d_out_length(d.L, d.K, stride);
  return d;
}

}  // namespace

std::size_t conv1d_out_length(std::size_t length, std::size_t window,
                              std::size_t stride) {
  require(window > 0 && stride > 0, "conv1d: window and stride must be > 0");
  require(length >= window,
          "conv1d: input length " + std::to_string(length) +
              " shorter than window " + std::to_string(window));
  return (length - window) / stride + 1;
}

void im2col(const Tensor& x, std::size_t kernel, std::size_t stride,
            Tensor& cols) {
  require(x.rank() == 3, "im2col: x must be (b, L, Cin)");
  const std::size_t b = x.dim(0), L = x.dim(1), cin = x.dim(2);
  const std::size_t lout = conv1d_out_length(L, kernel, stride);
  const std::size_t row_w = kernel * cin;
  const Shape want{b * lout, row_w};
  if (cols.shape() != want) cols = Tensor(want);
  const float* px = x.data();
  float* pc = cols.data();
  // Channels-last makes each window a contiguous K*Cin slice of the input,
  // so the expansion is a strided copy. Output rows are disjoint, so the
  // flattened (batch, step) axis parallelizes directly.
  parallel::parallel_for(0, b * lout, 64, [&](std::size_t r0,
                                              std::size_t r1) {
    for (std::size_t r = r0; r < r1; ++r) {
      const std::size_t bi = r / lout;
      const std::size_t t = r % lout;
      const float* src = px + bi * L * cin + t * stride * cin;
      std::copy(src, src + row_w, pc + r * row_w);
    }
  });
}

void col2im(const Tensor& cols, std::size_t kernel, std::size_t stride,
            Tensor& dx) {
  require(dx.rank() == 3, "col2im: dx must be (b, L, Cin)");
  const std::size_t b = dx.dim(0), L = dx.dim(1), cin = dx.dim(2);
  const std::size_t lout = conv1d_out_length(L, kernel, stride);
  const std::size_t row_w = kernel * cin;
  require(cols.rank() == 2 && cols.dim(0) == b * lout &&
              cols.dim(1) == row_w,
          "col2im: cols shape mismatch: " + shape_to_string(cols.shape()));
  dx.zero();
  const float* pc = cols.data();
  float* pdx = dx.data();
  // Overlapping windows scatter-add into the same dx elements within one
  // batch element, so the batch axis is the only safely disjoint split;
  // the serial in-order t loop per element keeps the fp sums identical to
  // the serial schedule.
  parallel::parallel_for(0, b, 1, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t bi = b0; bi < b1; ++bi) {
      const float* cb = pc + bi * lout * row_w;
      float* dxb = pdx + bi * L * cin;
      for (std::size_t t = 0; t < lout; ++t) {
        const float* src = cb + t * row_w;
        float* dst = dxb + t * stride * cin;
        for (std::size_t i = 0; i < row_w; ++i) dst[i] += src[i];
      }
    }
  });
}

void conv1d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                    std::size_t stride, Tensor& y, Conv1dWorkspace* ws,
                    EpilogueOp act) {
  const ConvDims d = check_conv_operands(x, w, stride, "conv1d_forward");
  require(bias.rank() == 1 && bias.dim(0) == d.cout,
          "conv1d_forward: bias must be (Cout)");

  Conv1dWorkspace local;
  Conv1dWorkspace& work = ws != nullptr ? *ws : local;
  im2col(x, d.K, stride, work.cols);

  // The GEMM overwrites every output element, so y's contents never need
  // zeroing — reusing the caller's buffer skips a fill of the (often
  // large) activation tensor on every step.
  const Shape want{d.b, d.lout, d.cout};
  if (y.shape() != want) y = Tensor(want);

  // y(b*Lout, Cout) = cols(b*Lout, K*Cin) * w(K*Cin, Cout) — the weight
  // tensor's (K, Cin, Cout) layout is already the packed GEMM operand.
  Epilogue ep;
  ep.bias = bias.data();
  ep.op = act;
  gemm_raw(false, false, d.b * d.lout, d.cout, d.K * d.cin,
           work.cols.data(), w.data(), y.data(), ep);
}

Tensor conv1d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                      std::size_t stride, Conv1dWorkspace* ws,
                      EpilogueOp act) {
  Tensor y;
  conv1d_forward(x, w, bias, stride, y, ws, act);
  return y;
}

Tensor conv1d_forward_naive(const Tensor& x, const Tensor& w,
                            const Tensor& bias, std::size_t stride) {
  const ConvDims d =
      check_conv_operands(x, w, stride, "conv1d_forward_naive");
  require(bias.rank() == 1 && bias.dim(0) == d.cout,
          "conv1d_forward_naive: bias must be (Cout)");

  Tensor y({d.b, d.lout, d.cout});
  const float* px = x.data();
  const float* pw = w.data();
  const float* pb = bias.data();
  float* py = y.data();

  for (std::size_t bi = 0; bi < d.b; ++bi) {
    const float* xb = px + bi * d.L * d.cin;
    float* yb = py + bi * d.lout * d.cout;
    for (std::size_t t = 0; t < d.lout; ++t) {
      float* yrow = yb + t * d.cout;
      for (std::size_t oc = 0; oc < d.cout; ++oc) yrow[oc] = pb[oc];
      const float* xwin = xb + t * stride * d.cin;
      for (std::size_t k = 0; k < d.K; ++k) {
        const float* xrow = xwin + k * d.cin;
        const float* wrow = pw + k * d.cin * d.cout;
        for (std::size_t ic = 0; ic < d.cin; ++ic) {
          const float xv = xrow[ic];
          const float* wvec = wrow + ic * d.cout;
          for (std::size_t oc = 0; oc < d.cout; ++oc)
            yrow[oc] += xv * wvec[oc];
        }
      }
    }
  }
  return y;
}

void conv1d_backward(const Tensor& x, const Tensor& w, const Tensor& dy,
                     std::size_t stride, Tensor& dx, Tensor& dw,
                     Tensor& dbias, Conv1dWorkspace* ws) {
  const ConvDims d = check_conv_operands(x, w, stride, "conv1d_backward");
  require(dy.rank() == 3 && dy.dim(0) == d.b && dy.dim(1) == d.lout &&
              dy.dim(2) == d.cout,
          "conv1d_backward: dy shape mismatch");
  check_same_shape(dx, x, "conv1d_backward dx");
  check_same_shape(dw, w, "conv1d_backward dw");
  require(dbias.rank() == 1 && dbias.dim(0) == d.cout,
          "conv1d_backward: dbias must be (Cout)");

  Conv1dWorkspace local;
  Conv1dWorkspace& work = ws != nullptr ? *ws : local;
  im2col(x, d.K, stride, work.cols);

  const std::size_t rows = d.b * d.lout;
  const std::size_t row_w = d.K * d.cin;
  const float* pdy = dy.data();

  dbias.zero();
  float* pdb = dbias.data();
  for (std::size_t r = 0; r < rows; ++r) {
    const float* dyrow = pdy + r * d.cout;
    for (std::size_t oc = 0; oc < d.cout; ++oc) pdb[oc] += dyrow[oc];
  }

  // dW(K*Cin, Cout) = cols^T * dY; GEMM overwrites, no pre-zero needed.
  gemm_raw(true, false, row_w, d.cout, rows, work.cols.data(), pdy,
           dw.data());

  // d(cols)(b*Lout, K*Cin) = dY * W^T, then scatter back into dx.
  const Shape want{rows, row_w};
  if (work.dcols.shape() != want) work.dcols = Tensor(want);
  gemm_raw(false, true, rows, row_w, d.cout, pdy, w.data(),
           work.dcols.data());
  col2im(work.dcols, d.K, stride, dx);
}

Tensor maxpool1d_forward(const Tensor& x, std::size_t window,
                         std::size_t stride,
                         std::vector<std::size_t>& argmax) {
  require(x.rank() == 3, "maxpool1d_forward: x must be (b, L, C)");
  const std::size_t b = x.dim(0), L = x.dim(1), C = x.dim(2);
  const std::size_t lout = conv1d_out_length(L, window, stride);
  Tensor y({b, lout, C});
  argmax.assign(y.numel(), 0);
  const float* px = x.data();
  float* py = y.data();

  for (std::size_t bi = 0; bi < b; ++bi) {
    const float* xb = px + bi * L * C;
    for (std::size_t t = 0; t < lout; ++t) {
      const std::size_t base = t * stride;
      for (std::size_t c = 0; c < C; ++c) {
        std::size_t best = base * C + c;
        float bestv = xb[best];
        for (std::size_t k = 1; k < window; ++k) {
          const std::size_t idx = (base + k) * C + c;
          if (xb[idx] > bestv) {
            bestv = xb[idx];
            best = idx;
          }
        }
        const std::size_t oidx = (bi * lout + t) * C + c;
        py[oidx] = bestv;
        argmax[oidx] = bi * L * C + best;
      }
    }
  }
  return y;
}

Tensor maxpool1d_backward(const Tensor& dy, const Shape& x_shape,
                          const std::vector<std::size_t>& argmax) {
  require(dy.numel() == argmax.size(),
          "maxpool1d_backward: argmax size mismatch");
  Tensor dx(x_shape);
  float* pdx = dx.data();
  const float* pdy = dy.data();
  for (std::size_t i = 0; i < argmax.size(); ++i) pdx[argmax[i]] += pdy[i];
  return dx;
}

Tensor global_avgpool1d_forward(const Tensor& x) {
  require(x.rank() == 3, "global_avgpool1d: x must be (b, L, C)");
  const std::size_t b = x.dim(0), L = x.dim(1), C = x.dim(2);
  require(L > 0, "global_avgpool1d: empty time axis");
  Tensor y({b, C});
  const float* px = x.data();
  float* py = y.data();
  const float inv = 1.0f / static_cast<float>(L);
  for (std::size_t bi = 0; bi < b; ++bi)
    for (std::size_t t = 0; t < L; ++t)
      for (std::size_t c = 0; c < C; ++c)
        py[bi * C + c] += px[(bi * L + t) * C + c] * inv;
  return y;
}

Tensor global_avgpool1d_backward(const Tensor& dy, const Shape& x_shape) {
  require(x_shape.size() == 3, "global_avgpool1d_backward: x must be rank-3");
  const std::size_t b = x_shape[0], L = x_shape[1], C = x_shape[2];
  require(dy.rank() == 2 && dy.dim(0) == b && dy.dim(1) == C,
          "global_avgpool1d_backward: dy shape mismatch");
  Tensor dx(x_shape);
  const float inv = 1.0f / static_cast<float>(L);
  float* pdx = dx.data();
  const float* pdy = dy.data();
  for (std::size_t bi = 0; bi < b; ++bi)
    for (std::size_t t = 0; t < L; ++t)
      for (std::size_t c = 0; c < C; ++c)
        pdx[(bi * L + t) * C + c] = pdy[bi * C + c] * inv;
  return dx;
}

}  // namespace candle
