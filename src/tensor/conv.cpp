#include "tensor/conv.h"

#include "common/error.h"

namespace candle {

std::size_t conv1d_out_length(std::size_t length, std::size_t window,
                              std::size_t stride) {
  require(window > 0 && stride > 0, "conv1d: window and stride must be > 0");
  require(length >= window,
          "conv1d: input length " + std::to_string(length) +
              " shorter than window " + std::to_string(window));
  return (length - window) / stride + 1;
}

Tensor conv1d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                      std::size_t stride) {
  require(x.rank() == 3, "conv1d_forward: x must be (b, L, Cin)");
  require(w.rank() == 3, "conv1d_forward: w must be (K, Cin, Cout)");
  const std::size_t b = x.dim(0), L = x.dim(1), cin = x.dim(2);
  const std::size_t K = w.dim(0), cout = w.dim(2);
  require(w.dim(1) == cin, "conv1d_forward: channel mismatch");
  require(bias.rank() == 1 && bias.dim(0) == cout,
          "conv1d_forward: bias must be (Cout)");
  const std::size_t lout = conv1d_out_length(L, K, stride);

  Tensor y({b, lout, cout});
  const float* px = x.data();
  const float* pw = w.data();
  const float* pb = bias.data();
  float* py = y.data();

  for (std::size_t bi = 0; bi < b; ++bi) {
    const float* xb = px + bi * L * cin;
    float* yb = py + bi * lout * cout;
    for (std::size_t t = 0; t < lout; ++t) {
      float* yrow = yb + t * cout;
      for (std::size_t oc = 0; oc < cout; ++oc) yrow[oc] = pb[oc];
      const float* xwin = xb + t * stride * cin;
      for (std::size_t k = 0; k < K; ++k) {
        const float* xrow = xwin + k * cin;
        const float* wrow = pw + k * cin * cout;
        for (std::size_t ic = 0; ic < cin; ++ic) {
          const float xv = xrow[ic];
          if (xv == 0.0f) continue;
          const float* wvec = wrow + ic * cout;
          for (std::size_t oc = 0; oc < cout; ++oc) yrow[oc] += xv * wvec[oc];
        }
      }
    }
  }
  return y;
}

void conv1d_backward(const Tensor& x, const Tensor& w, const Tensor& dy,
                     std::size_t stride, Tensor& dx, Tensor& dw,
                     Tensor& dbias) {
  const std::size_t b = x.dim(0), L = x.dim(1), cin = x.dim(2);
  const std::size_t K = w.dim(0), cout = w.dim(2);
  const std::size_t lout = conv1d_out_length(L, K, stride);
  require(dy.rank() == 3 && dy.dim(0) == b && dy.dim(1) == lout &&
              dy.dim(2) == cout,
          "conv1d_backward: dy shape mismatch");
  check_same_shape(dx, x, "conv1d_backward dx");
  check_same_shape(dw, w, "conv1d_backward dw");
  require(dbias.rank() == 1 && dbias.dim(0) == cout,
          "conv1d_backward: dbias must be (Cout)");

  dx.zero();
  dw.zero();
  dbias.zero();

  const float* px = x.data();
  const float* pw = w.data();
  const float* pdy = dy.data();
  float* pdx = dx.data();
  float* pdw = dw.data();
  float* pdb = dbias.data();

  for (std::size_t bi = 0; bi < b; ++bi) {
    const float* xb = px + bi * L * cin;
    float* dxb = pdx + bi * L * cin;
    const float* dyb = pdy + bi * lout * cout;
    for (std::size_t t = 0; t < lout; ++t) {
      const float* dyrow = dyb + t * cout;
      for (std::size_t oc = 0; oc < cout; ++oc) pdb[oc] += dyrow[oc];
      const std::size_t base = t * stride * cin;
      for (std::size_t k = 0; k < K; ++k) {
        const float* xrow = xb + base + k * cin;
        float* dxrow = dxb + base + k * cin;
        const float* wrow = pw + k * cin * cout;
        float* dwrow = pdw + k * cin * cout;
        for (std::size_t ic = 0; ic < cin; ++ic) {
          const float xv = xrow[ic];
          const float* wvec = wrow + ic * cout;
          float* dwvec = dwrow + ic * cout;
          double dxacc = 0.0;
          for (std::size_t oc = 0; oc < cout; ++oc) {
            const float g = dyrow[oc];
            dwvec[oc] += xv * g;
            dxacc += static_cast<double>(wvec[oc]) * g;
          }
          dxrow[ic] += static_cast<float>(dxacc);
        }
      }
    }
  }
}

Tensor maxpool1d_forward(const Tensor& x, std::size_t window,
                         std::size_t stride,
                         std::vector<std::size_t>& argmax) {
  require(x.rank() == 3, "maxpool1d_forward: x must be (b, L, C)");
  const std::size_t b = x.dim(0), L = x.dim(1), C = x.dim(2);
  const std::size_t lout = conv1d_out_length(L, window, stride);
  Tensor y({b, lout, C});
  argmax.assign(y.numel(), 0);
  const float* px = x.data();
  float* py = y.data();

  for (std::size_t bi = 0; bi < b; ++bi) {
    const float* xb = px + bi * L * C;
    for (std::size_t t = 0; t < lout; ++t) {
      const std::size_t base = t * stride;
      for (std::size_t c = 0; c < C; ++c) {
        std::size_t best = base * C + c;
        float bestv = xb[best];
        for (std::size_t k = 1; k < window; ++k) {
          const std::size_t idx = (base + k) * C + c;
          if (xb[idx] > bestv) {
            bestv = xb[idx];
            best = idx;
          }
        }
        const std::size_t oidx = (bi * lout + t) * C + c;
        py[oidx] = bestv;
        argmax[oidx] = bi * L * C + best;
      }
    }
  }
  return y;
}

Tensor maxpool1d_backward(const Tensor& dy, const Shape& x_shape,
                          const std::vector<std::size_t>& argmax) {
  require(dy.numel() == argmax.size(),
          "maxpool1d_backward: argmax size mismatch");
  Tensor dx(x_shape);
  float* pdx = dx.data();
  const float* pdy = dy.data();
  for (std::size_t i = 0; i < argmax.size(); ++i) pdx[argmax[i]] += pdy[i];
  return dx;
}

Tensor global_avgpool1d_forward(const Tensor& x) {
  require(x.rank() == 3, "global_avgpool1d: x must be (b, L, C)");
  const std::size_t b = x.dim(0), L = x.dim(1), C = x.dim(2);
  require(L > 0, "global_avgpool1d: empty time axis");
  Tensor y({b, C});
  const float* px = x.data();
  float* py = y.data();
  const float inv = 1.0f / static_cast<float>(L);
  for (std::size_t bi = 0; bi < b; ++bi)
    for (std::size_t t = 0; t < L; ++t)
      for (std::size_t c = 0; c < C; ++c)
        py[bi * C + c] += px[(bi * L + t) * C + c] * inv;
  return y;
}

Tensor global_avgpool1d_backward(const Tensor& dy, const Shape& x_shape) {
  require(x_shape.size() == 3, "global_avgpool1d_backward: x must be rank-3");
  const std::size_t b = x_shape[0], L = x_shape[1], C = x_shape[2];
  require(dy.rank() == 2 && dy.dim(0) == b && dy.dim(1) == C,
          "global_avgpool1d_backward: dy shape mismatch");
  Tensor dx(x_shape);
  const float inv = 1.0f / static_cast<float>(L);
  float* pdx = dx.data();
  const float* pdy = dy.data();
  for (std::size_t bi = 0; bi < b; ++bi)
    for (std::size_t t = 0; t < L; ++t)
      for (std::size_t c = 0; c < C; ++c)
        pdx[(bi * L + t) * C + c] = pdy[bi * C + c] * inv;
  return dx;
}

}  // namespace candle
