// 1-D convolution and max-pooling kernels (channels-last layout), the
// building blocks of the NT3 convolutional classifier.
//
// Layout convention (matches Keras Conv1D with channels_last):
//   activations: (batch, length, channels)
//   conv weights: (kernel, in_channels, out_channels)
// Padding is 'valid' and dilation is 1, which is what NT3 uses.
#pragma once

#include "tensor/tensor.h"

namespace candle {

/// Output length of a valid 1-D convolution / pooling window sweep.
/// Requires length >= window.
std::size_t conv1d_out_length(std::size_t length, std::size_t window,
                              std::size_t stride);

/// Forward convolution: x (b, L, Cin), w (K, Cin, Cout), bias (Cout)
/// -> y (b, Lout, Cout).
Tensor conv1d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                      std::size_t stride);

/// Gradients of the valid conv. `dy` is (b, Lout, Cout).
/// Outputs are written to dx/dw/dbias which must be pre-shaped like
/// x/w/bias (they are zeroed first).
void conv1d_backward(const Tensor& x, const Tensor& w, const Tensor& dy,
                     std::size_t stride, Tensor& dx, Tensor& dw,
                     Tensor& dbias);

/// Max-pool forward: x (b, L, C) -> y (b, Lout, C); `argmax` records, for
/// every output element, the flat input index that won (for backward).
Tensor maxpool1d_forward(const Tensor& x, std::size_t window,
                         std::size_t stride,
                         std::vector<std::size_t>& argmax);

/// Max-pool backward: routes dy elements to the recorded argmax positions.
Tensor maxpool1d_backward(const Tensor& dy, const Shape& x_shape,
                          const std::vector<std::size_t>& argmax);

/// Global average pool over time: x (b, L, C) -> y (b, C).
Tensor global_avgpool1d_forward(const Tensor& x);
Tensor global_avgpool1d_backward(const Tensor& dy, const Shape& x_shape);

}  // namespace candle
