// 1-D convolution and max-pooling kernels (channels-last layout), the
// building blocks of the NT3 convolutional classifier.
//
// Layout convention (matches Keras Conv1D with channels_last):
//   activations: (batch, length, channels)
//   conv weights: (kernel, in_channels, out_channels)
// Padding is 'valid' and dilation is 1, which is what NT3 uses.
//
// Conv1D forward and backward lower onto the blocked GEMM core (gemm.h)
// via an im2col buffer: with channels-last layout each sliding window is a
// contiguous K*Cin slice of the input, so im2col is a strided copy and the
// convolution becomes one (b*Lout, K*Cin) x (K*Cin, Cout) product with the
// bias fused into the GEMM epilogue.
#pragma once

#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace candle {

/// Output length of a valid 1-D convolution / pooling window sweep.
/// Requires length >= window.
std::size_t conv1d_out_length(std::size_t length, std::size_t window,
                              std::size_t stride);

/// Scratch buffers for the im2col-lowered convolution. Owned by the caller
/// (e.g. the Conv1D layer) so repeated forward/backward steps reuse the
/// allocation instead of paying a (b*Lout, K*Cin) allocation per batch.
struct Conv1dWorkspace {
  Tensor cols;   // im2col expansion of the input
  Tensor dcols;  // backward: dL/d(cols) before the col2im scatter
};

/// Expands x (b, L, Cin) into `cols` (b*Lout, K*Cin): row (bi*Lout + t) is
/// the window x[bi, t*stride .. t*stride+K-1, :] flattened in (k, ic)
/// order. `cols` is (re)allocated only when its shape is wrong.
void im2col(const Tensor& x, std::size_t kernel, std::size_t stride,
            Tensor& cols);

/// Adjoint of im2col: zeroes dx (pre-shaped (b, L, Cin)) and scatter-adds
/// every `cols` row back into its input window.
void col2im(const Tensor& cols, std::size_t kernel, std::size_t stride,
            Tensor& dx);

/// Forward convolution: x (b, L, Cin), w (K, Cin, Cout), bias (Cout)
/// -> y (b, Lout, Cout). Bias and `act` are fused into the GEMM epilogue.
/// Pass a workspace to reuse the im2col buffer across steps. `y` is
/// (re)allocated only when its shape is wrong — the GEMM overwrites every
/// element, so a reused buffer skips the zero-fill of a fresh activation
/// tensor (124 MB/step for NT3's first layer).
void conv1d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                    std::size_t stride, Tensor& y,
                    Conv1dWorkspace* ws = nullptr,
                    EpilogueOp act = EpilogueOp::kIdentity);

/// Allocating convenience overload.
Tensor conv1d_forward(const Tensor& x, const Tensor& w, const Tensor& bias,
                      std::size_t stride, Conv1dWorkspace* ws = nullptr,
                      EpilogueOp act = EpilogueOp::kIdentity);

/// Gradients of the valid conv. `dy` is (b, Lout, Cout).
/// Outputs are written to dx/dw/dbias which must be pre-shaped like
/// x/w/bias (they are zeroed first).
void conv1d_backward(const Tensor& x, const Tensor& w, const Tensor& dy,
                     std::size_t stride, Tensor& dx, Tensor& dw,
                     Tensor& dbias, Conv1dWorkspace* ws = nullptr);

/// Reference direct convolution (the seed kernel, minus its data-dependent
/// zero-skip branch). Golden baseline for tests/test_gemm.cpp and the
/// bench_micro_kernels speedup comparison — never call it from layer code.
Tensor conv1d_forward_naive(const Tensor& x, const Tensor& w,
                            const Tensor& bias, std::size_t stride);

/// Max-pool forward: x (b, L, C) -> y (b, Lout, C); `argmax` records, for
/// every output element, the flat input index that won (for backward).
Tensor maxpool1d_forward(const Tensor& x, std::size_t window,
                         std::size_t stride,
                         std::vector<std::size_t>& argmax);

/// Max-pool backward: routes dy elements to the recorded argmax positions.
Tensor maxpool1d_backward(const Tensor& dy, const Shape& x_shape,
                          const std::vector<std::size_t>& argmax);

/// Global average pool over time: x (b, L, C) -> y (b, C).
Tensor global_avgpool1d_forward(const Tensor& x);
Tensor global_avgpool1d_backward(const Tensor& dy, const Shape& x_shape);

}  // namespace candle
