#include "tensor/gemm.h"

#include <algorithm>
#include <vector>

#include "common/aligned.h"
#include "common/error.h"
#include "common/parallel.h"
#include "tensor/pack.h"

namespace candle {
namespace {

// An NR-wide packed B panel spans kGemmNR * kc floats, so with NR*4 bytes
// an exact multiple of the cache line every panel a worker consumes starts
// on its own line (no false sharing between adjacent tile columns).
static_assert(kGemmNR * sizeof(float) % kCacheLineBytes == 0,
              "packed B panels must start cache-line aligned");

// MR×NR register-tile microkernel over packed panels. `a` holds kc steps
// of MR values (panel-major), `b` holds kc steps of NR values; `acc` is
// the MR×NR accumulator tile. GCC's loop vectorizer gives up on the
// broadcast-multiply-add rank-1 update ("complicated access pattern"), so
// the kernel is written explicitly with vector extensions; the AVX2+FMA
// variant is picked at runtime so default builds stay portable x86-64.
using MicroKernelFn = void (*)(std::size_t, const float* CANDLE_RESTRICT,
                               const float* CANDLE_RESTRICT,
                               float* CANDLE_RESTRICT);

#if defined(__GNUC__) || defined(__clang__)

// aligned(4): the packed panels are only guaranteed element-aligned, so
// loads/stores must not assume vector alignment (unaligned moves are free
// on every AVX2 part anyway).
typedef float v4f
    __attribute__((vector_size(16), aligned(4), may_alias));
typedef float v8f
    __attribute__((vector_size(32), aligned(4), may_alias));

// Generic 128-bit variant: NR=16 as four 4-wide columns, MR×2 vector
// accumulators per half so the register file is not overcommitted; the B
// panel is read twice from L1.
void micro_kernel_v128(std::size_t kc, const float* CANDLE_RESTRICT a,
                       const float* CANDLE_RESTRICT b,
                       float* CANDLE_RESTRICT acc) {
  static_assert(kGemmNR == 16, "microkernel assumes NR == 16");
  for (std::size_t half = 0; half < 2; ++half) {
    v4f t[kGemmMR][2] = {};
    const float* bh = b + half * 8;
    for (std::size_t p = 0; p < kc; ++p) {
      const float* ap = a + p * kGemmMR;
      const v4f b0 = *reinterpret_cast<const v4f*>(bh + p * kGemmNR);
      const v4f b1 = *reinterpret_cast<const v4f*>(bh + p * kGemmNR + 4);
      for (std::size_t i = 0; i < kGemmMR; ++i) {
        const float av = ap[i];
        const v4f avv = {av, av, av, av};
        t[i][0] += avv * b0;
        t[i][1] += avv * b1;
      }
    }
    for (std::size_t i = 0; i < kGemmMR; ++i) {
      *reinterpret_cast<v4f*>(acc + i * kGemmNR + half * 8) = t[i][0];
      *reinterpret_cast<v4f*>(acc + i * kGemmNR + half * 8 + 4) = t[i][1];
    }
  }
}

#if defined(__x86_64__)

// AVX2+FMA variant: two 8-wide accumulators per row = 12 ymm registers,
// plus two B vectors and one broadcast. Compiled with a function-level
// target attribute so the rest of the TU (and the repo) stays baseline
// x86-64; only reached after __builtin_cpu_supports says it is safe.
__attribute__((target("avx2,fma"))) void micro_kernel_avx2(
    std::size_t kc, const float* CANDLE_RESTRICT a,
    const float* CANDLE_RESTRICT b, float* CANDLE_RESTRICT acc) {
  static_assert(kGemmNR == 16, "microkernel assumes NR == 16");
  v8f t[kGemmMR][2] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* ap = a + p * kGemmMR;
    const v8f b0 = *reinterpret_cast<const v8f*>(b + p * kGemmNR);
    const v8f b1 = *reinterpret_cast<const v8f*>(b + p * kGemmNR + 8);
    for (std::size_t i = 0; i < kGemmMR; ++i) {
      const float av = ap[i];
      const v8f avv = {av, av, av, av, av, av, av, av};
      t[i][0] += avv * b0;
      t[i][1] += avv * b1;
    }
  }
  for (std::size_t i = 0; i < kGemmMR; ++i) {
    *reinterpret_cast<v8f*>(acc + i * kGemmNR) = t[i][0];
    *reinterpret_cast<v8f*>(acc + i * kGemmNR + 8) = t[i][1];
  }
}

#endif  // __x86_64__

MicroKernelFn select_micro_kernel() {
#if defined(__x86_64__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return micro_kernel_avx2;
#endif
  return micro_kernel_v128;
}

#else  // !(__GNUC__ || __clang__)

// Scalar fallback for compilers without vector extensions; relies on the
// optimizer for whatever SIMD it can find.
void micro_kernel_scalar(std::size_t kc, const float* CANDLE_RESTRICT a,
                         const float* CANDLE_RESTRICT b,
                         float* CANDLE_RESTRICT acc) {
  for (std::size_t p = 0; p < kc; ++p) {
    const float* ap = a + p * kGemmMR;
    const float* bp = b + p * kGemmNR;
    for (std::size_t i = 0; i < kGemmMR; ++i) {
      const float av = ap[i];
      float* row = acc + i * kGemmNR;
      for (std::size_t j = 0; j < kGemmNR; ++j) row[j] += av * bp[j];
    }
  }
}

MicroKernelFn select_micro_kernel() { return micro_kernel_scalar; }

#endif  // __GNUC__ || __clang__

// Resolved once at startup; every gemm_raw call indirects through this.
const MicroKernelFn micro_kernel = select_micro_kernel();

// Writes an mr×nr accumulator tile into C. `overwrite` is true only for the
// first k-panel of a non-accumulating product; the epilogue (bias/op) fires
// only after the last k-panel, while the tile is still cache-hot.
void store_tile(float* CANDLE_RESTRICT c, std::size_t ldc, std::size_t mr,
                std::size_t nr, const float* CANDLE_RESTRICT acc,
                bool overwrite, bool last, EpilogueOp op, const float* bias) {
  for (std::size_t i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    const float* arow = acc + i * kGemmNR;
    for (std::size_t j = 0; j < nr; ++j) {
      float v = arow[j];
      if (!overwrite) v += crow[j];
      if (last) {
        if (bias != nullptr) v += bias[j];
        if (op == EpilogueOp::kRelu && v < 0.0f) v = 0.0f;
      }
      crow[j] = v;
    }
  }
}

}  // namespace

void gemm_raw(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
              std::size_t k, const float* a, const float* b, float* c,
              const Epilogue& ep) {
  require(m > 0 && n > 0 && k > 0, "gemm: dims must be > 0");
  // Row/column strides of the logical (non-transposed) operands; the
  // packing routines absorb transposition so the microkernel never sees it.
  const std::size_t rs_a = trans_a ? 1 : k;
  const std::size_t cs_a = trans_a ? m : 1;
  const std::size_t rs_b = trans_b ? 1 : n;
  const std::size_t cs_b = trans_b ? k : 1;

  // Packing buffers persist across calls (training loops call gemm once per
  // layer per step); thread_local keeps concurrent rank threads independent.
  // Aligned so panel starts sit on cache-line boundaries for the pool
  // workers that share them read-only.
  thread_local AlignedVector pack_buf_a;
  thread_local AlignedVector pack_buf_b;
  pack_buf_a.resize(kGemmMC * kGemmKC);
  pack_buf_b.resize(kGemmKC * kGemmNC);
  // Raw pointers for the parallel regions below: the lambdas run on pool
  // workers, whose own thread_local buffers are distinct (and empty) — they
  // must address the calling thread's packing storage.
  float* const pack_a_buf = pack_buf_a.data();
  float* const pack_b_buf = pack_buf_b.data();

  for (std::size_t jc = 0; jc < n; jc += kGemmNC) {
    const std::size_t nc = std::min(kGemmNC, n - jc);
    // NR-wide tile columns of this NC panel; both the B pack and the
    // macro-kernel are parallelized over this axis, so every worker packs
    // exactly the sub-panels it later consumes and all workers share the
    // one packed block (GotoBLAS-style shared-B parallelization). Results
    // are bit-identical to the serial schedule for any thread count: tile
    // boundaries, per-tile accumulation order, and the store are unchanged
    // — only which thread owns a tile column varies.
    const std::size_t jr_tiles = (nc + kGemmNR - 1) / kGemmNR;
    for (std::size_t pc = 0; pc < k; pc += kGemmKC) {
      const std::size_t kc = std::min(kGemmKC, k - pc);
      const bool first = pc == 0;
      const bool last = pc + kc == k;
      const float* bblock = b + pc * rs_b + jc * cs_b;
      parallel::parallel_for(0, jr_tiles, 1, [&](std::size_t t0,
                                                 std::size_t t1) {
        for (std::size_t t = t0; t < t1; ++t) {
          const std::size_t jr = t * kGemmNR;
          detail::pack_b(bblock + jr * cs_b, rs_b, cs_b, kc,
                         std::min(kGemmNR, nc - jr), kGemmNR,
                         pack_b_buf + jr * kc);
        }
      });
      for (std::size_t ic = 0; ic < m; ic += kGemmMC) {
        const std::size_t mc = std::min(kGemmMC, m - ic);
        detail::pack_a(a + ic * rs_a + pc * cs_a, rs_a, cs_a, mc, kc,
                       kGemmMR, pack_a_buf);
        parallel::parallel_for(0, jr_tiles, 1, [&](std::size_t t0,
                                                   std::size_t t1) {
          for (std::size_t t = t0; t < t1; ++t) {
            const std::size_t jr = t * kGemmNR;
            const std::size_t nr = std::min(kGemmNR, nc - jr);
            const float* bpanel = pack_b_buf + jr * kc;
            const float* bias =
                ep.bias != nullptr ? ep.bias + jc + jr : nullptr;
            for (std::size_t ir = 0; ir < mc; ir += kGemmMR) {
              const std::size_t mr = std::min(kGemmMR, mc - ir);
              alignas(kCacheLineBytes) float acc[kGemmMR * kGemmNR]{};
              micro_kernel(kc, pack_a_buf + ir * kc, bpanel, acc);
              store_tile(c + (ic + ir) * n + jc + jr, n, mr, nr, acc,
                         first && !ep.accumulate, last, ep.op, bias);
            }
          }
        });
      }
    }
  }
}

namespace {

struct GemmDims {
  std::size_t m, n, k;
};

GemmDims check_gemm_operands(bool trans_a, bool trans_b, const Tensor& a,
                             const Tensor& b, const char* op) {
  require(a.rank() == 2 && b.rank() == 2,
          std::string(op) + ": operands must be rank-2, got " +
              shape_to_string(a.shape()) + " x " +
              shape_to_string(b.shape()));
  const std::size_t m = trans_a ? a.dim(1) : a.dim(0);
  const std::size_t ka = trans_a ? a.dim(0) : a.dim(1);
  const std::size_t kb = trans_b ? b.dim(1) : b.dim(0);
  const std::size_t n = trans_b ? b.dim(0) : b.dim(1);
  require(ka == kb, std::string(op) + ": inner dims differ: " +
                        shape_to_string(a.shape()) +
                        (trans_a ? "^T" : "") + " x " +
                        shape_to_string(b.shape()) + (trans_b ? "^T" : ""));
  return {m, n, ka};
}

}  // namespace

void gemm(bool trans_a, bool trans_b, const Tensor& a, const Tensor& b,
          Tensor& c, const Epilogue& ep) {
  const GemmDims d = check_gemm_operands(trans_a, trans_b, a, b, "gemm");
  require(c.rank() == 2 && c.dim(0) == d.m && c.dim(1) == d.n,
          "gemm: output must be preshaped (" + std::to_string(d.m) + ", " +
              std::to_string(d.n) + "), got " + shape_to_string(c.shape()));
  gemm_raw(trans_a, trans_b, d.m, d.n, d.k, a.data(), b.data(), c.data(),
           ep);
}

Tensor gemm(bool trans_a, bool trans_b, const Tensor& a, const Tensor& b,
            const Epilogue& ep) {
  const GemmDims d = check_gemm_operands(trans_a, trans_b, a, b, "gemm");
  Tensor c({d.m, d.n});
  gemm_raw(trans_a, trans_b, d.m, d.n, d.k, a.data(), b.data(), c.data(),
           ep);
  return c;
}

Tensor gemm_naive(bool trans_a, bool trans_b, const Tensor& a,
                  const Tensor& b) {
  const GemmDims d =
      check_gemm_operands(trans_a, trans_b, a, b, "gemm_naive");
  const std::size_t m = d.m, n = d.n, k = d.k;
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  if (!trans_a && !trans_b) {
    // Seed matmul: i-k-j, unit stride on B and C rows.
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float aik = pa[i * k + kk];
        const float* brow = pb + kk * n;
        float* crow = pc + i * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  } else if (trans_a && !trans_b) {
    // Seed matmul_tn: k-i-j over A (k,m) and B (k,n).
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* arow = pa + kk * m;
      const float* brow = pb + kk * n;
      for (std::size_t i = 0; i < m; ++i) {
        const float aik = arow[i];
        float* crow = pc + i * n;
        for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  } else if (!trans_a && trans_b) {
    // Seed matmul_nt: per-element dot product with double accumulator.
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = pa + i * k;
      for (std::size_t j = 0; j < n; ++j) {
        const float* brow = pb + j * k;
        double acc = 0.0;
        for (std::size_t kk = 0; kk < k; ++kk)
          acc += static_cast<double>(arow[kk]) * brow[kk];
        pc[i * n + j] = static_cast<float>(acc);
      }
    }
  } else {
    // TT had no seed variant; strided dot product for completeness.
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t kk = 0; kk < k; ++kk)
          acc += static_cast<double>(pa[kk * m + i]) * pb[j * k + kk];
        pc[i * n + j] = static_cast<float>(acc);
      }
    }
  }
  return c;
}

}  // namespace candle
