// Cache-blocked, register-tiled single-precision GEMM with fused epilogues.
//
// This is the one matrix-product entry point for the NN substrate: dense
// layers, im2col convolution and their backward passes all lower onto
// gemm() / gemm_raw(). The implementation follows the classic
// GotoBLAS/BLIS decomposition — NC/KC/MC cache blocking, A and B packed
// into contiguous MR-/NR-wide panels (pack.h), and an MR×NR microkernel
// written with GCC/Clang vector extensions (an AVX2+FMA variant is
// selected at runtime on x86-64; a 128-bit generic variant is the
// fallback, so no -march build flags are needed). Transposition is
// absorbed by the packing step, so all four transpose combinations run
// through the same microkernel at full speed.
//
// The epilogue (bias add, ReLU, accumulate-vs-overwrite) is applied per
// output tile while it is still cache-hot, which lets layers fuse
// z = x*W + b and relu(z) into the product instead of materializing and
// re-traversing intermediate tensors.
#pragma once

#include <cstddef>

#include "tensor/tensor.h"

namespace candle {

// Blocking parameters. MR×NR is the register tile: 6×16 floats = 12 ymm
// accumulators in the AVX2 microkernel (two 8-wide vectors per row),
// leaving registers for the B load and the A broadcast. KC sizes the
// packed panels for L1 (the NR×KC B panel + MR×KC A panel stay resident),
// MC×KC keeps the packed A block in L2, and NC×KC bounds the packed B
// block by L3. EXPERIMENTS.md ("Kernel benchmarks") describes how to
// retune them.
inline constexpr std::size_t kGemmMR = 6;
inline constexpr std::size_t kGemmNR = 16;
inline constexpr std::size_t kGemmMC = 96;    // multiple of kGemmMR
inline constexpr std::size_t kGemmKC = 256;
inline constexpr std::size_t kGemmNC = 2048;  // multiple of kGemmNR

/// Elementwise op applied to each output tile after the last k-panel.
enum class EpilogueOp { kIdentity, kRelu };

/// Fused tail of the product: C = op([C +] A'B' + bias), applied per tile
/// while it is cache-hot.
struct Epilogue {
  /// Optional length-n row bias added to every row of C (not owned).
  const float* bias = nullptr;
  EpilogueOp op = EpilogueOp::kIdentity;
  /// true: C += A'B' (C's prior contents are kept); false: C = A'B'.
  bool accumulate = false;
};

/// C(m,n) = epilogue([C +] A' * B') over raw row-major buffers, where
/// A' = trans_a ? A^T : A and B' = trans_b ? B^T : B. A is stored as
/// (trans_a ? k×m : m×k), B as (trans_b ? n×k : k×n), both contiguous
/// row-major; C is m×n. `ep.bias`, when set, must have n elements.
void gemm_raw(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
              std::size_t k, const float* a, const float* b, float* c,
              const Epilogue& ep = {});

/// Tensor-level wrapper; operands must be rank-2 and `c` preshaped (m,n).
void gemm(bool trans_a, bool trans_b, const Tensor& a, const Tensor& b,
          Tensor& c, const Epilogue& ep = {});

/// Allocating convenience overload.
Tensor gemm(bool trans_a, bool trans_b, const Tensor& a, const Tensor& b,
            const Epilogue& ep = {});

/// Reference kernel: the seed's naive loop nests (i-k-j, k-i-j, and the
/// dot-product NT form), preserved verbatim minus the data-dependent
/// zero-skip branches. Exists only as the golden baseline for
/// tests/test_gemm.cpp and the bench_micro_kernels speedup comparison —
/// never call it from layer code.
Tensor gemm_naive(bool trans_a, bool trans_b, const Tensor& a,
                  const Tensor& b);

}  // namespace candle
