#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/parallel.h"

namespace candle {
namespace {

void check_rank2(const Tensor& t, const char* op) {
  require(t.rank() == 2, std::string(op) + ": operand must be rank-2, got " +
                             shape_to_string(t.shape()));
}

// Elementwise kernels are memory-bound; small splits cost more in pool
// dispatch than they save, so chunks carry at least this many elements.
constexpr std::size_t kElemwiseGrain = 8192;

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a;
  out += b;
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a;
  out -= b;
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a;
  float* po = out.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < out.numel(); ++i) po[i] *= pb[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  out *= s;
  return out;
}

void add_bias_rows(Tensor& y, const Tensor& bias) {
  check_rank2(y, "add_bias_rows");
  require(bias.rank() == 1 && bias.dim(0) == y.dim(1),
          "add_bias_rows: bias shape must equal row width");
  const std::size_t m = y.dim(0), n = y.dim(1);
  float* py = y.data();
  const float* pb = bias.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) py[i * n + j] += pb[j];
}

Tensor sum_rows(const Tensor& a) {
  check_rank2(a, "sum_rows");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  const float* pa = a.data();
  float* po = out.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) po[j] += pa[i * n + j];
  return out;
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  check_same_shape(x, y, "axpy");
  const float* px = x.data();
  float* py = y.data();
  for (std::size_t i = 0; i < y.numel(); ++i) py[i] += alpha * px[i];
}

void relu_inplace(Tensor& x) {
  float* p = x.data();
  parallel::parallel_for(0, x.numel(), kElemwiseGrain,
                         [p](std::size_t i0, std::size_t i1) {
                           for (std::size_t i = i0; i < i1; ++i)
                             p[i] = p[i] > 0.0f ? p[i] : 0.0f;
                         });
}

Tensor relu(const Tensor& x) {
  Tensor out = x;
  relu_inplace(out);
  return out;
}

Tensor relu_backward(const Tensor& dy, const Tensor& y) {
  check_same_shape(dy, y, "relu_backward");
  Tensor dx = dy;
  float* pd = dx.data();
  const float* py = y.data();
  for (std::size_t i = 0; i < dx.numel(); ++i)
    if (py[i] <= 0.0f) pd[i] = 0.0f;
  return dx;
}

void sigmoid_inplace(Tensor& x) {
  float* p = x.data();
  parallel::parallel_for(0, x.numel(), kElemwiseGrain,
                         [p](std::size_t i0, std::size_t i1) {
                           for (std::size_t i = i0; i < i1; ++i)
                             p[i] = 1.0f / (1.0f + std::exp(-p[i]));
                         });
}

Tensor sigmoid(const Tensor& x) {
  Tensor out = x;
  sigmoid_inplace(out);
  return out;
}

Tensor sigmoid_backward(const Tensor& dy, const Tensor& y) {
  check_same_shape(dy, y, "sigmoid_backward");
  Tensor dx = dy;
  float* pd = dx.data();
  const float* py = y.data();
  for (std::size_t i = 0; i < dx.numel(); ++i)
    pd[i] *= py[i] * (1.0f - py[i]);
  return dx;
}

void tanh_inplace(Tensor& x) {
  float* p = x.data();
  parallel::parallel_for(0, x.numel(), kElemwiseGrain,
                         [p](std::size_t i0, std::size_t i1) {
                           for (std::size_t i = i0; i < i1; ++i)
                             p[i] = std::tanh(p[i]);
                         });
}

Tensor tanh_act(const Tensor& x) {
  Tensor out = x;
  tanh_inplace(out);
  return out;
}

Tensor tanh_backward(const Tensor& dy, const Tensor& y) {
  check_same_shape(dy, y, "tanh_backward");
  Tensor dx = dy;
  float* pd = dx.data();
  const float* py = y.data();
  for (std::size_t i = 0; i < dx.numel(); ++i) pd[i] *= 1.0f - py[i] * py[i];
  return dx;
}

void softmax_rows_inplace(Tensor& x) {
  require(x.rank() >= 1, "softmax_rows: rank must be >= 1");
  const std::size_t n = x.shape().back();
  require(n > 0, "softmax_rows: zero-width rows");
  const std::size_t m = x.numel() / n;
  float* p = x.data();
  // Rows are independent and each row's max/sum runs in serial index
  // order, so the threaded result is bit-identical to the serial one.
  parallel::parallel_for(0, m, 1, [p, n](std::size_t r0, std::size_t r1) {
    for (std::size_t i = r0; i < r1; ++i) {
      float* row = p + i * n;
      const float mx = *std::max_element(row, row + n);
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        row[j] = std::exp(row[j] - mx);
        sum += row[j];
      }
      const float inv = static_cast<float>(1.0 / sum);
      for (std::size_t j = 0; j < n; ++j) row[j] *= inv;
    }
  });
}

Tensor softmax_rows(const Tensor& x) {
  check_rank2(x, "softmax_rows");
  Tensor out = x;
  softmax_rows_inplace(out);
  return out;
}

std::vector<std::size_t> argmax_rows(const Tensor& x) {
  check_rank2(x, "argmax_rows");
  const std::size_t m = x.dim(0), n = x.dim(1);
  require(n > 0, "argmax_rows: zero-width rows");
  std::vector<std::size_t> out(m);
  const float* p = x.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = p + i * n;
    out[i] = static_cast<std::size_t>(
        std::max_element(row, row + n) - row);
  }
  return out;
}

}  // namespace candle
