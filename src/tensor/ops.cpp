#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace candle {
namespace {

void check_rank2(const Tensor& t, const char* op) {
  require(t.rank() == 2, std::string(op) + ": operand must be rank-2, got " +
                             shape_to_string(t.shape()));
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul");
  check_rank2(b, "matmul");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul: inner dims differ: " +
                             shape_to_string(a.shape()) + " x " +
                             shape_to_string(b.shape()));
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // i-k-j loop order: unit-stride access on B and C rows.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_tn");
  check_rank2(b, "matmul_tn");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k, "matmul_tn: leading dims differ: " +
                             shape_to_string(a.shape()) + " x " +
                             shape_to_string(b.shape()));
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aik = arow[i];
      if (aik == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_nt");
  check_rank2(b, "matmul_nt");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  require(b.dim(1) == k, "matmul_nt: inner dims differ: " +
                             shape_to_string(a.shape()) + " x " +
                             shape_to_string(b.shape()) + "^T");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk)
        acc += static_cast<double>(arow[kk]) * brow[kk];
      pc[i * n + j] = static_cast<float>(acc);
    }
  }
  return c;
}

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a;
  out += b;
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a;
  out -= b;
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a;
  float* po = out.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < out.numel(); ++i) po[i] *= pb[i];
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  out *= s;
  return out;
}

void add_bias_rows(Tensor& y, const Tensor& bias) {
  check_rank2(y, "add_bias_rows");
  require(bias.rank() == 1 && bias.dim(0) == y.dim(1),
          "add_bias_rows: bias shape must equal row width");
  const std::size_t m = y.dim(0), n = y.dim(1);
  float* py = y.data();
  const float* pb = bias.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) py[i * n + j] += pb[j];
}

Tensor sum_rows(const Tensor& a) {
  check_rank2(a, "sum_rows");
  const std::size_t m = a.dim(0), n = a.dim(1);
  Tensor out({n});
  const float* pa = a.data();
  float* po = out.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) po[j] += pa[i * n + j];
  return out;
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  check_same_shape(x, y, "axpy");
  const float* px = x.data();
  float* py = y.data();
  for (std::size_t i = 0; i < y.numel(); ++i) py[i] += alpha * px[i];
}

Tensor relu(const Tensor& x) {
  Tensor out = x;
  for (float& v : out.values()) v = v > 0.0f ? v : 0.0f;
  return out;
}

Tensor relu_backward(const Tensor& dy, const Tensor& y) {
  check_same_shape(dy, y, "relu_backward");
  Tensor dx = dy;
  float* pd = dx.data();
  const float* py = y.data();
  for (std::size_t i = 0; i < dx.numel(); ++i)
    if (py[i] <= 0.0f) pd[i] = 0.0f;
  return dx;
}

Tensor sigmoid(const Tensor& x) {
  Tensor out = x;
  for (float& v : out.values()) v = 1.0f / (1.0f + std::exp(-v));
  return out;
}

Tensor sigmoid_backward(const Tensor& dy, const Tensor& y) {
  check_same_shape(dy, y, "sigmoid_backward");
  Tensor dx = dy;
  float* pd = dx.data();
  const float* py = y.data();
  for (std::size_t i = 0; i < dx.numel(); ++i)
    pd[i] *= py[i] * (1.0f - py[i]);
  return dx;
}

Tensor tanh_act(const Tensor& x) {
  Tensor out = x;
  for (float& v : out.values()) v = std::tanh(v);
  return out;
}

Tensor tanh_backward(const Tensor& dy, const Tensor& y) {
  check_same_shape(dy, y, "tanh_backward");
  Tensor dx = dy;
  float* pd = dx.data();
  const float* py = y.data();
  for (std::size_t i = 0; i < dx.numel(); ++i) pd[i] *= 1.0f - py[i] * py[i];
  return dx;
}

Tensor softmax_rows(const Tensor& x) {
  check_rank2(x, "softmax_rows");
  const std::size_t m = x.dim(0), n = x.dim(1);
  require(n > 0, "softmax_rows: zero-width rows");
  Tensor out = x;
  float* p = out.data();
  for (std::size_t i = 0; i < m; ++i) {
    float* row = p + i * n;
    const float mx = *std::max_element(row, row + n);
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (std::size_t j = 0; j < n; ++j) row[j] *= inv;
  }
  return out;
}

std::vector<std::size_t> argmax_rows(const Tensor& x) {
  check_rank2(x, "argmax_rows");
  const std::size_t m = x.dim(0), n = x.dim(1);
  require(n > 0, "argmax_rows: zero-width rows");
  std::vector<std::size_t> out(m);
  const float* p = x.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = p + i * n;
    out[i] = static_cast<std::size_t>(
        std::max_element(row, row + n) - row);
  }
  return out;
}

}  // namespace candle
