// Dense linear algebra and elementwise kernels over Tensor.
//
// Matmul variants cover exactly the products needed by dense-layer
// forward/backward passes; conv/pool kernels live in conv.h.
#pragma once

#include "tensor/tensor.h"

namespace candle {

// ---------------------------------------------------------------------------
// Matrix products (all operands rank-2).
// ---------------------------------------------------------------------------

/// C = A(m,k) * B(k,n).
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A^T(k,m)^T... i.e. C(m,n) = A(k,m)^T * B(k,n). Used for dW = X^T dY.
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C(m,n) = A(m,k) * B(n,k)^T. Used for dX = dY W^T.
Tensor matmul_nt(const Tensor& a, const Tensor& b);

// ---------------------------------------------------------------------------
// Elementwise math.
// ---------------------------------------------------------------------------

/// out = a + b (same shape).
Tensor add(const Tensor& a, const Tensor& b);

/// out = a - b (same shape).
Tensor sub(const Tensor& a, const Tensor& b);

/// out = a ⊙ b (Hadamard product, same shape).
Tensor mul(const Tensor& a, const Tensor& b);

/// out = s * a.
Tensor scale(const Tensor& a, float s);

/// y += rows of bias: y has shape (m,n), bias has shape (n).
void add_bias_rows(Tensor& y, const Tensor& bias);

/// Sums a (m,n) tensor over rows into a (n) tensor. Used for bias gradients.
Tensor sum_rows(const Tensor& a);

/// axpy: y += alpha * x (same shape; no allocation).
void axpy(float alpha, const Tensor& x, Tensor& y);

// ---------------------------------------------------------------------------
// Activations (forward value + backward via saved output).
// ---------------------------------------------------------------------------

Tensor relu(const Tensor& x);
/// dx = dy ⊙ 1[y > 0]; `y` is the saved forward output.
Tensor relu_backward(const Tensor& dy, const Tensor& y);

Tensor sigmoid(const Tensor& x);
/// dx = dy ⊙ y(1-y).
Tensor sigmoid_backward(const Tensor& dy, const Tensor& y);

Tensor tanh_act(const Tensor& x);
/// dx = dy ⊙ (1-y²).
Tensor tanh_backward(const Tensor& dy, const Tensor& y);

/// Row-wise softmax over a (m,n) tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& x);

// ---------------------------------------------------------------------------
// Row-wise argmax (class prediction) over a (m,n) tensor.
// ---------------------------------------------------------------------------
std::vector<std::size_t> argmax_rows(const Tensor& x);

}  // namespace candle
