// Elementwise and reduction kernels over Tensor.
//
// Matrix products live in gemm.h (the unified blocked-GEMM entry point);
// conv/pool kernels in conv.h. This header keeps the elementwise math,
// activations (copying and in-place forms) and row reductions used by the
// layers.
#pragma once

#include "tensor/tensor.h"

namespace candle {

// ---------------------------------------------------------------------------
// Elementwise math.
// ---------------------------------------------------------------------------

/// out = a + b (same shape).
Tensor add(const Tensor& a, const Tensor& b);

/// out = a - b (same shape).
Tensor sub(const Tensor& a, const Tensor& b);

/// out = a ⊙ b (Hadamard product, same shape).
Tensor mul(const Tensor& a, const Tensor& b);

/// out = s * a.
Tensor scale(const Tensor& a, float s);

/// y += rows of bias: y has shape (m,n), bias has shape (n).
void add_bias_rows(Tensor& y, const Tensor& bias);

/// Sums a (m,n) tensor over rows into a (n) tensor. Used for bias gradients.
Tensor sum_rows(const Tensor& a);

/// axpy: y += alpha * x (same shape; no allocation).
void axpy(float alpha, const Tensor& x, Tensor& y);

// ---------------------------------------------------------------------------
// Activations (forward value + backward via saved output).
//
// The *_inplace forms mutate their argument and are what the layers use on
// freshly produced pre-activation tensors — the copying forms exist for
// callers that need to keep the input.
// ---------------------------------------------------------------------------

void relu_inplace(Tensor& x);
Tensor relu(const Tensor& x);
/// dx = dy ⊙ 1[y > 0]; `y` is the saved forward output.
Tensor relu_backward(const Tensor& dy, const Tensor& y);

void sigmoid_inplace(Tensor& x);
Tensor sigmoid(const Tensor& x);
/// dx = dy ⊙ y(1-y).
Tensor sigmoid_backward(const Tensor& dy, const Tensor& y);

void tanh_inplace(Tensor& x);
Tensor tanh_act(const Tensor& x);
/// dx = dy ⊙ (1-y²).
Tensor tanh_backward(const Tensor& dy, const Tensor& y);

/// Row-wise softmax over the trailing axis (leading axes flattened into
/// rows), numerically stabilized, in place.
void softmax_rows_inplace(Tensor& x);
/// Row-wise softmax over a (m,n) tensor (numerically stabilized).
Tensor softmax_rows(const Tensor& x);

// ---------------------------------------------------------------------------
// Row-wise argmax (class prediction) over a (m,n) tensor.
// ---------------------------------------------------------------------------
std::vector<std::size_t> argmax_rows(const Tensor& x);

}  // namespace candle
