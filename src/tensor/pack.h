// Panel packing for the blocked GEMM core (gemm.cpp).
//
// The macro-kernel copies cache-sized blocks of A and B into contiguous,
// microkernel-ordered panels before any arithmetic happens: the MR×NR
// microkernel then reads both operands with unit stride regardless of the
// original storage order (transposed or not). Rows/columns past the block
// edge are zero-padded so the microkernel never needs a remainder path.
#pragma once

#include <algorithm>
#include <cstddef>

#if defined(__GNUC__) || defined(__clang__)
#define CANDLE_RESTRICT __restrict__
#else
#define CANDLE_RESTRICT
#endif

namespace candle::detail {

/// Packs an mc×kc block of A (element (i, p) at a[i*rs + p*cs]) into
/// row-panels of `mr` rows: dst[(ir/mr)*mr*kc + p*mr + i] = A(ir+i, p).
/// Rows past mc are zero-padded to a full panel.
inline void pack_a(const float* CANDLE_RESTRICT a, std::size_t rs,
                   std::size_t cs, std::size_t mc, std::size_t kc,
                   std::size_t mr, float* CANDLE_RESTRICT dst) {
  for (std::size_t ir = 0; ir < mc; ir += mr) {
    const std::size_t rows = std::min(mr, mc - ir);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t i = 0; i < rows; ++i)
        dst[p * mr + i] = a[(ir + i) * rs + p * cs];
      for (std::size_t i = rows; i < mr; ++i) dst[p * mr + i] = 0.0f;
    }
    dst += mr * kc;
  }
}

/// Packs a kc×nc block of B (element (p, j) at b[p*rs + j*cs]) into
/// column-panels of `nr` columns: dst[(jr/nr)*nr*kc + p*nr + j] = B(p, jr+j).
/// Columns past nc are zero-padded to a full panel.
inline void pack_b(const float* CANDLE_RESTRICT b, std::size_t rs,
                   std::size_t cs, std::size_t kc, std::size_t nc,
                   std::size_t nr, float* CANDLE_RESTRICT dst) {
  for (std::size_t jr = 0; jr < nc; jr += nr) {
    const std::size_t cols = std::min(nr, nc - jr);
    if (cols == nr && cs == 1) {
      // Common fast path: B not transposed, full panel — contiguous copy.
      for (std::size_t p = 0; p < kc; ++p) {
        const float* src = b + p * rs + jr;
        float* out = dst + p * nr;
        for (std::size_t j = 0; j < nr; ++j) out[j] = src[j];
      }
    } else {
      for (std::size_t p = 0; p < kc; ++p) {
        for (std::size_t j = 0; j < cols; ++j)
          dst[p * nr + j] = b[p * rs + (jr + j) * cs];
        for (std::size_t j = cols; j < nr; ++j) dst[p * nr + j] = 0.0f;
      }
    }
    dst += nr * kc;
  }
}

}  // namespace candle::detail
