#include "tensor/tensor.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "common/string_util.h"

namespace candle {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::string s = "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) s += ", ";
    s += std::to_string(shape[i]);
  }
  return s + "]";
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(Shape shape, const std::vector<float>& values)
    : shape_(std::move(shape)), data_(values.begin(), values.end()) {
  require(data_.size() == shape_numel(shape_),
          "Tensor: value count " + std::to_string(data_.size()) +
              " does not match shape " + shape_to_string(shape_));
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor({values.size()}, std::vector<float>(values));
}

std::size_t Tensor::dim(std::size_t i) const {
  require(i < shape_.size(), "Tensor::dim: axis out of range");
  return shape_[i];
}

float& Tensor::at(std::size_t i) {
  require(i < data_.size(),
          "Tensor::at: index " + std::to_string(i) + " out of range for " +
              std::to_string(data_.size()) + " elements");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  return const_cast<Tensor*>(this)->at(i);
}

float& Tensor::at(std::size_t r, std::size_t c) {
  require(rank() == 2, "Tensor::at: rank must be 2");
  require(r < shape_[0] && c < shape_[1], "Tensor::at: index out of range");
  return data_[r * shape_[1] + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

Tensor Tensor::reshaped(Shape new_shape) const {
  require(shape_numel(new_shape) == numel(),
          "Tensor::reshaped: numel mismatch " + shape_to_string(shape_) +
              " -> " + shape_to_string(new_shape));
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

void Tensor::zero() { std::fill(data_.begin(), data_.end(), 0.0f); }

Tensor& Tensor::operator+=(const Tensor& other) {
  check_same_shape(*this, other, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  check_same_shape(*this, other, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

float Tensor::sum() const {
  // Accumulate in double for stability over large tensors.
  return static_cast<float>(
      std::accumulate(data_.begin(), data_.end(), 0.0));
}

float Tensor::mean() const {
  return data_.empty() ? 0.0f : sum() / static_cast<float>(data_.size());
}

float Tensor::min() const {
  return data_.empty() ? 0.0f : *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  return data_.empty() ? 0.0f : *std::max_element(data_.begin(), data_.end());
}

float Tensor::sq_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(acc);
}

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  require(a.shape() == b.shape(),
          std::string(op) + ": shape mismatch " + shape_to_string(a.shape()) +
              " vs " + shape_to_string(b.shape()));
}

}  // namespace candle
