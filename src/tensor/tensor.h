// Dense row-major float32 tensor.
//
// This is the numeric substrate for the NN library. It is intentionally
// simple: contiguous storage, shape as a small vector, no views/strides.
// All layer math is expressed through the free functions in ops.h / conv.h.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/check.h"

namespace candle {

/// Shape of a tensor; empty shape denotes a scalar with one element.
using Shape = std::vector<std::size_t>;

/// Number of elements implied by a shape (product of dims; 1 for scalar).
std::size_t shape_numel(const Shape& shape);

/// "[2, 3, 5]" — used in error messages.
std::string shape_to_string(const Shape& shape);

/// Contiguous row-major float tensor.
class Tensor {
 public:
  /// Empty tensor (numel 0, rank 0 with explicit zero-dim shape {0}).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with every element set to `fill`.
  Tensor(Shape shape, float fill);

  /// Tensor copying `values` into aligned storage (size must match the
  /// shape). The copy is deliberate: element data always lives in the
  /// 64-byte aligned backing buffer (see common/aligned.h).
  Tensor(Shape shape, const std::vector<float>& values);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }

  /// 1-D tensor from an initializer list.
  static Tensor from(std::initializer_list<float> values);

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::size_t rank() const { return shape_.size(); }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const;

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }
  [[nodiscard]] std::span<float> values() { return data_; }
  [[nodiscard]] std::span<const float> values() const { return data_; }

  /// Unchecked in release; bounds-checked (CANDLE_CHECK_BOUNDS) in Debug
  /// and sanitizer builds. ASan cannot catch an in-range but logically
  /// wrong flat index into the backing vector — this can.
  float& operator[](std::size_t i) {
    CANDLE_CHECK_BOUNDS(i, data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    CANDLE_CHECK_BOUNDS(i, data_.size());
    return data_[i];
  }

  /// Always-checked flat accessors; throw InvalidArgument when out of range.
  float& at(std::size_t i);
  float at(std::size_t i) const;

  /// Checked 2-D accessors (row, col); requires rank() == 2.
  float& at(std::size_t r, std::size_t c);
  float at(std::size_t r, std::size_t c) const;

  /// Returns a tensor with the same data and a new shape of equal numel.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// In-place: fills with zeros.
  void zero();

  /// In-place elementwise operations (shape must match for tensor forms).
  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float s);

  /// Sum, mean, min, max over all elements (0 for empty tensors).
  [[nodiscard]] float sum() const;
  [[nodiscard]] float mean() const;
  [[nodiscard]] float min() const;
  [[nodiscard]] float max() const;

  /// Squared L2 norm of all elements.
  [[nodiscard]] float sq_norm() const;

 private:
  // Cache-line aligned so the AVX2 microkernel gets aligned loads and
  // per-tensor pool workers never share a line across allocations.
  Shape shape_{0};
  AlignedVector data_;
};

/// Throws InvalidArgument unless both shapes are identical.
void check_same_shape(const Tensor& a, const Tensor& b, const char* op);

}  // namespace candle
