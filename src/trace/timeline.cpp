#include "trace/timeline.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "common/string_util.h"

namespace candle::trace {

void Timeline::record(Event event) {
  MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

void Timeline::record(const std::string& name, const std::string& category,
                      std::size_t rank, double start_s, double duration_s) {
  record(Event{name, category, rank, start_s, duration_s});
}

void Timeline::record_counter(const std::string& name, double t_s,
                              double value) {
  MutexLock lock(mutex_);
  counters_.push_back(CounterSample{name, t_s, value});
}

std::size_t Timeline::counter_count() const {
  MutexLock lock(mutex_);
  return counters_.size();
}

std::size_t Timeline::size() const {
  MutexLock lock(mutex_);
  return events_.size();
}

std::vector<Event> Timeline::events() const {
  MutexLock lock(mutex_);
  return events_;
}

double Timeline::total_duration(const std::string& name,
                                std::size_t rank) const {
  MutexLock lock(mutex_);
  double total = 0.0;
  for (const auto& e : events_)
    if (e.rank == rank && e.name == name) total += e.duration_s;
  return total;
}

std::size_t Timeline::count_events(const std::string& name,
                                   std::size_t rank) const {
  MutexLock lock(mutex_);
  std::size_t count = 0;
  for (const auto& e : events_)
    if (e.rank == rank && e.name == name) ++count;
  return count;
}

double Timeline::span_end() const {
  MutexLock lock(mutex_);
  double end = 0.0;
  for (const auto& e : events_)
    end = std::max(end, e.start_s + e.duration_s);
  return end;
}

std::string Timeline::to_chrome_json() const {
  MutexLock lock(mutex_);
  std::ostringstream os;
  os << "[\n";
  const std::size_t total = events_.size() + counters_.size();
  std::size_t emitted = 0;
  for (const Event& e : events_) {
    ++emitted;
    os << strprintf(
        "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
        "\"pid\": 0, \"tid\": %zu, \"ts\": %.1f, \"dur\": %.1f}%s\n",
        e.name.c_str(), e.category.c_str(), e.rank, e.start_s * 1e6,
        e.duration_s * 1e6, emitted < total ? "," : "");
  }
  for (const CounterSample& c : counters_) {
    ++emitted;
    os << strprintf(
        "  {\"name\": \"%s\", \"ph\": \"C\", \"pid\": 0, \"ts\": %.1f, "
        "\"args\": {\"value\": %.3f}}%s\n",
        c.name.c_str(), c.t_s * 1e6, c.value,
        emitted < total ? "," : "");
  }
  os << "]\n";
  return os.str();
}

void Timeline::write_chrome_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw IoError("Timeline: cannot open " + path);
  const std::string json = to_chrome_json();
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (n != json.size()) throw IoError("Timeline: short write to " + path);
}

}  // namespace candle::trace
