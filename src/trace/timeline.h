// Horovod-style activity timeline.
//
// Horovod can record a timeline of its collective activity for inspection in
// chrome://tracing (paper Figs 7b, 12, 19). This module reproduces that:
// phases are recorded per rank with the same event names Horovod emits
// (NEGOTIATE_BROADCAST, MPI_BCAST, NEGOTIATE_ALLREDUCE, NCCL_ALLREDUCE, ...)
// and serialized to the Chrome Trace Event JSON format.
//
// The recorder is thread-safe so real-mode rank threads can log concurrently;
// the simulator logs synthetic events with explicit timestamps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace candle::trace {

/// Standard Horovod activity names used across the library.
inline constexpr const char* kNegotiateBroadcast = "NEGOTIATE_BROADCAST";
inline constexpr const char* kMpiBroadcast = "MPI_BCAST";
inline constexpr const char* kNegotiateAllreduce = "NEGOTIATE_ALLREDUCE";
inline constexpr const char* kNcclAllreduce = "NCCL_ALLREDUCE";
inline constexpr const char* kMpiAllreduce = "MPI_ALLREDUCE";
inline constexpr const char* kDataLoading = "DATA_LOADING";
inline constexpr const char* kPreprocessing = "PREPROCESSING";
inline constexpr const char* kPipelineProduce = "PIPELINE_PRODUCE";
inline constexpr const char* kPipelineStall = "PIPELINE_STALL";
inline constexpr const char* kComputeGradients = "COMPUTE_GRADIENTS";
inline constexpr const char* kEvaluation = "EVALUATION";

/// One complete-duration event ("ph":"X").
struct Event {
  std::string name;      // activity name (see constants above)
  std::string category;  // "broadcast", "allreduce", "compute", "io"
  std::size_t rank = 0;  // rendered as the tid lane
  double start_s = 0.0;  // seconds since timeline start
  double duration_s = 0.0;
};

/// One counter sample ("ph":"C") — chrome://tracing renders these as a
/// value track (used for the GPU power series, as in the paper's Fig 7a).
struct CounterSample {
  std::string name;   // e.g. "gpu_power_w"
  double t_s = 0.0;
  double value = 0.0;
};

/// Collects events and serializes Chrome Trace Event JSON.
///
/// Shared across all rank threads of a World; every member locks `mutex_`
/// internally (lock discipline verified by clang -Wthread-safety).
class Timeline {
 public:
  /// Records one event (thread-safe).
  void record(Event event) CANDLE_EXCLUDES(mutex_);

  /// Convenience: record with explicit fields.
  void record(const std::string& name, const std::string& category,
              std::size_t rank, double start_s, double duration_s)
      CANDLE_EXCLUDES(mutex_);

  /// Records one counter sample (thread-safe).
  void record_counter(const std::string& name, double t_s, double value)
      CANDLE_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t counter_count() const CANDLE_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t size() const CANDLE_EXCLUDES(mutex_);
  [[nodiscard]] std::vector<Event> events() const CANDLE_EXCLUDES(mutex_);

  /// Total duration of events with the given name across rank 0's lane
  /// (e.g. broadcast overhead for Figs 12/19).
  [[nodiscard]] double total_duration(const std::string& name,
                                      std::size_t rank = 0) const
      CANDLE_EXCLUDES(mutex_);

  /// Number of events with the given name on one rank's lane. Tests use
  /// this to assert per-bucket event granularity (one NEGOTIATE/NCCL
  /// event per fusion bucket, not one blob per step).
  [[nodiscard]] std::size_t count_events(const std::string& name,
                                         std::size_t rank = 0) const
      CANDLE_EXCLUDES(mutex_);

  /// End time of the latest event.
  [[nodiscard]] double span_end() const CANDLE_EXCLUDES(mutex_);

  /// Chrome Trace Event JSON (array-of-events form; timestamps in µs).
  [[nodiscard]] std::string to_chrome_json() const CANDLE_EXCLUDES(mutex_);

  /// Writes to_chrome_json() to a file; throws IoError on failure.
  void write_chrome_json(const std::string& path) const
      CANDLE_EXCLUDES(mutex_);

 private:
  mutable AnnotatedMutex mutex_{CANDLE_LOCK_LEVEL(lock_order::level::kTimeline),
                                "trace::Timeline::mutex_"};
  std::vector<Event> events_ CANDLE_GUARDED_BY(mutex_);
  std::vector<CounterSample> counters_ CANDLE_GUARDED_BY(mutex_);
};

}  // namespace candle::trace
