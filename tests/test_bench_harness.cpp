// Tests for the shared bench harness helpers — chiefly the latency
// percentile helpers the serving bench and loadgen reports quote.
#include <gtest/gtest.h>

#include <vector>

#include "harness.h"

#include "common/error.h"

namespace candle::bench {
namespace {

TEST(Percentile, EndpointsAndMedian) {
  const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(p50(v), 2.5);  // midpoint of 2 and 3
}

TEST(Percentile, LinearInterpolation) {
  // 0..100 inclusive: pos = q/100 * 100, so percentile(q) == q exactly.
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p50(v), 50.0);
  EXPECT_DOUBLE_EQ(p90(v), 90.0);
  EXPECT_DOUBLE_EQ(p99(v), 99.0);
  EXPECT_DOUBLE_EQ(percentile(v, 12.5), 12.5);
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  const std::vector<double> v = {7.0};
  EXPECT_DOUBLE_EQ(p50(v), 7.0);
  EXPECT_DOUBLE_EQ(p90(v), 7.0);
  EXPECT_DOUBLE_EQ(p99(v), 7.0);
}

TEST(Percentile, TailOrderingOnSkewedSample) {
  // Long-tailed latency-like sample: percentiles must be monotone in q.
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(1.0 + 0.01 * i);
  v.push_back(50.0);  // one straggler
  EXPECT_LE(p50(v), p90(v));
  EXPECT_LE(p90(v), p99(v));
  EXPECT_GT(p99(v), p90(v));  // the straggler lives in the tail
}

TEST(Percentile, RejectsEmptyAndOutOfRange) {
  const std::vector<double> empty;
  EXPECT_THROW((void)p50(empty), InvalidArgument);
  const std::vector<double> v = {1.0};
  EXPECT_THROW((void)percentile(v, -1.0), InvalidArgument);
  EXPECT_THROW((void)percentile(v, 101.0), InvalidArgument);
}

}  // namespace
}  // namespace candle::bench
