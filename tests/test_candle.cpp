// Tests for src/candle: scaling strategies, benchmark models, and the
// accuracy-vs-epochs behaviour behind Figs 6b/9b.
#include <gtest/gtest.h>

#include "candle/models.h"
#include "candle/profiler.h"
#include "candle/scaling.h"
#include "common/error.h"

namespace candle {
namespace {

// ---------------------------------------------------------------------------
// comp_epochs (paper §2.3.2)
// ---------------------------------------------------------------------------

TEST(CompEpochs, EvenSplit) {
  // 384 epochs over 48 ranks -> 8 each (the paper's canonical example).
  for (std::size_t r = 0; r < 48; ++r) EXPECT_EQ(comp_epochs(384, r, 48), 8u);
}

TEST(CompEpochs, LastRankTakesRemainder) {
  EXPECT_EQ(comp_epochs(10, 0, 3), 3u);
  EXPECT_EQ(comp_epochs(10, 1, 3), 3u);
  EXPECT_EQ(comp_epochs(10, 2, 3), 4u);
}

TEST(CompEpochs, TotalIsPreserved) {
  for (std::size_t total : {1u, 7u, 384u, 768u}) {
    for (std::size_t nprocs : {1u, 3u, 6u, 48u}) {
      std::size_t sum = 0;
      for (std::size_t r = 0; r < nprocs; ++r)
        sum += comp_epochs(total, r, nprocs);
      EXPECT_EQ(sum, total) << total << "/" << nprocs;
    }
  }
}

TEST(CompEpochs, BalancedDropsRemainder) {
  EXPECT_EQ(comp_epochs_balanced(10, 3), 3u);
  EXPECT_EQ(comp_epochs_balanced(384, 384), 1u);
  EXPECT_EQ(comp_epochs_balanced(3, 6), 0u);
}

TEST(CompEpochs, InvalidArgsThrow) {
  EXPECT_THROW(comp_epochs(10, 3, 3), InvalidArgument);
  EXPECT_THROW(comp_epochs(10, 0, 0), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Batch scaling (Fig 4b) and lr scaling
// ---------------------------------------------------------------------------

TEST(BatchScaling, StrategiesMatchPaperFormulas) {
  // §4.2.4: for 48 GPUs, cubic root gives int(100 * 48^(1/3)) = 363.
  EXPECT_EQ(scaled_batch(100, 48, BatchScaling::kCbrt), 363u);
  EXPECT_EQ(scaled_batch(100, 192, BatchScaling::kLinear), 19200u);
  EXPECT_EQ(scaled_batch(100, 384, BatchScaling::kLinear), 38400u);
  EXPECT_EQ(scaled_batch(100, 4, BatchScaling::kSqrt), 200u);
  EXPECT_EQ(scaled_batch(20, 99, BatchScaling::kConstant), 20u);
}

TEST(BatchScaling, Ordering) {
  // linear >= sqrt >= cbrt >= constant for gpus >= 1.
  for (std::size_t g : {1u, 8u, 64u, 384u}) {
    const std::size_t lin = scaled_batch(100, g, BatchScaling::kLinear);
    const std::size_t sq = scaled_batch(100, g, BatchScaling::kSqrt);
    const std::size_t cb = scaled_batch(100, g, BatchScaling::kCbrt);
    EXPECT_GE(lin, sq);
    EXPECT_GE(sq, cb);
    EXPECT_GE(cb, 100u);
  }
}

TEST(BatchScaling, OneGpuIsIdentity) {
  for (auto s : {BatchScaling::kConstant, BatchScaling::kLinear,
                 BatchScaling::kSqrt, BatchScaling::kCbrt})
    EXPECT_EQ(scaled_batch(60, 1, s), 60u);
}

TEST(LearningRate, LinearScaling) {
  EXPECT_DOUBLE_EQ(scaled_learning_rate(0.001, 48), 0.048);
  EXPECT_DOUBLE_EQ(scaled_learning_rate(0.001, 1), 0.001);
  EXPECT_THROW(scaled_learning_rate(0.0, 2), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Benchmark metadata and models
// ---------------------------------------------------------------------------

TEST(Benchmarks, NamesRoundTrip) {
  for (auto id : all_benchmarks())
    EXPECT_EQ(benchmark_from_name(benchmark_name(id)), id);
  EXPECT_EQ(all_benchmarks().size(), 6u);
  EXPECT_THROW(benchmark_from_name("NT9"), InvalidArgument);
}

TEST(Benchmarks, ProfileMapping) {
  EXPECT_EQ(profile_for(BenchmarkId::kNT3).name, "NT3");
  EXPECT_EQ(profile_for(BenchmarkId::kP1B3).optimizer, "sgd");
}

TEST(Benchmarks, OptimizerAndLossPerTable1) {
  EXPECT_EQ(benchmark_optimizer(BenchmarkId::kNT3), "sgd");
  EXPECT_EQ(benchmark_optimizer(BenchmarkId::kP1B1), "adam");
  EXPECT_EQ(benchmark_optimizer(BenchmarkId::kP1B2), "rmsprop");
  EXPECT_EQ(benchmark_loss(BenchmarkId::kNT3), "categorical_crossentropy");
  EXPECT_EQ(benchmark_loss(BenchmarkId::kP1B1), "mse");
  EXPECT_TRUE(benchmark_is_classification(BenchmarkId::kP1B2));
  EXPECT_FALSE(benchmark_is_classification(BenchmarkId::kP1B3));
}

TEST(Benchmarks, ScaledGeometryShrinksWithScale) {
  const ScaledGeometry big = scaled_geometry(BenchmarkId::kNT3, 0.01);
  const ScaledGeometry small = scaled_geometry(BenchmarkId::kNT3, 0.002);
  EXPECT_GT(big.features, small.features);
  EXPECT_EQ(big.train_samples, 1120u);  // samples preserved for NT3
  EXPECT_EQ(big.classes, 2u);
  EXPECT_THROW(scaled_geometry(BenchmarkId::kNT3, 0.0), InvalidArgument);
  EXPECT_THROW(scaled_geometry(BenchmarkId::kNT3, 1.5), InvalidArgument);
}

TEST(Benchmarks, P1b3ScalesSamples) {
  const ScaledGeometry g = scaled_geometry(BenchmarkId::kP1B3, 0.002);
  EXPECT_NEAR(static_cast<double>(g.train_samples), 900100 * 0.002, 10.0);
  EXPECT_EQ(g.classes, 0u);
}

TEST(Benchmarks, ModelsBuildAndCompileForAllBenchmarks) {
  for (auto id : all_benchmarks()) {
    const ScaledGeometry g = scaled_geometry(id, 0.002);
    nn::Model m = build_model(id, g);
    compile_benchmark_model(id, m, g, 0.001, 1);
    EXPECT_GT(m.param_count(), 0u) << benchmark_name(id);
    // Forward pass on a small batch produces the right shape.
    Tensor x({4, g.features}, 0.1f);
    const Tensor y = m.predict(x);
    if (benchmark_is_classification(id)) {
      EXPECT_EQ(y.shape(), (Shape{4, g.classes})) << benchmark_name(id);
    } else if (id == BenchmarkId::kP1B1 || id == BenchmarkId::kP2B1) {
      EXPECT_EQ(y.shape(), (Shape{4, g.features})) << benchmark_name(id);
    } else {
      EXPECT_EQ(y.shape(), (Shape{4, 1})) << benchmark_name(id);
    }
  }
}

TEST(Benchmarks, ExtensionProfilesExist) {
  EXPECT_EQ(profile_for(BenchmarkId::kP2B1).name, "P2B1");
  EXPECT_EQ(profile_for(BenchmarkId::kP3B1).name, "P3B1");
  EXPECT_EQ(sim::BenchmarkProfile::extended().size(), 6u);
  EXPECT_EQ(sim::BenchmarkProfile::all().size(), 4u);  // paper scope intact
  EXPECT_TRUE(benchmark_is_classification(BenchmarkId::kP3B1));
  EXPECT_FALSE(benchmark_is_classification(BenchmarkId::kP2B1));
}

TEST(Benchmarks, ExtensionBenchmarksTrainEndToEnd) {
  // P2B1 autoencoder reconstructs; P3B1 classifier beats chance.
  const AccuracyPoint p2 =
      reference_accuracy(BenchmarkId::kP2B1, 1, 3, 0, 0.002, true);
  EXPECT_LT(p2.loss, 0.25f);  // MSE on [0,1] data after 3 epochs
  const AccuracyPoint p3 =
      reference_accuracy(BenchmarkId::kP3B1, 1, 8, 0, 0.002, true);
  EXPECT_GT(p3.accuracy, 0.3f);  // 10-way chance is 0.1
}

TEST(Benchmarks, DataGeometryMatches) {
  for (auto id : {BenchmarkId::kNT3, BenchmarkId::kP1B2}) {
    const ScaledGeometry g = scaled_geometry(id, 0.002);
    const BenchmarkData d = make_benchmark_data(id, g, 3);
    EXPECT_EQ(d.train.size(), g.train_samples);
    EXPECT_EQ(d.test.size(), g.test_samples);
    EXPECT_EQ(d.train.x.dim(1), g.features);
    EXPECT_EQ(d.train.y.dim(1), g.classes);
  }
}

TEST(Benchmarks, DataIsDeterministicInSeed) {
  const ScaledGeometry g = scaled_geometry(BenchmarkId::kP1B2, 0.002);
  const BenchmarkData a = make_benchmark_data(BenchmarkId::kP1B2, g, 5);
  const BenchmarkData b = make_benchmark_data(BenchmarkId::kP1B2, g, 5);
  for (std::size_t i = 0; i < 100; ++i)
    ASSERT_FLOAT_EQ(a.train.x[i], b.train.x[i]);
}

// ---------------------------------------------------------------------------
// Per-layer profiler (§7 NVProf future work)
// ---------------------------------------------------------------------------

TEST(Profiler, ProfilesEveryLayerOfNt3) {
  const StepProfile p = profile_step(BenchmarkId::kNT3, 0.0015, 0, 2);
  EXPECT_EQ(p.batch, 20u);  // NT3 default
  EXPECT_GE(p.layers.size(), 8u);
  EXPECT_GT(p.step_ms, 0.0);
  double sum = 0.0;
  for (const auto& lp : p.layers) {
    EXPECT_GE(lp.forward_ms, 0.0);
    EXPECT_GE(lp.backward_ms, 0.0);
    sum += lp.total_ms();
  }
  EXPECT_NEAR(sum, p.step_ms, 1e-9);
  // NT3's cost is in the conv stack, not the tiny dense head. Wall-clock
  // per-layer timing is noisy on a contended machine (a preemption during a
  // cheap layer can make it look hottest), so allow a few re-measurements.
  bool conv_hottest = false;
  for (int attempt = 0; attempt < 5 && !conv_hottest; ++attempt) {
    const StepProfile q = profile_step(BenchmarkId::kNT3, 0.0015, 0, 2);
    conv_hottest =
        q.layers[q.hottest()].layer.find("Conv1D") != std::string::npos;
  }
  EXPECT_TRUE(conv_hottest);
}

TEST(Profiler, FormatContainsLayerNamesAndTotals) {
  const StepProfile p = profile_step(BenchmarkId::kP1B2, 0.0015, 0, 1);
  const std::string text = format_profile(p);
  EXPECT_NE(text.find("Dense"), std::string::npos);
  EXPECT_NE(text.find("step total"), std::string::npos);
}

TEST(Profiler, CustomBatchRespected) {
  const StepProfile p = profile_step(BenchmarkId::kP1B2, 0.0015, 90, 1);
  EXPECT_EQ(p.batch, 90u);
}

TEST(Profiler, InvalidRepetitionsThrow) {
  EXPECT_THROW(profile_step(BenchmarkId::kNT3, 0.0015, 0, 0),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Accuracy semantics (Figs 6b / 9b)
// ---------------------------------------------------------------------------

TEST(ReferenceAccuracy, MoreEpochsPerGpuIsMoreAccurate) {
  // The paper's Fig 6(b) ladder: 384 total epochs under strong scaling.
  // 384 GPUs leave 1 epoch each (lr x384) and accuracy collapses; 48 GPUs
  // leave 8 epochs each and accuracy stays high.
  const AccuracyPoint few =
      reference_accuracy(BenchmarkId::kNT3, /*gpus=*/384, /*total=*/384,
                         /*batch=*/0, /*scale=*/0.0015, /*weak=*/false);
  const AccuracyPoint many =
      reference_accuracy(BenchmarkId::kNT3, /*gpus=*/48, /*total=*/384,
                         /*batch=*/0, 0.0015, false);
  EXPECT_EQ(few.epochs_per_gpu, 1u);
  EXPECT_EQ(many.epochs_per_gpu, 8u);
  EXPECT_GT(many.accuracy, few.accuracy + 0.05f);
  EXPECT_GT(many.accuracy, 0.9f);
}

TEST(ReferenceAccuracy, WeakScalingKeepsEpochsConstant) {
  const AccuracyPoint p =
      reference_accuracy(BenchmarkId::kNT3, 48, 8, 0, 0.0015, /*weak=*/true);
  EXPECT_EQ(p.epochs_per_gpu, 8u);
  EXPECT_GT(p.accuracy, 0.85f);  // 8 epochs reaches high accuracy (Fig 6b)
}

TEST(ReferenceAccuracy, ZeroEpochConfigsRejected) {
  // 384 GPUs with 48 total epochs -> 0 epochs per GPU under strong scaling.
  EXPECT_THROW(
      reference_accuracy(BenchmarkId::kNT3, 384, 48, 0, 0.0015, false),
      InvalidArgument);
}

TEST(ReferenceAccuracy, BatchScalingDegradesSingleEpochAccuracy) {
  // Fig 10b's shape: with one epoch, a hugely scaled batch (fewer updates)
  // cannot beat a modest batch.
  const AccuracyPoint cbrt = reference_accuracy(
      BenchmarkId::kP1B3, 1, 1, scaled_batch(100, 48, BatchScaling::kCbrt),
      0.005, true);
  const AccuracyPoint linear = reference_accuracy(
      BenchmarkId::kP1B3, 1, 1, scaled_batch(100, 48, BatchScaling::kLinear),
      0.005, true);
  EXPECT_GT(cbrt.accuracy, linear.accuracy);  // R²
}

}  // namespace
}  // namespace candle
