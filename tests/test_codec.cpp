// Tests for src/comm/wire_codec: round-to-nearest-even fp32<->fp16/bf16
// conversions, the documented round-trip error bounds, bitwise parity of
// the dispatched (possibly vectorized) buffer kernels against the scalar
// reference, and bitwise parity of the parallel wrappers against serial at
// several pool widths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "comm/communicator.h"
#include "comm/wire_codec.h"
#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace candle::comm {
namespace {

float from_bits(std::uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

std::uint32_t to_bits(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

// ---------------------------------------------------------------------------
// Scalar fp16 reference: exact values, specials, RNE ties
// ---------------------------------------------------------------------------

TEST(WireF16, ExactValues) {
  EXPECT_EQ(wire::f32_to_f16_scalar(0.0f), 0x0000);
  EXPECT_EQ(wire::f32_to_f16_scalar(-0.0f), 0x8000);
  EXPECT_EQ(wire::f32_to_f16_scalar(1.0f), 0x3C00);
  EXPECT_EQ(wire::f32_to_f16_scalar(-2.0f), 0xC000);
  EXPECT_EQ(wire::f32_to_f16_scalar(0.5f), 0x3800);
  EXPECT_EQ(wire::f32_to_f16_scalar(65504.0f), 0x7BFF);  // fp16 max normal
  // Smallest fp16 normal and subnormal are exactly representable.
  EXPECT_EQ(wire::f32_to_f16_scalar(std::ldexp(1.0f, -14)), 0x0400);
  EXPECT_EQ(wire::f32_to_f16_scalar(std::ldexp(1.0f, -24)), 0x0001);
  for (std::uint16_t h : {std::uint16_t{0x3C00}, std::uint16_t{0xC000},
                          std::uint16_t{0x0400}, std::uint16_t{0x0001},
                          std::uint16_t{0x7BFF}})
    EXPECT_EQ(wire::f32_to_f16_scalar(wire::f16_to_f32_scalar(h)), h);
}

TEST(WireF16, SpecialsAndOverflow) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(wire::f32_to_f16_scalar(inf), 0x7C00);
  EXPECT_EQ(wire::f32_to_f16_scalar(-inf), 0xFC00);
  EXPECT_TRUE(std::isinf(wire::f16_to_f32_scalar(0x7C00)));
  // Values past the fp16 range saturate to infinity (including the
  // carry-out of rounding 65520 = halfway above max, ties-to-even -> inf).
  EXPECT_EQ(wire::f32_to_f16_scalar(1.0e6f), 0x7C00);
  EXPECT_EQ(wire::f32_to_f16_scalar(65520.0f), 0x7C00);
  EXPECT_EQ(wire::f32_to_f16_scalar(-65520.0f), 0xFC00);
  // NaN stays NaN (quiet, payload truncated) in both directions.
  const std::uint16_t h = wire::f32_to_f16_scalar(
      std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(h & 0x7C00, 0x7C00);
  EXPECT_NE(h & 0x03FF, 0);
  EXPECT_TRUE(std::isnan(wire::f16_to_f32_scalar(h)));
  // Below half the smallest subnormal: rounds to (signed) zero.
  EXPECT_EQ(wire::f32_to_f16_scalar(std::ldexp(1.0f, -26)), 0x0000);
  EXPECT_EQ(wire::f32_to_f16_scalar(-std::ldexp(1.0f, -26)), 0x8000);
}

TEST(WireF16, RoundsToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 0x3C00 and 0x3C01: ties to even.
  EXPECT_EQ(wire::f32_to_f16_scalar(1.0f + std::ldexp(1.0f, -11)), 0x3C00);
  // 1 + 3*2^-11 is halfway between 0x3C01 and 0x3C02: ties to even (up).
  EXPECT_EQ(wire::f32_to_f16_scalar(1.0f + 3.0f * std::ldexp(1.0f, -11)),
            0x3C02);
  // Just above / below the tie go to the nearest.
  EXPECT_EQ(wire::f32_to_f16_scalar(1.0f + std::ldexp(1.0f, -11) +
                                    std::ldexp(1.0f, -20)),
            0x3C01);
  EXPECT_EQ(wire::f32_to_f16_scalar(1.0f + std::ldexp(1.0f, -11) -
                                    std::ldexp(1.0f, -20)),
            0x3C00);
  // Subnormal tie: 1.5 * 2^-25 is halfway between 0 and 2^-24 -> even (0),
  // and 2^-25 + 2^-24 is halfway between 2^-24 and 2^-23 -> even (2^-23).
  EXPECT_EQ(wire::f32_to_f16_scalar(std::ldexp(1.0f, -25)), 0x0000);
  EXPECT_EQ(wire::f32_to_f16_scalar(std::ldexp(3.0f, -25)), 0x0002);
}

// ---------------------------------------------------------------------------
// Scalar bf16 reference
// ---------------------------------------------------------------------------

TEST(WireBf16, ExactValuesAndSpecials) {
  EXPECT_EQ(wire::f32_to_bf16_scalar(0.0f), 0x0000);
  EXPECT_EQ(wire::f32_to_bf16_scalar(-0.0f), 0x8000);
  EXPECT_EQ(wire::f32_to_bf16_scalar(1.0f), 0x3F80);
  EXPECT_EQ(wire::f32_to_bf16_scalar(-2.0f), 0xC000);
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(wire::f32_to_bf16_scalar(inf), 0x7F80);
  EXPECT_EQ(wire::f32_to_bf16_scalar(-inf), 0xFF80);
  const std::uint16_t b = wire::f32_to_bf16_scalar(
      std::numeric_limits<float>::quiet_NaN());
  EXPECT_EQ(b & 0x7F80, 0x7F80);
  EXPECT_NE(b & 0x007F, 0);
  EXPECT_TRUE(std::isnan(wire::bf16_to_f32_scalar(b)));
  // Decode is a pure shift: bf16 bits widen to the identical fp32 prefix.
  EXPECT_EQ(to_bits(wire::bf16_to_f32_scalar(0x3F80)), 0x3F800000u);
  EXPECT_EQ(to_bits(wire::bf16_to_f32_scalar(0xC000)), 0xC0000000u);
}

TEST(WireBf16, RoundsToNearestEven) {
  // 0x3F808000 is exactly halfway between 0x3F80 and 0x3F81: ties to even.
  EXPECT_EQ(wire::f32_to_bf16_scalar(from_bits(0x3F808000)), 0x3F80);
  // 0x3F818000 is halfway between 0x3F81 and 0x3F82: ties to even (up).
  EXPECT_EQ(wire::f32_to_bf16_scalar(from_bits(0x3F818000)), 0x3F82);
  EXPECT_EQ(wire::f32_to_bf16_scalar(from_bits(0x3F808001)), 0x3F81);
  EXPECT_EQ(wire::f32_to_bf16_scalar(from_bits(0x3F807FFF)), 0x3F80);
}

// ---------------------------------------------------------------------------
// Round-trip error bounds (the contract comm/wire_codec.h documents)
// ---------------------------------------------------------------------------

TEST(WireRoundTrip, F16RelativeErrorWithinHalfUlp) {
  Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    const float v =
        static_cast<float>(rng.uniform(-1.0, 1.0) * std::ldexp(1.0, i % 30 - 14));
    if (v == 0.0f || std::fabs(v) < std::ldexp(1.0f, -14) ||
        std::fabs(v) > 65504.0f)
      continue;  // the bound below holds in fp16 normal range
    const float back = wire::f16_to_f32_scalar(wire::f32_to_f16_scalar(v));
    EXPECT_LE(std::fabs(back - v), std::ldexp(std::fabs(v), -11))
        << "v=" << v;
  }
}

TEST(WireRoundTrip, Bf16RelativeErrorWithinHalfUlp) {
  Rng rng(43);
  for (int i = 0; i < 20000; ++i) {
    const float v = static_cast<float>(rng.uniform(-1.0, 1.0) *
                                       std::ldexp(1.0, i % 60 - 30));
    if (v == 0.0f || std::fabs(v) < std::ldexp(1.0f, -126)) continue;
    const float back = wire::bf16_to_f32_scalar(wire::f32_to_bf16_scalar(v));
    EXPECT_LE(std::fabs(back - v), std::ldexp(std::fabs(v), -8))
        << "v=" << v;
  }
}

TEST(WireRoundTrip, EncodeIsIdempotentOnDecodedValues) {
  // decode(encode(x)) is a codec fixpoint: re-encoding must not move it.
  Rng rng(44);
  for (WireDtype d : {WireDtype::kFp16, WireDtype::kBf16}) {
    for (int i = 0; i < 5000; ++i) {
      const float v = static_cast<float>(rng.normal(0.0, 10.0));
      std::uint16_t w;
      float back;
      wire::encode(d, &v, &w, 1);
      wire::decode(d, &w, &back, 1);
      std::uint16_t w2;
      wire::encode(d, &back, &w2, 1);
      ASSERT_EQ(w, w2) << wire_dtype_name(d) << " v=" << v;
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatched buffer kernels: bitwise-identical to the scalar reference
// ---------------------------------------------------------------------------

std::vector<float> awkward_inputs() {
  // Specials, ties, subnormals, and enough random values to cover every
  // SIMD lane position and the scalar tail (odd length).
  std::vector<float> in{0.0f,
                        -0.0f,
                        1.0f,
                        -1.0f,
                        65504.0f,
                        65520.0f,
                        -65520.0f,
                        1.0e38f,
                        std::numeric_limits<float>::infinity(),
                        -std::numeric_limits<float>::infinity(),
                        std::numeric_limits<float>::quiet_NaN(),
                        1.0f + std::ldexp(1.0f, -11),
                        1.0f + 3.0f * std::ldexp(1.0f, -11),
                        from_bits(0x3F808000),
                        from_bits(0x3F818000),
                        std::ldexp(1.0f, -14),
                        std::ldexp(1.0f, -24),
                        std::ldexp(1.0f, -25),
                        std::ldexp(3.0f, -25),
                        std::ldexp(1.0f, -26),
                        -std::ldexp(1.0f, -30)};
  Rng rng(45);
  while (in.size() < 1001)
    in.push_back(static_cast<float>(rng.normal(0.0, 100.0)));
  return in;
}

TEST(WireKernels, EncodeMatchesScalarReferenceBitwise) {
  const std::vector<float> in = awkward_inputs();
  for (WireDtype d : {WireDtype::kFp16, WireDtype::kBf16}) {
    std::vector<std::uint16_t> out(in.size());
    wire::encode(d, in.data(), out.data(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      const std::uint16_t ref = d == WireDtype::kFp16
                                    ? wire::f32_to_f16_scalar(in[i])
                                    : wire::f32_to_bf16_scalar(in[i]);
      ASSERT_EQ(out[i], ref)
          << wire_dtype_name(d) << " i=" << i << " v=" << in[i];
    }
  }
}

TEST(WireKernels, DecodeMatchesScalarReferenceBitwise) {
  std::vector<std::uint16_t> in;
  for (std::uint32_t w = 0; w < 0x10000; w += 7)
    in.push_back(static_cast<std::uint16_t>(w));
  in.push_back(0x7C00);  // fp16 inf / bf16 large normal
  in.push_back(0x7E01);  // fp16 NaN
  in.push_back(0x7F81);  // bf16 NaN
  for (WireDtype d : {WireDtype::kFp16, WireDtype::kBf16}) {
    std::vector<float> out(in.size());
    wire::decode(d, in.data(), out.data(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
      const float ref = d == WireDtype::kFp16
                            ? wire::f16_to_f32_scalar(in[i])
                            : wire::bf16_to_f32_scalar(in[i]);
      ASSERT_EQ(to_bits(out[i]), to_bits(ref))
          << wire_dtype_name(d) << " bits=" << in[i];
    }
  }
}

TEST(WireKernels, DecodeAddMatchesDecodeThenAddBitwise) {
  // The fused reduce-scatter kernel must equal decode-into-scratch + add
  // exactly: each lane touches only its own accumulator, so SIMD cannot
  // reorder any fp32 sum. Odd length exercises the scalar tail.
  const std::size_t n = 1013;
  std::vector<std::uint16_t> in(n);
  for (std::size_t i = 0; i < n; ++i)
    in[i] = static_cast<std::uint16_t>((i * 2654435761u) >> 16);
  in[3] = 0x7E01;  // fp16 NaN / bf16 large: NaN must propagate identically
  Rng rng(47);
  std::vector<float> acc0(n);
  for (float& v : acc0) v = static_cast<float>(rng.normal(0.0, 10.0));
  for (WireDtype d : {WireDtype::kFp16, WireDtype::kBf16}) {
    std::vector<float> fused = acc0, reference = acc0, scratch(n);
    wire::decode_add(d, in.data(), fused.data(), n);
    wire::decode(d, in.data(), scratch.data(), n);
    for (std::size_t i = 0; i < n; ++i) reference[i] += scratch[i];
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(to_bits(fused[i]), to_bits(reference[i]))
          << wire_dtype_name(d) << " i=" << i;
  }
}

TEST(WireKernels, Fp32RejectsEncodeDecode) {
  float f = 1.0f;
  std::uint16_t w = 0;
  EXPECT_THROW(wire::encode(WireDtype::kFp32, &f, &w, 1), InvalidArgument);
  EXPECT_THROW(wire::decode(WireDtype::kFp32, &w, &f, 1), InvalidArgument);
  EXPECT_THROW(wire::decode_add(WireDtype::kFp32, &w, &f, 1), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Parallel wrappers: bit-identical to serial at any pool width
// ---------------------------------------------------------------------------

TEST(WireKernels, ParallelMatchesSerialBitwiseAcrossPoolWidths) {
  // Large enough that the 2^16-element grain actually splits the buffer.
  const std::size_t n = (1u << 17) + 13;
  std::vector<float> in(n);
  Rng rng(46);
  for (float& v : in) v = static_cast<float>(rng.normal(0.0, 1.0));
  for (WireDtype d : {WireDtype::kFp16, WireDtype::kBf16}) {
    std::vector<std::uint16_t> serial_w(n), par_w(n);
    std::vector<float> serial_f(n), par_f(n);
    wire::encode(d, in.data(), serial_w.data(), n);
    wire::decode(d, serial_w.data(), serial_f.data(), n);
    const std::size_t saved = parallel::num_threads();
    for (std::size_t threads : {1u, 2u, 4u}) {
      parallel::set_num_threads(threads);
      wire::encode_parallel(d, in.data(), par_w.data(), n);
      wire::decode_parallel(d, par_w.data(), par_f.data(), n);
      EXPECT_EQ(0, std::memcmp(serial_w.data(), par_w.data(),
                               n * sizeof(std::uint16_t)))
          << wire_dtype_name(d) << " threads=" << threads;
      EXPECT_EQ(0,
                std::memcmp(serial_f.data(), par_f.data(), n * sizeof(float)))
          << wire_dtype_name(d) << " threads=" << threads;
    }
    parallel::set_num_threads(saved);
  }
}

// ---------------------------------------------------------------------------
// Block-scaled int8: error bound, exact grids, dispatch parity, residuals
// ---------------------------------------------------------------------------

// Finite random inputs spanning several chunks plus a ragged tail; includes
// an all-zero chunk (scale 0 must decode to exact zeros) and a
// wildly-scaled chunk (per-chunk absmax must isolate it).
std::vector<float> int8_inputs() {
  const std::size_t n = 5 * kInt8ChunkElems + 37;
  std::vector<float> in(n);
  Rng rng(48);
  for (float& v : in) v = static_cast<float>(rng.normal(0.0, 3.0));
  for (std::size_t i = kInt8ChunkElems; i < 2 * kInt8ChunkElems; ++i)
    in[i] = 0.0f;
  for (std::size_t i = 2 * kInt8ChunkElems; i < 3 * kInt8ChunkElems; ++i)
    in[i] *= 1.0e6f;
  return in;
}

TEST(WireInt8, RoundTripWithinChunkAbsmaxBound) {
  const std::vector<float> in = int8_inputs();
  const std::size_t n = in.size();
  std::vector<std::uint8_t> payload(n);
  std::vector<float> scales(n, -1.0f), out(n);
  wire::encode_int8_reference(in.data(), payload.data(), scales.data(), n);
  wire::decode_int8_reference(payload.data(), scales.data(), out.data(), n);
  for (std::size_t b = 0; b < n; b += kInt8ChunkElems) {
    const std::size_t e = std::min(n, b + kInt8ChunkElems);
    float absmax = 0.0f;
    for (std::size_t i = b; i < e; ++i)
      absmax = std::max(absmax, std::fabs(in[i]));
    ASSERT_EQ(scales[b], absmax) << "chunk at " << b;
    // Documented bound: symmetric 127-level grid over [-absmax, absmax]
    // rounds to nearest, so the error is at most half a step = absmax/254.
    for (std::size_t i = b; i < e; ++i)
      ASSERT_LE(std::fabs(in[i] - out[i]), absmax / 254.0f + 1e-30f)
          << "i=" << i << " v=" << in[i];
  }
  // The all-zero chunk decodes to exact zeros.
  for (std::size_t i = kInt8ChunkElems; i < 2 * kInt8ChunkElems; ++i)
    ASSERT_EQ(to_bits(out[i]), 0u);
}

TEST(WireInt8, IntegerGridValuesRoundTripExactly) {
  // v[i] = ((7 i) mod 255) - 127 puts every element on the int8 grid with
  // chunk absmax exactly 127 (7 is coprime to 255, so every full
  // 256-window contains +/-127): scale/127 = 1 and the round trip is
  // exact. Only holds for FULL chunks — a partial tail chunk of this
  // pattern can have absmax < 127 with off-grid integers.
  const std::size_t n = 3 * kInt8ChunkElems;
  std::vector<float> in(n);
  for (std::size_t i = 0; i < n; ++i)
    in[i] = static_cast<float>(static_cast<int>((i * 7) % 255) - 127);
  std::vector<std::uint8_t> payload(n);
  std::vector<float> scales(n), out(n);
  wire::encode_int8(in.data(), payload.data(), scales.data(), n);
  wire::decode_int8(payload.data(), scales.data(), out.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(to_bits(out[i]), to_bits(in[i])) << "i=" << i;
}

TEST(WireInt8, SignedGridExactAtAnyChunkBoundaryAndScale) {
  // w[i] in {0, +S*127, -S*127} is exact for ANY chunk size or offset:
  // every chunk's values sit at 0 or +/-absmax, so quantization yields
  // {0, +/-127} and the decode step is exactly S. This is the
  // construction the exact-sum communicator tests rely on.
  for (const float s : {1.0f, 3.0f, 10.0f}) {
    for (const std::size_t n : {1u, 11u, 256u, 779u}) {
      std::vector<float> in(n);
      for (std::size_t i = 0; i < n; ++i) {
        const float w = i % 3 == 0 ? 0.0f : i % 3 == 1 ? 127.0f : -127.0f;
        in[i] = s * w;
      }
      std::vector<std::uint8_t> payload(n);
      std::vector<float> scales(n), out(n);
      wire::encode_int8(in.data(), payload.data(), scales.data(), n);
      wire::decode_int8(payload.data(), scales.data(), out.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(to_bits(out[i]), to_bits(in[i]))
            << "s=" << s << " n=" << n << " i=" << i;
    }
  }
}

TEST(WireInt8, DispatchedMatchesReferenceBitwise) {
  const std::vector<float> in = int8_inputs();
  const std::size_t n = in.size();
  std::vector<std::uint8_t> pay_ref(n), pay_dsp(n);
  std::vector<float> sc_ref(n, -1.0f), sc_dsp(n, -1.0f);
  wire::encode_int8_reference(in.data(), pay_ref.data(), sc_ref.data(), n);
  wire::encode_int8(in.data(), pay_dsp.data(), sc_dsp.data(), n);
  EXPECT_EQ(0, std::memcmp(pay_ref.data(), pay_dsp.data(), n));
  EXPECT_EQ(0, std::memcmp(sc_ref.data(), sc_dsp.data(), n * sizeof(float)));

  std::vector<float> out_ref(n), out_dsp(n);
  wire::decode_int8_reference(pay_ref.data(), sc_ref.data(), out_ref.data(),
                              n);
  wire::decode_int8(pay_ref.data(), sc_ref.data(), out_dsp.data(), n);
  EXPECT_EQ(0,
            std::memcmp(out_ref.data(), out_dsp.data(), n * sizeof(float)));

  Rng rng(49);
  std::vector<float> acc(n);
  for (float& v : acc) v = static_cast<float>(rng.normal(0.0, 10.0));
  std::vector<float> acc_ref = acc, acc_dsp = acc;
  wire::decode_add_int8_reference(pay_ref.data(), sc_ref.data(),
                                  acc_ref.data(), n);
  wire::decode_add_int8(pay_ref.data(), sc_ref.data(), acc_dsp.data(), n);
  EXPECT_EQ(0,
            std::memcmp(acc_ref.data(), acc_dsp.data(), n * sizeof(float)));
}

TEST(WireInt8, DecodeAddMatchesDecodeThenAddBitwise) {
  const std::vector<float> in = int8_inputs();
  const std::size_t n = in.size();
  std::vector<std::uint8_t> payload(n);
  std::vector<float> scales(n);
  wire::encode_int8(in.data(), payload.data(), scales.data(), n);
  Rng rng(50);
  std::vector<float> acc0(n);
  for (float& v : acc0) v = static_cast<float>(rng.normal(0.0, 10.0));
  std::vector<float> fused = acc0, reference = acc0, scratch(n);
  wire::decode_add_int8(payload.data(), scales.data(), fused.data(), n);
  wire::decode_int8(payload.data(), scales.data(), scratch.data(), n);
  for (std::size_t i = 0; i < n; ++i) reference[i] += scratch[i];
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(to_bits(fused[i]), to_bits(reference[i])) << "i=" << i;
}

TEST(WireInt8, ParallelMatchesSerialBitwiseAcrossPoolWidths) {
  // Large enough that the chunk-aligned grain actually splits the buffer;
  // the scale grid is a function of element index alone, so every pool
  // width must produce identical planes.
  const std::size_t n = (1u << 17) + 13;
  std::vector<float> in(n);
  Rng rng(51);
  for (float& v : in) v = static_cast<float>(rng.normal(0.0, 1.0));
  std::vector<std::uint8_t> pay_s(n), pay_p(n);
  std::vector<float> sc_s(n, -1.0f), sc_p(n, -1.0f), out_s(n), out_p(n);
  wire::encode_int8(in.data(), pay_s.data(), sc_s.data(), n);
  wire::decode_int8(pay_s.data(), sc_s.data(), out_s.data(), n);
  const std::size_t saved = parallel::num_threads();
  for (std::size_t threads : {1u, 2u, 4u}) {
    parallel::set_num_threads(threads);
    wire::encode_int8_parallel(in.data(), pay_p.data(), sc_p.data(), n);
    wire::decode_int8_parallel(pay_p.data(), sc_p.data(), out_p.data(), n);
    EXPECT_EQ(0, std::memcmp(pay_s.data(), pay_p.data(), n))
        << "threads=" << threads;
    EXPECT_EQ(0, std::memcmp(sc_s.data(), sc_p.data(), n * sizeof(float)))
        << "threads=" << threads;
    EXPECT_EQ(0, std::memcmp(out_s.data(), out_p.data(), n * sizeof(float)))
        << "threads=" << threads;
  }
  parallel::set_num_threads(saved);
}

TEST(WireResidual, EqualsDataMinusRoundTripBitwise) {
  const std::vector<float> in = int8_inputs();
  const std::size_t n = in.size();
  std::vector<float> residual(n, -1.0f);
  // int8: chunked relative to data[0], exactly like a fresh encode.
  wire::quantization_residual(WireDtype::kInt8, in.data(), residual.data(),
                              n);
  std::vector<std::uint8_t> payload(n);
  std::vector<float> scales(n), round(n);
  wire::encode_int8(in.data(), payload.data(), scales.data(), n);
  wire::decode_int8(payload.data(), scales.data(), round.data(), n);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(to_bits(residual[i]), to_bits(in[i] - round[i])) << "i=" << i;

  // 16-bit dtypes: elementwise round trip.
  for (WireDtype d : {WireDtype::kFp16, WireDtype::kBf16}) {
    wire::quantization_residual(d, in.data(), residual.data(), n);
    std::vector<std::uint16_t> words(n);
    wire::encode(d, in.data(), words.data(), n);
    wire::decode(d, words.data(), round.data(), n);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(to_bits(residual[i]), to_bits(in[i] - round[i]))
          << wire_dtype_name(d) << " i=" << i;
  }
  float f = 1.0f, r = 0.0f;
  EXPECT_THROW(wire::quantization_residual(WireDtype::kFp32, &f, &r, 1),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Names, parsing, widths
// ---------------------------------------------------------------------------

TEST(WireDtypeApi, NamesParseAndWidths) {
  for (WireDtype d : {WireDtype::kFp32, WireDtype::kFp16, WireDtype::kBf16,
                      WireDtype::kInt8})
    EXPECT_EQ(parse_wire_dtype(wire_dtype_name(d)), d);
  EXPECT_EQ(wire_width_bytes(WireDtype::kFp32), 4u);
  EXPECT_EQ(wire_width_bytes(WireDtype::kFp16), 2u);
  EXPECT_EQ(wire_width_bytes(WireDtype::kBf16), 2u);
  EXPECT_EQ(wire_width_bytes(WireDtype::kInt8), 1u);
  // Scale metadata: one fp32 absmax per 256-element chunk, int8 only.
  EXPECT_EQ(wire_scale_bytes(WireDtype::kInt8, 0), 0u);
  EXPECT_EQ(wire_scale_bytes(WireDtype::kInt8, 1), 4u);
  EXPECT_EQ(wire_scale_bytes(WireDtype::kInt8, 256), 4u);
  EXPECT_EQ(wire_scale_bytes(WireDtype::kInt8, 257), 8u);
  EXPECT_EQ(wire_scale_bytes(WireDtype::kFp16, 1024), 0u);
  EXPECT_EQ(wire_range_bytes(WireDtype::kFp32, 1024), 4096u);
  EXPECT_EQ(wire_range_bytes(WireDtype::kFp16, 1024), 2048u);
  EXPECT_EQ(wire_range_bytes(WireDtype::kInt8, 1024), 1024u + 16u);
  EXPECT_THROW(parse_wire_dtype("fp8"), InvalidArgument);
  EXPECT_THROW(parse_wire_dtype(nullptr), InvalidArgument);
  EXPECT_THROW(parse_allreduce_algo("tree"), InvalidArgument);
  for (AllreduceAlgo a : {AllreduceAlgo::kRing, AllreduceAlgo::kNaive,
                          AllreduceAlgo::kHierarchical})
    EXPECT_EQ(parse_allreduce_algo(allreduce_algo_name(a)), a);
}

}  // namespace
}  // namespace candle::comm
