// Tests for src/comm: the in-process multi-rank runtime and collectives.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <numeric>

#include "comm/communicator.h"
#include "common/error.h"
#include "common/rng.h"

namespace candle::comm {
namespace {

// ---------------------------------------------------------------------------
// World basics
// ---------------------------------------------------------------------------

TEST(World, RejectsZeroRanks) {
  EXPECT_THROW(World w(0), InvalidArgument);
}

TEST(World, RunsEveryRankExactlyOnce) {
  std::atomic<int> count{0};
  std::vector<std::atomic<int>> seen(4);
  World::run(4, [&](Communicator& c) {
    ++count;
    seen[c.rank()]++;
    EXPECT_EQ(c.size(), 4u);
  });
  EXPECT_EQ(count.load(), 4);
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(World, LocalRankAndNodeFollowSummitLayout) {
  WorldOptions opt;
  opt.ranks_per_node = 6;  // Summit: 6 GPUs per node
  World::run(
      13,
      [&](Communicator& c) {
        EXPECT_EQ(c.local_rank(), c.rank() % 6);
        EXPECT_EQ(c.node(), c.rank() / 6);
      },
      opt);
}

TEST(World, BodyExceptionIsRethrown) {
  EXPECT_THROW(World::run(3,
                          [](Communicator& c) {
                            if (c.rank() == 1)
                              throw InvalidArgument("rank 1 fails");
                            c.barrier();  // survivors must not deadlock
                          }),
               InvalidArgument);
}

TEST(World, BarrierSynchronizes) {
  // After the barrier every rank must observe all pre-barrier increments.
  std::atomic<int> before{0};
  World::run(8, [&](Communicator& c) {
    ++before;
    c.barrier();
    EXPECT_EQ(before.load(), 8);
  });
}

// ---------------------------------------------------------------------------
// Allreduce
// ---------------------------------------------------------------------------

void check_allreduce_sum(std::size_t ranks, std::size_t n,
                         AllreduceAlgo algo) {
  WorldOptions opt;
  opt.allreduce_algo = algo;
  World::run(
      ranks,
      [&](Communicator& c) {
        // data[i] = rank + i, so the sum is ranks*i + ranks(ranks-1)/2.
        std::vector<float> data(n);
        for (std::size_t i = 0; i < n; ++i)
          data[i] = static_cast<float>(c.rank() + i);
        c.allreduce_sum(data);
        const float rank_sum =
            static_cast<float>(ranks * (ranks - 1)) / 2.0f;
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_FLOAT_EQ(data[i],
                          static_cast<float>(ranks * i) + rank_sum)
              << "ranks=" << ranks << " n=" << n << " i=" << i;
      },
      opt);
}

TEST(Allreduce, RingMatchesExpectedSums) {
  for (std::size_t ranks : {1u, 2u, 3u, 4u, 6u, 8u, 13u})
    for (std::size_t n : {1u, 5u, 64u, 1000u})
      check_allreduce_sum(ranks, n, AllreduceAlgo::kRing);
}

TEST(Allreduce, NaiveMatchesExpectedSums) {
  for (std::size_t ranks : {2u, 5u, 7u})
    for (std::size_t n : {1u, 17u, 256u})
      check_allreduce_sum(ranks, n, AllreduceAlgo::kNaive);
}

TEST(Allreduce, RingHandlesFewerElementsThanRanks) {
  check_allreduce_sum(8, 3, AllreduceAlgo::kRing);
  check_allreduce_sum(6, 1, AllreduceAlgo::kRing);
}

TEST(Allreduce, HierarchicalMatchesExpectedSums) {
  // Rank counts covering: single node, exact multi-node, partial last node.
  for (std::size_t ranks : {1u, 4u, 6u, 12u, 13u, 18u})
    for (std::size_t n : {1u, 7u, 256u})
      check_allreduce_sum(ranks, n, AllreduceAlgo::kHierarchical);
}

TEST(Allreduce, HierarchicalAgreesWithRingOnRandomData) {
  const std::size_t ranks = 13;  // partial last node with 6 ranks/node
  std::vector<std::vector<float>> ring_out(ranks), hier_out(ranks);
  for (AllreduceAlgo algo :
       {AllreduceAlgo::kRing, AllreduceAlgo::kHierarchical}) {
    auto& out = algo == AllreduceAlgo::kRing ? ring_out : hier_out;
    WorldOptions opt;
    opt.allreduce_algo = algo;
    opt.ranks_per_node = 6;
    World::run(
        ranks,
        [&](Communicator& c) {
          Rng rng(300 + c.rank());
          std::vector<float> data(143);
          for (float& v : data) v = static_cast<float>(rng.normal(0, 1));
          c.allreduce_average(data);
          out[c.rank()] = data;
        },
        opt);
  }
  for (std::size_t r = 0; r < ranks; ++r)
    for (std::size_t i = 0; i < 143; ++i)
      ASSERT_NEAR(ring_out[r][i], hier_out[r][i], 1e-4f)
          << "r=" << r << " i=" << i;
}

TEST(Allreduce, HierarchicalLeadersCarryInterNodeTraffic) {
  // Node leaders (local_rank 0) move strictly more bytes than members.
  WorldOptions opt;
  opt.allreduce_algo = AllreduceAlgo::kHierarchical;
  opt.ranks_per_node = 3;
  const auto stats = World::run(
      9,
      [](Communicator& c) {
        std::vector<float> data(300, 1.0f);
        c.allreduce_sum(data);
      },
      opt);
  for (std::size_t r = 0; r < 9; ++r) {
    if (r % 3 == 0) {
      EXPECT_GT(stats[r].bytes_sent, stats[r + 1].bytes_sent) << r;
    } else {
      // Members only copy the final buffer from their leader.
      EXPECT_EQ(stats[r].bytes_sent, 300 * sizeof(float)) << r;
    }
  }
}

TEST(Allreduce, AverageDividesBySize) {
  World::run(4, [](Communicator& c) {
    std::vector<float> data{static_cast<float>(c.rank()) * 4.0f};
    c.allreduce_average(data);
    EXPECT_FLOAT_EQ(data[0], 6.0f);  // (0+4+8+12)/4
  });
}

TEST(Allreduce, RingAgreesWithNaiveOnRandomData) {
  for (std::size_t ranks : {3u, 5u, 6u}) {
    std::vector<std::vector<float>> ring_out(ranks), naive_out(ranks);
    for (AllreduceAlgo algo : {AllreduceAlgo::kRing, AllreduceAlgo::kNaive}) {
      auto& out = algo == AllreduceAlgo::kRing ? ring_out : naive_out;
      WorldOptions opt;
      opt.allreduce_algo = algo;
      World::run(
          ranks,
          [&](Communicator& c) {
            Rng rng(100 + c.rank());
            std::vector<float> data(97);
            for (float& v : data)
              v = static_cast<float>(rng.normal(0.0, 1.0));
            c.allreduce_sum(data);
            out[c.rank()] = data;
          },
          opt);
    }
    for (std::size_t r = 0; r < ranks; ++r)
      for (std::size_t i = 0; i < 97; ++i)
        ASSERT_NEAR(ring_out[r][i], naive_out[r][i], 1e-4f)
            << "ranks=" << ranks << " r=" << r << " i=" << i;
  }
}

TEST(Allreduce, AllRanksEndIdentical) {
  const std::size_t ranks = 6;
  std::vector<std::vector<float>> results(ranks);
  World::run(ranks, [&](Communicator& c) {
    Rng rng(7 + c.rank() * 13);
    std::vector<float> data(50);
    for (float& v : data) v = static_cast<float>(rng.uniform(-1, 1));
    c.allreduce_average(data);
    results[c.rank()] = data;
  });
  for (std::size_t r = 1; r < ranks; ++r)
    for (std::size_t i = 0; i < 50; ++i)
      ASSERT_FLOAT_EQ(results[0][i], results[r][i]);
}

TEST(Allreduce, MismatchedCountsThrow) {
  EXPECT_THROW(World::run(2,
                          [](Communicator& c) {
                            std::vector<float> data(c.rank() + 1);
                            c.allreduce_sum(data);
                          }),
               CommError);
}

TEST(Allreduce, RingByteAccountingMatchesTheory) {
  // Ring moves 2(P-1)/P * N elements per rank.
  const std::size_t ranks = 4, n = 400;
  const auto stats = World::run(ranks, [&](Communicator& c) {
    std::vector<float> data(n, 1.0f);
    c.allreduce_sum(data);
  });
  for (const auto& s : stats) {
    EXPECT_EQ(s.allreduce_calls, 1u);
    EXPECT_EQ(s.bytes_sent,
              2 * (ranks - 1) * (n / ranks) * sizeof(float));
  }
}

// ---------------------------------------------------------------------------
// Broadcast
// ---------------------------------------------------------------------------

TEST(Broadcast, CopiesRootDataToAllRanks) {
  for (std::size_t ranks : {2u, 3u, 6u, 9u}) {
    World::run(ranks, [&](Communicator& c) {
      std::vector<float> data(32);
      if (c.rank() == 0)
        for (std::size_t i = 0; i < data.size(); ++i)
          data[i] = static_cast<float>(i) * 1.5f;
      c.broadcast(data, 0);
      for (std::size_t i = 0; i < data.size(); ++i)
        ASSERT_FLOAT_EQ(data[i], static_cast<float>(i) * 1.5f)
            << "ranks=" << ranks;
    });
  }
}

TEST(Broadcast, NonZeroRoot) {
  World::run(5, [](Communicator& c) {
    std::vector<float> data{c.rank() == 3 ? 42.0f : 0.0f};
    c.broadcast(data, 3);
    EXPECT_FLOAT_EQ(data[0], 42.0f);
  });
}

TEST(Broadcast, RootOutOfRangeThrows) {
  EXPECT_THROW(World::run(2,
                          [](Communicator& c) {
                            std::vector<float> data(1);
                            c.broadcast(data, 5);
                          }),
               InvalidArgument);
}

// ---------------------------------------------------------------------------
// Reduce-to-root
// ---------------------------------------------------------------------------

TEST(ReduceTo, RootGetsSumOthersUnchanged) {
  World::run(5, [](Communicator& c) {
    std::vector<float> data(8, static_cast<float>(c.rank() + 1));
    c.reduce_sum_to(data, 2);
    if (c.rank() == 2) {
      for (float v : data) ASSERT_FLOAT_EQ(v, 15.0f);  // 1+2+3+4+5
    } else {
      for (float v : data)
        ASSERT_FLOAT_EQ(v, static_cast<float>(c.rank() + 1));
    }
  });
}

TEST(ReduceTo, RootOutOfRangeThrows) {
  EXPECT_THROW(World::run(2,
                          [](Communicator& c) {
                            std::vector<float> d(1);
                            c.reduce_sum_to(d, 7);
                          }),
               InvalidArgument);
}

TEST(ReduceTo, CountsInStats) {
  const auto stats = World::run(3, [](Communicator& c) {
    std::vector<float> d(4, 1.0f);
    c.reduce_sum_to(d, 0);
  });
  for (const auto& s : stats) EXPECT_EQ(s.reduce_calls, 1u);
  // Only the root moves bytes (it reads the two peers).
  EXPECT_EQ(stats[0].bytes_sent, 2 * 4 * sizeof(float));
  EXPECT_EQ(stats[1].bytes_sent, 0u);
}

// ---------------------------------------------------------------------------
// Allgather / scalar reduce
// ---------------------------------------------------------------------------

TEST(Allgather, GathersInRankOrder) {
  World::run(4, [](Communicator& c) {
    const std::vector<float> mine{static_cast<float>(c.rank()) * 10.0f,
                                  static_cast<float>(c.rank()) * 10.0f + 1};
    std::vector<float> all;
    c.allgather(mine, all);
    ASSERT_EQ(all.size(), 8u);
    for (std::size_t r = 0; r < 4; ++r) {
      EXPECT_FLOAT_EQ(all[r * 2], static_cast<float>(r) * 10.0f);
      EXPECT_FLOAT_EQ(all[r * 2 + 1], static_cast<float>(r) * 10.0f + 1);
    }
  });
}

TEST(AllreduceScalar, SumsDoubles) {
  World::run(6, [](Communicator& c) {
    const double sum = c.allreduce_scalar(1.5);
    EXPECT_NEAR(sum, 9.0, 1e-6);
  });
}

TEST(CommStats, CountsCollectiveCalls) {
  const auto stats = World::run(3, [](Communicator& c) {
    std::vector<float> d(8, 1.0f);
    c.allreduce_sum(d);
    c.allreduce_average(d);
    c.broadcast(d, 0);
    std::vector<float> all;
    c.allgather(d, all);
    c.barrier();
  });
  for (const auto& s : stats) {
    EXPECT_EQ(s.allreduce_calls, 2u);
    EXPECT_EQ(s.broadcast_calls, 1u);
    EXPECT_EQ(s.allgather_calls, 1u);
    EXPECT_EQ(s.barrier_calls, 1u);
  }
}

// ---------------------------------------------------------------------------
// Compressed collectives (fp16/bf16 wire, fp32 master accumulation)
// ---------------------------------------------------------------------------

void check_compressed_sum(std::size_t ranks, std::size_t n,
                          AllreduceAlgo algo, WireDtype dtype) {
  // Small integers and their sums are exactly representable in fp16 and
  // bf16, so the compressed reduction must still be exact.
  WorldOptions opt;
  opt.allreduce_algo = algo;
  opt.ranks_per_node = 3;
  opt.wire_dtype = dtype;
  World::run(
      ranks,
      [&](Communicator& c) {
        std::vector<float> data(n);
        for (std::size_t i = 0; i < n; ++i)
          data[i] = static_cast<float>(c.rank() + i % 5);
        c.allreduce_sum(data);
        const float rank_sum =
            static_cast<float>(ranks * (ranks - 1)) / 2.0f;
        for (std::size_t i = 0; i < n; ++i)
          ASSERT_FLOAT_EQ(data[i], static_cast<float>(ranks * (i % 5)) +
                                       rank_sum)
              << allreduce_algo_name(algo) << "/" << wire_dtype_name(dtype)
              << " ranks=" << ranks << " n=" << n << " i=" << i;
      },
      opt);
}

TEST(CompressedAllreduce, ExactOnSmallIntegersAcrossAlgosAndRankCounts) {
  for (AllreduceAlgo algo : {AllreduceAlgo::kRing, AllreduceAlgo::kNaive,
                             AllreduceAlgo::kHierarchical})
    for (WireDtype dtype : {WireDtype::kFp16, WireDtype::kBf16})
      for (std::size_t ranks : {1u, 2u, 3u, 4u, 7u})
        for (std::size_t n : {1u, 5u, 64u, 1000u})
          check_compressed_sum(ranks, n, algo, dtype);
}

TEST(CompressedAllreduce, AllRanksBitIdenticalAndDeterministic) {
  // Rank-invariance: every rank must end with bit-identical fp32 results
  // (the synchronous SGD contract), and a re-run must reproduce them.
  const std::size_t ranks = 5, n = 137;
  for (AllreduceAlgo algo : {AllreduceAlgo::kRing, AllreduceAlgo::kNaive,
                             AllreduceAlgo::kHierarchical}) {
    for (WireDtype dtype :
         {WireDtype::kFp16, WireDtype::kBf16, WireDtype::kInt8}) {
      WorldOptions opt;
      opt.allreduce_algo = algo;
      opt.ranks_per_node = 2;
      opt.wire_dtype = dtype;
      std::vector<std::vector<float>> first(ranks), second(ranks);
      for (auto* out : {&first, &second}) {
        World::run(
            ranks,
            [&](Communicator& c) {
              Rng rng(900 + c.rank());
              std::vector<float> data(n);
              for (float& v : data)
                v = static_cast<float>(rng.normal(0.0, 1.0));
              c.allreduce_average(data);
              (*out)[c.rank()] = data;
            },
            opt);
      }
      for (std::size_t r = 0; r < ranks; ++r) {
        ASSERT_EQ(0, std::memcmp(first[0].data(), first[r].data(),
                                 n * sizeof(float)))
            << allreduce_algo_name(algo) << "/" << wire_dtype_name(dtype)
            << " rank " << r;
        ASSERT_EQ(0, std::memcmp(first[r].data(), second[r].data(),
                                 n * sizeof(float)))
            << allreduce_algo_name(algo) << "/" << wire_dtype_name(dtype)
            << " rerun, rank " << r;
      }
    }
  }
}

TEST(CompressedAllreduce, TracksExactAverageWithinCodecErrorBound) {
  // Random data: the compressed average must stay within the documented
  // per-hop relative error times the (P+1) quantizations a ring reduction
  // can accumulate.
  const std::size_t ranks = 6, n = 211;
  std::vector<float> exact(n);
  std::vector<std::vector<float>> got(ranks);
  World::run(ranks, [&](Communicator& c) {
    Rng rng(77 + c.rank());
    std::vector<float> data(n);
    for (float& v : data)
      v = static_cast<float>(rng.uniform(0.5, 2.0));  // same-sign, O(1)
    c.allreduce_average(data);
    if (c.rank() == 0) exact = data;
  });
  for (WireDtype dtype : {WireDtype::kFp16, WireDtype::kBf16}) {
    WorldOptions opt;
    opt.wire_dtype = dtype;
    World::run(
        ranks,
        [&](Communicator& c) {
          Rng rng(77 + c.rank());
          std::vector<float> data(n);
          for (float& v : data)
            v = static_cast<float>(rng.uniform(0.5, 2.0));
          c.allreduce_average(data);
          got[c.rank()] = data;
        },
        opt);
    const float rel =
        dtype == WireDtype::kFp16 ? 0x1p-11f : 0x1p-8f;
    const float bound = static_cast<float>(ranks + 1) * rel * 2.0f;
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_NEAR(got[0][i], exact[i], bound * std::fabs(exact[i]))
          << wire_dtype_name(dtype) << " i=" << i;
  }
}

TEST(CompressedAllreduce, WireByteCountersPerAlgoAndDtype) {
  // Ring moves 2(P-1) segments of n/P elements per rank; with a 16-bit
  // wire each costs 2 bytes. The counters are indexed [algo][dtype].
  const std::size_t ranks = 4, n = 400;
  WorldOptions opt;
  opt.wire_dtype = WireDtype::kFp16;
  const auto stats = World::run(
      ranks,
      [&](Communicator& c) {
        std::vector<float> data(n, 1.0f);
        c.allreduce_sum(data);
      },
      opt);
  const std::size_t expected = 2 * (ranks - 1) * (n / ranks) * 2;
  for (const auto& s : stats) {
    EXPECT_EQ(s.allreduce_wire_bytes[allreduce_algo_index(
                  AllreduceAlgo::kRing)][wire_dtype_index(WireDtype::kFp16)],
              expected);
    EXPECT_EQ(s.wire_bytes(WireDtype::kFp16), expected);
    EXPECT_EQ(s.wire_bytes(WireDtype::kFp32), 0u);
    EXPECT_EQ(s.wire_bytes(WireDtype::kBf16), 0u);
    // The per-algo/dtype rows partition the allreduce traffic.
    EXPECT_EQ(s.bytes_sent, expected);
  }
}

TEST(CompressedAllreduce, ScalarMetricsStayFp32UnderCompressedDefault) {
  // allreduce_scalar (losses, accuracies) must never quantize, even when
  // the world default wire dtype is compressed.
  WorldOptions opt;
  opt.wire_dtype = WireDtype::kBf16;
  const auto stats = World::run(
      3,
      [](Communicator& c) {
        const double sum = c.allreduce_scalar(1.0 / 3.0);
        EXPECT_NEAR(sum, 1.0, 1e-6);
      },
      opt);
  for (const auto& s : stats) {
    EXPECT_EQ(s.wire_bytes(WireDtype::kBf16), 0u);
    EXPECT_GT(s.wire_bytes(WireDtype::kFp32), 0u);
  }
}

TEST(CompressedAllreduce, PerCallDtypeOverridesWorldDefault) {
  WorldOptions opt;
  opt.wire_dtype = WireDtype::kFp32;
  const auto stats = World::run(
      2,
      [](Communicator& c) {
        std::vector<float> data(100, static_cast<float>(c.rank()));
        c.allreduce_sum(data, WireDtype::kFp16);
        for (float v : data) ASSERT_FLOAT_EQ(v, 1.0f);
      },
      opt);
  for (const auto& s : stats) EXPECT_GT(s.wire_bytes(WireDtype::kFp16), 0u);
}

TEST(CompressedAllreduce, SingleRankIgnoresCompression) {
  // One rank moves no bytes: the value must stay bit-exact (no quantize).
  WorldOptions opt;
  opt.wire_dtype = WireDtype::kFp16;
  World::run(
      1,
      [](Communicator& c) {
        std::vector<float> data{1.0001220703125f};  // 1 + 2^-13: not fp16
        c.allreduce_sum(data);
        EXPECT_EQ(data[0], 1.0001220703125f);
      },
      opt);
}

TEST(CompressedAllreduce, MismatchedDtypesThrow) {
  EXPECT_THROW(World::run(2,
                          [](Communicator& c) {
                            std::vector<float> data(8, 1.0f);
                            c.allreduce_sum(data, c.rank() == 0
                                                      ? WireDtype::kFp16
                                                      : WireDtype::kBf16);
                          }),
               CommError);
  EXPECT_THROW(World::run(2,
                          [](Communicator& c) {
                            std::vector<float> data(8, 1.0f);
                            c.allreduce_sum(data, c.rank() == 0
                                                      ? WireDtype::kInt8
                                                      : WireDtype::kFp16);
                          }),
               CommError);
}

// ---------------------------------------------------------------------------
// Int8 collectives: block-scaled wire with per-chunk fp32 scales
// ---------------------------------------------------------------------------

/// Signed-grid test pattern: w[i] in {0, +127, -127}. Rank r holds
/// (r+1) * w[i], so every partial sum any algorithm forms is S * w[i] for
/// some positive integer S — each quantization chunk's values are exactly
/// {0, +/-absmax}, which the symmetric int8 grid represents exactly at ANY
/// chunk boundary (absmax = 127 S, quant = 0 or +/-127, dequant step = S).
/// The whole reduction is therefore exact end to end regardless of segment
/// offsets, hop order, or hierarchical node layout.
float int8_grid_weight(std::size_t i) {
  switch (i % 3) {
    case 0: return 0.0f;
    case 1: return 127.0f;
    default: return -127.0f;
  }
}

TEST(Int8Allreduce, ExactOnSignedGridAcrossAlgosAndRankCounts) {
  for (AllreduceAlgo algo : {AllreduceAlgo::kRing, AllreduceAlgo::kNaive,
                             AllreduceAlgo::kHierarchical}) {
    for (std::size_t ranks : {1u, 2u, 3u, 4u, 7u}) {
      for (std::size_t n : {1u, 5u, 64u, 523u, 1000u}) {
        WorldOptions opt;
        opt.allreduce_algo = algo;
        opt.ranks_per_node = 3;
        opt.wire_dtype = WireDtype::kInt8;
        World::run(
            ranks,
            [&](Communicator& c) {
              std::vector<float> data(n);
              for (std::size_t i = 0; i < n; ++i)
                data[i] = static_cast<float>(c.rank() + 1) *
                          int8_grid_weight(i);
              c.allreduce_sum(data);
              const float s =
                  static_cast<float>(ranks * (ranks + 1)) / 2.0f;
              for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(data[i], s * int8_grid_weight(i))
                    << allreduce_algo_name(algo) << " ranks=" << ranks
                    << " n=" << n << " i=" << i;
            },
            opt);
      }
    }
  }
}

TEST(Int8Allreduce, TracksExactAverageWithinChunkErrorBound) {
  // Random same-sign data: each of the (P+1) quantizations a ring
  // reduction can apply to an element adds at most chunk_absmax / 254,
  // and every partial sum is bounded by P * max|data|.
  const std::size_t ranks = 6, n = 700;
  std::vector<float> exact(n);
  std::vector<std::vector<float>> got(ranks);
  World::run(ranks, [&](Communicator& c) {
    Rng rng(78 + c.rank());
    std::vector<float> data(n);
    for (float& v : data) v = static_cast<float>(rng.uniform(0.5, 2.0));
    c.allreduce_average(data);
    if (c.rank() == 0) exact = data;
  });
  WorldOptions opt;
  opt.wire_dtype = WireDtype::kInt8;
  World::run(
      ranks,
      [&](Communicator& c) {
        Rng rng(78 + c.rank());
        std::vector<float> data(n);
        for (float& v : data) v = static_cast<float>(rng.uniform(0.5, 2.0));
        c.allreduce_average(data);
        got[c.rank()] = data;
      },
      opt);
  const float bound = static_cast<float>(ranks + 1) *
                      (static_cast<float>(ranks) * 2.0f / 254.0f) /
                      static_cast<float>(ranks);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(got[0][i], exact[i], bound) << "i=" << i;
}

TEST(Int8Allreduce, WireByteCountersIncludeScaleMetadata) {
  // Ring moves 2(P-1) segments of n/P elements per rank; at int8 each
  // segment costs its payload bytes plus one fp32 scale per 256-element
  // chunk (wire_range_bytes).
  const std::size_t ranks = 4, n = 4096;
  WorldOptions opt;
  opt.wire_dtype = WireDtype::kInt8;
  const auto stats = World::run(
      ranks,
      [&](Communicator& c) {
        std::vector<float> data(n, 1.0f);
        c.allreduce_sum(data);
      },
      opt);
  const std::size_t expected =
      2 * (ranks - 1) * wire_range_bytes(WireDtype::kInt8, n / ranks);
  for (const auto& s : stats) {
    EXPECT_EQ(s.allreduce_wire_bytes[allreduce_algo_index(
                  AllreduceAlgo::kRing)][wire_dtype_index(WireDtype::kInt8)],
              expected);
    EXPECT_EQ(s.wire_bytes(WireDtype::kInt8), expected);
    EXPECT_EQ(s.wire_bytes(WireDtype::kFp32), 0u);
    EXPECT_EQ(s.bytes_sent, expected);
  }
}

TEST(Int8Allreduce, SingleRankIgnoresCompression) {
  WorldOptions opt;
  opt.wire_dtype = WireDtype::kInt8;
  World::run(
      1,
      [](Communicator& c) {
        std::vector<float> data{0.3333333f};  // far off any int8 grid
        c.allreduce_sum(data);
        EXPECT_EQ(data[0], 0.3333333f);
      },
      opt);
}

TEST(ReduceScatter, Int8ExactOnSignedGrid) {
  for (std::size_t ranks : {2u, 3u, 5u}) {
    WorldOptions opt;
    opt.wire_dtype = WireDtype::kInt8;
    World::run(
        ranks,
        [&](Communicator& c) {
          const std::size_t n = 700;
          std::vector<float> data(n);
          for (std::size_t i = 0; i < n; ++i)
            data[i] =
                static_cast<float>(c.rank() + 1) * int8_grid_weight(i);
          c.reduce_scatter(data);
          const float s = static_cast<float>(ranks * (ranks + 1)) / 2.0f;
          const std::size_t b = c.rank() * n / ranks;
          const std::size_t e = (c.rank() + 1) * n / ranks;
          for (std::size_t i = b; i < e; ++i)
            ASSERT_EQ(data[i], s * int8_grid_weight(i))
                << "ranks=" << ranks << " i=" << i;
          // Compose with the allgather: every rank ends with the full sum.
          c.allgather(std::span<float>(data));
          for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(data[i], s * int8_grid_weight(i))
                << "ranks=" << ranks << " i=" << i;
        },
        opt);
  }
}

// ---------------------------------------------------------------------------
// Hierarchical local-wire compression (WorldOptions::local_wire_dtype)
// ---------------------------------------------------------------------------

TEST(HierarchicalLocalWire, ExactOnSignedGridAcrossCombos) {
  // All four (inter, intra) dtype combinations on a layout with a
  // member-less tail node (5 ranks, 2 per node -> nodes {0,1},{2,3},{4}).
  for (WireDtype wire : {WireDtype::kFp32, WireDtype::kInt8}) {
    for (WireDtype local : {WireDtype::kFp32, WireDtype::kFp16,
                            WireDtype::kInt8}) {
      WorldOptions opt;
      opt.allreduce_algo = AllreduceAlgo::kHierarchical;
      opt.ranks_per_node = 2;
      opt.wire_dtype = wire;
      opt.local_wire_dtype = local;
      const std::size_t ranks = 5, n = 523;
      World::run(
          ranks,
          [&](Communicator& c) {
            std::vector<float> data(n);
            for (std::size_t i = 0; i < n; ++i)
              data[i] =
                  static_cast<float>(c.rank() + 1) * int8_grid_weight(i);
            c.allreduce_sum(data);
            const float s = static_cast<float>(ranks * (ranks + 1)) / 2.0f;
            for (std::size_t i = 0; i < n; ++i)
              ASSERT_EQ(data[i], s * int8_grid_weight(i))
                  << wire_dtype_name(wire) << "/" << wire_dtype_name(local)
                  << " i=" << i;
          },
          opt);
    }
  }
}

TEST(HierarchicalLocalWire, AllRanksBitIdenticalIncludingSingletonNode) {
  // Random data: the rank-4 singleton node has no members, but its leader
  // must round-trip through the local codec exactly like every other rank
  // — otherwise it would keep exact values the rest of the world lost.
  const std::size_t ranks = 5, n = 391;
  for (WireDtype wire : {WireDtype::kFp32, WireDtype::kInt8}) {
    WorldOptions opt;
    opt.allreduce_algo = AllreduceAlgo::kHierarchical;
    opt.ranks_per_node = 2;
    opt.wire_dtype = wire;
    opt.local_wire_dtype = WireDtype::kInt8;
    std::vector<std::vector<float>> first(ranks), second(ranks);
    for (auto* out : {&first, &second}) {
      World::run(
          ranks,
          [&](Communicator& c) {
            Rng rng(910 + c.rank());
            std::vector<float> data(n);
            for (float& v : data)
              v = static_cast<float>(rng.normal(0.0, 1.0));
            c.allreduce_average(data);
            (*out)[c.rank()] = data;
          },
          opt);
    }
    for (std::size_t r = 0; r < ranks; ++r) {
      ASSERT_EQ(0, std::memcmp(first[0].data(), first[r].data(),
                               n * sizeof(float)))
          << wire_dtype_name(wire) << " rank " << r;
      ASSERT_EQ(0, std::memcmp(first[r].data(), second[r].data(),
                               n * sizeof(float)))
          << wire_dtype_name(wire) << " rerun, rank " << r;
    }
  }
}

TEST(HierarchicalLocalWire, LocalLegBytesChargedAtLocalDtype) {
  // 4 ranks, 2 per node, fp32 leader ring, int8 local legs: each leader
  // charges one int8 image inbound in phase 1, each member one outbound
  // decode in phase 3, and leaders move the fp32 leader ring (2 hops of
  // n/2 elements). All of it lands in the call's [kHierarchical][fp32]
  // row — the local dtype is a property of the legs, not the call.
  const std::size_t ranks = 4, n = 512;
  WorldOptions opt;
  opt.allreduce_algo = AllreduceAlgo::kHierarchical;
  opt.ranks_per_node = 2;
  opt.local_wire_dtype = WireDtype::kInt8;
  const auto stats = World::run(
      ranks,
      [&](Communicator& c) {
        std::vector<float> data(n, 1.0f);
        c.allreduce_sum(data);
      },
      opt);
  const std::size_t image = wire_range_bytes(WireDtype::kInt8, n);
  const std::size_t leader_ring = 2 * (n / 2) * sizeof(float);
  for (std::size_t r = 0; r < ranks; ++r) {
    const std::size_t expected =
        r % 2 == 0 ? image + leader_ring : image;
    EXPECT_EQ(stats[r].bytes_sent, expected) << "rank " << r;
    EXPECT_EQ(stats[r].allreduce_wire_bytes[allreduce_algo_index(
                  AllreduceAlgo::kHierarchical)]
                                           [wire_dtype_index(
                                               WireDtype::kFp32)],
              expected)
        << "rank " << r;
  }
}

// ---------------------------------------------------------------------------
// Standalone reduce_scatter / in-place allgather (tensor-parallel primitives)
// ---------------------------------------------------------------------------

/// Ring segment boundary used by the standalone collectives (gran = 1).
std::size_t seg_off(std::size_t g, std::size_t n, std::size_t p) {
  return g * n / p;
}

TEST(ReduceScatter, RankOwnsItsSummedSegment) {
  // data[i] = (rank+1)*(i+1): the cross-rank sum is (i+1)*P(P+1)/2, exact
  // in fp32 for these small integers under any association.
  for (std::size_t ranks : {1u, 2u, 3u, 4u, 7u}) {
    for (std::size_t n : {1u, 8u, 65u, 400u}) {
      World::run(ranks, [&](Communicator& c) {
        std::vector<float> data(n);
        for (std::size_t i = 0; i < n; ++i)
          data[i] = static_cast<float>((c.rank() + 1) * (i + 1));
        c.reduce_scatter(data);
        const float psum =
            static_cast<float>(ranks * (ranks + 1)) / 2.0f;
        const std::size_t b = seg_off(c.rank(), n, ranks);
        const std::size_t e = seg_off(c.rank() + 1, n, ranks);
        for (std::size_t i = b; i < e; ++i)
          ASSERT_FLOAT_EQ(data[i], static_cast<float>(i + 1) * psum)
              << "ranks=" << ranks << " n=" << n << " i=" << i;
      });
    }
  }
}

TEST(AllgatherInplace, DistributesEachOwnedSegment) {
  for (std::size_t ranks : {1u, 2u, 3u, 4u, 7u}) {
    for (std::size_t n : {1u, 8u, 65u, 400u}) {
      World::run(ranks, [&](Communicator& c) {
        // Only the owned segment holds real data; the rest is a poison
        // value the collective must overwrite (for segments that exist).
        std::vector<float> data(n, -1000.0f);
        const std::size_t b = seg_off(c.rank(), n, ranks);
        const std::size_t e = seg_off(c.rank() + 1, n, ranks);
        for (std::size_t i = b; i < e; ++i)
          data[i] = static_cast<float>(100 * c.rank() + i);
        c.allgather(std::span<float>(data));
        for (std::size_t g = 0; g < ranks; ++g) {
          const std::size_t gb = seg_off(g, n, ranks);
          const std::size_t ge = seg_off(g + 1, n, ranks);
          for (std::size_t i = gb; i < ge; ++i)
            ASSERT_FLOAT_EQ(data[i], static_cast<float>(100 * g + i))
                << "ranks=" << ranks << " n=" << n << " i=" << i;
        }
      });
    }
  }
}

TEST(ReduceScatter, ComposedWithAllgatherMatchesAllreduceExactly) {
  // reduce_scatter + in-place allgather IS the ring allreduce, so on
  // small integers (exact in fp32) the composition must reproduce
  // allreduce_sum bit for bit.
  const std::size_t ranks = 4, n = 103;
  World::run(ranks, [&](Communicator& c) {
    std::vector<float> data(n), reference(n);
    for (std::size_t i = 0; i < n; ++i)
      reference[i] = data[i] = static_cast<float>(c.rank() + i % 9);
    c.allreduce_sum(reference);
    c.reduce_scatter(std::span<float>(data));
    c.allgather(std::span<float>(data));
    ASSERT_EQ(0, std::memcmp(data.data(), reference.data(),
                             n * sizeof(float)));
  });
}

TEST(ReduceScatter, ByteCountersMatchRingFormula) {
  // The standalone ring phases each move (P-1) * n/P elements per rank —
  // exactly half an allreduce.
  const std::size_t ranks = 4, n = 400;
  const auto stats = World::run(ranks, [&](Communicator& c) {
    std::vector<float> data(n, 1.0f);
    c.reduce_scatter(data);
    c.allgather(std::span<float>(data));
  });
  const std::size_t expected = (ranks - 1) * (n / ranks) * sizeof(float);
  for (const auto& s : stats) {
    EXPECT_EQ(s.reduce_scatter_calls, 1u);
    EXPECT_EQ(s.allgather_calls, 1u);
    EXPECT_EQ(s.reduce_scatter_wire_bytes[wire_dtype_index(WireDtype::kFp32)],
              expected);
    EXPECT_EQ(s.allgather_wire_bytes[wire_dtype_index(WireDtype::kFp32)],
              expected);
    EXPECT_EQ(s.bytes_sent, 2 * expected);
  }
}

TEST(ReduceScatter, CompressedByteCountersUseWireWidth) {
  const std::size_t ranks = 4, n = 400;
  WorldOptions opt;
  opt.wire_dtype = WireDtype::kFp16;
  const auto stats = World::run(
      ranks,
      [&](Communicator& c) {
        std::vector<float> data(n, 1.0f);
        c.reduce_scatter(data);
        c.allgather(std::span<float>(data));
      },
      opt);
  const std::size_t expected = (ranks - 1) * (n / ranks) * 2;
  for (const auto& s : stats) {
    EXPECT_EQ(s.reduce_scatter_wire_bytes[wire_dtype_index(WireDtype::kFp16)],
              expected);
    EXPECT_EQ(s.allgather_wire_bytes[wire_dtype_index(WireDtype::kFp16)],
              expected);
    EXPECT_EQ(s.bytes_sent, 2 * expected);
  }
}

TEST(ReduceScatter, CompressedExactOnSmallIntegers) {
  for (WireDtype dtype : {WireDtype::kFp16, WireDtype::kBf16}) {
    for (std::size_t ranks : {2u, 3u, 5u}) {
      WorldOptions opt;
      opt.wire_dtype = dtype;
      World::run(
          ranks,
          [&](Communicator& c) {
            const std::size_t n = 64;
            std::vector<float> data(n);
            for (std::size_t i = 0; i < n; ++i)
              data[i] = static_cast<float>(c.rank() + i % 5);
            c.reduce_scatter(data);
            const float rank_sum =
                static_cast<float>(ranks * (ranks - 1)) / 2.0f;
            const std::size_t b = seg_off(c.rank(), n, ranks);
            const std::size_t e = seg_off(c.rank() + 1, n, ranks);
            for (std::size_t i = b; i < e; ++i)
              ASSERT_FLOAT_EQ(data[i],
                              static_cast<float>(ranks * (i % 5)) + rank_sum)
                  << wire_dtype_name(dtype) << " ranks=" << ranks;
          },
          opt);
    }
  }
}

TEST(AllgatherInplace, CompressedEndsBitIdenticalAcrossRanks) {
  // With a compressed wire the owner round-trips its own segment through
  // the codec, so every rank — owner included — must end bit-identical.
  const std::size_t ranks = 5, n = 137;
  for (WireDtype dtype :
       {WireDtype::kFp16, WireDtype::kBf16, WireDtype::kInt8}) {
    WorldOptions opt;
    opt.wire_dtype = dtype;
    std::vector<std::vector<float>> out(ranks);
    World::run(
        ranks,
        [&](Communicator& c) {
          Rng rng(31 + c.rank());
          std::vector<float> data(n, 0.0f);
          const std::size_t b = seg_off(c.rank(), n, ranks);
          const std::size_t e = seg_off(c.rank() + 1, n, ranks);
          for (std::size_t i = b; i < e; ++i)
            data[i] = static_cast<float>(rng.normal(0.0, 1.0));
          c.allgather(std::span<float>(data));
          out[c.rank()] = data;
        },
        opt);
    for (std::size_t r = 1; r < ranks; ++r)
      ASSERT_EQ(0, std::memcmp(out[0].data(), out[r].data(),
                               n * sizeof(float)))
          << wire_dtype_name(dtype) << " rank " << r;
  }
}

TEST(AllgatherInplace, GranularityGathersColumnBlocks) {
  // granularity = rows gathers per-rank column blocks of a row-major
  // (rows, cols) matrix laid out block-contiguously — the layer-forward
  // use case, including uneven blocks (cols = 6 over 4 ranks -> 1,2,1,2).
  const std::size_t ranks = 4, rows = 3, cols = 6, n = rows * cols;
  World::run(ranks, [&](Communicator& c) {
    std::vector<float> data(n, -1.0f);
    const std::size_t b = rows * seg_off(c.rank(), cols, ranks);
    const std::size_t e = rows * seg_off(c.rank() + 1, cols, ranks);
    for (std::size_t i = b; i < e; ++i)
      data[i] = static_cast<float>(10 * c.rank()) + static_cast<float>(i);
    c.allgather(std::span<float>(data), WireDtype::kFp32, rows);
    for (std::size_t g = 0; g < ranks; ++g) {
      const std::size_t gb = rows * seg_off(g, cols, ranks);
      const std::size_t ge = rows * seg_off(g + 1, cols, ranks);
      for (std::size_t i = gb; i < ge; ++i)
        ASSERT_FLOAT_EQ(data[i],
                        static_cast<float>(10 * g) + static_cast<float>(i))
            << "block " << g << " i=" << i;
    }
  });
}

TEST(ReduceScatter, GranularityMismatchThrows) {
  EXPECT_THROW(
      World::run(2,
                 [](Communicator& c) {
                   std::vector<float> data(12, 1.0f);
                   c.reduce_scatter(std::span<float>(data), WireDtype::kFp32,
                                    c.rank() == 0 ? 1 : 3);
                 }),
      CommError);
}

TEST(ReduceScatter, IndivisibleGranularityThrows) {
  EXPECT_THROW(World::run(2,
                          [](Communicator& c) {
                            std::vector<float> data(10, 1.0f);
                            c.reduce_scatter(std::span<float>(data),
                                             WireDtype::kFp32, 3);
                          }),
               InvalidArgument);
}

TEST(ReduceScatter, OpMismatchWithAllgatherThrows) {
  // Rendezvous cross-check: one rank calling reduce_scatter while another
  // calls allgather must fail loudly, not deadlock or corrupt.
  EXPECT_THROW(World::run(2,
                          [](Communicator& c) {
                            std::vector<float> data(8, 1.0f);
                            if (c.rank() == 0)
                              c.reduce_scatter(std::span<float>(data));
                            else
                              c.allgather(std::span<float>(data));
                          }),
               CommError);
}

TEST(ReduceScatter, DeterministicAcrossRuns) {
  // Same inputs -> bit-identical owned segments on a re-run (ring order is
  // fixed, not timing-dependent).
  const std::size_t ranks = 3, n = 91;
  std::vector<std::vector<float>> first(ranks), second(ranks);
  for (auto* out : {&first, &second}) {
    World::run(ranks, [&](Communicator& c) {
      Rng rng(55 + c.rank());
      std::vector<float> data(n);
      for (float& v : data) v = static_cast<float>(rng.normal(0.0, 1.0));
      c.reduce_scatter(data);
      (*out)[c.rank()] = data;
    });
  }
  for (std::size_t r = 0; r < ranks; ++r) {
    const std::size_t b = seg_off(r, n, ranks) * sizeof(float);
    const std::size_t e = seg_off(r + 1, n, ranks) * sizeof(float);
    ASSERT_EQ(0, std::memcmp(
                     reinterpret_cast<const char*>(first[r].data()) + b,
                     reinterpret_cast<const char*>(second[r].data()) + b,
                     e - b))
        << "rank " << r;
  }
}

// Parameterized stress: repeated mixed collectives stay consistent.
class CollectiveStress : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CollectiveStress, RepeatedRoundsStayCorrect) {
  const std::size_t ranks = GetParam();
  World::run(ranks, [&](Communicator& c) {
    for (int round = 0; round < 25; ++round) {
      std::vector<float> d(31, static_cast<float>(c.rank() + round));
      c.allreduce_average(d);
      const float expected =
          static_cast<float>(ranks - 1) / 2.0f + static_cast<float>(round);
      for (float v : d) ASSERT_NEAR(v, expected, 1e-4f);
      std::vector<float> b{static_cast<float>(round)};
      c.broadcast(b, round % ranks);
      ASSERT_FLOAT_EQ(b[0], static_cast<float>(round));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveStress,
                         ::testing::Values(1, 2, 4, 6, 12));

}  // namespace
}  // namespace candle::comm
