// Rendezvous stress tests, designed to run under the TSan preset
// (cmake --preset tsan): many rank threads, repeated iterations, interleaved
// collectives, and the fused gradient exchange — the access patterns where a
// race in the registration metadata, the ring segments, or the shared
// timeline/ledger state would surface as a TSan report or a wrong sum.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "comm/communicator.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "hvd/context.h"
#include "hvd/distributed_optimizer.h"
#include "nn/optimizer.h"
#include "tensor/tensor.h"
#include "trace/timeline.h"

namespace candle::comm {
namespace {

// TSan multiplies runtime ~5-15x; keep rounds modest so the suite stays
// fast everywhere while still interleaving enough phases to expose races.
constexpr int kRounds = 12;

// Interleaves every collective in one loop so consecutive operations reuse
// the rendezvous slots: a registration from round i leaking into round i+1
// (missing barrier, stale pointer) corrupts a checked sum.
void mixed_collective_rounds(std::size_t ranks, AllreduceAlgo algo) {
  WorldOptions opt;
  opt.allreduce_algo = algo;
  opt.ranks_per_node = 4;
  World::run(
      ranks,
      [&](Communicator& c) {
        const float fr = static_cast<float>(c.rank());
        for (int round = 0; round < kRounds; ++round) {
          const float base = static_cast<float>(round);

          // Allreduce with a round-dependent payload size (re-registers a
          // different buffer every round).
          std::vector<float> grad(17 + 13 * (round % 3), fr + base);
          c.allreduce_sum(grad);
          const float rank_sum =
              static_cast<float>(ranks * (ranks - 1)) / 2.0f;
          for (float v : grad)
            ASSERT_FLOAT_EQ(v, rank_sum + base * static_cast<float>(ranks));

          // Broadcast from a rotating root.
          const std::size_t root = static_cast<std::size_t>(round) % ranks;
          std::vector<float> weights(
              9, c.rank() == root ? base * 2.0f : -1.0f);
          c.broadcast(weights, root);
          for (float v : weights) ASSERT_FLOAT_EQ(v, base * 2.0f);

          // Reduce onto a different rotating root.
          const std::size_t rroot =
              static_cast<std::size_t>(round + 1) % ranks;
          std::vector<float> push(5, 1.0f);
          c.reduce_sum_to(push, rroot);
          if (c.rank() == rroot) {
            for (float v : push)
              ASSERT_FLOAT_EQ(v, static_cast<float>(ranks));
          }

          // Allgather + explicit barrier to close the round.
          const std::vector<float> mine{fr, base};
          std::vector<float> all;
          c.allgather(mine, all);
          ASSERT_EQ(all.size(), ranks * 2);
          for (std::size_t r = 0; r < ranks; ++r)
            ASSERT_FLOAT_EQ(all[r * 2], static_cast<float>(r));
          c.barrier();
        }
      },
      opt);
}

TEST(CommStress, RingMixedCollectives) {
  mixed_collective_rounds(8, AllreduceAlgo::kRing);
}

TEST(CommStress, NaiveMixedCollectives) {
  mixed_collective_rounds(6, AllreduceAlgo::kNaive);
}

TEST(CommStress, HierarchicalMixedCollectivesPartialNode) {
  // 10 ranks at 4 ranks/node: two full nodes plus a partial straggler node.
  mixed_collective_rounds(10, AllreduceAlgo::kHierarchical);
}

TEST(CommStress, ManyRanksSmallPayload) {
  // More ranks than payload elements: ring segments degenerate to empty
  // ranges for most ranks — the classic off-by-one breeding ground.
  World::run(16, [](Communicator& c) {
    for (int round = 0; round < kRounds; ++round) {
      std::vector<float> d(3, 1.0f);
      c.allreduce_sum(d);
      for (float v : d) ASSERT_FLOAT_EQ(v, 16.0f);
    }
  });
}

TEST(CommStress, FusedGradientExchangeWithSharedTimeline) {
  // The full Horovod-layer path: every rank drives a DistributedOptimizer
  // whose negotiate/allreduce phases log into one shared Timeline and one
  // shared PhaseLedger while the collectives run — the exact concurrent
  // write pattern the annotated mutexes serialize.
  const std::size_t ranks = 8;
  trace::Timeline timeline;
  hvd::PhaseLedger ledger;
  Stopwatch clock;
  World::run(ranks, [&](Communicator& c) {
    hvd::Context ctx(c, &timeline, &clock, &ledger);
    hvd::FusionOptions fusion;
    fusion.threshold_bytes = 256;  // tiny buffer => many fused groups
    hvd::DistributedOptimizer opt(
        std::make_unique<nn::Sgd>(0.1), ctx, fusion);

    Tensor w1({24}, 1.0f), w2({40}, 2.0f), w3({8}, 3.0f);
    Tensor g1({24}), g2({40}), g3({8});
    for (int step = 0; step < kRounds; ++step) {
      for (std::size_t i = 0; i < g1.numel(); ++i)
        g1[i] = static_cast<float>(c.rank());
      g2.zero();
      for (std::size_t i = 0; i < g3.numel(); ++i)
        g3[i] = static_cast<float>(step);
      opt.apply({&w1, &w2, &w3}, {&g1, &g2, &g3});

      // Averaged gradients are rank-independent, so weights stay in
      // lockstep; any divergence means a fused segment got mixed up.
      const double r = c.allreduce_scalar(static_cast<double>(w1[0]));
      ASSERT_NEAR(r, static_cast<double>(w1[0]) * ranks, 1e-5);
    }
  });
  // Every rank logged one negotiate event per step plus one NCCL event per
  // fusion bucket (24+40 floats fill the 64-float buffer, 8 spill into a
  // second bucket), and one ledger entry per step.
  EXPECT_EQ(timeline.size(), ranks * kRounds * 3);
  EXPECT_EQ(timeline.count_events(trace::kNcclAllreduce, 0),
            static_cast<std::size_t>(kRounds) * 2);
  const auto skew = ledger.summarize(trace::kNegotiateAllreduce);
  EXPECT_EQ(skew.count, ranks * kRounds);
  EXPECT_GE(skew.skew_s(), 0.0);
}

TEST(CommStress, ConcurrentLedgerAndTimelineWrites) {
  // Hammer the shared recorders directly (no collectives): pure mutex
  // contention across ranks.
  const std::size_t ranks = 12;
  trace::Timeline timeline;
  hvd::PhaseLedger ledger;
  World::run(ranks, [&](Communicator& c) {
    for (int i = 0; i < kRounds * 4; ++i) {
      timeline.record("STRESS", "test", c.rank(),
                      static_cast<double>(i), 0.001);
      ledger.record("STRESS", c.rank(), static_cast<double>(i));
    }
  });
  EXPECT_EQ(timeline.size(), ranks * kRounds * 4);
  EXPECT_EQ(ledger.size(), ranks * kRounds * 4);
  EXPECT_EQ(ledger.summarize("STRESS").count, ranks * kRounds * 4);
}

TEST(CommStress, RepeatedWorldsReuseCleanly) {
  // Worlds are created and torn down back to back; a thread from world i
  // touching freed rendezvous state would be an ASan/TSan report here.
  for (int iter = 0; iter < 6; ++iter) {
    std::vector<CommStats> stats = World::run(5, [&](Communicator& c) {
      std::vector<float> d(11, static_cast<float>(c.rank() + iter));
      c.allreduce_average(d);
      const float expected =
          static_cast<float>(5 - 1) / 2.0f + static_cast<float>(iter);
      for (float v : d) ASSERT_NEAR(v, expected, 1e-5f);
    });
    for (const auto& s : stats) EXPECT_EQ(s.allreduce_calls, 1u);
  }
}

}  // namespace
}  // namespace candle::comm
