// Tests for src/common: RNG, strings, tables, CLI.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/cli.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/table.h"

namespace candle {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(42);
  double sum = 0.0, sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(42);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(3);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 / 5);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), InvalidArgument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<std::size_t> v(100);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
  rng.shuffle(v);
  std::set<std::size_t> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_NE(v[0] * 100 + v[1], 0u * 100 + 1u);  // astronomically unlikely
}

TEST(Rng, ForkStreamsAreDecorrelated) {
  Rng parent(11);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

// ---------------------------------------------------------------------------
// string_util
// ---------------------------------------------------------------------------

TEST(StringUtil, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtil, SplitPreservesEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, SplitSingleField) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(StringUtil, TrimWhitespace) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n a \r"), "a");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-f", "--"));
  EXPECT_FALSE(starts_with("", "x"));
}

TEST(StringUtil, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.5), "500 ms");
  EXPECT_EQ(format_seconds(12.345), "12.35 s");
  EXPECT_EQ(format_seconds(200.0), "3m 20s");
}

TEST(StringUtil, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(597.0 * 1024 * 1024), "597.0 MB");
  EXPECT_EQ(format_bytes(1.5 * 1024 * 1024 * 1024), "1.50 GB");
}

TEST(StringUtil, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strprintf("%.2f", 3.14159), "3.14");
}

// ---------------------------------------------------------------------------
// Summary statistics
// ---------------------------------------------------------------------------

TEST(Stats, MeanStddevMinMax) {
  Summary s;
  s.add_all({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // the classic example
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, Percentiles) {
  Summary s;
  for (int i = 0; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(99), 99.0, 1e-9);
}

TEST(Stats, PercentileInterpolates) {
  Summary s;
  s.add_all({10.0, 20.0});
  EXPECT_DOUBLE_EQ(s.percentile(50), 15.0);
}

TEST(Stats, EmptyAndSingletonBehaviour) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_THROW((void)s.min(), InvalidArgument);
  EXPECT_THROW((void)s.percentile(50), InvalidArgument);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(75), 3.0);
  EXPECT_THROW((void)s.percentile(101), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(Table, RendersHeadersAndRows) {
  Table t({"GPUs", "Time (s)"});
  t.add_row({"1", "104.0"});
  t.add_row({"384", "23.3"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("GPUs"), std::string::npos);
  EXPECT_NE(s.find("384"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Table, NumericRowFormatting) {
  Table t({"label", "a", "b"});
  t.add_row_numeric("x", {1.234, 5.0});
  EXPECT_NE(t.to_string().find("1.23"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

// ---------------------------------------------------------------------------
// Cli
// ---------------------------------------------------------------------------

TEST(Cli, ParsesValueFlags) {
  Cli cli;
  cli.flag("gpus", "gpu count", "1").flag("machine", "name", "Summit");
  const char* argv[] = {"prog", "--gpus", "384", "--machine=Theta"};
  cli.parse(4, argv);
  EXPECT_EQ(cli.get_int("gpus"), 384);
  EXPECT_EQ(cli.get("machine"), "Theta");
}

TEST(Cli, DefaultsApply) {
  Cli cli;
  cli.flag("scale", "data scale", "0.25");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 0.25);
}

TEST(Cli, BoolFlags) {
  Cli cli;
  cli.bool_flag("full", "full size");
  const char* argv[] = {"prog", "--full"};
  cli.parse(2, argv);
  EXPECT_TRUE(cli.get_bool("full"));
}

TEST(Cli, UnknownFlagThrows) {
  Cli cli;
  cli.flag("x", "");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), InvalidArgument);
}

TEST(Cli, MissingValueThrows) {
  Cli cli;
  cli.flag("x", "");
  const char* argv[] = {"prog", "--x"};
  EXPECT_THROW(cli.parse(2, argv), InvalidArgument);
}

TEST(Cli, UnregisteredGetThrows) {
  Cli cli;
  EXPECT_THROW((void)cli.get("missing"), InvalidArgument);
}

}  // namespace
}  // namespace candle
