// Golden/property tests for the blocked GEMM core (src/tensor/gemm.*):
// the packed, register-tiled kernel is checked against the preserved naive
// reference (gemm_naive) across all transpose combinations, odd and
// edge-tile shapes straddling the MR/NR/KC blocking boundaries, and every
// epilogue mode (bias, ReLU, accumulate). The im2col/col2im lowering of
// Conv1D is validated against the direct reference convolution and a
// multiplicity round-trip.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "tensor/conv.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"

namespace candle {
namespace {

Tensor random_tensor(Shape shape, Rng& rng, double stddev = 1.0) {
  Tensor t(std::move(shape));
  for (float& v : t.values()) v = static_cast<float>(rng.normal(0, stddev));
  return t;
}

// Relative tolerance per the kernel contract: |got - ref| <= 1e-4 * scale.
void expect_all_near(const Tensor& got, const Tensor& ref,
                     const char* what) {
  ASSERT_EQ(got.shape(), ref.shape()) << what;
  for (std::size_t i = 0; i < got.numel(); ++i) {
    const float tol = 1e-4f * std::max(1.0f, std::fabs(ref[i]));
    ASSERT_NEAR(got[i], ref[i], tol) << what << " at flat index " << i;
  }
}

// Stores A as (trans ? k×m : m×k) row-major so the same logical operand
// can be fed to every transpose combination.
Tensor make_operand(std::size_t rows, std::size_t cols, bool trans,
                    Rng& rng) {
  return trans ? random_tensor({cols, rows}, rng)
               : random_tensor({rows, cols}, rng);
}

// ---------------------------------------------------------------------------
// Blocked GEMM vs. the naive reference
// ---------------------------------------------------------------------------

TEST(Gemm, KnownProduct) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = gemm(false, false, a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Gemm, NaiveReferenceKnownProduct) {
  // Anchors the reference kernel itself before everything is tested
  // against it.
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = gemm_naive(false, false, a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Gemm, ShapeMismatchThrows) {
  const Tensor a({2, 3});
  const Tensor b({2, 3});
  EXPECT_THROW((void)gemm(false, false, a, b), InvalidArgument);
  EXPECT_NO_THROW((void)gemm(false, true, a, b));
  Tensor c({3, 3});
  EXPECT_THROW(gemm(false, true, a, b, c), InvalidArgument);  // c is (2,2)
}

TEST(Gemm, AllTransposeCombosAcrossEdgeTileShapes) {
  // m spans the MR=6 tile edges, n the NR=8 edges, and larger values cross
  // the MC=96 block boundary; k=300 crosses the KC=256 panel boundary so
  // the multi-panel first/last writeback logic is exercised too.
  const std::size_t ms[] = {1, kGemmMR - 1, kGemmMR, kGemmMR + 1, 2 * kGemmMR + 3, kGemmMC + 5};
  const std::size_t ns[] = {1, kGemmNR - 1, kGemmNR, kGemmNR + 1, 3 * kGemmNR + 1};
  const std::size_t ks[] = {1, 7, 64, kGemmKC + 44};
  Rng rng(11);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      for (std::size_t m : ms) {
        for (std::size_t n : ns) {
          for (std::size_t k : ks) {
            const Tensor a = make_operand(m, k, ta, rng);
            const Tensor b = make_operand(k, n, tb, rng);
            const Tensor ref = gemm_naive(ta, tb, a, b);
            const Tensor got = gemm(ta, tb, a, b);
            ASSERT_EQ(got.shape(), ref.shape());
            for (std::size_t i = 0; i < got.numel(); ++i) {
              const float tol = 1e-4f * std::max(1.0f, std::fabs(ref[i]));
              ASSERT_NEAR(got[i], ref[i], tol)
                  << "ta=" << ta << " tb=" << tb << " m=" << m << " n=" << n
                  << " k=" << k << " i=" << i;
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Epilogue modes
// ---------------------------------------------------------------------------

TEST(GemmEpilogue, BiasAddsRowVector) {
  Rng rng(21);
  const std::size_t m = 13, n = 19, k = 40;
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  const Tensor bias = random_tensor({n}, rng);
  Epilogue ep;
  ep.bias = bias.data();
  const Tensor got = gemm(false, false, a, b, ep);
  Tensor ref = gemm_naive(false, false, a, b);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) ref.at(i, j) += bias[j];
  expect_all_near(got, ref, "bias epilogue");
}

TEST(GemmEpilogue, ReluClampsNegatives) {
  Rng rng(22);
  const std::size_t m = 9, n = 17, k = 33;
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  Epilogue ep;
  ep.op = EpilogueOp::kRelu;
  const Tensor got = gemm(false, false, a, b, ep);
  Tensor ref = gemm_naive(false, false, a, b);
  for (float& v : ref.values()) v = v > 0.0f ? v : 0.0f;
  expect_all_near(got, ref, "relu epilogue");
  for (float v : got.values()) EXPECT_GE(v, 0.0f);
}

TEST(GemmEpilogue, BiasReluComposesAcrossKPanels) {
  // k > KC: the epilogue must fire exactly once, after the last k-panel.
  Rng rng(23);
  const std::size_t m = 7, n = 11, k = 2 * kGemmKC + 17;
  const Tensor a = random_tensor({m, k}, rng, 0.2);
  const Tensor b = random_tensor({k, n}, rng, 0.2);
  const Tensor bias = random_tensor({n}, rng);
  Epilogue ep;
  ep.bias = bias.data();
  ep.op = EpilogueOp::kRelu;
  const Tensor got = gemm(false, false, a, b, ep);
  Tensor ref = gemm_naive(false, false, a, b);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float v = ref.at(i, j) + bias[j];
      ref.at(i, j) = v > 0.0f ? v : 0.0f;
    }
  expect_all_near(got, ref, "bias+relu epilogue");
}

TEST(GemmEpilogue, AccumulateKeepsPriorContents) {
  Rng rng(24);
  const std::size_t m = 10, n = 14, k = kGemmKC + 5;
  const Tensor a = random_tensor({m, k}, rng, 0.3);
  const Tensor b = random_tensor({k, n}, rng, 0.3);
  const Tensor c0 = random_tensor({m, n}, rng);
  Tensor got = c0;
  Epilogue ep;
  ep.accumulate = true;
  gemm(false, false, a, b, got, ep);
  Tensor ref = gemm_naive(false, false, a, b);
  ref += c0;
  expect_all_near(got, ref, "accumulate epilogue");
}

TEST(GemmEpilogue, OverwriteIgnoresPriorContents) {
  Rng rng(25);
  const std::size_t m = 6, n = 8, k = 12;
  const Tensor a = random_tensor({m, k}, rng);
  const Tensor b = random_tensor({k, n}, rng);
  Tensor got({m, n}, 123.0f);  // stale garbage that must be overwritten
  gemm(false, false, a, b, got);
  const Tensor ref = gemm_naive(false, false, a, b);
  expect_all_near(got, ref, "overwrite");
}

// ---------------------------------------------------------------------------
// im2col / col2im and the lowered Conv1D
// ---------------------------------------------------------------------------

TEST(Im2col, LaysOutWindows) {
  // x: batch 1, L=4, Cin=2; K=2, stride 1 -> 3 rows of 4 values.
  const Tensor x({1, 4, 2}, {0, 1, 10, 11, 20, 21, 30, 31});
  Tensor cols;
  im2col(x, 2, 1, cols);
  ASSERT_EQ(cols.shape(), (Shape{3, 4}));
  EXPECT_FLOAT_EQ(cols.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(cols.at(0, 3), 11.0f);
  EXPECT_FLOAT_EQ(cols.at(1, 0), 10.0f);
  EXPECT_FLOAT_EQ(cols.at(2, 3), 31.0f);
}

TEST(Im2col, Col2imRoundTripMatchesWindowMultiplicity) {
  // col2im(im2col(x)) multiplies every input element by the number of
  // windows covering it; compute that multiplicity directly and compare.
  Rng rng(31);
  const std::size_t b = 2, L = 13, cin = 3, K = 4, stride = 2;
  const Tensor x = random_tensor({b, L, cin}, rng);
  Tensor cols;
  im2col(x, K, stride, cols);
  Tensor back({b, L, cin});
  col2im(cols, K, stride, back);
  const std::size_t lout = conv1d_out_length(L, K, stride);
  for (std::size_t bi = 0; bi < b; ++bi)
    for (std::size_t t = 0; t < L; ++t) {
      std::size_t mult = 0;
      for (std::size_t o = 0; o < lout; ++o)
        if (o * stride <= t && t < o * stride + K) ++mult;
      for (std::size_t c = 0; c < cin; ++c) {
        const std::size_t i = (bi * L + t) * cin + c;
        ASSERT_NEAR(back[i], static_cast<float>(mult) * x[i], 1e-5f)
            << "t=" << t << " mult=" << mult;
      }
    }
}

TEST(Im2col, NonOverlappingStrideRoundTripsExactly) {
  // stride == K: every covered element appears in exactly one window.
  Rng rng(32);
  const Tensor x = random_tensor({1, 12, 2}, rng);
  Tensor cols;
  im2col(x, 3, 3, cols);
  Tensor back(x.shape());
  col2im(cols, 3, 3, back);
  for (std::size_t i = 0; i < x.numel(); ++i)
    EXPECT_FLOAT_EQ(back[i], x[i]);
}

TEST(Conv1dGemm, MatchesNaiveReference) {
  Rng rng(33);
  struct Case {
    std::size_t b, L, cin, K, cout, stride;
  };
  const Case cases[] = {
      {1, 8, 1, 3, 4, 1},   {2, 16, 3, 5, 7, 2},  {1, 9, 2, 9, 3, 1},
      {3, 21, 4, 1, 5, 1},  {2, 30, 2, 4, 16, 3},
  };
  for (const Case& tc : cases) {
    const Tensor x = random_tensor({tc.b, tc.L, tc.cin}, rng);
    const Tensor w = random_tensor({tc.K, tc.cin, tc.cout}, rng);
    const Tensor bias = random_tensor({tc.cout}, rng);
    const Tensor ref = conv1d_forward_naive(x, w, bias, tc.stride);
    const Tensor got = conv1d_forward(x, w, bias, tc.stride);
    ASSERT_EQ(got.shape(), ref.shape());
    for (std::size_t i = 0; i < got.numel(); ++i) {
      const float tol = 1e-4f * std::max(1.0f, std::fabs(ref[i]));
      ASSERT_NEAR(got[i], ref[i], tol)
          << "b=" << tc.b << " L=" << tc.L << " K=" << tc.K << " i=" << i;
    }
  }
}

TEST(Conv1dGemm, FusedReluEpilogueMatchesPostRelu) {
  Rng rng(34);
  const Tensor x = random_tensor({2, 12, 3}, rng);
  const Tensor w = random_tensor({3, 3, 5}, rng);
  const Tensor bias = random_tensor({5}, rng);
  const Tensor got =
      conv1d_forward(x, w, bias, 1, nullptr, EpilogueOp::kRelu);
  Tensor ref = conv1d_forward_naive(x, w, bias, 1);
  for (float& v : ref.values()) v = v > 0.0f ? v : 0.0f;
  expect_all_near(got, ref, "conv relu epilogue");
}

TEST(Conv1dGemm, WorkspaceReuseSurvivesShapeChanges) {
  Rng rng(35);
  Conv1dWorkspace ws;
  const Tensor w = random_tensor({3, 2, 4}, rng);
  const Tensor bias = random_tensor({4}, rng);
  for (std::size_t L : {10u, 24u, 10u}) {
    const Tensor x = random_tensor({2, L, 2}, rng);
    const Tensor ref = conv1d_forward_naive(x, w, bias, 1);
    const Tensor got = conv1d_forward(x, w, bias, 1, &ws);
    expect_all_near(got, ref, "workspace reuse");
  }
}

TEST(Conv1dGemm, BackwardAgreesWithWorkspaceAndWithout) {
  Rng rng(36);
  const Tensor x = random_tensor({2, 14, 3}, rng);
  const Tensor w = random_tensor({4, 3, 6}, rng);
  const Tensor bias = random_tensor({6}, rng);
  const Tensor y = conv1d_forward(x, w, bias, 2);
  const Tensor dy(y.shape(), 1.0f);
  Tensor dx1(x.shape()), dw1(w.shape()), db1(bias.shape());
  conv1d_backward(x, w, dy, 2, dx1, dw1, db1);
  Conv1dWorkspace ws;
  Tensor dx2(x.shape()), dw2(w.shape()), db2(bias.shape());
  conv1d_backward(x, w, dy, 2, dx2, dw2, db2, &ws);
  expect_all_near(dx2, dx1, "dx ws");
  expect_all_near(dw2, dw1, "dw ws");
  expect_all_near(db2, db1, "db ws");
}

}  // namespace
}  // namespace candle
